// The scatter-gather executor over a Hilbert-sharded table (DESIGN.md
// §12). A query first prunes shards whose bbox misses its envelope —
// before any imprint work — then scatters filter+refine across the
// surviving shards on one shared morsel pool, and merges the local
// results in shard order. Because shards are contiguous runs of the
// Hilbert-sorted row space and every shard computes its exact local
// answer, the merged global row ids (and any aggregate over them) are
// bit-identical to a single engine over the sorted flat table, at every
// thread count and SIMD level; at K = 1 the filter/refine stats match
// verbatim too (for K > 1 they are the deterministic field-wise sum of
// the per-shard stats — per-shard imprints cover different cacheline
// populations than one whole-table imprint, so the unsharded counters
// are not reproducible, only the answers are).
//
// Covered shards (bbox-as-zonemap): a thematic-free box query that fully
// contains a shard's bbox selects every one of its rows by construction,
// so the router emits the shard's id range directly into the merged
// result without touching a column. Row ids stay bit-identical; such a
// shard contributes zero filter/refine stats (nothing was scanned), so
// the K = 1 verbatim-stats property applies to queries that intersect
// but do not cover the single shard.
#ifndef GEOCOL_CORE_SHARD_ROUTER_H_
#define GEOCOL_CORE_SHARD_ROUTER_H_

#include <memory>
#include <string>
#include <vector>

#include "columns/sharded_table.h"
#include "core/shard.h"
#include "core/spatial_engine.h"

namespace geocol {

/// Bbox-pruned scatter-gather query execution over one sharded table.
///
/// Thread-safety: concurrent queries against one router are safe (shard
/// engines are; the shard list is immutable after construction).
/// Mutating shard columns while queries are in flight is not.
class ShardRouter {
 public:
  /// `options` configures every shard engine plus the router-level pool
  /// and cache: num_threads sizes ONE pool shared by the scatter loop and
  /// all shard engines (nested morsel scheduling keeps it busy), and the
  /// cache binding applies at the router only — per-shard engines always
  /// run cache-free.
  explicit ShardRouter(std::shared_ptr<ShardedTable> table,
                       EngineOptions options = {});

  const ShardedTable& table() const { return *table_; }
  const EngineOptions& options() const { return options_; }
  Schema schema() const { return table_->schema(); }
  size_t num_shards() const { return shards_.size(); }
  Shard& shard(size_t i) { return *shards_[i]; }

  /// Threads executing one query: pool workers + the calling thread.
  uint32_t num_effective_threads() const {
    return pool_ != nullptr ? static_cast<uint32_t>(pool_->num_threads()) + 1
                            : 1;
  }

  /// All points with (x, y) inside `box`, as global row ids.
  Result<SelectionResult> SelectInBox(const Box& box);

  /// All points contained in `geometry`.
  Result<SelectionResult> SelectInGeometry(const Geometry& geometry);

  /// General form: spatial predicate plus conjunctive thematic ranges.
  Result<SelectionResult> Select(const Geometry& geometry, double buffer,
                                 const std::vector<AttributeRange>& thematic);

  /// Aggregate of `column` over the selected points — bit-identical to
  /// the unsharded engine's Aggregate over the sorted flat table.
  Result<double> Aggregate(const Geometry& geometry, double buffer,
                           const std::vector<AttributeRange>& thematic,
                           const std::string& column, AggKind kind);

  /// Aggregates `column` over an explicit global row list, resolving each
  /// row to its shard's local values. Runs the shared aggregation core,
  /// so the result is bit-identical to AggregateRows over the equivalent
  /// flat column (the SQL executor's post-selection aggregate path).
  Result<double> AggregateGlobalRows(const std::vector<uint64_t>& rows,
                                     const std::string& column, AggKind kind,
                                     ThreadPool* pool = nullptr) const;

  /// Sum of imprint storage across all shards.
  uint64_t IndexStorageBytes() const;

  /// Rebinds the router's cache budget (the SQL session's per-session
  /// knob). Not thread-safe against queries in flight.
  void set_cache_budget(uint64_t budget_bytes);

  /// The cache this router consults, or nullptr when cache-off.
  cache::QueryResultCache* result_cache() const { return cache_; }

 private:
  Result<SelectionResult> Execute(const Geometry& geometry, double buffer,
                                  const std::vector<AttributeRange>& thematic);

  /// Tier (a)/(c) key prefix: the byte image of the shard layout
  /// (layout id, persisted generation, shard count and every referenced
  /// column's epoch in every shard) plus the query and the result-shaping
  /// knobs — re-sharding or a single-shard append changes it by
  /// construction.
  Result<std::string> SelectionKey(
      const Geometry& geometry, double buffer,
      const std::vector<AttributeRange>& thematic) const;

  std::shared_ptr<ShardedTable> table_;
  EngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// shards_[i] covers global rows [bases_[i], bases_[i] + rows_i).
  std::vector<uint64_t> bases_;
  /// One pool for the scatter loop and every shard engine; null = serial.
  std::unique_ptr<ThreadPool> pool_;
  /// Keeps a private cache instance alive; null when using Global().
  std::shared_ptr<cache::QueryResultCache> cache_owner_;
  /// The cache every query consults; nullptr = cache-off.
  cache::QueryResultCache* cache_ = nullptr;
};

/// Global-row value access across shards for the SQL layer: caches one
/// ColumnPtr per shard and translates global ids on each read.
class ShardedColumnReader {
 public:
  static Result<ShardedColumnReader> Make(const ShardRouter& router,
                                          const std::string& column);

  double GetDouble(uint64_t global_row) const;
  DataType type() const { return columns_.empty() ? DataType::kFloat64
                                                  : columns_[0]->type(); }

 private:
  ShardedColumnReader() = default;

  std::vector<ColumnPtr> columns_;  ///< one per shard
  std::vector<uint64_t> bases_;
};

}  // namespace geocol

#endif  // GEOCOL_CORE_SHARD_ROUTER_H_
