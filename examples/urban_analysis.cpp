// Scenario 2 of the demo (§4.2): ad-hoc queries combining the point cloud
// with the OSM-like road network and the Urban-Atlas-like land-use layer,
// through the SQL front end, with per-operator plans — and Figure 2 (the
// vector overlay) rendered as a PPM.
//
// Usage: urban_analysis [output_dir]
#include <cstdio>
#include <string>

#include "examples/render.h"
#include "gis/catalog.h"
#include "pointcloud/generator.h"
#include "pointcloud/vector_gen.h"
#include "sql/session.h"

using namespace geocol;

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : ".";

  // ---- datasets: AHN2-like points + OSM-like + Urban-Atlas-like layers.
  AhnGeneratorOptions options;
  options.extent = Box(85000, 444000, 85800, 444800);
  AhnGenerator generator(options);
  auto table_result = generator.GenerateTable(400000);
  if (!table_result.ok()) return 1;

  Catalog catalog;
  if (!catalog.AddPointCloud("ahn2", *table_result).ok()) return 1;

  TerrainModel terrain(options.seed);
  OsmGenerator osm(11, options.extent, terrain);
  auto roads = osm.GenerateRoads(80);
  auto rivers = osm.GenerateRivers(6);
  auto pois = osm.GeneratePois(150);
  auto osm_features = roads;
  for (auto& r : rivers) osm_features.push_back(r);
  for (auto& p : pois) osm_features.push_back(p);
  if (!catalog.AddLayer(VectorLayer::FromFeatures("osm", osm_features)).ok()) {
    return 1;
  }

  UrbanAtlasGenerator ua(12, options.extent, terrain);
  auto land_use = ua.GenerateLandUse(12);
  auto corridors = ua.GenerateTransitCorridors(roads, 20.0);
  size_t n_corridors = corridors.size();
  for (auto& c : corridors) land_use.push_back(c);
  if (!catalog.AddLayer(VectorLayer::FromFeatures("urban_atlas", land_use))
           .ok()) {
    return 1;
  }
  std::printf("catalog: ahn2 (%llu pts), osm (%zu features), urban_atlas "
              "(%zu features, %zu fast-transit corridors)\n\n",
              static_cast<unsigned long long>((*table_result)->num_rows()),
              osm_features.size(), land_use.size(), n_corridors);

  // ---- the demo's predefined ad-hoc queries.
  sql::Session session(&catalog);
  const char* queries[] = {
      // Spatial + thematic discovery across datasets:
      "SELECT COUNT(*) FROM ahn2 WHERE NEAR(urban_atlas, 12210, 25)",
      "SELECT AVG(z) FROM ahn2 WHERE NEAR(urban_atlas, 12210, 25)",
      "SELECT COUNT(*), AVG(z), MIN(z), MAX(z) FROM ahn2 "
      "WHERE ST_Within(pt, 'BOX(85200 444200, 85500 444500)')",
      "SELECT COUNT(*) FROM ahn2 WHERE ST_Within(pt, "
      "'BOX(85200 444200, 85500 444500)') AND classification = 6",
      "SELECT id, class, name FROM osm WHERE ST_Intersects(geom, "
      "'BOX(85200 444200, 85400 444400)') LIMIT 5",
      "SELECT COUNT(*) FROM urban_atlas WHERE class = 12210",
      "EXPLAIN SELECT AVG(z) FROM ahn2 WHERE NEAR(urban_atlas, 12210, 25)",
  };

  for (const char* q : queries) {
    std::printf("geocol> %s\n", q);
    auto rs = session.Execute(q);
    if (!rs.ok()) {
      std::fprintf(stderr, "error: %s\n", rs.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", rs->ToString(8).c_str());
  }

  // The per-operator breakdown of the last *executed* query — "the
  // execution time spent in each operator" the demo shows its users.
  std::printf("last executed plan:\n%s\n", session.last_plan().c_str());

  // ---- Figure 2: roads, rivers and land cover overlay.
  auto osm_layer = catalog.GetLayer("osm");
  auto ua_layer = catalog.GetLayer("urban_atlas");
  if (!osm_layer.ok() || !ua_layer.ok()) return 1;
  std::string figure2 = out_dir + "/figure2_overlay.ppm";
  Status st = examples::RenderLayers(
      options.extent, {ua_layer->get(), osm_layer->get()}, figure2, 900);
  if (!st.ok()) {
    std::fprintf(stderr, "render failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Figure 2 rendered to %s\n", figure2.c_str());
  return 0;
}
