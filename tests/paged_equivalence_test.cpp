// Differential paged-vs-resident suite (DESIGN.md §14): the same seeded
// workload runs through a SpatialQueryEngine over the resident open of a
// persisted table (the oracle) and over its paged open — GCL2 raw and
// GPC1 chunk-compressed — for every {thread count} x {SIMD level} x
// {chunk-cache budget} configuration. Row ids, imprint/refine counters
// and aggregate values must be bit-identical everywhere: demand paging is
// an execution detail, never an answer detail.
//
// Also here: the eviction-under-concurrency hammer (many threads scanning
// under a budget far below the working set) and the fault-injection sweep
// (a torn read or flipped bit at every fallible operation of a paged scan
// must produce a clean error or a correct answer — never a wrong one).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "cache/chunk_cache.h"
#include "columns/column_file.h"
#include "columns/paged_column.h"
#include "columns/sharded_table.h"
#include "core/imprint_scan.h"
#include "core/spatial_engine.h"
#include "geom/geometry.h"
#include "simd/dispatch.h"
#include "util/fault_injection.h"
#include "util/fd_cache.h"
#include "util/rng.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

// 100k rows spans four 256 KiB chunks per double column, so paged scans
// cross several chunk seams and a tiny budget actually evicts.
constexpr size_t kRows = 100000;
constexpr double kWorld = 1000.0;

std::shared_ptr<FlatTable> MakeTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  Box extent(0, 0, kWorld, kWorld);
  std::vector<double> xs(n), ys(n), zs(n);
  std::vector<uint8_t> cls(n);
  std::vector<uint16_t> intensity(n);
  for (size_t i = 0; i < n; ++i) {
    double cx = (i % 5) * extent.width() / 5.0;
    double cy = (i % 7) * extent.height() / 7.0;
    xs[i] = std::clamp(cx + rng.UniformDouble(0, extent.width() / 6.0),
                       extent.min_x, extent.max_x);
    ys[i] = std::clamp(cy + rng.UniformDouble(0, extent.height() / 8.0),
                       extent.min_y, extent.max_y);
    zs[i] = rng.UniformDouble(-5, 40);
    cls[i] = static_cast<uint8_t>(rng.Uniform(10));
    intensity[i] = static_cast<uint16_t>(rng.Uniform(256));
  }
  auto t = std::make_shared<FlatTable>("pc");
  EXPECT_TRUE(t->AddColumn(Column::FromVector("x", xs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("y", ys)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("z", zs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("classification", cls)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("intensity", intensity)).ok());
  return t;
}

struct WorkloadQuery {
  Geometry geometry{Box(0, 0, 1, 1)};
  double buffer = 0.0;
  std::vector<AttributeRange> thematic;
  bool aggregate = false;
  AggKind kind = AggKind::kAvg;
  std::string agg_column;
};

std::vector<WorkloadQuery> MakeWorkload(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<WorkloadQuery> queries;
  for (size_t i = 0; i < count; ++i) {
    WorkloadQuery q;
    if (rng.NextBool(0.6)) {
      double x = rng.UniformDouble(0, kWorld * 0.8);
      double y = rng.UniformDouble(0, kWorld * 0.8);
      q.geometry = Geometry(Box(x, y, x + rng.UniformDouble(1, kWorld * 0.3),
                                y + rng.UniformDouble(1, kWorld * 0.3)));
    } else {
      Point c{rng.UniformDouble(kWorld * 0.2, kWorld * 0.8),
              rng.UniformDouble(kWorld * 0.2, kWorld * 0.8)};
      int n = 3 + static_cast<int>(rng.Uniform(8));
      Polygon p;
      for (int j = 0; j < n; ++j) {
        double a = 2 * M_PI * j / n;
        double r = rng.UniformDouble(kWorld * 0.05, kWorld * 0.25);
        p.shell.points.push_back(
            {c.x + r * std::cos(a), c.y + r * std::sin(a)});
      }
      q.geometry = Geometry(std::move(p));
    }
    if (rng.NextBool(0.5)) {
      q.thematic.push_back({"classification",
                            static_cast<double>(rng.Uniform(6)),
                            static_cast<double>(4 + rng.Uniform(6))});
    }
    if (rng.NextBool(0.4)) {
      q.aggregate = true;
      q.kind = static_cast<AggKind>(rng.Uniform(5));
      q.agg_column = rng.NextBool() ? "z" : "intensity";
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

bool SameBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

void ExpectFilterStatsEq(const ImprintScanStats& a, const ImprintScanStats& b,
                         const char* what) {
  EXPECT_EQ(a.lines_total, b.lines_total) << what;
  EXPECT_EQ(a.lines_candidate, b.lines_candidate) << what;
  EXPECT_EQ(a.lines_full, b.lines_full) << what;
  EXPECT_EQ(a.values_checked, b.values_checked) << what;
  EXPECT_EQ(a.rows_selected, b.rows_selected) << what;
  EXPECT_EQ(a.rows_full, b.rows_full) << what;
}

struct SimdLevelGuard {
  ~SimdLevelGuard() { simd::SetSimdLevel(simd::MaxSupportedSimdLevel()); }
};

/// Restores the process-wide chunk-cache budget and contents on exit so
/// budget experiments here never leak into other tests in this binary.
struct ChunkCacheGuard {
  uint64_t saved = cache::ChunkCache::Global().budget_bytes();
  ~ChunkCacheGuard() {
    cache::ChunkCache::Global().SetBudget(saved);
    cache::ChunkCache::Global().Clear();
  }
};

struct PagedConfig {
  uint32_t threads;
  simd::SimdLevel level;
  uint64_t budget_bytes;  ///< 0 = leave the (large) default
};

std::vector<PagedConfig> Configs() {
  // A 1 MiB budget is below one 256 KiB chunk per cache shard, so most
  // inserts drop and scans continuously re-fault — the degraded mode must
  // still answer identically. 1 GiB never evicts.
  constexpr uint64_t kTiny = 1ull << 20;
  constexpr uint64_t kUnbounded = 1ull << 30;
  std::vector<PagedConfig> configs = {
      {1, simd::SimdLevel::kScalar, kTiny},
      {1, simd::SimdLevel::kScalar, kUnbounded},
      {3, simd::SimdLevel::kScalar, kTiny},
      {3, simd::SimdLevel::kScalar, kUnbounded},
  };
  if (simd::MaxSupportedSimdLevel() != simd::SimdLevel::kScalar) {
    configs.push_back({1, simd::MaxSupportedSimdLevel(), kTiny});
    configs.push_back({1, simd::MaxSupportedSimdLevel(), kUnbounded});
    configs.push_back({3, simd::MaxSupportedSimdLevel(), kTiny});
    configs.push_back({3, simd::MaxSupportedSimdLevel(), kUnbounded});
  }
  return configs;
}

TEST(PagedEquivalenceTest, PagedMatchesResidentAcrossThreadsSimdBudgets) {
  SimdLevelGuard simd_guard;
  ChunkCacheGuard cache_guard;
  TempDir dir("paged-eq");
  auto source = MakeTable(kRows, 17);
  ASSERT_TRUE(WriteTableDir(*source, dir.File("raw")).ok());
  ASSERT_TRUE(
      WriteChunkedCompressedTableDir(*source, dir.File("gpc")).ok());
  auto workload = MakeWorkload(4321, 16);

  for (const PagedConfig& cfg : Configs()) {
    SCOPED_TRACE(testing::Message()
                 << "threads=" << cfg.threads
                 << " simd=" << simd::SimdLevelName(cfg.level)
                 << " budget=" << (cfg.budget_bytes >> 20) << "MiB");
    simd::SetSimdLevel(cfg.level);
    cache::ChunkCache::Global().SetBudget(cfg.budget_bytes);
    cache::ChunkCache::Global().Clear();

    EngineOptions opts;
    opts.num_threads = cfg.threads;

    // Oracle: the resident open of the same files, same config.
    auto resident = ReadTableDir(dir.File("raw"));
    ASSERT_TRUE(resident.ok()) << resident.status().ToString();
    SpatialQueryEngine oracle(std::make_shared<FlatTable>(std::move(*resident)),
                              opts);

    for (const char* sub : {"raw", "gpc"}) {
      SCOPED_TRACE(testing::Message() << "format=" << sub);
      auto paged = ReadTableDirPaged(dir.File(sub));
      ASSERT_TRUE(paged.ok()) << paged.status().ToString();
      for (const ColumnPtr& col : paged->columns()) {
        ASSERT_TRUE(col->paged());
      }
      SpatialQueryEngine engine(std::make_shared<FlatTable>(std::move(*paged)),
                                opts);

      // Under the tiny budget every insert drops, so each GPC1 fault
      // re-decompresses its chunk — the degraded mode is ~20x slower per
      // query than raw. Cover it with a strided subset so every
      // config x format cell stays tested without dominating the suite.
      const size_t stride =
          (cfg.budget_bytes < (4ull << 20) && std::strcmp(sub, "gpc") == 0)
              ? 3
              : 1;
      for (size_t i = 0; i < workload.size(); i += stride) {
        SCOPED_TRACE(testing::Message() << "query " << i);
        const WorkloadQuery& q = workload[i];
        auto want = oracle.Select(q.geometry, q.buffer, q.thematic);
        ASSERT_TRUE(want.ok()) << want.status().ToString();
        auto got = engine.Select(q.geometry, q.buffer, q.thematic);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        // The headline contract: identical row ids AND identical pruning
        // counters — the paged tier reads exactly the cachelines the
        // resident tier reads, it just faults them from disk.
        EXPECT_EQ(got->row_ids, want->row_ids);
        ExpectFilterStatsEq(got->filter_x, want->filter_x, "x");
        ExpectFilterStatsEq(got->filter_y, want->filter_y, "y");
        if (q.aggregate) {
          auto want_v = oracle.Aggregate(q.geometry, q.buffer, q.thematic,
                                         q.agg_column, q.kind);
          auto got_v = engine.Aggregate(q.geometry, q.buffer, q.thematic,
                                        q.agg_column, q.kind);
          ASSERT_TRUE(want_v.ok());
          ASSERT_TRUE(got_v.ok()) << got_v.status().ToString();
          EXPECT_TRUE(SameBits(*got_v, *want_v))
              << *got_v << " vs " << *want_v;
        }
      }
    }
  }
}

// Many threads scanning a paged table whose working set is far above the
// chunk-cache budget: every pin must observe the exact bytes written, no
// matter how often its chunk is concurrently evicted or its insert is
// dropped. Values encode their row index, so one wrong, stale or torn
// chunk is caught immediately.
TEST(PagedEquivalenceTest, EvictionUnderConcurrencyNeverServesWrongBytes) {
  ChunkCacheGuard cache_guard;
  TempDir dir("paged-hammer");
  const size_t n = 1 << 18;  // 8 chunks of doubles
  {
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i);
    FlatTable t("hammer");
    ASSERT_TRUE(t.AddColumn(Column::FromVector("v", v)).ok());
    ASSERT_TRUE(WriteTableDir(t, dir.File("t")).ok());
  }
  // Budget below two chunks total: concurrent scans fight over what
  // little fits, so evictions and dropped inserts happen constantly.
  cache::ChunkCache::Global().SetBudget(1 << 19);
  cache::ChunkCache::Global().Clear();

  auto paged = ReadTableDirPaged(dir.File("t"));
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  ColumnPtr col = paged->column("v");
  ASSERT_TRUE(col->paged());

  std::atomic<int> failures{0};
  auto worker = [&](uint64_t seed) {
    Rng rng(seed);
    const size_t chunk_rows = col->chunk_rows();
    const size_t chunks = col->num_chunks();
    for (int iter = 0; iter < 60; ++iter) {
      size_t c = rng.Uniform(static_cast<uint32_t>(chunks));
      auto pin = col->PinChunk(c);
      if (!pin.ok()) {
        ++failures;
        return;
      }
      const double* vals = pin->values<double>();
      for (size_t k = 0; k < pin->row_count; ++k) {
        if (vals[k] != static_cast<double>(c * chunk_rows + k)) {
          ++failures;
          return;
        }
      }
      // Interleave whole-column scans so pins, faults and evictions
      // overlap across threads.
      if (iter % 8 == 0) {
        BitVector rows;
        Status st = FullScanRangeSelect(*col, 1000.0, 2000.0, &rows);
        if (!st.ok() || rows.Count() != 1001) {
          ++failures;
          return;
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (uint64_t t = 0; t < 8; ++t) threads.emplace_back(worker, t + 1);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  cache::ChunkCache::Stats stats = cache::ChunkCache::Global().GetStats();
  EXPECT_LE(stats.bytes, cache::ChunkCache::Global().budget_bytes());
}

// Arms one storage fault at every fallible operation of a paged scan in
// turn — flipped bit, short read, hard EIO — and requires a clean error
// or a bit-correct answer every time. A transient EINTR must be absorbed
// by the positioned-read retry and still answer correctly.
TEST(PagedEquivalenceTest, FaultSweepNeverReturnsWrongAnswers) {
  ChunkCacheGuard cache_guard;
  TempDir dir("paged-faults");
  const size_t n = 1 << 17;  // 4 chunks of doubles
  std::vector<double> v(n);
  Rng rng(5);
  for (size_t i = 0; i < n; ++i) v[i] = rng.UniformDouble(0, 100);
  {
    FlatTable t("faulty");
    ASSERT_TRUE(t.AddColumn(Column::FromVector("v", v)).ok());
    ASSERT_TRUE(WriteTableDir(t, dir.File("raw")).ok());
    ASSERT_TRUE(WriteChunkedCompressedTableDir(t, dir.File("gpc")).ok());
  }

  // Reference result from the resident open.
  BitVector want;
  {
    auto resident = ReadTableDir(dir.File("raw"));
    ASSERT_TRUE(resident.ok());
    ASSERT_TRUE(
        FullScanRangeSelect(*resident->column("v"), 25.0, 75.0, &want).ok());
  }

  auto& fi = FaultInjector::Global();
  for (const char* sub : {"raw", "gpc"}) {
    SCOPED_TRACE(testing::Message() << "format=" << sub);
    auto paged = ReadTableDirPaged(dir.File(sub));
    ASSERT_TRUE(paged.ok()) << paged.status().ToString();
    ColumnPtr col = paged->column("v");

    auto run_scan = [&]() -> Result<uint64_t> {
      // Cold caches every run so each attempt re-opens and re-faults —
      // otherwise only the first run would touch the disk at all.
      cache::ChunkCache::Global().Clear();
      FdCache::Global().Clear();
      BitVector rows;
      GEOCOL_RETURN_NOT_OK(FullScanRangeSelect(*col, 25.0, 75.0, &rows));
      if (!(rows == want)) {
        return Status::Internal("scan returned WRONG bits under fault");
      }
      return rows.Count();
    };

    fi.StartCounting();
    auto clean = run_scan();
    uint64_t total_ops = fi.StopCounting();
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    ASSERT_GT(total_ops, 0u);

    uint64_t errors = 0;
    for (uint64_t k = 1; k <= total_ops; ++k) {
      {
        SCOPED_TRACE(testing::Message() << "bitflip at op " << k);
        fi.ArmBitFlip(k, 37, 5);
        auto r = run_scan();
        fi.Disarm();
        // Either the armed op was not a payload read (clean answer), or
        // the CRC check catches the flip (clean error). run_scan already
        // failed the test if wrong bits came back.
        if (!r.ok()) {
          ++errors;
          EXPECT_EQ(r.status().ToString().find("WRONG"), std::string::npos)
              << r.status().ToString();
        }
      }
      {
        SCOPED_TRACE(testing::Message() << "short read at op " << k);
        fi.ArmShortRead(k, 16);
        auto r = run_scan();
        fi.Disarm();
        if (!r.ok()) {
          EXPECT_EQ(r.status().ToString().find("WRONG"), std::string::npos)
              << r.status().ToString();
        }
      }
      {
        SCOPED_TRACE(testing::Message() << "crash at op " << k);
        fi.ArmCrashAtOp(k);
        auto r = run_scan();
        fi.Disarm();
        // Every op from k on fails: the scan cannot produce a result.
        EXPECT_FALSE(r.ok());
        EXPECT_EQ(r.status().ToString().find("WRONG"), std::string::npos)
            << r.status().ToString();
      }
    }
    // Sanity: the bit flips did land on payload reads at least once.
    EXPECT_GT(errors, 0u);

    // One transient EINTR per op must be invisible: the bounded retry in
    // PreadExact absorbs it and the scan still answers bit-identically.
    for (uint64_t k = 1; k <= total_ops; ++k) {
      fi.ArmTransientErrors(k, 1);
      auto r = run_scan();
      fi.Disarm();
      EXPECT_TRUE(r.ok()) << "op " << k << ": " << r.status().ToString();
    }
  }
}

// Paged columns are a read-only tier: every mutating entry point must
// refuse cleanly rather than assert or scribble.
TEST(PagedEquivalenceTest, MutationPathsRejectPagedColumns) {
  TempDir dir("paged-ro");
  auto source = MakeTable(8192, 3);
  ASSERT_TRUE(WriteTableDir(*source, dir.File("t")).ok());
  auto paged = ReadTableDirPaged(dir.File("t"));
  ASSERT_TRUE(paged.ok());

  std::vector<uint64_t> perm(paged->num_rows());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = perm.size() - 1 - i;
  EXPECT_FALSE(paged->PermuteRows(perm).ok());

  ShardingOptions so;
  so.num_shards = 2;
  EXPECT_FALSE(ShardedTable::Create(*paged, so).ok());

  double one = 1.0;
  EXPECT_FALSE(Column::CloneAppend(paged->column("z"), &one, 1).ok());
}

}  // namespace
}  // namespace geocol
