// AVX2 kernel overlay: 256-bit versions of the filter/refine inner loops,
// plus hardware gathers for the types the ISA covers. This translation
// unit is compiled with -mavx2 (per-file); dispatch only binds it when
// cpuid + xgetbv report AVX2 with OS ymm support. Remainder tails always
// run the scalar reference, so results stay bit-identical.
#include "simd/kernels_generic.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace geocol {
namespace simd {
namespace {

// std::min(best, d): d replaces best only when d < best; NaN d keeps best.
inline __m256d MinStd(__m256d best, __m256d d) {
  return _mm256_blendv_pd(best, d, _mm256_cmp_pd(d, best, _CMP_LT_OQ));
}

// ---- range-compare -----------------------------------------------------

uint64_t RangeF64(const double* v, size_t n, double lo, double hi,
                  uint64_t* out) {
  const __m256d vlo = _mm256_set1_pd(lo), vhi = _mm256_set1_pd(hi);
  const size_t full = n / 64;
  uint64_t selected = 0;
  size_t w = 0;
  for (; w < full; ++w) {
    const double* p = v + w * 64;
    uint64_t word = 0;
    for (int k = 0; k < 16; ++k) {
      __m256d x = _mm256_loadu_pd(p + 4 * k);
      __m256d m = _mm256_and_pd(_mm256_cmp_pd(x, vlo, _CMP_GE_OQ),
                                _mm256_cmp_pd(x, vhi, _CMP_LE_OQ));
      word |= static_cast<uint64_t>(_mm256_movemask_pd(m)) << (4 * k);
    }
    out[w] = word;
    selected += static_cast<uint64_t>(std::popcount(word));
  }
  const size_t done = full * 64;
  if (done < n) {
    selected += generic::RangeSelectBits(v + done, n - done, lo, hi, out + w);
  }
  return selected;
}

uint64_t RangeF32(const float* v, size_t n, float lo, float hi,
                  uint64_t* out) {
  const __m256 vlo = _mm256_set1_ps(lo), vhi = _mm256_set1_ps(hi);
  const size_t full = n / 64;
  uint64_t selected = 0;
  size_t w = 0;
  for (; w < full; ++w) {
    const float* p = v + w * 64;
    uint64_t word = 0;
    for (int k = 0; k < 8; ++k) {
      __m256 x = _mm256_loadu_ps(p + 8 * k);
      __m256 m = _mm256_and_ps(_mm256_cmp_ps(x, vlo, _CMP_GE_OQ),
                               _mm256_cmp_ps(x, vhi, _CMP_LE_OQ));
      word |= static_cast<uint64_t>(
                  static_cast<uint32_t>(_mm256_movemask_ps(m)) & 0xFFu)
              << (8 * k);
    }
    out[w] = word;
    selected += static_cast<uint64_t>(std::popcount(word));
  }
  const size_t done = full * 64;
  if (done < n) {
    selected += generic::RangeSelectBits(v + done, n - done, lo, hi, out + w);
  }
  return selected;
}

template <typename T>
uint64_t Range8(const T* v, size_t n, T lo, T hi, uint64_t* out) {
  // AVX2 has only signed byte compares; unsigned values get the sign bit
  // flipped so the signed order matches the unsigned one.
  const __m256i bias = std::is_signed_v<T>
                           ? _mm256_setzero_si256()
                           : _mm256_set1_epi8(static_cast<char>(0x80));
  const __m256i vlo =
      _mm256_xor_si256(_mm256_set1_epi8(static_cast<char>(lo)), bias);
  const __m256i vhi =
      _mm256_xor_si256(_mm256_set1_epi8(static_cast<char>(hi)), bias);
  const size_t full = n / 64;
  uint64_t selected = 0;
  size_t w = 0;
  for (; w < full; ++w) {
    const __m256i* p = reinterpret_cast<const __m256i*>(v + w * 64);
    uint64_t word = 0;
    for (int k = 0; k < 2; ++k) {
      __m256i x = _mm256_xor_si256(_mm256_loadu_si256(p + k), bias);
      __m256i bad = _mm256_or_si256(_mm256_cmpgt_epi8(vlo, x),
                                    _mm256_cmpgt_epi8(x, vhi));
      uint64_t good = ~static_cast<uint32_t>(_mm256_movemask_epi8(bad));
      word |= good << (32 * k);
    }
    out[w] = word;
    selected += static_cast<uint64_t>(std::popcount(word));
  }
  const size_t done = full * 64;
  if (done < n) {
    selected += generic::RangeSelectBits(v + done, n - done, lo, hi, out + w);
  }
  return selected;
}

template <typename T>
uint64_t Range16(const T* v, size_t n, T lo, T hi, uint64_t* out) {
  // Two 16-lane compares pack to one 32-byte mask. packs interleaves the
  // 128-bit halves, so a cross-lane permute restores the sequential order
  // before movemask.
  const __m256i bias = std::is_signed_v<T>
                           ? _mm256_setzero_si256()
                           : _mm256_set1_epi16(short(0x8000));
  const __m256i vlo =
      _mm256_xor_si256(_mm256_set1_epi16(static_cast<short>(lo)), bias);
  const __m256i vhi =
      _mm256_xor_si256(_mm256_set1_epi16(static_cast<short>(hi)), bias);
  const size_t full = n / 64;
  uint64_t selected = 0;
  size_t w = 0;
  for (; w < full; ++w) {
    const __m256i* p = reinterpret_cast<const __m256i*>(v + w * 64);
    uint64_t word = 0;
    for (int k = 0; k < 2; ++k) {
      __m256i x0 = _mm256_xor_si256(_mm256_loadu_si256(p + 2 * k), bias);
      __m256i x1 = _mm256_xor_si256(_mm256_loadu_si256(p + 2 * k + 1), bias);
      __m256i bad0 = _mm256_or_si256(_mm256_cmpgt_epi16(vlo, x0),
                                     _mm256_cmpgt_epi16(x0, vhi));
      __m256i bad1 = _mm256_or_si256(_mm256_cmpgt_epi16(vlo, x1),
                                     _mm256_cmpgt_epi16(x1, vhi));
      __m256i bad = _mm256_permute4x64_epi64(_mm256_packs_epi16(bad0, bad1),
                                             _MM_SHUFFLE(3, 1, 2, 0));
      uint64_t good = ~static_cast<uint32_t>(_mm256_movemask_epi8(bad));
      word |= good << (32 * k);
    }
    out[w] = word;
    selected += static_cast<uint64_t>(std::popcount(word));
  }
  const size_t done = full * 64;
  if (done < n) {
    selected += generic::RangeSelectBits(v + done, n - done, lo, hi, out + w);
  }
  return selected;
}

template <typename T>
uint64_t Range32(const T* v, size_t n, T lo, T hi, uint64_t* out) {
  const __m256i bias = std::is_signed_v<T>
                           ? _mm256_setzero_si256()
                           : _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vlo =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(lo)), bias);
  const __m256i vhi =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(hi)), bias);
  const size_t full = n / 64;
  uint64_t selected = 0;
  size_t w = 0;
  for (; w < full; ++w) {
    const __m256i* p = reinterpret_cast<const __m256i*>(v + w * 64);
    uint64_t word = 0;
    for (int k = 0; k < 8; ++k) {
      __m256i x = _mm256_xor_si256(_mm256_loadu_si256(p + k), bias);
      __m256i bad = _mm256_or_si256(_mm256_cmpgt_epi32(vlo, x),
                                    _mm256_cmpgt_epi32(x, vhi));
      uint64_t good =
          ~static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(bad))) &
          0xFFu;
      word |= good << (8 * k);
    }
    out[w] = word;
    selected += static_cast<uint64_t>(std::popcount(word));
  }
  const size_t done = full * 64;
  if (done < n) {
    selected += generic::RangeSelectBits(v + done, n - done, lo, hi, out + w);
  }
  return selected;
}

template <typename T>
uint64_t Range64(const T* v, size_t n, T lo, T hi, uint64_t* out) {
  const __m256i bias =
      std::is_signed_v<T>
          ? _mm256_setzero_si256()
          : _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  const __m256i vlo =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(lo)), bias);
  const __m256i vhi =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(hi)), bias);
  const size_t full = n / 64;
  uint64_t selected = 0;
  size_t w = 0;
  for (; w < full; ++w) {
    const __m256i* p = reinterpret_cast<const __m256i*>(v + w * 64);
    uint64_t word = 0;
    for (int k = 0; k < 16; ++k) {
      __m256i x = _mm256_xor_si256(_mm256_loadu_si256(p + k), bias);
      __m256i bad = _mm256_or_si256(_mm256_cmpgt_epi64(vlo, x),
                                    _mm256_cmpgt_epi64(x, vhi));
      uint64_t good =
          ~static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(bad))) &
          0xFu;
      word |= good << (4 * k);
    }
    out[w] = word;
    selected += static_cast<uint64_t>(std::popcount(word));
  }
  const size_t done = full * 64;
  if (done < n) {
    selected += generic::RangeSelectBits(v + done, n - done, lo, hi, out + w);
  }
  return selected;
}

// ---- gathers -----------------------------------------------------------

void GatherF64(const double* base, const uint64_t* rows, size_t n,
               double* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    _mm256_storeu_pd(out + i, _mm256_i64gather_pd(base, idx, 8));
  }
  if (i < n) generic::GatherDouble(base, rows + i, n - i, out + i);
}

void GatherF32(const float* base, const uint64_t* rows, size_t n,
               double* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    __m128 v = _mm256_i64gather_ps(base, idx, 4);
    _mm256_storeu_pd(out + i, _mm256_cvtps_pd(v));
  }
  if (i < n) generic::GatherDouble(base, rows + i, n - i, out + i);
}

void GatherI32(const int32_t* base, const uint64_t* rows, size_t n,
               double* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    __m128i v = _mm256_i64gather_epi32(base, idx, 4);
    _mm256_storeu_pd(out + i, _mm256_cvtepi32_pd(v));
  }
  if (i < n) generic::GatherDouble(base, rows + i, n - i, out + i);
}

// ---- grid cell assignment ---------------------------------------------

// Picks the high dword of each 64-bit compare mask, giving a 4x32-bit mask.
inline __m128i NarrowMask(__m256d m) {
  const __m256 mps = _mm256_castpd_ps(m);
  const __m128 lo = _mm256_castps256_ps128(mps);
  const __m128 hi = _mm256_extractf128_ps(mps, 1);
  return _mm_castps_si128(_mm_shuffle_ps(lo, hi, _MM_SHUFFLE(3, 1, 3, 1)));
}

void CellOf(const double* xs, const double* ys, size_t n, const GridParams& g,
            uint64_t* cells) {
  const __m256d minx = _mm256_set1_pd(g.min_x), miny = _mm256_set1_pd(g.min_y);
  const __m256d invw = _mm256_set1_pd(g.inv_w), invh = _mm256_set1_pd(g.inv_h);
  const __m256d colsd = _mm256_set1_pd(static_cast<double>(g.cols));
  const __m256d rowsd = _mm256_set1_pd(static_cast<double>(g.rows));
  const __m256d zero = _mm256_setzero_pd();
  const __m128i colsm1 = _mm_set1_epi32(static_cast<int>(g.cols - 1));
  const __m128i rowsm1 = _mm_set1_epi32(static_cast<int>(g.rows - 1));
  const __m128i cols32 = _mm_set1_epi32(static_cast<int>(g.cols));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d fx =
        _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(xs + i), minx), invw);
    const __m256d fy =
        _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(ys + i), miny), invh);
    const __m256d posx = _mm256_cmp_pd(fx, zero, _CMP_GT_OQ);
    const __m256d ltx = _mm256_cmp_pd(fx, colsd, _CMP_LT_OQ);
    const __m256d posy = _mm256_cmp_pd(fy, zero, _CMP_GT_OQ);
    const __m256d lty = _mm256_cmp_pd(fy, rowsd, _CMP_LT_OQ);
    // In-range lanes convert directly; others are zeroed first so the
    // float->int conversion never sees an out-of-range value, then the
    // clamped edge cell is blended in from the masks.
    const __m128i cxi =
        _mm256_cvttpd_epi32(_mm256_and_pd(fx, _mm256_and_pd(posx, ltx)));
    const __m128i cyi =
        _mm256_cvttpd_epi32(_mm256_and_pd(fy, _mm256_and_pd(posy, lty)));
    const __m128i posx32 = NarrowMask(posx), ltx32 = NarrowMask(ltx);
    const __m128i posy32 = NarrowMask(posy), lty32 = NarrowMask(lty);
    const __m128i cx = _mm_blendv_epi8(
        cxi, colsm1, _mm_andnot_si128(ltx32, posx32));
    const __m128i cy = _mm_blendv_epi8(
        cyi, rowsm1, _mm_andnot_si128(lty32, posy32));
    // cols, rows <= 4096, so cell ids fit comfortably in 32 bits.
    const __m128i cell = _mm_add_epi32(_mm_mullo_epi32(cy, cols32), cx);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cells + i),
                        _mm256_cvtepu32_epi64(cell));
  }
  if (i < n) generic::CellOf(xs + i, ys + i, n - i, g, cells + i);
}

// ---- point-in-ring masks ----------------------------------------------

void RingMasks(const double* xs, const double* ys, size_t n, const Point* pts,
               size_t npts, uint8_t* in_out, uint8_t* edge_out) {
  if (npts < 3) {
    std::memset(in_out, 0, n);
    std::memset(edge_out, 0, n);
    return;
  }
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d px = _mm256_loadu_pd(xs + i), py = _mm256_loadu_pd(ys + i);
    __m256d parity = zero, edge = zero;
    for (size_t e = 0, j = npts - 1; e < npts; j = e++) {
      const Point& a = pts[e];
      const Point& b = pts[j];
      const double dxab = b.x - a.x, dyab = b.y - a.y;
      const __m256d pya = _mm256_sub_pd(py, _mm256_set1_pd(a.y));
      const __m256d pxa = _mm256_sub_pd(px, _mm256_set1_pd(a.x));
      const __m256d t1 = _mm256_mul_pd(_mm256_set1_pd(dxab), pya);
      const __m256d o =
          _mm256_sub_pd(t1, _mm256_mul_pd(_mm256_set1_pd(dyab), pxa));
      __m256d on = _mm256_cmp_pd(o, zero, _CMP_EQ_OQ);
      on = _mm256_and_pd(
          on, _mm256_cmp_pd(px, _mm256_set1_pd(std::min(a.x, b.x)),
                            _CMP_GE_OQ));
      on = _mm256_and_pd(
          on, _mm256_cmp_pd(px, _mm256_set1_pd(std::max(a.x, b.x)),
                            _CMP_LE_OQ));
      on = _mm256_and_pd(
          on, _mm256_cmp_pd(py, _mm256_set1_pd(std::min(a.y, b.y)),
                            _CMP_GE_OQ));
      on = _mm256_and_pd(
          on, _mm256_cmp_pd(py, _mm256_set1_pd(std::max(a.y, b.y)),
                            _CMP_LE_OQ));
      edge = _mm256_or_pd(edge, on);
      const __m256d ca = _mm256_cmp_pd(_mm256_set1_pd(a.y), py, _CMP_GT_OQ);
      const __m256d cb = _mm256_cmp_pd(_mm256_set1_pd(b.y), py, _CMP_GT_OQ);
      const __m256d cross = _mm256_xor_pd(ca, cb);
      // Division is unconditional; lanes where cross is false (including
      // dyab == 0) are masked out, matching the scalar guard.
      const __m256d xc = _mm256_add_pd(
          _mm256_div_pd(t1, _mm256_set1_pd(dyab)), _mm256_set1_pd(a.x));
      const __m256d lt = _mm256_cmp_pd(px, xc, _CMP_LT_OQ);
      parity = _mm256_xor_pd(parity, _mm256_and_pd(cross, lt));
    }
    const int mi = _mm256_movemask_pd(_mm256_or_pd(parity, edge));
    const int me = _mm256_movemask_pd(edge);
    for (int k = 0; k < 4; ++k) {
      in_out[i + k] = static_cast<uint8_t>((mi >> k) & 1);
      edge_out[i + k] = static_cast<uint8_t>((me >> k) & 1);
    }
  }
  if (i < n) {
    generic::RingMasks(xs + i, ys + i, n - i, pts, npts, in_out + i,
                       edge_out + i);
  }
}

void OnSegments(const double* xs, const double* ys, size_t n, const Point* pts,
                size_t npts, uint8_t* out) {
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d px = _mm256_loadu_pd(xs + i), py = _mm256_loadu_pd(ys + i);
    __m256d acc = zero;
    for (size_t s = 1; s < npts; ++s) {
      const Point& a = pts[s - 1];
      const Point& b = pts[s];
      const double dxab = b.x - a.x, dyab = b.y - a.y;
      const __m256d o = _mm256_sub_pd(
          _mm256_mul_pd(_mm256_set1_pd(dxab),
                        _mm256_sub_pd(py, _mm256_set1_pd(a.y))),
          _mm256_mul_pd(_mm256_set1_pd(dyab),
                        _mm256_sub_pd(px, _mm256_set1_pd(a.x))));
      __m256d on = _mm256_cmp_pd(o, zero, _CMP_EQ_OQ);
      on = _mm256_and_pd(
          on, _mm256_cmp_pd(px, _mm256_set1_pd(std::min(a.x, b.x)),
                            _CMP_GE_OQ));
      on = _mm256_and_pd(
          on, _mm256_cmp_pd(px, _mm256_set1_pd(std::max(a.x, b.x)),
                            _CMP_LE_OQ));
      on = _mm256_and_pd(
          on, _mm256_cmp_pd(py, _mm256_set1_pd(std::min(a.y, b.y)),
                            _CMP_GE_OQ));
      on = _mm256_and_pd(
          on, _mm256_cmp_pd(py, _mm256_set1_pd(std::max(a.y, b.y)),
                            _CMP_LE_OQ));
      acc = _mm256_or_pd(acc, on);
    }
    const int m = _mm256_movemask_pd(acc);
    for (int k = 0; k < 4; ++k) {
      out[i + k] = static_cast<uint8_t>((m >> k) & 1);
    }
  }
  if (i < n) generic::OnSegments(xs + i, ys + i, n - i, pts, npts, out + i);
}

// ---- point-segment squared distance (min-accumulated) ------------------

inline void SegmentDist2AccumV(const double* xs, const double* ys, size_t n,
                               const Point& a, const Point& b, double* best) {
  const double abx = b.x - a.x, aby = b.y - a.y;
  const double len2 = abx * abx + aby * aby;
  const __m256d ax = _mm256_set1_pd(a.x), ay = _mm256_set1_pd(a.y);
  size_t i = 0;
  if (len2 == 0.0) {
    for (; i + 4 <= n; i += 4) {
      const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), ax);
      const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + i), ay);
      const __m256d d =
          _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
      _mm256_storeu_pd(best + i, MinStd(_mm256_loadu_pd(best + i), d));
    }
  } else {
    const __m256d vabx = _mm256_set1_pd(abx), vaby = _mm256_set1_pd(aby);
    const __m256d vlen2 = _mm256_set1_pd(len2);
    const __m256d zero = _mm256_setzero_pd(), one = _mm256_set1_pd(1.0);
    for (; i + 4 <= n; i += 4) {
      const __m256d px = _mm256_loadu_pd(xs + i), py = _mm256_loadu_pd(ys + i);
      const __m256d pax = _mm256_sub_pd(px, ax), pay = _mm256_sub_pd(py, ay);
      __m256d t = _mm256_div_pd(
          _mm256_add_pd(_mm256_mul_pd(pax, vabx), _mm256_mul_pd(pay, vaby)),
          vlen2);
      // std::clamp(t, 0, 1): the low clamp wins when both apply; NaN stays.
      t = _mm256_blendv_pd(t, one, _mm256_cmp_pd(one, t, _CMP_LT_OQ));
      t = _mm256_blendv_pd(t, zero, _mm256_cmp_pd(t, zero, _CMP_LT_OQ));
      const __m256d projx = _mm256_add_pd(ax, _mm256_mul_pd(t, vabx));
      const __m256d projy = _mm256_add_pd(ay, _mm256_mul_pd(t, vaby));
      const __m256d dx = _mm256_sub_pd(px, projx);
      const __m256d dy = _mm256_sub_pd(py, projy);
      const __m256d d =
          _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
      _mm256_storeu_pd(best + i, MinStd(_mm256_loadu_pd(best + i), d));
    }
  }
  if (i < n) generic::SegmentDist2Accum(xs + i, ys + i, n - i, a, b, best + i);
}

void SegmentsDist2(const double* xs, const double* ys, size_t n,
                   const Point* pts, size_t npts, bool closed, double* best) {
  if (npts == 0) return;
  if (closed) {
    for (size_t s = 0, j = npts - 1; s < npts; j = s++) {
      SegmentDist2AccumV(xs, ys, n, pts[s], pts[j], best);
    }
  } else {
    for (size_t s = 1; s < npts; ++s) {
      SegmentDist2AccumV(xs, ys, n, pts[s - 1], pts[s], best);
    }
  }
}

void BoxContains(const double* xs, const double* ys, size_t n, const Box& box,
                 uint8_t* out) {
  const __m256d mnx = _mm256_set1_pd(box.min_x);
  const __m256d mxx = _mm256_set1_pd(box.max_x);
  const __m256d mny = _mm256_set1_pd(box.min_y);
  const __m256d mxy = _mm256_set1_pd(box.max_y);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d px = _mm256_loadu_pd(xs + i), py = _mm256_loadu_pd(ys + i);
    __m256d m = _mm256_and_pd(_mm256_cmp_pd(px, mnx, _CMP_GE_OQ),
                              _mm256_cmp_pd(px, mxx, _CMP_LE_OQ));
    m = _mm256_and_pd(m, _mm256_and_pd(_mm256_cmp_pd(py, mny, _CMP_GE_OQ),
                                       _mm256_cmp_pd(py, mxy, _CMP_LE_OQ)));
    const int bits = _mm256_movemask_pd(m);
    for (int k = 0; k < 4; ++k) {
      out[i + k] = static_cast<uint8_t>((bits >> k) & 1);
    }
  }
  if (i < n) generic::BoxContains(xs + i, ys + i, n - i, box, out + i);
}

}  // namespace

void BindAvx2Kernels(KernelTable* t) {
  t->range_i8 = &Range8<int8_t>;
  t->range_u8 = &Range8<uint8_t>;
  t->range_i16 = &Range16<int16_t>;
  t->range_u16 = &Range16<uint16_t>;
  t->range_i32 = &Range32<int32_t>;
  t->range_u32 = &Range32<uint32_t>;
  t->range_i64 = &Range64<int64_t>;
  t->range_u64 = &Range64<uint64_t>;
  t->range_f32 = &RangeF32;
  t->range_f64 = &RangeF64;
  // Hardware gathers where the ISA has them; the narrow integer types and
  // u32/u64 (no unsigned int->double conversion) keep the scalar binding.
  t->gather_i32 = &GatherI32;
  t->gather_f32 = &GatherF32;
  t->gather_f64 = &GatherF64;
  t->cell_of = &CellOf;
  t->ring_masks = &RingMasks;
  t->on_segments = &OnSegments;
  t->segments_dist2 = &SegmentsDist2;
  t->box_contains = &BoxContains;
}

}  // namespace simd
}  // namespace geocol

#else  // !defined(__AVX2__)

namespace geocol {
namespace simd {
void BindAvx2Kernels(KernelTable*) {}
}  // namespace simd
}  // namespace geocol

#endif
