// Scalar binding of the kernel table. These are the reference kernels used
// directly at the kScalar dispatch level (GEOCOL_SIMD=scalar) and as the
// remainder tails of the vector levels.
#include "simd/kernels_generic.h"

namespace geocol {
namespace simd {

void BindScalarKernels(KernelTable* t) {
  t->range_i8 = &generic::RangeSelectBits<int8_t>;
  t->range_u8 = &generic::RangeSelectBits<uint8_t>;
  t->range_i16 = &generic::RangeSelectBits<int16_t>;
  t->range_u16 = &generic::RangeSelectBits<uint16_t>;
  t->range_i32 = &generic::RangeSelectBits<int32_t>;
  t->range_u32 = &generic::RangeSelectBits<uint32_t>;
  t->range_i64 = &generic::RangeSelectBits<int64_t>;
  t->range_u64 = &generic::RangeSelectBits<uint64_t>;
  t->range_f32 = &generic::RangeSelectBits<float>;
  t->range_f64 = &generic::RangeSelectBits<double>;

  t->gather_i8 = &generic::GatherDouble<int8_t>;
  t->gather_u8 = &generic::GatherDouble<uint8_t>;
  t->gather_i16 = &generic::GatherDouble<int16_t>;
  t->gather_u16 = &generic::GatherDouble<uint16_t>;
  t->gather_i32 = &generic::GatherDouble<int32_t>;
  t->gather_u32 = &generic::GatherDouble<uint32_t>;
  t->gather_i64 = &generic::GatherDouble<int64_t>;
  t->gather_u64 = &generic::GatherDouble<uint64_t>;
  t->gather_f32 = &generic::GatherDouble<float>;
  t->gather_f64 = &generic::GatherDouble<double>;

  t->cell_of = &generic::CellOf;
  t->ring_masks = &generic::RingMasks;
  t->on_segments = &generic::OnSegments;
  t->segments_dist2 = &generic::SegmentsDist2;
  t->box_contains = &generic::BoxContains;
}

}  // namespace simd
}  // namespace geocol
