// An STR bulk-loaded R-tree. Two roles in the benchmarks: (a) the
// "primary spatial index" alternative MonetDB deliberately does not use
// (§3.2: "instead of a primary spatial index such as R-tree"), built over
// individual points; (b) the block-bounding-box index of the
// PostgreSQL/Oracle-style block store.
#ifndef GEOCOL_BASELINES_RTREE_H_
#define GEOCOL_BASELINES_RTREE_H_

#include <cstdint>
#include <vector>

#include "geom/geometry.h"
#include "util/status.h"

namespace geocol {

/// Static R-tree over (Box, payload) entries, bulk-loaded with the
/// Sort-Tile-Recursive algorithm.
class RTree {
 public:
  struct Entry {
    Box box;
    uint64_t payload = 0;
  };

  RTree() = default;

  /// Bulk-loads from entries (consumed). `fanout` children per node.
  static RTree BulkLoad(std::vector<Entry> entries, uint32_t fanout = 16);

  size_t num_entries() const { return num_entries_; }
  bool empty() const { return nodes_.empty(); }
  int height() const { return height_; }

  /// Appends payloads of all entries whose box intersects `query`.
  void QueryBox(const Box& query, std::vector<uint64_t>* out) const;

  /// Invokes fn(payload, box) for every intersecting entry.
  template <typename Fn>
  void VisitIntersecting(const Box& query, Fn&& fn) const {
    if (nodes_.empty() || !nodes_[root_].box.Intersects(query)) return;
    Visit(root_, query, fn);
  }

  /// Number of R-tree nodes visited by the last QueryBox (profiling aid —
  /// not thread safe, like most query-local counters in the baselines).
  uint64_t last_nodes_visited() const { return last_nodes_visited_; }

  uint64_t MemoryBytes() const {
    return nodes_.size() * sizeof(Node) + leaf_entries_.size() * sizeof(Entry);
  }

 private:
  struct Node {
    Box box;
    // Children are either node indexes (internal) or a [first, count) slice
    // of leaf_entries_ (leaf).
    uint32_t first = 0;
    uint32_t count = 0;
    bool leaf = false;
  };

  template <typename Fn>
  void Visit(uint32_t node_idx, const Box& query, Fn& fn) const {
    const Node& node = nodes_[node_idx];
    ++last_nodes_visited_;
    if (node.leaf) {
      for (uint32_t i = 0; i < node.count; ++i) {
        const Entry& e = leaf_entries_[node.first + i];
        if (e.box.Intersects(query)) fn(e.payload, e.box);
      }
      return;
    }
    for (uint32_t i = 0; i < node.count; ++i) {
      uint32_t child = children_[node.first + i];
      if (nodes_[child].box.Intersects(query)) Visit(child, query, fn);
    }
  }

  std::vector<Node> nodes_;
  std::vector<uint32_t> children_;
  std::vector<Entry> leaf_entries_;
  uint32_t root_ = 0;
  int height_ = 0;
  size_t num_entries_ = 0;
  mutable uint64_t last_nodes_visited_ = 0;
};

/// Convenience: R-tree over the points of a flat table's x/y columns
/// (payload = row id).
class FlatTable;
Result<RTree> BuildPointRTree(const FlatTable& table, uint32_t fanout = 16);

}  // namespace geocol

#endif  // GEOCOL_BASELINES_RTREE_H_
