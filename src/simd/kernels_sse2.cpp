// SSE2 (x86-64 baseline) kernel overlay: 128-bit branch-free versions of
// the filter/refine inner loops. 64-bit integer compares and the gathers
// stay on the scalar reference (no SSE2 instructions help them); remainder
// tails always run the scalar reference, so results stay bit-identical.
#include "simd/kernels_generic.h"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace geocol {
namespace simd {
namespace {

// std::min(best, d): d replaces best only when d < best; NaN d keeps best.
inline __m128d MinStd(__m128d best, __m128d d) {
  __m128d lt = _mm_cmplt_pd(d, best);
  return _mm_or_pd(_mm_and_pd(lt, d), _mm_andnot_pd(lt, best));
}

inline __m128d Blend(__m128d a, __m128d b, __m128d mask) {
  return _mm_or_pd(_mm_and_pd(mask, b), _mm_andnot_pd(mask, a));
}

// ---- range-compare -----------------------------------------------------

uint64_t RangeF64(const double* v, size_t n, double lo, double hi,
                  uint64_t* out) {
  const __m128d vlo = _mm_set1_pd(lo), vhi = _mm_set1_pd(hi);
  const size_t full = n / 64;
  uint64_t selected = 0;
  size_t w = 0;
  for (; w < full; ++w) {
    const double* p = v + w * 64;
    uint64_t word = 0;
    for (int k = 0; k < 32; ++k) {
      __m128d x = _mm_loadu_pd(p + 2 * k);
      __m128d m = _mm_and_pd(_mm_cmpge_pd(x, vlo), _mm_cmple_pd(x, vhi));
      word |= static_cast<uint64_t>(_mm_movemask_pd(m)) << (2 * k);
    }
    out[w] = word;
    selected += static_cast<uint64_t>(std::popcount(word));
  }
  const size_t done = full * 64;
  if (done < n) {
    selected += generic::RangeSelectBits(v + done, n - done, lo, hi, out + w);
  }
  return selected;
}

uint64_t RangeF32(const float* v, size_t n, float lo, float hi,
                  uint64_t* out) {
  const __m128 vlo = _mm_set1_ps(lo), vhi = _mm_set1_ps(hi);
  const size_t full = n / 64;
  uint64_t selected = 0;
  size_t w = 0;
  for (; w < full; ++w) {
    const float* p = v + w * 64;
    uint64_t word = 0;
    for (int k = 0; k < 16; ++k) {
      __m128 x = _mm_loadu_ps(p + 4 * k);
      __m128 m = _mm_and_ps(_mm_cmpge_ps(x, vlo), _mm_cmple_ps(x, vhi));
      word |= static_cast<uint64_t>(_mm_movemask_ps(m)) << (4 * k);
    }
    out[w] = word;
    selected += static_cast<uint64_t>(std::popcount(word));
  }
  const size_t done = full * 64;
  if (done < n) {
    selected += generic::RangeSelectBits(v + done, n - done, lo, hi, out + w);
  }
  return selected;
}

// Integer helpers: signed compares exist natively; unsigned types flip the
// sign bit so the same signed compare orders them correctly.
template <bool kSigned>
uint64_t RangeI8Impl(const __m128i* blocks_end_unused, const void* vp,
                     size_t n, int8_t lo8, int8_t hi8, uint64_t* out);

uint64_t RangeI8(const int8_t* v, size_t n, int8_t lo, int8_t hi,
                 uint64_t* out) {
  const __m128i vlo = _mm_set1_epi8(lo), vhi = _mm_set1_epi8(hi);
  const size_t full = n / 64;
  uint64_t selected = 0;
  size_t w = 0;
  for (; w < full; ++w) {
    const __m128i* p = reinterpret_cast<const __m128i*>(v + w * 64);
    uint64_t word = 0;
    for (int k = 0; k < 4; ++k) {
      __m128i x = _mm_loadu_si128(p + k);
      __m128i bad = _mm_or_si128(_mm_cmplt_epi8(x, vlo),
                                 _mm_cmpgt_epi8(x, vhi));
      uint64_t good = static_cast<uint16_t>(~_mm_movemask_epi8(bad));
      word |= good << (16 * k);
    }
    out[w] = word;
    selected += static_cast<uint64_t>(std::popcount(word));
  }
  const size_t done = full * 64;
  if (done < n) {
    selected += generic::RangeSelectBits(v + done, n - done, lo, hi, out + w);
  }
  return selected;
}

uint64_t RangeU8(const uint8_t* v, size_t n, uint8_t lo, uint8_t hi,
                 uint64_t* out) {
  const __m128i bias = _mm_set1_epi8(static_cast<char>(0x80));
  const __m128i vlo = _mm_xor_si128(_mm_set1_epi8(static_cast<char>(lo)), bias);
  const __m128i vhi = _mm_xor_si128(_mm_set1_epi8(static_cast<char>(hi)), bias);
  const size_t full = n / 64;
  uint64_t selected = 0;
  size_t w = 0;
  for (; w < full; ++w) {
    const __m128i* p = reinterpret_cast<const __m128i*>(v + w * 64);
    uint64_t word = 0;
    for (int k = 0; k < 4; ++k) {
      __m128i x = _mm_xor_si128(_mm_loadu_si128(p + k), bias);
      __m128i bad = _mm_or_si128(_mm_cmplt_epi8(x, vlo),
                                 _mm_cmpgt_epi8(x, vhi));
      uint64_t good = static_cast<uint16_t>(~_mm_movemask_epi8(bad));
      word |= good << (16 * k);
    }
    out[w] = word;
    selected += static_cast<uint64_t>(std::popcount(word));
  }
  const size_t done = full * 64;
  if (done < n) {
    selected += generic::RangeSelectBits(v + done, n - done, lo, hi, out + w);
  }
  return selected;
}

template <typename T>
uint64_t Range16(const T* v, size_t n, T lo, T hi, uint64_t* out) {
  // 16-bit: compare two 8-lane blocks, pack the (saturating 0/-1) masks to
  // bytes, movemask -> 16 selection bits per iteration.
  const __m128i bias = std::is_signed_v<T> ? _mm_setzero_si128()
                                           : _mm_set1_epi16(short(0x8000));
  const __m128i vlo =
      _mm_xor_si128(_mm_set1_epi16(static_cast<short>(lo)), bias);
  const __m128i vhi =
      _mm_xor_si128(_mm_set1_epi16(static_cast<short>(hi)), bias);
  const size_t full = n / 64;
  uint64_t selected = 0;
  size_t w = 0;
  for (; w < full; ++w) {
    const __m128i* p = reinterpret_cast<const __m128i*>(v + w * 64);
    uint64_t word = 0;
    for (int k = 0; k < 4; ++k) {
      __m128i x0 = _mm_xor_si128(_mm_loadu_si128(p + 2 * k), bias);
      __m128i x1 = _mm_xor_si128(_mm_loadu_si128(p + 2 * k + 1), bias);
      __m128i bad0 = _mm_or_si128(_mm_cmplt_epi16(x0, vlo),
                                  _mm_cmpgt_epi16(x0, vhi));
      __m128i bad1 = _mm_or_si128(_mm_cmplt_epi16(x1, vlo),
                                  _mm_cmpgt_epi16(x1, vhi));
      __m128i bad = _mm_packs_epi16(bad0, bad1);
      uint64_t good = static_cast<uint16_t>(~_mm_movemask_epi8(bad));
      word |= good << (16 * k);
    }
    out[w] = word;
    selected += static_cast<uint64_t>(std::popcount(word));
  }
  const size_t done = full * 64;
  if (done < n) {
    selected += generic::RangeSelectBits(v + done, n - done, lo, hi, out + w);
  }
  return selected;
}

template <typename T>
uint64_t Range32(const T* v, size_t n, T lo, T hi, uint64_t* out) {
  const __m128i bias = std::is_signed_v<T>
                           ? _mm_setzero_si128()
                           : _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i vlo =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int>(lo)), bias);
  const __m128i vhi =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int>(hi)), bias);
  const size_t full = n / 64;
  uint64_t selected = 0;
  size_t w = 0;
  for (; w < full; ++w) {
    const __m128i* p = reinterpret_cast<const __m128i*>(v + w * 64);
    uint64_t word = 0;
    for (int k = 0; k < 16; ++k) {
      __m128i x = _mm_xor_si128(_mm_loadu_si128(p + k), bias);
      __m128i bad = _mm_or_si128(_mm_cmplt_epi32(x, vlo),
                                 _mm_cmpgt_epi32(x, vhi));
      uint64_t good =
          static_cast<unsigned>(~_mm_movemask_ps(_mm_castsi128_ps(bad))) & 0xF;
      word |= good << (4 * k);
    }
    out[w] = word;
    selected += static_cast<uint64_t>(std::popcount(word));
  }
  const size_t done = full * 64;
  if (done < n) {
    selected += generic::RangeSelectBits(v + done, n - done, lo, hi, out + w);
  }
  return selected;
}

// ---- grid cell assignment ---------------------------------------------

void CellOf(const double* xs, const double* ys, size_t n, const GridParams& g,
            uint64_t* cells) {
  const __m128d minx = _mm_set1_pd(g.min_x), miny = _mm_set1_pd(g.min_y);
  const __m128d invw = _mm_set1_pd(g.inv_w), invh = _mm_set1_pd(g.inv_h);
  const __m128d colsd = _mm_set1_pd(static_cast<double>(g.cols));
  const __m128d rowsd = _mm_set1_pd(static_cast<double>(g.rows));
  const __m128d zero = _mm_setzero_pd();
  size_t i = 0;
  alignas(16) int32_t cxa[4], cya[4];
  for (; i + 2 <= n; i += 2) {
    __m128d fx = _mm_mul_pd(_mm_sub_pd(_mm_loadu_pd(xs + i), minx), invw);
    __m128d fy = _mm_mul_pd(_mm_sub_pd(_mm_loadu_pd(ys + i), miny), invh);
    __m128d posx_m = _mm_cmpgt_pd(fx, zero), ltx_m = _mm_cmplt_pd(fx, colsd);
    __m128d posy_m = _mm_cmpgt_pd(fy, zero), lty_m = _mm_cmplt_pd(fy, rowsd);
    // In-range lanes convert directly; others are zeroed first so the
    // float->int conversion never sees an out-of-range value.
    __m128i cx = _mm_cvttpd_epi32(_mm_and_pd(fx, _mm_and_pd(posx_m, ltx_m)));
    __m128i cy = _mm_cvttpd_epi32(_mm_and_pd(fy, _mm_and_pd(posy_m, lty_m)));
    _mm_store_si128(reinterpret_cast<__m128i*>(cxa), cx);
    _mm_store_si128(reinterpret_cast<__m128i*>(cya), cy);
    const int posx = _mm_movemask_pd(posx_m), ltx = _mm_movemask_pd(ltx_m);
    const int posy = _mm_movemask_pd(posy_m), lty = _mm_movemask_pd(lty_m);
    for (int k = 0; k < 2; ++k) {
      int64_t ccx = ((posx >> k) & 1) == 0 ? 0
                    : ((ltx >> k) & 1) != 0 ? cxa[k]
                                            : g.cols - 1;
      int64_t ccy = ((posy >> k) & 1) == 0 ? 0
                    : ((lty >> k) & 1) != 0 ? cya[k]
                                            : g.rows - 1;
      cells[i + k] = static_cast<uint64_t>(ccy) *
                         static_cast<uint64_t>(g.cols) +
                     static_cast<uint64_t>(ccx);
    }
  }
  if (i < n) generic::CellOf(xs + i, ys + i, n - i, g, cells + i);
}

// ---- point-in-ring masks ----------------------------------------------

void RingMasks(const double* xs, const double* ys, size_t n, const Point* pts,
               size_t npts, uint8_t* in_out, uint8_t* edge_out) {
  if (npts < 3) {
    std::memset(in_out, 0, n);
    std::memset(edge_out, 0, n);
    return;
  }
  const __m128d zero = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d px = _mm_loadu_pd(xs + i), py = _mm_loadu_pd(ys + i);
    __m128d parity = zero, edge = zero;
    for (size_t e = 0, j = npts - 1; e < npts; j = e++) {
      const Point& a = pts[e];
      const Point& b = pts[j];
      const double dxab = b.x - a.x, dyab = b.y - a.y;
      const __m128d pya = _mm_sub_pd(py, _mm_set1_pd(a.y));
      const __m128d pxa = _mm_sub_pd(px, _mm_set1_pd(a.x));
      const __m128d t1 = _mm_mul_pd(_mm_set1_pd(dxab), pya);
      const __m128d o = _mm_sub_pd(t1, _mm_mul_pd(_mm_set1_pd(dyab), pxa));
      __m128d on = _mm_cmpeq_pd(o, zero);
      on = _mm_and_pd(on, _mm_cmpge_pd(px, _mm_set1_pd(std::min(a.x, b.x))));
      on = _mm_and_pd(on, _mm_cmple_pd(px, _mm_set1_pd(std::max(a.x, b.x))));
      on = _mm_and_pd(on, _mm_cmpge_pd(py, _mm_set1_pd(std::min(a.y, b.y))));
      on = _mm_and_pd(on, _mm_cmple_pd(py, _mm_set1_pd(std::max(a.y, b.y))));
      edge = _mm_or_pd(edge, on);
      const __m128d ca = _mm_cmpgt_pd(_mm_set1_pd(a.y), py);
      const __m128d cb = _mm_cmpgt_pd(_mm_set1_pd(b.y), py);
      const __m128d cross = _mm_xor_pd(ca, cb);
      // Division is unconditional; lanes where cross is false (including
      // dyab == 0) are masked out, matching the scalar guard.
      const __m128d xc =
          _mm_add_pd(_mm_div_pd(t1, _mm_set1_pd(dyab)), _mm_set1_pd(a.x));
      const __m128d lt = _mm_cmplt_pd(px, xc);
      parity = _mm_xor_pd(parity, _mm_and_pd(cross, lt));
    }
    const int mi = _mm_movemask_pd(_mm_or_pd(parity, edge));
    const int me = _mm_movemask_pd(edge);
    for (int k = 0; k < 2; ++k) {
      in_out[i + k] = static_cast<uint8_t>((mi >> k) & 1);
      edge_out[i + k] = static_cast<uint8_t>((me >> k) & 1);
    }
  }
  if (i < n) {
    generic::RingMasks(xs + i, ys + i, n - i, pts, npts, in_out + i,
                       edge_out + i);
  }
}

void OnSegments(const double* xs, const double* ys, size_t n, const Point* pts,
                size_t npts, uint8_t* out) {
  const __m128d zero = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d px = _mm_loadu_pd(xs + i), py = _mm_loadu_pd(ys + i);
    __m128d acc = zero;
    for (size_t s = 1; s < npts; ++s) {
      const Point& a = pts[s - 1];
      const Point& b = pts[s];
      const double dxab = b.x - a.x, dyab = b.y - a.y;
      const __m128d o = _mm_sub_pd(
          _mm_mul_pd(_mm_set1_pd(dxab), _mm_sub_pd(py, _mm_set1_pd(a.y))),
          _mm_mul_pd(_mm_set1_pd(dyab), _mm_sub_pd(px, _mm_set1_pd(a.x))));
      __m128d on = _mm_cmpeq_pd(o, zero);
      on = _mm_and_pd(on, _mm_cmpge_pd(px, _mm_set1_pd(std::min(a.x, b.x))));
      on = _mm_and_pd(on, _mm_cmple_pd(px, _mm_set1_pd(std::max(a.x, b.x))));
      on = _mm_and_pd(on, _mm_cmpge_pd(py, _mm_set1_pd(std::min(a.y, b.y))));
      on = _mm_and_pd(on, _mm_cmple_pd(py, _mm_set1_pd(std::max(a.y, b.y))));
      acc = _mm_or_pd(acc, on);
    }
    const int m = _mm_movemask_pd(acc);
    out[i] = static_cast<uint8_t>(m & 1);
    out[i + 1] = static_cast<uint8_t>((m >> 1) & 1);
  }
  if (i < n) generic::OnSegments(xs + i, ys + i, n - i, pts, npts, out + i);
}

// ---- point-segment squared distance (min-accumulated) ------------------

inline void SegmentDist2AccumV(const double* xs, const double* ys, size_t n,
                               const Point& a, const Point& b, double* best) {
  const double abx = b.x - a.x, aby = b.y - a.y;
  const double len2 = abx * abx + aby * aby;
  const __m128d ax = _mm_set1_pd(a.x), ay = _mm_set1_pd(a.y);
  size_t i = 0;
  if (len2 == 0.0) {
    for (; i + 2 <= n; i += 2) {
      const __m128d dx = _mm_sub_pd(_mm_loadu_pd(xs + i), ax);
      const __m128d dy = _mm_sub_pd(_mm_loadu_pd(ys + i), ay);
      const __m128d d = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
      _mm_storeu_pd(best + i, MinStd(_mm_loadu_pd(best + i), d));
    }
  } else {
    const __m128d vabx = _mm_set1_pd(abx), vaby = _mm_set1_pd(aby);
    const __m128d vlen2 = _mm_set1_pd(len2);
    const __m128d zero = _mm_setzero_pd(), one = _mm_set1_pd(1.0);
    for (; i + 2 <= n; i += 2) {
      const __m128d px = _mm_loadu_pd(xs + i), py = _mm_loadu_pd(ys + i);
      const __m128d pax = _mm_sub_pd(px, ax), pay = _mm_sub_pd(py, ay);
      __m128d t = _mm_div_pd(
          _mm_add_pd(_mm_mul_pd(pax, vabx), _mm_mul_pd(pay, vaby)), vlen2);
      // std::clamp(t, 0, 1): the low clamp wins when both apply; NaN stays.
      t = Blend(t, one, _mm_cmplt_pd(one, t));
      t = Blend(t, zero, _mm_cmplt_pd(t, zero));
      const __m128d projx = _mm_add_pd(ax, _mm_mul_pd(t, vabx));
      const __m128d projy = _mm_add_pd(ay, _mm_mul_pd(t, vaby));
      const __m128d dx = _mm_sub_pd(px, projx), dy = _mm_sub_pd(py, projy);
      const __m128d d = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
      _mm_storeu_pd(best + i, MinStd(_mm_loadu_pd(best + i), d));
    }
  }
  if (i < n) generic::SegmentDist2Accum(xs + i, ys + i, n - i, a, b, best + i);
}

void SegmentsDist2(const double* xs, const double* ys, size_t n,
                   const Point* pts, size_t npts, bool closed, double* best) {
  if (npts == 0) return;
  if (closed) {
    for (size_t s = 0, j = npts - 1; s < npts; j = s++) {
      SegmentDist2AccumV(xs, ys, n, pts[s], pts[j], best);
    }
  } else {
    for (size_t s = 1; s < npts; ++s) {
      SegmentDist2AccumV(xs, ys, n, pts[s - 1], pts[s], best);
    }
  }
}

void BoxContains(const double* xs, const double* ys, size_t n, const Box& box,
                 uint8_t* out) {
  const __m128d mnx = _mm_set1_pd(box.min_x), mxx = _mm_set1_pd(box.max_x);
  const __m128d mny = _mm_set1_pd(box.min_y), mxy = _mm_set1_pd(box.max_y);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d px = _mm_loadu_pd(xs + i), py = _mm_loadu_pd(ys + i);
    __m128d m = _mm_and_pd(_mm_cmpge_pd(px, mnx), _mm_cmple_pd(px, mxx));
    m = _mm_and_pd(m, _mm_and_pd(_mm_cmpge_pd(py, mny), _mm_cmple_pd(py, mxy)));
    const int bits = _mm_movemask_pd(m);
    out[i] = static_cast<uint8_t>(bits & 1);
    out[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
  }
  if (i < n) generic::BoxContains(xs + i, ys + i, n - i, box, out + i);
}

}  // namespace

void BindSse2Kernels(KernelTable* t) {
  t->range_i8 = &RangeI8;
  t->range_u8 = &RangeU8;
  t->range_i16 = &Range16<int16_t>;
  t->range_u16 = &Range16<uint16_t>;
  t->range_i32 = &Range32<int32_t>;
  t->range_u32 = &Range32<uint32_t>;
  t->range_f32 = &RangeF32;
  t->range_f64 = &RangeF64;
  // 64-bit integer compares and the gathers keep the scalar binding.
  t->cell_of = &CellOf;
  t->ring_masks = &RingMasks;
  t->on_segments = &OnSegments;
  t->segments_dist2 = &SegmentsDist2;
  t->box_contains = &BoxContains;
}

}  // namespace simd
}  // namespace geocol

#else  // !defined(__SSE2__)

namespace geocol {
namespace simd {
void BindSse2Kernels(KernelTable*) {}
}  // namespace simd
}  // namespace geocol

#endif
