// E4 (paper §3.3): the regular-grid refinement step vs exhaustive
// per-point evaluation, as the query geometry gets more complex.
//
// Paper claim being reproduced: "The refinement can be very expensive,
// especially when the geometries are complex. Thus, checking exhaustively
// each point is not desirable. MonetDB creates a regular grid over the
// point geometries selected in the filtering step ... This allows MonetDB
// to decide whether a grid cell satisfies or not the spatial relation in a
// single step."
#include <cstdio>

#include "bench/bench_common.h"
#include "core/refinement.h"

using namespace geocol;
using namespace geocol::bench;

int main(int argc, char** argv) {
  geocol::bench::InitBench(argc, argv);
  const uint64_t n = BenchPoints(500000);
  Banner("E4: grid refinement vs exhaustive point checks (paper section 3.3)",
         "polygon complexity sweep; candidates = all survey points");

  auto table = GenerateSurvey(n);
  ColumnPtr x = table->column("x"), y = table->column("y");
  BitVector candidates(x->size());
  candidates.SetAll();
  Box extent(x->Stats().min, y->Stats().min, x->Stats().max, y->Stats().max);
  Point center = extent.center();
  double radius = std::min(extent.width(), extent.height()) * 0.35;

  TablePrinter out({"polygon vertices", "results", "grid ms", "exhaustive ms",
                    "speedup", "exact tests", "cells in/bnd"});

  for (int vertices : {4, 16, 64, 256, 1024, 4096}) {
    Geometry g(Polygon::Circle(center, radius, vertices));

    std::vector<uint64_t> grid_rows, exact_rows;
    RefinementStats gs, es;
    double t_grid = TimeMs([&] {
      grid_rows.clear();
      RefinementStats s;
      (void)GridRefine(*x, *y, candidates, g, 0.0, RefineOptions{},
                       &grid_rows, &s);
      gs = s;
    });
    RefineOptions no_grid;
    no_grid.use_grid = false;
    double t_exact = TimeMs([&] {
      exact_rows.clear();
      RefinementStats s;
      (void)GridRefine(*x, *y, candidates, g, 0.0, no_grid, &exact_rows, &s);
      es = s;
    });
    if (grid_rows != exact_rows) {
      std::fprintf(stderr, "MISMATCH at %d vertices\n", vertices);
      return 1;
    }
    char cells[32];
    std::snprintf(cells, sizeof(cells), "%llu/%llu",
                  static_cast<unsigned long long>(gs.cells_inside),
                  static_cast<unsigned long long>(gs.cells_boundary));
    out.Row({TablePrinter::Int(vertices), TablePrinter::Int(grid_rows.size()),
             TablePrinter::Num(t_grid), TablePrinter::Num(t_exact),
             TablePrinter::Num(t_exact / t_grid) + "x",
             TablePrinter::Int(gs.exact_tests), cells});
  }

  // Second sweep: grid resolution ablation at fixed complexity.
  std::printf("\ngrid-resolution ablation (1024-vertex polygon):\n");
  TablePrinter out2({"points/cell", "grid", "grid ms", "exact tests",
                     "boundary cells"});
  Geometry g(Polygon::Circle(center, radius, 1024));
  for (uint64_t target : {16, 64, 256, 1024, 8192}) {
    RefineOptions opts;
    opts.target_points_per_cell = target;
    std::vector<uint64_t> rows;
    RefinementStats s;
    double t = TimeMs([&] {
      rows.clear();
      RefinementStats local;
      (void)GridRefine(*x, *y, candidates, g, 0.0, opts, &rows, &local);
      s = local;
    });
    char grid[32];
    std::snprintf(grid, sizeof(grid), "%ux%u", s.grid_cols, s.grid_rows);
    out2.Row({TablePrinter::Int(target), grid, TablePrinter::Num(t),
              TablePrinter::Int(s.exact_tests),
              TablePrinter::Int(s.cells_boundary)});
  }

  std::printf(
      "\nexpected shape (paper): exhaustive refinement scales with vertices x "
      "points; the grid decides\ninterior cells wholesale so only boundary-"
      "cell points pay the per-vertex cost — the gap widens\nwith polygon "
      "complexity.\n");
  return 0;
}
