#include "util/binary_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>

#include "telemetry/metrics.h"
#include "util/fault_injection.h"

namespace geocol {

namespace {

/// "<what> <path>: <strerror> (errno N)" — every I/O failure, injected or
/// real, is diagnosable from the message alone.
Status ErrnoError(const std::string& what, const std::string& path, int err) {
  return Status::IOError(what + " " + path + ": " + std::strerror(err) +
                         " (errno " + std::to_string(err) + ")");
}

/// Runs the injector failpoint for `op`; returns the errno to fail with.
int Failpoint(FileOp op) { return FaultInjector::Global().OnOp(op); }

/// Bounded retry over transient failures: total attempts per operation.
constexpr int kMaxIoAttempts = 3;

/// Errors worth retrying: interrupted / momentarily unavailable. Hard
/// errors (EIO media failure, ENOSPC, ...) propagate on first sight, so
/// crash sweeps keep their fail-at-op-k semantics.
bool RetryableErrno(int err) { return err == EINTR || err == EAGAIN; }

/// Sleeps before retry `attempt` (2-based): exponential base with up to
/// +50% jitter so racing retries decorrelate. Counted in
/// geocol_io_retries_total.
void BackoffBeforeRetry(int attempt) {
  GEOCOL_METRIC_COUNTER(c_retries, "geocol_io_retries_total");
  c_retries.Increment();
  static thread_local uint64_t rng = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count() |
      1);
  rng ^= rng << 13;
  rng ^= rng >> 7;
  rng ^= rng << 17;
  const uint64_t base_us = 100ull << (attempt - 1);
  std::this_thread::sleep_for(
      std::chrono::microseconds(base_us + rng % (base_us / 2 + 1)));
}

/// fsync(fd) with bounded jittered retry over transient failures; a hard
/// failure or an exhausted budget returns the last error.
Status FsyncRetry(int fd, const std::string& path) {
  Status last;
  for (int attempt = 1; attempt <= kMaxIoAttempts; ++attempt) {
    if (attempt > 1) BackoffBeforeRetry(attempt);
    if (int err = Failpoint(FileOp::kSync); err != 0) {
      last = ErrnoError("cannot fsync", path, err);
      if (RetryableErrno(err)) continue;
      return last;
    }
    if (::fsync(fd) != 0) {
      last = ErrnoError("cannot fsync", path, errno);
      if (RetryableErrno(errno)) continue;
      return last;
    }
    return Status::OK();
  }
  return last;
}

// 64-bit-clean seek/tell: `long` is 32 bits on some platforms (Windows),
// and the column format allows files far beyond 2 GiB.
int Seek64(std::FILE* f, int64_t offset, int whence) {
#if defined(_WIN32)
  return ::_fseeki64(f, offset, whence);
#else
  return ::fseeko(f, static_cast<off_t>(offset), whence);
#endif
}

int64_t Tell64(std::FILE* f) {
#if defined(_WIN32)
  return ::_ftelli64(f);
#else
  return static_cast<int64_t>(::ftello(f));
#endif
}

/// fsync of the directory containing `path`, making a rename durable.
Status SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "."
                    : slash == 0               ? "/"
                                               : path.substr(0, slash);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoError("cannot open directory", dir, errno);
  Status st = FsyncRetry(fd, dir);
  ::close(fd);
  return st;
}

}  // namespace

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryWriter::Open(const std::string& path) {
  if (file_ != nullptr) return Status::Internal("writer already open");
  if (int err = Failpoint(FileOp::kOpen); err != 0) {
    return ErrnoError("cannot open for write", path, err);
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return ErrnoError("cannot open for write", path, errno);
  }
  bytes_written_ = 0;
  final_path_.clear();
  tmp_path_.clear();
  return Status::OK();
}

Status BinaryWriter::OpenAtomic(const std::string& path) {
  GEOCOL_RETURN_NOT_OK(Open(path + ".tmp"));
  final_path_ = path;
  tmp_path_ = path + ".tmp";
  return Status::OK();
}

Status BinaryWriter::Commit() {
  if (file_ == nullptr) return Status::Internal("writer not open");
  if (final_path_.empty()) {
    return Status::Internal("Commit on a non-atomic writer");
  }
  // Flush stdio, then force the bytes to stable storage before the rename
  // makes them visible; otherwise a crash could publish an empty file.
  if (int err = Failpoint(FileOp::kFlush); err != 0) {
    return ErrnoError("cannot flush", tmp_path_, err);
  }
  if (std::fflush(file_) != 0) {
    return ErrnoError("cannot flush", tmp_path_, errno);
  }
  GEOCOL_RETURN_NOT_OK(FsyncRetry(::fileno(file_), tmp_path_));
  GEOCOL_METRIC_COUNTER(c_fsyncs, "geocol_io_fsyncs_total");
  c_fsyncs.Increment();
  int close_err = Failpoint(FileOp::kClose);
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (close_err != 0) return ErrnoError("cannot close", tmp_path_, close_err);
  if (rc != 0) return ErrnoError("cannot close", tmp_path_, errno);
  GEOCOL_RETURN_NOT_OK(RenameFile(tmp_path_, final_path_));
  std::string final_path = final_path_;
  final_path_.clear();
  tmp_path_.clear();
  Status st = SyncParentDir(final_path);
  if (st.ok()) {
    GEOCOL_METRIC_COUNTER(c_commits, "geocol_io_atomic_commits_total");
    c_commits.Increment();
  }
  return st;
}

void BinaryWriter::Abandon() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!tmp_path_.empty()) {
    // Best effort — under an armed crash failpoint the unlink fails too,
    // leaving the .tmp on disk exactly as a real crash would.
    RemoveFile(tmp_path_);
  }
  final_path_.clear();
  tmp_path_.clear();
}

Status BinaryWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  std::string path = tmp_path_.empty() ? "file" : tmp_path_;
  int close_err = Failpoint(FileOp::kClose);
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (close_err != 0) return ErrnoError("cannot close", path, close_err);
  if (rc != 0) return ErrnoError("cannot close", path, errno);
  return Status::OK();
}

Status BinaryWriter::WriteBytes(const void* data, size_t n) {
  if (file_ == nullptr) return Status::Internal("writer not open");
  if (n == 0) return Status::OK();
  size_t io_bytes = n;
  int err = FaultInjector::Global().OnWrite(n, &io_bytes);
  GEOCOL_METRIC_COUNTER(c_write_bytes, "geocol_io_write_bytes_total");
  if (io_bytes > 0) {
    size_t wrote = std::fwrite(data, 1, io_bytes, file_);
    bytes_written_ += wrote;
    c_write_bytes.Increment(wrote);
    if (err == 0 && wrote != io_bytes) {
      return ErrnoError("short write to",
                        tmp_path_.empty() ? "file" : tmp_path_, errno);
    }
  }
  if (err != 0) {
    // Injected torn write: the prefix above reached the file, then the
    // device "failed". Flush so the torn bytes land like they would have.
    std::fflush(file_);
    return ErrnoError("cannot write to",
                      tmp_path_.empty() ? "file" : tmp_path_, err);
  }
  return Status::OK();
}

Status BinaryWriter::WriteString(const std::string& s) {
  GEOCOL_RETURN_NOT_OK(WriteScalar<uint32_t>(static_cast<uint32_t>(s.size())));
  return WriteBytes(s.data(), s.size());
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryReader::Open(const std::string& path) {
  if (file_ != nullptr) return Status::Internal("reader already open");
  if (int err = Failpoint(FileOp::kOpen); err != 0) {
    return ErrnoError("cannot open for read", path, err);
  }
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return ErrnoError("cannot open for read", path, errno);
  }
#if defined(POSIX_FADV_SEQUENTIAL)
  // Formats are consumed front to back; a deeper readahead window keeps
  // the device busy while the CPU verifies the previous chunk's checksum.
  ::posix_fadvise(::fileno(file_), 0, 0, POSIX_FADV_SEQUENTIAL);
#endif
  pos_ = 0;
  // Cache the size so counts can be bounds-checked against Remaining().
  if (Seek64(file_, 0, SEEK_END) != 0) {
    Status st = ErrnoError("cannot seek in", path, errno);
    std::fclose(file_);
    file_ = nullptr;
    return st;
  }
  int64_t end = Tell64(file_);
  std::rewind(file_);
  size_ = end < 0 ? 0 : static_cast<uint64_t>(end);
  return Status::OK();
}

Status BinaryReader::Close() {
  if (file_ == nullptr) return Status::OK();
  int close_err = Failpoint(FileOp::kClose);
  std::fclose(file_);
  file_ = nullptr;
  if (close_err != 0) return ErrnoError("cannot close", "file", close_err);
  return Status::OK();
}

Status BinaryReader::ReadBytes(void* data, size_t n) {
  if (file_ == nullptr) return Status::Internal("reader not open");
  if (n == 0) return Status::OK();
  GEOCOL_METRIC_COUNTER(c_read_bytes, "geocol_io_read_bytes_total");
  // Transient failures (EINTR/EAGAIN, injected or real) are retried with
  // jittered backoff, re-seeking to the operation's start first — a
  // partial attempt must not shift what the retry reads. Short reads at
  // EOF are Corruption (truncated file), never retried.
  const uint64_t start_pos = pos_;
  Status last;
  for (int attempt = 1; attempt <= kMaxIoAttempts; ++attempt) {
    if (attempt > 1) {
      BackoffBeforeRetry(attempt);
      std::clearerr(file_);
      if (Seek64(file_, static_cast<int64_t>(start_pos), SEEK_SET) != 0) {
        return ErrnoError("cannot seek in", "file", errno);
      }
      pos_ = start_pos;
    }
    size_t io_bytes = n;
    int err = FaultInjector::Global().OnRead(n, &io_bytes);
    if (err != 0) {
      last = ErrnoError("cannot read from", "file", err);
      if (RetryableErrno(err)) continue;
      return last;
    }
    size_t got = std::fread(data, 1, io_bytes, file_);
    pos_ += got;
    c_read_bytes.Increment(got);
    FaultInjector::Global().OnReadData(data, got);
    if (got == n) return Status::OK();
    if (std::ferror(file_) != 0 && RetryableErrno(errno)) {
      last = ErrnoError("cannot read from", "file", errno);
      continue;
    }
    return Status::Corruption("short read: wanted " + std::to_string(n) +
                              " bytes, got " + std::to_string(got) +
                              " (truncated file?)");
  }
  return last;
}

Status BinaryReader::ReadBytesAt(uint64_t offset, void* data, size_t n) {
  if (file_ == nullptr) return Status::Internal("reader not open");
  if (n == 0) return Status::OK();
  // pread bypasses the stdio buffer; it never moves the fd offset, and
  // stdio tracks its own position, so mixing the two is safe.
  return PreadExact(::fileno(file_), offset, data, n, "file");
}

Status BinaryReader::ReadString(std::string* s, uint32_t max_len) {
  uint32_t len = 0;
  GEOCOL_RETURN_NOT_OK(ReadScalar(&len));
  if (len > max_len || len > Remaining()) {
    return Status::Corruption("string length " + std::to_string(len) +
                              " exceeds limit");
  }
  s->resize(len);
  return ReadBytes(s->data(), len);
}

Status BinaryReader::Seek(uint64_t offset) {
  if (file_ == nullptr) return Status::Internal("reader not open");
  if (Seek64(file_, static_cast<int64_t>(offset), SEEK_SET) != 0) {
    return ErrnoError("cannot seek in", "file", errno);
  }
  pos_ = offset;
  return Status::OK();
}

Result<uint64_t> BinaryReader::FileSize() {
  if (file_ == nullptr) return Status::Internal("reader not open");
  return size_;
}

Status BinaryReader::CheckRemaining(uint64_t count, size_t elem_size) const {
  if (elem_size == 0 || count > Remaining() / elem_size) {
    return Status::Corruption(
        "element count " + std::to_string(count) + " x " +
        std::to_string(elem_size) + " bytes exceeds the " +
        std::to_string(Remaining()) + " bytes remaining in the file");
  }
  return Status::OK();
}

Status PreadExact(int fd, uint64_t offset, void* data, size_t n,
                  const std::string& path) {
  if (n == 0) return Status::OK();
  GEOCOL_METRIC_COUNTER(c_read_bytes, "geocol_io_read_bytes_total");
  // Transient failures (EINTR/EAGAIN, injected or real) retry with
  // jittered backoff; positioned reads need no re-seek, the offset is an
  // argument. Short reads at EOF are Corruption (truncated file).
  Status last;
  for (int attempt = 1; attempt <= kMaxIoAttempts; ++attempt) {
    if (attempt > 1) BackoffBeforeRetry(attempt);
    size_t io_bytes = n;
    int err = FaultInjector::Global().OnRead(n, &io_bytes);
    if (err != 0) {
      last = ErrnoError("cannot read from", path, err);
      if (RetryableErrno(err)) continue;
      return last;
    }
    size_t got = 0;
    bool transient = false;
    while (got < io_bytes) {
      ssize_t rc = ::pread(fd, static_cast<uint8_t*>(data) + got,
                           io_bytes - got, static_cast<off_t>(offset + got));
      if (rc < 0) {
        last = ErrnoError("cannot read from", path, errno);
        if (RetryableErrno(errno)) {
          transient = true;
          break;
        }
        return last;
      }
      if (rc == 0) break;  // end of file
      got += static_cast<size_t>(rc);
    }
    c_read_bytes.Increment(got);
    FaultInjector::Global().OnReadData(data, got);
    if (got == n) return Status::OK();
    if (transient) continue;
    return Status::Corruption("short read: wanted " + std::to_string(n) +
                              " bytes at offset " + std::to_string(offset) +
                              " of " + path + ", got " + std::to_string(got) +
                              " (truncated file?)");
  }
  return last;
}

Result<uint64_t> FileSizeBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return ErrnoError("cannot stat", path, errno);
  }
  return static_cast<uint64_t>(st.st_size);
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status WriteFileBytes(const std::string& path, const void* data, size_t n) {
  BinaryWriter w;
  GEOCOL_RETURN_NOT_OK(w.Open(path));
  GEOCOL_RETURN_NOT_OK(w.WriteBytes(data, n));
  return w.Close();
}

Status WriteFileAtomic(const std::string& path, const void* data, size_t n) {
  BinaryWriter w;
  GEOCOL_RETURN_NOT_OK(w.OpenAtomic(path));
  Status st = w.WriteBytes(data, n);
  if (st.ok()) st = w.Commit();
  if (!st.ok()) w.Abandon();
  return st;
}

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  BinaryReader r;
  GEOCOL_RETURN_NOT_OK(r.Open(path));
  GEOCOL_ASSIGN_OR_RETURN(uint64_t size, r.FileSize());
  out->resize(size);
  GEOCOL_RETURN_NOT_OK(r.ReadBytes(out->data(), size));
  return r.Close();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (int err = Failpoint(FileOp::kRename); err != 0) {
    return ErrnoError("cannot rename " + from + " to", to, err);
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoError("cannot rename " + from + " to", to, errno);
  }
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  if (int err = Failpoint(FileOp::kUnlink); err != 0) {
    return ErrnoError("cannot remove", path, err);
  }
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoError("cannot remove", path, errno);
  }
  return Status::OK();
}

}  // namespace geocol
