// Bit-packing primitive tests (shared by the LAZ codec and the column
// compression codecs).
#include <gtest/gtest.h>

#include "util/bitpack.h"
#include "util/rng.h"

namespace geocol {
namespace {

TEST(ZigZagTest, KnownValues) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  EXPECT_EQ(ZigZagEncode(2), 4u);
  EXPECT_EQ(ZigZagDecode(0), 0);
  EXPECT_EQ(ZigZagDecode(1), -1);
  EXPECT_EQ(ZigZagDecode(2), 1);
}

TEST(ZigZagTest, RoundTripExtremes) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, INT64_MAX,
                    INT64_MIN, INT64_MAX - 1, INT64_MIN + 1}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v) << v;
  }
}

TEST(ZigZagTest, RoundTripRandom) {
  Rng rng(501);
  for (int i = 0; i < 100000; ++i) {
    int64_t v = static_cast<int64_t>(rng.Next());
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(ZigZagTest, SmallMagnitudesGetSmallCodes) {
  // The property delta coding relies on: |v| <= 2^k  =>  zigzag < 2^(k+1).
  for (int k = 0; k < 62; ++k) {
    int64_t v = int64_t{1} << k;
    EXPECT_LT(ZigZagEncode(v), uint64_t{1} << (k + 2));
    EXPECT_LT(ZigZagEncode(-v), uint64_t{1} << (k + 2));
  }
}

TEST(BitsForTest, Boundaries) {
  EXPECT_EQ(BitsFor(0), 0u);
  EXPECT_EQ(BitsFor(1), 1u);
  EXPECT_EQ(BitsFor(2), 2u);
  EXPECT_EQ(BitsFor(3), 2u);
  EXPECT_EQ(BitsFor(4), 3u);
  EXPECT_EQ(BitsFor(255), 8u);
  EXPECT_EQ(BitsFor(256), 9u);
  EXPECT_EQ(BitsFor(~uint64_t{0}), 64u);
}

TEST(BitStreamTest, FixedWidthRoundTrip) {
  Rng rng(502);
  for (uint32_t bits = 1; bits <= 64; ++bits) {
    std::vector<uint64_t> values(257);
    uint64_t mask = bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
    for (auto& v : values) v = rng.Next() & mask;
    std::vector<uint8_t> buf;
    BitWriter w(&buf);
    for (uint64_t v : values) w.Write(v, bits);
    w.FlushByte();
    EXPECT_EQ(buf.size(), (values.size() * bits + 7) / 8) << bits;
    BitReader r(buf.data(), buf.size());
    for (uint64_t expected : values) {
      uint64_t got = 0;
      ASSERT_TRUE(r.Read(&got, bits)) << bits;
      ASSERT_EQ(got, expected) << bits;
    }
  }
}

TEST(BitStreamTest, MixedWidthsInOneStream) {
  Rng rng(503);
  std::vector<std::pair<uint64_t, uint32_t>> entries;
  std::vector<uint8_t> buf;
  BitWriter w(&buf);
  for (int i = 0; i < 5000; ++i) {
    uint32_t bits = 1 + static_cast<uint32_t>(rng.Uniform(64));
    uint64_t mask = bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
    uint64_t v = rng.Next() & mask;
    entries.emplace_back(v, bits);
    w.Write(v, bits);
  }
  w.FlushByte();
  BitReader r(buf.data(), buf.size());
  for (const auto& [expected, bits] : entries) {
    uint64_t got = 0;
    ASSERT_TRUE(r.Read(&got, bits));
    ASSERT_EQ(got, expected);
  }
}

TEST(BitStreamTest, ZeroBitsWritesNothing) {
  std::vector<uint8_t> buf;
  BitWriter w(&buf);
  w.Write(12345, 0);
  w.FlushByte();
  EXPECT_TRUE(buf.empty());
}

TEST(BitStreamTest, ReadPastEndFails) {
  std::vector<uint8_t> buf;
  BitWriter w(&buf);
  w.Write(0xAB, 8);
  w.FlushByte();
  BitReader r(buf.data(), buf.size());
  uint64_t v = 0;
  EXPECT_TRUE(r.Read(&v, 8));
  EXPECT_FALSE(r.Read(&v, 1));
}

TEST(BitStreamTest, PartialByteIsZeroPadded) {
  std::vector<uint8_t> buf;
  BitWriter w(&buf);
  w.Write(0b101, 3);
  w.FlushByte();
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 0b101);
}

}  // namespace
}  // namespace geocol
