// Clamping of a [lo, hi] double range into a column's native value type,
// so range scans compare values as T instead of widening every value to
// double (which silently rounds large int64/uint64 values). The clamp is
// exact: a value v of type T satisfies lo <= (double)v <= hi under real
// arithmetic iff nr.lo <= v <= nr.hi (or the range is empty).
#ifndef GEOCOL_CORE_NATIVE_RANGE_H_
#define GEOCOL_CORE_NATIVE_RANGE_H_

#include <cmath>
#include <limits>
#include <type_traits>

namespace geocol {

template <typename T>
struct NativeRange {
  T lo{};
  T hi{};
  bool empty = false;
};

template <typename T>
NativeRange<T> ClampRangeToType(double lo, double hi) {
  NativeRange<T> r;
  if (std::isnan(lo) || std::isnan(hi) || lo > hi) {
    r.empty = true;
    return r;
  }
  if constexpr (std::is_same_v<T, double>) {
    r.lo = lo;
    r.hi = hi;
  } else if constexpr (std::is_same_v<T, float>) {
    // Round lo up and hi down to the nearest float so float comparisons
    // select exactly the values double comparisons would.
    float flo = static_cast<float>(lo);
    if (static_cast<double>(flo) < lo) {
      flo = std::nextafter(flo, std::numeric_limits<float>::infinity());
    }
    float fhi = static_cast<float>(hi);
    if (static_cast<double>(fhi) > hi) {
      fhi = std::nextafter(fhi, -std::numeric_limits<float>::infinity());
    }
    r.lo = flo;
    r.hi = fhi;
    r.empty = !(r.lo <= r.hi);  // also catches infinite-only gaps
  } else {
    // Integer T. 2^digits and min() are exactly representable as doubles,
    // so the boundary tests below are exact even for 64-bit types whose
    // max() is not.
    const double max_plus_one =
        std::ldexp(1.0, std::numeric_limits<T>::digits);
    const double min_d = static_cast<double>(std::numeric_limits<T>::min());
    double cl = std::ceil(lo);
    double fh = std::floor(hi);
    if (cl >= max_plus_one || fh < min_d) {
      r.empty = true;
      return r;
    }
    r.lo = cl <= min_d ? std::numeric_limits<T>::min() : static_cast<T>(cl);
    r.hi = fh >= max_plus_one ? std::numeric_limits<T>::max()
                              : static_cast<T>(fh);
    r.empty = r.lo > r.hi;
  }
  return r;
}

}  // namespace geocol

#endif  // GEOCOL_CORE_NATIVE_RANGE_H_
