#include "core/shard.h"

namespace geocol {

EngineOptions LocalShard::ShardOptions(const EngineOptions& options,
                                       const std::string& dir) {
  EngineOptions shard_options = options;
  // The router caches merged global results; per-shard engines stay
  // cache-free so their execution path is exactly the pre-cache engine's.
  shard_options.cache = CacheOptions{};
  // Persisted shards keep imprint sidecars next to their column files;
  // in-memory shards build in memory only.
  shard_options.imprints_dir = dir;
  return shard_options;
}

LocalShard::LocalShard(const ShardSlice& slice, const EngineOptions& options,
                       const std::string& x_column,
                       const std::string& y_column, ThreadPool* pool)
    : table_(slice.table),
      bbox_(slice.bbox),
      engine_(slice.table, ShardOptions(options, slice.dir), x_column,
              y_column, pool) {}

LocalShard::LocalShard(const ShardSlice& slice, const EngineOptions& options,
                       const std::string& x_column,
                       const std::string& y_column, ThreadPool* pool,
                       std::shared_ptr<ImprintManager> imprints)
    : table_(slice.table),
      bbox_(slice.bbox),
      engine_(slice.table, ShardOptions(options, slice.dir), x_column,
              y_column, pool, std::move(imprints)) {}

Result<uint64_t> LocalShard::ColumnEpoch(const std::string& name) const {
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr col, table_->GetColumn(name));
  return col->epoch();
}

Result<SelectionResult> LocalShard::Select(
    const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic) {
  return engine_.Select(geometry, buffer, thematic);
}

Result<ColumnPtr> LocalShard::GetColumn(const std::string& name) const {
  return table_->GetColumn(name);
}

}  // namespace geocol
