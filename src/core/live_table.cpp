#include "core/live_table.h"

#include <thread>

#include "columns/column_file.h"

namespace geocol {

namespace {

uint32_t EffectiveThreads(uint32_t requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<uint32_t>(hw);
}

}  // namespace

LiveTable::LiveTable(LiveTableOptions options) : options_(std::move(options)) {
  uint32_t threads = EffectiveThreads(options_.engine.num_threads);
  if (threads > 1) {
    pool_ = std::make_unique<ThreadPool>(threads - 1);
  }
  // The manager is configured exactly once, here — snapshot engines are
  // handed the pre-configured instance and never touch its settings, so
  // publishes cannot race a reader over manager state.
  imprints_ = std::make_shared<ImprintManager>(options_.engine.imprints);
  if (!options_.engine.imprints_dir.empty()) {
    imprints_->set_sidecar_dir(options_.engine.imprints_dir);
  }
  if (pool_ != nullptr) imprints_->set_thread_pool(pool_.get());
}

Result<std::shared_ptr<LiveTable>> LiveTable::Create(
    std::shared_ptr<FlatTable> initial, LiveTableOptions options) {
  if (initial == nullptr) return Status::InvalidArgument("null initial table");
  GEOCOL_RETURN_NOT_OK(initial->Validate());
  if (initial->column(options.x_column) == nullptr ||
      initial->column(options.y_column) == nullptr) {
    return Status::InvalidArgument("live table needs '" + options.x_column +
                                   "'/'" + options.y_column + "' columns");
  }
  auto table = std::shared_ptr<LiveTable>(new LiveTable(std::move(options)));
  if (!table->options_.dir.empty()) {
    GEOCOL_RETURN_NOT_OK(WriteTableDir(*initial, table->options_.dir));
  }
  {
    std::lock_guard<std::mutex> lock(table->mu_);
    table->current_ = std::make_shared<const EpochSnapshot>(
        table->MakeSnapshot(0, std::move(initial)));
  }
  return table;
}

Result<std::shared_ptr<LiveTable>> LiveTable::Open(const std::string& dir,
                                                   LiveTableOptions options) {
  options.dir = dir;
  GEOCOL_ASSIGN_OR_RETURN(FlatTable loaded, ReadTableDir(dir));
  auto initial = std::make_shared<FlatTable>(std::move(loaded));
  if (initial->column(options.x_column) == nullptr ||
      initial->column(options.y_column) == nullptr) {
    return Status::InvalidArgument("live table needs '" + options.x_column +
                                   "'/'" + options.y_column + "' columns");
  }
  auto table = std::shared_ptr<LiveTable>(new LiveTable(std::move(options)));
  {
    std::lock_guard<std::mutex> lock(table->mu_);
    table->current_ = std::make_shared<const EpochSnapshot>(
        table->MakeSnapshot(0, std::move(initial)));
  }
  return table;
}

EpochSnapshot LiveTable::Pin() const {
  std::shared_ptr<const EpochSnapshot> cur;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cur = current_;
  }
  return *cur;
}

uint64_t LiveTable::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->epoch;
}

std::string LiveTable::name() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->table->name();
}

EpochSnapshot LiveTable::MakeSnapshot(uint64_t epoch,
                                      std::shared_ptr<FlatTable> table) const {
  EpochSnapshot s;
  s.epoch = epoch;
  s.table = table;
  s.engine = std::make_shared<SpatialQueryEngine>(
      table, options_.engine, options_.x_column, options_.y_column,
      pool_.get(), imprints_);
  ColumnPtr x = table->column(options_.x_column);
  ColumnPtr y = table->column(options_.y_column);
  if (x != nullptr && y != nullptr && !x->empty()) {
    const ColumnStats& xs = x->Stats();
    const ColumnStats& ys = y->Stats();
    s.bbox = Box(xs.min, ys.min, xs.max, ys.max);
  }
  return s;
}

void LiveTable::Publish(std::shared_ptr<FlatTable> next) {
  // Engine construction and bbox read run outside mu_, so in-flight Pin()
  // calls are never stalled behind them.
  uint64_t next_epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    next_epoch = current_->epoch + 1;
  }
  auto snapshot = std::make_shared<const EpochSnapshot>(
      MakeSnapshot(next_epoch, std::move(next)));
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(snapshot);
}

}  // namespace geocol
