// E3 (paper §4.1, modeled on the AHN2 mini-benchmark [18]): rectangular
// region selections of growing size, executed by every system.
//
// Paper claim being reproduced: "Through a lightweight and cache conscious
// secondary index called Imprints, spatial queries performance on a flat
// table storage is comparable to traditional file-based solutions."
//
// Systems: imprints engine, full scan, zonemap engine, point R-tree,
// block store, file store (headers only / +lasindex after lassort).
#include <cstdio>

#include "baselines/block_store.h"
#include "baselines/file_store.h"
#include "baselines/full_scan.h"
#include "baselines/rtree.h"
#include "baselines/sfc_index.h"
#include "baselines/zonemap.h"
#include "bench/bench_common.h"
#include "core/spatial_engine.h"
#include "las/las_reader.h"
#include "util/tempdir.h"

using namespace geocol;
using namespace geocol::bench;

int main(int argc, char** argv) {
  geocol::bench::InitBench(argc, argv);
  const uint64_t n = BenchPoints(1000000);
  Banner("E3: spatial selection latency across systems (paper section 4.1)",
         "7 region sizes (S1 smallest .. S7 = full extent), min of reps");

  // ---- shared survey: tiles on disk + flat table in memory.
  TempDir tmp("bench-sel");
  std::string tiles = tmp.File("tiles");
  if (!MakeDir(tiles).ok()) return 1;
  AhnGeneratorOptions opts = SurveyOptions(n);
  {
    double area = std::max(opts.extent.area(), 1.0);
    opts.point_density = static_cast<double>(n) / area;
    opts.scan_line_spacing = 1.0 / std::sqrt(opts.point_density);
  }
  AhnGenerator gen(opts);
  auto table_res = gen.GenerateTable(n);
  if (!table_res.ok()) return 1;
  auto table = *table_res;
  if (!gen.WriteTileDirectory(tiles, /*compress=*/false).ok()) return 1;

  const Box extent = opts.extent;
  std::printf("survey: %llu points over %.0fx%.0f m\n",
              static_cast<unsigned long long>(table->num_rows()),
              extent.width(), extent.height());

  // ---- systems. The engine runs single-threaded here so the comparison
  // with the (serial) baselines stays apples-to-apples; bench_parallel
  // covers thread scaling.
  EngineOptions engine_opts;
  engine_opts.num_threads = 1;
  SpatialQueryEngine engine(table, engine_opts);
  auto rtree = BuildPointRTree(*table);
  if (!rtree.ok()) return 1;

  std::vector<LasPointRecord> records;
  LasHeader header;
  {
    std::vector<std::string> files;
    if (!ListFiles(tiles, ".las", &files).ok()) return 1;
    for (const auto& f : files) {
      auto tile = ReadLasFile(f);
      if (!tile.ok()) return 1;
      header = tile->header;
      records.insert(records.end(), tile->points.begin(), tile->points.end());
    }
  }
  auto block_store = BlockStore::Build(std::move(records), header);
  if (!block_store.ok()) return 1;

  auto file_plain = FileStore::Open(tiles);
  if (!file_plain.ok()) return 1;
  if (!FileStore::SortTiles(tiles).ok()) return 1;  // lassort
  FileStoreOptions fopts;
  fopts.use_index = true;
  auto file_indexed = FileStore::Open(tiles, fopts);
  if (!file_indexed.ok()) return 1;
  if (!file_indexed->BuildIndexes().ok()) return 1;  // lasindex

  auto zm_x = ZoneMapIndex::Build(*table->column("x"));
  auto zm_y = ZoneMapIndex::Build(*table->column("y"));
  if (!zm_x.ok() || !zm_y.ok()) return 1;

  // Morton-SFC alternative works on its own physically sorted copy.
  auto sfc_table = gen.GenerateTable(n);
  if (!sfc_table.ok()) return 1;
  auto sfc = MortonSfcIndex::Build(sfc_table->get());
  if (!sfc.ok()) return 1;

  // ---- the 7 query regions (area fractions as in [18]'s S-queries).
  const double fractions[7] = {0.0001, 0.001, 0.01, 0.05, 0.15, 0.5, 1.0};
  TablePrinter out({"query", "results", "imprints ms", "fullscan ms",
                    "zonemap ms", "rtree ms", "sfc ms", "blockstore ms",
                    "file ms", "file+idx ms"}, 13);

  for (int qi = 0; qi < 7; ++qi) {
    double side = std::sqrt(extent.area() * fractions[qi]);
    Point c{extent.min_x + extent.width() * 0.43,
            extent.min_y + extent.height() * 0.57};
    Box q(c.x - side / 2, c.y - side / 2, c.x + side / 2, c.y + side / 2);
    if (fractions[qi] >= 1.0) q = extent;  // S7: the whole survey
    Geometry g(q);

    uint64_t results = 0;
    double t_imp = TimeMs([&] {
      auto r = engine.SelectInBox(q);
      results = r.ok() ? r->count() : 0;
    });
    double t_scan = TimeMs([&] { (void)FullScanSelectBox(*table, q); });
    double t_zone = TimeMs([&] {
      BitVector rx, ry;
      (void)zm_x->RangeSelect(*table->column("x"), q.min_x, q.max_x, &rx);
      (void)zm_y->RangeSelect(*table->column("y"), q.min_y, q.max_y, &ry);
      rx.And(ry);
      std::vector<uint64_t> rows;
      rx.CollectSetBits(&rows);
    });
    double t_rtree = TimeMs([&] {
      std::vector<uint64_t> rows;
      rtree->QueryBox(q, &rows);
    });
    double t_sfc = TimeMs([&] { (void)sfc->QueryBox(q); });
    double t_block = TimeMs([&] { (void)block_store->QueryGeometry(g); });
    double t_file = TimeMs([&] { (void)file_plain->QueryGeometry(g); });
    double t_fidx = TimeMs([&] { (void)file_indexed->QueryGeometry(g); });

    char label[16];
    std::snprintf(label, sizeof(label), "S%d %.3g%%", qi + 1,
                  fractions[qi] * 100);
    out.Row({label, TablePrinter::Int(results), TablePrinter::Num(t_imp),
             TablePrinter::Num(t_scan), TablePrinter::Num(t_zone),
             TablePrinter::Num(t_rtree), TablePrinter::Num(t_sfc),
             TablePrinter::Num(t_block), TablePrinter::Num(t_file),
             TablePrinter::Num(t_fidx)});
  }

  std::printf(
      "\nexpected shape (paper/[18]): imprints beat the full scan by a wide "
      "margin on selective queries\nand stay comparable to the file-based "
      "solution with lassort+lasindex; the R-tree wins small\nqueries but "
      "pays a much larger index; every system converges to data volume at "
      "S7 (100%%).\n");
  return 0;
}
