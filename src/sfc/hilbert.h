// Hilbert space-filling curve (the block ordering Oracle Spatial uses for
// its point-cloud blocks, paper §2.3). Iterative rot/flip formulation.
#ifndef GEOCOL_SFC_HILBERT_H_
#define GEOCOL_SFC_HILBERT_H_

#include <cstdint>
#include <utility>

#include "geom/geometry.h"

namespace geocol {

/// Maps (x, y) on a 2^order x 2^order grid to its Hilbert curve distance.
/// `order` must be in [1, 31].
uint64_t HilbertEncode(uint32_t x, uint32_t y, uint32_t order = 16);

/// Inverse of HilbertEncode.
std::pair<uint32_t, uint32_t> HilbertDecode(uint64_t d, uint32_t order = 16);

/// Scales doubles within `extent` onto the Hilbert grid and encodes.
uint64_t HilbertEncodeScaled(double x, double y, const Box& extent,
                             uint32_t order = 16);

}  // namespace geocol

#endif  // GEOCOL_SFC_HILBERT_H_
