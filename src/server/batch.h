// Shared-scan batching (DESIGN.md §16): concurrently queued viewport
// queries against the same table epoch are answered with ONE superset
// imprint scan over the union of their boxes, then each member's exact
// selection is re-derived from the candidate rows with the same
// native-clamped range compares the solo path uses — so every member's
// row set (and therefore its result bytes) is identical to running the
// query alone. N queued scans collapse into one scan plus N cheap
// re-filters over the candidates.
#ifndef GEOCOL_SERVER_BATCH_H_
#define GEOCOL_SERVER_BATCH_H_

#include <cstdint>
#include <vector>

#include "core/spatial_engine.h"
#include "server/admission.h"
#include "sql/planner.h"

namespace geocol {
namespace server {

/// True when `plan` may join a shared-scan batch group: a plain flat
/// point-cloud statement whose selection is a pure box-and-thematic
/// conjunction. Excluded: sharded tables (per-shard scans already
/// amortize), NEAR joins (their thematic post-filter keeps NaN rows,
/// unlike the conjunctive path), buffered geometries and non-box shapes
/// (refinement is not a range conjunction), and EXPLAIN [ANALYZE]
/// (answers describe execution, not data).
bool BatchablePlan(const sql::PlannedQuery& plan);

/// The plan's effective selection box: the geometry envelope, or — for
/// statements with no spatial predicate — the table extent from the x/y
/// column stats, exactly as the solo executor substitutes it. Errors
/// (missing x/y column) make the caller fall back to solo execution,
/// which reproduces the same error.
Result<Box> PlanViewport(const sql::PlannedQuery& plan);

/// Output of one shared scan over a batch group.
struct SharedScanResult {
  /// Parallel to the input group: each member's ascending qualifying row
  /// ids, bit-identical to what `engine->Select` would have returned for
  /// that member alone.
  std::vector<std::vector<uint64_t>> member_rows;
  /// The shared work, as spans every member's profile/flight event
  /// inherits: server.batch.scan (superset scan + column gather) and
  /// server.batch.fanout (per-member re-filters).
  QueryProfile profile;
};

/// Runs the superset scan for `group` (every task batchable and keyed to
/// `engine`) and fans exact per-member selections out. On any error the
/// caller re-executes each member solo — the error path is never guessed
/// at, it is reproduced.
Result<SharedScanResult> SharedScanSelect(SpatialQueryEngine* engine,
                                          const std::vector<TaskPtr>& group);

}  // namespace server
}  // namespace geocol

#endif  // GEOCOL_SERVER_BATCH_H_
