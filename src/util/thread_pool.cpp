#include "util/thread_pool.h"

#include <atomic>
#include <memory>

#include "telemetry/metrics.h"

namespace geocol {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  GEOCOL_METRIC_COUNTER(c_tasks, "geocol_pool_tasks_total");
  GEOCOL_METRIC_GAUGE(g_depth, "geocol_pool_queue_depth");
  c_tasks.Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    g_depth.Set(static_cast<int64_t>(queue_.size()));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  GEOCOL_METRIC_COUNTER(c_pfor, "geocol_pool_parallel_for_total");
  // Morsel-count histogram (log-linear HDR buckets, exact below 32).
  static telemetry::Histogram& h_items =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "geocol_pool_parallel_for_items");
  c_pfor.Increment();
  h_items.Observe(static_cast<int64_t>(n));
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Per-call completion tracking (not WaitIdle): the group state is shared
  // with helper tasks that may only start after the loop has finished, so
  // it lives on the heap. Helpers that arrive late find no index left and
  // exit without touching `fn`, which may be gone by then.
  struct Group {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
  };
  auto group = std::make_shared<Group>();
  group->n = n;
  group->fn = &fn;
  auto run = [group] {
    size_t claimed = 0;
    size_t i;
    while ((i = group->next.fetch_add(1, std::memory_order_relaxed)) <
           group->n) {
      (*group->fn)(i);
      ++claimed;
    }
    if (claimed > 0 &&
        group->done.fetch_add(claimed, std::memory_order_acq_rel) + claimed ==
            group->n) {
      std::lock_guard<std::mutex> lock(group->mu);
      group->cv.notify_all();
    }
  };
  size_t helpers = std::min(n - 1, workers_.size());
  for (size_t h = 0; h < helpers; ++h) Submit(run);
  run();  // the caller claims morsels too: no deadlock under nesting
  std::unique_lock<std::mutex> lock(group->mu);
  group->cv.wait(lock, [&] {
    return group->done.load(std::memory_order_acquire) == group->n;
  });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace geocol
