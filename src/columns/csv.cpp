#include "columns/csv.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace geocol {

Status WriteCsv(const FlatTable& table, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  // Header.
  for (size_t c = 0; c < table.num_columns(); ++c) {
    std::fprintf(f, "%s%s", c > 0 ? "," : "", table.column(c)->name().c_str());
  }
  std::fputc('\n', f);
  uint64_t rows = table.num_rows();
  for (uint64_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Column& col = *table.column(c);
      if (c > 0) std::fputc(',', f);
      if (IsFloatingPoint(col.type())) {
        // %.17g: shortest-exact for doubles, so the CSV path is lossless
        // and the loader-equivalence property (binary == CSV) holds.
        std::fprintf(f, "%.17g", col.GetDouble(r));
      } else {
        std::fprintf(f, "%lld", static_cast<long long>(col.GetInt64(r)));
      }
    }
    std::fputc('\n', f);
  }
  if (std::fclose(f) != 0) return Status::IOError("close failed " + path);
  return Status::OK();
}

namespace {

// Splits a CSV line (no quoting in our numeric dialect) in place.
void SplitLine(char* line, std::vector<char*>* out) {
  out->clear();
  char* p = line;
  out->push_back(p);
  while (*p != '\0') {
    if (*p == ',') {
      *p = '\0';
      out->push_back(p + 1);
    } else if (*p == '\n' || *p == '\r') {
      *p = '\0';
      break;
    }
    ++p;
  }
}

Status ParseValue(const char* text, Column* col) {
  char* end = nullptr;
  if (IsFloatingPoint(col->type())) {
    double v = std::strtod(text, &end);
    if (end == text) return Status::Corruption("bad CSV number: " + std::string(text));
    if (col->type() == DataType::kFloat32) {
      col->Append<float>(static_cast<float>(v));
    } else {
      col->Append<double>(v);
    }
    return Status::OK();
  }
  long long v = std::strtoll(text, &end, 10);
  if (end == text) return Status::Corruption("bad CSV integer: " + std::string(text));
  switch (col->type()) {
    case DataType::kInt8: col->Append<int8_t>(static_cast<int8_t>(v)); break;
    case DataType::kUInt8: col->Append<uint8_t>(static_cast<uint8_t>(v)); break;
    case DataType::kInt16: col->Append<int16_t>(static_cast<int16_t>(v)); break;
    case DataType::kUInt16: col->Append<uint16_t>(static_cast<uint16_t>(v)); break;
    case DataType::kInt32: col->Append<int32_t>(static_cast<int32_t>(v)); break;
    case DataType::kUInt32: col->Append<uint32_t>(static_cast<uint32_t>(v)); break;
    case DataType::kInt64: col->Append<int64_t>(v); break;
    case DataType::kUInt64:
      col->Append<uint64_t>(static_cast<uint64_t>(std::strtoull(text, &end, 10)));
      break;
    default:
      return Status::Internal("unexpected type in ParseValue");
  }
  return Status::OK();
}

}  // namespace

Status AppendCsv(const std::string& path, FlatTable* table) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  char line[1 << 16];
  std::vector<char*> cells;
  // Header row: verify column names match the table.
  if (std::fgets(line, sizeof(line), f) == nullptr) {
    std::fclose(f);
    return Status::Corruption("empty CSV: " + path);
  }
  SplitLine(line, &cells);
  if (cells.size() != table->num_columns()) {
    std::fclose(f);
    return Status::Corruption("CSV header column count mismatch");
  }
  for (size_t c = 0; c < cells.size(); ++c) {
    if (table->column(c)->name() != cells[c]) {
      std::fclose(f);
      return Status::Corruption("CSV header name mismatch at column " +
                                std::to_string(c));
    }
  }
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == '\n' || line[0] == '\0') continue;
    SplitLine(line, &cells);
    if (cells.size() != table->num_columns()) {
      std::fclose(f);
      return Status::Corruption("CSV row arity mismatch");
    }
    for (size_t c = 0; c < cells.size(); ++c) {
      Status st = ParseValue(cells[c], table->column(c).get());
      if (!st.ok()) {
        std::fclose(f);
        return st;
      }
    }
  }
  std::fclose(f);
  return table->Validate();
}

Result<FlatTable> ReadCsv(const std::string& path, const Schema& schema,
                          const std::string& table_name) {
  FlatTable table(table_name, schema);
  GEOCOL_RETURN_NOT_OK(AppendCsv(path, &table));
  return table;
}

}  // namespace geocol
