// The "spatially-enabled" query engine of the paper: flat-table point
// cloud + lazily built column imprints on the coordinate columns + the
// two-step filter/refinement executor (§3.3). This is the primary public
// API of the library.
#ifndef GEOCOL_CORE_SPATIAL_ENGINE_H_
#define GEOCOL_CORE_SPATIAL_ENGINE_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "columns/flat_table.h"
#include "core/imprint_scan.h"
#include "core/profile.h"
#include "core/refinement.h"
#include "geom/geometry.h"
#include "util/status.h"

namespace geocol {

/// A thematic range predicate on a non-spatial attribute
/// (`classification BETWEEN 3 AND 5`, `intensity >= 100`, ...).
struct AttributeRange {
  std::string column;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
};

/// Engine configuration; the booleans exist so benchmarks can ablate each
/// technique (E3/E4/E5 run the same engine with features toggled).
struct EngineOptions {
  ImprintsOptions imprints;
  RefineOptions refine;
  /// When false the filter step degrades to a full scan of x/y.
  bool use_imprints = true;
};

/// Result of a spatial selection.
struct SelectionResult {
  std::vector<uint64_t> row_ids;     ///< ascending qualifying row ids
  ImprintScanStats filter_x;         ///< filter-step accounting
  ImprintScanStats filter_y;
  RefinementStats refine;            ///< refinement-step accounting
  QueryProfile profile;              ///< per-operator wall times

  uint64_t count() const { return row_ids.size(); }
};

/// Supported aggregates over a selection.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

/// Aggregates `column` over `rows`. kCount ignores the column.
double AggregateRows(const Column& column, const std::vector<uint64_t>& rows,
                     AggKind kind);

/// The spatially-enabled engine over one flat point-cloud table.
class SpatialQueryEngine {
 public:
  /// `table` must contain columns named `x_column`/`y_column` (any numeric
  /// type). The table is shared: appends through other references are
  /// detected via column epochs and trigger imprint rebuilds.
  SpatialQueryEngine(std::shared_ptr<FlatTable> table,
                     EngineOptions options = {},
                     std::string x_column = "x", std::string y_column = "y");

  const FlatTable& table() const { return *table_; }
  const EngineOptions& options() const { return options_; }

  /// All points with (x, y) inside `box`. For a rectangle the refinement
  /// is exact during the filter step already.
  Result<SelectionResult> SelectInBox(const Box& box);

  /// All points contained in `geometry` (polygon/multipolygon/box).
  Result<SelectionResult> SelectInGeometry(const Geometry& geometry);

  /// All points within distance `d` of `geometry` — the "near" queries of
  /// scenario 2 (§4.2).
  Result<SelectionResult> SelectWithinDistance(const Geometry& geometry,
                                               double d);

  /// General form: spatial predicate plus conjunctive thematic ranges.
  /// `buffer` > 0 selects ST_DWithin semantics.
  Result<SelectionResult> Select(const Geometry& geometry, double buffer,
                                 const std::vector<AttributeRange>& thematic);

  /// Aggregate of `column` over the points selected by the predicate:
  /// e.g. "compute the average elevation of the LIDAR points near ..."
  Result<double> Aggregate(const Geometry& geometry, double buffer,
                           const std::vector<AttributeRange>& thematic,
                           const std::string& column, AggKind kind);

  /// Imprint storage across the coordinate (and thematically filtered)
  /// columns currently indexed — the 5-12% overhead claim of §3.2.
  uint64_t IndexStorageBytes() const { return imprints_.TotalStorageBytes(); }

  ImprintManager& imprint_manager() { return imprints_; }

 private:
  /// Shared two-step implementation.
  Result<SelectionResult> Execute(const Geometry& geometry, double buffer,
                                  const std::vector<AttributeRange>& thematic);

  /// Filter step on one column; returns a row-level selection.
  Status FilterColumn(const ColumnPtr& column, double lo, double hi,
                      BitVector* rows, ImprintScanStats* stats,
                      QueryProfile* profile, const std::string& op_name);

  std::shared_ptr<FlatTable> table_;
  EngineOptions options_;
  std::string x_name_, y_name_;
  ImprintManager imprints_;
};

}  // namespace geocol

#endif  // GEOCOL_CORE_SPATIAL_ENGINE_H_
