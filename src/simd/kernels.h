// The SIMD kernel table: branch-free vectorized inner loops of the
// filter/refine pipeline, selected at runtime by src/simd/dispatch.
//
// Contract: every kernel is bit-identical to the scalar reference at every
// dispatch level — same selection words, same accepted rows, same FP
// results (NaN/±Inf/±0/denormals propagate exactly like the scalar code in
// geom/predicates.cpp and geom/grid.h). The kernel translation units are
// compiled with -ffp-contract=off (like the rest of the library) so no
// level ever fuses a multiply-add the others don't.
#ifndef GEOCOL_SIMD_KERNELS_H_
#define GEOCOL_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "geom/geometry.h"
#include "simd/dispatch.h"

namespace geocol {
namespace simd {

/// Grid geometry for the cell-assignment kernel (mirrors RegularGrid).
struct GridParams {
  double min_x = 0.0;
  double min_y = 0.0;
  double inv_w = 0.0;
  double inv_h = 0.0;
  int64_t cols = 1;
  int64_t rows = 1;
};

/// Function-pointer table bound to the active SimdLevel.
///
/// range_*: selection words for a value run. Writes ceil(n/64) words to
/// `out` (bit i of the stream = values[i] in [lo, hi], bits >= n zero) and
/// returns the number of selected values.
///
/// gather_*: out[i] = double(base[rows[i]]) — the batched Column::GetDouble.
///
/// cell_of: cells[i] = grid cell id of (xs[i], ys[i]), exactly matching
/// RegularGrid::CellOf (edge clamping, NaN/overflow -> cell 0 semantics).
///
/// ring_masks: in_out[i] = even-odd point-in-ring including the boundary
/// (semantics of geocol::PointInRing), edge_out[i] = point exactly on the
/// ring boundary. Outputs are 0/1 bytes.
///
/// on_segments: out[i] = point lies on any segment of the open polyline.
///
/// segments_dist2: best[i] = min(best[i], squared distance to each segment)
/// with std::min(best, d) NaN semantics; `closed` walks ring edges
/// (pts[i], pts[i-1 mod n]) exactly like PointRingBoundaryDistanceSquared,
/// open walks (pts[s-1], pts[s]) like PointLineDistance.
///
/// box_contains: out[i] = Box::Contains({xs[i], ys[i]}) as 0/1 bytes.
struct KernelTable {
  uint64_t (*range_i8)(const int8_t*, size_t, int8_t, int8_t, uint64_t*);
  uint64_t (*range_u8)(const uint8_t*, size_t, uint8_t, uint8_t, uint64_t*);
  uint64_t (*range_i16)(const int16_t*, size_t, int16_t, int16_t, uint64_t*);
  uint64_t (*range_u16)(const uint16_t*, size_t, uint16_t, uint16_t,
                        uint64_t*);
  uint64_t (*range_i32)(const int32_t*, size_t, int32_t, int32_t, uint64_t*);
  uint64_t (*range_u32)(const uint32_t*, size_t, uint32_t, uint32_t,
                        uint64_t*);
  uint64_t (*range_i64)(const int64_t*, size_t, int64_t, int64_t, uint64_t*);
  uint64_t (*range_u64)(const uint64_t*, size_t, uint64_t, uint64_t,
                        uint64_t*);
  uint64_t (*range_f32)(const float*, size_t, float, float, uint64_t*);
  uint64_t (*range_f64)(const double*, size_t, double, double, uint64_t*);

  void (*gather_i8)(const int8_t*, const uint64_t*, size_t, double*);
  void (*gather_u8)(const uint8_t*, const uint64_t*, size_t, double*);
  void (*gather_i16)(const int16_t*, const uint64_t*, size_t, double*);
  void (*gather_u16)(const uint16_t*, const uint64_t*, size_t, double*);
  void (*gather_i32)(const int32_t*, const uint64_t*, size_t, double*);
  void (*gather_u32)(const uint32_t*, const uint64_t*, size_t, double*);
  void (*gather_i64)(const int64_t*, const uint64_t*, size_t, double*);
  void (*gather_u64)(const uint64_t*, const uint64_t*, size_t, double*);
  void (*gather_f32)(const float*, const uint64_t*, size_t, double*);
  void (*gather_f64)(const double*, const uint64_t*, size_t, double*);

  void (*cell_of)(const double*, const double*, size_t, const GridParams&,
                  uint64_t*);

  void (*ring_masks)(const double*, const double*, size_t, const Point*,
                     size_t, uint8_t*, uint8_t*);
  void (*on_segments)(const double*, const double*, size_t, const Point*,
                      size_t, uint8_t*);
  void (*segments_dist2)(const double*, const double*, size_t, const Point*,
                         size_t, bool, double*);
  void (*box_contains)(const double*, const double*, size_t, const Box&,
                       uint8_t*);
};

/// The table bound to ActiveSimdLevel(). Rebound by SetSimdLevel().
const KernelTable& Kernels();

/// Builds the table for a specific level without touching the global
/// binding (benchmarks compare levels side by side through this).
void BindKernelsForLevel(SimdLevel level, KernelTable* table);

/// Typed front door of the range-compare kernels.
template <typename T>
inline uint64_t RangeSelectBits(const T* values, size_t n, T lo, T hi,
                                uint64_t* out) {
  const KernelTable& k = Kernels();
  if constexpr (std::is_same_v<T, int8_t>) return k.range_i8(values, n, lo, hi, out);
  else if constexpr (std::is_same_v<T, uint8_t>) return k.range_u8(values, n, lo, hi, out);
  else if constexpr (std::is_same_v<T, int16_t>) return k.range_i16(values, n, lo, hi, out);
  else if constexpr (std::is_same_v<T, uint16_t>) return k.range_u16(values, n, lo, hi, out);
  else if constexpr (std::is_same_v<T, int32_t>) return k.range_i32(values, n, lo, hi, out);
  else if constexpr (std::is_same_v<T, uint32_t>) return k.range_u32(values, n, lo, hi, out);
  else if constexpr (std::is_same_v<T, int64_t>) return k.range_i64(values, n, lo, hi, out);
  else if constexpr (std::is_same_v<T, uint64_t>) return k.range_u64(values, n, lo, hi, out);
  else if constexpr (std::is_same_v<T, float>) return k.range_f32(values, n, lo, hi, out);
  else return k.range_f64(values, n, lo, hi, out);
}

/// Typed front door of the gather kernels.
template <typename T>
inline void GatherDouble(const T* base, const uint64_t* rows, size_t n,
                         double* out) {
  const KernelTable& k = Kernels();
  if constexpr (std::is_same_v<T, int8_t>) k.gather_i8(base, rows, n, out);
  else if constexpr (std::is_same_v<T, uint8_t>) k.gather_u8(base, rows, n, out);
  else if constexpr (std::is_same_v<T, int16_t>) k.gather_i16(base, rows, n, out);
  else if constexpr (std::is_same_v<T, uint16_t>) k.gather_u16(base, rows, n, out);
  else if constexpr (std::is_same_v<T, int32_t>) k.gather_i32(base, rows, n, out);
  else if constexpr (std::is_same_v<T, uint32_t>) k.gather_u32(base, rows, n, out);
  else if constexpr (std::is_same_v<T, int64_t>) k.gather_i64(base, rows, n, out);
  else if constexpr (std::is_same_v<T, uint64_t>) k.gather_u64(base, rows, n, out);
  else if constexpr (std::is_same_v<T, float>) k.gather_f32(base, rows, n, out);
  else k.gather_f64(base, rows, n, out);
}

}  // namespace simd
}  // namespace geocol

#endif  // GEOCOL_SIMD_KERNELS_H_
