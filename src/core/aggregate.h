// Aggregation core shared by the flat-table engine and the sharded
// scatter-gather path. The accumulator types, operation order and parallel
// chunking are fixed here once, so any two storage layouts that present
// the same value sequence for the same row list produce bit-identical
// aggregates — the contract shard_equivalence_test pins.
#ifndef GEOCOL_CORE_AGGREGATE_H_
#define GEOCOL_CORE_AGGREGATE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/thread_pool.h"

namespace geocol {

/// Supported aggregates over a selection.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

/// Row lists below this size aggregate serially even with a pool.
constexpr size_t kMinParallelAggRows = size_t{1} << 17;
/// Rows per aggregation chunk; partials merge in chunk order so the result
/// is deterministic for a given row list.
constexpr size_t kAggChunkRows = size_t{1} << 16;

/// Aggregates `value_at(i)` — the value of selection position i, i.e. of
/// row `rows[i]` — over the selection. Accessors take the POSITION, not the
/// row id: storage layouts that cannot index rows directly (paged columns
/// gather once, shards decode a global row id) resolve the mapping in the
/// accessor, while the accumulation order over positions stays fixed here.
/// kCount ignores the accessor; the empty selection yields NaN (SQL maps
/// it to NULL). A non-null `pool` aggregates position chunks in parallel
/// and merges the partials in chunk order, so the result is deterministic
/// for a given row list (floating-point sums may differ from the serial
/// order in the last bits; min/max/count are exact).
template <typename T, typename ValueAt>
double AggregateValues(const std::vector<uint64_t>& rows, AggKind kind,
                       ThreadPool* pool, ValueAt&& value_at) {
  if (kind == AggKind::kCount) return static_cast<double>(rows.size());
  if (rows.empty()) return std::nan("");
  const bool parallel = pool != nullptr && pool->num_threads() > 0 &&
                        rows.size() >= kMinParallelAggRows;
  const size_t num_chunks = (rows.size() + kAggChunkRows - 1) / kAggChunkRows;
  double out = std::nan("");
  switch (kind) {
    case AggKind::kSum:
    case AggKind::kAvg: {
      double sum = 0.0;
      if (parallel) {
        std::vector<double> partial(num_chunks, 0.0);
        pool->ParallelFor(num_chunks, [&](size_t c) {
          size_t begin = c * kAggChunkRows;
          size_t end = std::min(rows.size(), begin + kAggChunkRows);
          double s = 0.0;
          for (size_t i = begin; i < end; ++i) {
            s += static_cast<double>(value_at(i));
          }
          partial[c] = s;
        });
        for (double p : partial) sum += p;
      } else {
        for (size_t i = 0; i < rows.size(); ++i) {
          sum += static_cast<double>(value_at(i));
        }
      }
      out = kind == AggKind::kSum ? sum
                                  : sum / static_cast<double>(rows.size());
      break;
    }
    case AggKind::kMin: {
      T mn = value_at(0);
      if (parallel) {
        std::vector<T> partial(num_chunks, value_at(0));
        pool->ParallelFor(num_chunks, [&](size_t c) {
          size_t begin = c * kAggChunkRows;
          size_t end = std::min(rows.size(), begin + kAggChunkRows);
          T m = value_at(begin);
          for (size_t i = begin + 1; i < end; ++i) {
            m = std::min(m, value_at(i));
          }
          partial[c] = m;
        });
        for (T p : partial) mn = std::min(mn, p);
      } else {
        for (size_t i = 1; i < rows.size(); ++i) mn = std::min(mn, value_at(i));
      }
      out = static_cast<double>(mn);
      break;
    }
    case AggKind::kMax: {
      T mx = value_at(0);
      if (parallel) {
        std::vector<T> partial(num_chunks, value_at(0));
        pool->ParallelFor(num_chunks, [&](size_t c) {
          size_t begin = c * kAggChunkRows;
          size_t end = std::min(rows.size(), begin + kAggChunkRows);
          T m = value_at(begin);
          for (size_t i = begin + 1; i < end; ++i) {
            m = std::max(m, value_at(i));
          }
          partial[c] = m;
        });
        for (T p : partial) mx = std::max(mx, p);
      } else {
        for (size_t i = 1; i < rows.size(); ++i) mx = std::max(mx, value_at(i));
      }
      out = static_cast<double>(mx);
      break;
    }
    case AggKind::kCount:
      break;
  }
  return out;
}

}  // namespace geocol

#endif  // GEOCOL_CORE_AGGREGATE_H_
