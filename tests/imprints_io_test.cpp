// Imprints persistence tests: exact round trip, staleness handling,
// corruption rejection, and LoadOrBuild behaviour.
#include <gtest/gtest.h>

#include "core/imprints_io.h"
#include "util/binary_io.h"
#include "util/rng.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

ColumnPtr MakeColumn(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> vals(n);
  double walk = 0;
  for (auto& v : vals) {
    walk += rng.NextGaussian();
    v = walk;
  }
  return Column::FromVector("c", vals);
}

void ExpectIndexesEqual(const ImprintsIndex& a, const ImprintsIndex& b) {
  EXPECT_EQ(a.num_bins(), b.num_bins());
  EXPECT_EQ(a.values_per_line(), b.values_per_line());
  EXPECT_EQ(a.num_lines(), b.num_lines());
  EXPECT_EQ(a.num_rows(), b.num_rows());
  EXPECT_EQ(a.built_epoch(), b.built_epoch());
  EXPECT_EQ(a.vectors(), b.vectors());
  ASSERT_EQ(a.dictionary().size(), b.dictionary().size());
  for (size_t i = 0; i < a.dictionary().size(); ++i) {
    EXPECT_EQ(a.dictionary()[i].count, b.dictionary()[i].count);
    EXPECT_EQ(a.dictionary()[i].repeat, b.dictionary()[i].repeat);
  }
  for (uint32_t i = 0; i < a.num_bins(); ++i) {
    EXPECT_EQ(a.bins().upper(i), b.bins().upper(i));
  }
}

TEST(ImprintsIoTest, RoundTripExact) {
  TempDir tmp;
  ColumnPtr col = MakeColumn(30000, 301);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  ASSERT_TRUE(WriteImprintsFile(*ix, tmp.File("c.gim")).ok());
  auto back = ReadImprintsFile(tmp.File("c.gim"));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectIndexesEqual(*ix, *back);

  // The restored index answers queries identically.
  BitVector a, b, fa, fb;
  ix->FilterRange(-10, 10, &a, &fa);
  back->FilterRange(-10, 10, &b, &fb);
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(fa == fb);
}

TEST(ImprintsIoTest, RoundTripFewBins) {
  TempDir tmp;
  // Few distinct values => small, padded bin array.
  std::vector<double> vals;
  for (int i = 0; i < 5000; ++i) vals.push_back(i % 3);
  auto col = Column::FromVector("c", vals);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  ASSERT_TRUE(WriteImprintsFile(*ix, tmp.File("c.gim")).ok());
  auto back = ReadImprintsFile(tmp.File("c.gim"));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectIndexesEqual(*ix, *back);
}

TEST(ImprintsIoTest, CorruptFilesRejected) {
  TempDir tmp;
  ColumnPtr col = MakeColumn(5000, 302);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  std::string path = tmp.File("c.gim");
  ASSERT_TRUE(WriteImprintsFile(*ix, path).ok());

  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes).ok());
  {
    auto bad = bytes;
    bad[1] = 'X';
    ASSERT_TRUE(WriteFileBytes(path, bad.data(), bad.size()).ok());
    EXPECT_FALSE(ReadImprintsFile(path).ok());
  }
  {
    auto bad = bytes;
    bad.resize(bad.size() / 2);
    ASSERT_TRUE(WriteFileBytes(path, bad.data(), bad.size()).ok());
    EXPECT_FALSE(ReadImprintsFile(path).ok());
  }
  {
    // Flip a dictionary count so coverage breaks.
    auto bad = bytes;
    // Dictionary starts after: 4 magic + 4 fingerprint + 8 + 8 + 4 + 4 +
    // bins*8 + 8.
    size_t dict_at = 4 + 4 + 8 + 8 + 4 + 4 + ix->num_bins() * 8 + 8;
    ASSERT_LT(dict_at + 4, bad.size());
    bad[dict_at] ^= 0x3F;
    ASSERT_TRUE(WriteFileBytes(path, bad.data(), bad.size()).ok());
    auto res = ReadImprintsFile(path);
    EXPECT_FALSE(res.ok()) << "tampered dictionary must be rejected";
  }
}

TEST(ImprintsIoTest, RestoreValidatesInvariants) {
  // Dictionary covering the wrong number of lines.
  auto bins = BinBounds::FromBounds({1.0, 2.0});
  ASSERT_TRUE(bins.ok());
  EXPECT_FALSE(ImprintsIndex::Restore(*bins, 8, 100, 0, {0x1},
                                      {{5, false}})
                   .ok());
  // Vector count mismatch.
  EXPECT_FALSE(ImprintsIndex::Restore(*bins, 8, 16, 0, {0x1},
                                      {{2, false}})
                   .ok());
  // Valid: 2 lines, one repeat entry, one vector.
  EXPECT_TRUE(ImprintsIndex::Restore(*bins, 8, 16, 0, {0x1},
                                     {{2, true}})
                  .ok());
}

TEST(ImprintsIoTest, LoadOrBuildCachesAndRebuilds) {
  TempDir tmp;
  std::string path = tmp.File("c.gim");
  ColumnPtr col = MakeColumn(20000, 303);

  // First call: builds and writes the sidecar.
  auto first = LoadOrBuildImprints(*col, path);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(PathExists(path));

  // Second call: loads (same epoch) — results must match.
  auto second = LoadOrBuildImprints(*col, path);
  ASSERT_TRUE(second.ok());
  ExpectIndexesEqual(*first, *second);

  // Append invalidates: LoadOrBuild must rebuild with the new epoch.
  col->Append<double>(123.0);
  auto third = LoadOrBuildImprints(*col, path);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->built_epoch(), col->epoch());
  EXPECT_EQ(third->num_rows(), col->size());
}

TEST(ImprintsIoTest, SidecarForDifferentColumnContentIsNotAdopted) {
  TempDir tmp;
  std::string path = tmp.File("c.gim");
  // Two same-named, same-sized, same-epoch columns with different values —
  // exactly what two tables sharing one imprints dir can produce. Name,
  // epoch and row count all collide; only the payload fingerprint can
  // tell the sidecars apart.
  ColumnPtr a = MakeColumn(20000, 311);
  ColumnPtr b = MakeColumn(20000, 312);
  ASSERT_EQ(a->epoch(), b->epoch());
  ASSERT_EQ(a->size(), b->size());
  ASSERT_TRUE(LoadOrBuildImprints(*a, path).ok());

  auto got = LoadOrBuildImprints(*b, path);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // b must get an index built from its own data, identical to a fresh
  // build, not a's sidecar.
  auto fresh = ImprintsIndex::Build(*b);
  ASSERT_TRUE(fresh.ok());
  ExpectIndexesEqual(*fresh, *got);
  // And the sidecar was rewritten under b's fingerprint.
  ImprintsFileMeta meta;
  ASSERT_TRUE(ReadImprintsFile(path, &meta).ok());
  EXPECT_TRUE(meta.has_fingerprint);
  EXPECT_EQ(meta.column_fingerprint, ColumnFingerprint(*b));
}

TEST(ImprintsIoTest, LoadOrBuildSurvivesGarbageSidecar) {
  TempDir tmp;
  std::string path = tmp.File("c.gim");
  ASSERT_TRUE(WriteFileBytes(path, "garbage", 7).ok());
  ColumnPtr col = MakeColumn(1000, 304);
  auto ix = LoadOrBuildImprints(*col, path);
  ASSERT_TRUE(ix.ok());
  EXPECT_EQ(ix->num_rows(), col->size());
}

}  // namespace
}  // namespace geocol
