// E5 (paper §2.1.1): index robustness as data ordering degrades.
//
// Paper claim being reproduced: "column imprint compression remains
// effective and robust even in the case of unclustered data, while other
// state-of-the-art solutions fail." We sweep three physical orderings of
// the same survey — Morton-sorted (ideal), acquisition order (flight
// strips, the realistic case), and fully shuffled — and report filter
// quality and index size for imprints vs zone maps.
#include <cstdio>

#include "baselines/zonemap.h"
#include "bench/bench_common.h"
#include "core/imprint_scan.h"

using namespace geocol;
using namespace geocol::bench;

namespace {

struct FilterQuality {
  double touched_fraction;   // share of cache lines / zones visited
  double false_positive;     // candidate rows that fail the predicate
  double storage_overhead;   // index bytes / column bytes
  double time_ms;
};

FilterQuality MeasureImprints(const Column& col, double lo, double hi) {
  auto ix = ImprintsIndex::Build(col);
  if (!ix.ok()) std::exit(1);
  ImprintScanStats stats;
  BitVector rows;
  double t = TimeMs([&] {
    ImprintScanStats s;
    (void)ImprintRangeSelect(col, *ix, lo, hi, &rows, &s);
    stats = s;
  });
  uint64_t candidate_rows =
      stats.lines_full * ix->values_per_line() + stats.values_checked;
  FilterQuality q;
  q.touched_fraction = stats.TouchedFraction();
  q.false_positive =
      candidate_rows > 0
          ? 1.0 - static_cast<double>(stats.rows_selected) / candidate_rows
          : 0.0;
  q.storage_overhead =
      ix->Storage(col.raw_size_bytes()).overhead_fraction;
  q.time_ms = t;
  return q;
}

FilterQuality MeasureZoneMap(const Column& col, double lo, double hi) {
  auto ix = ZoneMapIndex::Build(col);
  if (!ix.ok()) std::exit(1);
  ZoneMapScanStats stats;
  BitVector rows;
  double t = TimeMs([&] {
    ZoneMapScanStats s;
    (void)ix->RangeSelect(col, lo, hi, &rows, &s);
    stats = s;
  });
  uint64_t candidate_rows =
      stats.zones_full * ix->rows_per_zone() + stats.values_checked;
  FilterQuality q;
  q.touched_fraction = stats.TouchedFraction();
  q.false_positive =
      candidate_rows > 0
          ? 1.0 - static_cast<double>(stats.rows_selected) / candidate_rows
          : 0.0;
  q.storage_overhead =
      static_cast<double>(ix->StorageBytes()) / col.raw_size_bytes();
  q.time_ms = t;
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  geocol::bench::InitBench(argc, argv);
  const uint64_t n = BenchPoints(2000000);
  Banner("E5: filter robustness vs data clustering (paper section 2.1.1)",
         "imprints vs zone maps on sorted / acquisition / shuffled x column");

  auto table = GenerateSurvey(n);
  ColumnPtr x_acq = table->column("x");
  std::printf("survey: %llu points; 1%%-of-domain range query on x\n",
              static_cast<unsigned long long>(x_acq->size()));

  // Query: a 1%-wide slab in the middle of the domain.
  double lo_dom = x_acq->Stats().min, hi_dom = x_acq->Stats().max;
  double width = (hi_dom - lo_dom) * 0.01;
  double lo = lo_dom + (hi_dom - lo_dom) * 0.5;
  double hi = lo + width;

  // The three orderings.
  auto sorted = GenerateSurvey(n);
  if (!SortTableMorton(sorted.get()).ok()) return 1;
  auto shuffled = GenerateSurvey(n);
  ShuffleTableRows(shuffled.get(), 4242);

  struct Config {
    const char* name;
    ColumnPtr col;
  } configs[] = {
      {"morton-sorted", sorted->column("x")},
      {"acquisition", x_acq},
      {"shuffled", shuffled->column("x")},
  };

  TablePrinter out({"ordering", "index", "touched", "false pos", "overhead",
                    "scan ms"});
  for (const Config& c : configs) {
    FilterQuality imp = MeasureImprints(*c.col, lo, hi);
    FilterQuality zm = MeasureZoneMap(*c.col, lo, hi);
    out.Row({c.name, "imprints", TablePrinter::Pct(imp.touched_fraction),
             TablePrinter::Pct(imp.false_positive),
             TablePrinter::Pct(imp.storage_overhead),
             TablePrinter::Num(imp.time_ms, 3)});
    out.Row({c.name, "zonemap", TablePrinter::Pct(zm.touched_fraction),
             TablePrinter::Pct(zm.false_positive),
             TablePrinter::Pct(zm.storage_overhead),
             TablePrinter::Num(zm.time_ms, 3)});
  }

  std::printf(
      "\nexpected shape (paper): on sorted/acquisition-ordered data both "
      "indexes filter well; on shuffled\ndata the zone map touches ~100%% of "
      "zones (every zone spans the domain) while imprints still skip\nthe "
      "cache lines whose bin signature misses the query — 'effective and "
      "robust even ... unclustered'.\n");
  return 0;
}
