#include "telemetry/trace.h"

#include <cinttypes>
#include <cstdio>
#include <ctime>

namespace geocol {
namespace telemetry {

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// One trace_event object for span `op` (no trailing separator).
void AppendSpanEvent(std::string* out, const OperatorProfile& op,
                     const std::string& label) {
  char buf[128];
  *out += "{\"name\": ";
  AppendJsonString(out, op.name);
  *out += ", \"cat\": \"query\", \"ph\": \"X\"";
  // Chrome expects microsecond ts/dur; keep fractional precision so
  // sub-µs spans stay visible.
  std::snprintf(buf, sizeof(buf), ", \"ts\": %.3f, \"dur\": %.3f",
                op.start_nanos / 1e3, op.nanos / 1e3);
  *out += buf;
  std::snprintf(buf, sizeof(buf), ", \"pid\": 1, \"tid\": %u", op.thread_id);
  *out += buf;
  *out += ", \"args\": {";
  std::snprintf(buf, sizeof(buf),
                "\"rows_in\": %llu, \"rows_out\": %llu, \"workers\": %u",
                static_cast<unsigned long long>(op.rows_in),
                static_cast<unsigned long long>(op.rows_out), op.workers);
  *out += buf;
  if (!op.detail.empty()) {
    *out += ", \"detail\": ";
    AppendJsonString(out, op.detail);
  }
  for (const auto& kv : op.attrs) {
    *out += ", ";
    AppendJsonString(out, kv.first);
    *out += ": ";
    AppendJsonString(out, kv.second);
  }
  if (!label.empty()) {
    *out += ", \"query\": ";
    AppendJsonString(out, label);
  }
  *out += "}}";
}

}  // namespace

std::string ProfileToChromeTrace(const QueryProfile& profile,
                                 const std::string& label,
                                 int64_t start_unix_nanos) {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const OperatorProfile& op : profile.operators()) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    AppendSpanEvent(&out, op, label);
  }
  out += "\n], \"displayTimeUnit\": \"ms\"";
  if (start_unix_nanos > 0) {
    // Span ts stay epoch-rebased; the absolute wall clock rides in
    // otherData so viewers and check_trace.py can anchor the trace.
    char buf[160];
    const time_t secs = static_cast<time_t>(start_unix_nanos / 1000000000);
    struct tm utc;
    gmtime_r(&secs, &utc);
    char iso[40];
    std::strftime(iso, sizeof(iso), "%Y-%m-%dT%H:%M:%S", &utc);
    std::snprintf(buf, sizeof(buf),
                  ", \"otherData\": {\"start_unix_nanos\": %lld, "
                  "\"start_iso8601\": \"%s.%09lldZ\"}",
                  static_cast<long long>(start_unix_nanos), iso,
                  static_cast<long long>(start_unix_nanos % 1000000000));
    out += buf;
  }
  out += "}\n";
  return out;
}

std::string ProfileToJsonl(const QueryProfile& profile,
                           const std::string& label) {
  std::string out;
  for (const OperatorProfile& op : profile.operators()) {
    AppendSpanEvent(&out, op, label);
    out += "\n";
  }
  return out;
}

TraceRing& TraceRing::Global() {
  static TraceRing* ring = new TraceRing();  // never destroyed
  return *ring;
}

void TraceRing::Record(TraceRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) records_.pop_front();
}

std::vector<TraceRecord> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceRecord>(records_.begin(), records_.end());
}

bool TraceRing::Latest(TraceRecord* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.empty()) return false;
  *out = records_.back();
  return true;
}

void TraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

}  // namespace telemetry
}  // namespace geocol
