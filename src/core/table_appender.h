// Staged, atomically published appends to a LiveTable (DESIGN.md §13).
//
// An appender accumulates rows (raw batches, LAS tiles, CSV files) in a
// private staging table and publishes everything staged as ONE new epoch:
//   1. every column of the current version is extended copy-on-write
//      (Column::CloneAppend) — readers of pinned epochs see nothing;
//   2. for a durable table, the new version is written with WriteTableDir
//      first — the manifest rename inside it is the commit point, so a
//      crash at any failpoint reopens as a complete old-or-new epoch;
//   3. the LiveTable's current-snapshot pointer swaps — the single atomic
//      epoch bump that makes the rows visible to new Pin() calls.
// Commits of concurrent appenders on one table serialise; staging is not
// thread-safe (one appender per thread).
#ifndef GEOCOL_CORE_TABLE_APPENDER_H_
#define GEOCOL_CORE_TABLE_APPENDER_H_

#include <memory>
#include <string>

#include "core/live_table.h"
#include "util/status.h"

namespace geocol {

class TableAppender {
 public:
  explicit TableAppender(std::shared_ptr<LiveTable> table);

  /// Stages a column-major batch; its schema must equal the live table's.
  Status StageBatch(const FlatTable& batch);

  /// Stages a LAS/LAZ tile (the live-acquisition flight-strip path). The
  /// live table must use the LAS point schema.
  Status StageLasFile(const std::string& path);

  /// Stages a CSV file matching the live table's schema (with header).
  Status StageCsvFile(const std::string& path);

  uint64_t staged_rows() const { return staging_.num_rows(); }

  /// Publishes all staged rows as one new epoch; clears staging on
  /// success. On failure nothing is published and staging is kept, so the
  /// caller may retry. No-op when nothing is staged.
  Status Commit();

 private:
  std::shared_ptr<LiveTable> table_;
  FlatTable staging_;
};

}  // namespace geocol

#endif  // GEOCOL_CORE_TABLE_APPENDER_H_
