// Randomised property tests over the geometry predicates — the exactness
// of the refinement step rests on these invariants:
//   1. GeometriesIntersect is symmetric.
//   2. intersect(a,b)  <=>  GeometryDistance(a,b) == 0.
//   3. GeometryDWithin(g, p, d)  <=>  GeometryPointDistance(g, p) <= d.
//   4. ClassifyBoxGeometry is sound: kInside cells contain only qualifying
//      sample points, kOutside cells contain none (buffered and plain).
#include <gtest/gtest.h>

#include <algorithm>

#include "geom/geometry.h"
#include "geom/predicates.h"
#include "util/rng.h"

namespace geocol {
namespace {

Geometry RandomGeometry(Rng* rng, double world = 100.0) {
  switch (rng->Uniform(5)) {
    case 0:
      return Geometry(Point{rng->UniformDouble(0, world),
                            rng->UniformDouble(0, world)});
    case 1: {
      double x = rng->UniformDouble(0, world * 0.8);
      double y = rng->UniformDouble(0, world * 0.8);
      return Geometry(Box(x, y, x + rng->UniformDouble(0.1, world * 0.3),
                          y + rng->UniformDouble(0.1, world * 0.3)));
    }
    case 2: {
      LineString l;
      int n = 2 + static_cast<int>(rng->Uniform(6));
      for (int i = 0; i < n; ++i) {
        l.points.push_back({rng->UniformDouble(0, world),
                            rng->UniformDouble(0, world)});
      }
      return Geometry(std::move(l));
    }
    case 3: {
      // Random convex-ish polygon: circle with jittered radius.
      Point c{rng->UniformDouble(world * 0.2, world * 0.8),
              rng->UniformDouble(world * 0.2, world * 0.8)};
      int n = 3 + static_cast<int>(rng->Uniform(10));
      Polygon p;
      for (int i = 0; i < n; ++i) {
        double a = 2 * M_PI * i / n;
        double r = rng->UniformDouble(world * 0.05, world * 0.25);
        p.shell.points.push_back(
            {c.x + r * std::cos(a), c.y + r * std::sin(a)});
      }
      return Geometry(std::move(p));
    }
    default: {
      MultiPolygon mp;
      int k = 1 + static_cast<int>(rng->Uniform(3));
      for (int i = 0; i < k; ++i) {
        double x = rng->UniformDouble(0, world * 0.8);
        double y = rng->UniformDouble(0, world * 0.8);
        mp.polygons.push_back(Polygon::FromBox(
            Box(x, y, x + rng->UniformDouble(1, world * 0.2),
                y + rng->UniformDouble(1, world * 0.2))));
      }
      return Geometry(std::move(mp));
    }
  }
}

TEST(PredicatePropertyTest, IntersectIsSymmetric) {
  Rng rng(601);
  for (int i = 0; i < 500; ++i) {
    Geometry a = RandomGeometry(&rng);
    Geometry b = RandomGeometry(&rng);
    EXPECT_EQ(GeometriesIntersect(a, b), GeometriesIntersect(b, a))
        << "iteration " << i;
  }
}

TEST(PredicatePropertyTest, DistanceZeroIffIntersect) {
  Rng rng(602);
  for (int i = 0; i < 500; ++i) {
    Geometry a = RandomGeometry(&rng);
    Geometry b = RandomGeometry(&rng);
    bool meet = GeometriesIntersect(a, b);
    double d = GeometryDistance(a, b);
    if (meet) {
      EXPECT_EQ(d, 0.0) << "iteration " << i;
    } else {
      EXPECT_GT(d, 0.0) << "iteration " << i;
    }
  }
}

TEST(PredicatePropertyTest, DistanceIsSymmetric) {
  Rng rng(603);
  for (int i = 0; i < 300; ++i) {
    Geometry a = RandomGeometry(&rng);
    Geometry b = RandomGeometry(&rng);
    double dab = GeometryDistance(a, b);
    double dba = GeometryDistance(b, a);
    EXPECT_NEAR(dab, dba, 1e-9) << "iteration " << i;
  }
}

TEST(PredicatePropertyTest, DWithinMatchesDistance) {
  Rng rng(604);
  for (int i = 0; i < 2000; ++i) {
    Geometry g = RandomGeometry(&rng);
    Point p{rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)};
    double dist = GeometryPointDistance(g, p);
    double d = rng.UniformDouble(0, 40);
    EXPECT_EQ(GeometryDWithin(g, p, d), dist <= d)
        << "iteration " << i << " dist=" << dist << " d=" << d;
  }
}

TEST(PredicatePropertyTest, ContainsImpliesZeroDistance) {
  Rng rng(605);
  int contained = 0;
  for (int i = 0; i < 5000; ++i) {
    Geometry g = RandomGeometry(&rng);
    Point p{rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)};
    if (GeometryContainsPoint(g, p)) {
      ++contained;
      EXPECT_EQ(GeometryPointDistance(g, p), 0.0) << "iteration " << i;
    }
  }
  EXPECT_GT(contained, 50) << "sanity: some points should land inside";
}

TEST(PredicatePropertyTest, ClassifySoundnessPlain) {
  Rng rng(606);
  for (int iter = 0; iter < 150; ++iter) {
    Geometry g = RandomGeometry(&rng);
    double x = rng.UniformDouble(0, 90), y = rng.UniformDouble(0, 90);
    Box cell(x, y, x + rng.UniformDouble(0.5, 10),
             y + rng.UniformDouble(0.5, 10));
    BoxRelation rel = ClassifyBoxGeometry(cell, g);
    for (int s = 0; s < 30; ++s) {
      Point p{rng.UniformDouble(cell.min_x, cell.max_x),
              rng.UniformDouble(cell.min_y, cell.max_y)};
      bool in = GeometryContainsPoint(g, p);
      if (rel == BoxRelation::kInside) {
        ASSERT_TRUE(in) << "iter " << iter;
      }
      if (rel == BoxRelation::kOutside) {
        ASSERT_FALSE(in) << "iter " << iter;
      }
    }
  }
}

TEST(PredicatePropertyTest, ClassifySoundnessBuffered) {
  Rng rng(607);
  for (int iter = 0; iter < 150; ++iter) {
    Geometry g = RandomGeometry(&rng);
    double buffer = rng.UniformDouble(0.5, 15);
    double x = rng.UniformDouble(0, 90), y = rng.UniformDouble(0, 90);
    Box cell(x, y, x + rng.UniformDouble(0.5, 8),
             y + rng.UniformDouble(0.5, 8));
    BoxRelation rel = ClassifyBoxGeometry(cell, g, buffer);
    for (int s = 0; s < 30; ++s) {
      Point p{rng.UniformDouble(cell.min_x, cell.max_x),
              rng.UniformDouble(cell.min_y, cell.max_y)};
      bool in = GeometryDWithin(g, p, buffer);
      if (rel == BoxRelation::kInside) {
        ASSERT_TRUE(in) << "iter " << iter << " buffer " << buffer;
      }
      if (rel == BoxRelation::kOutside) {
        ASSERT_FALSE(in) << "iter " << iter << " buffer " << buffer;
      }
    }
  }
}

TEST(PredicatePropertyTest, EnvelopeContainsGeometrySamples) {
  // Envelope must bound every vertex-ish sample of the geometry.
  Rng rng(608);
  for (int iter = 0; iter < 300; ++iter) {
    Geometry g = RandomGeometry(&rng);
    Box env = g.Envelope();
    // Points at zero distance from g must lie within the envelope
    // (sampled via containment).
    for (int s = 0; s < 20; ++s) {
      Point p{rng.UniformDouble(0, 100), rng.UniformDouble(0, 100)};
      if (GeometryContainsPoint(g, p)) {
        EXPECT_TRUE(env.Contains(p)) << "iter " << iter;
      }
    }
  }
}

TEST(PredicatePropertyTest, IntersectsBoxAgreesWithClassify) {
  Rng rng(609);
  for (int iter = 0; iter < 400; ++iter) {
    Geometry g = RandomGeometry(&rng);
    double x = rng.UniformDouble(0, 90), y = rng.UniformDouble(0, 90);
    Box box(x, y, x + rng.UniformDouble(0.5, 15),
            y + rng.UniformDouble(0.5, 15));
    BoxRelation rel = ClassifyBoxGeometry(box, g);
    bool hits = GeometryIntersectsBox(g, box);
    if (rel == BoxRelation::kInside) EXPECT_TRUE(hits) << iter;
    if (rel == BoxRelation::kOutside) {
      // A box classified outside may still touch a degenerate boundary in
      // rare float cases for buffered shapes, but for plain geometries the
      // two must agree.
      EXPECT_FALSE(hits) << iter;
    }
  }
}

}  // namespace
}  // namespace geocol
