// The column: a densely packed, append-only array of one fixed-width type.
// This is the unit the imprints index attaches to, mirroring MonetDB's BAT
// tail array.
//
// Two storage tiers live behind this interface (DESIGN.md §14):
//   - the resident tier (this class): all values in one contiguous buffer,
//     Values<T>() returns the whole span, appends allowed;
//   - the paged tier (columns/paged_column.h): values stay on disk in the
//     column file's 256 KiB CRC chunks and are faulted into a budgeted
//     process-wide chunk cache on demand. Paged columns are read-only;
//     scans walk them chunk by chunk via PinChunk()/ForEachValueRun().
#ifndef GEOCOL_COLUMNS_COLUMN_H_
#define GEOCOL_COLUMNS_COLUMN_H_

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "columns/types.h"
#include "util/status.h"

namespace geocol {

/// Min/max statistics of a column (computed lazily, cached until the next
/// append invalidates them).
struct ColumnStats {
  double min = 0.0;
  double max = 0.0;
  bool valid = false;
};

/// A faulted-in, decoded view of one chunk of a paged column. `data` stays
/// valid while the pin is held (shared ownership with the chunk cache, so
/// a concurrent eviction cannot free it under the reader).
struct ColumnChunkPin {
  const uint8_t* data = nullptr;  ///< decoded little-endian values
  uint64_t first_row = 0;
  size_t row_count = 0;
  std::shared_ptr<const std::vector<uint8_t>> keepalive;

  template <typename T>
  const T* values() const {
    return reinterpret_cast<const T*>(data);
  }
};

/// A type-erased, densely packed column of fixed-width values.
///
/// Storage is a contiguous byte buffer; typed access goes through
/// `Values<T>()` which checks the runtime type. Appends invalidate the
/// cached statistics and any imprints built on the column (tracked via the
/// append epoch). Virtual methods are the paged tier's override points.
class Column {
 public:
  Column(std::string name, DataType type)
      : name_(std::move(name)), type_(type), width_(DataTypeSize(type)) {}
  virtual ~Column() = default;

  const std::string& name() const { return name_; }
  DataType type() const { return type_; }
  size_t width() const { return width_; }
  virtual size_t size() const { return data_.size() / width_; }
  bool empty() const { return size() == 0; }

  /// True for the paged (out-of-core) tier: values are not resident, so
  /// Values<T>(), raw_data() and every mutation are off limits; readers go
  /// through PinChunk()/ForEachValueRun() or the batched getters.
  virtual bool paged() const { return false; }

  /// Rows per paging chunk. Chunks are 256 KiB of fixed-width values, so
  /// this is a power of two >= 32768 — always a multiple of 64 (BitVector
  /// word), of the 4096-value SIMD block, and of every imprints
  /// values-per-cacheline, which keeps chunk boundaries off every scan
  /// boundary case. Resident columns report one whole-column "chunk".
  virtual size_t chunk_rows() const { return size(); }

  virtual size_t num_chunks() const { return size() == 0 ? 0 : 1; }

  /// Faults (or finds cached) chunk `chunk_index` and pins its decoded
  /// bytes. Resident columns pin their buffer directly (no copy). A read
  /// or checksum failure surfaces here — scans propagate it instead of
  /// producing partial answers.
  virtual Result<ColumnChunkPin> PinChunk(size_t chunk_index) const;

  /// Monotonic counter bumped on every mutation; index structures remember
  /// the epoch they were built at and rebuild when it moves.
  uint64_t epoch() const { return epoch_; }

  /// Typed read-only view of the whole column. T must match type();
  /// resident tier only (paged columns have no contiguous buffer).
  template <typename T>
  std::span<const T> Values() const {
    assert(DataTypeOf<T>() == type_);
    assert(!paged());
    return {reinterpret_cast<const T*>(data_.data()), data_.size() / width_};
  }

  template <typename T>
  void Append(T value) {
    assert(DataTypeOf<T>() == type_);
    assert(!paged());
    const auto* p = reinterpret_cast<const uint8_t*>(&value);
    data_.insert(data_.end(), p, p + sizeof(T));
    Invalidate();
  }

  template <typename T>
  void AppendSpan(std::span<const T> values) {
    assert(DataTypeOf<T>() == type_);
    assert(!paged());
    const auto* p = reinterpret_cast<const uint8_t*>(values.data());
    data_.insert(data_.end(), p, p + values.size_bytes());
    Invalidate();
  }

  /// Appends `count` values of this column's type from a raw little-endian
  /// buffer — the COPY BINARY path of the binary bulk loader.
  void AppendRaw(const void* data, size_t count) {
    assert(!paged());
    const auto* p = static_cast<const uint8_t*>(data);
    data_.insert(data_.end(), p, p + count * width_);
    Invalidate();
  }

  void Reserve(size_t rows) { data_.reserve(rows * width_); }
  void Clear() {
    data_.clear();
    Invalidate();
  }

  /// Copy-on-append: a NEW column holding `base`'s bytes followed by
  /// `count` values from a raw little-endian buffer. `base` is never
  /// touched — readers scanning it keep a stable view — and the new column
  /// remembers `base` as its lineage (weak, so retiring every snapshot of
  /// the old version frees its bytes). The imprint manager follows the
  /// lineage to extend the old index incrementally instead of rebuilding.
  /// This is the publication primitive of the live-ingestion path
  /// (DESIGN.md §13). InvalidArgument for paged bases (read-only tier).
  static Result<std::shared_ptr<Column>> CloneAppend(
      const std::shared_ptr<Column>& base, const void* data, size_t count);

  /// Lineage of a CloneAppend column: the column this one extends, or null
  /// when there is none (fresh column) or every reference to it is gone.
  std::shared_ptr<const Column> base() const { return base_.lock(); }
  /// Rows inherited from base() (0 when no lineage).
  uint64_t base_rows() const { return base_rows_; }

  /// Value converted to double (lossless for all types up to 2^53). On a
  /// paged column a chunk-fault failure cannot be reported here; callers
  /// that must distinguish an I/O error from a value use GetDoubleBatch
  /// (the paged override logs, counts and returns quiet NaN).
  virtual double GetDouble(size_t row) const;

  /// Batched GetDouble: out[i] = GetDouble(rows[i]). Resolves the type
  /// switch once for the whole batch and runs the SIMD gather kernel, so
  /// refinement can pull candidate coordinates without a per-row dispatch.
  /// The paged tier faults the covering chunks; a fault failure returns
  /// non-OK and `out` must not be used.
  virtual Status GetDoubleBatch(const uint64_t* rows, size_t n,
                                double* out) const;

  /// Value converted to int64 (floats are truncated). Same paged-fault
  /// caveat as GetDouble.
  virtual int64_t GetInt64(size_t row) const;

  /// Cached min/max; recomputed after appends. Safe to call from
  /// concurrent readers of an immutable (published) column — computation
  /// is serialised on an internal mutex. Mutating the column while another
  /// thread reads it remains the caller's bug, as everywhere else.
  virtual const ColumnStats& Stats() const;

  /// Seeds the stats cache without a scan — the COW append path knows the
  /// new min/max from base stats + batch extremes. Marks the cache valid.
  void SetCachedStats(double min, double max);

  /// CRC32C of the full little-endian value payload. Resident columns
  /// checksum their buffer; the paged tier answers from per-chunk CRCs
  /// already on disk (Crc32cCombine) without faulting anything, so imprint
  /// sidecar fingerprints agree between the two tiers.
  virtual uint32_t payload_crc32c() const;

  /// Resident tier only (nullptr when paged).
  const uint8_t* raw_data() const {
    assert(!paged());
    return data_.data();
  }

  /// Grants mutable access to the raw buffer for in-place reorganisation
  /// (row shuffles, SFC sorts); bumps the epoch so cached indexes and
  /// statistics are rebuilt. Resident tier only.
  uint8_t* BeginRawUpdate() {
    assert(!paged());
    Invalidate();
    return data_.data();
  }

  /// Logical payload size in bytes (rows x width) — defined for both
  /// tiers; only the resident tier holds these bytes in memory.
  virtual size_t raw_size_bytes() const { return data_.size(); }

  /// Heap bytes held by this column object itself. The paged tier reports
  /// its directory overhead only — faulted chunks are charged to the
  /// process-wide chunk cache, not to the column.
  virtual size_t MemoryBytes() const { return data_.capacity(); }

  /// Creates a column and fills it from a typed vector.
  template <typename T>
  static std::shared_ptr<Column> FromVector(std::string name,
                                            const std::vector<T>& values) {
    auto col = std::make_shared<Column>(std::move(name), DataTypeOf<T>());
    col->template AppendSpan<T>(values);
    return col;
  }

 protected:
  /// Paged subclass: pins the load epoch so imprint sidecars built against
  /// either open mode of the same file validate interchangeably.
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }

 private:
  void Invalidate() {
    ++epoch_;
    stats_.valid = false;
  }

  std::string name_;
  DataType type_;
  size_t width_;
  std::vector<uint8_t> data_;
  uint64_t epoch_ = 0;
  /// Lineage for incremental index maintenance (set by CloneAppend).
  std::weak_ptr<const Column> base_;
  uint64_t base_rows_ = 0;
  mutable std::mutex stats_mu_;  ///< serialises lazy stats computation
  mutable ColumnStats stats_;
};

using ColumnPtr = std::shared_ptr<Column>;

/// Applies `fn(const T* values, uint64_t first_row, size_t count)` over
/// [begin_row, end_row) in storage order. Resident columns get one call
/// over the contiguous span (zero overhead vs Values<T>()); paged columns
/// get one call per faulted chunk, each pinned only for the duration of
/// its call. The only Status sources are chunk faults, so resident columns
/// cannot fail.
template <typename T, typename Fn>
Status ForEachValueRun(const Column& column, uint64_t begin_row,
                       uint64_t end_row, Fn&& fn) {
  assert(DataTypeOf<T>() == column.type());
  if (begin_row >= end_row) return Status::OK();
  if (!column.paged()) {
    std::span<const T> values = column.Values<T>();
    fn(values.data() + begin_row, begin_row,
       static_cast<size_t>(end_row - begin_row));
    return Status::OK();
  }
  const size_t chunk_rows = column.chunk_rows();
  for (uint64_t row = begin_row; row < end_row;) {
    GEOCOL_ASSIGN_OR_RETURN(ColumnChunkPin pin,
                            column.PinChunk(row / chunk_rows));
    const uint64_t stop =
        std::min<uint64_t>(end_row, pin.first_row + pin.row_count);
    fn(pin.values<T>() + (row - pin.first_row), row,
       static_cast<size_t>(stop - row));
    row = stop;
  }
  return Status::OK();
}

}  // namespace geocol

#endif  // GEOCOL_COLUMNS_COLUMN_H_
