#include "cache/query_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>

#include "telemetry/metrics.h"

namespace geocol {
namespace cache {

namespace {

// Conservative per-entry bookkeeping charge: the key is stored twice (map
// key + LRU node) and the hash map / list nodes carry pointers of their own.
size_t EntryOverhead(const std::string& key) {
  return 2 * key.size() + 96;
}

// Fingerprint slots per shard. 512 x 8 bytes x 16 shards = 64 KB of
// doorkeeper state; plenty for the handful of live query shapes a process
// sees between repeats.
constexpr size_t kDoorkeeperSlots = 512;

telemetry::Counter& TierCounter(const char* what, Tier tier) {
  // 3 tiers x 4 counter kinds; resolved once per (kind, tier) call site via
  // the static maps inside GetCounter. This is off the per-row hot path
  // (once per query), so the name construction cost is irrelevant.
  std::string name = std::string("geocol_cache_") + TierName(tier) + "_" +
                     what + "_total";
  return telemetry::MetricsRegistry::Global().GetCounter(name);
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kSelection: return "selection";
    case Tier::kGridCells: return "grid";
    case Tier::kAggregate: return "aggregate";
  }
  return "unknown";
}

uint64_t CacheStats::TotalHits() const {
  uint64_t n = 0;
  for (const TierStats& t : tier) n += t.hits;
  return n;
}

uint64_t CacheStats::TotalMisses() const {
  uint64_t n = 0;
  for (const TierStats& t : tier) n += t.misses;
  return n;
}

// ---- KeyBuilder -----------------------------------------------------------

void KeyBuilder::AppendU64(uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  bytes_.append(buf, sizeof(v));
}

void KeyBuilder::AppendU32(uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  bytes_.append(buf, sizeof(v));
}

void KeyBuilder::AppendDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(bits);
}

void KeyBuilder::Append(const std::string& s) {
  AppendU64(s.size());
  bytes_.append(s);
}

void KeyBuilder::Append(const char* s) {
  size_t n = std::strlen(s);
  AppendU64(n);
  bytes_.append(s, n);
}

void KeyBuilder::AppendGeometry(const Geometry& g) {
  AppendU32(static_cast<uint32_t>(g.type()));
  auto append_points = [this](const std::vector<Point>& pts) {
    AppendU64(pts.size());
    for (const Point& p : pts) {
      AppendDouble(p.x);
      AppendDouble(p.y);
    }
  };
  auto append_polygon = [&](const Polygon& poly) {
    append_points(poly.shell.points);
    AppendU64(poly.holes.size());
    for (const Ring& hole : poly.holes) append_points(hole.points);
  };
  switch (g.type()) {
    case GeometryType::kPoint:
      AppendDouble(g.point().x);
      AppendDouble(g.point().y);
      break;
    case GeometryType::kBox:
      AppendDouble(g.box().min_x);
      AppendDouble(g.box().min_y);
      AppendDouble(g.box().max_x);
      AppendDouble(g.box().max_y);
      break;
    case GeometryType::kLineString:
      append_points(g.line().points);
      break;
    case GeometryType::kPolygon:
      append_polygon(g.polygon());
      break;
    case GeometryType::kMultiPolygon:
      AppendU64(g.multipolygon().polygons.size());
      for (const Polygon& poly : g.multipolygon().polygons) {
        append_polygon(poly);
      }
      break;
  }
}

// ---- QueryResultCache -----------------------------------------------------

QueryResultCache::QueryResultCache(uint64_t budget_bytes)
    : budget_(budget_bytes) {
  for (size_t t = 0; t < kNumTiers; ++t) {
    hits_[t].store(0, std::memory_order_relaxed);
    misses_[t].store(0, std::memory_order_relaxed);
    inserts_[t].store(0, std::memory_order_relaxed);
  }
  for (Shard& shard : shards_) shard.seen.assign(kDoorkeeperSlots, 0);
}

QueryResultCache::~QueryResultCache() = default;

QueryResultCache& QueryResultCache::Global() {
  static QueryResultCache* cache = new QueryResultCache(0);
  return *cache;
}

void QueryResultCache::SetBudget(uint64_t budget_bytes) {
  budget_.store(budget_bytes, std::memory_order_relaxed);
  const uint64_t per_shard = ShardBudget();
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    while (shard.bytes > per_shard && !shard.lru.empty()) {
      EraseLocked(shard, shard.map.find(shard.lru.back()), true);
    }
  }
}

void QueryResultCache::GrowBudget(uint64_t budget_bytes) {
  uint64_t cur = budget_.load(std::memory_order_relaxed);
  while (budget_bytes > cur &&
         !budget_.compare_exchange_weak(cur, budget_bytes,
                                        std::memory_order_relaxed)) {
  }
}

QueryResultCache::Shard& QueryResultCache::ShardFor(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kShards];
}

bool QueryResultCache::NoteSightingLocked(Shard& shard, size_t key_hash) {
  const uint64_t fp = key_hash == 0 ? 1 : key_hash;
  uint64_t& slot = shard.seen[(key_hash / kShards) % kDoorkeeperSlots];
  if (slot == fp) return true;
  slot = fp;
  return false;
}

bool QueryResultCache::ShouldAdmit(Tier tier, const std::string& key,
                                   uint64_t approx_bytes) {
  if (approx_bytes + EntryOverhead(key) < kDoorkeeperBytes) return true;
  const size_t h = std::hash<std::string>{}(key);
  Shard& shard = shards_[h % kShards];
  bool admit;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    admit = shard.map.find(key) != shard.map.end() ||
            NoteSightingLocked(shard, h);
  }
  if (!admit) TierCounter("admission_deferrals", tier).Increment();
  return admit;
}

uint64_t QueryResultCache::ShardBudget() const {
  return budget_.load(std::memory_order_relaxed) / kShards;
}

void QueryResultCache::RecordHit(Tier tier) {
  hits_[static_cast<size_t>(tier)].fetch_add(1, std::memory_order_relaxed);
  TierCounter("hits", tier).Increment();
}

void QueryResultCache::RecordMiss(Tier tier) {
  misses_[static_cast<size_t>(tier)].fetch_add(1, std::memory_order_relaxed);
  TierCounter("misses", tier).Increment();
}

void QueryResultCache::EraseLocked(
    Shard& shard, std::unordered_map<std::string, Entry>::iterator it,
    bool count_eviction) {
  const size_t t = static_cast<size_t>(it->second.tier);
  shard.bytes -= it->second.bytes;
  shard.tier_bytes[t] -= it->second.bytes;
  --shard.tier_entries[t];
  if (count_eviction) {
    ++shard.evictions[t];
    TierCounter("evictions", it->second.tier).Increment();
  }
  shard.lru.erase(it->second.lru_it);
  shard.map.erase(it);
}

void QueryResultCache::InsertEntry(const std::string& key, Entry entry) {
  const uint64_t per_shard = ShardBudget();
  entry.bytes += EntryOverhead(key);
  // An entry that alone exceeds the shard slice would immediately evict
  // everything and then be evicted itself on the next insert; skip it.
  if (entry.bytes > per_shard) return;
  const Tier tier = entry.tier;
  const size_t h = std::hash<std::string>{}(key);
  Shard& shard = shards_[h % kShards];
  bool deferred = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end() && entry.bytes >= kDoorkeeperBytes &&
        !NoteSightingLocked(shard, h)) {
      // Large first-sighting: admission waits for a repeat.
      deferred = true;
    } else {
      if (it != shard.map.end()) EraseLocked(shard, it, false);
      shard.lru.push_front(key);
      entry.lru_it = shard.lru.begin();
      const size_t t = static_cast<size_t>(entry.tier);
      shard.bytes += entry.bytes;
      shard.tier_bytes[t] += entry.bytes;
      ++shard.tier_entries[t];
      shard.map.emplace(key, std::move(entry));
      while (shard.bytes > per_shard && !shard.lru.empty()) {
        EraseLocked(shard, shard.map.find(shard.lru.back()), true);
      }
    }
  }
  if (deferred) {
    TierCounter("admission_deferrals", tier).Increment();
    return;
  }
  inserts_[static_cast<size_t>(tier)].fetch_add(1, std::memory_order_relaxed);
  TierCounter("inserts", tier).Increment();
}

std::shared_ptr<const CachedSelection> QueryResultCache::LookupSelection(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<const CachedSelection> value;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && it->second.tier == Tier::kSelection) {
      value = it->second.selection;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    }
  }
  if (value != nullptr) {
    RecordHit(Tier::kSelection);
  } else {
    RecordMiss(Tier::kSelection);
  }
  return value;
}

void QueryResultCache::InsertSelection(
    const std::string& key, std::shared_ptr<const CachedSelection> value) {
  if (value == nullptr) return;
  Entry entry;
  entry.tier = Tier::kSelection;
  entry.bytes = value->MemoryBytes();
  entry.selection = std::move(value);
  InsertEntry(key, std::move(entry));
}

std::shared_ptr<const std::vector<uint8_t>> QueryResultCache::LookupGridCells(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<const std::vector<uint8_t>> value;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && it->second.tier == Tier::kGridCells) {
      value = it->second.cells;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    }
  }
  if (value != nullptr) {
    RecordHit(Tier::kGridCells);
  } else {
    RecordMiss(Tier::kGridCells);
  }
  return value;
}

void QueryResultCache::MergeGridCells(const std::string& key,
                                      std::vector<uint8_t> cells) {
  {
    // Fill this publish's unclassified slots from the existing entry (if
    // any, and only when the grids agree in size) so concurrent queries
    // sharing a geometry keep enriching one table instead of overwriting
    // each other's progress.
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && it->second.tier == Tier::kGridCells &&
        it->second.cells != nullptr && it->second.cells->size() == cells.size()) {
      const std::vector<uint8_t>& prior = *it->second.cells;
      for (size_t i = 0; i < cells.size(); ++i) {
        if (cells[i] == kCellUnclassified) cells[i] = prior[i];
      }
    }
  }
  Entry entry;
  entry.tier = Tier::kGridCells;
  entry.bytes = sizeof(std::vector<uint8_t>) + cells.capacity();
  entry.cells = std::make_shared<const std::vector<uint8_t>>(std::move(cells));
  InsertEntry(key, std::move(entry));
}

bool QueryResultCache::LookupAggregate(const std::string& key, double* out) {
  Shard& shard = ShardFor(key);
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && it->second.tier == Tier::kAggregate) {
      *out = it->second.aggregate;
      found = true;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    }
  }
  if (found) {
    RecordHit(Tier::kAggregate);
  } else {
    RecordMiss(Tier::kAggregate);
  }
  return found;
}

void QueryResultCache::InsertAggregate(const std::string& key, double value) {
  Entry entry;
  entry.tier = Tier::kAggregate;
  entry.bytes = sizeof(double);
  entry.aggregate = value;
  InsertEntry(key, std::move(entry));
}

void QueryResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
    shard.bytes = 0;
    std::fill(shard.seen.begin(), shard.seen.end(), 0);
    for (size_t t = 0; t < kNumTiers; ++t) {
      shard.tier_bytes[t] = 0;
      shard.tier_entries[t] = 0;
    }
  }
}

CacheStats QueryResultCache::Stats() const {
  CacheStats stats;
  stats.budget_bytes = budget_.load(std::memory_order_relaxed);
  for (size_t t = 0; t < kNumTiers; ++t) {
    stats.tier[t].hits = hits_[t].load(std::memory_order_relaxed);
    stats.tier[t].misses = misses_[t].load(std::memory_order_relaxed);
    stats.tier[t].inserts = inserts_[t].load(std::memory_order_relaxed);
  }
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (size_t t = 0; t < kNumTiers; ++t) {
      stats.tier[t].evictions += shard.evictions[t];
      stats.tier[t].entries += shard.tier_entries[t];
      stats.tier[t].bytes += shard.tier_bytes[t];
      stats.bytes_used += shard.tier_bytes[t];
    }
  }
  return stats;
}

uint64_t QueryResultCache::bytes_used() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

std::string QueryResultCache::StatsToString() const {
  const CacheStats stats = Stats();
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line),
                "cache budget %.2f MB, used %.2f MB\n",
                stats.budget_bytes / (1024.0 * 1024.0),
                stats.bytes_used / (1024.0 * 1024.0));
  out += line;
  for (size_t t = 0; t < kNumTiers; ++t) {
    const TierStats& ts = stats.tier[t];
    const uint64_t lookups = ts.hits + ts.misses;
    std::snprintf(
        line, sizeof(line),
        "  %-9s hits %llu / %llu (%.1f%%), inserts %llu, evictions %llu, "
        "entries %llu, %.2f MB\n",
        TierName(static_cast<Tier>(t)),
        static_cast<unsigned long long>(ts.hits),
        static_cast<unsigned long long>(lookups),
        lookups > 0 ? 100.0 * ts.hits / lookups : 0.0,
        static_cast<unsigned long long>(ts.inserts),
        static_cast<unsigned long long>(ts.evictions),
        static_cast<unsigned long long>(ts.entries), ts.bytes / (1024.0 * 1024.0));
    out += line;
  }
  return out;
}

}  // namespace cache
}  // namespace geocol
