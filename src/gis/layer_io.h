// Vector layer exchange format: a simple tab-separated text file with one
// feature per line (`id \t class \t name \t WKT`), loadable by QGIS-style
// tools and by the geocol CLI.
#ifndef GEOCOL_GIS_LAYER_IO_H_
#define GEOCOL_GIS_LAYER_IO_H_

#include <memory>
#include <string>

#include "gis/layer.h"
#include "util/status.h"

namespace geocol {

/// Writes `layer` to `path` (one feature per line).
Status WriteLayerFile(const VectorLayer& layer, const std::string& path);

/// Reads a layer file; the layer name is taken from the file's base name
/// unless `name` is non-empty.
Result<std::shared_ptr<VectorLayer>> ReadLayerFile(const std::string& path,
                                                   const std::string& name = "");

}  // namespace geocol

#endif  // GEOCOL_GIS_LAYER_IO_H_
