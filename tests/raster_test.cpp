// Raster aggregation (DSM) tests.
#include <gtest/gtest.h>

#include "core/raster.h"
#include "core/spatial_engine.h"
#include "pointcloud/generator.h"

namespace geocol {
namespace {

std::shared_ptr<FlatTable> GridTable() {
  // A deterministic 4x4 arrangement: one point per cell with z = cell id.
  auto t = std::make_shared<FlatTable>("pc");
  std::vector<double> xs, ys, zs;
  for (int cy = 0; cy < 4; ++cy) {
    for (int cx = 0; cx < 4; ++cx) {
      xs.push_back(cx + 0.5);
      ys.push_back(cy + 0.5);
      zs.push_back(cy * 4 + cx);
    }
  }
  EXPECT_TRUE(t->AddColumn(Column::FromVector("x", xs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("y", ys)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("z", zs)).ok());
  return t;
}

TEST(RasterTest, MeanPerCell) {
  auto table = GridTable();
  auto raster = RasterizeRows(*table, {}, "z", Box(0, 0, 4, 4), 4, 4);
  ASSERT_TRUE(raster.ok());
  for (uint32_t ry = 0; ry < 4; ++ry) {
    for (uint32_t cx = 0; cx < 4; ++cx) {
      EXPECT_EQ(raster->CountAt(cx, ry), 1u);
      EXPECT_EQ(raster->At(cx, ry), static_cast<float>(ry * 4 + cx));
    }
  }
}

TEST(RasterTest, StatsVariants) {
  auto t = std::make_shared<FlatTable>("pc");
  ASSERT_TRUE(t->AddColumn(
      Column::FromVector<double>("x", {0.5, 0.5, 0.5})).ok());
  ASSERT_TRUE(t->AddColumn(
      Column::FromVector<double>("y", {0.5, 0.5, 0.5})).ok());
  ASSERT_TRUE(t->AddColumn(
      Column::FromVector<double>("z", {1.0, 2.0, 6.0})).ok());
  Box e(0, 0, 1, 1);
  auto mean = RasterizeRows(*t, {}, "z", e, 1, 1, RasterStat::kMean);
  auto mn = RasterizeRows(*t, {}, "z", e, 1, 1, RasterStat::kMin);
  auto mx = RasterizeRows(*t, {}, "z", e, 1, 1, RasterStat::kMax);
  auto cnt = RasterizeRows(*t, {}, "z", e, 1, 1, RasterStat::kCount);
  ASSERT_TRUE(mean.ok());
  ASSERT_TRUE(mn.ok());
  ASSERT_TRUE(mx.ok());
  ASSERT_TRUE(cnt.ok());
  EXPECT_FLOAT_EQ(mean->At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(mn->At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(mx->At(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(cnt->At(0, 0), 3.0f);
}

TEST(RasterTest, RowSubsetRestricts) {
  auto table = GridTable();
  auto raster = RasterizeRows(*table, {0, 15}, "z", Box(0, 0, 4, 4), 4, 4);
  ASSERT_TRUE(raster.ok());
  EXPECT_EQ(raster->CountAt(0, 0), 1u);
  EXPECT_EQ(raster->CountAt(3, 3), 1u);
  EXPECT_EQ(raster->CountAt(1, 1), 0u);
  EXPECT_TRUE(raster->Empty(2, 2));
}

TEST(RasterTest, Validation) {
  auto table = GridTable();
  EXPECT_FALSE(RasterizeRows(*table, {}, "z", Box(0, 0, 4, 4), 0, 4).ok());
  EXPECT_FALSE(RasterizeRows(*table, {}, "z", Box(), 4, 4).ok());
  EXPECT_FALSE(RasterizeRows(*table, {}, "nope", Box(0, 0, 4, 4), 4, 4).ok());
}

TEST(RasterTest, VoidFilling) {
  auto table = GridTable();
  auto raster = RasterizeRows(*table, {0}, "z", Box(0, 0, 4, 4), 4, 4);
  ASSERT_TRUE(raster.ok());
  EXPECT_TRUE(raster->Empty(3, 3));
  FillRasterVoids(&*raster, 8);
  // Everything reachable within 8 dilation steps of the single filled cell
  // becomes filled with its value.
  EXPECT_FALSE(raster->Empty(3, 3));
  EXPECT_FLOAT_EQ(raster->At(3, 3), 0.0f);
}

TEST(RasterTest, DsmOverSyntheticSurvey) {
  AhnGeneratorOptions opts;
  opts.extent = Box(85000, 444000, 85100, 444100);
  AhnGenerator gen(opts);
  auto table = *gen.GenerateTable(40000);
  Box extent(85000, 444000, 85100, 444100);
  auto dsm = RasterizeRows(*table, {}, "z", extent, 50, 50);
  ASSERT_TRUE(dsm.ok());
  // Density 4 pts/m² on 2x2 m cells: essentially every cell filled.
  uint64_t filled = 0;
  for (uint32_t c : dsm->counts) filled += c > 0;
  EXPECT_GT(filled, dsm->counts.size() * 95 / 100);
  // Elevations within the generator's plausible range.
  for (size_t i = 0; i < dsm->values.size(); ++i) {
    if (dsm->counts[i] == 0) continue;
    EXPECT_GT(dsm->values[i], -20.0f);
    EXPECT_LT(dsm->values[i], 120.0f);
  }
}

TEST(RasterTest, SelectionDrivenRaster) {
  // The workflow the demo implies: select a region with the engine, raster
  // the selected points only.
  AhnGeneratorOptions opts;
  opts.extent = Box(85000, 444000, 85100, 444100);
  AhnGenerator gen(opts);
  auto table = *gen.GenerateTable(20000);
  SpatialQueryEngine engine(table);
  Box region(85020, 444020, 85060, 444060);
  auto sel = engine.SelectInBox(region);
  ASSERT_TRUE(sel.ok());
  auto dsm = RasterizeRows(*table, sel->row_ids, "z", region, 20, 20);
  ASSERT_TRUE(dsm.ok());
  uint64_t total = 0;
  for (uint32_t c : dsm->counts) total += c;
  EXPECT_EQ(total, sel->count());
}

}  // namespace
}  // namespace geocol
