#include "core/imprint_scan.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <span>
#include <vector>

#include "core/imprints_io.h"
#include "core/native_range.h"
#include "simd/kernels.h"
#include "telemetry/metrics.h"
#include "util/binary_io.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace geocol {

namespace {

// Columns below this size are scanned serially even when a pool is given —
// the fork/join overhead would dominate.
constexpr uint64_t kMinParallelScanRows = 1 << 17;
// Morsel granularity (rows); rounded up to a multiple of lcm(64, values
// per line) so every morsel covers whole cache lines and whole BitVector
// words.
constexpr uint64_t kTargetMorselRows = 1 << 16;

/// One maximal run of candidate cache lines from the imprint filter.
struct CandidateRun {
  uint64_t first_line;
  uint64_t line_count;
  bool full;
};

}  // namespace

Status ImprintRangeSelect(const Column& column, const ImprintsIndex& index,
                          double lo, double hi, BitVector* out_rows,
                          ImprintScanStats* stats, ThreadPool* pool) {
  if (index.built_epoch() != column.epoch()) {
    return Status::Internal("stale imprints index (column was modified)");
  }
  const auto scan_start = std::chrono::steady_clock::now();
  out_rows->Resize(column.size());
  ImprintScanStats merged;
  merged.lines_total = index.num_lines();

  const bool want_parallel = pool != nullptr && pool->num_threads() > 0 &&
                             column.size() >= kMinParallelScanRows;

  Status scan_status;
  DispatchDataType(column.type(), [&]<typename T>() {
    // Compare in the column's native type: the bounds are clamped into T
    // once per scan, so large int64 values are never rounded through
    // double. An unsatisfiable clamped range selects nothing.
    NativeRange<T> nr = ClampRangeToType<T>(lo, hi);
    if (nr.empty) return;

    const uint64_t n = column.size();
    const uint64_t vpl = index.values_per_line();

    // Scans the lines [first_line, first_line + line_count) of one run,
    // shared by the serial path and the clipped per-morsel path. Values are
    // reached through ForEachValueRun: resident columns get the contiguous
    // span (exactly the old direct-pointer path), paged columns fault only
    // the chunks their boundary runs overlap — full runs never touch a
    // value, so imprint pruning translates straight into chunks never read.
    // A chunk split restarts the 4096-value stride mid-run, which changes
    // kernel call boundaries but not the selected bits or the stat sums.
    auto scan_lines = [&](uint64_t first_line, uint64_t line_count, bool full,
                          ImprintScanStats& st) -> Status {
      st.lines_candidate += line_count;
      uint64_t first_row = first_line * vpl;
      uint64_t last_row = std::min((first_line + line_count) * vpl, n);
      if (full) {
        st.lines_full += line_count;
        out_rows->SetRange(first_row, last_row);
        st.rows_selected += last_row - first_row;
        st.rows_full += last_row - first_row;
        return Status::OK();
      }
      // Boundary run: the SIMD range kernel turns each chunk of values into
      // selection words on the stack, which land in the BitVector with two
      // ORs per word. Workers stay write-disjoint because morsels cover
      // whole 64-bit words and the chunk never crosses last_row.
      return ForEachValueRun<T>(
          column, first_row, last_row,
          [&](const T* vals, uint64_t first, size_t count) {
            constexpr uint64_t kChunkValues = 4096;
            uint64_t scratch[kChunkValues / 64];
            for (uint64_t off = 0; off < count; off += kChunkValues) {
              const uint64_t cn = std::min<uint64_t>(kChunkValues, count - off);
              const uint64_t sel = simd::RangeSelectBits(vals + off, cn, nr.lo,
                                                         nr.hi, scratch);
              out_rows->OrWordsAt(first + off, scratch, cn);
              st.values_checked += cn;
              st.rows_selected += sel;
            }
          });
    };

    if (!want_parallel) {
      index.FilterRangeRuns(lo, hi,
                            [&](uint64_t first_line, uint64_t line_count,
                                bool full) {
                              if (!scan_status.ok()) return;
                              scan_status =
                                  scan_lines(first_line, line_count, full,
                                             merged);
                            });
      return;
    }

    // Parallel scan: materialise the candidate runs (touches only the
    // compressed imprint stream), then carve the row space into morsels
    // whose boundaries are multiples of lcm(64, values_per_line). Every
    // morsel covers whole cache lines (stats split exactly) and whole
    // 64-bit words (workers write disjoint BitVector words).
    std::vector<CandidateRun> runs;
    index.FilterRangeRuns(lo, hi, [&](uint64_t first_line, uint64_t line_count,
                                      bool full) {
      runs.push_back({first_line, line_count, full});
    });
    if (runs.empty()) return;

    const uint64_t unit = std::lcm<uint64_t>(64, vpl);
    const uint64_t morsel_rows = ((kTargetMorselRows + unit - 1) / unit) * unit;
    const uint64_t num_morsels = (n + morsel_rows - 1) / morsel_rows;
    if (num_morsels < 2) {
      for (const CandidateRun& r : runs) {
        scan_status = scan_lines(r.first_line, r.line_count, r.full, merged);
        if (!scan_status.ok()) return;
      }
      return;
    }

    std::vector<ImprintScanStats> morsel_stats(num_morsels);
    std::vector<Status> morsel_status(num_morsels);
    pool->ParallelFor(num_morsels, [&](size_t m) {
      const uint64_t row_begin = m * morsel_rows;
      const uint64_t row_end = std::min(n, row_begin + morsel_rows);
      const uint64_t line_begin = row_begin / vpl;
      const uint64_t line_end = (row_end + vpl - 1) / vpl;
      ImprintScanStats& st = morsel_stats[m];
      // First run overlapping this morsel; runs are sorted and disjoint.
      auto it = std::partition_point(
          runs.begin(), runs.end(), [&](const CandidateRun& r) {
            return r.first_line + r.line_count <= line_begin;
          });
      for (; it != runs.end() && it->first_line < line_end; ++it) {
        uint64_t lb = std::max(it->first_line, line_begin);
        uint64_t le = std::min(it->first_line + it->line_count, line_end);
        morsel_status[m] = scan_lines(lb, le - lb, it->full, st);
        if (!morsel_status[m].ok()) return;
      }
    });
    for (Status& st : morsel_status) {
      if (!st.ok()) {
        scan_status = std::move(st);
        return;
      }
    }
    for (const ImprintScanStats& st : morsel_stats) {
      merged.lines_candidate += st.lines_candidate;
      merged.lines_full += st.lines_full;
      merged.values_checked += st.values_checked;
      merged.rows_selected += st.rows_selected;
      merged.rows_full += st.rows_full;
    }
    merged.workers = static_cast<uint32_t>(
        std::min<uint64_t>(num_morsels, pool->num_threads() + 1));
  });
  GEOCOL_RETURN_NOT_OK(scan_status);
  // Work counters feed `geocol metrics` exposition and must stay equal to
  // the span attributes EXPLAIN ANALYZE reports (asserted in tests).
  GEOCOL_METRIC_COUNTER(c_scans, "geocol_imprint_scans_total");
  GEOCOL_METRIC_COUNTER(c_lines_total, "geocol_imprint_cachelines_total");
  GEOCOL_METRIC_COUNTER(c_lines_probed, "geocol_imprint_cachelines_probed_total");
  GEOCOL_METRIC_COUNTER(c_lines_full, "geocol_imprint_cachelines_full_total");
  GEOCOL_METRIC_COUNTER(c_values, "geocol_imprint_values_checked_total");
  GEOCOL_METRIC_COUNTER(c_rows, "geocol_imprint_rows_selected_total");
  GEOCOL_METRIC_COUNTER(c_rows_full, "geocol_imprint_rows_full_total");
  GEOCOL_METRIC_HISTOGRAM(h_scan, "geocol_imprint_scan_nanos");
  c_scans.Increment();
  c_lines_total.Increment(merged.lines_total);
  c_lines_probed.Increment(merged.lines_candidate);
  c_lines_full.Increment(merged.lines_full);
  c_values.Increment(merged.values_checked);
  c_rows.Increment(merged.rows_selected);
  c_rows_full.Increment(merged.rows_full);
  h_scan.Observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - scan_start)
                     .count());
  if (stats != nullptr) *stats = merged;
  return Status::OK();
}

Status FullScanRangeSelect(const Column& column, double lo, double hi,
                           BitVector* out_rows) {
  out_rows->Resize(column.size());
  Status status;
  DispatchDataType(column.type(), [&]<typename T>() {
    NativeRange<T> nr = ClampRangeToType<T>(lo, hi);
    if (nr.empty) return;
    // Each run's kernel writes ceil(count/64) selection words straight into
    // the BitVector's word array (tail bits zero). Resident columns are one
    // run; paged runs start on chunk boundaries, which are multiples of 64
    // rows, so every run except the last writes whole words and the word
    // offset `first / 64` is exact.
    status = ForEachValueRun<T>(
        column, 0, column.size(),
        [&](const T* vals, uint64_t first, size_t count) {
          simd::RangeSelectBits(vals, count, nr.lo, nr.hi,
                                out_rows->mutable_words() + first / 64);
        });
  });
  return status;
}

namespace {

/// True when `index` describes exactly the current state of `column`.
bool IndexFresh(const ImprintsIndex* index, const Column& column) {
  return index != nullptr && index->built_epoch() == column.epoch() &&
         index->num_rows() == column.size();
}

}  // namespace

Result<std::shared_ptr<const ImprintsIndex>> ImprintManager::GetOrBuild(
    const ColumnPtr& column) {
  if (column == nullptr) return Status::InvalidArgument("null column");
  GEOCOL_METRIC_COUNTER(c_hits, "geocol_imprint_cache_hits_total");
  GEOCOL_METRIC_COUNTER(c_misses, "geocol_imprint_cache_misses_total");
  GEOCOL_METRIC_COUNTER(c_builds, "geocol_imprint_builds_total");
  GEOCOL_METRIC_HISTOGRAM(h_build, "geocol_imprint_build_nanos");

  std::shared_ptr<const ImprintsIndex> base_index;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      Entry& e = cache_[column.get()];
      if (e.column.expired() && !e.building) {
        // Fresh slot, or a dead column whose heap address was reused (the
        // builder pins its column alive, so building implies not expired).
        e.index.reset();
        e.column = column;
      }
      if (IndexFresh(e.index.get(), *column)) {
        c_hits.Increment();
        return e.index;
      }
      if (!e.building) {
        e.building = true;
        break;
      }
      // Another thread is building this column's index off-lock; park
      // until any build publishes, then re-check. The wait releases mu_,
      // so lookups of other columns proceed unimpeded.
      build_cv_.wait(lock);
    }
    // Incremental path: a fresh cached index of the COW lineage base lets
    // us extend over the appended tail instead of rebuilding.
    if (auto base_col = column->base()) {
      auto it = cache_.find(base_col.get());
      if (it != cache_.end() && IndexFresh(it->second.index.get(), *base_col) &&
          column->base_rows() == base_col->size()) {
        base_index = it->second.index;
      }
    }
    if (cache_.size() >= prune_watermark_) PruneLocked();
  }

  c_misses.Increment();
  const auto build_start = std::chrono::steady_clock::now();
  Result<ImprintsIndex> built = BuildIndex(column, base_index);

  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = cache_[column.get()];
  e.building = false;
  e.column = column;
  build_cv_.notify_all();
  GEOCOL_RETURN_NOT_OK(built.status());
  c_builds.Increment();
  h_build.Observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - build_start)
                      .count());
  auto index = std::make_shared<const ImprintsIndex>(std::move(*built));
  e.index = index;
  return index;
}

Result<ImprintsIndex> ImprintManager::BuildIndex(
    const ColumnPtr& column,
    const std::shared_ptr<const ImprintsIndex>& base_index) {
  const std::string sidecar =
      sidecar_dir_.empty() ? ""
                           : sidecar_dir_ + "/" + column->name() + ".gim";
  if (base_index != nullptr && column->size() > base_index->num_rows()) {
    GEOCOL_METRIC_COUNTER(c_incr, "geocol_imprint_incremental_builds_total");
    GEOCOL_METRIC_COUNTER(c_fallback, "geocol_imprint_stitch_fallbacks_total");
    Result<ImprintsIndex> stitched =
        ImprintsIndex::ExtendAppend(*base_index, *column, pool_);
    bool verified = false;
    if (stitched.ok()) {
      // Probe verification: re-binarise a deterministic sample of lines
      // (biased to the inherited prefix — the tail was just built) and
      // compare against the stitched dictionary. A mismatch means the
      // lineage assumption broke; never serve that index.
      verified = !stitch_fault_.exchange(false);
      if (verified) {
        const uint64_t lines = stitched->num_lines();
        const uint64_t probes = std::min<uint64_t>(lines, 16);
        const BinBounds& bins = stitched->bins();
        const uint32_t vpl = stitched->values_per_line();
        for (uint64_t p = 0; p < probes && verified; ++p) {
          uint64_t line = lines * p / probes;
          uint64_t first = line * vpl;
          uint64_t last =
              std::min<uint64_t>(first + vpl, stitched->num_rows());
          uint64_t v = 0;
          for (uint64_t i = first; i < last; ++i) {
            v |= uint64_t{1} << bins.BinOf(column->GetDouble(i));
          }
          verified = stitched->VectorAtLine(line) == v;
        }
      }
      if (verified) {
        c_incr.Increment();
        if (!sidecar.empty()) {
          Status persisted = WriteImprintsFile(*stitched, sidecar,
                                               ColumnFingerprint(*column));
          if (!persisted.ok()) {
            GEOCOL_LOG(Warning)
                    .With("path", sidecar)
                    .With("error", persisted.ToString())
                << "could not persist stitched imprints sidecar";
          }
        }
        return stitched;
      }
    }
    // Stitch failed (or failed verification): quarantine the sidecar so
    // the rebuild cannot adopt state derived from the bad lineage, then
    // build from scratch.
    c_fallback.Increment();
    GEOCOL_LOG(Warning)
            .With("column", column->name())
            .With("error", stitched.ok() ? std::string("probe mismatch")
                                         : stitched.status().ToString())
        << "incremental imprint stitch rejected; rebuilding from scratch";
    if (!sidecar.empty() && PathExists(sidecar)) {
      Status moved = RenameFile(sidecar, sidecar + ".quarantined");
      if (!moved.ok()) {
        GEOCOL_LOG(Warning)
                .With("path", sidecar)
                .With("error", moved.ToString())
            << "could not quarantine sidecar after stitch failure";
      }
    }
  }
  // Sidecar-backed build reuses a verified on-disk index when fresh and
  // transparently quarantines + rebuilds when corrupt or stale.
  return sidecar.empty()
             ? ImprintsIndex::Build(*column, options_, pool_)
             : LoadOrBuildImprints(*column, sidecar, options_, pool_);
}

void ImprintManager::PruneLocked() {
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (!it->second.building && it->second.column.expired()) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
  prune_watermark_ = std::max<size_t>(8, cache_.size() * 2);
}

uint64_t ImprintManager::TotalStorageBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [col, entry] : cache_) {
    if (entry.index != nullptr) {
      total += entry.index->Storage(0).total_bytes;
    }
  }
  return total;
}

size_t ImprintManager::num_indexes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [col, entry] : cache_) {
    n += entry.index != nullptr ? 1 : 0;
  }
  return n;
}

void ImprintManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // In-flight builds keep their entries (the builder will republish into
  // them); dropping one would strand its waiters' building flag.
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second.building) {
      it->second.index.reset();
      ++it;
    } else {
      it = cache_.erase(it);
    }
  }
}

}  // namespace geocol
