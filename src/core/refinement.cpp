#include "core/refinement.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "geom/predicates.h"
#include "telemetry/metrics.h"
#include "util/thread_pool.h"

namespace geocol {

namespace {

/// Publishes one refinement's work accounting to the metrics registry.
/// Called exactly once per top-level refine (grid, parallel grid, or
/// exhaustive).
void RecordRefineMetrics(const RefinementStats& st) {
  GEOCOL_METRIC_COUNTER(c_refines, "geocol_refines_total");
  GEOCOL_METRIC_COUNTER(c_cand, "geocol_refine_candidates_total");
  GEOCOL_METRIC_COUNTER(c_acc, "geocol_refine_accepted_total");
  GEOCOL_METRIC_COUNTER(c_inside, "geocol_refine_cells_inside_total");
  GEOCOL_METRIC_COUNTER(c_outside, "geocol_refine_cells_outside_total");
  GEOCOL_METRIC_COUNTER(c_boundary, "geocol_refine_cells_boundary_total");
  GEOCOL_METRIC_COUNTER(c_exact, "geocol_refine_exact_tests_total");
  c_refines.Increment();
  c_cand.Increment(st.candidates);
  c_acc.Increment(st.accepted);
  c_inside.Increment(st.cells_inside);
  c_outside.Increment(st.cells_outside);
  c_boundary.Increment(st.cells_boundary);
  c_exact.Increment(st.exact_tests);
}

// Candidate vectors below this size refine serially even with a pool.
constexpr size_t kMinParallelRefineRows = 1 << 17;
// Rows per refinement morsel; multiple of 64 so ranges cover whole words.
constexpr size_t kRefineMorselRows = 1 << 16;
// Candidate rows per SIMD batch: gather + cell assignment + exact tests run
// over blocks this size, keeping the scratch buffers cache-resident.
constexpr size_t kRefineBlockRows = 1024;

inline void ExactTestBatch(const Geometry& g, double buffer, const double* xs,
                           const double* ys, size_t n, uint8_t* out) {
  if (buffer > 0.0) {
    GeometryDWithinBatch(g, buffer, xs, ys, n, out);
  } else {
    GeometryContainsPointBatch(g, xs, ys, n, out);
  }
}

Status CheckInputs(const Column& x, const Column& y,
                   const BitVector& candidates) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("x/y column length mismatch");
  }
  if (candidates.size() != x.size()) {
    return Status::InvalidArgument("candidate vector length mismatch");
  }
  return Status::OK();
}

// Local alias for the sentinel shared with GridCellHook implementations.
constexpr uint8_t kUnclassified = kCellUnclassified;

/// Counts one first-touched cell into the per-query stats.
inline void CountCell(RefinementStats& st, uint8_t cls) {
  ++st.cells_nonempty;
  switch (static_cast<BoxRelation>(cls)) {
    case BoxRelation::kInside: ++st.cells_inside; break;
    case BoxRelation::kOutside: ++st.cells_outside; break;
    case BoxRelation::kBoundary: ++st.cells_boundary; break;
  }
}

/// Fetches and validates a seed table from the hook (nullptr when absent
/// or mis-sized — a stale hook must degrade to a cold refinement, never
/// corrupt one).
std::shared_ptr<const std::vector<uint8_t>> FetchSeed(GridCellHook* hook,
                                                      const RegularGrid& grid) {
  if (hook == nullptr) return nullptr;
  auto seed = hook->Seed(grid.extent(), grid.cols(), grid.rows());
  if (seed != nullptr && seed->size() != grid.num_cells()) return nullptr;
  return seed;
}

// Extent of the gathered candidate coordinates, extended in row order so
// Box::Extend sees exactly the values (and NaN ordering) of the per-row
// scalar walk it replaces. The only Status source is a paged-column chunk
// fault inside the batched gather.
Status GatherExtent(const Column& x, const Column& y, const uint64_t* rows,
                    size_t count, Box* out) {
  Box ext;
  std::vector<double> xs(kRefineBlockRows), ys(kRefineBlockRows);
  for (size_t base = 0; base < count; base += kRefineBlockRows) {
    const size_t bn = std::min(kRefineBlockRows, count - base);
    GEOCOL_RETURN_NOT_OK(x.GetDoubleBatch(rows + base, bn, xs.data()));
    GEOCOL_RETURN_NOT_OK(y.GetDoubleBatch(rows + base, bn, ys.data()));
    for (size_t i = 0; i < bn; ++i) ext.Extend(xs[i], ys[i]);
  }
  *out = ext;
  return Status::OK();
}

enum : uint8_t { kActReject = 0, kActAccept = 1, kActBoundary = 2 };

// The batched classify-and-test loop shared by the serial and parallel grid
// paths. Per block: gather coordinates, assign cells, classify each row's
// cell through `classify_cell` (lazy; serial table or atomic CAS table),
// then run one batched exact test over the boundary-cell rows. Accepted
// rows are emitted in candidate order — identical to the old per-row walk.
template <typename ClassifyFn>
Status RefineRowsBatched(const Column& x, const Column& y,
                         const uint64_t* rows, size_t count,
                         const RegularGrid& grid, const Geometry& geometry,
                         double buffer, ClassifyFn&& classify_cell,
                         std::vector<uint64_t>* out, RefinementStats& st) {
  std::vector<double> xs(kRefineBlockRows), ys(kRefineBlockRows);
  std::vector<uint64_t> cells(kRefineBlockRows);
  std::vector<uint8_t> action(kRefineBlockRows);
  std::vector<double> bxs(kRefineBlockRows), bys(kRefineBlockRows);
  std::vector<uint8_t> verdict(kRefineBlockRows);
  for (size_t base = 0; base < count; base += kRefineBlockRows) {
    const size_t bn = std::min(kRefineBlockRows, count - base);
    GEOCOL_RETURN_NOT_OK(x.GetDoubleBatch(rows + base, bn, xs.data()));
    GEOCOL_RETURN_NOT_OK(y.GetDoubleBatch(rows + base, bn, ys.data()));
    grid.CellOfBatch(xs.data(), ys.data(), bn, cells.data());
    size_t nb = 0;
    for (size_t i = 0; i < bn; ++i) {
      switch (classify_cell(cells[i], st)) {
        case BoxRelation::kInside:
          action[i] = kActAccept;
          break;
        case BoxRelation::kOutside:
          action[i] = kActReject;
          break;
        case BoxRelation::kBoundary:
          action[i] = kActBoundary;
          bxs[nb] = xs[i];
          bys[nb] = ys[i];
          ++nb;
          break;
      }
    }
    if (nb > 0) {
      ExactTestBatch(geometry, buffer, bxs.data(), bys.data(), nb,
                     verdict.data());
    }
    size_t b = 0;
    for (size_t i = 0; i < bn; ++i) {
      if (action[i] == kActAccept) {
        out->push_back(rows[base + i]);
        ++st.accepted;
      } else if (action[i] == kActBoundary) {
        ++st.exact_tests;
        if (verdict[b++] != 0) {
          out->push_back(rows[base + i]);
          ++st.accepted;
        }
      }
    }
  }
  return Status::OK();
}

Status ParallelGridRefine(const Column& x, const Column& y,
                          const BitVector& candidates,
                          const Geometry& geometry, double buffer,
                          const RefineOptions& options, ThreadPool* pool,
                          std::vector<uint64_t>* out_rows,
                          RefinementStats* stats, GridCellHook* cell_hook) {
  RefinementStats local;
  const size_t n = candidates.size();
  const size_t num_morsels = (n + kRefineMorselRows - 1) / kRefineMorselRows;
  local.workers = static_cast<uint32_t>(
      std::min(num_morsels, pool->num_threads() + 1));

  // Pass 1 (parallel): per-morsel candidate row lists and extents. The
  // popcount pre-pass sizes each list exactly, so collection never
  // reallocates mid-scan.
  std::vector<std::vector<uint64_t>> morsel_rows(num_morsels);
  std::vector<Box> morsel_extent(num_morsels);
  std::vector<Status> morsel_status(num_morsels);
  pool->ParallelFor(num_morsels, [&](size_t m) {
    size_t begin = m * kRefineMorselRows;
    size_t end = std::min(n, begin + kRefineMorselRows);
    std::vector<uint64_t>& rows = morsel_rows[m];
    rows.reserve(candidates.CountInRange(begin, end));
    candidates.CollectSetBitsInRange(begin, end, &rows);
    morsel_status[m] =
        GatherExtent(x, y, rows.data(), rows.size(), &morsel_extent[m]);
  });
  for (Status& st : morsel_status) GEOCOL_RETURN_NOT_OK(std::move(st));
  Box extent;
  for (const Box& b : morsel_extent) extent.Extend(b);
  for (const auto& rows : morsel_rows) local.candidates += rows.size();
  if (local.candidates == 0) {
    RecordRefineMetrics(local);
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }

  RegularGrid grid = RegularGrid::ForExpectedPoints(
      extent, local.candidates, options.target_points_per_cell,
      options.max_cells_per_axis);
  local.cells_total = grid.num_cells();
  local.grid_cols = grid.cols();
  local.grid_rows = grid.rows();

  // Pass 2 (parallel): classify-and-test. Cell classifications are shared
  // through an atomic table; ClassifyCell is deterministic, so the only
  // race is which worker publishes first — the CAS winner also counts the
  // cell in its stats, keeping per-cell counters exact. With a cache seed
  // the winner-counts rule breaks down (seeded cells are never CASed), so
  // counting moves to a per-query `counted` table claimed by exchange —
  // still one unique counter per cell, still equal to the serial stats.
  auto seed = FetchSeed(cell_hook, grid);
  const bool seeded = seed != nullptr;
  std::unique_ptr<std::atomic<uint8_t>[]> cell_class(
      new std::atomic<uint8_t>[grid.num_cells()]);
  for (uint64_t c = 0; c < grid.num_cells(); ++c) {
    cell_class[c].store(seeded ? (*seed)[c] : kUnclassified,
                        std::memory_order_relaxed);
  }
  std::unique_ptr<std::atomic<uint8_t>[]> counted;
  if (seeded) {
    counted.reset(new std::atomic<uint8_t>[grid.num_cells()]);
    for (uint64_t c = 0; c < grid.num_cells(); ++c) {
      counted[c].store(0, std::memory_order_relaxed);
    }
  }
  std::atomic<bool> computed_new{false};
  auto classify = [&](uint64_t cell, RefinementStats& st) -> BoxRelation {
    uint8_t cls = cell_class[cell].load(std::memory_order_acquire);
    bool won_cas = false;
    if (cls == kUnclassified) {
      uint8_t computed =
          static_cast<uint8_t>(grid.ClassifyCell(cell, geometry, buffer));
      uint8_t expected = kUnclassified;
      if (cell_class[cell].compare_exchange_strong(
              expected, computed, std::memory_order_acq_rel)) {
        cls = computed;
        won_cas = true;
        computed_new.store(true, std::memory_order_relaxed);
      } else {
        cls = expected;  // another worker published first
      }
    }
    if (seeded ? counted[cell].exchange(1, std::memory_order_relaxed) == 0
               : won_cas) {
      CountCell(st, cls);
    }
    return static_cast<BoxRelation>(cls);
  };

  std::vector<std::vector<uint64_t>> morsel_out(num_morsels);
  std::vector<RefinementStats> morsel_stats(num_morsels);
  pool->ParallelFor(num_morsels, [&](size_t m) {
    morsel_status[m] =
        RefineRowsBatched(x, y, morsel_rows[m].data(), morsel_rows[m].size(),
                          grid, geometry, buffer, classify, &morsel_out[m],
                          morsel_stats[m]);
  });
  for (Status& st : morsel_status) GEOCOL_RETURN_NOT_OK(std::move(st));

  for (size_t m = 0; m < num_morsels; ++m) {
    const RefinementStats& st = morsel_stats[m];
    local.accepted += st.accepted;
    local.cells_nonempty += st.cells_nonempty;
    local.cells_inside += st.cells_inside;
    local.cells_outside += st.cells_outside;
    local.cells_boundary += st.cells_boundary;
    local.exact_tests += st.exact_tests;
    out_rows->insert(out_rows->end(), morsel_out[m].begin(),
                     morsel_out[m].end());
  }
  if (cell_hook != nullptr && computed_new.load(std::memory_order_relaxed)) {
    std::vector<uint8_t> table(grid.num_cells());
    for (uint64_t c = 0; c < grid.num_cells(); ++c) {
      table[c] = cell_class[c].load(std::memory_order_relaxed);
    }
    cell_hook->Publish(grid.extent(), grid.cols(), grid.rows(),
                       std::move(table));
  }
  RecordRefineMetrics(local);
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace

Status GridRefine(const Column& x, const Column& y, const BitVector& candidates,
                  const Geometry& geometry, double buffer,
                  const RefineOptions& options, std::vector<uint64_t>* out_rows,
                  RefinementStats* stats, ThreadPool* pool,
                  GridCellHook* cell_hook) {
  GEOCOL_RETURN_NOT_OK(CheckInputs(x, y, candidates));
  if (!options.use_grid) {
    return ExhaustiveRefine(x, y, candidates, geometry, buffer, out_rows,
                            stats);
  }
  if (pool != nullptr && pool->num_threads() > 0 &&
      candidates.size() >= kMinParallelRefineRows) {
    return ParallelGridRefine(x, y, candidates, geometry, buffer, options,
                              pool, out_rows, stats, cell_hook);
  }
  RefinementStats local;

  // Pass 1: collect candidate rows and their extent. The grid only needs to
  // cover the filtered superset, which is already close to the query
  // envelope thanks to the imprint filter. Count() pre-sizes the row list
  // so collection never reallocates.
  std::vector<uint64_t> cand_rows;
  cand_rows.reserve(candidates.Count());
  candidates.CollectSetBits(&cand_rows);
  Box extent;
  GEOCOL_RETURN_NOT_OK(
      GatherExtent(x, y, cand_rows.data(), cand_rows.size(), &extent));
  local.candidates = cand_rows.size();
  if (cand_rows.empty()) {
    RecordRefineMetrics(local);
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }

  RegularGrid grid = RegularGrid::ForExpectedPoints(
      extent, cand_rows.size(), options.target_points_per_cell,
      options.max_cells_per_axis);
  local.cells_total = grid.num_cells();
  local.grid_cols = grid.cols();
  local.grid_rows = grid.rows();

  // Pass 2: classify cells lazily — only cells that actually hold
  // candidates are ever evaluated against the geometry (§3.3: "the spatial
  // relation is then evaluated between each non-empty cell and G"). A
  // cache seed pre-fills classifications from earlier queries over the
  // same grid; seeded cells skip the geometry evaluation but still count
  // into the stats on first touch, so seeded and cold stats are equal.
  auto seed = FetchSeed(cell_hook, grid);
  const bool seeded = seed != nullptr;
  std::vector<uint8_t> cell_class =
      seeded ? *seed : std::vector<uint8_t>(grid.num_cells(), kUnclassified);
  std::vector<uint8_t> counted;
  if (seeded) counted.assign(grid.num_cells(), 0);
  bool computed_new = false;
  auto classify = [&](uint64_t cell, RefinementStats& st) -> BoxRelation {
    uint8_t& cls = cell_class[cell];
    if (cls == kUnclassified) {
      cls = static_cast<uint8_t>(grid.ClassifyCell(cell, geometry, buffer));
      computed_new = true;
      if (!seeded) CountCell(st, cls);
    }
    if (seeded && counted[cell] == 0) {
      counted[cell] = 1;
      CountCell(st, cls);
    }
    return static_cast<BoxRelation>(cls);
  };
  GEOCOL_RETURN_NOT_OK(RefineRowsBatched(x, y, cand_rows.data(),
                                         cand_rows.size(), grid, geometry,
                                         buffer, classify, out_rows, local));
  if (cell_hook != nullptr && computed_new) {
    cell_hook->Publish(grid.extent(), grid.cols(), grid.rows(),
                       std::move(cell_class));
  }
  RecordRefineMetrics(local);
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status ExhaustiveRefine(const Column& x, const Column& y,
                        const BitVector& candidates, const Geometry& geometry,
                        double buffer, std::vector<uint64_t>* out_rows,
                        RefinementStats* stats) {
  GEOCOL_RETURN_NOT_OK(CheckInputs(x, y, candidates));
  RefinementStats local;
  std::vector<uint64_t> cand_rows;
  cand_rows.reserve(candidates.Count());
  candidates.CollectSetBits(&cand_rows);
  local.candidates = cand_rows.size();
  local.exact_tests = cand_rows.size();
  std::vector<double> xs(kRefineBlockRows), ys(kRefineBlockRows);
  std::vector<uint8_t> verdict(kRefineBlockRows);
  for (size_t base = 0; base < cand_rows.size(); base += kRefineBlockRows) {
    const size_t bn = std::min(kRefineBlockRows, cand_rows.size() - base);
    GEOCOL_RETURN_NOT_OK(
        x.GetDoubleBatch(cand_rows.data() + base, bn, xs.data()));
    GEOCOL_RETURN_NOT_OK(
        y.GetDoubleBatch(cand_rows.data() + base, bn, ys.data()));
    ExactTestBatch(geometry, buffer, xs.data(), ys.data(), bn, verdict.data());
    for (size_t i = 0; i < bn; ++i) {
      if (verdict[i] != 0) {
        out_rows->push_back(cand_rows[base + i]);
        ++local.accepted;
      }
    }
  }
  RecordRefineMetrics(local);
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace geocol
