#include "core/imprints_io.h"

#include <cmath>
#include <cstring>

#include "util/binary_io.h"

namespace geocol {

namespace {
constexpr char kImprintsMagic[4] = {'G', 'I', 'M', '1'};
}  // namespace

Status WriteImprintsFile(const ImprintsIndex& index, const std::string& path) {
  BinaryWriter w;
  GEOCOL_RETURN_NOT_OK(w.Open(path));
  GEOCOL_RETURN_NOT_OK(w.WriteBytes(kImprintsMagic, 4));
  GEOCOL_RETURN_NOT_OK(w.WriteScalar<uint64_t>(index.built_epoch()));
  GEOCOL_RETURN_NOT_OK(w.WriteScalar<uint64_t>(index.num_rows()));
  GEOCOL_RETURN_NOT_OK(w.WriteScalar<uint32_t>(index.values_per_line()));
  GEOCOL_RETURN_NOT_OK(w.WriteScalar<uint32_t>(index.num_bins()));
  for (uint32_t b = 0; b < index.num_bins(); ++b) {
    GEOCOL_RETURN_NOT_OK(w.WriteScalar<double>(index.bins().upper(b)));
  }
  const auto& dict = index.dictionary();
  GEOCOL_RETURN_NOT_OK(w.WriteScalar<uint64_t>(dict.size()));
  for (const auto& e : dict) {
    // Packed: low 31 bits count, top bit repeat.
    uint32_t packed = e.count | (e.repeat ? 0x80000000u : 0u);
    GEOCOL_RETURN_NOT_OK(w.WriteScalar<uint32_t>(packed));
  }
  GEOCOL_RETURN_NOT_OK(w.WriteScalar<uint64_t>(index.vectors().size()));
  GEOCOL_RETURN_NOT_OK(w.WriteVector(index.vectors()));
  return w.Close();
}

Result<ImprintsIndex> ReadImprintsFile(const std::string& path) {
  BinaryReader r;
  GEOCOL_RETURN_NOT_OK(r.Open(path));
  char magic[4];
  GEOCOL_RETURN_NOT_OK(r.ReadBytes(magic, 4));
  if (std::memcmp(magic, kImprintsMagic, 4) != 0) {
    return Status::Corruption("bad imprints file magic: " + path);
  }
  uint64_t epoch = 0, rows = 0;
  uint32_t values_per_line = 0, num_bins = 0;
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&epoch));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&rows));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&values_per_line));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&num_bins));
  if (num_bins < 2 || num_bins > 64) {
    return Status::Corruption("imprints file: bad bin count");
  }
  std::vector<double> bounds(num_bins);
  for (auto& b : bounds) GEOCOL_RETURN_NOT_OK(r.ReadScalar(&b));
  GEOCOL_ASSIGN_OR_RETURN(BinBounds bins, BinBounds::FromRawUppers(bounds));

  uint64_t dict_size = 0;
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&dict_size));
  if (dict_size > (uint64_t{1} << 40)) {
    return Status::Corruption("imprints file: implausible dictionary size");
  }
  std::vector<ImprintsIndex::DictEntry> dict(dict_size);
  for (auto& e : dict) {
    uint32_t packed = 0;
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&packed));
    e.count = packed & 0x7FFFFFFFu;
    e.repeat = (packed & 0x80000000u) != 0;
  }
  uint64_t num_vectors = 0;
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&num_vectors));
  if (num_vectors > (uint64_t{1} << 40)) {
    return Status::Corruption("imprints file: implausible vector count");
  }
  std::vector<uint64_t> vectors;
  GEOCOL_RETURN_NOT_OK(r.ReadVector(&vectors, num_vectors));
  return ImprintsIndex::Restore(bins, values_per_line, rows, epoch,
                                std::move(vectors), std::move(dict));
}

Result<ImprintsIndex> LoadOrBuildImprints(const Column& column,
                                          const std::string& path,
                                          const ImprintsOptions& options) {
  if (PathExists(path)) {
    Result<ImprintsIndex> loaded = ReadImprintsFile(path);
    if (loaded.ok() && loaded->built_epoch() == column.epoch() &&
        loaded->num_rows() == column.size()) {
      return loaded;
    }
    // Stale or corrupt sidecar: fall through to a rebuild.
  }
  GEOCOL_ASSIGN_OR_RETURN(ImprintsIndex built,
                          ImprintsIndex::Build(column, options));
  GEOCOL_RETURN_NOT_OK(WriteImprintsFile(built, path));
  return built;
}

}  // namespace geocol
