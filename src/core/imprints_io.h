// Disk persistence for column imprints. MonetDB keeps imprints alongside
// the BAT heaps so a restarted server does not pay the rebuild; we mirror
// that with a compact sidecar file per column:
//   magic "GIM2" | column fingerprint u32 | epoch | rows |
//   values_per_line | num_bins | bounds[num_bins] | dict entries |
//   vectors | crc32c footer.
//
// The sidecar is pure cache: it is written atomically, verified against
// its CRC32C footer and against the live column (payload fingerprint,
// epoch, row count) on load, and a corrupt or stale file is quarantined
// and rebuilt — never trusted, never fatal to the query. The fingerprint
// ties the sidecar to the column's actual bytes, so two engines sharing
// an imprints dir can never adopt an index built for a same-named,
// same-sized column of a different table. Legacy "GIM1" files (no footer,
// no fingerprint) still parse via ReadImprintsFile but are rebuilt by
// LoadOrBuildImprints.
#ifndef GEOCOL_CORE_IMPRINTS_IO_H_
#define GEOCOL_CORE_IMPRINTS_IO_H_

#include <string>

#include "core/imprints.h"
#include "util/status.h"

namespace geocol {

class ThreadPool;

/// CRC32C over the column's type byte and raw payload — the identity that
/// ties a sidecar to the exact column bytes it was built from.
uint32_t ColumnFingerprint(const Column& column);

/// File-level sidecar metadata that is not part of the index itself.
struct ImprintsFileMeta {
  bool has_fingerprint = false;  ///< false for legacy GIM1 sidecars
  uint32_t column_fingerprint = 0;
};

/// Writes `index` to `path` atomically with a CRC32C footer, stamped with
/// `column_fingerprint` (pass `ColumnFingerprint(column)`).
Status WriteImprintsFile(const ImprintsIndex& index, const std::string& path,
                         uint32_t column_fingerprint = 0);

/// Reads and checksum-verifies an imprints file. The caller is responsible
/// for checking `built_epoch()` and the fingerprint in `meta` against the
/// live column before trusting the index.
Result<ImprintsIndex> ReadImprintsFile(const std::string& path,
                                       ImprintsFileMeta* meta = nullptr);

/// Loads the sidecar if it exists, verifies, and matches the column's
/// fingerprint, epoch and row count, else builds fresh (on `pool` when
/// given) and rewrites the sidecar. Degradation is graceful and logged:
///   - corrupt/unreadable sidecar -> quarantined to `path + ".quarantined"`
///     and rebuilt;
///   - stale sidecar (fingerprint, epoch or row-count mismatch, or a
///     legacy GIM1 file with no fingerprint) -> rebuilt, overwritten;
///   - failure to persist the rebuilt sidecar -> logged, the fresh index
///     is still returned.
/// The only error path is the build itself failing.
Result<ImprintsIndex> LoadOrBuildImprints(const Column& column,
                                          const std::string& path,
                                          const ImprintsOptions& options = {},
                                          ThreadPool* pool = nullptr);

}  // namespace geocol

#endif  // GEOCOL_CORE_IMPRINTS_IO_H_
