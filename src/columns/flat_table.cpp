#include "columns/flat_table.h"

#include <atomic>

namespace geocol {

uint64_t FlatTable::NextTableId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, static_cast<int>(i));
  }
}

int Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

bool Schema::operator==(const Schema& o) const {
  if (fields_.size() != o.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != o.fields_[i].name ||
        fields_[i].type != o.fields_[i].type) {
      return false;
    }
  }
  return true;
}

FlatTable::FlatTable(std::string name, const Schema& schema)
    : name_(std::move(name)) {
  for (const Field& f : schema.fields()) {
    Status st = AddColumn(std::make_shared<Column>(f.name, f.type));
    (void)st;  // cannot fail: all columns empty
  }
}

Status FlatTable::AddColumn(ColumnPtr column) {
  if (column == nullptr) return Status::InvalidArgument("null column");
  if (by_name_.count(column->name()) != 0) {
    return Status::AlreadyExists("column '" + column->name() + "' exists");
  }
  if (!columns_.empty() && column->size() != columns_[0]->size()) {
    return Status::InvalidArgument(
        "column '" + column->name() + "' length " +
        std::to_string(column->size()) + " != table rows " +
        std::to_string(columns_[0]->size()));
  }
  by_name_.emplace(column->name(), columns_.size());
  columns_.push_back(std::move(column));
  return Status::OK();
}

ColumnPtr FlatTable::column(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : columns_[it->second];
}

Result<ColumnPtr> FlatTable::GetColumn(const std::string& name) const {
  ColumnPtr col = column(name);
  if (col == nullptr) {
    return Status::NotFound("no column '" + name + "' in table '" + name_ +
                            "'");
  }
  return col;
}

Schema FlatTable::schema() const {
  std::vector<Field> fields;
  fields.reserve(columns_.size());
  for (const auto& c : columns_) fields.push_back({c->name(), c->type()});
  return Schema(std::move(fields));
}

uint64_t FlatTable::DataBytes() const {
  uint64_t total = 0;
  for (const auto& c : columns_) total += c->raw_size_bytes();
  return total;
}

Status FlatTable::PermuteRows(const std::vector<uint64_t>& perm) {
  if (perm.size() != num_rows()) {
    return Status::InvalidArgument("permutation size != row count");
  }
  for (const auto& col : columns_) {
    if (col->paged()) {
      return Status::InvalidArgument(
          "cannot permute paged column '" + col->name() +
          "': paged columns are immutable on-disk snapshots");
    }
  }
  for (const auto& col : columns_) {
    size_t w = col->width();
    std::vector<uint8_t> old_data(col->raw_data(),
                                  col->raw_data() + col->raw_size_bytes());
    uint8_t* dst = col->BeginRawUpdate();
    for (size_t r = 0; r < perm.size(); ++r) {
      if (perm[r] >= perm.size()) {
        return Status::InvalidArgument("permutation index out of range");
      }
      std::memcpy(dst + r * w, old_data.data() + perm[r] * w, w);
    }
  }
  return Status::OK();
}

Status FlatTable::Validate() const {
  for (const auto& c : columns_) {
    if (c->size() != columns_[0]->size()) {
      return Status::Corruption("ragged table: column '" + c->name() + "'");
    }
  }
  return Status::OK();
}

}  // namespace geocol
