#include "util/thread_pool.h"

#include <atomic>

namespace geocol {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunk to avoid one task per tiny index.
  size_t chunks = std::min(n, workers_.size() * 4);
  std::atomic<size_t> next{0};
  for (size_t c = 0; c < chunks; ++c) {
    Submit([&next, n, &fn] {
      size_t i;
      while ((i = next.fetch_add(1)) < n) fn(i);
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace geocol
