// The planner: resolves the FROM target against the catalog, validates
// referenced columns, and normalises the WHERE clause into the engine's
// native inputs (one spatial predicate + conjunctive attribute ranges).
#ifndef GEOCOL_SQL_PLANNER_H_
#define GEOCOL_SQL_PLANNER_H_

#include <memory>
#include <string>

#include "gis/catalog.h"
#include "sql/ast.h"
#include "util/status.h"

namespace geocol {
namespace sql {

/// A validated, normalised query ready for execution.
struct PlannedQuery {
  enum class Target { kPointCloud, kLayer };
  Target target = Target::kPointCloud;
  SelectStmt stmt;

  // Point-cloud target. Exactly one of `engine` (flat table) or `router`
  // (Hilbert-sharded table, scatter-gather execution) is set.
  SpatialQueryEngine* engine = nullptr;  ///< owned by the catalog
  ShardRouter* router = nullptr;         ///< owned by the catalog

  /// Live-table statement pin: when the FROM target is a live point
  /// cloud, the plan pins its current epoch snapshot here and `engine`
  /// points into it — the statement reads one epoch end to end even while
  /// appender commits publish, and the snapshot's columns stay alive
  /// until the plan is dropped.
  std::shared_ptr<SpatialQueryEngine> engine_owner;

  // Layer target.
  std::shared_ptr<VectorLayer> layer;

  // Normalised spatial predicate (point-cloud and layer targets).
  bool has_geometry = false;
  Geometry geometry;
  double buffer = 0.0;

  // NEAR(layer, class, d) join.
  bool near = false;
  std::shared_ptr<VectorLayer> near_layer;
  uint32_t near_class = 0;
  double near_distance = 0.0;

  // Merged attribute ranges (one entry per column).
  std::vector<AttributeRange> thematic;

  /// Human-readable plan (EXPLAIN output).
  std::string Describe() const;
};

/// Plans `stmt` against `catalog`.
Result<PlannedQuery> PlanQuery(Catalog* catalog, SelectStmt stmt);

/// Pseudo-columns exposed by vector layers.
bool IsLayerColumn(const std::string& name);

}  // namespace sql
}  // namespace geocol

#endif  // GEOCOL_SQL_PLANNER_H_
