// Executes planned queries, producing tabular result sets and per-operator
// profiles (the demo's "execution time spent in each operator", §4.2).
#ifndef GEOCOL_SQL_EXECUTOR_H_
#define GEOCOL_SQL_EXECUTOR_H_

#include <string>
#include <vector>

#include "core/profile.h"
#include "sql/planner.h"
#include "util/status.h"

namespace geocol {
namespace sql {

/// A dynamically typed result cell.
struct Value {
  enum class Kind { kNull, kNumber, kText };
  Kind kind = Kind::kNull;
  double number = 0.0;
  std::string text;

  static Value Null() { return Value(); }
  static Value Num(double v) {
    Value val;
    val.kind = Kind::kNumber;
    val.number = v;
    return val;
  }
  static Value Text(std::string s) {
    Value val;
    val.kind = Kind::kText;
    val.text = std::move(s);
    return val;
  }

  std::string ToString() const;
  bool operator==(const Value& o) const;
};

/// Column-named rows plus the execution profile.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;
  QueryProfile profile;

  size_t num_rows() const { return rows.size(); }

  /// Pretty table rendering (up to `max_rows` rows).
  std::string ToString(size_t max_rows = 20) const;
};

/// Runs a planned query.
Result<ResultSet> ExecuteQuery(const PlannedQuery& plan);

/// Runs a flat point-cloud plan whose selection was already computed
/// elsewhere (the server's shared-scan batching fan-out): skips the
/// engine Select and renders aggregation / ORDER BY / LIMIT / projection
/// over `rows` exactly like ExecuteQuery would over the same row set, so
/// the result is bit-identical by construction. `rows` must be ascending
/// row ids into the plan's engine table; `profile` carries the caller's
/// selection-phase spans and becomes the base of the result profile.
/// The caller guarantees a plain query: flat kPointCloud target, no
/// NEAR, not EXPLAIN [ANALYZE].
Result<ResultSet> ExecutePointCloudWithRows(const PlannedQuery& plan,
                                            std::vector<uint64_t> rows,
                                            QueryProfile profile);

/// CRC32C of a canonical byte image of `rs` (column names, row count,
/// every cell's kind plus its exact double bits or text). Bit-identical
/// executions — the engine's contract across threads/SIMD/sharding —
/// produce equal digests; the flight recorder stores this per query and
/// `geocol replay` diffs against it.
uint32_t ResultSetDigest(const ResultSet& rs);

}  // namespace sql
}  // namespace geocol

#endif  // GEOCOL_SQL_EXECUTOR_H_
