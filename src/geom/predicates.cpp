#include "geom/predicates.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <vector>

#include "simd/kernels.h"

namespace geocol {

double Orient2D(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

bool PointOnSegment(const Point& p, const Point& a, const Point& b) {
  if (Orient2D(a, b, p) != 0.0) return false;
  return p.x >= std::min(a.x, b.x) && p.x <= std::max(a.x, b.x) &&
         p.y >= std::min(a.y, b.y) && p.y <= std::max(a.y, b.y);
}

bool SegmentsIntersect(const Point& a, const Point& b, const Point& c,
                       const Point& d) {
  double d1 = Orient2D(c, d, a);
  double d2 = Orient2D(c, d, b);
  double d3 = Orient2D(a, b, c);
  double d4 = Orient2D(a, b, d);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && PointOnSegment(a, c, d)) return true;
  if (d2 == 0 && PointOnSegment(b, c, d)) return true;
  if (d3 == 0 && PointOnSegment(c, a, b)) return true;
  if (d4 == 0 && PointOnSegment(d, a, b)) return true;
  return false;
}

double DistanceSquared(const Point& a, const Point& b) {
  double dx = a.x - b.x, dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double PointSegmentDistanceSquared(const Point& p, const Point& a,
                                   const Point& b) {
  double abx = b.x - a.x, aby = b.y - a.y;
  double len2 = abx * abx + aby * aby;
  if (len2 == 0.0) return DistanceSquared(p, a);
  double t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len2;
  t = std::clamp(t, 0.0, 1.0);
  Point proj{a.x + t * abx, a.y + t * aby};
  return DistanceSquared(p, proj);
}

bool PointInRing(const Point& p, const Ring& ring) {
  size_t n = ring.points.size();
  if (n < 3) return false;
  bool inside = false;
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = ring.points[i];
    const Point& b = ring.points[j];
    if (PointOnSegment(p, a, b)) return true;  // boundary counts as inside
    if ((a.y > p.y) != (b.y > p.y)) {
      double x_cross = (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x;
      if (p.x < x_cross) inside = !inside;
    }
  }
  return inside;
}

bool PointInPolygon(const Point& p, const Polygon& poly) {
  if (!PointInRing(p, poly.shell)) return false;
  for (const Ring& h : poly.holes) {
    // Points exactly on a hole boundary remain part of the polygon.
    if (PointInRing(p, h)) {
      bool on_hole_boundary = false;
      size_t n = h.points.size();
      for (size_t i = 0, j = n - 1; i < n && !on_hole_boundary; j = i++) {
        on_hole_boundary = PointOnSegment(p, h.points[i], h.points[j]);
      }
      if (!on_hole_boundary) return false;
    }
  }
  return true;
}

bool PointInMultiPolygon(const Point& p, const MultiPolygon& mp) {
  for (const Polygon& poly : mp.polygons) {
    if (PointInPolygon(p, poly)) return true;
  }
  return false;
}

bool GeometryContainsPoint(const Geometry& g, const Point& p) {
  switch (g.type()) {
    case GeometryType::kPoint:
      return g.point() == p;
    case GeometryType::kBox:
      return g.box().Contains(p);
    case GeometryType::kLineString: {
      const auto& pts = g.line().points;
      for (size_t i = 1; i < pts.size(); ++i) {
        if (PointOnSegment(p, pts[i - 1], pts[i])) return true;
      }
      return false;
    }
    case GeometryType::kPolygon:
      return PointInPolygon(p, g.polygon());
    case GeometryType::kMultiPolygon:
      return PointInMultiPolygon(p, g.multipolygon());
  }
  return false;
}

double PointLineDistance(const Point& p, const LineString& line) {
  const auto& pts = line.points;
  if (pts.empty()) return std::numeric_limits<double>::infinity();
  if (pts.size() == 1) return std::sqrt(DistanceSquared(p, pts[0]));
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 1; i < pts.size(); ++i) {
    best = std::min(best, PointSegmentDistanceSquared(p, pts[i - 1], pts[i]));
  }
  return std::sqrt(best);
}

namespace {
double PointRingBoundaryDistanceSquared(const Point& p, const Ring& ring) {
  double best = std::numeric_limits<double>::infinity();
  size_t n = ring.points.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    best = std::min(best,
                    PointSegmentDistanceSquared(p, ring.points[i], ring.points[j]));
  }
  return best;
}
}  // namespace

double PointPolygonDistance(const Point& p, const Polygon& poly) {
  if (PointInPolygon(p, poly)) return 0.0;
  double best = PointRingBoundaryDistanceSquared(p, poly.shell);
  for (const Ring& h : poly.holes) {
    best = std::min(best, PointRingBoundaryDistanceSquared(p, h));
  }
  return std::sqrt(best);
}

double GeometryPointDistance(const Geometry& g, const Point& p) {
  switch (g.type()) {
    case GeometryType::kPoint:
      return std::sqrt(DistanceSquared(g.point(), p));
    case GeometryType::kBox: {
      const Box& b = g.box();
      double dx = std::max({b.min_x - p.x, 0.0, p.x - b.max_x});
      double dy = std::max({b.min_y - p.y, 0.0, p.y - b.max_y});
      return std::sqrt(dx * dx + dy * dy);
    }
    case GeometryType::kLineString:
      return PointLineDistance(p, g.line());
    case GeometryType::kPolygon:
      return PointPolygonDistance(p, g.polygon());
    case GeometryType::kMultiPolygon: {
      double best = std::numeric_limits<double>::infinity();
      for (const Polygon& poly : g.multipolygon().polygons) {
        best = std::min(best, PointPolygonDistance(p, poly));
        if (best == 0.0) break;
      }
      return best;
    }
  }
  return std::numeric_limits<double>::infinity();
}

bool GeometryDWithin(const Geometry& g, const Point& p, double d) {
  Box env = g.Envelope().Expanded(d);
  if (!env.Contains(p)) return false;
  return GeometryPointDistance(g, p) <= d;
}

// ---- batched predicates -------------------------------------------------

void PointInPolygonBatch(const double* xs, const double* ys, size_t n,
                         const Polygon& poly, uint8_t* out) {
  const simd::KernelTable& k = simd::Kernels();
  std::vector<uint8_t> edge(n);  // shell boundary mask, not needed further
  k.ring_masks(xs, ys, n, poly.shell.points.data(), poly.shell.points.size(),
               out, edge.data());
  if (poly.holes.empty()) return;
  std::vector<uint8_t> hole_in(n);
  for (const Ring& h : poly.holes) {
    k.ring_masks(xs, ys, n, h.points.data(), h.points.size(), hole_in.data(),
                 edge.data());
    // A point is cut out by the hole only when strictly interior to it;
    // hole-boundary points stay in the polygon (same as PointInPolygon).
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(out[i] & ~(hole_in[i] & ~edge[i]) & 1);
    }
  }
}

void GeometryContainsPointBatch(const Geometry& g, const double* xs,
                                const double* ys, size_t n, uint8_t* out) {
  const simd::KernelTable& k = simd::Kernels();
  switch (g.type()) {
    case GeometryType::kPoint: {
      const Point q = g.point();
      for (size_t i = 0; i < n; ++i) {
        out[i] = static_cast<uint8_t>(q == Point{xs[i], ys[i]});
      }
      return;
    }
    case GeometryType::kBox:
      k.box_contains(xs, ys, n, g.box(), out);
      return;
    case GeometryType::kLineString:
      k.on_segments(xs, ys, n, g.line().points.data(), g.line().points.size(),
                    out);
      return;
    case GeometryType::kPolygon:
      PointInPolygonBatch(xs, ys, n, g.polygon(), out);
      return;
    case GeometryType::kMultiPolygon: {
      std::memset(out, 0, n);
      std::vector<uint8_t> tmp(n);
      for (const Polygon& poly : g.multipolygon().polygons) {
        PointInPolygonBatch(xs, ys, n, poly, tmp.data());
        for (size_t i = 0; i < n; ++i) out[i] |= tmp[i];
      }
      return;
    }
  }
  std::memset(out, 0, n);
}

namespace {

// best[i] = min(best[i], distance²(point i, boundary of poly)), walking the
// rings in the same order as PointPolygonDistance.
void PolygonBoundaryDist2Batch(const double* xs, const double* ys, size_t n,
                               const Polygon& poly, double* best) {
  const simd::KernelTable& k = simd::Kernels();
  k.segments_dist2(xs, ys, n, poly.shell.points.data(),
                   poly.shell.points.size(), /*closed=*/true, best);
  for (const Ring& h : poly.holes) {
    k.segments_dist2(xs, ys, n, h.points.data(), h.points.size(),
                     /*closed=*/true, best);
  }
}

void PointPolygonDistanceBatch(const double* xs, const double* ys, size_t n,
                               const Polygon& poly, double* out) {
  std::vector<uint8_t> inside(n);
  PointInPolygonBatch(xs, ys, n, poly, inside.data());
  std::vector<double> best(n, std::numeric_limits<double>::infinity());
  PolygonBoundaryDist2Batch(xs, ys, n, poly, best.data());
  for (size_t i = 0; i < n; ++i) {
    out[i] = inside[i] != 0 ? 0.0 : std::sqrt(best[i]);
  }
}

}  // namespace

void GeometryPointDistanceBatch(const Geometry& g, const double* xs,
                                const double* ys, size_t n, double* out) {
  const simd::KernelTable& k = simd::Kernels();
  switch (g.type()) {
    case GeometryType::kPoint:
    case GeometryType::kBox:
      // Two subtractions per point: the scalar path is already minimal.
      for (size_t i = 0; i < n; ++i) {
        out[i] = GeometryPointDistance(g, Point{xs[i], ys[i]});
      }
      return;
    case GeometryType::kLineString: {
      const auto& pts = g.line().points;
      if (pts.empty()) {
        std::fill(out, out + n, std::numeric_limits<double>::infinity());
        return;
      }
      if (pts.size() == 1) {
        for (size_t i = 0; i < n; ++i) {
          out[i] = std::sqrt(DistanceSquared(Point{xs[i], ys[i]}, pts[0]));
        }
        return;
      }
      std::vector<double> best(n, std::numeric_limits<double>::infinity());
      k.segments_dist2(xs, ys, n, pts.data(), pts.size(), /*closed=*/false,
                       best.data());
      for (size_t i = 0; i < n; ++i) out[i] = std::sqrt(best[i]);
      return;
    }
    case GeometryType::kPolygon:
      PointPolygonDistanceBatch(xs, ys, n, g.polygon(), out);
      return;
    case GeometryType::kMultiPolygon: {
      std::fill(out, out + n, std::numeric_limits<double>::infinity());
      std::vector<double> tmp(n);
      for (const Polygon& poly : g.multipolygon().polygons) {
        PointPolygonDistanceBatch(xs, ys, n, poly, tmp.data());
        // std::min(out, tmp): distances are never NaN, so the per-point
        // early break of the scalar loop cannot change the minimum.
        for (size_t i = 0; i < n; ++i) {
          out[i] = tmp[i] < out[i] ? tmp[i] : out[i];
        }
      }
      return;
    }
  }
  std::fill(out, out + n, std::numeric_limits<double>::infinity());
}

void GeometryDWithinBatch(const Geometry& g, double d, const double* xs,
                          const double* ys, size_t n, uint8_t* out) {
  const Box env = g.Envelope().Expanded(d);
  simd::Kernels().box_contains(xs, ys, n, env, out);
  std::vector<double> dist(n);
  GeometryPointDistanceBatch(g, xs, ys, n, dist.data());
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(out[i] != 0 && dist[i] <= d);
  }
}

bool SegmentIntersectsBox(const Point& a, const Point& b, const Box& box) {
  if (box.Contains(a) || box.Contains(b)) return true;
  // Trivially disjoint when the segment envelope misses the box.
  Box seg;
  seg.Extend(a);
  seg.Extend(b);
  if (!seg.Intersects(box)) return false;
  Point c0{box.min_x, box.min_y}, c1{box.max_x, box.min_y};
  Point c2{box.max_x, box.max_y}, c3{box.min_x, box.max_y};
  return SegmentsIntersect(a, b, c0, c1) || SegmentsIntersect(a, b, c1, c2) ||
         SegmentsIntersect(a, b, c2, c3) || SegmentsIntersect(a, b, c3, c0);
}

bool RingBoundaryIntersectsBox(const Ring& ring, const Box& box) {
  size_t n = ring.points.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    if (SegmentIntersectsBox(ring.points[i], ring.points[j], box)) return true;
  }
  return false;
}

BoxRelation ClassifyBoxPolygon(const Box& box, const Polygon& poly) {
  Box penv = poly.Envelope();
  if (!box.Intersects(penv)) return BoxRelation::kOutside;
  if (RingBoundaryIntersectsBox(poly.shell, box)) return BoxRelation::kBoundary;
  for (const Ring& h : poly.holes) {
    if (RingBoundaryIntersectsBox(h, box)) return BoxRelation::kBoundary;
  }
  // No boundary crosses the box: either the whole box is inside the polygon
  // or entirely outside it. One corner decides.
  Point corner{box.min_x, box.min_y};
  return PointInPolygon(corner, poly) ? BoxRelation::kInside
                                      : BoxRelation::kOutside;
}

BoxRelation ClassifyBoxGeometry(const Box& box, const Geometry& g,
                                double buffer) {
  Box env = g.Envelope().Expanded(buffer);
  if (!box.Intersects(env)) return BoxRelation::kOutside;
  switch (g.type()) {
    case GeometryType::kBox: {
      if (buffer == 0.0) {
        const Box& q = g.box();
        if (q.Contains(box)) return BoxRelation::kInside;
        return q.Intersects(box) ? BoxRelation::kBoundary
                                 : BoxRelation::kOutside;
      }
      break;  // buffered box handled by the corner-distance test below
    }
    case GeometryType::kPolygon:
      if (buffer == 0.0) return ClassifyBoxPolygon(box, g.polygon());
      break;
    case GeometryType::kMultiPolygon:
      if (buffer == 0.0) {
        // Inside any member polygon → inside; boundary in any → boundary.
        BoxRelation rel = BoxRelation::kOutside;
        for (const Polygon& poly : g.multipolygon().polygons) {
          BoxRelation r = ClassifyBoxPolygon(box, poly);
          if (r == BoxRelation::kInside) return BoxRelation::kInside;
          if (r == BoxRelation::kBoundary) rel = BoxRelation::kBoundary;
        }
        return rel;
      }
      break;
    default:
      break;
  }
  // Buffered geometries (ST_DWithin) and buffered boxes. The distance
  // function d(p) = dist(p, g) is 1-Lipschitz, so the centre sample bounds
  // d over the whole box: |d(p) - d(centre)| <= half_diag for every p in
  // it. Corner samples cannot tighten this for concave geometries — the
  // maximum of d over a box need not occur at a corner (a cell straddling
  // a concave notch has its farthest-from-g point in the interior), so
  // wholesale decisions must come from the Lipschitz bound alone.
  const double half_diag =
      0.5 * std::sqrt(box.width() * box.width() + box.height() * box.height());
  const double center_dist = GeometryPointDistance(g, box.center());
  if (center_dist - half_diag > buffer) return BoxRelation::kOutside;
  if (center_dist + half_diag <= buffer) return BoxRelation::kInside;
  // A box entirely inside an areal geometry has d == 0 everywhere even when
  // the box is large; the centre bound alone would leave it kBoundary.
  switch (g.type()) {
    case GeometryType::kBox:
      if (g.box().Contains(box)) return BoxRelation::kInside;
      break;
    case GeometryType::kPolygon:
      if (ClassifyBoxPolygon(box, g.polygon()) == BoxRelation::kInside) {
        return BoxRelation::kInside;
      }
      break;
    case GeometryType::kMultiPolygon:
      for (const Polygon& poly : g.multipolygon().polygons) {
        if (ClassifyBoxPolygon(box, poly) == BoxRelation::kInside) {
          return BoxRelation::kInside;
        }
      }
      break;
    default:
      break;
  }
  return BoxRelation::kBoundary;
}

bool PolygonIntersectsBox(const Polygon& poly, const Box& box) {
  BoxRelation r = ClassifyBoxPolygon(box, poly);
  if (r != BoxRelation::kOutside) return true;
  // The polygon might be entirely inside the box with no boundary crossing.
  if (!poly.shell.points.empty() && box.Contains(poly.shell.points[0])) {
    return true;
  }
  return false;
}

bool LineIntersectsBox(const LineString& line, const Box& box) {
  const auto& pts = line.points;
  if (pts.size() == 1) return box.Contains(pts[0]);
  for (size_t i = 1; i < pts.size(); ++i) {
    if (SegmentIntersectsBox(pts[i - 1], pts[i], box)) return true;
  }
  return false;
}

namespace {

// Enumerates the boundary segments of a geometry (box edges, linestring
// segments, polygon shell+hole edges).
void ForEachSegment(const Geometry& g,
                    const std::function<void(const Point&, const Point&)>& fn) {
  switch (g.type()) {
    case GeometryType::kPoint:
      break;
    case GeometryType::kBox: {
      const Box& b = g.box();
      Point c0{b.min_x, b.min_y}, c1{b.max_x, b.min_y};
      Point c2{b.max_x, b.max_y}, c3{b.min_x, b.max_y};
      fn(c0, c1);
      fn(c1, c2);
      fn(c2, c3);
      fn(c3, c0);
      break;
    }
    case GeometryType::kLineString: {
      const auto& pts = g.line().points;
      for (size_t i = 1; i < pts.size(); ++i) fn(pts[i - 1], pts[i]);
      break;
    }
    case GeometryType::kPolygon: {
      auto ring = [&](const Ring& r) {
        size_t n = r.points.size();
        for (size_t i = 0, j = n - 1; i < n; j = i++) fn(r.points[j], r.points[i]);
      };
      ring(g.polygon().shell);
      for (const Ring& h : g.polygon().holes) ring(h);
      break;
    }
    case GeometryType::kMultiPolygon:
      for (const Polygon& p : g.multipolygon().polygons) {
        ForEachSegment(Geometry(p), fn);
      }
      break;
  }
}

// Enumerates representative vertices of a geometry.
void ForEachVertex(const Geometry& g,
                   const std::function<void(const Point&)>& fn) {
  switch (g.type()) {
    case GeometryType::kPoint:
      fn(g.point());
      break;
    case GeometryType::kBox: {
      const Box& b = g.box();
      fn({b.min_x, b.min_y});
      fn({b.max_x, b.max_y});
      break;
    }
    case GeometryType::kLineString:
      for (const Point& p : g.line().points) fn(p);
      break;
    case GeometryType::kPolygon:
      for (const Point& p : g.polygon().shell.points) fn(p);
      break;
    case GeometryType::kMultiPolygon:
      for (const Polygon& poly : g.multipolygon().polygons) {
        for (const Point& p : poly.shell.points) fn(p);
      }
      break;
  }
}

}  // namespace

bool GeometriesIntersect(const Geometry& a, const Geometry& b) {
  if (!a.Envelope().Intersects(b.Envelope())) return false;
  if (a.is_point()) return GeometryContainsPoint(b, a.point());
  if (b.is_point()) return GeometryContainsPoint(a, b.point());
  if (a.is_box() && b.is_box()) return a.box().Intersects(b.box());
  // A vertex of one inside the other ⇒ intersecting.
  bool hit = false;
  ForEachVertex(a, [&](const Point& p) {
    if (!hit && GeometryContainsPoint(b, p)) hit = true;
  });
  if (hit) return true;
  ForEachVertex(b, [&](const Point& p) {
    if (!hit && GeometryContainsPoint(a, p)) hit = true;
  });
  if (hit) return true;
  // Otherwise any boundary crossing decides. O(|A|·|B|) — layer features
  // are small (tens of vertices), so this stays cheap after the envelope
  // pre-filter.
  ForEachSegment(a, [&](const Point& a0, const Point& a1) {
    if (hit) return;
    ForEachSegment(b, [&](const Point& b0, const Point& b1) {
      if (!hit && SegmentsIntersect(a0, a1, b0, b1)) hit = true;
    });
  });
  return hit;
}

namespace {
double SegmentSegmentDistance(const Point& a0, const Point& a1,
                              const Point& b0, const Point& b1) {
  if (SegmentsIntersect(a0, a1, b0, b1)) return 0.0;
  double d = PointSegmentDistanceSquared(a0, b0, b1);
  d = std::min(d, PointSegmentDistanceSquared(a1, b0, b1));
  d = std::min(d, PointSegmentDistanceSquared(b0, a0, a1));
  d = std::min(d, PointSegmentDistanceSquared(b1, a0, a1));
  return std::sqrt(d);
}
}  // namespace

double GeometryDistance(const Geometry& a, const Geometry& b) {
  if (a.is_point()) return GeometryPointDistance(b, a.point());
  if (b.is_point()) return GeometryPointDistance(a, b.point());
  if (GeometriesIntersect(a, b)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  ForEachSegment(a, [&](const Point& a0, const Point& a1) {
    ForEachSegment(b, [&](const Point& b0, const Point& b1) {
      best = std::min(best, SegmentSegmentDistance(a0, a1, b0, b1));
    });
  });
  return best;
}

bool GeometryIntersectsBox(const Geometry& g, const Box& box) {
  switch (g.type()) {
    case GeometryType::kPoint:
      return box.Contains(g.point());
    case GeometryType::kBox:
      return g.box().Intersects(box);
    case GeometryType::kLineString:
      return LineIntersectsBox(g.line(), box);
    case GeometryType::kPolygon:
      return PolygonIntersectsBox(g.polygon(), box);
    case GeometryType::kMultiPolygon:
      for (const Polygon& poly : g.multipolygon().polygons) {
        if (PolygonIntersectsBox(poly, box)) return true;
      }
      return false;
  }
  return false;
}

}  // namespace geocol
