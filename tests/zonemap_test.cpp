// Zone map baseline tests: correctness against the oracle and the
// clustering-sensitivity property the imprints paper highlights.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/zonemap.h"
#include "core/imprint_scan.h"
#include "util/rng.h"

namespace geocol {
namespace {

TEST(ZoneMapTest, BuildValidation) {
  Column empty("c", DataType::kFloat64);
  EXPECT_FALSE(ZoneMapIndex::Build(empty).ok());
  auto col = Column::FromVector<double>("c", {1, 2, 3});
  EXPECT_FALSE(ZoneMapIndex::Build(*col, 0).ok());
  auto ix = ZoneMapIndex::Build(*col, 2);
  ASSERT_TRUE(ix.ok());
  EXPECT_EQ(ix->num_zones(), 2u);
}

TEST(ZoneMapTest, RangeSelectMatchesOracle) {
  Rng rng(131);
  std::vector<double> vals(30000);
  double walk = 0;
  for (auto& v : vals) {
    walk += rng.NextGaussian();
    v = walk;
  }
  auto col = Column::FromVector<double>("c", vals);
  auto ix = ZoneMapIndex::Build(*col, 512);
  ASSERT_TRUE(ix.ok());
  for (int q = 0; q < 20; ++q) {
    double a = rng.UniformDouble(-100, 100);
    double b = rng.UniformDouble(-100, 100);
    double lo = std::min(a, b), hi = std::max(a, b);
    BitVector via_zone, via_scan;
    ASSERT_TRUE(ix->RangeSelect(*col, lo, hi, &via_zone).ok());
    FullScanRangeSelect(*col, lo, hi, &via_scan);
    EXPECT_TRUE(via_zone == via_scan);
  }
}

TEST(ZoneMapTest, FilterRangeFullZones) {
  std::vector<double> vals;
  for (int i = 0; i < 1024; ++i) vals.push_back(i);
  auto col = Column::FromVector<double>("c", vals);
  auto ix = ZoneMapIndex::Build(*col, 256);
  ASSERT_TRUE(ix.ok());
  ASSERT_EQ(ix->num_zones(), 4u);
  BitVector cand, full;
  ix->FilterRange(256, 511, &cand, &full);  // exactly zone 1
  EXPECT_EQ(cand.Count(), 1u);
  EXPECT_EQ(full.Count(), 1u);
  EXPECT_TRUE(full.Get(1));
}

TEST(ZoneMapTest, StaleIndexRejected) {
  auto col = Column::FromVector<double>("c", {1, 2, 3});
  auto ix = ZoneMapIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  col->Append<double>(4);
  BitVector rows;
  EXPECT_EQ(ix->RangeSelect(*col, 0, 10, &rows).code(),
            StatusCode::kInternal);
}

TEST(ZoneMapTest, StorageIsTwoDoublesPerZone) {
  auto col = Column::FromVector<double>("c", std::vector<double>(10000, 1.0));
  auto ix = ZoneMapIndex::Build(*col, 1000);
  ASSERT_TRUE(ix.ok());
  EXPECT_EQ(ix->StorageBytes(), 10u * 2 * sizeof(double));
}

// The central contrast of E5: on clustered data zone maps filter well; on
// shuffled data every zone's [min,max] covers the whole domain and the
// filter admits everything, while imprints keep discriminating.
TEST(ZoneMapTest, FilterQualityCollapsesOnShuffledData) {
  Rng rng(137);
  const size_t n = 100000;
  std::vector<double> clustered(n);
  double walk = 0;
  for (auto& v : clustered) {
    walk += rng.NextGaussian();
    v = walk;
  }
  std::vector<double> shuffled = clustered;
  for (size_t i = n - 1; i > 0; --i) {
    std::swap(shuffled[i], shuffled[rng.Uniform(i + 1)]);
  }
  auto c_col = Column::FromVector<double>("c", clustered);
  auto s_col = Column::FromVector<double>("s", shuffled);
  auto c_ix = ZoneMapIndex::Build(*c_col, 512);
  auto s_ix = ZoneMapIndex::Build(*s_col, 512);
  ASSERT_TRUE(c_ix.ok());
  ASSERT_TRUE(s_ix.ok());

  // A 2%-of-domain range.
  std::vector<double> sorted = clustered;
  std::sort(sorted.begin(), sorted.end());
  double lo = sorted[n / 2];
  double hi = sorted[n / 2 + n / 50];

  ZoneMapScanStats cs, ss;
  BitVector rows;
  ASSERT_TRUE(c_ix->RangeSelect(*c_col, lo, hi, &rows, &cs).ok());
  ASSERT_TRUE(s_ix->RangeSelect(*s_col, lo, hi, &rows, &ss).ok());
  EXPECT_LT(cs.TouchedFraction(), 0.6);
  EXPECT_GT(ss.TouchedFraction(), 0.95)
      << "shuffled data should defeat zone maps";

  // Imprints on the same shuffled column keep some discrimination at the
  // value level even though every cache line is touched-or-not by bins.
  auto imp = ImprintsIndex::Build(*s_col);
  ASSERT_TRUE(imp.ok());
  ImprintScanStats is;
  BitVector irows;
  ASSERT_TRUE(ImprintRangeSelect(*s_col, *imp, lo, hi, &irows, &is).ok());
  EXPECT_LT(is.TouchedFraction(), ss.TouchedFraction());
}

TEST(ZoneMapTest, IntegerColumn) {
  std::vector<int32_t> vals;
  for (int i = 0; i < 10000; ++i) vals.push_back(i);
  auto col = Column::FromVector<int32_t>("c", vals);
  auto ix = ZoneMapIndex::Build(*col, 100);
  ASSERT_TRUE(ix.ok());
  BitVector rows;
  ZoneMapScanStats stats;
  ASSERT_TRUE(ix->RangeSelect(*col, 500, 599, &rows, &stats).ok());
  EXPECT_EQ(rows.Count(), 100u);
  EXPECT_LE(stats.zones_candidate, 2u);
}

}  // namespace
}  // namespace geocol
