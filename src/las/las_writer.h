// Writers for the LAS-like tile format, plain and LAZ-compressed.
#ifndef GEOCOL_LAS_LAS_WRITER_H_
#define GEOCOL_LAS_LAS_WRITER_H_

#include <string>

#include "las/las_format.h"
#include "util/status.h"

namespace geocol {

/// Writes the tile uncompressed (".las" convention). The header's point
/// count and bbox are recomputed before writing.
Status WriteLasFile(LasTile& tile, const std::string& path);

/// Writes the tile with the LAZ-like compressed payload (".laz").
Status WriteLazFile(LasTile& tile, const std::string& path);

/// Dispatches on the path suffix (".laz" → compressed).
Status WriteTileFile(LasTile& tile, const std::string& path);

}  // namespace geocol

#endif  // GEOCOL_LAS_LAS_WRITER_H_
