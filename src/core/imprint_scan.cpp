#include "core/imprint_scan.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <span>
#include <vector>

#include "core/imprints_io.h"
#include "core/native_range.h"
#include "simd/kernels.h"
#include "telemetry/metrics.h"
#include "util/thread_pool.h"

namespace geocol {

namespace {

// Columns below this size are scanned serially even when a pool is given —
// the fork/join overhead would dominate.
constexpr uint64_t kMinParallelScanRows = 1 << 17;
// Morsel granularity (rows); rounded up to a multiple of lcm(64, values
// per line) so every morsel covers whole cache lines and whole BitVector
// words.
constexpr uint64_t kTargetMorselRows = 1 << 16;

/// One maximal run of candidate cache lines from the imprint filter.
struct CandidateRun {
  uint64_t first_line;
  uint64_t line_count;
  bool full;
};

}  // namespace

Status ImprintRangeSelect(const Column& column, const ImprintsIndex& index,
                          double lo, double hi, BitVector* out_rows,
                          ImprintScanStats* stats, ThreadPool* pool) {
  if (index.built_epoch() != column.epoch()) {
    return Status::Internal("stale imprints index (column was modified)");
  }
  const auto scan_start = std::chrono::steady_clock::now();
  out_rows->Resize(column.size());
  ImprintScanStats merged;
  merged.lines_total = index.num_lines();

  const bool want_parallel = pool != nullptr && pool->num_threads() > 0 &&
                             column.size() >= kMinParallelScanRows;

  DispatchDataType(column.type(), [&]<typename T>() {
    std::span<const T> values = column.Values<T>();
    // Compare in the column's native type: the bounds are clamped into T
    // once per scan, so large int64 values are never rounded through
    // double. An unsatisfiable clamped range selects nothing.
    NativeRange<T> nr = ClampRangeToType<T>(lo, hi);
    if (nr.empty) return;

    const uint64_t n = column.size();
    const uint64_t vpl = index.values_per_line();

    // Scans the lines [first_line, first_line + line_count) of one run,
    // shared by the serial path and the clipped per-morsel path.
    auto scan_lines = [&](uint64_t first_line, uint64_t line_count, bool full,
                          ImprintScanStats& st) {
      st.lines_candidate += line_count;
      uint64_t first_row = first_line * vpl;
      uint64_t last_row = std::min((first_line + line_count) * vpl, n);
      if (full) {
        st.lines_full += line_count;
        out_rows->SetRange(first_row, last_row);
        st.rows_selected += last_row - first_row;
        st.rows_full += last_row - first_row;
        return;
      }
      // Boundary run: the SIMD range kernel turns each chunk of values into
      // selection words on the stack, which land in the BitVector with two
      // ORs per word. Workers stay write-disjoint because morsels cover
      // whole 64-bit words and the chunk never crosses last_row.
      constexpr uint64_t kChunkValues = 4096;
      uint64_t scratch[kChunkValues / 64];
      for (uint64_t r = first_row; r < last_row; r += kChunkValues) {
        const uint64_t cn = std::min(kChunkValues, last_row - r);
        const uint64_t sel =
            simd::RangeSelectBits(values.data() + r, cn, nr.lo, nr.hi, scratch);
        out_rows->OrWordsAt(r, scratch, cn);
        st.values_checked += cn;
        st.rows_selected += sel;
      }
    };

    if (!want_parallel) {
      index.FilterRangeRuns(lo, hi,
                            [&](uint64_t first_line, uint64_t line_count,
                                bool full) {
                              scan_lines(first_line, line_count, full, merged);
                            });
      return;
    }

    // Parallel scan: materialise the candidate runs (touches only the
    // compressed imprint stream), then carve the row space into morsels
    // whose boundaries are multiples of lcm(64, values_per_line). Every
    // morsel covers whole cache lines (stats split exactly) and whole
    // 64-bit words (workers write disjoint BitVector words).
    std::vector<CandidateRun> runs;
    index.FilterRangeRuns(lo, hi, [&](uint64_t first_line, uint64_t line_count,
                                      bool full) {
      runs.push_back({first_line, line_count, full});
    });
    if (runs.empty()) return;

    const uint64_t unit = std::lcm<uint64_t>(64, vpl);
    const uint64_t morsel_rows = ((kTargetMorselRows + unit - 1) / unit) * unit;
    const uint64_t num_morsels = (n + morsel_rows - 1) / morsel_rows;
    if (num_morsels < 2) {
      for (const CandidateRun& r : runs) {
        scan_lines(r.first_line, r.line_count, r.full, merged);
      }
      return;
    }

    std::vector<ImprintScanStats> morsel_stats(num_morsels);
    pool->ParallelFor(num_morsels, [&](size_t m) {
      const uint64_t row_begin = m * morsel_rows;
      const uint64_t row_end = std::min(n, row_begin + morsel_rows);
      const uint64_t line_begin = row_begin / vpl;
      const uint64_t line_end = (row_end + vpl - 1) / vpl;
      ImprintScanStats& st = morsel_stats[m];
      // First run overlapping this morsel; runs are sorted and disjoint.
      auto it = std::partition_point(
          runs.begin(), runs.end(), [&](const CandidateRun& r) {
            return r.first_line + r.line_count <= line_begin;
          });
      for (; it != runs.end() && it->first_line < line_end; ++it) {
        uint64_t lb = std::max(it->first_line, line_begin);
        uint64_t le = std::min(it->first_line + it->line_count, line_end);
        scan_lines(lb, le - lb, it->full, st);
      }
    });
    for (const ImprintScanStats& st : morsel_stats) {
      merged.lines_candidate += st.lines_candidate;
      merged.lines_full += st.lines_full;
      merged.values_checked += st.values_checked;
      merged.rows_selected += st.rows_selected;
      merged.rows_full += st.rows_full;
    }
    merged.workers = static_cast<uint32_t>(
        std::min<uint64_t>(num_morsels, pool->num_threads() + 1));
  });
  // Work counters feed `geocol metrics` exposition and must stay equal to
  // the span attributes EXPLAIN ANALYZE reports (asserted in tests).
  GEOCOL_METRIC_COUNTER(c_scans, "geocol_imprint_scans_total");
  GEOCOL_METRIC_COUNTER(c_lines_total, "geocol_imprint_cachelines_total");
  GEOCOL_METRIC_COUNTER(c_lines_probed, "geocol_imprint_cachelines_probed_total");
  GEOCOL_METRIC_COUNTER(c_lines_full, "geocol_imprint_cachelines_full_total");
  GEOCOL_METRIC_COUNTER(c_values, "geocol_imprint_values_checked_total");
  GEOCOL_METRIC_COUNTER(c_rows, "geocol_imprint_rows_selected_total");
  GEOCOL_METRIC_COUNTER(c_rows_full, "geocol_imprint_rows_full_total");
  GEOCOL_METRIC_HISTOGRAM(h_scan, "geocol_imprint_scan_nanos");
  c_scans.Increment();
  c_lines_total.Increment(merged.lines_total);
  c_lines_probed.Increment(merged.lines_candidate);
  c_lines_full.Increment(merged.lines_full);
  c_values.Increment(merged.values_checked);
  c_rows.Increment(merged.rows_selected);
  c_rows_full.Increment(merged.rows_full);
  h_scan.Observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - scan_start)
                     .count());
  if (stats != nullptr) *stats = merged;
  return Status::OK();
}

void FullScanRangeSelect(const Column& column, double lo, double hi,
                         BitVector* out_rows) {
  out_rows->Resize(column.size());
  DispatchDataType(column.type(), [&]<typename T>() {
    std::span<const T> values = column.Values<T>();
    NativeRange<T> nr = ClampRangeToType<T>(lo, hi);
    if (nr.empty) return;
    // The whole column is one run: the kernel writes ceil(n/64) selection
    // words straight into the BitVector's word array (tail bits zero).
    simd::RangeSelectBits(values.data(), values.size(), nr.lo, nr.hi,
                          out_rows->mutable_words());
  });
}

Result<std::shared_ptr<const ImprintsIndex>> ImprintManager::GetOrBuild(
    const ColumnPtr& column) {
  if (column == nullptr) return Status::InvalidArgument("null column");
  GEOCOL_METRIC_COUNTER(c_hits, "geocol_imprint_cache_hits_total");
  GEOCOL_METRIC_COUNTER(c_misses, "geocol_imprint_cache_misses_total");
  GEOCOL_METRIC_COUNTER(c_builds, "geocol_imprint_builds_total");
  GEOCOL_METRIC_HISTOGRAM(h_build, "geocol_imprint_build_nanos");
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<Entry>& slot = cache_[column.get()];
    if (slot == nullptr) slot = std::make_shared<Entry>();
    entry = slot;
    if (entry->index != nullptr &&
        entry->index->built_epoch() == column->epoch()) {
      c_hits.Increment();
      return entry->index;
    }
  }
  // Serialise builds per column: the losers of a concurrent first query
  // wait here, then take the winner's index from the re-check.
  std::lock_guard<std::mutex> build_lock(entry->build_mu);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entry->index != nullptr &&
        entry->index->built_epoch() == column->epoch()) {
      c_hits.Increment();
      return entry->index;
    }
  }
  c_misses.Increment();
  const auto build_start = std::chrono::steady_clock::now();
  // Sidecar-backed build reuses a verified on-disk index when fresh and
  // transparently quarantines + rebuilds when corrupt or stale.
  Result<ImprintsIndex> built =
      sidecar_dir_.empty()
          ? ImprintsIndex::Build(*column, options_, pool_)
          : LoadOrBuildImprints(*column,
                                sidecar_dir_ + "/" + column->name() + ".gim",
                                options_, pool_);
  GEOCOL_RETURN_NOT_OK(built.status());
  c_builds.Increment();
  h_build.Observe(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - build_start)
                      .count());
  auto index = std::make_shared<const ImprintsIndex>(std::move(*built));
  std::lock_guard<std::mutex> lock(mu_);
  entry->index = index;
  return index;
}

uint64_t ImprintManager::TotalStorageBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [col, entry] : cache_) {
    if (entry->index != nullptr) {
      total += entry->index->Storage(0).total_bytes;
    }
  }
  return total;
}

size_t ImprintManager::num_indexes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [col, entry] : cache_) {
    n += entry->index != nullptr ? 1 : 0;
  }
  return n;
}

void ImprintManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

}  // namespace geocol
