// Quickstart: the GeoColumn public API in ~60 lines.
//
//   1. Generate (or load) a LIDAR survey into a flat columnar table.
//   2. Open a SpatialQueryEngine over it — column imprints are built
//      lazily on the first range query, exactly as in the paper.
//   3. Run spatial selections, "near" queries and aggregates.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/spatial_engine.h"
#include "geom/wkt.h"
#include "pointcloud/generator.h"

using namespace geocol;

int main() {
  // ---- 1. A small synthetic AHN2-like survey (500x500 m, ~250k points).
  AhnGeneratorOptions options;
  options.extent = Box(85000, 444000, 85500, 444500);
  AhnGenerator generator(options);
  auto table_result = generator.GenerateTable(250000);
  if (!table_result.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 table_result.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<FlatTable> table = *table_result;
  std::printf("flat table '%s': %llu points x %zu attributes (%.1f MB)\n",
              table->name().c_str(),
              static_cast<unsigned long long>(table->num_rows()),
              table->num_columns(), table->DataBytes() / 1048576.0);

  // ---- 2. The spatially-enabled engine (imprints + grid refinement).
  SpatialQueryEngine engine(table);

  // ---- 3a. Rectangular selection.
  Box region(85100, 444100, 85200, 444220);
  auto in_box = engine.SelectInBox(region);
  if (!in_box.ok()) return 1;
  std::printf("\npoints in %.0fx%.0f m region: %llu\n", region.width(),
              region.height(),
              static_cast<unsigned long long>(in_box->count()));
  std::printf("%s", in_box->profile.ToString().c_str());

  // ---- 3b. Polygon selection from WKT.
  auto polygon = ParseWkt(
      "POLYGON ((85050 444050, 85450 444120, 85380 444430, 85120 444380, "
      "85050 444050))");
  if (!polygon.ok()) return 1;
  auto in_poly = engine.SelectInGeometry(*polygon);
  if (!in_poly.ok()) return 1;
  std::printf("\npoints in polygon: %llu (grid refined %llu boundary-cell "
              "points exactly)\n",
              static_cast<unsigned long long>(in_poly->count()),
              static_cast<unsigned long long>(in_poly->refine.exact_tests));

  // ---- 3c. Thematic + spatial: average elevation of vegetation returns.
  auto avg = engine.Aggregate(*polygon, /*buffer=*/0.0,
                              {{"classification", 3, 5}}, "z", AggKind::kAvg);
  auto cnt = engine.Aggregate(*polygon, 0.0, {{"classification", 3, 5}}, "z",
                              AggKind::kCount);
  if (!avg.ok() || !cnt.ok()) return 1;
  std::printf("\nvegetation returns in polygon: %.0f, average elevation "
              "%.2f m\n", *cnt, *avg);

  // ---- 3d. "Near" query: points within 15 m of a road centreline.
  LineString road;
  road.points = {{85000, 444250}, {85250, 444260}, {85500, 444240}};
  auto near = engine.SelectWithinDistance(Geometry(road), 15.0);
  if (!near.ok()) return 1;
  std::printf("points within 15 m of the road: %llu\n",
              static_cast<unsigned long long>(near->count()));

  std::printf("\nimprint index storage: %.2f MB over %.1f MB of columns\n",
              engine.IndexStorageBytes() / 1048576.0,
              table->DataBytes() / 1048576.0);
  return 0;
}
