// Little-endian binary file I/O used by the column files, the LAS
// reader/writer and the binary bulk loader.
//
// Every operation routes through util/fault_injection.h, so tests can kill
// a write sequence at any point, and every IOError carries the errno text.
// Durable formats are written via the atomic protocol (OpenAtomic/Commit:
// `path.tmp` -> flush -> fsync -> rename -> fsync parent directory), which
// guarantees a reader never observes a partially written file.
#ifndef GEOCOL_UTIL_BINARY_IO_H_
#define GEOCOL_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace geocol {

/// Buffered binary writer over a stdio FILE.
///
/// All multi-byte values are written little-endian (the native order on the
/// platforms this library targets; asserted at build configuration time).
class BinaryWriter {
 public:
  BinaryWriter() = default;
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  /// Opens `path` for writing, truncating any existing file. For scratch
  /// output only — durable formats use OpenAtomic/Commit.
  Status Open(const std::string& path);

  /// Opens `path + ".tmp"` for writing. The data becomes visible at `path`
  /// only when Commit() succeeds; until then (crash, error, Abandon) a
  /// reader of `path` sees the previous file, complete and untouched.
  Status OpenAtomic(const std::string& path);

  /// Atomic-mode commit point: flush -> fsync -> close -> rename over
  /// `path` -> fsync parent directory.
  Status Commit();

  /// Closes and removes the `.tmp` file (best effort). Safe to call after
  /// a failed write/Commit and on non-atomic writers (plain close).
  void Abandon();

  /// Flush + close (no fsync, no rename). Atomic writers use Commit.
  Status Close();
  bool is_open() const { return file_ != nullptr; }

  Status WriteBytes(const void* data, size_t n);

  template <typename T>
  Status WriteScalar(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return WriteBytes(&value, sizeof(T));
  }

  template <typename T>
  Status WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return WriteBytes(v.data(), v.size() * sizeof(T));
  }

  /// Length-prefixed (uint32) string.
  Status WriteString(const std::string& s);

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::FILE* file_ = nullptr;
  uint64_t bytes_written_ = 0;
  std::string final_path_;  ///< atomic mode: rename target ("" otherwise)
  std::string tmp_path_;    ///< atomic mode: the file being written
};

/// Buffered binary reader over a stdio FILE.
class BinaryReader {
 public:
  BinaryReader() = default;
  ~BinaryReader();

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  Status Open(const std::string& path);
  Status Close();
  bool is_open() const { return file_ != nullptr; }

  /// Reads exactly `n` bytes; Corruption on short read.
  Status ReadBytes(void* data, size_t n);

  /// Positioned read (`pread`): exactly `n` bytes at absolute `offset`,
  /// without moving the stream position. Concurrent ReadBytesAt calls on
  /// one reader never race on a shared file offset. Same transient-retry
  /// and Corruption-on-truncation semantics as ReadBytes.
  Status ReadBytesAt(uint64_t offset, void* data, size_t n);

  template <typename T>
  Status ReadScalar(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadBytes(value, sizeof(T));
  }

  /// Reads `count` elements into `v` (resized). The count is validated
  /// against the bytes remaining in the file BEFORE the resize, so a
  /// corrupt on-disk count fails with Corruption instead of attempting a
  /// multi-GB allocation.
  template <typename T>
  Status ReadVector(std::vector<T>* v, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    GEOCOL_RETURN_NOT_OK(CheckRemaining(count, sizeof(T)));
    v->resize(count);
    return ReadBytes(v->data(), count * sizeof(T));
  }

  /// Length-prefixed (uint32) string; the length is bounded by `max_len`
  /// and by the bytes remaining in the file.
  Status ReadString(std::string* s, uint32_t max_len = 1u << 20);

  Status Seek(uint64_t offset);
  /// Current read offset.
  uint64_t Tell() const { return pos_; }
  Result<uint64_t> FileSize();
  /// Bytes between the read position and the end of the file.
  uint64_t Remaining() const { return size_ > pos_ ? size_ - pos_ : 0; }
  /// Corruption unless `count` elements of `elem_size` fit in Remaining().
  Status CheckRemaining(uint64_t count, size_t elem_size) const;

 private:
  std::FILE* file_ = nullptr;
  uint64_t pos_ = 0;
  uint64_t size_ = 0;
};

/// Appends little-endian scalars/strings to an in-memory byte buffer; the
/// write-side counterpart of BufferReader for formats that are checksummed
/// and written as a whole (manifests, imprint sidecars).
class BufferWriter {
 public:
  void WriteBytes(const void* data, size_t n) {
    // resize + memcpy rather than insert: GCC 12's -Wstringop-overflow
    // misfires on the inlined insert path for small fixed-size writes.
    if (n == 0) return;
    size_t old = buf_.size();
    buf_.resize(old + n);
    std::memcpy(buf_.data() + old, data, n);
  }

  template <typename T>
  void WriteScalar(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteBytes(&value, sizeof(T));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteBytes(v.data(), v.size() * sizeof(T));
  }

  /// Length-prefixed (uint32) string.
  void WriteString(const std::string& s) {
    WriteScalar<uint32_t>(static_cast<uint32_t>(s.size()));
    WriteBytes(s.data(), s.size());
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked reader over an in-memory buffer (typically a whole file
/// already loaded and checksum-verified). Every count and length is
/// validated against the remaining bytes before any allocation.
class BufferReader {
 public:
  BufferReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BufferReader(const std::vector<uint8_t>& buf)
      : BufferReader(buf.data(), buf.size()) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

  Status ReadBytes(void* out, size_t n) {
    if (n > remaining()) {
      return Status::Corruption("buffer underrun: need " + std::to_string(n) +
                                " bytes, " + std::to_string(remaining()) +
                                " remain");
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status ReadScalar(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadBytes(value, sizeof(T));
  }

  template <typename T>
  Status ReadVector(std::vector<T>* v, uint64_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count > remaining() / sizeof(T)) {
      return Status::Corruption("element count " + std::to_string(count) +
                                " exceeds the " +
                                std::to_string(remaining()) +
                                " bytes remaining");
    }
    v->resize(count);
    return ReadBytes(v->data(), count * sizeof(T));
  }

  Status ReadString(std::string* s, uint32_t max_len = 1u << 20) {
    uint32_t len = 0;
    GEOCOL_RETURN_NOT_OK(ReadScalar(&len));
    if (len > max_len || len > remaining()) {
      return Status::Corruption("string length " + std::to_string(len) +
                                " exceeds limit");
    }
    s->resize(len);
    return ReadBytes(s->data(), len);
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Returns the size of `path` in bytes, or IOError.
Result<uint64_t> FileSizeBytes(const std::string& path);

/// True if `path` exists (file or directory).
bool PathExists(const std::string& path);

/// Writes `data` to `path` in one call (truncate-in-place semantics — a
/// crash mid-write can leave a torn file; durable formats use
/// WriteFileAtomic).
Status WriteFileBytes(const std::string& path, const void* data, size_t n);

/// Writes `data` to `path` with the atomic durable protocol: a reader of
/// `path` sees either the previous file or all of `data`, never a mix.
Status WriteFileAtomic(const std::string& path, const void* data, size_t n);

/// Reads the whole file into `out`.
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

/// Positioned full read on a raw descriptor: exactly `n` bytes at
/// `offset` via pread(2), with the same bounded EINTR/EAGAIN retry,
/// fault-injection hooks and Corruption-on-truncation semantics as
/// BinaryReader::ReadBytes. The descriptor's file offset is never moved,
/// so concurrent callers on one fd do not serialize or race. `path` is
/// used in error messages only.
Status PreadExact(int fd, uint64_t offset, void* data, size_t n,
                  const std::string& path);

/// rename(2) with fault injection and errno detail.
Status RenameFile(const std::string& from, const std::string& to);

/// unlink(2) with fault injection and errno detail. Missing file is OK.
Status RemoveFile(const std::string& path);

}  // namespace geocol

#endif  // GEOCOL_UTIL_BINARY_IO_H_
