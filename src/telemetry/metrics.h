// Engine-wide metrics registry: the "where do time and bytes actually go"
// substrate underneath the per-query profiles (PAPER §4.2 lets users see
// per-operator times; systems serving interactive analytics additionally
// attribute every query to cache hits vs. disk — PowerDrill-style).
//
// Design constraints, in order:
//  1. An increment on the hot path must be a handful of nanoseconds: one
//     relaxed atomic add on a per-thread shard, no locks, no allocation.
//  2. Reads are rare (exposition) and may be O(shards).
//  3. Metric objects live forever once registered, so instrumentation
//     sites cache a `Counter&` in a function-local static and never touch
//     the registry map again.
//
// Instrumentation sites sit OUTSIDE per-row loops — once per scan, per
// task, per file operation — so the counters-only path costs <2% on the
// selection workloads (measured by bench_telemetry, E12).
#ifndef GEOCOL_TELEMETRY_METRICS_H_
#define GEOCOL_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace geocol {
namespace telemetry {

/// Kill switch for every metric write (relaxed load per update). Exists so
/// bench_telemetry can measure the instrumentation overhead; production
/// leaves it on.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

/// Monotonic counter, sharded by thread to keep concurrent increments off
/// a shared cache line. Value() sums the shards (monotone but not a
/// consistent snapshot across *different* counters).
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Increment(uint64_t delta = 1) {
    if (!MetricsEnabled()) return;
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.value.load(std::memory_order_relaxed);
    return sum;
  }

  void Reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  /// Stable per-thread slot (assigned on first use, round-robin).
  static size_t ShardIndex();

  Shard shards_[kShards];
};

/// Last-write-wins instantaneous value (queue depth, dispatch level).
class Gauge {
 public:
  void Set(int64_t v) {
    if (MetricsEnabled()) value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (MetricsEnabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram with geometric (power-of-4) bucket bounds:
/// bucket i counts observations <= first_bound * 4^i; the last bucket is
/// unbounded. With first_bound = 1000 (ns) the 16 buckets span 1 µs .. ~4.5
/// min, which covers every latency this engine produces.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 16;

  explicit Histogram(int64_t first_bound = 1000) : first_bound_(first_bound) {}

  /// Upper bound of bucket `i` (inclusive); INT64_MAX for the last bucket.
  int64_t BucketUpperBound(size_t i) const;

  void Observe(int64_t value) {
    if (!MetricsEnabled()) return;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t first_bound() const { return first_bound_; }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  size_t BucketIndex(int64_t value) const;

  int64_t first_bound_;
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Process-global, name-keyed registry. Get* registers on first use and
/// returns a reference that stays valid for the life of the process, so
/// instrumentation sites do the map lookup exactly once:
///
///   static telemetry::Counter& c =
///       telemetry::MetricsRegistry::Global().GetCounter(
///           "geocol_imprint_scans_total");
///   c.Increment();
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `first_bound` only applies on first registration.
  Histogram& GetHistogram(const std::string& name, int64_t first_bound = 1000);

  /// Prometheus text exposition format (counters, gauges, histograms with
  /// _bucket/_sum/_count series).
  std::string RenderPrometheus() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string RenderJson() const;

  /// Zeroes every registered metric (tests and benchmarks only).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;  ///< guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// One-line operator summary built from the registry: bytes read, CRC
/// verifies, imprint hit rate. Printed by `geocol verify` and the bench
/// binaries on exit when GEOCOL_METRICS=1.
std::string SummaryLine();

/// Prints SummaryLine() to `out` iff the GEOCOL_METRICS env var is "1".
void MaybePrintSummary(std::FILE* out);

/// Registers an atexit hook that dumps RenderJson() to `path` (the bench
/// binaries' `--metrics <path>` flag).
void WriteMetricsJsonAtExit(std::string path);

}  // namespace telemetry
}  // namespace geocol

/// Declares a function-local static reference bound to the named counter;
/// usable as a statement inside any function.
#define GEOCOL_METRIC_COUNTER(var, name)             \
  static ::geocol::telemetry::Counter& var =         \
      ::geocol::telemetry::MetricsRegistry::Global().GetCounter(name)

#define GEOCOL_METRIC_GAUGE(var, name)               \
  static ::geocol::telemetry::Gauge& var =           \
      ::geocol::telemetry::MetricsRegistry::Global().GetGauge(name)

#define GEOCOL_METRIC_HISTOGRAM(var, name)           \
  static ::geocol::telemetry::Histogram& var =       \
      ::geocol::telemetry::MetricsRegistry::Global().GetHistogram(name)

#endif  // GEOCOL_TELEMETRY_METRICS_H_
