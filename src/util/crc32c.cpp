#include "util/crc32c.h"

#include <array>
#include <cstring>

namespace geocol {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  // table[k][b]: CRC of byte b followed by k zero bytes; slice-by-8 folds
  // eight input bytes per iteration through these.
  uint32_t t[8][256];
};

Tables BuildTables() {
  Tables tables{};
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t crc = b;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][b] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = tables.t[k - 1][b];
      tables.t[k][b] = tables.t[0][crc & 0xFF] ^ (crc >> 8);
    }
  }
  return tables;
}

const Tables& GetTables() {
  static const Tables tables = BuildTables();
  return tables;
}

}  // namespace

namespace internal {

uint32_t Crc32cSoftware(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Align to 8 bytes so the slice loop can load whole words.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;  // little-endian: low 4 bytes absorb the running crc
    crc = tb.t[7][word & 0xFF] ^ tb.t[6][(word >> 8) & 0xFF] ^
          tb.t[5][(word >> 16) & 0xFF] ^ tb.t[4][(word >> 24) & 0xFF] ^
          tb.t[3][(word >> 32) & 0xFF] ^ tb.t[2][(word >> 40) & 0xFF] ^
          tb.t[1][(word >> 48) & 0xFF] ^ tb.t[0][(word >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

}  // namespace internal

#if defined(__x86_64__) && defined(__GNUC__)

namespace {

// The crc32q instruction has 3-cycle latency but 1-cycle throughput, so a
// single dependent chain runs at ~1/3 of peak. Big buffers are therefore
// split into three equal lanes advanced by three independent chains, whose
// results are recombined with the linear "advance the CRC register through
// kLane zero bytes" operator, precomputed as byte-sliced tables.
constexpr size_t kLane = 1024;  // bytes per interleaved lane

struct ZeroShift {
  uint32_t t[4][256];
};

ZeroShift BuildZeroShift() {
  const Tables& tb = GetTables();
  ZeroShift z{};
  for (int i = 0; i < 4; ++i) {
    for (uint32_t v = 0; v < 256; ++v) {
      uint32_t s = v << (8 * i);
      for (size_t k = 0; k < kLane; ++k) s = tb.t[0][s & 0xFF] ^ (s >> 8);
      z.t[i][v] = s;
    }
  }
  return z;
}

inline uint32_t ShiftLane(const ZeroShift& z, uint32_t s) {
  return z.t[0][s & 0xFF] ^ z.t[1][(s >> 8) & 0xFF] ^
         z.t[2][(s >> 16) & 0xFF] ^ z.t[3][s >> 24];
}

__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(uint32_t crc,
                                                          const void* data,
                                                          size_t n) {
  static const ZeroShift zshift = BuildZeroShift();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
  uint64_t crc64 = crc;
  while (n >= 3 * kLane) {
    uint64_t a = crc64, b = 0, c = 0;
    for (size_t i = 0; i < kLane; i += 8) {
      uint64_t wa, wb, wc;
      std::memcpy(&wa, p + i, 8);
      std::memcpy(&wb, p + kLane + i, 8);
      std::memcpy(&wc, p + 2 * kLane + i, 8);
      a = __builtin_ia32_crc32di(a, wa);
      b = __builtin_ia32_crc32di(b, wb);
      c = __builtin_ia32_crc32di(c, wc);
    }
    // States compose linearly: serial(A||B||C) = L(L(a)) ^ L(b) ^ c with
    // L = the kLane-zero-bytes advance.
    crc64 = ShiftLane(zshift, ShiftLane(zshift, static_cast<uint32_t>(a))) ^
            ShiftLane(zshift, static_cast<uint32_t>(b)) ^
            static_cast<uint32_t>(c);
    p += 3 * kLane;
    n -= 3 * kLane;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
  return ~crc;
}

bool DetectSse42() { return __builtin_cpu_supports("sse4.2"); }

}  // namespace

namespace internal {
bool Crc32cHardwareEnabled() {
  static const bool enabled = DetectSse42();
  return enabled;
}
}  // namespace internal

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  if (internal::Crc32cHardwareEnabled()) {
    return Crc32cHardware(crc, data, n);
  }
  return internal::Crc32cSoftware(crc, data, n);
}

#else  // portable fallback

namespace internal {
bool Crc32cHardwareEnabled() { return false; }
}  // namespace internal

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  return internal::Crc32cSoftware(crc, data, n);
}

#endif

}  // namespace geocol
