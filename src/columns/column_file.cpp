#include "columns/column_file.h"

#include <cstring>

#include "util/binary_io.h"
#include "util/tempdir.h"

namespace geocol {

namespace {
constexpr char kColumnMagic[4] = {'G', 'C', 'L', '1'};
constexpr char kTableMagic[4] = {'G', 'C', 'T', '1'};
}  // namespace

Status WriteColumnFile(const Column& column, const std::string& path) {
  BinaryWriter w;
  GEOCOL_RETURN_NOT_OK(w.Open(path));
  GEOCOL_RETURN_NOT_OK(w.WriteBytes(kColumnMagic, 4));
  GEOCOL_RETURN_NOT_OK(w.WriteScalar<uint8_t>(static_cast<uint8_t>(column.type())));
  GEOCOL_RETURN_NOT_OK(w.WriteScalar<uint64_t>(column.size()));
  GEOCOL_RETURN_NOT_OK(w.WriteBytes(column.raw_data(), column.raw_size_bytes()));
  return w.Close();
}

namespace {
Status ReadColumnHeader(BinaryReader* r, DataType* type, uint64_t* count) {
  char magic[4];
  GEOCOL_RETURN_NOT_OK(r->ReadBytes(magic, 4));
  if (std::memcmp(magic, kColumnMagic, 4) != 0) {
    return Status::Corruption("bad column file magic");
  }
  uint8_t type_byte = 0;
  GEOCOL_RETURN_NOT_OK(r->ReadScalar(&type_byte));
  if (type_byte >= kNumDataTypes) {
    return Status::Corruption("bad column type byte " +
                              std::to_string(type_byte));
  }
  *type = static_cast<DataType>(type_byte);
  return r->ReadScalar(count);
}
}  // namespace

Result<ColumnPtr> ReadColumnFile(const std::string& path,
                                 const std::string& name) {
  BinaryReader r;
  GEOCOL_RETURN_NOT_OK(r.Open(path));
  DataType type;
  uint64_t count = 0;
  GEOCOL_RETURN_NOT_OK(ReadColumnHeader(&r, &type, &count));
  GEOCOL_ASSIGN_OR_RETURN(uint64_t file_size, r.FileSize());
  uint64_t expected = 4 + 1 + 8 + count * DataTypeSize(type);
  if (file_size != expected) {
    return Status::Corruption("column file size mismatch: " + path);
  }
  auto col = std::make_shared<Column>(name, type);
  col->Reserve(count);
  std::vector<uint8_t> buf(count * DataTypeSize(type));
  GEOCOL_RETURN_NOT_OK(r.ReadBytes(buf.data(), buf.size()));
  col->AppendRaw(buf.data(), count);
  return col;
}

Status AppendColumnFile(const std::string& path, Column* column) {
  BinaryReader r;
  GEOCOL_RETURN_NOT_OK(r.Open(path));
  DataType type;
  uint64_t count = 0;
  GEOCOL_RETURN_NOT_OK(ReadColumnHeader(&r, &type, &count));
  if (type != column->type()) {
    return Status::InvalidArgument("type mismatch appending " + path);
  }
  std::vector<uint8_t> buf(count * DataTypeSize(type));
  GEOCOL_RETURN_NOT_OK(r.ReadBytes(buf.data(), buf.size()));
  column->AppendRaw(buf.data(), count);
  return Status::OK();
}

Status WriteRawDump(const Column& column, const std::string& path) {
  return WriteFileBytes(path, column.raw_data(), column.raw_size_bytes());
}

Status AppendRawDump(const std::string& path, Column* column) {
  GEOCOL_ASSIGN_OR_RETURN(uint64_t size, FileSizeBytes(path));
  size_t width = column->width();
  if (size % width != 0) {
    return Status::Corruption("raw dump size not a multiple of value width: " +
                              path);
  }
  std::vector<uint8_t> buf;
  GEOCOL_RETURN_NOT_OK(ReadFileBytes(path, &buf));
  column->AppendRaw(buf.data(), buf.size() / width);
  return Status::OK();
}

Status WriteTableDir(const FlatTable& table, const std::string& dir) {
  GEOCOL_RETURN_NOT_OK(table.Validate());
  GEOCOL_RETURN_NOT_OK(MakeDir(dir));
  BinaryWriter w;
  GEOCOL_RETURN_NOT_OK(w.Open(dir + "/schema.gct"));
  GEOCOL_RETURN_NOT_OK(w.WriteBytes(kTableMagic, 4));
  GEOCOL_RETURN_NOT_OK(w.WriteString(table.name()));
  GEOCOL_RETURN_NOT_OK(
      w.WriteScalar<uint32_t>(static_cast<uint32_t>(table.num_columns())));
  for (const auto& col : table.columns()) {
    GEOCOL_RETURN_NOT_OK(w.WriteString(col->name()));
    GEOCOL_RETURN_NOT_OK(w.WriteScalar<uint8_t>(static_cast<uint8_t>(col->type())));
  }
  GEOCOL_RETURN_NOT_OK(w.Close());
  for (const auto& col : table.columns()) {
    GEOCOL_RETURN_NOT_OK(WriteColumnFile(*col, dir + "/" + col->name() + ".gcl"));
  }
  return Status::OK();
}

Result<FlatTable> ReadTableDir(const std::string& dir) {
  BinaryReader r;
  GEOCOL_RETURN_NOT_OK(r.Open(dir + "/schema.gct"));
  char magic[4];
  GEOCOL_RETURN_NOT_OK(r.ReadBytes(magic, 4));
  if (std::memcmp(magic, kTableMagic, 4) != 0) {
    return Status::Corruption("bad table manifest magic");
  }
  std::string name;
  GEOCOL_RETURN_NOT_OK(r.ReadString(&name));
  uint32_t ncols = 0;
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ncols));
  if (ncols > 4096) return Status::Corruption("implausible column count");
  FlatTable table(name);
  for (uint32_t i = 0; i < ncols; ++i) {
    std::string col_name;
    GEOCOL_RETURN_NOT_OK(r.ReadString(&col_name));
    uint8_t type_byte = 0;
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&type_byte));
    if (type_byte >= kNumDataTypes) {
      return Status::Corruption("bad column type in manifest");
    }
    GEOCOL_ASSIGN_OR_RETURN(ColumnPtr col,
                            ReadColumnFile(dir + "/" + col_name + ".gcl",
                                           col_name));
    if (col->type() != static_cast<DataType>(type_byte)) {
      return Status::Corruption("manifest/file type mismatch for " + col_name);
    }
    GEOCOL_RETURN_NOT_OK(table.AddColumn(std::move(col)));
  }
  GEOCOL_RETURN_NOT_OK(table.Validate());
  return table;
}

}  // namespace geocol
