// Deterministic synthetic terrain standing in for the AHN2 survey: a
// fractal height field with urban blocks (buildings), vegetation and water
// bodies. Every evaluation is a pure function of (seed, x, y), so tiles can
// be generated independently and reproducibly.
#ifndef GEOCOL_POINTCLOUD_TERRAIN_H_
#define GEOCOL_POINTCLOUD_TERRAIN_H_

#include <cstdint>

#include "geom/geometry.h"

namespace geocol {

/// LAS classification codes used by the generator (ASPRS standard values).
enum LasClass : uint8_t {
  kClassUnclassified = 1,
  kClassGround = 2,
  kClassLowVegetation = 3,
  kClassMediumVegetation = 4,
  kClassHighVegetation = 5,
  kClassBuilding = 6,
  kClassWater = 9,
};

/// Per-sample surface description returned by the terrain model.
struct SurfaceSample {
  double elevation = 0.0;      ///< meters (what the LIDAR return measures)
  uint8_t classification = kClassGround;
  uint16_t intensity = 0;      ///< reflectance proxy
  uint16_t red = 0, green = 0, blue = 0, nir = 0;
  uint8_t num_returns = 1;     ///< >1 under vegetation canopies
};

/// The synthetic Netherlands: gentle fractal relief, polder water bodies,
/// urban districts with rectangular buildings, and vegetated patches.
class TerrainModel {
 public:
  explicit TerrainModel(uint64_t seed) : seed_(seed) {}

  /// Ground elevation (without buildings/vegetation) at (x, y), meters.
  double GroundElevation(double x, double y) const;

  /// Full surface sample: what a LIDAR pulse hitting (x, y) returns.
  SurfaceSample SampleAt(double x, double y) const;

  /// Urbanisation factor in [0, 1] (drives building density).
  double UrbanFactor(double x, double y) const;

  /// True when (x, y) lies in a water body.
  bool IsWater(double x, double y) const;

  uint64_t seed() const { return seed_; }

 private:
  /// Value noise in [0,1] at integer lattice hashed with `salt`.
  double LatticeNoise(int64_t ix, int64_t iy, uint64_t salt) const;
  /// Smooth bilinear value noise at frequency `freq` (cycles per meter).
  double SmoothNoise(double x, double y, double freq, uint64_t salt) const;
  /// Fractal Brownian motion: `octaves` octaves of SmoothNoise.
  double Fbm(double x, double y, double base_freq, int octaves,
             uint64_t salt) const;

  uint64_t seed_;
};

}  // namespace geocol

#endif  // GEOCOL_POINTCLOUD_TERRAIN_H_
