#include "columns/sharded_table.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "columns/column_file.h"
#include "columns/paged_column.h"
#include "sfc/hilbert.h"
#include "util/binary_io.h"
#include "util/crc32c.h"
#include "util/tempdir.h"

namespace geocol {

namespace {

constexpr char kShardManifestMagic[4] = {'G', 'S', 'M', '1'};
constexpr uint32_t kMaxManifestShards = 1u << 16;

/// Gathers `rows` source rows starting at perm[begin] into a fresh column
/// of the same name/type. Type-erased byte copies — no dispatch needed.
ColumnPtr GatherColumn(const Column& src, const std::vector<uint64_t>& perm,
                       size_t begin, size_t rows) {
  auto out = std::make_shared<Column>(src.name(), src.type());
  const uint8_t* data = src.raw_data();
  const size_t w = src.width();
  std::vector<uint8_t> buf(rows * w);
  for (size_t i = 0; i < rows; ++i) {
    std::memcpy(buf.data() + i * w, data + perm[begin + i] * w, w);
  }
  out->AppendRaw(buf.data(), rows);
  return out;
}

}  // namespace

uint64_t ShardedTable::NextLayoutId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

size_t ShardedTable::ShardIndexOf(uint64_t global_row) const {
  // First shard whose base exceeds the row, minus one.
  size_t lo = 0, hi = shards_.size();
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (shards_[mid].base <= global_row) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Schema ShardedTable::schema() const {
  return shards_.empty() ? Schema() : shards_[0].table->schema();
}

Result<std::shared_ptr<ShardedTable>> ShardedTable::Create(
    const FlatTable& source, const ShardingOptions& options) {
  GEOCOL_RETURN_NOT_OK(source.Validate());
  for (const ColumnPtr& col : source.columns()) {
    if (col->paged()) {
      return Status::InvalidArgument(
          "cannot shard paged column '" + col->name() +
          "': load the table resident (or re-import) before sharding");
    }
  }
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr xcol,
                          source.GetColumn(options.x_column));
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr ycol,
                          source.GetColumn(options.y_column));
  if (options.hilbert_order < 1 || options.hilbert_order > 31) {
    return Status::InvalidArgument("hilbert_order must be in [1, 31]");
  }

  auto out = std::make_shared<ShardedTable>();
  out->name_ = source.name();
  out->options_ = options;
  const uint64_t n = source.num_rows();

  // Extent the Hilbert keys scale to. HilbertEncodeScaled clamps
  // zero-extent boxes internally, so an all-equal point cloud still sorts
  // (all keys equal -> original order preserved by the stable sort).
  Box extent;
  if (n > 0) {
    extent = Box(xcol->Stats().min, ycol->Stats().min, xcol->Stats().max,
                 ycol->Stats().max);
  }
  out->extent_ = extent;

  // Sort key per row. Ties (identical curve cells) keep source order, so
  // the layout — and everything downstream: row ids, per-shard imprints,
  // merged results — is deterministic for a given source table.
  std::vector<uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), uint64_t{0});
  if (n > 0) {
    std::vector<uint64_t> keys(n);
    for (uint64_t i = 0; i < n; ++i) {
      keys[i] = HilbertEncodeScaled(xcol->GetDouble(i), ycol->GetDouble(i),
                                    extent, options.hilbert_order);
    }
    std::stable_sort(perm.begin(), perm.end(),
                     [&](uint64_t a, uint64_t b) { return keys[a] < keys[b]; });
  }

  // Near-equal contiguous splits: the first n % K shards get one extra
  // row. K is clamped so no shard is ever forced empty (and an empty
  // table keeps a single empty shard for schema access).
  const uint64_t k = std::min<uint64_t>(std::max<uint32_t>(options.num_shards, 1),
                                        std::max<uint64_t>(n, 1));
  out->options_.num_shards = static_cast<uint32_t>(k);
  const uint64_t per_shard = n / k;
  const uint64_t extra = n % k;
  uint64_t base = 0;
  out->shards_.reserve(k);
  for (uint64_t s = 0; s < k; ++s) {
    const uint64_t rows = per_shard + (s < extra ? 1 : 0);
    ShardSlice slice;
    slice.base = base;
    auto table = std::make_shared<FlatTable>(source.name() + ".shard" +
                                             std::to_string(s));
    for (const ColumnPtr& col : source.columns()) {
      GEOCOL_RETURN_NOT_OK(
          table->AddColumn(GatherColumn(*col, perm, base, rows)));
    }
    GEOCOL_ASSIGN_OR_RETURN(ColumnPtr sx, table->GetColumn(options.x_column));
    GEOCOL_ASSIGN_OR_RETURN(ColumnPtr sy, table->GetColumn(options.y_column));
    for (uint64_t i = 0; i < rows; ++i) {
      slice.bbox.Extend(sx->GetDouble(i), sy->GetDouble(i));
    }
    slice.table = std::move(table);
    out->shards_.push_back(std::move(slice));
    base += rows;
  }
  out->num_rows_ = n;
  return out;
}

bool IsShardedTableDir(const std::string& dir) {
  return PathExists(dir + "/shards.gsm");
}

// Shard directory names carry the layout generation so a re-shard (or a
// live append) writes into fresh directories and never touches the ones
// the live manifest references — the manifest swap stays the only commit
// point even when the new layout has a different shard count.
std::string ShardDirName(size_t i, uint64_t gen) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "shard_%04zu.g%llu", i,
                static_cast<unsigned long long>(gen));
  return buf;
}

Status WriteShardedTableManifest(const std::string& dir,
                                 const ShardedTableManifest& m) {
  BufferWriter b;
  b.WriteBytes(kShardManifestMagic, 4);
  b.WriteScalar<uint64_t>(m.generation);
  b.WriteString(m.table_name);
  b.WriteString(m.x_column);
  b.WriteString(m.y_column);
  b.WriteScalar<uint32_t>(m.hilbert_order);
  b.WriteScalar<double>(m.extent.min_x);
  b.WriteScalar<double>(m.extent.min_y);
  b.WriteScalar<double>(m.extent.max_x);
  b.WriteScalar<double>(m.extent.max_y);
  b.WriteScalar<uint32_t>(static_cast<uint32_t>(m.shards.size()));
  for (const auto& s : m.shards) {
    b.WriteString(s.dirname);
    b.WriteScalar<uint64_t>(s.rows);
    b.WriteScalar<double>(s.bbox.min_x);
    b.WriteScalar<double>(s.bbox.min_y);
    b.WriteScalar<double>(s.bbox.max_x);
    b.WriteScalar<double>(s.bbox.max_y);
  }
  uint32_t crc = Crc32c(b.buffer().data(), b.size());
  b.WriteScalar<uint32_t>(crc);
  return WriteFileAtomic(dir + "/shards.gsm", b.buffer().data(), b.size());
}

Result<ShardedTableManifest> ReadShardedTableManifest(const std::string& dir) {
  const std::string path = dir + "/shards.gsm";
  std::vector<uint8_t> bytes;
  GEOCOL_RETURN_NOT_OK(ReadFileBytes(path, &bytes));
  if (bytes.size() < 8 ||
      std::memcmp(bytes.data(), kShardManifestMagic, 4) != 0) {
    return Status::Corruption("bad shard manifest magic: " + path);
  }
  const size_t body_size = bytes.size() - 4;
  uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + body_size, 4);
  uint32_t computed = Crc32c(bytes.data(), body_size);
  if (stored != computed) {
    return Status::Corruption("shard manifest crc mismatch: " + path);
  }

  ShardedTableManifest m;
  BufferReader r(bytes.data(), body_size);
  char magic[4];
  GEOCOL_RETURN_NOT_OK(r.ReadBytes(magic, 4));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&m.generation));
  GEOCOL_RETURN_NOT_OK(r.ReadString(&m.table_name));
  GEOCOL_RETURN_NOT_OK(r.ReadString(&m.x_column));
  GEOCOL_RETURN_NOT_OK(r.ReadString(&m.y_column));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&m.hilbert_order));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&m.extent.min_x));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&m.extent.min_y));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&m.extent.max_x));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&m.extent.max_y));
  uint32_t num_shards = 0;
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&num_shards));
  // Each shard entry is at least 44 bytes; cap before allocating.
  if (num_shards == 0 || num_shards > kMaxManifestShards ||
      num_shards > r.remaining()) {
    return Status::Corruption("implausible shard count " +
                              std::to_string(num_shards) + ": " + path);
  }
  m.shards.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    ShardedTableManifest::ManifestShard s;
    GEOCOL_RETURN_NOT_OK(r.ReadString(&s.dirname));
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&s.rows));
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&s.bbox.min_x));
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&s.bbox.min_y));
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&s.bbox.max_x));
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&s.bbox.max_y));
    if (s.dirname.empty() || s.dirname == "." || s.dirname == ".." ||
        s.dirname.find('/') != std::string::npos) {
      return Status::Corruption("bad shard dirname in manifest: " + path);
    }
    m.shards.push_back(std::move(s));
  }
  return m;
}

Status WriteShardedTableDir(const ShardedTable& table,
                            const std::string& dir) {
  GEOCOL_RETURN_NOT_OK(MakeDir(dir));
  // Shard column files first — each WriteTableDir is itself crash-safe and
  // generation-stamped, and a reader of the *sharded* layout follows
  // shards.gsm, which still references the previous (fully intact)
  // generation until the swap below.
  ShardedTableManifest m;
  m.table_name = table.name();
  m.x_column = table.x_column();
  m.y_column = table.y_column();
  m.hilbert_order = table.options().hilbert_order;
  m.extent = table.extent();
  uint64_t gen = 1;
  if (PathExists(dir + "/shards.gsm")) {
    auto old = ReadShardedTableManifest(dir);
    if (old.ok()) gen = old->generation + 1;
  }
  m.generation = gen;
  for (size_t i = 0; i < table.num_shards(); ++i) {
    const ShardSlice& slice = table.shard(i);
    ShardedTableManifest::ManifestShard s;
    s.dirname = ShardDirName(i, gen);
    s.rows = slice.table->num_rows();
    s.bbox = slice.bbox;
    GEOCOL_RETURN_NOT_OK(WriteTableDir(*slice.table, dir + "/" + s.dirname));
    m.shards.push_back(std::move(s));
  }
  // The commit point.
  return WriteShardedTableManifest(dir, m);
}

Result<std::shared_ptr<ShardedTable>> ReadShardedTableDir(
    const std::string& dir, bool verify_checksums, bool paged) {
  GEOCOL_ASSIGN_OR_RETURN(ShardedTableManifest m,
                          ReadShardedTableManifest(dir));
  auto out = std::make_shared<ShardedTable>();
  out->set_name(m.table_name);
  out->set_generation(m.generation);
  ShardingOptions options;
  options.num_shards = static_cast<uint32_t>(m.shards.size());
  options.hilbert_order = m.hilbert_order;
  options.x_column = m.x_column;
  options.y_column = m.y_column;

  uint64_t base = 0;
  Schema schema;
  for (size_t i = 0; i < m.shards.size(); ++i) {
    const auto& ms = m.shards[i];
    const std::string shard_dir = dir + "/" + ms.dirname;
    GEOCOL_ASSIGN_OR_RETURN(FlatTable t,
                            paged ? ReadTableDirPaged(shard_dir)
                                  : ReadTableDir(shard_dir, verify_checksums));
    if (t.num_rows() != ms.rows) {
      return Status::Corruption("shard row count mismatch in " + shard_dir +
                                ": manifest says " + std::to_string(ms.rows) +
                                ", columns hold " +
                                std::to_string(t.num_rows()));
    }
    if (!t.schema().HasField(m.x_column) || !t.schema().HasField(m.y_column)) {
      return Status::Corruption("shard missing coordinate columns: " +
                                shard_dir);
    }
    if (i == 0) {
      schema = t.schema();
    } else if (!(schema == t.schema())) {
      return Status::Corruption("shard schema mismatch: " + shard_dir);
    }
    ShardSlice slice;
    slice.base = base;
    slice.bbox = ms.bbox;
    slice.dir = shard_dir;
    slice.table = std::make_shared<FlatTable>(std::move(t));
    base += ms.rows;
    out->shards().push_back(std::move(slice));
  }
  out->FinishLoad(options, m.extent, base);
  return out;
}

void ShardedTable::FinishLoad(const ShardingOptions& options,
                              const Box& extent, uint64_t num_rows) {
  options_ = options;
  extent_ = extent;
  num_rows_ = num_rows;
}

}  // namespace geocol
