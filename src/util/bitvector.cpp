#include "util/bitvector.h"

#include <bit>
#include <cassert>

namespace geocol {

BitVector::BitVector(size_t size, bool initial) { Resize(size, initial); }

void BitVector::Resize(size_t size, bool value) {
  size_ = size;
  words_.assign((size + 63) / 64, value ? ~uint64_t{0} : 0);
  if (value) MaskTail();
}

void BitVector::SetRange(size_t begin, size_t end) {
  assert(begin <= end && end <= size_);
  if (begin >= end) return;
  size_t wb = begin >> 6, we = (end - 1) >> 6;
  uint64_t first_mask = ~uint64_t{0} << (begin & 63);
  uint64_t last_mask = ~uint64_t{0} >> (63 - ((end - 1) & 63));
  if (wb == we) {
    words_[wb] |= first_mask & last_mask;
    return;
  }
  words_[wb] |= first_mask;
  for (size_t w = wb + 1; w < we; ++w) words_[w] = ~uint64_t{0};
  words_[we] |= last_mask;
}

void BitVector::SetAll() {
  for (auto& w : words_) w = ~uint64_t{0};
  MaskTail();
}

void BitVector::ClearAll() {
  for (auto& w : words_) w = 0;
}

size_t BitVector::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += std::popcount(w);
  return n;
}

size_t BitVector::CountInRange(size_t begin, size_t end) const {
  if (end > size_) end = size_;
  if (begin >= end) return 0;
  const size_t wb = begin >> 6, we = (end - 1) >> 6;
  const uint64_t first_mask = ~uint64_t{0} << (begin & 63);
  const uint64_t last_mask = ~uint64_t{0} >> (63 - ((end - 1) & 63));
  if (wb == we) {
    return static_cast<size_t>(
        std::popcount(words_[wb] & first_mask & last_mask));
  }
  size_t n = static_cast<size_t>(std::popcount(words_[wb] & first_mask));
  for (size_t w = wb + 1; w < we; ++w) {
    n += static_cast<size_t>(std::popcount(words_[w]));
  }
  n += static_cast<size_t>(std::popcount(words_[we] & last_mask));
  return n;
}

size_t BitVector::FindNext(size_t from) const {
  if (from >= size_) return size_;
  size_t w = from >> 6;
  uint64_t word = words_[w] & (~uint64_t{0} << (from & 63));
  while (true) {
    if (word != 0) {
      size_t idx = (w << 6) + static_cast<size_t>(std::countr_zero(word));
      return idx < size_ ? idx : size_;
    }
    if (++w >= words_.size()) return size_;
    word = words_[w];
  }
}

void BitVector::And(const BitVector& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void BitVector::Or(const BitVector& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void BitVector::Not() {
  for (auto& w : words_) w = ~w;
  MaskTail();
}

void BitVector::CollectSetBits(std::vector<uint64_t>* out) const {
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      out->push_back((static_cast<uint64_t>(w) << 6) + bit);
      word &= word - 1;
    }
  }
}

void BitVector::CollectSetBitsInRange(size_t begin, size_t end,
                                      std::vector<uint64_t>* out) const {
  if (end > size_) end = size_;
  if (begin >= end) return;
  const size_t wb = begin >> 6, we = (end - 1) >> 6;
  const uint64_t first_mask = ~uint64_t{0} << (begin & 63);
  const uint64_t last_mask = ~uint64_t{0} >> (63 - ((end - 1) & 63));
  for (size_t w = wb; w <= we; ++w) {
    uint64_t word = words_[w];
    if (w == wb) word &= first_mask;
    if (w == we) word &= last_mask;
    // Zero words skip in one compare; set bits pop via ctz.
    while (word != 0) {
      int bit = std::countr_zero(word);
      out->push_back((static_cast<uint64_t>(w) << 6) + bit);
      word &= word - 1;
    }
  }
}

void BitVector::OrWordsAt(size_t bit_offset, const uint64_t* words,
                          size_t nbits) {
  if (nbits == 0) return;
  assert(bit_offset + nbits <= size_);
  const size_t nwords = (nbits + 63) / 64;
  const size_t w0 = bit_offset >> 6;
  const unsigned shift = bit_offset & 63;
  if (shift == 0) {
    for (size_t i = 0; i < nwords; ++i) words_[w0 + i] |= words[i];
    return;
  }
  // Each source word straddles two destination words. The final carry word
  // w0 + nwords is in bounds exactly when the last source word's high part
  // is nonzero, which the bits >= nbits precondition guarantees.
  uint64_t carry = 0;
  for (size_t i = 0; i < nwords; ++i) {
    words_[w0 + i] |= (words[i] << shift) | carry;
    carry = words[i] >> (64 - shift);
  }
  if (carry != 0) words_[w0 + nwords] |= carry;
}

void BitVector::MaskTail() {
  size_t rem = size_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= ~uint64_t{0} >> (64 - rem);
  }
}

}  // namespace geocol
