// Scenario 1 of the demo (§4.1): "GIS navigation" over the point cloud.
//
// Generates an AHN2-like tile archive, loads it through the paper's binary
// loader, then interactively-style zooms through nested regions comparing
// the DBMS approach (imprints engine) against the file-based approach on
// every step — and renders Figure 1 (the point cloud view) as a PPM.
//
// Usage: ahn_navigation [output_dir]
#include <cstdio>
#include <string>

#include "baselines/file_store.h"
#include "core/spatial_engine.h"
#include "examples/render.h"
#include "loader/binary_loader.h"
#include "pointcloud/generator.h"
#include "util/tempdir.h"
#include "util/timer.h"

using namespace geocol;

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : ".";

  // ---- build the survey archive (60k-file AHN2 in miniature).
  TempDir tmp("ahn-nav");
  std::string tiles = tmp.File("tiles");
  std::string scratch = tmp.File("scratch");
  if (!MakeDir(tiles).ok() || !MakeDir(scratch).ok()) return 1;

  AhnGeneratorOptions options;
  options.extent = Box(85000, 444000, 85600, 444600);
  options.point_density = 2.0;
  options.target_points_per_tile = 60000;
  AhnGenerator generator(options);
  auto tiles_written = generator.WriteTileDirectory(tiles, /*compress=*/true);
  if (!tiles_written.ok()) return 1;
  std::printf("survey: %llu LAZ tiles under %s\n",
              static_cast<unsigned long long>(*tiles_written), tiles.c_str());

  // ---- load into the column store via the binary loader (§3.2).
  BinaryLoader loader(scratch);
  LoadStats load_stats;
  auto table_result = loader.LoadDirectory(tiles, &load_stats);
  if (!table_result.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 table_result.status().ToString().c_str());
    return 1;
  }
  auto table = *table_result;
  std::printf("binary loader: %llu points in %.2f s (%.2f Mpts/s)\n",
              static_cast<unsigned long long>(load_stats.points),
              load_stats.TotalSeconds(), load_stats.PointsPerSecond() / 1e6);

  SpatialQueryEngine engine(table);
  auto file_store = FileStore::Open(tiles);
  if (!file_store.ok()) return 1;

  // ---- navigation: zoom into nested regions, timing both systems.
  std::printf("\nzooming (DBMS imprints engine vs file-based solution):\n");
  Box view = options.extent;
  for (int level = 0; level < 5; ++level) {
    Timer t1;
    auto dbms = engine.SelectInBox(view);
    if (!dbms.ok()) return 1;
    double dbms_ms = t1.ElapsedMillis();

    Timer t2;
    FileStore::QueryStats fstats;
    auto file_res = file_store->QueryGeometry(Geometry(view), 0, &fstats);
    if (!file_res.ok()) return 1;
    double file_ms = t2.ElapsedMillis();

    std::printf(
        "  level %d: %7.0fx%-7.0f m  %8llu pts | imprints %8.2f ms | "
        "file-based %8.2f ms (%llu/%llu tiles opened)\n",
        level, view.width(), view.height(),
        static_cast<unsigned long long>(dbms->count()), dbms_ms, file_ms,
        static_cast<unsigned long long>(fstats.files_opened),
        static_cast<unsigned long long>(fstats.files_total));

    // Zoom toward an interesting corner.
    Point c{view.min_x + view.width() * 0.4, view.min_y + view.height() * 0.6};
    double w = view.width() * 0.45, h = view.height() * 0.45;
    view = Box(c.x - w / 2, c.y - h / 2, c.x + w / 2, c.y + h / 2);
  }

  // ---- Figure 1: render the full survey, classification-coloured.
  std::string figure1 = out_dir + "/figure1_point_cloud.ppm";
  Status st = examples::RenderPointCloud(*table, {}, figure1, 900);
  if (!st.ok()) {
    std::fprintf(stderr, "render failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nFigure 1 rendered to %s\n", figure1.c_str());

  // Render the last zoom level as the "navigation result" view.
  auto final_sel = engine.SelectInBox(view);
  if (!final_sel.ok()) return 1;
  if (final_sel->count() > 0) {
    std::string zoom_path = out_dir + "/figure1_zoom.ppm";
    st = examples::RenderPointCloud(*table, final_sel->row_ids, zoom_path, 600);
    if (st.ok()) std::printf("zoom view rendered to %s\n", zoom_path.c_str());
  }
  return 0;
}
