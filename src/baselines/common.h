// Shared result types of the baseline access paths. Baselines that
// physically reorganise points (block store, sorted file store) cannot
// return flat-table row ids, so cross-system agreement is checked on the
// returned coordinates instead.
#ifndef GEOCOL_BASELINES_COMMON_H_
#define GEOCOL_BASELINES_COMMON_H_

namespace geocol {

/// A selected point in world coordinates.
struct PointXYZ {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  bool operator==(const PointXYZ& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
  bool operator<(const PointXYZ& o) const {
    if (x != o.x) return x < o.x;
    if (y != o.y) return y < o.y;
    return z < o.z;
  }
};

}  // namespace geocol

#endif  // GEOCOL_BASELINES_COMMON_H_
