// The multi-tenant query server behind `geocol serve` (DESIGN.md §16):
// a TCP listener (thread per connection) in front of a worker pool of
// sql::Sessions that all share ONE catalog — one engine per table, the
// process-wide QueryResultCache, MetricsRegistry and flight recorder.
//
// Request path: connection thread reads a frame, rate-limits by client
// id, parses AND plans the statement (planning at admission pins a
// live-table epoch per statement), then offers the task to the bounded
// admission queue — a full queue sheds a typed BUSY instead of stalling.
// Workers pop tasks; a popped batchable task pulls every queued task on
// the same engine into a shared-scan batch group (server/batch.h), one
// superset scan fanning bit-identical per-member selections out.
#ifndef GEOCOL_SERVER_SERVER_H_
#define GEOCOL_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gis/catalog.h"
#include "server/admission.h"
#include "server/rate_limiter.h"
#include "sql/session.h"

namespace geocol {
namespace server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; Server::port() reports the real one.
  int port = 0;
  int workers = 2;
  size_t queue_capacity = 128;
  /// Per-client token bucket; <= 0 disables rate limiting.
  double rate_limit_qps = 0;
  double rate_limit_burst = 8;
  /// Bound on distinct client buckets (ids are untrusted input); at the
  /// cap, refilled-to-full buckets are swept, then the stalest goes.
  size_t rate_limit_max_clients = 4096;
  /// Collapse concurrently queued overlapping viewport queries into one
  /// superset scan (server/batch.h).
  bool shared_scan_batching = true;
  size_t max_batch_group = 64;
  /// Request frames over this cap get a typed TOO_LARGE error and the
  /// connection closes (the stream is unrecoverable past an oversized
  /// length prefix).
  uint32_t max_request_bytes = 1u << 20;
  /// Worker session telemetry knobs. cache_budget_bytes is forced to -1:
  /// rebinding an engine's cache is not safe against in-flight queries,
  /// so the budget must be configured before serving starts.
  sql::SessionOptions session;
  /// Test hook: runs on the worker thread after a task (or batch group
  /// leader) is popped, before execution. Blocking here holds the worker,
  /// which is how the drain/saturation tests build deterministic queue
  /// states.
  std::function<void(const QueryTask&)> before_execute_hook;
};

/// Monotonic totals since Start (queue_depth is instantaneous).
struct ServerStats {
  uint64_t connections_total = 0;
  uint64_t queries_ok = 0;
  uint64_t queries_error = 0;
  uint64_t shed_busy = 0;
  uint64_t shed_rate_limited = 0;
  uint64_t plan_errors = 0;
  uint64_t malformed = 0;
  uint64_t oversized = 0;
  uint64_t batches = 0;        ///< shared-scan groups executed (size >= 2)
  uint64_t batch_members = 0;  ///< queries answered from a shared scan
  uint64_t batch_fallbacks = 0;  ///< groups re-executed solo after an error
  uint64_t queue_depth = 0;
  uint64_t queue_max_depth = 0;
  /// Connection slots currently held (live connections plus finished
  /// ones not yet reaped by the accept loop). Instantaneous.
  uint64_t conn_slots = 0;
};

class Server {
 public:
  /// The catalog must outlive the server. Sessions are created per worker
  /// thread; the catalog's engines/caches are shared by all of them.
  Server(Catalog* catalog, ServerOptions options);
  ~Server();  // Stop()

  /// Binds, listens and spawns the accept + worker threads. Fails if
  /// already running or the address cannot be bound. A stopped server can
  /// Start() again (fresh stats high-water marks, same options).
  Status Start();

  /// Graceful shutdown, idempotent: stop accepting, close the admission
  /// queue, join workers (every admitted task completes and its response
  /// is written), then unblock and join connection threads. In-flight
  /// queries are drained, never dropped.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves option port 0), 0 when not running.
  int port() const { return port_; }

  ServerStats stats() const;

 private:
  struct Counters;  // atomic mirror of ServerStats

  void AcceptLoop();
  void ConnectionLoop(int fd, uint64_t conn_index);
  /// Joins connection threads that have finished and recycles their
  /// slots; called from the accept loop so a long-lived server does not
  /// accumulate exited-but-joinable threads.
  void ReapFinishedConns();
  void WorkerLoop();
  /// Executes `group` (>= 2 members) via one shared scan; on any batch
  /// error every member re-runs solo so results and errors match
  /// unbatched execution exactly.
  void ExecuteBatchGroup(sql::Session& session,
                         const std::vector<TaskPtr>& group);

  Catalog* catalog_;
  ServerOptions options_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int port_ = 0;

  std::unique_ptr<AdmissionQueue> queue_;
  std::unique_ptr<TokenBucketLimiter> limiter_;
  std::unique_ptr<Counters> counters_;

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  mutable std::mutex conn_mu_;  // stats() reads the slot lists
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;  // parallel to conn_threads_; -1 once closed
  /// Slots whose thread has finished (exiting threads enqueue their own
  /// index); the accept loop joins these and moves them to the free list.
  std::vector<uint64_t> finished_conns_;
  std::vector<uint64_t> free_conn_slots_;  // reaped slots open for reuse
};

}  // namespace server
}  // namespace geocol

#endif  // GEOCOL_SERVER_SERVER_H_
