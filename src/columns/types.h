// Physical data types of the column store. LAS point attributes map onto
// these fixed-width types; there is deliberately no string column type —
// the point-cloud schema is purely numeric, and vector-layer names live in
// dictionary-encoded integer columns.
#ifndef GEOCOL_COLUMNS_TYPES_H_
#define GEOCOL_COLUMNS_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace geocol {

enum class DataType : uint8_t {
  kInt8 = 0,
  kUInt8,
  kInt16,
  kUInt16,
  kInt32,
  kUInt32,
  kInt64,
  kUInt64,
  kFloat32,
  kFloat64,
};

constexpr int kNumDataTypes = 10;

/// Width of one value in bytes.
constexpr size_t DataTypeSize(DataType t) {
  switch (t) {
    case DataType::kInt8:
    case DataType::kUInt8: return 1;
    case DataType::kInt16:
    case DataType::kUInt16: return 2;
    case DataType::kInt32:
    case DataType::kUInt32:
    case DataType::kFloat32: return 4;
    case DataType::kInt64:
    case DataType::kUInt64:
    case DataType::kFloat64: return 8;
  }
  return 0;
}

const char* DataTypeName(DataType t);

constexpr bool IsFloatingPoint(DataType t) {
  return t == DataType::kFloat32 || t == DataType::kFloat64;
}

constexpr bool IsSigned(DataType t) {
  switch (t) {
    case DataType::kInt8:
    case DataType::kInt16:
    case DataType::kInt32:
    case DataType::kInt64:
    case DataType::kFloat32:
    case DataType::kFloat64: return true;
    default: return false;
  }
}

/// Compile-time mapping from C++ type to DataType.
template <typename T>
struct DataTypeTraits;

#define GEOCOL_DATA_TYPE_TRAIT(cpp_type, enum_value)          \
  template <>                                                 \
  struct DataTypeTraits<cpp_type> {                           \
    static constexpr DataType value = DataType::enum_value;   \
  };

GEOCOL_DATA_TYPE_TRAIT(int8_t, kInt8)
GEOCOL_DATA_TYPE_TRAIT(uint8_t, kUInt8)
GEOCOL_DATA_TYPE_TRAIT(int16_t, kInt16)
GEOCOL_DATA_TYPE_TRAIT(uint16_t, kUInt16)
GEOCOL_DATA_TYPE_TRAIT(int32_t, kInt32)
GEOCOL_DATA_TYPE_TRAIT(uint32_t, kUInt32)
GEOCOL_DATA_TYPE_TRAIT(int64_t, kInt64)
GEOCOL_DATA_TYPE_TRAIT(uint64_t, kUInt64)
GEOCOL_DATA_TYPE_TRAIT(float, kFloat32)
GEOCOL_DATA_TYPE_TRAIT(double, kFloat64)

#undef GEOCOL_DATA_TYPE_TRAIT

template <typename T>
constexpr DataType DataTypeOf() {
  return DataTypeTraits<T>::value;
}

/// Dispatches `fn.template operator()<T>()` on the C++ type behind `t`.
template <typename Fn>
auto DispatchDataType(DataType t, Fn&& fn) {
  switch (t) {
    case DataType::kInt8: return fn.template operator()<int8_t>();
    case DataType::kUInt8: return fn.template operator()<uint8_t>();
    case DataType::kInt16: return fn.template operator()<int16_t>();
    case DataType::kUInt16: return fn.template operator()<uint16_t>();
    case DataType::kInt32: return fn.template operator()<int32_t>();
    case DataType::kUInt32: return fn.template operator()<uint32_t>();
    case DataType::kInt64: return fn.template operator()<int64_t>();
    case DataType::kUInt64: return fn.template operator()<uint64_t>();
    case DataType::kFloat32: return fn.template operator()<float>();
    case DataType::kFloat64: return fn.template operator()<double>();
  }
  __builtin_unreachable();
}

}  // namespace geocol

#endif  // GEOCOL_COLUMNS_TYPES_H_
