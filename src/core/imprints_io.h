// Disk persistence for column imprints. MonetDB keeps imprints alongside
// the BAT heaps so a restarted server does not pay the rebuild; we mirror
// that with a compact sidecar file per column:
//   magic "GIM2" | epoch | rows | values_per_line | num_bins |
//   bounds[num_bins] | dict entries | vectors | crc32c footer.
//
// The sidecar is pure cache: it is written atomically, verified against
// its CRC32C footer and against the live column's epoch/row count on load,
// and a corrupt or stale file is quarantined and rebuilt — never trusted,
// never fatal to the query. Legacy "GIM1" files (no footer) still load.
#ifndef GEOCOL_CORE_IMPRINTS_IO_H_
#define GEOCOL_CORE_IMPRINTS_IO_H_

#include <string>

#include "core/imprints.h"
#include "util/status.h"

namespace geocol {

class ThreadPool;

/// Writes `index` to `path` atomically with a CRC32C footer.
Status WriteImprintsFile(const ImprintsIndex& index, const std::string& path);

/// Reads and checksum-verifies an imprints file. The caller is responsible
/// for checking `built_epoch()` against the live column before trusting
/// the index.
Result<ImprintsIndex> ReadImprintsFile(const std::string& path);

/// Loads the sidecar if it exists, verifies, and matches the column's
/// epoch and row count, else builds fresh (on `pool` when given) and
/// rewrites the sidecar. Degradation is graceful and logged:
///   - corrupt/unreadable sidecar -> quarantined to `path + ".quarantined"`
///     and rebuilt;
///   - stale sidecar (epoch or row-count mismatch) -> rebuilt, overwritten;
///   - failure to persist the rebuilt sidecar -> logged, the fresh index
///     is still returned.
/// The only error path is the build itself failing.
Result<ImprintsIndex> LoadOrBuildImprints(const Column& column,
                                          const std::string& path,
                                          const ImprintsOptions& options = {},
                                          ThreadPool* pool = nullptr);

}  // namespace geocol

#endif  // GEOCOL_CORE_IMPRINTS_IO_H_
