// SQL tokenizer for the GeoColumn dialect.
#ifndef GEOCOL_SQL_LEXER_H_
#define GEOCOL_SQL_LEXER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace geocol {
namespace sql {

enum class TokKind {
  kIdent,   ///< bare identifier / keyword (uppercased in `text`)
  kNumber,  ///< numeric literal (value in `number`)
  kString,  ///< single-quoted string (unescaped content in `text`)
  kSymbol,  ///< punctuation / operator in `text`: ( ) , * = < > <= >= <> ;
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;     ///< uppercased for idents; verbatim for strings
  std::string raw;      ///< original spelling (idents keep case here)
  double number = 0.0;
  size_t offset = 0;    ///< byte offset in the input (for error messages)
};

/// Tokenizes `sql`; the result always ends with a kEnd token.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace sql
}  // namespace geocol

#endif  // GEOCOL_SQL_LEXER_H_
