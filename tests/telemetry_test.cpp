// Telemetry tests: metrics registry exactness under concurrency, histogram
// bucket boundaries, exposition formats, span trees (nesting, critical
// path, Append adoption), engine instrumentation (EXPLAIN ANALYZE span
// attributes vs. registry counters), Chrome trace export, and the trace
// ring. Counter assertions use deltas — the registry is process-global and
// shared with every other test in the binary.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/profile.h"
#include "core/spatial_engine.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/rng.h"

namespace geocol {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::MetricsRegistry;

TEST(MetricsTest, ConcurrentCountersSumExactly) {
  Counter& c = MetricsRegistry::Global().GetCounter("test_concurrent_total");
  const uint64_t before = c.Value();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.Value() - before, kThreads * kPerThread);
}

TEST(MetricsTest, CounterDeltaIncrements) {
  Counter& c = MetricsRegistry::Global().GetCounter("test_delta_total");
  const uint64_t before = c.Value();
  c.Increment(41);
  c.Increment();
  EXPECT_EQ(c.Value() - before, 42u);
}

TEST(MetricsTest, GetCounterReturnsSameObject) {
  Counter& a = MetricsRegistry::Global().GetCounter("test_same_total");
  Counter& b = MetricsRegistry::Global().GetCounter("test_same_total");
  EXPECT_EQ(&a, &b);
}

TEST(MetricsTest, DisabledUpdatesAreDropped) {
  Counter& c = MetricsRegistry::Global().GetCounter("test_disabled_total");
  const uint64_t before = c.Value();
  telemetry::SetMetricsEnabled(false);
  c.Increment(100);
  telemetry::SetMetricsEnabled(true);
  EXPECT_EQ(c.Value(), before);
  c.Increment(1);
  EXPECT_EQ(c.Value() - before, 1u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge& g = MetricsRegistry::Global().GetGauge("test_depth");
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 4);
  g.Set(0);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  // first_bound=10: bounds 10, 40, 160, ... (power of 4), last = +inf.
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("test_bounds_nanos", 10);
  h.Reset();
  EXPECT_EQ(h.BucketUpperBound(0), 10);
  EXPECT_EQ(h.BucketUpperBound(1), 40);
  EXPECT_EQ(h.BucketUpperBound(2), 160);
  EXPECT_EQ(h.BucketUpperBound(Histogram::kNumBuckets - 1),
            std::numeric_limits<int64_t>::max());

  h.Observe(10);   // boundary value lands in its bucket (inclusive bound)
  h.Observe(11);   // one past -> next bucket
  h.Observe(40);
  h.Observe(1);
  EXPECT_EQ(h.BucketCount(0), 2u);  // 1 and 10
  EXPECT_EQ(h.BucketCount(1), 2u);  // 11 and 40
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 62);
}

TEST(MetricsTest, HistogramHugeValueLandsInLastBucket) {
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("test_huge_nanos", 1000);
  h.Reset();
  h.Observe(std::numeric_limits<int64_t>::max() / 2);
  EXPECT_EQ(h.BucketCount(Histogram::kNumBuckets - 1), 1u);
}

TEST(MetricsTest, ConcurrentHistogramCountsExactly) {
  Histogram& h =
      MetricsRegistry::Global().GetHistogram("test_conc_nanos", 1000);
  h.Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(t * 1000 + 1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.Count(), uint64_t{kThreads} * kPerThread);
}

TEST(MetricsTest, PrometheusRendering) {
  MetricsRegistry::Global().GetCounter("test_prom_total").Increment(5);
  MetricsRegistry::Global().GetGauge("test_prom_gauge").Set(3);
  MetricsRegistry::Global().GetHistogram("test_prom_nanos").Observe(1500);
  std::string text = MetricsRegistry::Global().RenderPrometheus();
  EXPECT_NE(text.find("# TYPE test_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_nanos histogram"), std::string::npos);
  EXPECT_NE(text.find("test_prom_nanos_bucket{le=\""), std::string::npos);
  EXPECT_NE(text.find("test_prom_nanos_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_nanos_sum"), std::string::npos);
  EXPECT_NE(text.find("test_prom_nanos_count"), std::string::npos);
}

TEST(MetricsTest, JsonRendering) {
  MetricsRegistry::Global().GetCounter("test_json_total").Increment();
  std::string json = MetricsRegistry::Global().RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test_json_total\""), std::string::npos);
}

TEST(MetricsTest, SummaryLineMentionsCoreCounters) {
  std::string line = telemetry::SummaryLine();
  EXPECT_NE(line.find("[telemetry]"), std::string::npos);
  EXPECT_NE(line.find("queries="), std::string::npos);
  EXPECT_NE(line.find("imprint_scans="), std::string::npos);
  EXPECT_NE(line.find("io_read="), std::string::npos);
}

// ---------------------------------------------------------------- spans

TEST(ProfileTest, OpenCloseBuildsTree) {
  QueryProfile p;
  int32_t root = p.OpenSpan("query");
  int32_t child = p.Add("filter.x", 1000, 100, 10);
  p.CloseSpan(100, 10);
  ASSERT_EQ(p.operators().size(), 2u);
  EXPECT_EQ(p.operators()[root].parent, -1);
  EXPECT_EQ(p.operators()[child].parent, root);
  EXPECT_EQ(p.operators()[root].rows_in, 100u);
  EXPECT_EQ(p.operators()[root].rows_out, 10u);
}

TEST(ProfileTest, NestedSpans) {
  QueryProfile p;
  int32_t a = p.OpenSpan("a");
  int32_t b = p.OpenSpan("b");
  int32_t leaf = p.Add("leaf", 10, 1, 1);
  p.CloseSpan();
  p.CloseSpan();
  EXPECT_EQ(p.operators()[a].parent, -1);
  EXPECT_EQ(p.operators()[b].parent, a);
  EXPECT_EQ(p.operators()[leaf].parent, b);
}

TEST(ProfileTest, TotalNanosCountsLeavesOnly) {
  QueryProfile p;
  p.OpenSpan("wrapper");
  p.AddSpanAt("leaf1", 0, 1000, 0, 0);
  p.AddSpanAt("leaf2", 1000, 2000, 0, 0);
  p.CloseSpan();
  // The wrapper's own duration covers the leaves; only leaves count.
  EXPECT_EQ(p.TotalNanos(), 3000);
}

TEST(ProfileTest, CriticalPathMergesOverlaps) {
  QueryProfile p;
  // Two concurrent roots [0, 1000) and [500, 1500): union = 1500, sum 2000.
  p.AddSpanAt("x", 0, 1000, 0, 0);
  p.AddSpanAt("y", 500, 1000, 0, 0);
  EXPECT_EQ(p.TotalNanos(), 2000);
  EXPECT_EQ(p.CriticalPathNanos(), 1500);
}

TEST(ProfileTest, CriticalPathWithGap) {
  QueryProfile p;
  p.AddSpanAt("a", 0, 100, 0, 0);
  p.AddSpanAt("b", 500, 100, 0, 0);  // disjoint: gap is not covered
  EXPECT_EQ(p.CriticalPathNanos(), 200);
}

TEST(ProfileTest, AppendAdoptsIntoOpenSpan) {
  QueryProfile branch;
  branch.AddSpanAt("branch.op", 0, 100, 5, 3);

  QueryProfile main;
  int32_t filter = main.OpenSpan("filter");
  main.Append(branch);
  main.CloseSpan();
  ASSERT_EQ(main.operators().size(), 2u);
  EXPECT_EQ(main.operators()[1].name, "branch.op");
  EXPECT_EQ(main.operators()[1].parent, filter);
}

TEST(ProfileTest, AttrsRenderInToString) {
  QueryProfile p;
  int32_t s = p.Add("filter.imprints.x", 1000000, 100, 10);
  p.AddAttr(s, "cachelines_probed", uint64_t{42});
  p.AddAttr(s, "false_positive_rate", 0.125);
  std::string text = p.ToString();
  EXPECT_NE(text.find("cachelines_probed=42"), std::string::npos);
  EXPECT_NE(text.find("false_positive_rate="), std::string::npos);
  EXPECT_NE(text.find("TOTAL (sum)"), std::string::npos);
  EXPECT_NE(text.find("WALL (critical path)"), std::string::npos);
}

TEST(ProfileTest, ClearRebasesEpoch) {
  QueryProfile p;
  p.Add("op", 10, 1, 1);
  p.Clear();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.TotalNanos(), 0);
  EXPECT_EQ(p.CriticalPathNanos(), 0);
}

// ------------------------------------------------- engine instrumentation

std::shared_ptr<FlatTable> MakeTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = rng.UniformDouble(0, 1000);
    ys[i] = rng.UniformDouble(0, 1000);
  }
  auto t = std::make_shared<FlatTable>("pc");
  EXPECT_TRUE(t->AddColumn(Column::FromVector("x", xs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("y", ys)).ok());
  return t;
}

uint64_t AttrSum(const QueryProfile& p, const std::string& key) {
  uint64_t sum = 0;
  for (const OperatorProfile& op : p.operators()) {
    for (const auto& kv : op.attrs) {
      if (kv.first == key) sum += std::stoull(kv.second);
    }
  }
  return sum;
}

TEST(EngineTelemetryTest, SpanAttributesMatchCounterDeltas) {
  auto table = MakeTable(50000, 7);
  EngineOptions opts;
  opts.num_threads = 1;
  SpatialQueryEngine eng(table, opts);

  // Warm the imprint cache so the measured query does scans only.
  ASSERT_TRUE(eng.SelectInBox(Box(0, 0, 10, 10)).ok());

  MetricsRegistry& reg = MetricsRegistry::Global();
  const uint64_t scans0 =
      reg.GetCounter("geocol_imprint_scans_total").Value();
  const uint64_t probed0 =
      reg.GetCounter("geocol_imprint_cachelines_probed_total").Value();
  const uint64_t checked0 =
      reg.GetCounter("geocol_imprint_values_checked_total").Value();
  const uint64_t selected0 =
      reg.GetCounter("geocol_imprint_rows_selected_total").Value();
  const uint64_t queries0 = reg.GetCounter("geocol_queries_total").Value();

  auto res = eng.SelectInBox(Box(100, 100, 400, 500));
  ASSERT_TRUE(res.ok());

  EXPECT_EQ(reg.GetCounter("geocol_imprint_scans_total").Value() - scans0,
            2u);  // x and y
  EXPECT_EQ(reg.GetCounter("geocol_queries_total").Value() - queries0, 1u);

  // EXPLAIN ANALYZE's span attributes must agree with `geocol metrics`:
  // the per-span numbers sum to exactly the registry counter deltas.
  EXPECT_EQ(AttrSum(res->profile, "cachelines_probed"),
            reg.GetCounter("geocol_imprint_cachelines_probed_total").Value() -
                probed0);
  EXPECT_EQ(AttrSum(res->profile, "values_checked"),
            reg.GetCounter("geocol_imprint_values_checked_total").Value() -
                checked0);
  EXPECT_EQ(AttrSum(res->profile, "rows_selected"),
            reg.GetCounter("geocol_imprint_rows_selected_total").Value() -
                selected0);
}

TEST(EngineTelemetryTest, FilterSpanParentsImprintOps) {
  auto table = MakeTable(30000, 8);
  EngineOptions opts;
  opts.num_threads = 4;  // exercise the morsel-parallel merge path
  SpatialQueryEngine eng(table, opts);
  auto res = eng.SelectInBox(Box(50, 50, 600, 600));
  ASSERT_TRUE(res.ok());

  const auto& ops = res->profile.operators();
  int32_t filter = -1;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].name == "filter") filter = static_cast<int32_t>(i);
  }
  ASSERT_GE(filter, 0);
  int children = 0;
  for (const auto& op : ops) {
    if (op.parent == filter) {
      ++children;
      EXPECT_EQ(op.name.rfind("filter.", 0), 0u) << op.name;
    }
  }
  EXPECT_GE(children, 2);  // x and y imprint scans at least
  EXPECT_GT(res->profile.CriticalPathNanos(), 0);
}

// ------------------------------------------------------------ trace export

TEST(TraceTest, ChromeTraceShape) {
  QueryProfile p;
  int32_t root = p.OpenSpan("query");
  p.AddSpanAt("filter.imprints.x", 10, 500, 100, 10, "mask");
  p.AddAttr(1, "cachelines_probed", uint64_t{3});
  p.CloseSpan(100, 10);
  (void)root;

  std::string json = telemetry::ProfileToChromeTrace(p, "test query");
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"filter.imprints.x\""), std::string::npos);
  EXPECT_NE(json.find("\"cachelines_probed\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness proxy).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceTest, JsonlOneObjectPerSpan) {
  QueryProfile p;
  p.Add("a", 10, 1, 1);
  p.Add("b", 20, 2, 2);
  std::string jsonl = telemetry::ProfileToJsonl(p, "q");
  size_t lines = std::count(jsonl.begin(), jsonl.end(), '\n');
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(jsonl.front(), '{');
}

TEST(TraceTest, RingKeepsLastCapacity) {
  telemetry::TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    telemetry::TraceRecord r;
    r.query = "q" + std::to_string(i);
    r.wall_nanos = i;
    ring.Record(std::move(r));
  }
  auto snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().query, "q6");
  EXPECT_EQ(snap.back().query, "q9");
  telemetry::TraceRecord latest;
  ASSERT_TRUE(ring.Latest(&latest));
  EXPECT_EQ(latest.query, "q9");
  ring.Clear();
  EXPECT_FALSE(ring.Latest(&latest));
  EXPECT_TRUE(ring.Snapshot().empty());
}

}  // namespace
}  // namespace geocol
