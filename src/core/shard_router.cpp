#include "core/shard_router.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <thread>

#include "columns/column_file.h"
#include "columns/types.h"
#include "sfc/hilbert.h"
#include "telemetry/heat.h"
#include "telemetry/metrics.h"
#include "util/timer.h"

namespace geocol {

namespace {

uint32_t EffectiveThreads(uint32_t requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<uint32_t>(hw);
}

/// Index of the shard containing `row` given the base offsets.
size_t ShardIndexFor(const std::vector<uint64_t>& bases, uint64_t row) {
  size_t lo = 0, hi = bases.size();
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (bases[mid] <= row) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void AccumulateFilterStats(const ImprintScanStats& in, ImprintScanStats* out) {
  out->lines_total += in.lines_total;
  out->lines_candidate += in.lines_candidate;
  out->lines_full += in.lines_full;
  out->values_checked += in.values_checked;
  out->rows_selected += in.rows_selected;
  out->rows_full += in.rows_full;
  out->workers = std::max(out->workers, in.workers);
}

void AccumulateRefineStats(const RefinementStats& in, RefinementStats* out) {
  out->candidates += in.candidates;
  out->accepted += in.accepted;
  out->cells_total += in.cells_total;
  out->cells_nonempty += in.cells_nonempty;
  out->cells_inside += in.cells_inside;
  out->cells_outside += in.cells_outside;
  out->cells_boundary += in.cells_boundary;
  out->exact_tests += in.exact_tests;
  // Per-shard refinement grids have their own frames; a merged grid shape
  // would be meaningless, so the dimensions stay 0 for K > 1 (the
  // single-scanned-shard path copies stats verbatim instead).
  out->workers = std::max(out->workers, in.workers);
}

}  // namespace

ShardRouter::ShardRouter(std::shared_ptr<ShardedTable> table,
                         EngineOptions options)
    : table_(std::move(table)), options_(options) {
  uint32_t threads = EffectiveThreads(options_.num_threads);
  if (threads > 1) {
    // The calling thread participates in every parallel loop, so the pool
    // only needs threads-1 workers. Shard engines borrow this pool;
    // nested ParallelFor (scatter over shards, morsels within a shard) is
    // safe and keeps all workers busy.
    pool_ = std::make_unique<ThreadPool>(threads - 1);
  }
  shards_.reserve(table_->num_shards());
  bases_.reserve(table_->num_shards());
  start_keys_.reserve(table_->num_shards());
  // Routing keys for live appends: shard i owns Hilbert keys in
  // [start_keys_[i], start_keys_[i+1]). The first row of a shard is the
  // smallest key it holds (shards are contiguous runs of the sorted row
  // space), and appends never change a shard's first row, so these are
  // stable for the router's lifetime. A rowless shard inherits its
  // predecessor's key, which routes nothing away from non-empty shards.
  uint64_t prev_key = 0;
  for (size_t i = 0; i < table_->num_shards(); ++i) {
    const ShardSlice& slice = table_->shard(i);
    bases_.push_back(slice.base);
    shards_.push_back(std::make_shared<LocalShard>(
        slice, options_, table_->x_column(), table_->y_column(),
        pool_.get()));
    uint64_t key = prev_key;
    if (i > 0 && slice.table->num_rows() > 0) {
      ColumnPtr x = slice.table->column(table_->x_column());
      ColumnPtr y = slice.table->column(table_->y_column());
      if (x != nullptr && y != nullptr) {
        key = HilbertEncodeScaled(x->GetDouble(0), y->GetDouble(0),
                                  table_->extent(),
                                  table_->options().hilbert_order);
      }
    }
    // Shard 0 owns everything below shard 1's first key, hence key 0.
    start_keys_.push_back(i == 0 ? 0 : key);
    prev_key = start_keys_.back();
  }
  cache_owner_ = options_.cache.instance;
  set_cache_budget(options_.cache.budget_bytes);
}

Schema ShardRouter::schema() const {
  std::shared_lock<std::shared_mutex> lock(shards_mu_);
  return table_->schema();
}

ShardsView ShardRouter::View() const {
  std::shared_lock<std::shared_mutex> lock(shards_mu_);
  ShardsView view;
  view.shards = shards_;
  view.bases = bases_;
  view.total_rows = table_->num_rows();
  view.version = view_version_;
  return view;
}

void ShardRouter::set_cache_budget(uint64_t budget_bytes) {
  if (budget_bytes == options_.cache.budget_bytes &&
      (budget_bytes == 0) == (cache_ == nullptr)) {
    return;
  }
  options_.cache.budget_bytes = budget_bytes;
  if (budget_bytes == 0) {
    cache_ = nullptr;
    return;
  }
  cache_ = cache_owner_ != nullptr ? cache_owner_.get()
                                   : &cache::QueryResultCache::Global();
  cache_->GrowBudget(budget_bytes);
}

uint64_t ShardRouter::IndexStorageBytes() const {
  ShardsView view = View();
  uint64_t total = 0;
  for (const auto& shard : view.shards) total += shard->IndexStorageBytes();
  return total;
}

Result<std::string> ShardRouter::SelectionKey(
    const ShardsView& view, const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic) const {
  cache::KeyBuilder kb("ssel");
  // The pinned shard set: a re-shard produces a new layout id, an append
  // publishes a new table version for each affected shard (fresh version
  // token) and shifts the bases of the shards behind it — either way the
  // key changes and stale entries age out by construction.
  kb.AppendU64(table_->layout_id());
  kb.AppendU32(static_cast<uint32_t>(view.shards.size()));
  kb.Append(table_->x_column());
  kb.Append(table_->y_column());
  for (size_t i = 0; i < view.shards.size(); ++i) {
    const auto& shard = view.shards[i];
    kb.AppendU64(shard->VersionToken());
    kb.AppendU64(view.bases[i]);
    GEOCOL_ASSIGN_OR_RETURN(uint64_t xe,
                            shard->ColumnEpoch(table_->x_column()));
    GEOCOL_ASSIGN_OR_RETURN(uint64_t ye,
                            shard->ColumnEpoch(table_->y_column()));
    kb.AppendU64(xe);
    kb.AppendU64(ye);
  }
  kb.AppendGeometry(geometry);
  kb.AppendDouble(buffer);
  kb.AppendU64(thematic.size());
  for (const AttributeRange& attr : thematic) {
    kb.Append(attr.column);
    for (const auto& shard : view.shards) {
      GEOCOL_ASSIGN_OR_RETURN(uint64_t e, shard->ColumnEpoch(attr.column));
      kb.AppendU64(e);
    }
    kb.AppendDouble(attr.lo);
    kb.AppendDouble(attr.hi);
  }
  // Result-shaping knobs, mirroring the engine's selection key.
  kb.AppendU32(options_.use_imprints ? 1u : 0u);
  kb.AppendU32(num_effective_threads());
  kb.AppendU32(options_.imprints.max_bins);
  kb.AppendU32(options_.imprints.sample_size);
  kb.AppendU64(options_.imprints.seed);
  kb.AppendU32(options_.imprints.cacheline_bytes);
  kb.AppendU64(options_.refine.target_points_per_cell);
  kb.AppendU32(options_.refine.max_cells_per_axis);
  kb.AppendU32(options_.refine.use_grid ? 1u : 0u);
  return kb.Take();
}

Result<SelectionResult> ShardRouter::SelectInBox(const Box& box) {
  return Execute(View(), Geometry(box), 0.0, {});
}

Result<SelectionResult> ShardRouter::SelectInGeometry(
    const Geometry& geometry) {
  return Execute(View(), geometry, 0.0, {});
}

Result<SelectionResult> ShardRouter::Select(
    const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic) {
  return Execute(View(), geometry, buffer, thematic);
}

Result<SelectionResult> ShardRouter::Select(
    const ShardsView& view, const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic) {
  return Execute(view, geometry, buffer, thematic);
}

Result<SelectionResult> ShardRouter::Execute(
    const ShardsView& view, const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic) {
  SelectionResult result;
  const uint64_t total_rows = view.total_rows;
  if (total_rows == 0) return result;

  Box env = geometry.Envelope();
  if (buffer > 0) env = env.Expanded(buffer);
  if (env.empty()) return result;

  Timer query_timer;

  // ---- Cache tier (a): an exact repeat against this exact shard set
  // replays the merged row ids and stats.
  std::string cache_key;
  if (cache_ != nullptr) {
    GEOCOL_ASSIGN_OR_RETURN(cache_key,
                            SelectionKey(view, geometry, buffer, thematic));
    if (auto hit = cache_->LookupSelection(cache_key)) {
      result.row_ids = hit->row_ids;
      result.filter_x = hit->filter_x;
      result.filter_y = hit->filter_y;
      result.refine = hit->refine;
      int32_t span =
          result.profile.Add("cache.hit", query_timer.ElapsedNanos(),
                             total_rows, result.row_ids.size());
      result.profile.AddAttr(span, "cache_hit", "selection");
      return result;
    }
  }
  auto store_selection = [&]() {
    if (cache_ == nullptr) return;
    if (!cache_->ShouldAdmit(cache::Tier::kSelection, cache_key,
                             result.row_ids.size() * sizeof(uint64_t))) {
      return;
    }
    auto value = std::make_shared<cache::CachedSelection>();
    value->row_ids = result.row_ids;
    value->filter_x = result.filter_x;
    value->filter_y = result.filter_y;
    value->refine = result.refine;
    cache_->InsertSelection(cache_key, std::move(value));
  };

  // ---- Prune: classify every shard against the query envelope before
  // any imprint is consulted or built. Three outcomes:
  //   pruned  — bbox misses the envelope; the shard contributes nothing.
  //   covered — an unbuffered-equivalent box query fully contains the
  //             shard's bbox and there are no thematic filters, so every
  //             row qualifies (bbox-as-zonemap): the shard's full id range
  //             is written straight into the merged result without
  //             touching a single column. A covered shard contributes no
  //             filter/refine stats — nothing was scanned.
  //   scanned — everything else runs the shard engine's filter + refine.
  // Pruning is the headline win of sharding: a clustered viewport query
  // touches a handful of shards and never allocates whole-table state.
  GEOCOL_METRIC_COUNTER(c_pruned, "geocol_shards_pruned_total");
  GEOCOL_METRIC_COUNTER(c_scanned, "geocol_shards_scanned_total");
  GEOCOL_METRIC_COUNTER(c_covered, "geocol_shards_covered_total");
  // A box with a positive buffer covers a shard iff the raw box does (the
  // buffer only enlarges the qualifying region).
  const bool coverable = thematic.empty() && geometry.is_box();
  struct ShardWork {
    size_t shard;
    int32_t branch;  ///< index into branches, or -1 for a covered shard
  };
  std::vector<ShardWork> work;
  std::vector<size_t> scanned;
  size_t num_covered = 0;
  work.reserve(view.shards.size());
  scanned.reserve(view.shards.size());
  for (size_t i = 0; i < view.shards.size(); ++i) {
    const Box& bbox = view.shards[i]->bbox();
    if (!bbox.Intersects(env)) continue;
    if (coverable && geometry.box().Contains(bbox)) {
      work.push_back({i, -1});
      ++num_covered;
    } else {
      work.push_back({i, static_cast<int32_t>(scanned.size())});
      scanned.push_back(i);
    }
  }
  // Covered shards count as scanned in the headline counters (they were
  // answered, not skipped), and separately in the covered counter.
  c_scanned.Increment(work.size());
  c_pruned.Increment(view.shards.size() - work.size());
  c_covered.Increment(num_covered);

  int32_t route_span = result.profile.OpenSpan("shard.route");

  // ---- Scatter: each surviving shard runs its own two-step filter +
  // refine into branch-local state; all shard engines share one pool, so
  // morsels from different shards interleave freely.
  struct ShardBranch {
    SelectionResult sel;
    QueryProfile profile;
    Status status;
  };
  std::vector<ShardBranch> branches(scanned.size());
  auto run_shard = [&](size_t j) {
    const size_t s = scanned[j];
    ShardBranch& b = branches[j];
    int32_t span = b.profile.OpenSpan("shard.scan");
    b.profile.AddAttr(span, "shard", static_cast<uint64_t>(s));
    auto r = view.shards[s]->Select(geometry, buffer, thematic);
    b.status = r.status();
    if (r.ok()) {
      b.sel = std::move(*r);
      b.profile.Append(b.sel.profile);
      char detail[64];
      std::snprintf(detail, sizeof(detail), "shard %zu base=%llu", s,
                    static_cast<unsigned long long>(view.bases[s]));
      b.profile.CloseSpan(view.shards[s]->num_rows(), b.sel.row_ids.size(),
                          detail);
    } else {
      b.profile.CloseSpan(0, 0);
    }
  };
  if (pool_ != nullptr && branches.size() > 1) {
    pool_->ParallelFor(branches.size(), run_shard);
  } else {
    for (size_t j = 0; j < branches.size(); ++j) run_shard(j);
  }
  for (const ShardBranch& b : branches) {
    GEOCOL_RETURN_NOT_OK(b.status);
  }

  // ---- Gather: merge in shard order. Shards are contiguous runs of the
  // Hilbert-sorted row space, so emitting base-offset local ids (or, for a
  // covered shard, the shard's whole id range) in shard order yields the
  // ascending global id list the unsharded engine over the sorted table
  // produces. Stats: a single scanned shard's stats pass through verbatim
  // (making K = 1 bit-identical to unsharded as long as the query didn't
  // cover the shard); multiple shards merge field-wise in shard order;
  // covered shards contribute nothing.
  uint64_t merged = 0;
  for (const ShardWork& w : work) {
    merged += w.branch < 0 ? view.shards[w.shard]->num_rows()
                           : branches[w.branch].sel.row_ids.size();
  }
  result.row_ids.resize(merged);
  uint64_t* out = result.row_ids.data();
  for (const ShardWork& w : work) {
    const uint64_t base = view.bases[w.shard];
    if (w.branch < 0) {
      const uint64_t rows = view.shards[w.shard]->num_rows();
      for (uint64_t r = 0; r < rows; ++r) out[r] = base + r;
      out += rows;
      int32_t span = result.profile.Add("shard.covered", 0, rows, rows);
      result.profile.AddAttr(span, "shard",
                             static_cast<uint64_t>(w.shard));
      telemetry::TouchShardHeat(table_->name(),
                                static_cast<uint32_t>(w.shard),
                                /*covered=*/true, rows);
      continue;
    }
    const ShardBranch& b = branches[w.branch];
    const uint64_t* in = b.sel.row_ids.data();
    const size_t n = b.sel.row_ids.size();
    for (size_t i = 0; i < n; ++i) out[i] = base + in[i];
    out += n;
    telemetry::TouchShardHeat(table_->name(),
                              static_cast<uint32_t>(w.shard),
                              /*covered=*/false, n);
    result.profile.Append(b.profile);
    if (branches.size() == 1 && num_covered == 0) {
      result.filter_x = b.sel.filter_x;
      result.filter_y = b.sel.filter_y;
      result.refine = b.sel.refine;
    } else {
      AccumulateFilterStats(b.sel.filter_x, &result.filter_x);
      AccumulateFilterStats(b.sel.filter_y, &result.filter_y);
      AccumulateRefineStats(b.sel.refine, &result.refine);
    }
  }
  char detail[96];
  std::snprintf(detail, sizeof(detail),
                "scanned %zu/%zu shards (%zu pruned, %zu covered)",
                work.size(), view.shards.size(),
                view.shards.size() - work.size(), num_covered);
  result.profile.CloseSpan(total_rows, result.row_ids.size(), detail);
  result.profile.AddAttr(route_span, "shards_total",
                         static_cast<uint64_t>(view.shards.size()));
  result.profile.AddAttr(route_span, "shards_scanned",
                         static_cast<uint64_t>(work.size()));
  result.profile.AddAttr(route_span, "shards_pruned",
                         static_cast<uint64_t>(view.shards.size() -
                                               work.size()));
  result.profile.AddAttr(route_span, "shards_covered",
                         static_cast<uint64_t>(num_covered));
  store_selection();
  return result;
}

Result<double> ShardRouter::AggregateGlobalRows(
    const ShardsView& view, const std::vector<uint64_t>& rows,
    const std::string& column, AggKind kind, ThreadPool* pool) const {
  if (kind == AggKind::kCount) return static_cast<double>(rows.size());
  std::vector<ColumnPtr> columns;
  columns.reserve(view.shards.size());
  for (const auto& shard : view.shards) {
    GEOCOL_ASSIGN_OR_RETURN(ColumnPtr col, shard->GetColumn(column));
    columns.push_back(std::move(col));
  }
  double out = std::nan("");
  if (rows.empty()) return out;
  bool any_paged = false;
  for (const ColumnPtr& col : columns) any_paged |= col->paged();
  Status gather_status;
  DispatchDataType(columns[0]->type(), [&]<typename T>() {
    if (!any_paged) {
      std::vector<std::span<const T>> spans;
      spans.reserve(columns.size());
      for (const ColumnPtr& col : columns) spans.push_back(col->Values<T>());
      out = AggregateValues<T>(rows, kind, pool, [&](size_t i) {
        const uint64_t r = rows[i];
        size_t s = ShardIndexFor(view.bases, r);
        return spans[s][r - view.bases[s]];
      });
      return;
    }
    // Paged shards: gather the selected values once, re-pinning only when
    // the walk leaves the current chunk or shard. The accumulator then
    // runs over positions exactly as in the resident branch, so sharded
    // paged aggregates stay bit-identical to the resident ones.
    std::vector<T> gathered(rows.size());
    ColumnChunkPin pin;
    size_t pin_shard = SIZE_MAX;
    for (size_t i = 0; i < rows.size(); ++i) {
      const uint64_t r = rows[i];
      const size_t s = ShardIndexFor(view.bases, r);
      const uint64_t local = r - view.bases[s];
      const Column& col = *columns[s];
      if (!col.paged()) {
        gathered[i] = col.Values<T>()[local];
        continue;
      }
      if (s != pin_shard || pin.keepalive == nullptr ||
          local < pin.first_row || local >= pin.first_row + pin.row_count) {
        auto pinned = col.PinChunk(local / col.chunk_rows());
        if (!pinned.ok()) {
          gather_status = pinned.status();
          return;
        }
        pin = std::move(*pinned);
        pin_shard = s;
      }
      gathered[i] = pin.values<T>()[local - pin.first_row];
    }
    out = AggregateValues<T>(rows, kind, pool,
                             [&](size_t i) { return gathered[i]; });
  });
  GEOCOL_RETURN_NOT_OK(gather_status);
  return out;
}

Result<double> ShardRouter::AggregateGlobalRows(
    const std::vector<uint64_t>& rows, const std::string& column,
    AggKind kind, ThreadPool* pool) const {
  return AggregateGlobalRows(View(), rows, column, kind, pool);
}

Result<double> ShardRouter::Aggregate(
    const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic, const std::string& column,
    AggKind kind) {
  // One view pins the whole operation: the key, the selection and the
  // per-shard value reads all see the same shard set even while appends
  // publish.
  ShardsView view = View();
  // Cache tier (c): selection key + the aggregated column's per-shard
  // epochs + the aggregate kind. COUNT falls out of tier (a).
  std::string agg_key;
  if (cache_ != nullptr && kind != AggKind::kCount) {
    GEOCOL_ASSIGN_OR_RETURN(std::string sel_key,
                            SelectionKey(view, geometry, buffer, thematic));
    cache::KeyBuilder kb("agg");
    kb.Append(sel_key);
    kb.Append(column);
    for (const auto& shard : view.shards) {
      GEOCOL_ASSIGN_OR_RETURN(uint64_t e, shard->ColumnEpoch(column));
      kb.AppendU64(e);
    }
    kb.AppendU32(static_cast<uint32_t>(kind));
    agg_key = kb.Take();
    double cached;
    if (cache_->LookupAggregate(agg_key, &cached)) return cached;
  }
  GEOCOL_ASSIGN_OR_RETURN(SelectionResult sel,
                          Execute(view, geometry, buffer, thematic));
  if (kind == AggKind::kCount) {
    return static_cast<double>(sel.row_ids.size());
  }
  GEOCOL_ASSIGN_OR_RETURN(
      double value, AggregateGlobalRows(view, sel.row_ids, column, kind,
                                        pool_.get()));
  if (cache_ != nullptr) cache_->InsertAggregate(agg_key, value);
  return value;
}

Status ShardRouter::Append(const FlatTable& batch) {
  GEOCOL_RETURN_NOT_OK(batch.Validate());
  if (batch.num_rows() == 0) return Status::OK();
  GEOCOL_METRIC_COUNTER(c_commits, "geocol_shard_append_commits_total");
  GEOCOL_METRIC_COUNTER(c_rows, "geocol_shard_append_rows_total");
  GEOCOL_METRIC_COUNTER(c_shards, "geocol_shard_append_shards_total");

  // One appender at a time; routing and the COW column builds below run
  // outside shards_mu_, so in-flight queries never wait on an append.
  // table_'s slices are only mutated by this function (under the view
  // lock), so reading them here — holding append_mu_ — is stable.
  std::lock_guard<std::mutex> append_lock(append_mu_);
  if (!(batch.schema() == table_->schema())) {
    return Status::InvalidArgument("batch schema differs from sharded table");
  }
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr bx, batch.GetColumn(table_->x_column()));
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr by, batch.GetColumn(table_->y_column()));

  // ---- Route: batch row -> owning shard by Hilbert start keys. The
  // extent and curve order are fixed at layout creation (out-of-extent
  // points clamp to the boundary cells), so routing is stable across the
  // table's whole append history.
  const uint64_t n = batch.num_rows();
  std::vector<std::vector<uint64_t>> rows_for(start_keys_.size());
  for (uint64_t r = 0; r < n; ++r) {
    const uint64_t key =
        HilbertEncodeScaled(bx->GetDouble(r), by->GetDouble(r),
                            table_->extent(),
                            table_->options().hilbert_order);
    const size_t s = static_cast<size_t>(
        std::upper_bound(start_keys_.begin(), start_keys_.end(), key) -
        start_keys_.begin()) - 1;
    rows_for[s].push_back(r);
  }

  // ---- Build: extend every affected shard's columns copy-on-write.
  // Untouched shards are not looked at, let alone copied.
  struct Replacement {
    size_t shard = 0;
    std::shared_ptr<FlatTable> table;
    Box bbox;
    std::string dir;  ///< new shard directory; "" while memory-only
  };
  std::vector<Replacement> reps;
  std::vector<uint8_t> gather;
  for (size_t s = 0; s < rows_for.size(); ++s) {
    const std::vector<uint64_t>& rows = rows_for[s];
    if (rows.empty()) continue;
    const ShardSlice& slice = table_->shard(s);
    Replacement rep;
    rep.shard = s;
    rep.bbox = slice.bbox;
    for (uint64_t r : rows) {
      rep.bbox.Extend(bx->GetDouble(r), by->GetDouble(r));
    }
    auto next = std::make_shared<FlatTable>(slice.table->name());
    for (const ColumnPtr& base : slice.table->columns()) {
      GEOCOL_ASSIGN_OR_RETURN(ColumnPtr add, batch.GetColumn(base->name()));
      const size_t w = base->width();
      gather.resize(rows.size() * w);
      double add_min = std::numeric_limits<double>::infinity();
      double add_max = -std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < rows.size(); ++i) {
        std::memcpy(gather.data() + i * w, add->raw_data() + rows[i] * w, w);
        const double v = add->GetDouble(rows[i]);
        add_min = std::min(add_min, v);
        add_max = std::max(add_max, v);
      }
      GEOCOL_ASSIGN_OR_RETURN(
          ColumnPtr appended,
          Column::CloneAppend(base, gather.data(), rows.size()));
      // Seed the stats cache (base stats ∪ batch extremes) so neither the
      // bbox maintenance here nor a first query rescans the whole shard.
      if (base->empty()) {
        appended->SetCachedStats(add_min, add_max);
      } else {
        const ColumnStats& bs = base->Stats();
        appended->SetCachedStats(std::min(bs.min, add_min),
                                 std::max(bs.max, add_max));
      }
      GEOCOL_RETURN_NOT_OK(next->AddColumn(std::move(appended)));
    }
    GEOCOL_RETURN_NOT_OK(next->Validate());
    rep.table = std::move(next);
    reps.push_back(std::move(rep));
  }

  // ---- Durability first (layouts loaded from / persisted to disk carry
  // per-slice dirs): replacement shard tables go into next-generation
  // directories — never touching the ones the live manifest references —
  // and the shards.gsm swap is the one crash-commit point for the whole
  // batch. Before it, reopen sees the old epoch; after it, the new one.
  const bool persisted = !table_->shard(0).dir.empty();
  uint64_t new_gen = 0;
  std::string root;
  if (persisted) {
    const std::string& dir0 = table_->shard(0).dir;
    const size_t slash = dir0.find_last_of('/');
    if (slash == std::string::npos) {
      return Status::Internal("unexpected shard dir layout: " + dir0);
    }
    root = dir0.substr(0, slash);
    GEOCOL_ASSIGN_OR_RETURN(ShardedTableManifest m,
                            ReadShardedTableManifest(root));
    if (m.shards.size() != table_->num_shards()) {
      return Status::Corruption("on-disk shard count drifted from layout: " +
                                root);
    }
    new_gen = m.generation + 1;
    m.generation = new_gen;
    for (Replacement& rep : reps) {
      ShardedTableManifest::ManifestShard& ms = m.shards[rep.shard];
      ms.dirname = ShardDirName(rep.shard, new_gen);
      ms.rows = rep.table->num_rows();
      ms.bbox = rep.bbox;
      rep.dir = root + "/" + ms.dirname;
      GEOCOL_RETURN_NOT_OK(WriteTableDir(*rep.table, rep.dir));
    }
    // The commit point.
    GEOCOL_RETURN_NOT_OK(WriteShardedTableManifest(root, m));
  }

  // ---- Publish: build the replacement shard handles (sharing each
  // retired shard's imprint manager, so appended columns extend their
  // lineage base's imprints incrementally), then swap them in under the
  // view lock. Readers pinned to older views keep their shard set alive
  // through the shared_ptrs; new views see the whole batch.
  std::vector<std::shared_ptr<Shard>> replacements;
  replacements.reserve(reps.size());
  for (const Replacement& rep : reps) {
    // The router only ever builds LocalShards (the remote evolution would
    // route appends very differently), so the downcast is structural.
    auto old = std::static_pointer_cast<LocalShard>(shards_[rep.shard]);
    ShardSlice next;
    next.table = rep.table;
    next.bbox = rep.bbox;
    next.dir = rep.dir.empty() ? table_->shard(rep.shard).dir : rep.dir;
    replacements.push_back(std::make_shared<LocalShard>(
        next, options_, table_->x_column(), table_->y_column(), pool_.get(),
        old->imprint_manager_ptr()));
  }
  {
    std::unique_lock<std::shared_mutex> lock(shards_mu_);
    for (size_t i = 0; i < reps.size(); ++i) {
      const Replacement& rep = reps[i];
      ShardSlice& slice = table_->shards()[rep.shard];
      slice.table = rep.table;
      slice.bbox = rep.bbox;
      if (!rep.dir.empty()) slice.dir = rep.dir;
      shards_[rep.shard] = replacements[i];
    }
    // Appending to shard i shifts the global base of every shard after
    // it; rebase the whole run. Pinned views keep their own bases.
    uint64_t base = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
      ShardSlice& slice = table_->shards()[s];
      slice.base = base;
      bases_[s] = base;
      base += slice.table->num_rows();
    }
    table_->set_num_rows(base);
    if (persisted) table_->set_generation(new_gen);
    ++view_version_;
  }

  c_commits.Increment();
  c_rows.Increment(n);
  c_shards.Increment(reps.size());
  return Status::OK();
}

Result<ShardedColumnReader> ShardedColumnReader::Make(
    const ShardsView& view, const std::string& column) {
  ShardedColumnReader reader;
  reader.columns_.reserve(view.shards.size());
  for (const auto& shard : view.shards) {
    GEOCOL_ASSIGN_OR_RETURN(ColumnPtr col, shard->GetColumn(column));
    reader.columns_.push_back(std::move(col));
  }
  reader.bases_ = view.bases;
  return reader;
}

Result<ShardedColumnReader> ShardedColumnReader::Make(
    const ShardRouter& router, const std::string& column) {
  return Make(router.View(), column);
}

double ShardedColumnReader::GetDouble(uint64_t global_row) const {
  size_t s = ShardIndexFor(bases_, global_row);
  return columns_[s]->GetDouble(global_row - bases_[s]);
}

}  // namespace geocol
