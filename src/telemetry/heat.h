// Shard- and chunk-level access heat: the steering signal for cache
// admission priorities and shard rebalancing (ROADMAP items 2 and 3).
//
// The router's scatter loop touches a shard entry per shard it answers;
// the paged column's fault path touches a chunk entry per pin. The flight
// recorder drains the accumulated deltas after every query and embeds
// them in that query's event, so `geocol heat` can attribute access
// counts to recorded workload — for the single-session CLI the drained
// delta is exactly what the query touched; under concurrent sessions it
// is the union of touches since the previous drain (documented
// approximation, still exact in aggregate).
//
// Cost model: a mutex + hash-map update per shard visit / chunk pin —
// orders of magnitude rarer than per-row work, and gated on the same
// kill switch as every other metric write.
#ifndef GEOCOL_TELEMETRY_HEAT_H_
#define GEOCOL_TELEMETRY_HEAT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace geocol {
namespace telemetry {

/// Accumulated accesses of one shard since the last drain.
struct ShardHeatDelta {
  std::string table;     ///< sharded-table name
  uint32_t shard = 0;    ///< shard index within the layout
  uint64_t scans = 0;    ///< times the shard was answered (scan or covered)
  uint64_t covered = 0;  ///< times answered via the covered shortcut
  uint64_t rows = 0;     ///< rows the shard contributed to merged results
};

/// Accumulated accesses of one column chunk since the last drain.
struct ChunkHeatDelta {
  std::string file;      ///< column file path
  uint32_t chunk = 0;    ///< chunk index within the file
  uint64_t touches = 0;  ///< pins (cache hit or fault)
  uint64_t faults = 0;   ///< pins that faulted from disk
};

/// Records one shard answer. No-op when metrics are disabled.
void TouchShardHeat(const std::string& table, uint32_t shard, bool covered,
                    uint64_t rows);

/// Records one chunk pin. No-op when metrics are disabled.
void TouchChunkHeat(const std::string& file, uint32_t chunk, bool fault);

/// Returns everything accumulated since the previous drain and resets the
/// counters (delta semantics). Deterministic order: sorted by key.
std::vector<ShardHeatDelta> DrainShardHeat();
std::vector<ChunkHeatDelta> DrainChunkHeat();

/// Drops all accumulated heat (tests, recorder open).
void ResetHeat();

}  // namespace telemetry
}  // namespace geocol

#endif  // GEOCOL_TELEMETRY_HEAT_H_
