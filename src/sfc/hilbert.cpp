#include "sfc/hilbert.h"

#include <algorithm>

namespace geocol {

namespace {
// Rotates/flips a quadrant-local coordinate pair.
void Rot(uint32_t n, uint32_t* x, uint32_t* y, uint32_t rx, uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = n - 1 - *x;
      *y = n - 1 - *y;
    }
    uint32_t t = *x;
    *x = *y;
    *y = t;
  }
}
}  // namespace

uint64_t HilbertEncode(uint32_t x, uint32_t y, uint32_t order) {
  uint64_t d = 0;
  for (uint32_t s = order; s-- > 0;) {
    uint32_t side = uint32_t{1} << s;
    uint32_t rx = (x & side) > 0 ? 1 : 0;
    uint32_t ry = (y & side) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(side) * side * ((3 * rx) ^ ry);
    Rot(uint32_t{1} << order, &x, &y, rx, ry);
  }
  return d;
}

std::pair<uint32_t, uint32_t> HilbertDecode(uint64_t d, uint32_t order) {
  uint32_t x = 0, y = 0;
  uint64_t t = d;
  for (uint32_t s = 0; s < order; ++s) {
    uint32_t side = uint32_t{1} << s;
    uint32_t rx = 1 & static_cast<uint32_t>(t / 2);
    uint32_t ry = 1 & static_cast<uint32_t>(t ^ rx);
    Rot(side, &x, &y, rx, ry);
    x += side * rx;
    y += side * ry;
    t /= 4;
  }
  return {x, y};
}

uint64_t HilbertEncodeScaled(double x, double y, const Box& extent,
                             uint32_t order) {
  double w = std::max(extent.width(), 1e-12);
  double h = std::max(extent.height(), 1e-12);
  double scale = static_cast<double>((uint64_t{1} << order) - 1);
  double fx = std::clamp((x - extent.min_x) / w, 0.0, 1.0);
  double fy = std::clamp((y - extent.min_y) / h, 0.0, 1.0);
  return HilbertEncode(static_cast<uint32_t>(fx * scale),
                       static_cast<uint32_t>(fy * scale), order);
}

}  // namespace geocol
