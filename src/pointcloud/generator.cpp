#include "pointcloud/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "las/las_writer.h"
#include "sfc/morton.h"
#include "util/rng.h"

namespace geocol {

AhnGenerator::AhnGenerator(AhnGeneratorOptions options)
    : options_(options), terrain_(options.seed) {}

uint64_t AhnGenerator::EstimatedPoints() const {
  return static_cast<uint64_t>(options_.extent.area() * options_.point_density);
}

void AhnGenerator::GenerateStrip(
    uint32_t strip_index,
    const std::function<void(const LasPointRecord&)>& sink,
    LasTile* proto) const {
  const Box& e = options_.extent;
  double x0 = e.min_x + strip_index * options_.strip_width;
  double x1 = std::min(x0 + options_.strip_width, e.max_x);
  if (x0 >= x1) return;
  Rng rng(options_.seed ^ (0x5151515151515151ULL + strip_index * 0x2545F491ULL));

  double along = options_.scan_line_spacing;
  double cross = 1.0 / (options_.point_density * along);
  uint64_t lines = static_cast<uint64_t>(std::ceil(e.height() / along));
  uint64_t pts_per_line =
      std::max<uint64_t>(1, static_cast<uint64_t>((x1 - x0) / cross));
  double strip_center = (x0 + x1) / 2.0;
  double half_width = std::max((x1 - x0) / 2.0, 1e-9);

  double gps_base = strip_index * 3600.0;  // one "hour" per strip
  for (uint64_t k = 0; k < lines; ++k) {
    double y = e.min_y + k * along;
    bool reverse = (k & 1) != 0;  // zig-zag sweep
    for (uint64_t i = 0; i < pts_per_line; ++i) {
      uint64_t pos = reverse ? pts_per_line - 1 - i : i;
      double x = x0 + (pos + 0.5) * cross;
      // Sensor jitter.
      double jx = x + (rng.NextDouble() - 0.5) * cross * 0.6;
      double jy = y + (rng.NextDouble() - 0.5) * along * 0.6;
      jx = std::clamp(jx, e.min_x, e.max_x);
      jy = std::clamp(jy, e.min_y, e.max_y);

      SurfaceSample s = terrain_.SampleAt(jx, jy);
      double ground = terrain_.GroundElevation(jx, jy);

      LasPointRecord p;
      p.number_of_returns = s.num_returns;
      p.return_number = s.num_returns > 1
                            ? static_cast<uint8_t>(
                                  1 + rng.Uniform(s.num_returns))
                            : 1;
      // Later returns penetrate the canopy toward the ground.
      double elev = s.elevation;
      if (p.return_number > 1) {
        double depth = static_cast<double>(p.return_number - 1) /
                       s.num_returns;
        elev = s.elevation - (s.elevation - ground) * depth;
      }
      elev += rng.NextGaussian() * 0.02;  // ranging noise, ~2 cm

      p.x = proto->RawX(jx);
      p.y = proto->RawY(jy);
      p.z = proto->RawZ(elev);
      p.intensity = static_cast<uint16_t>(
          std::clamp<int>(s.intensity + static_cast<int>(rng.Uniform(16)) - 8,
                          0, 65535));
      p.scan_direction = reverse ? 1 : 0;
      p.edge_of_flight_line = (i == 0 || i + 1 == pts_per_line) ? 1 : 0;
      p.classification = s.classification;
      p.synthetic_flag = 0;
      p.key_point_flag = rng.NextBool(0.001) ? 1 : 0;
      p.withheld_flag = rng.NextBool(0.0005) ? 1 : 0;
      p.scan_angle = static_cast<int8_t>(
          std::clamp((jx - strip_center) / half_width * 30.0, -30.0, 30.0));
      p.user_data = 0;
      p.point_source_id = static_cast<uint16_t>(strip_index + 1);
      p.gps_time = gps_base + k * 0.02 + i * (0.02 / pts_per_line);
      p.red = s.red;
      p.green = s.green;
      p.blue = s.blue;
      p.nir = s.nir;
      // Waveform attributes are present in the schema but rarely populated
      // by real sensors; emit sparse non-zero values.
      if (rng.NextBool(0.01)) {
        p.wave_descriptor = 1;
        p.wave_offset = static_cast<uint64_t>(rng.Uniform(1u << 20));
        p.wave_packet_size = 256;
        p.wave_return_location = static_cast<float>(rng.NextDouble());
        p.wave_x = static_cast<float>(jx - e.min_x);
        p.wave_y = static_cast<float>(jy - e.min_y);
      }
      sink(p);
    }
  }
}

Status AhnGenerator::GenerateTiles(
    const std::function<Status(LasTile&, uint64_t)>& consumer) {
  const Box& e = options_.extent;
  uint32_t strips = static_cast<uint32_t>(
      std::ceil(e.width() / options_.strip_width));

  LasTile tile;
  tile.header.scale[0] = tile.header.scale[1] = tile.header.scale[2] =
      options_.coordinate_scale;
  tile.header.offset[0] = e.min_x;
  tile.header.offset[1] = e.min_y;
  tile.header.offset[2] = 0.0;

  uint64_t tile_index = 0;
  Status status = Status::OK();
  auto flush = [&]() -> Status {
    if (tile.points.empty()) return Status::OK();
    GEOCOL_RETURN_NOT_OK(consumer(tile, tile_index++));
    tile.points.clear();
    return Status::OK();
  };

  for (uint32_t s = 0; s < strips && status.ok(); ++s) {
    GenerateStrip(s, [&](const LasPointRecord& p) {
      tile.points.push_back(p);
      if (tile.points.size() >= options_.target_points_per_tile &&
          status.ok()) {
        status = flush();
      }
    }, &tile);
  }
  GEOCOL_RETURN_NOT_OK(status);
  return flush();
}

Result<std::shared_ptr<FlatTable>> AhnGenerator::GenerateTable(
    uint64_t num_points) {
  // Re-derive density/spacing so the configured extent yields roughly the
  // requested point count with isotropic sampling.
  AhnGeneratorOptions opts = options_;
  double area = std::max(opts.extent.area(), 1.0);
  opts.point_density = static_cast<double>(num_points) / area;
  opts.scan_line_spacing = 1.0 / std::sqrt(std::max(opts.point_density, 1e-9));
  AhnGenerator gen(opts);

  auto table = std::make_shared<FlatTable>("ahn2", LasPointSchema());
  for (const auto& col : table->columns()) col->Reserve(num_points);
  GEOCOL_RETURN_NOT_OK(gen.GenerateTiles([&](LasTile& tile, uint64_t) {
    return AppendTileToTable(tile, table.get());
  }));
  GEOCOL_RETURN_NOT_OK(table->Validate());
  return table;
}

Result<uint64_t> AhnGenerator::WriteTileDirectory(const std::string& dir,
                                                  bool compress) {
  uint64_t tiles = 0;
  GEOCOL_RETURN_NOT_OK(GenerateTiles([&](LasTile& tile, uint64_t idx) {
    char name[64];
    std::snprintf(name, sizeof(name), "/tile_%05llu.%s",
                  static_cast<unsigned long long>(idx),
                  compress ? "laz" : "las");
    ++tiles;
    return WriteTileFile(tile, dir + name);
  }));
  return tiles;
}

std::shared_ptr<Column> MakeUniformColumn(const std::string& name, size_t n,
                                          double lo, double hi, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> vals(n);
  for (auto& v : vals) v = rng.UniformDouble(lo, hi);
  return Column::FromVector(name, vals);
}

void ShuffleTableRows(FlatTable* table, uint64_t seed) {
  uint64_t n = table->num_rows();
  if (n < 2) return;
  std::vector<uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(seed);
  for (uint64_t i = n - 1; i > 0; --i) {
    std::swap(perm[i], perm[rng.Uniform(i + 1)]);
  }
  Status st = table->PermuteRows(perm);
  (void)st;  // cannot fail: perm is a permutation of [0, n)
}

Status SortTableMorton(FlatTable* table) {
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr xc, table->GetColumn("x"));
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr yc, table->GetColumn("y"));
  uint64_t n = table->num_rows();
  Box extent;
  for (uint64_t r = 0; r < n; ++r) {
    extent.Extend(xc->GetDouble(r), yc->GetDouble(r));
  }
  std::vector<uint64_t> codes(n);
  for (uint64_t r = 0; r < n; ++r) {
    codes[r] = MortonEncodeScaled(xc->GetDouble(r), yc->GetDouble(r), extent);
  }
  std::vector<uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(),
            [&](uint64_t a, uint64_t b) { return codes[a] < codes[b]; });
  return table->PermuteRows(perm);
}

}  // namespace geocol
