#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON file produced by `geocol_tool trace`.

Checks the schema that chrome://tracing / Perfetto require to load the file
without error: a top-level object with a `traceEvents` array, every event a
complete ("ph": "X") event carrying name/cat/ph/ts/dur/pid/tid with numeric
timestamps, and child spans nested inside their parents' time range on the
same thread. Exits non-zero with a message on the first violation.

Usage: check_trace.py <trace.json>
"""
import json
import sys

REQUIRED_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


def fail(msg):
    print("check_trace: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    path = sys.argv[1]
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail("cannot parse %s: %s" % (path, e))

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not an array")
    if not events:
        fail("traceEvents is empty")

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail("event %d is not an object" % i)
        for key in REQUIRED_KEYS:
            if key not in ev:
                fail("event %d (%r) missing key %r" % (i, ev.get("name"), key))
        if ev["ph"] != "X":
            fail("event %d has ph=%r, expected complete event 'X'" % (i, ev["ph"]))
        for key in ("ts", "dur"):
            if not isinstance(ev[key], (int, float)) or ev[key] < 0:
                fail("event %d has non-numeric/negative %s: %r" % (i, key, ev[key]))
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail("event %d has empty name" % i)

    # Spans on one thread must nest: sorted by start, an event starting inside
    # a predecessor must also end inside it (allowing microsecond rounding).
    by_tid = {}
    for ev in events:
        by_tid.setdefault((ev["pid"], ev["tid"]), []).append(ev)
    for (pid, tid), evs in by_tid.items():
        evs.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for ev in evs:
            end = ev["ts"] + ev["dur"]
            while stack and ev["ts"] >= stack[-1] - 0.002:
                stack.pop()
            if stack and end > stack[-1] + 0.002:
                fail("overlapping spans on pid=%s tid=%s near %r" % (pid, tid, ev["name"]))
            stack.append(end)

    print("check_trace: OK: %d events, %d threads" % (len(events), len(by_tid)))


if __name__ == "__main__":
    main()
