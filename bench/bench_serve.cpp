// E18: multi-tenant query server with shared-scan batching (DESIGN.md
// §16).
//
// 32 concurrent clients replay seeded overlapping-viewport workloads
// against `geocol serve` twice — shared-scan batching off, then on —
// over the same in-memory survey. Reported per mode: QPS, p50/p99
// latency, batch group counts. Because every client is seeded and the
// fan-out is bit-identical by construction, the digest of every reply
// must match between the two modes; any difference fails the run, as
// does batched QPS below the 2x acceptance bar.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "gis/catalog.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/executor.h"
#include "util/timer.h"

using namespace geocol;
using namespace geocol::bench;

namespace {

constexpr int kClients = 32;

/// Seeded overlapping viewports: the shared-dashboard scenario — every
/// client looks at (a slight jitter of) the same hot region, so queued
/// queries share most of their candidate rows. Boxes cover ~10% of each
/// extent side around the centre, in the three batchable shapes (count,
/// aggregate, projection). This is the workload shared-scan batching is
/// for; disjoint viewports fall back to near-solo superset costs.
std::vector<std::string> ClientWorkload(const Box& extent, size_t n,
                                        uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> frac(0.08, 0.12);
  std::uniform_real_distribution<double> centre(0.48, 0.52);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double w = extent.width() * frac(rng), h = extent.height() * frac(rng);
    double cx = extent.min_x + extent.width() * centre(rng);
    double cy = extent.min_y + extent.height() * centre(rng);
    char where[256];
    std::snprintf(where, sizeof(where),
                  "x BETWEEN %.17g AND %.17g AND y BETWEEN %.17g AND %.17g",
                  cx - w / 2, cx + w / 2, cy - h / 2, cy + h / 2);
    switch (i % 3) {
      case 0:
        out.push_back(std::string("SELECT COUNT(*) FROM ahn2 WHERE ") +
                      where);
        break;
      case 1:
        out.push_back(std::string("SELECT AVG(z), MAX(z) FROM ahn2 WHERE ") +
                      where);
        break;
      default:
        out.push_back(std::string("SELECT x, y, z FROM ahn2 WHERE ") +
                      where + " LIMIT 32");
        break;
    }
  }
  return out;
}

struct PassResult {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t batches = 0;
  uint64_t batch_members = 0;
  bool ok = true;
  /// digests[c][q]: reply digest of client c's q-th statement.
  std::vector<std::vector<uint32_t>> digests;
};

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(q * (sorted.size() - 1));
  return sorted[idx];
}

PassResult RunPass(Catalog* catalog, const Box& extent, bool batching,
                   size_t per_client) {
  server::ServerOptions sopts;
  sopts.workers = 2;
  sopts.queue_capacity = 256;
  sopts.shared_scan_batching = batching;
  server::Server srv(catalog, sopts);
  Status st = srv.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  const int port = srv.port();

  PassResult pass;
  pass.digests.assign(kClients, {});
  std::vector<std::vector<double>> latencies(kClients);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  Timer wall;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      // Same seed per client slot across both passes, so reply digests
      // are directly comparable.
      auto statements = ClientWorkload(extent, per_client, 18000 + c);
      server::Client::Options copts;
      copts.port = port;
      copts.client_id = "bench-" + std::to_string(c);
      auto client = server::Client::Connect(copts);
      if (!client.ok()) {
        failed.store(true);
        return;
      }
      for (const auto& sql : statements) {
        Timer t;
        auto outcome = client->Query(sql);
        latencies[c].push_back(t.ElapsedNanos() / 1e6);
        if (!outcome.ok() || !outcome->ok) {
          failed.store(true);
          return;
        }
        pass.digests[c].push_back(sql::ResultSetDigest(outcome->result));
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = wall.ElapsedNanos() / 1e9;
  srv.Stop();

  pass.ok = !failed.load();
  std::vector<double> all;
  for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
  std::sort(all.begin(), all.end());
  pass.qps = all.size() / wall_s;
  pass.p50_ms = Quantile(all, 0.50);
  pass.p99_ms = Quantile(all, 0.99);
  server::ServerStats stats = srv.stats();
  pass.batches = stats.batches;
  pass.batch_members = stats.batch_members;
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  InitBench(argc, argv);
  const uint64_t n = BenchPoints(400000);
  const size_t per_client = EnvU64("GEOCOL_BENCH_QUERIES", 25);
  Banner("E18: multi-tenant serving with shared-scan batching",
         "32 overlapping-viewport clients, batching off vs on");

  auto table = GenerateSurvey(n);
  const Box extent = SurveyOptions(n).extent;
  std::printf("survey: %llu points, %d clients x %llu queries\n",
              static_cast<unsigned long long>(table->num_rows()), kClients,
              static_cast<unsigned long long>(per_client));

  Catalog catalog;
  if (Status st = catalog.AddPointCloud("ahn2", table); !st.ok()) {
    std::fprintf(stderr, "catalog: %s\n", st.ToString().c_str());
    return 1;
  }

  PassResult unbatched = RunPass(&catalog, extent, false, per_client);
  PassResult batched = RunPass(&catalog, extent, true, per_client);
  if (!unbatched.ok || !batched.ok) {
    std::fprintf(stderr, "FAIL: a pass saw a failed query\n");
    return 1;
  }

  // Bit-identical across modes, client by client, statement by statement.
  size_t diffs = 0;
  for (int c = 0; c < kClients; ++c) {
    if (unbatched.digests[c] != batched.digests[c]) ++diffs;
  }

  TablePrinter table_out(
      {"mode", "qps", "p50_ms", "p99_ms", "batches", "batch_members"});
  table_out.Row({"unbatched", TablePrinter::Num(unbatched.qps, 1),
                 TablePrinter::Num(unbatched.p50_ms, 2),
                 TablePrinter::Num(unbatched.p99_ms, 2),
                 TablePrinter::Int(unbatched.batches),
                 TablePrinter::Int(unbatched.batch_members)});
  table_out.Row({"batched", TablePrinter::Num(batched.qps, 1),
                 TablePrinter::Num(batched.p50_ms, 2),
                 TablePrinter::Num(batched.p99_ms, 2),
                 TablePrinter::Int(batched.batches),
                 TablePrinter::Int(batched.batch_members)});
  const double speedup = batched.qps / unbatched.qps;
  // CI runners with 2 cores can't sustain the 2x bar the full-size run
  // demonstrates; they relax it via env while keeping the digest check
  // strict.
  double min_speedup = 2.0;
  if (const char* v = std::getenv("GEOCOL_BENCH_MIN_SPEEDUP")) {
    min_speedup = std::strtod(v, nullptr);
  }
  TablePrinter summary({"digest_diffs", "qps_speedup"});
  summary.Row({TablePrinter::Int(diffs), TablePrinter::Num(speedup, 2)});

  if (diffs > 0) {
    std::fprintf(stderr, "FAIL: %zu clients saw different results\n", diffs);
    return 1;
  }
  if (speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: batching speedup %.2fx < %.1fx bar\n",
                 speedup, min_speedup);
    return 1;
  }
  std::printf("\nbatching: %.2fx QPS, results bit-identical\n", speedup);
  return 0;
}
