// Crash-point sweeps and corruption-detection tests for every persisted
// format. The invariant under test: a crash injected at ANY file
// operation leaves the store readable as exactly the old state or exactly
// the new state — never garbage, never an error — and a single flipped
// bit in any durable file surfaces as Corruption, never as wrong data.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "columns/column_file.h"
#include "columns/compression.h"
#include "core/imprints_io.h"
#include "core/spatial_engine.h"
#include "gis/layer_io.h"
#include "pointcloud/terrain.h"
#include "pointcloud/vector_gen.h"
#include "util/binary_io.h"
#include "util/crc32c.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

class DurabilityTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }
  TempDir tmp_;
};

FlatTable MakeTable(const std::string& name, size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(rows), y(rows);
  std::vector<int32_t> c(rows);
  for (size_t i = 0; i < rows; ++i) {
    x[i] = rng.UniformDouble(0, 1000);
    y[i] = rng.UniformDouble(0, 1000);
    c[i] = static_cast<int32_t>(rng.Uniform(32));
  }
  FlatTable t(name);
  EXPECT_TRUE(t.AddColumn(Column::FromVector("x", x)).ok());
  EXPECT_TRUE(t.AddColumn(Column::FromVector("y", y)).ok());
  EXPECT_TRUE(t.AddColumn(Column::FromVector("c", c)).ok());
  return t;
}

/// True when `t` holds exactly the columns and values of `expect`.
void ExpectTablesEqual(const FlatTable& t, const FlatTable& expect) {
  ASSERT_EQ(t.num_columns(), expect.num_columns());
  for (const auto& ec : expect.columns()) {
    ColumnPtr c = t.column(ec->name());
    ASSERT_NE(c, nullptr) << ec->name();
    ASSERT_EQ(c->type(), ec->type()) << ec->name();
    ASSERT_EQ(c->size(), ec->size()) << ec->name();
    ASSERT_EQ(std::memcmp(c->raw_data(), ec->raw_data(),
                          c->size() * DataTypeSize(c->type())),
              0)
        << ec->name();
  }
}

// ---------------------------------------------------------------------------
// Crash-point sweeps: old-or-new, never garbage.
// ---------------------------------------------------------------------------

/// Sweeps every injectable crash point of `write_new` (run against a store
/// freshly reset by `reset_old`), asserting after each crash that
/// `check_old_or_new` still sees a consistent store.
template <typename ResetFn, typename WriteFn, typename CheckFn>
void CrashSweep(ResetFn reset_old, WriteFn write_new,
                CheckFn check_old_or_new) {
  auto& fi = FaultInjector::Global();
  reset_old();
  fi.StartCounting();
  ASSERT_TRUE(write_new().ok());
  uint64_t total = fi.StopCounting();
  ASSERT_GT(total, 0u);

  for (uint64_t k = 1; k <= total; ++k) {
    SCOPED_TRACE("crash at op " + std::to_string(k) + " of " +
                 std::to_string(total));
    reset_old();
    fi.ArmCrashAtOp(k);
    Status st = write_new();  // expected to fail at op k (ignored)
    fi.Disarm();
    (void)st;
    check_old_or_new();
  }
}

TEST_F(DurabilityTest, TableDirCrashSweep) {
  std::string dir = tmp_.File("tbl");
  FlatTable old_table = MakeTable("pts", 500, 1);
  FlatTable new_table = MakeTable("pts", 700, 2);

  CrashSweep(
      [&] {
        ASSERT_TRUE(RemoveDirRecursive(dir).ok());
        ASSERT_TRUE(WriteTableDir(old_table, dir).ok());
      },
      [&] { return WriteTableDir(new_table, dir); },
      [&] {
        auto got = ReadTableDir(dir);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        if (got->column("x")->size() == 700) {
          ExpectTablesEqual(*got, new_table);
        } else {
          ExpectTablesEqual(*got, old_table);
        }
      });
}

TEST_F(DurabilityTest, CompressedTableDirCrashSweep) {
  std::string dir = tmp_.File("ctbl");
  FlatTable old_table = MakeTable("pts", 400, 3);
  FlatTable new_table = MakeTable("pts", 600, 4);

  CrashSweep(
      [&] {
        ASSERT_TRUE(RemoveDirRecursive(dir).ok());
        ASSERT_TRUE(WriteCompressedTableDir(old_table, dir, nullptr).ok());
      },
      [&] { return WriteCompressedTableDir(new_table, dir, nullptr); },
      [&] {
        auto got = ReadCompressedTableDir(dir);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        if (got->column("x")->size() == 600) {
          ExpectTablesEqual(*got, new_table);
        } else {
          ExpectTablesEqual(*got, old_table);
        }
      });
}

TEST_F(DurabilityTest, ImprintsSidecarCrashSweep) {
  std::string path = tmp_.File("c.gim");
  ColumnPtr col = Column::FromVector(
      "c", std::vector<double>{1, 5, 2, 8, 3, 9, 4, 7, 6, 0});
  auto old_ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(old_ix.ok());
  col->Append<double>(42.0);
  auto new_ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(new_ix.ok());

  CrashSweep(
      [&] {
        (void)RemoveFile(path);
        ASSERT_TRUE(WriteImprintsFile(*old_ix, path).ok());
      },
      [&] { return WriteImprintsFile(*new_ix, path); },
      [&] {
        auto got = ReadImprintsFile(path);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        EXPECT_TRUE(got->num_rows() == old_ix->num_rows() ||
                    got->num_rows() == new_ix->num_rows());
      });
}

TEST_F(DurabilityTest, LayerFileCrashSweep) {
  std::string path = tmp_.File("roads.layer");
  TerrainModel terrain(7);
  OsmGenerator gen(7, Box(0, 0, 500, 500), terrain);
  auto old_layer = VectorLayer::FromFeatures("roads", gen.GenerateRoads(3));
  auto new_layer = VectorLayer::FromFeatures("roads", gen.GenerateRoads(5));
  ASSERT_NE(old_layer->features().size(), new_layer->features().size());

  CrashSweep(
      [&] {
        (void)RemoveFile(path);
        ASSERT_TRUE(WriteLayerFile(*old_layer, path).ok());
      },
      [&] { return WriteLayerFile(*new_layer, path); },
      [&] {
        auto got = ReadLayerFile(path);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        size_t n = (*got)->features().size();
        EXPECT_TRUE(n == old_layer->features().size() ||
                    n == new_layer->features().size());
      });
}

TEST_F(DurabilityTest, RawDumpCrashLeavesOldDump) {
  // Raw dumps are headerless (paper fidelity), so they cannot carry a
  // checksum — but the atomic protocol still guarantees old-or-new.
  std::string path = tmp_.File("x.dump");
  ColumnPtr old_col = Column::FromVector("x", std::vector<double>{1, 2, 3});
  ColumnPtr new_col =
      Column::FromVector("x", std::vector<double>{4, 5, 6, 7, 8});

  CrashSweep(
      [&] {
        (void)RemoveFile(path);
        ASSERT_TRUE(WriteRawDump(*old_col, path).ok());
      },
      [&] { return WriteRawDump(*new_col, path); },
      [&] {
        auto size = FileSizeBytes(path);
        ASSERT_TRUE(size.ok());
        EXPECT_TRUE(*size == 3 * sizeof(double) || *size == 5 * sizeof(double))
            << *size;
      });
}

// ---------------------------------------------------------------------------
// Bit-flip detection: every byte of every checksummed format.
// ---------------------------------------------------------------------------

/// Flips one bit in every byte of the file at `path` in turn and asserts
/// `read_fails` observes Corruption each time.
template <typename ReadFn>
void SweepBitFlips(const std::string& path, ReadFn read_fails) {
  std::vector<uint8_t> good;
  ASSERT_TRUE(ReadFileBytes(path, &good).ok());
  ASSERT_FALSE(good.empty());
  Rng rng(99);
  for (size_t byte = 0; byte < good.size(); ++byte) {
    SCOPED_TRACE("bit flip in byte " + std::to_string(byte) + " of " +
                 std::to_string(good.size()));
    auto bad = good;
    bad[byte] ^= static_cast<uint8_t>(1u << rng.Uniform(8));
    ASSERT_TRUE(WriteFileBytes(path, bad.data(), bad.size()).ok());
    read_fails();
  }
  ASSERT_TRUE(WriteFileBytes(path, good.data(), good.size()).ok());
}

TEST_F(DurabilityTest, ColumnFileDetectsEveryBitFlip) {
  ColumnPtr col = Column::FromVector(
      "x", std::vector<double>{1.5, -2.25, 3.75, 0.0, 1e9});
  std::string path = tmp_.File("x.gcl");
  ASSERT_TRUE(WriteColumnFile(*col, path).ok());
  SweepBitFlips(path, [&] {
    auto got = ReadColumnFile(path, "x");
    EXPECT_FALSE(got.ok());
    if (!got.ok()) {
      EXPECT_EQ(got.status().code(), StatusCode::kCorruption)
          << got.status().ToString();
    }
  });
}

TEST_F(DurabilityTest, CompressedColumnDetectsEveryBitFlip) {
  std::vector<int32_t> vals(300);
  for (size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<int32_t>(i % 7);
  ColumnPtr col = Column::FromVector("c", vals);
  std::string path = tmp_.File("c.gcz");
  ASSERT_TRUE(
      WriteCompressedColumnFile(*col, path, ColumnCodec::kAuto, nullptr).ok());
  SweepBitFlips(path, [&] {
    auto got = ReadCompressedColumnFile(path, "c");
    EXPECT_FALSE(got.ok());
    if (!got.ok()) {
      EXPECT_EQ(got.status().code(), StatusCode::kCorruption)
          << got.status().ToString();
    }
  });
}

TEST_F(DurabilityTest, ManifestDetectsEveryBitFlip) {
  std::string dir = tmp_.File("tbl");
  FlatTable table = MakeTable("pts", 50, 5);
  ASSERT_TRUE(WriteTableDir(table, dir).ok());
  SweepBitFlips(dir + "/schema.gct", [&] {
    auto got = ReadTableManifest(dir);
    EXPECT_FALSE(got.ok());
    if (!got.ok()) {
      EXPECT_EQ(got.status().code(), StatusCode::kCorruption)
          << got.status().ToString();
    }
  });
}

TEST_F(DurabilityTest, ImprintsFileDetectsEveryBitFlip) {
  ColumnPtr col = Column::FromVector(
      "c", std::vector<double>{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5});
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  std::string path = tmp_.File("c.gim");
  ASSERT_TRUE(WriteImprintsFile(*ix, path).ok());
  SweepBitFlips(path, [&] {
    auto got = ReadImprintsFile(path);
    EXPECT_FALSE(got.ok());
    if (!got.ok()) {
      EXPECT_EQ(got.status().code(), StatusCode::kCorruption)
          << got.status().ToString();
    }
  });
}

TEST_F(DurabilityTest, LayerFileDetectsDataBitFlips) {
  TerrainModel terrain(11);
  OsmGenerator gen(11, Box(0, 0, 200, 200), terrain);
  auto layer = VectorLayer::FromFeatures("roads", gen.GenerateRoads(2));
  std::string path = tmp_.File("roads.layer");
  ASSERT_TRUE(WriteLayerFile(*layer, path).ok());
  // The text footer protects all feature bytes; a flip inside the footer
  // itself can only invalidate the footer, never alter feature data — so
  // the property is "fails, or reads back identical data".
  std::vector<uint8_t> good;
  ASSERT_TRUE(ReadFileBytes(path, &good).ok());
  size_t detected = 0;
  Rng rng(12);
  for (size_t byte = 0; byte < good.size(); ++byte) {
    SCOPED_TRACE("bit flip in byte " + std::to_string(byte));
    auto bad = good;
    bad[byte] ^= static_cast<uint8_t>(1u << rng.Uniform(8));
    ASSERT_TRUE(WriteFileBytes(path, bad.data(), bad.size()).ok());
    auto got = ReadLayerFile(path);
    if (!got.ok()) {
      ++detected;
      continue;
    }
    ASSERT_EQ((*got)->features().size(), layer->features().size());
    for (size_t i = 0; i < layer->features().size(); ++i) {
      EXPECT_EQ((*got)->features()[i].id, layer->features()[i].id);
      EXPECT_EQ((*got)->features()[i].name, layer->features()[i].name);
    }
  }
  // Every flip in the feature bytes (all but the ~17-byte footer) must be
  // caught by the checksum.
  EXPECT_GE(detected, good.size() - 18) << "of " << good.size();
}

// ---------------------------------------------------------------------------
// Hostile counts: corrupt sizes must fail cleanly, not allocate.
// ---------------------------------------------------------------------------

TEST_F(DurabilityTest, HugeCountWithValidCrcIsRejected) {
  ColumnPtr col = Column::FromVector("c", std::vector<double>{1, 2, 3, 4});
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  std::string path = tmp_.File("c.gim");
  ASSERT_TRUE(WriteImprintsFile(*ix, path).ok());

  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes).ok());
  // Overwrite the dictionary count (after magic, fingerprint, epoch, rows,
  // vpl, nbins, and the nbins bounds) with an absurd value, then re-seal
  // the CRC so only the bounded-count check can reject it.
  uint32_t nbins = 0;
  std::memcpy(&nbins, bytes.data() + 4 + 4 + 8 + 8 + 4, 4);
  size_t dict_at = 4 + 4 + 8 + 8 + 4 + 4 + size_t{nbins} * 8;
  ASSERT_LT(dict_at + 8, bytes.size());
  uint64_t huge = uint64_t{1} << 60;
  std::memcpy(bytes.data() + dict_at, &huge, 8);
  uint32_t crc = Crc32c(bytes.data(), bytes.size() - 4);
  std::memcpy(bytes.data() + bytes.size() - 4, &crc, 4);
  ASSERT_TRUE(WriteFileBytes(path, bytes.data(), bytes.size()).ok());

  auto got = ReadImprintsFile(path);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption)
      << got.status().ToString();
}

TEST_F(DurabilityTest, HugeColumnCountIsRejected) {
  ColumnPtr col = Column::FromVector("x", std::vector<double>{1, 2, 3});
  std::string path = tmp_.File("x.gcl");
  ASSERT_TRUE(WriteColumnFile(*col, path).ok());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes).ok());
  // Row count lives after magic(4) + type(1); blow it up without fixing
  // the header CRC — either check may fire, but never an allocation.
  uint64_t huge = uint64_t{1} << 50;
  std::memcpy(bytes.data() + 5, &huge, 8);
  ASSERT_TRUE(WriteFileBytes(path, bytes.data(), bytes.size()).ok());
  auto got = ReadColumnFile(path, "x");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption)
      << got.status().ToString();
}

// ---------------------------------------------------------------------------
// Graceful degradation: corrupt sidecars never fail a query.
// ---------------------------------------------------------------------------

TEST_F(DurabilityTest, CorruptSidecarQuarantinedAndQueriesStillCorrect) {
  std::string idx_dir = tmp_.File("imprints");
  ASSERT_TRUE(MakeDir(idx_dir).ok());
  auto table = std::make_shared<FlatTable>(MakeTable("pts", 4000, 21));
  Box box(100, 100, 400, 400);

  EngineOptions opts;
  opts.num_threads = 1;
  opts.imprints_dir = idx_dir;
  uint64_t expect_count = 0;
  {
    SpatialQueryEngine engine(table, opts);
    auto res = engine.SelectInBox(box);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    expect_count = res->count();
    // The first query persisted sidecars for x and y.
    EXPECT_TRUE(PathExists(idx_dir + "/x.gim"));
    EXPECT_TRUE(PathExists(idx_dir + "/y.gim"));
  }
  // Cross-check against a no-imprints engine.
  {
    EngineOptions scan_opts;
    scan_opts.use_imprints = false;
    scan_opts.num_threads = 1;
    SpatialQueryEngine engine(table, scan_opts);
    auto res = engine.SelectInBox(box);
    ASSERT_TRUE(res.ok());
    ASSERT_EQ(res->count(), expect_count);
  }

  // Corrupt x's sidecar in the middle; a fresh engine must quarantine it,
  // rebuild transparently, and return the same rows.
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(idx_dir + "/x.gim", &bytes).ok());
  bytes[bytes.size() / 2] ^= 0xFF;
  ASSERT_TRUE(WriteFileBytes(idx_dir + "/x.gim", bytes.data(), bytes.size())
                  .ok());
  {
    SpatialQueryEngine engine(table, opts);
    auto res = engine.SelectInBox(box);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(res->count(), expect_count);
  }
  // The damaged file was preserved for forensics and replaced by a fresh,
  // loadable sidecar.
  EXPECT_TRUE(PathExists(idx_dir + "/x.gim.quarantined"));
  auto reloaded = ReadImprintsFile(idx_dir + "/x.gim");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->num_rows(), table->column("x")->size());
}

TEST_F(DurabilityTest, StaleSidecarRebuiltAfterAppend) {
  std::string idx_dir = tmp_.File("imprints");
  ASSERT_TRUE(MakeDir(idx_dir).ok());
  auto table = std::make_shared<FlatTable>(MakeTable("pts", 2000, 22));
  EngineOptions opts;
  opts.num_threads = 1;
  opts.imprints_dir = idx_dir;
  Box box(0, 0, 500, 500);
  {
    SpatialQueryEngine engine(table, opts);
    ASSERT_TRUE(engine.SelectInBox(box).ok());
  }
  // Append moves the epoch: the persisted sidecar is now stale.
  table->column("x")->Append<double>(250.0);
  table->column("y")->Append<double>(250.0);
  table->column("c")->Append<int32_t>(1);
  {
    SpatialQueryEngine engine(table, opts);
    auto res = engine.SelectInBox(box);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    // The appended point is inside the box and must be found.
    bool found = false;
    for (uint64_t r : res->row_ids) found |= r == table->column("x")->size() - 1;
    EXPECT_TRUE(found);
  }
  auto reloaded = ReadImprintsFile(idx_dir + "/x.gim");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->built_epoch(), table->column("x")->epoch());
}

// ---------------------------------------------------------------------------
// Legacy interop: pre-checksum files stay readable.
// ---------------------------------------------------------------------------

TEST_F(DurabilityTest, LegacyLayerFileWithoutFooterStillLoads) {
  // A file written before the CRC footer existed: feature lines only.
  std::string text = "1\t2\tmain st\tLINESTRING (0 0, 10 10)\n";
  std::string path = tmp_.File("old.layer");
  ASSERT_TRUE(WriteFileBytes(path, text.data(), text.size()).ok());
  auto got = ReadLayerFile(path);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ((*got)->features().size(), 1u);
  EXPECT_EQ((*got)->features()[0].name, "main st");
}

TEST_F(DurabilityTest, LegacyCompressedColumnFileWithoutFooterStillLoads) {
  std::vector<int32_t> vals(500);
  for (size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<int32_t>(i);
  ColumnPtr col = Column::FromVector("c", vals);
  // A pre-durability .gcz: a bare CompressColumn buffer under the GCC1
  // magic, with no CRC footer.
  auto buf = CompressColumn(*col);
  ASSERT_TRUE(buf.ok());
  (*buf)[3] = '1';
  std::string path = tmp_.File("old.gcz");
  ASSERT_TRUE(WriteFileBytes(path, buf->data(), buf->size()).ok());
  auto got = ReadCompressedColumnFile(path, "c");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ((*got)->size(), col->size());
  EXPECT_EQ(std::memcmp((*got)->raw_data(), col->raw_data(),
                        col->raw_size_bytes()),
            0);
}

TEST_F(DurabilityTest, LegacyImprintsFileWithoutFooterStillLoads) {
  ColumnPtr col = Column::FromVector(
      "c", std::vector<double>{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5});
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  std::string path = tmp_.File("c.gim");
  ASSERT_TRUE(WriteImprintsFile(*ix, path, ColumnFingerprint(*col)).ok());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes).ok());
  // A GIM1 file is the GIM2 body minus the fingerprint field and footer.
  std::vector<uint8_t> legacy = {'G', 'I', 'M', '1'};
  legacy.insert(legacy.end(), bytes.begin() + 8, bytes.end() - 4);
  ASSERT_TRUE(WriteFileBytes(path, legacy.data(), legacy.size()).ok());

  ImprintsFileMeta meta;
  auto got = ReadImprintsFile(path, &meta);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_FALSE(meta.has_fingerprint);
  EXPECT_EQ(got->num_rows(), col->size());

  // LoadOrBuild treats the missing fingerprint as stale and upgrades the
  // sidecar to a fingerprinted GIM2 in place.
  auto rebuilt = LoadOrBuildImprints(*col, path);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  ImprintsFileMeta upgraded;
  ASSERT_TRUE(ReadImprintsFile(path, &upgraded).ok());
  EXPECT_TRUE(upgraded.has_fingerprint);
  EXPECT_EQ(upgraded.column_fingerprint, ColumnFingerprint(*col));
}

}  // namespace
}  // namespace geocol
