#include "cache/chunk_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "telemetry/metrics.h"

namespace geocol {
namespace cache {

namespace {

// Per-entry bookkeeping charge: hash map node, LRU node, shared_ptr
// control block, vector header.
constexpr size_t kEntryOverhead = 128;

}  // namespace

ChunkCache::ChunkCache(uint64_t budget_bytes)
    : budget_(budget_bytes), hits_(0), misses_(0), inserts_(0) {}

ChunkCache::~ChunkCache() = default;

ChunkCache& ChunkCache::Global() {
  static ChunkCache* cache = new ChunkCache(DefaultBudgetBytes());
  return *cache;
}

uint64_t ChunkCache::DefaultBudgetBytes() {
  const char* env = std::getenv("GEOCOL_CHUNK_CACHE_MB");
  if (env != nullptr) {
    char* end = nullptr;
    unsigned long long mb = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return uint64_t{mb} * 1024 * 1024;
  }
  return uint64_t{64} * 1024 * 1024;
}

uint64_t ChunkCache::NextFileId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void ChunkCache::SetBudget(uint64_t budget_bytes) {
  budget_.store(budget_bytes, std::memory_order_relaxed);
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    EvictLocked(shard);
  }
  UpdateGauge();
}

void ChunkCache::GrowBudget(uint64_t budget_bytes) {
  uint64_t cur = budget_.load(std::memory_order_relaxed);
  while (budget_bytes > cur &&
         !budget_.compare_exchange_weak(cur, budget_bytes,
                                        std::memory_order_relaxed)) {
  }
}

uint64_t ChunkCache::KeyFor(uint64_t file_id, uint32_t chunk_index) {
  // File ids are a small counter; chunk indexes top out at 2^22 for the
  // largest plausible column (2^40 bytes / 256 KiB), so the pair packs
  // losslessly.
  return (file_id << 24) | chunk_index;
}

ChunkCache::Shard& ChunkCache::ShardFor(uint64_t key) {
  // Spread both the file id and the chunk index across shards so one hot
  // column does not serialise on a single mutex.
  uint64_t h = key * uint64_t{0x9E3779B97F4A7C15};
  return shards_[(h >> 32) % kShards];
}

uint64_t ChunkCache::ShardBudget() const {
  return budget_.load(std::memory_order_relaxed) / kShards;
}

ChunkCache::Payload ChunkCache::Lookup(uint64_t file_id, uint32_t chunk_index) {
  GEOCOL_METRIC_COUNTER(c_hits, "geocol_chunk_cache_hits_total");
  GEOCOL_METRIC_COUNTER(c_faults, "geocol_chunk_faults_total");
  uint64_t key = KeyFor(file_id, chunk_index);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      hits_.fetch_add(1, std::memory_order_relaxed);
      c_hits.Increment();
      return it->second.value;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  c_faults.Increment();
  return nullptr;
}

void ChunkCache::Insert(uint64_t file_id, uint32_t chunk_index,
                        Payload value) {
  if (value == nullptr) return;
  size_t charge = value->capacity() + kEntryOverhead;
  if (charge > ShardBudget()) return;  // oversized: never admitted
  uint64_t key = KeyFor(file_id, chunk_index);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // A concurrent faulter won the race; its bytes are identical (same
      // file id = same immutable generation), keep them.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      return;
    }
    shard.lru.push_front(key);
    Entry entry;
    entry.value = std::move(value);
    entry.bytes = charge;
    entry.lru_it = shard.lru.begin();
    shard.map.emplace(key, std::move(entry));
    shard.bytes += charge;
    EvictLocked(shard);
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  UpdateGauge();
}

void ChunkCache::EvictLocked(Shard& shard) {
  GEOCOL_METRIC_COUNTER(c_evictions, "geocol_chunk_cache_evictions_total");
  uint64_t slice = ShardBudget();
  while (shard.bytes > slice && !shard.lru.empty()) {
    uint64_t victim = shard.lru.back();
    auto it = shard.map.find(victim);
    shard.bytes -= it->second.bytes;
    shard.map.erase(it);
    shard.lru.pop_back();
    ++shard.evictions;
    c_evictions.Increment();
  }
}

void ChunkCache::EraseFile(uint64_t file_id) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if ((it->first >> 24) == file_id) {
        shard.bytes -= it->second.bytes;
        shard.lru.erase(it->second.lru_it);
        it = shard.map.erase(it);
      } else {
        ++it;
      }
    }
  }
  UpdateGauge();
}

void ChunkCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
    shard.bytes = 0;
  }
  UpdateGauge();
}

void ChunkCache::UpdateGauge() {
  GEOCOL_METRIC_GAUGE(g_bytes, "geocol_chunk_cache_bytes");
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.bytes;
  }
  g_bytes.Set(static_cast<int64_t>(total));
}

ChunkCache::Stats ChunkCache::GetStats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.budget_bytes = budget_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.entries += shard.map.size();
    s.bytes += shard.bytes;
    s.evictions += shard.evictions;
  }
  return s;
}

std::string ChunkCache::StatsToString() const {
  Stats s = GetStats();
  uint64_t lookups = s.hits + s.misses;
  double hit_rate = lookups > 0 ? 100.0 * s.hits / lookups : 0.0;
  char buf[256];
  std::string out = "chunk cache (paged columns):\n";
  std::snprintf(buf, sizeof(buf),
                "  budget     %8.1f MiB   used %8.1f MiB   chunks %llu\n",
                s.budget_bytes / 1048576.0, s.bytes / 1048576.0,
                static_cast<unsigned long long>(s.entries));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  hits %llu   faults %llu   evictions %llu   hit-rate %.1f%%\n",
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.misses),
                static_cast<unsigned long long>(s.evictions), hit_rate);
  out += buf;
  return out;
}

}  // namespace cache
}  // namespace geocol
