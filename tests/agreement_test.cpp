// Cross-system agreement: every access path in the repository — the
// imprints engine, full scan, point R-tree, block store (all orderings)
// and file store (plain / lasindex / lassort) — must return the identical
// point set for the identical query over the identical synthetic survey.
// This is the master integration test behind the E3 benchmark.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/block_store.h"
#include "baselines/file_store.h"
#include "baselines/full_scan.h"
#include "baselines/rtree.h"
#include "core/spatial_engine.h"
#include "las/las_reader.h"
#include "loader/binary_loader.h"
#include "pointcloud/generator.h"
#include "util/binary_io.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

std::vector<PointXYZ> RowsToPoints(const FlatTable& table,
                                   const std::vector<uint64_t>& rows) {
  ColumnPtr x = table.column("x"), y = table.column("y"),
            z = table.column("z");
  std::vector<PointXYZ> out;
  out.reserve(rows.size());
  for (uint64_t r : rows) {
    out.push_back({x->GetDouble(r), y->GetDouble(r), z->GetDouble(r)});
  }
  std::sort(out.begin(), out.end());
  return out;
}

class AgreementTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tmp_ = new TempDir("agree");
    AhnGeneratorOptions opts;
    opts.extent = Box(85000, 444000, 85200, 444200);
    opts.point_density = 1.5;
    opts.strip_width = 70.0;
    opts.scan_line_spacing = 0.8;
    opts.target_points_per_tile = 10000;
    AhnGenerator gen(opts);
    ASSERT_TRUE(MakeDir(tmp_->File("tiles")).ok());
    ASSERT_TRUE(MakeDir(tmp_->File("scratch")).ok());
    ASSERT_TRUE(gen.WriteTileDirectory(tmp_->File("tiles"), false).ok());

    // Load the flat table through the paper's binary loader.
    BinaryLoader loader(tmp_->File("scratch"));
    auto table = loader.LoadDirectory(tmp_->File("tiles"));
    ASSERT_TRUE(table.ok());
    table_ = new std::shared_ptr<FlatTable>(*table);

    // Collect raw records for the block store.
    records_ = new std::vector<LasPointRecord>();
    std::vector<std::string> files;
    ASSERT_TRUE(ListFiles(tmp_->File("tiles"), ".las", &files).ok());
    LasHeader header;
    for (const auto& f : files) {
      auto tile = ReadLasFile(f);
      ASSERT_TRUE(tile.ok());
      header = tile->header;
      records_->insert(records_->end(), tile->points.begin(),
                       tile->points.end());
    }
    header_ = new LasHeader(header);
  }

  static void TearDownTestSuite() {
    delete records_;
    delete header_;
    delete table_;
    delete tmp_;
    records_ = nullptr;
    header_ = nullptr;
    table_ = nullptr;
    tmp_ = nullptr;
  }

  static TempDir* tmp_;
  static std::shared_ptr<FlatTable>* table_;
  static std::vector<LasPointRecord>* records_;
  static LasHeader* header_;
};

TempDir* AgreementTest::tmp_ = nullptr;
std::shared_ptr<FlatTable>* AgreementTest::table_ = nullptr;
std::vector<LasPointRecord>* AgreementTest::records_ = nullptr;
LasHeader* AgreementTest::header_ = nullptr;

TEST_F(AgreementTest, AllSystemsAgreeOnRegionSelections) {
  const std::shared_ptr<FlatTable>& table = *table_;
  SpatialQueryEngine engine(table);
  auto rtree = BuildPointRTree(*table);
  ASSERT_TRUE(rtree.ok());
  auto block_store = BlockStore::Build(*records_, *header_);
  ASSERT_TRUE(block_store.ok());
  auto file_store = FileStore::Open(tmp_->File("tiles"));
  ASSERT_TRUE(file_store.ok());
  FileStoreOptions idx_opts;
  idx_opts.use_index = true;
  auto file_store_idx = FileStore::Open(tmp_->File("tiles"), idx_opts);
  ASSERT_TRUE(file_store_idx.ok());
  ASSERT_TRUE(file_store_idx->BuildIndexes().ok());

  const Box queries[] = {
      Box(85010, 444010, 85050, 444050),     // small region
      Box(85000, 444000, 85200, 444200),     // whole survey
      Box(85100, 444100, 85101, 444101),     // needle
      Box(84000, 443000, 84500, 443500),     // disjoint
      Box(85190, 444190, 85400, 444400),     // partial overlap
  };
  for (const Box& q : queries) {
    SCOPED_TRACE(testing::Message() << "query box " << q.min_x << ","
                                    << q.min_y << " - " << q.max_x << ","
                                    << q.max_y);
    Geometry g(q);
    auto eng_res = engine.SelectInBox(q);
    ASSERT_TRUE(eng_res.ok());
    std::vector<PointXYZ> expected = RowsToPoints(*table, eng_res->row_ids);

    auto scan_res = FullScanSelectBox(*table, q);
    ASSERT_TRUE(scan_res.ok());
    EXPECT_EQ(RowsToPoints(*table, *scan_res), expected) << "full scan";

    std::vector<uint64_t> rtree_rows;
    rtree->QueryBox(q, &rtree_rows);
    std::sort(rtree_rows.begin(), rtree_rows.end());
    EXPECT_EQ(RowsToPoints(*table, rtree_rows), expected) << "point R-tree";

    auto block_res = block_store->QueryGeometry(g);
    ASSERT_TRUE(block_res.ok());
    std::sort(block_res->begin(), block_res->end());
    EXPECT_EQ(*block_res, expected) << "block store";

    auto file_res = file_store->QueryGeometry(g);
    ASSERT_TRUE(file_res.ok());
    std::sort(file_res->begin(), file_res->end());
    EXPECT_EQ(*file_res, expected) << "file store";

    auto file_idx_res = file_store_idx->QueryGeometry(g);
    ASSERT_TRUE(file_idx_res.ok());
    std::sort(file_idx_res->begin(), file_idx_res->end());
    EXPECT_EQ(*file_idx_res, expected) << "file store + lasindex";
  }
}

TEST_F(AgreementTest, PolygonQueriesAgree) {
  const std::shared_ptr<FlatTable>& table = *table_;
  SpatialQueryEngine engine(table);
  auto block_store = BlockStore::Build(*records_, *header_);
  ASSERT_TRUE(block_store.ok());
  auto file_store = FileStore::Open(tmp_->File("tiles"));
  ASSERT_TRUE(file_store.ok());

  Polygon poly;
  poly.shell.points = {{85020, 444020}, {85180, 444060},
                       {85150, 444180}, {85040, 444150}};
  Geometry g(poly);
  auto eng_res = engine.SelectInGeometry(g);
  ASSERT_TRUE(eng_res.ok());
  std::vector<PointXYZ> expected = RowsToPoints(*table, eng_res->row_ids);
  ASSERT_FALSE(expected.empty());

  auto oracle = FullScanSelect(*table, g);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(RowsToPoints(*table, *oracle), expected);

  auto block_res = block_store->QueryGeometry(g);
  ASSERT_TRUE(block_res.ok());
  std::sort(block_res->begin(), block_res->end());
  EXPECT_EQ(*block_res, expected);

  auto file_res = file_store->QueryGeometry(g);
  ASSERT_TRUE(file_res.ok());
  std::sort(file_res->begin(), file_res->end());
  EXPECT_EQ(*file_res, expected);
}

TEST_F(AgreementTest, BufferedLineQueriesAgree) {
  const std::shared_ptr<FlatTable>& table = *table_;
  SpatialQueryEngine engine(table);
  auto block_store = BlockStore::Build(*records_, *header_);
  ASSERT_TRUE(block_store.ok());
  auto file_store = FileStore::Open(tmp_->File("tiles"));
  ASSERT_TRUE(file_store.ok());

  LineString road;
  road.points = {{85000, 444100}, {85080, 444110}, {85200, 444090}};
  Geometry g(road);
  const double d = 12.0;
  auto eng_res = engine.SelectWithinDistance(g, d);
  ASSERT_TRUE(eng_res.ok());
  std::vector<PointXYZ> expected = RowsToPoints(*table, eng_res->row_ids);
  ASSERT_FALSE(expected.empty());

  auto block_res = block_store->QueryGeometry(g, d);
  ASSERT_TRUE(block_res.ok());
  std::sort(block_res->begin(), block_res->end());
  EXPECT_EQ(*block_res, expected);

  auto file_res = file_store->QueryGeometry(g, d);
  ASSERT_TRUE(file_res.ok());
  std::sort(file_res->begin(), file_res->end());
  EXPECT_EQ(*file_res, expected);
}

TEST_F(AgreementTest, LassortedFileStoreStillAgrees) {
  const std::shared_ptr<FlatTable>& table = *table_;
  SpatialQueryEngine engine(table);
  // Copy tiles into a sortable directory (SortTiles rewrites in place).
  std::string sorted_dir = tmp_->File("sorted");
  ASSERT_TRUE(MakeDir(sorted_dir).ok());
  std::vector<std::string> files;
  ASSERT_TRUE(ListFiles(tmp_->File("tiles"), ".las", &files).ok());
  for (const auto& f : files) {
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(ReadFileBytes(f, &bytes).ok());
    std::string name = f.substr(f.find_last_of('/') + 1);
    ASSERT_TRUE(
        WriteFileBytes(sorted_dir + "/" + name, bytes.data(), bytes.size())
            .ok());
  }
  ASSERT_TRUE(FileStore::SortTiles(sorted_dir).ok());
  FileStoreOptions idx_opts;
  idx_opts.use_index = true;
  auto store = FileStore::Open(sorted_dir, idx_opts);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->BuildIndexes().ok());

  Box q(85030, 444030, 85120, 444160);
  auto eng_res = engine.SelectInBox(q);
  ASSERT_TRUE(eng_res.ok());
  auto res = store->QueryGeometry(Geometry(q));
  ASSERT_TRUE(res.ok());
  std::sort(res->begin(), res->end());
  EXPECT_EQ(*res, RowsToPoints(*table, eng_res->row_ids));
}

}  // namespace
}  // namespace geocol
