// File store (LAStools-like) tests: header pre-filter, lasindex sidecars,
// lassort, compressed tiles, and oracle agreement.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/file_store.h"
#include "geom/predicates.h"
#include "las/las_reader.h"
#include "pointcloud/generator.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

AhnGeneratorOptions TinyOptions() {
  AhnGeneratorOptions opts;
  opts.extent = Box(85000, 444000, 85150, 444150);
  opts.point_density = 2.0;
  opts.strip_width = 50.0;
  opts.scan_line_spacing = 0.7;
  opts.target_points_per_tile = 6000;
  return opts;
}

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(MakeDir(dir()).ok());
    AhnGenerator gen(TinyOptions());
    auto tiles = gen.WriteTileDirectory(dir(), /*compress=*/false);
    ASSERT_TRUE(tiles.ok());
    num_tiles_ = *tiles;
  }

  std::string dir() const { return tmp_.File("tiles"); }

  // Oracle: read every tile, test every point.
  std::vector<PointXYZ> Oracle(const Geometry& g, double buffer) {
    std::vector<std::string> files;
    EXPECT_TRUE(ListFiles(dir(), ".las", &files).ok());
    EXPECT_TRUE(ListFiles(dir(), ".laz", &files).ok());
    std::vector<PointXYZ> out;
    for (const auto& f : files) {
      auto tile = ReadLasFile(f);
      EXPECT_TRUE(tile.ok());
      for (const auto& rec : tile->points) {
        Point p{tile->WorldX(rec), tile->WorldY(rec)};
        bool hit = buffer > 0 ? GeometryDWithin(g, p, buffer)
                              : GeometryContainsPoint(g, p);
        if (hit) out.push_back({p.x, p.y, tile->WorldZ(rec)});
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  TempDir tmp_;
  uint64_t num_tiles_ = 0;
};

TEST_F(FileStoreTest, OpenFindsAllTiles) {
  auto store = FileStore::Open(dir());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->num_files(), num_tiles_);
}

TEST_F(FileStoreTest, OpenEmptyDirIsNotFound) {
  std::string empty = tmp_.File("empty");
  ASSERT_TRUE(MakeDir(empty).ok());
  EXPECT_EQ(FileStore::Open(empty).status().code(), StatusCode::kNotFound);
}

TEST_F(FileStoreTest, QueryMatchesOracleUnindexed) {
  auto store = FileStore::Open(dir());
  ASSERT_TRUE(store.ok());
  Geometry q(Box(85020, 444020, 85090, 444100));
  FileStore::QueryStats stats;
  auto res = store->QueryGeometry(q, 0, &stats);
  ASSERT_TRUE(res.ok());
  std::sort(res->begin(), res->end());
  EXPECT_EQ(*res, Oracle(q, 0));
  EXPECT_EQ(stats.headers_inspected, num_tiles_);
  EXPECT_EQ(stats.results, res->size());
}

TEST_F(FileStoreTest, HeaderPrefilterSkipsDisjointTiles) {
  auto store = FileStore::Open(dir());
  ASSERT_TRUE(store.ok());
  Geometry far(Box(0, 0, 1, 1));  // nowhere near the survey
  FileStore::QueryStats stats;
  auto res = store->QueryGeometry(far, 0, &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->empty());
  EXPECT_EQ(stats.headers_inspected, num_tiles_);  // headers always read
  EXPECT_EQ(stats.files_opened, 0u);               // but no payload touched
  EXPECT_EQ(stats.points_read, 0u);
}

TEST_F(FileStoreTest, IndexedQueryMatchesOracleAndReadsFewerPoints) {
  FileStoreOptions with_index;
  with_index.use_index = true;
  auto plain = FileStore::Open(dir());
  auto indexed = FileStore::Open(dir(), with_index);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(indexed.ok());
  auto lax_bytes = indexed->BuildIndexes();
  ASSERT_TRUE(lax_bytes.ok());
  EXPECT_GT(*lax_bytes, 0u);

  Geometry q(Box(85040, 444040, 85070, 444080));
  FileStore::QueryStats sp, si;
  auto rp = plain->QueryGeometry(q, 0, &sp);
  auto ri = indexed->QueryGeometry(q, 0, &si);
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(ri.ok());
  std::sort(rp->begin(), rp->end());
  std::sort(ri->begin(), ri->end());
  EXPECT_EQ(*rp, *ri);
  EXPECT_EQ(*ri, Oracle(q, 0));
  EXPECT_LT(si.points_read, sp.points_read)
      << "lasindex must avoid reading most points";
}

TEST_F(FileStoreTest, SortTilesImprovesIndexSelectivity) {
  FileStoreOptions with_index;
  with_index.use_index = true;
  // lasindex before lassort: scan-ordered tiles produce fragmented cell
  // intervals; after lassort the intervals coalesce and reads shrink.
  auto store1 = FileStore::Open(dir(), with_index);
  ASSERT_TRUE(store1.ok());
  ASSERT_TRUE(store1->BuildIndexes().ok());
  Geometry q(Box(85030, 444030, 85045, 444045));
  FileStore::QueryStats before;
  auto r1 = store1->QueryGeometry(q, 0, &before);
  ASSERT_TRUE(r1.ok());

  ASSERT_TRUE(FileStore::SortTiles(dir()).ok());
  auto store2 = FileStore::Open(dir(), with_index);
  ASSERT_TRUE(store2.ok());
  ASSERT_TRUE(store2->BuildIndexes().ok());
  FileStore::QueryStats after;
  auto r2 = store2->QueryGeometry(q, 0, &after);
  ASSERT_TRUE(r2.ok());

  std::sort(r1->begin(), r1->end());
  std::sort(r2->begin(), r2->end());
  EXPECT_EQ(*r1, *r2) << "lassort must not change answers";
  EXPECT_LE(after.points_read, before.points_read);
}

TEST_F(FileStoreTest, CompressedTilesAnswerIdentically) {
  std::string laz_dir = tmp_.File("laz");
  ASSERT_TRUE(MakeDir(laz_dir).ok());
  AhnGenerator gen(TinyOptions());
  ASSERT_TRUE(gen.WriteTileDirectory(laz_dir, /*compress=*/true).ok());
  auto las_store = FileStore::Open(dir());
  auto laz_store = FileStore::Open(laz_dir);
  ASSERT_TRUE(las_store.ok());
  ASSERT_TRUE(laz_store.ok());
  Geometry q(Polygon::Circle({85075, 444075}, 40, 24));
  auto r1 = las_store->QueryGeometry(q);
  auto r2 = laz_store->QueryGeometry(q);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  std::sort(r1->begin(), r1->end());
  std::sort(r2->begin(), r2->end());
  EXPECT_EQ(*r1, *r2);
}

TEST_F(FileStoreTest, IndexedCompressedTilesStillCorrect) {
  std::string laz_dir = tmp_.File("lazidx");
  ASSERT_TRUE(MakeDir(laz_dir).ok());
  AhnGenerator gen(TinyOptions());
  ASSERT_TRUE(gen.WriteTileDirectory(laz_dir, /*compress=*/true).ok());
  FileStoreOptions with_index;
  with_index.use_index = true;
  auto store = FileStore::Open(laz_dir, with_index);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->BuildIndexes().ok());
  Geometry q(Box(85020, 444020, 85060, 444060));
  auto res = store->QueryGeometry(q);
  ASSERT_TRUE(res.ok());
  auto plain = FileStore::Open(laz_dir);
  ASSERT_TRUE(plain.ok());
  auto expected = plain->QueryGeometry(q);
  ASSERT_TRUE(expected.ok());
  std::sort(res->begin(), res->end());
  std::sort(expected->begin(), expected->end());
  EXPECT_EQ(*res, *expected);
}

TEST_F(FileStoreTest, BufferedQueryMatchesOracle) {
  auto store = FileStore::Open(dir());
  ASSERT_TRUE(store.ok());
  LineString road;
  road.points = {{85000, 444075}, {85150, 444080}};
  Geometry g(road);
  auto res = store->QueryGeometry(g, 10.0);
  ASSERT_TRUE(res.ok());
  std::sort(res->begin(), res->end());
  EXPECT_EQ(*res, Oracle(g, 10.0));
}

}  // namespace
}  // namespace geocol
