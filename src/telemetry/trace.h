// Query tracing: export a QueryProfile span tree as Chrome trace_event
// JSON (load in chrome://tracing or Perfetto) or JSONL, and keep the last
// N traced queries in a process-global ring buffer so `geocol_tool trace`
// and the SQL session's slow-query log can inspect recent executions.
#ifndef GEOCOL_TELEMETRY_TRACE_H_
#define GEOCOL_TELEMETRY_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "core/profile.h"

namespace geocol {
namespace telemetry {

/// Renders a profile as a Chrome trace_event JSON document: one complete
/// ("ph":"X") event per span, timestamps/durations in microseconds,
/// span attributes and cardinalities under "args". Span timestamps are
/// epoch-rebased (relative to the profile's start); when
/// `start_unix_nanos` is nonzero the document's "otherData" carries the
/// query's wall-clock start (unix ns + ISO-8601 UTC) so a trace can be
/// correlated with logs and flight-recorder events.
std::string ProfileToChromeTrace(const QueryProfile& profile,
                                 const std::string& label,
                                 int64_t start_unix_nanos = 0);

/// One JSON object per line, one line per span (log-pipeline friendly).
std::string ProfileToJsonl(const QueryProfile& profile,
                           const std::string& label);

/// One recorded query execution.
struct TraceRecord {
  std::string query;      ///< SQL text or tool-level description
  QueryProfile profile;   ///< span tree
  int64_t wall_nanos = 0; ///< end-to-end wall time incl. parse/plan
  int64_t start_unix_nanos = 0;  ///< wall clock at statement start (unix ns)
};

/// Fixed-capacity ring of recent query traces. Thread-safe.
class TraceRing {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  static TraceRing& Global();

  explicit TraceRing(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  void Record(TraceRecord record);

  /// All retained records, oldest first.
  std::vector<TraceRecord> Snapshot() const;

  /// Most recent record, or false when empty.
  bool Latest(TraceRecord* out) const;

  void Clear();
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TraceRecord> records_;
};

}  // namespace telemetry
}  // namespace geocol

#endif  // GEOCOL_TELEMETRY_TRACE_H_
