#include "las/las_writer.h"

#include "las/laz.h"
#include "util/binary_io.h"

namespace geocol {

namespace {
constexpr char kLasMagic[4] = {'G', 'L', 'A', 'S'};

Status WriteHeader(BinaryWriter* w, const LasHeader& h) {
  GEOCOL_RETURN_NOT_OK(w->WriteBytes(kLasMagic, 4));
  GEOCOL_RETURN_NOT_OK(w->WriteScalar<uint64_t>(h.point_count));
  for (double v : h.scale) GEOCOL_RETURN_NOT_OK(w->WriteScalar(v));
  for (double v : h.offset) GEOCOL_RETURN_NOT_OK(w->WriteScalar(v));
  for (double v : h.min_world) GEOCOL_RETURN_NOT_OK(w->WriteScalar(v));
  for (double v : h.max_world) GEOCOL_RETURN_NOT_OK(w->WriteScalar(v));
  GEOCOL_RETURN_NOT_OK(w->WriteScalar<uint16_t>(h.record_length));
  GEOCOL_RETURN_NOT_OK(w->WriteScalar<uint8_t>(h.compressed));
  return Status::OK();
}

Status WriteFileImpl(LasTile& tile, const std::string& path, bool compressed) {
  tile.RecomputeHeader();
  tile.header.compressed = compressed ? 1 : 0;
  BinaryWriter w;
  GEOCOL_RETURN_NOT_OK(w.Open(path));
  GEOCOL_RETURN_NOT_OK(WriteHeader(&w, tile.header));
  if (compressed) {
    std::vector<uint8_t> payload;
    GEOCOL_RETURN_NOT_OK(LazCompress(tile.points, &payload));
    GEOCOL_RETURN_NOT_OK(w.WriteScalar<uint64_t>(payload.size()));
    GEOCOL_RETURN_NOT_OK(w.WriteBytes(payload.data(), payload.size()));
  } else {
    std::vector<uint8_t> buf(tile.points.size() * kLasRecordBytes);
    for (size_t i = 0; i < tile.points.size(); ++i) {
      SerializeRecord(tile.points[i], buf.data() + i * kLasRecordBytes);
    }
    GEOCOL_RETURN_NOT_OK(w.WriteBytes(buf.data(), buf.size()));
  }
  return w.Close();
}
}  // namespace

Status WriteLasFile(LasTile& tile, const std::string& path) {
  return WriteFileImpl(tile, path, /*compressed=*/false);
}

Status WriteLazFile(LasTile& tile, const std::string& path) {
  return WriteFileImpl(tile, path, /*compressed=*/true);
}

Status WriteTileFile(LasTile& tile, const std::string& path) {
  bool laz = path.size() >= 4 && path.compare(path.size() - 4, 4, ".laz") == 0;
  return WriteFileImpl(tile, path, laz);
}

}  // namespace geocol
