#include "loader/binary_loader.h"

#include <cstdio>

#include "columns/column_file.h"
#include "las/las_reader.h"
#include "util/binary_io.h"
#include "util/tempdir.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace geocol {

Result<std::vector<std::string>> BinaryLoader::ConvertToDumps(
    const std::string& las_path, const std::string& prefix, LoadStats* stats) {
  Timer t;
  GEOCOL_ASSIGN_OR_RETURN(LasTile tile, ReadLasFile(las_path));
  if (stats != nullptr) {
    stats->read_seconds += t.ElapsedSeconds();
    GEOCOL_ASSIGN_OR_RETURN(uint64_t sz, FileSizeBytes(las_path));
    stats->bytes_read += sz;
    stats->points += tile.points.size();
    ++stats->files;
  }

  t.Restart();
  // Materialise the tile column-wise, then dump each attribute as a raw
  // C-array file.
  FlatTable staging("staging", LasPointSchema());
  GEOCOL_RETURN_NOT_OK(AppendTileToTable(tile, &staging));
  std::vector<std::string> paths;
  paths.reserve(staging.num_columns());
  for (const auto& col : staging.columns()) {
    std::string path = scratch_dir_ + "/" + prefix + "." + col->name() + ".bin";
    GEOCOL_RETURN_NOT_OK(WriteRawDump(*col, path));
    paths.push_back(std::move(path));
  }
  if (stats != nullptr) stats->convert_seconds += t.ElapsedSeconds();
  return paths;
}

Status BinaryLoader::CopyBinary(const std::vector<std::string>& dump_paths,
                                FlatTable* table, LoadStats* stats) {
  if (dump_paths.size() != table->num_columns()) {
    return Status::InvalidArgument("dump count != column count");
  }
  Timer t;
  for (size_t c = 0; c < dump_paths.size(); ++c) {
    GEOCOL_RETURN_NOT_OK(AppendRawDump(dump_paths[c], table->column(c).get()));
  }
  GEOCOL_RETURN_NOT_OK(table->Validate());
  if (stats != nullptr) stats->append_seconds += t.ElapsedSeconds();
  return Status::OK();
}

Status BinaryLoader::LoadFile(const std::string& path, FlatTable* table,
                              LoadStats* stats) {
  // Derive a scratch prefix from the file name.
  size_t slash = path.find_last_of('/');
  std::string prefix = slash == std::string::npos ? path : path.substr(slash + 1);
  GEOCOL_ASSIGN_OR_RETURN(std::vector<std::string> dumps,
                          ConvertToDumps(path, prefix, stats));
  GEOCOL_RETURN_NOT_OK(CopyBinary(dumps, table, stats));
  // The intermediate dumps are transient.
  for (const auto& d : dumps) ::remove(d.c_str());
  return Status::OK();
}

Result<std::shared_ptr<FlatTable>> BinaryLoader::LoadDirectoryParallel(
    const std::string& dir, size_t threads, LoadStats* stats) {
  std::vector<std::string> files;
  GEOCOL_RETURN_NOT_OK(ListFiles(dir, ".las", &files));
  GEOCOL_RETURN_NOT_OK(ListFiles(dir, ".laz", &files));
  if (files.empty()) {
    return Status::NotFound("no .las/.laz files under " + dir);
  }
  Timer wall;
  // Phase 1: per-file conversion fans out; each task gets its own stats so
  // there is no shared mutable state.
  std::vector<std::vector<std::string>> dumps(files.size());
  std::vector<LoadStats> per_file(files.size());
  std::vector<Status> statuses(files.size());
  {
    ThreadPool pool(threads);
    pool.ParallelFor(files.size(), [&](size_t i) {
      size_t slash = files[i].find_last_of('/');
      std::string prefix = slash == std::string::npos
                               ? files[i]
                               : files[i].substr(slash + 1);
      auto res = ConvertToDumps(files[i], prefix, &per_file[i]);
      if (res.ok()) {
        dumps[i] = std::move(*res);
      } else {
        statuses[i] = res.status();
      }
    });
  }
  for (const Status& st : statuses) GEOCOL_RETURN_NOT_OK(st);

  // Phase 2: COPY BINARY in file order (append order defines row order).
  auto table = std::make_shared<FlatTable>("ahn2", LasPointSchema());
  LoadStats append_stats;
  for (size_t i = 0; i < files.size(); ++i) {
    GEOCOL_RETURN_NOT_OK(CopyBinary(dumps[i], table.get(), &append_stats));
    for (const auto& d : dumps[i]) ::remove(d.c_str());
  }
  if (stats != nullptr) {
    LoadStats total;
    for (const LoadStats& s : per_file) {
      total.files += s.files;
      total.points += s.points;
      total.bytes_read += s.bytes_read;
      total.read_seconds += s.read_seconds;
      total.convert_seconds += s.convert_seconds;
    }
    total.append_seconds = append_stats.append_seconds;
    // With parallel conversion the per-phase CPU seconds overstate wall
    // time; report wall-clock read+convert instead.
    double wall_s = wall.ElapsedSeconds();
    double serial_front = total.read_seconds + total.convert_seconds;
    if (serial_front > wall_s) {
      double scale = (wall_s - total.append_seconds) / serial_front;
      if (scale > 0) {
        total.read_seconds *= scale;
        total.convert_seconds *= scale;
      }
    }
    *stats = total;
  }
  return table;
}

Result<std::shared_ptr<FlatTable>> BinaryLoader::LoadDirectory(
    const std::string& dir, LoadStats* stats) {
  std::vector<std::string> files;
  GEOCOL_RETURN_NOT_OK(ListFiles(dir, ".las", &files));
  GEOCOL_RETURN_NOT_OK(ListFiles(dir, ".laz", &files));
  if (files.empty()) {
    return Status::NotFound("no .las/.laz files under " + dir);
  }
  auto table = std::make_shared<FlatTable>("ahn2", LasPointSchema());
  for (const std::string& f : files) {
    GEOCOL_RETURN_NOT_OK(LoadFile(f, table.get(), stats));
  }
  return table;
}

}  // namespace geocol
