// Differential shard-equivalence suite: the same seeded workload runs
// through a ShardRouter at K in {1, 4, 16} shards and through a single
// SpatialQueryEngine over the Hilbert-sorted flat table (the oracle), for
// every {thread count} x {SIMD level} configuration. Global row ids and
// aggregate values must be bit-identical everywhere; filter/refine stats
// must match the oracle verbatim at K = 1 (for K > 1 per-shard imprints
// cover different cacheline populations, so only the answers — not the
// counters — are reproducible; the merged counters are checked for the
// deterministic field-wise sum instead by comparing across router
// configurations).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "columns/sharded_table.h"
#include "core/shard_router.h"
#include "core/spatial_engine.h"
#include "geom/geometry.h"
#include "simd/dispatch.h"
#include "util/rng.h"

namespace geocol {
namespace {

std::shared_ptr<FlatTable> MakeTable(size_t n, uint64_t seed,
                                     const Box& extent) {
  Rng rng(seed);
  std::vector<double> xs(n), ys(n), zs(n);
  std::vector<uint8_t> cls(n);
  std::vector<uint16_t> intensity(n);
  for (size_t i = 0; i < n; ++i) {
    // Clustered, not uniform: most points huddle around a few centres so
    // shard bboxes separate and pruning actually exercises.
    double cx = (i % 5) * extent.width() / 5.0 + extent.min_x;
    double cy = (i % 7) * extent.height() / 7.0 + extent.min_y;
    xs[i] = std::clamp(cx + rng.UniformDouble(0, extent.width() / 6.0),
                       extent.min_x, extent.max_x);
    ys[i] = std::clamp(cy + rng.UniformDouble(0, extent.height() / 8.0),
                       extent.min_y, extent.max_y);
    zs[i] = rng.UniformDouble(-5, 40);
    cls[i] = static_cast<uint8_t>(rng.Uniform(10));
    intensity[i] = static_cast<uint16_t>(rng.Uniform(256));
  }
  auto t = std::make_shared<FlatTable>("pc");
  EXPECT_TRUE(t->AddColumn(Column::FromVector("x", xs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("y", ys)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("z", zs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("classification", cls)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("intensity", intensity)).ok());
  return t;
}

struct WorkloadQuery {
  Geometry geometry{Box(0, 0, 1, 1)};
  double buffer = 0.0;
  std::vector<AttributeRange> thematic;
  bool aggregate = false;
  AggKind kind = AggKind::kAvg;
  std::string agg_column;
};

// Geometries are drawn inside the table extent so every query envelope
// intersects at least one shard bbox — required for the K = 1 verbatim
// stats check (a fully pruned K = 1 router returns zero stats where the
// unsharded engine would still have scanned imprints).
std::vector<WorkloadQuery> MakeWorkload(uint64_t seed, size_t count,
                                        double world) {
  Rng rng(seed);
  std::vector<WorkloadQuery> queries;
  for (size_t i = 0; i < count; ++i) {
    WorkloadQuery q;
    switch (rng.Uniform(3)) {
      case 0: {
        double x = rng.UniformDouble(0, world * 0.8);
        double y = rng.UniformDouble(0, world * 0.8);
        q.geometry = Geometry(Box(x, y, x + rng.UniformDouble(1, world * 0.3),
                                  y + rng.UniformDouble(1, world * 0.3)));
        break;
      }
      case 1: {
        Point c{rng.UniformDouble(world * 0.2, world * 0.8),
                rng.UniformDouble(world * 0.2, world * 0.8)};
        int n = 3 + static_cast<int>(rng.Uniform(8));
        Polygon p;
        for (int j = 0; j < n; ++j) {
          double a = 2 * M_PI * j / n;
          double r = rng.UniformDouble(world * 0.05, world * 0.25);
          p.shell.points.push_back(
              {c.x + r * std::cos(a), c.y + r * std::sin(a)});
        }
        q.geometry = Geometry(std::move(p));
        break;
      }
      default: {
        LineString l;
        int n = 2 + static_cast<int>(rng.Uniform(4));
        for (int j = 0; j < n; ++j) {
          l.points.push_back(
              {rng.UniformDouble(0, world), rng.UniformDouble(0, world)});
        }
        q.geometry = Geometry(std::move(l));
        q.buffer = rng.UniformDouble(0.5, world * 0.05);
        break;
      }
    }
    int ranges = static_cast<int>(rng.Uniform(3));
    if (ranges >= 1) {
      q.thematic.push_back({"classification",
                            static_cast<double>(rng.Uniform(6)),
                            static_cast<double>(4 + rng.Uniform(6))});
    }
    if (ranges >= 2) {
      double lo = rng.UniformDouble(0, 200);
      q.thematic.push_back({"intensity", lo, lo + rng.UniformDouble(10, 80)});
    }
    if (rng.NextBool(0.4)) {
      q.aggregate = true;
      q.kind = static_cast<AggKind>(rng.Uniform(5));
      q.agg_column = rng.NextBool() ? "z" : "intensity";
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

void ExpectFilterStatsEq(const ImprintScanStats& a, const ImprintScanStats& b,
                         const char* what) {
  EXPECT_EQ(a.lines_total, b.lines_total) << what;
  EXPECT_EQ(a.lines_candidate, b.lines_candidate) << what;
  EXPECT_EQ(a.lines_full, b.lines_full) << what;
  EXPECT_EQ(a.values_checked, b.values_checked) << what;
  EXPECT_EQ(a.rows_selected, b.rows_selected) << what;
  EXPECT_EQ(a.rows_full, b.rows_full) << what;
}

void ExpectRefineStatsEq(const RefinementStats& a, const RefinementStats& b,
                         const char* what) {
  EXPECT_EQ(a.candidates, b.candidates) << what;
  EXPECT_EQ(a.accepted, b.accepted) << what;
  EXPECT_EQ(a.cells_total, b.cells_total) << what;
  EXPECT_EQ(a.cells_nonempty, b.cells_nonempty) << what;
  EXPECT_EQ(a.cells_inside, b.cells_inside) << what;
  EXPECT_EQ(a.cells_outside, b.cells_outside) << what;
  EXPECT_EQ(a.cells_boundary, b.cells_boundary) << what;
  EXPECT_EQ(a.exact_tests, b.exact_tests) << what;
}

bool SameBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

struct EngineConfig {
  uint32_t threads;
  simd::SimdLevel level;
};

std::vector<EngineConfig> Configs() {
  std::vector<EngineConfig> configs = {{1, simd::SimdLevel::kScalar},
                                       {3, simd::SimdLevel::kScalar}};
  if (simd::MaxSupportedSimdLevel() != simd::SimdLevel::kScalar) {
    configs.push_back({1, simd::MaxSupportedSimdLevel()});
    configs.push_back({3, simd::MaxSupportedSimdLevel()});
  }
  return configs;
}

struct SimdLevelGuard {
  ~SimdLevelGuard() { simd::SetSimdLevel(simd::MaxSupportedSimdLevel()); }
};

constexpr double kWorld = 1000.0;

// One query's observables as seen through a router or an engine.
struct Observed {
  std::vector<uint64_t> row_ids;
  bool aggregate = false;
  double agg_value = 0.0;
  ImprintScanStats filter_x, filter_y;
  RefinementStats refine;
};

TEST(ShardEquivalenceTest, RouterMatchesSortedEngineAcrossKThreadsSimd) {
  SimdLevelGuard guard;
  auto source = MakeTable(20000, 7, Box(0, 0, kWorld, kWorld));
  auto workload = MakeWorkload(1234, 30, kWorld);

  for (const EngineConfig& cfg : Configs()) {
    SCOPED_TRACE(testing::Message() << "threads=" << cfg.threads << " simd="
                                    << simd::SimdLevelName(cfg.level));
    simd::SetSimdLevel(cfg.level);

    // Oracle: one engine over the K = 1 shard — the Hilbert-sorted flat
    // table itself. Global row ids of any router are defined against this
    // row order.
    ShardingOptions one;
    one.num_shards = 1;
    auto sorted = ShardedTable::Create(*source, one);
    ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
    EngineOptions opts;
    opts.num_threads = cfg.threads;
    SpatialQueryEngine oracle((*sorted)->shard(0).table, opts);

    std::vector<Observed> expected;
    for (const WorkloadQuery& q : workload) {
      Observed o;
      auto sel = oracle.Select(q.geometry, q.buffer, q.thematic);
      ASSERT_TRUE(sel.ok()) << sel.status().ToString();
      o.row_ids = sel->row_ids;
      o.filter_x = sel->filter_x;
      o.filter_y = sel->filter_y;
      o.refine = sel->refine;
      if (q.aggregate) {
        auto v = oracle.Aggregate(q.geometry, q.buffer, q.thematic,
                                  q.agg_column, q.kind);
        ASSERT_TRUE(v.ok()) << v.status().ToString();
        o.aggregate = true;
        o.agg_value = *v;
      }
      expected.push_back(std::move(o));
    }

    for (uint32_t k : {1u, 4u, 16u}) {
      SCOPED_TRACE(testing::Message() << "K=" << k);
      ShardingOptions so;
      so.num_shards = k;
      auto sharded = ShardedTable::Create(*source, so);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      ShardRouter router(*sharded, opts);
      for (size_t i = 0; i < workload.size(); ++i) {
        SCOPED_TRACE(testing::Message() << "query " << i);
        const WorkloadQuery& q = workload[i];
        auto sel = router.Select(q.geometry, q.buffer, q.thematic);
        ASSERT_TRUE(sel.ok()) << sel.status().ToString();
        // The headline contract: merged global row ids are bit-identical
        // to the unsharded engine over the sorted table, at every K,
        // thread count and SIMD level.
        EXPECT_EQ(sel->row_ids, expected[i].row_ids);
        if (k == 1) {
          // A single shard IS the sorted table; stats pass through
          // verbatim.
          ExpectFilterStatsEq(sel->filter_x, expected[i].filter_x, "x");
          ExpectFilterStatsEq(sel->filter_y, expected[i].filter_y, "y");
          ExpectRefineStatsEq(sel->refine, expected[i].refine, "refine");
        }
        if (q.aggregate) {
          auto v = router.Aggregate(q.geometry, q.buffer, q.thematic,
                                    q.agg_column, q.kind);
          ASSERT_TRUE(v.ok()) << v.status().ToString();
          EXPECT_TRUE(SameBits(*v, expected[i].agg_value))
              << *v << " vs " << expected[i].agg_value;
        }
      }
    }
  }
}

// The merged K > 1 stats are deterministic: every configuration (thread
// count, SIMD level) of the same K produces the same field-wise sums.
TEST(ShardEquivalenceTest, MergedStatsDeterministicAcrossConfigs) {
  SimdLevelGuard guard;
  auto source = MakeTable(12000, 11, Box(0, 0, kWorld, kWorld));
  auto workload = MakeWorkload(99, 12, kWorld);
  ShardingOptions so;
  so.num_shards = 4;
  auto sharded = ShardedTable::Create(*source, so);
  ASSERT_TRUE(sharded.ok());

  std::vector<Observed> baseline;
  bool first = true;
  for (const EngineConfig& cfg : Configs()) {
    SCOPED_TRACE(testing::Message() << "threads=" << cfg.threads << " simd="
                                    << simd::SimdLevelName(cfg.level));
    simd::SetSimdLevel(cfg.level);
    EngineOptions opts;
    opts.num_threads = cfg.threads;
    ShardRouter router(*sharded, opts);
    for (size_t i = 0; i < workload.size(); ++i) {
      const WorkloadQuery& q = workload[i];
      auto sel = router.Select(q.geometry, q.buffer, q.thematic);
      ASSERT_TRUE(sel.ok());
      if (first) {
        Observed o;
        o.row_ids = sel->row_ids;
        o.filter_x = sel->filter_x;
        o.filter_y = sel->filter_y;
        o.refine = sel->refine;
        baseline.push_back(std::move(o));
      } else {
        SCOPED_TRACE(testing::Message() << "query " << i);
        EXPECT_EQ(sel->row_ids, baseline[i].row_ids);
        ExpectFilterStatsEq(sel->filter_x, baseline[i].filter_x, "x");
        ExpectFilterStatsEq(sel->filter_y, baseline[i].filter_y, "y");
        ExpectRefineStatsEq(sel->refine, baseline[i].refine, "refine");
      }
    }
    first = false;
  }
}

}  // namespace
}  // namespace geocol
