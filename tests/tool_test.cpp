// End-to-end smoke tests of the geocol CLI: each subcommand is exercised
// on a temporary workspace via std::system. The binary path is injected at
// compile time (GEOCOL_TOOL_PATH).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "util/binary_io.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

#ifndef GEOCOL_TOOL_PATH
#define GEOCOL_TOOL_PATH "geocol"
#endif

int RunTool(const std::string& args, std::string* out_path = nullptr,
        TempDir* tmp = nullptr) {
  static int counter = 0;
  std::string capture =
      tmp != nullptr ? tmp->File("out" + std::to_string(counter++) + ".txt")
                     : "/dev/null";
  if (out_path != nullptr) *out_path = capture;
  std::string cmd = std::string(GEOCOL_TOOL_PATH) + " " + args + " > " +
                    capture + " 2>&1";
  int rc = std::system(cmd.c_str());
  return rc;
}

std::string Slurp(const std::string& path) {
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes).ok()) return "";
  return std::string(bytes.begin(), bytes.end());
}

class ToolTest : public ::testing::Test {
 protected:
  // One workspace for the whole fixture run, built once.
  static void SetUpTestSuite() {
    tmp_ = new TempDir("tool");
    ASSERT_EQ(RunTool("generate " + tmp_->File("tiles") + " --points 40000 " +
                      "--layers " + tmp_->File("layers"),
                  nullptr, tmp_),
              0);
    ASSERT_EQ(RunTool("load " + tmp_->File("tiles") + " " + tmp_->File("table"),
                  nullptr, tmp_),
              0);
  }
  static void TearDownTestSuite() {
    delete tmp_;
    tmp_ = nullptr;
  }
  static TempDir* tmp_;
};

TempDir* ToolTest::tmp_ = nullptr;

TEST_F(ToolTest, NoArgsShowsUsage) {
  EXPECT_NE(RunTool(""), 0);
  EXPECT_NE(RunTool("frobnicate"), 0);
}

TEST_F(ToolTest, GenerateProducedTilesAndLayers) {
  std::vector<std::string> tiles, layers;
  ASSERT_TRUE(ListFiles(tmp_->File("tiles"), ".las", &tiles).ok());
  EXPECT_FALSE(tiles.empty());
  ASSERT_TRUE(ListFiles(tmp_->File("layers"), ".layer", &layers).ok());
  EXPECT_EQ(layers.size(), 2u);
}

TEST_F(ToolTest, InfoListsTiles) {
  std::string out;
  ASSERT_EQ(RunTool("info " + tmp_->File("tiles"), &out, tmp_), 0);
  std::string text = Slurp(out);
  EXPECT_NE(text.find("TOTAL:"), std::string::npos);
  EXPECT_NE(text.find("pts"), std::string::npos);
}

TEST_F(ToolTest, LoadPersistedQueryableTable) {
  EXPECT_TRUE(PathExists(tmp_->File("table") + "/schema.gct"));
  std::string out;
  ASSERT_EQ(RunTool("query " + tmp_->File("table") +
                    " \"SELECT COUNT(*) FROM ahn2\"",
                &out, tmp_),
            0);
  std::string text = Slurp(out);
  EXPECT_NE(text.find("COUNT(*)"), std::string::npos);
  EXPECT_NE(text.find("(1 rows)"), std::string::npos);
}

TEST_F(ToolTest, QueryWithLayersAndProfile) {
  std::string out;
  ASSERT_EQ(
      RunTool("query " + tmp_->File("table") +
              " \"SELECT COUNT(*) FROM ahn2 WHERE NEAR(urban_atlas, 12210, "
              "15)\" --layers " + tmp_->File("layers") + " --profile",
          &out, tmp_),
      0);
  std::string text = Slurp(out);
  EXPECT_NE(text.find("plan for:"), std::string::npos);
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
}

TEST_F(ToolTest, QueryErrorsSurface) {
  std::string out;
  EXPECT_NE(RunTool("query " + tmp_->File("table") +
                    " \"SELECT bogus FROM ahn2\"",
                &out, tmp_),
            0);
  EXPECT_NE(Slurp(out).find("error:"), std::string::npos);
}

TEST_F(ToolTest, SortAndIndexThenQueryStillWorks) {
  ASSERT_EQ(RunTool("sort " + tmp_->File("tiles"), nullptr, tmp_), 0);
  ASSERT_EQ(RunTool("index " + tmp_->File("tiles"), nullptr, tmp_), 0);
  std::vector<std::string> lax;
  ASSERT_TRUE(ListFiles(tmp_->File("tiles"), ".lax", &lax).ok());
  EXPECT_FALSE(lax.empty());
}

TEST_F(ToolTest, CompressedLoadRoundTrip) {
  ASSERT_EQ(RunTool("load " + tmp_->File("tiles") + " " + tmp_->File("ctable") +
                    " --compressed",
                nullptr, tmp_),
            0);
  std::vector<std::string> gcz;
  ASSERT_TRUE(ListFiles(tmp_->File("ctable"), ".gcz", &gcz).ok());
  EXPECT_EQ(gcz.size(), 26u);
  std::string out;
  ASSERT_EQ(RunTool("query " + tmp_->File("ctable") +
                    " \"SELECT COUNT(*) FROM ahn2\"",
                &out, tmp_),
            0);
  EXPECT_NE(Slurp(out).find("(1 rows)"), std::string::npos);
}

TEST_F(ToolTest, RasterWritesPpm) {
  std::string ppm = tmp_->File("dsm.ppm");
  ASSERT_EQ(RunTool("raster " + tmp_->File("table") + " " + ppm + " --cols 64",
                nullptr, tmp_),
            0);
  auto size = FileSizeBytes(ppm);
  ASSERT_TRUE(size.ok());
  EXPECT_GT(*size, 64u * 3);
  std::vector<uint8_t> head;
  BinaryReader r;
  ASSERT_TRUE(r.Open(ppm).ok());
  char magic[2];
  ASSERT_TRUE(r.ReadBytes(magic, 2).ok());
  EXPECT_EQ(magic[0], 'P');
  EXPECT_EQ(magic[1], '6');
}

TEST_F(ToolTest, VerifyPassesOnCleanTable) {
  std::string out;
  ASSERT_EQ(RunTool("verify " + tmp_->File("table"), &out, tmp_), 0);
  std::string text = Slurp(out);
  EXPECT_NE(text.find("schema.gct"), std::string::npos);
  EXPECT_NE(text.find("OK"), std::string::npos);
  EXPECT_NE(text.find("all checks passed"), std::string::npos);
  EXPECT_EQ(text.find("CORRUPT"), std::string::npos) << text;
}

TEST_F(ToolTest, VerifyDetectsCorruptedColumn) {
  // A private copy of the table, so the damage cannot leak into other
  // tests' fixtures.
  std::string dir = tmp_->File("vtable");
  ASSERT_EQ(RunTool("load " + tmp_->File("tiles") + " " + dir, nullptr, tmp_),
            0);
  std::vector<std::string> gcl;
  ASSERT_TRUE(ListFiles(dir, ".gcl", &gcl).ok());
  ASSERT_FALSE(gcl.empty());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(gcl[0], &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteFileBytes(gcl[0], bytes.data(), bytes.size()).ok());

  std::string out;
  EXPECT_NE(RunTool("verify " + dir, &out, tmp_), 0);
  std::string text = Slurp(out);
  EXPECT_NE(text.find("CORRUPT"), std::string::npos) << text;
  EXPECT_NE(text.find("corrupt file(s)"), std::string::npos) << text;
  // The other columns still verify OK in the same report.
  EXPECT_NE(text.find("OK"), std::string::npos) << text;
}

TEST_F(ToolTest, ExplainAnalyzeRendersSpans) {
  std::string out;
  ASSERT_EQ(RunTool("query " + tmp_->File("table") +
                    " \"EXPLAIN ANALYZE SELECT COUNT(*) FROM ahn2\"",
                &out, tmp_),
            0);
  std::string text = Slurp(out);
  EXPECT_NE(text.find("explain analyze"), std::string::npos);
  EXPECT_NE(text.find("spans ("), std::string::npos);
  EXPECT_NE(text.find("filter"), std::string::npos);
  EXPECT_NE(text.find("WALL (critical path)"), std::string::npos);
}

TEST_F(ToolTest, MetricsPrometheusAndJson) {
  std::string out;
  ASSERT_EQ(RunTool("metrics " + tmp_->File("table") +
                    " \"SELECT COUNT(*) FROM ahn2\"",
                &out, tmp_),
            0);
  std::string text = Slurp(out);
  EXPECT_NE(text.find("# TYPE geocol_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("geocol_imprint_scans_total"), std::string::npos);
  EXPECT_NE(text.find("geocol_io_read_bytes_total"), std::string::npos);

  ASSERT_EQ(RunTool("metrics " + tmp_->File("table") + " --format json", &out,
                tmp_),
            0);
  text = Slurp(out);
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);

  EXPECT_NE(RunTool("metrics " + tmp_->File("table") + " --format xml", &out,
                tmp_),
            0);
}

TEST_F(ToolTest, TraceExportsChromeJson) {
  std::string trace = tmp_->File("trace.json");
  std::string out;
  ASSERT_EQ(RunTool("trace " + tmp_->File("table") +
                    " \"SELECT COUNT(*) FROM ahn2\" --out " + trace,
                &out, tmp_),
            0);
  std::string json = Slurp(trace);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);

  // JSONL variant to stdout: one object per line.
  ASSERT_EQ(RunTool("trace " + tmp_->File("table") +
                    " \"SELECT COUNT(*) FROM ahn2\" --jsonl",
                &out, tmp_),
            0);
  std::string text = Slurp(out);
  EXPECT_EQ(text.find('{'), 0u);
}

TEST_F(ToolTest, VerifyPrintsTelemetrySummaryWhenEnabled) {
  static int counter = 0;
  std::string capture = tmp_->File("env" + std::to_string(counter++) + ".txt");
  std::string cmd = "GEOCOL_METRICS=1 " + std::string(GEOCOL_TOOL_PATH) +
                    " verify " + tmp_->File("table") + " > " + capture +
                    " 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  std::string text = Slurp(capture);
  EXPECT_NE(text.find("[telemetry]"), std::string::npos);
  EXPECT_NE(text.find("crc_verifies="), std::string::npos);
}

TEST_F(ToolTest, ShardBuildVerifyAndQuery) {
  std::string sharded = tmp_->File("sharded");
  std::string out;
  ASSERT_EQ(RunTool("shard " + tmp_->File("table") + " " + sharded +
                    " --shards 8",
                &out, tmp_),
            0);
  std::string text = Slurp(out);
  EXPECT_NE(text.find("8 Hilbert shards"), std::string::npos) << text;
  EXPECT_TRUE(PathExists(sharded + "/shards.gsm"));

  // verify walks the manifest and every shard directory.
  ASSERT_EQ(RunTool("verify " + sharded, &out, tmp_), 0);
  text = Slurp(out);
  EXPECT_NE(text.find("shards.gsm"), std::string::npos) << text;
  EXPECT_NE(text.find("generation 1, 8 shards"), std::string::npos) << text;
  EXPECT_NE(text.find("all checks passed"), std::string::npos) << text;
  EXPECT_EQ(text.find("CORRUPT"), std::string::npos) << text;

  // Identical COUNT through the sharded and the flat layout.
  std::string flat_out, shard_out;
  ASSERT_EQ(RunTool("query " + tmp_->File("table") +
                    " \"SELECT COUNT(*) FROM ahn2\"",
                &flat_out, tmp_),
            0);
  ASSERT_EQ(RunTool("query " + sharded + " \"SELECT COUNT(*) FROM ahn2\"",
                &shard_out, tmp_),
            0);
  EXPECT_EQ(Slurp(flat_out).substr(Slurp(flat_out).find('\n')),
            Slurp(shard_out).substr(Slurp(shard_out).find('\n')));

  // EXPLAIN ANALYZE on a viewport query surfaces the scatter-gather
  // footer with a non-zero prune count.
  ASSERT_EQ(RunTool("query " + sharded +
                    " \"EXPLAIN ANALYZE SELECT COUNT(*) FROM ahn2 WHERE "
                    "ST_Within(pt, 'BOX(85000 444000, 85010 444010)')\"",
                &out, tmp_),
            0);
  text = Slurp(out);
  EXPECT_NE(text.find("shard.route"), std::string::npos) << text;
  EXPECT_NE(text.find("shards: scanned "), std::string::npos) << text;
  EXPECT_EQ(text.find(" (0 pruned)"), std::string::npos) << text;
}

TEST_F(ToolTest, VerifyDetectsCorruptedShardColumn) {
  std::string dir = tmp_->File("vsharded");
  ASSERT_EQ(RunTool("shard " + tmp_->File("table") + " " + dir + " --shards 4",
                nullptr, tmp_),
            0);
  // Damage one column file inside the first shard directory.
  std::vector<std::string> shard_dirs;
  ASSERT_TRUE(ListFiles(dir + "/shard_0000.g1", ".gcl", &shard_dirs).ok());
  ASSERT_FALSE(shard_dirs.empty());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(shard_dirs[0], &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteFileBytes(shard_dirs[0], bytes.data(), bytes.size()).ok());

  std::string out;
  EXPECT_NE(RunTool("verify " + dir, &out, tmp_), 0);
  std::string text = Slurp(out);
  EXPECT_NE(text.find("CORRUPT"), std::string::npos) << text;
  // The shard-qualified label points at the damaged directory.
  EXPECT_NE(text.find("shard_0000.g1/"), std::string::npos) << text;
}

TEST_F(ToolTest, ParallelLoadMatchesSequential) {
  ASSERT_EQ(RunTool("load " + tmp_->File("tiles") + " " + tmp_->File("ptable") +
                    " --threads 3",
                nullptr, tmp_),
            0);
  // COUNT/MIN/MAX are row-order independent (AVG is not, bit-wise).
  std::string out1, out2;
  ASSERT_EQ(RunTool("query " + tmp_->File("table") +
                    " \"SELECT COUNT(*), MIN(z), MAX(z) FROM ahn2\"",
                &out1, tmp_),
            0);
  ASSERT_EQ(RunTool("query " + tmp_->File("ptable") +
                    " \"SELECT COUNT(*), MIN(z), MAX(z) FROM ahn2\"",
                &out2, tmp_),
            0);
  // Identical result rows (the first line after the header separator).
  EXPECT_EQ(Slurp(out1).substr(Slurp(out1).find('\n')),
            Slurp(out2).substr(Slurp(out2).find('\n')));
}

}  // namespace
}  // namespace geocol
