// FaultInjector unit tests: op counting, crash-at-op, torn writes, short
// reads, bit flips, and the errno detail carried by injected failures.
#include <gtest/gtest.h>

#include <vector>

#include "util/binary_io.h"
#include "util/fault_injection.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

// Every test must leave the global injector disarmed, or it poisons the
// rest of the binary.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }
  TempDir tmp_;
};

Status WriteThreeChunks(const std::string& path) {
  BinaryWriter w;
  GEOCOL_RETURN_NOT_OK(w.OpenAtomic(path));
  std::vector<uint8_t> chunk(100, 0xAB);
  for (int i = 0; i < 3; ++i) {
    Status st = w.WriteBytes(chunk.data(), chunk.size());
    if (!st.ok()) {
      w.Abandon();
      return st;
    }
  }
  Status st = w.Commit();
  if (!st.ok()) w.Abandon();
  return st;
}

TEST_F(FaultInjectionTest, CountsFallibleOps) {
  auto& fi = FaultInjector::Global();
  fi.StartCounting();
  ASSERT_TRUE(WriteThreeChunks(tmp_.File("a.bin")).ok());
  uint64_t total = fi.StopCounting();
  // open + 3 writes + flush + fsync + close + rename + dir fsync = 9.
  EXPECT_EQ(total, 9u);
}

TEST_F(FaultInjectionTest, CrashSweepNeverPublishes) {
  auto& fi = FaultInjector::Global();
  fi.StartCounting();
  ASSERT_TRUE(WriteThreeChunks(tmp_.File("clean.bin")).ok());
  uint64_t total = fi.StopCounting();

  for (uint64_t k = 1; k <= total; ++k) {
    std::string path = tmp_.File("crash" + std::to_string(k) + ".bin");
    fi.ArmCrashAtOp(k);
    Status st = WriteThreeChunks(path);
    fi.Disarm();
    if (k < total) {
      // Any op before the final dir fsync fails => never published.
      EXPECT_FALSE(st.ok()) << "op " << k;
      EXPECT_FALSE(PathExists(path)) << "op " << k;
    } else {
      // Crash in the parent-dir fsync: the rename already happened. The
      // caller sees an error but the file is complete — "new", not torn.
      EXPECT_FALSE(st.ok());
      EXPECT_TRUE(PathExists(path));
      auto size = FileSizeBytes(path);
      ASSERT_TRUE(size.ok());
      EXPECT_EQ(*size, 300u);
    }
  }
}

TEST_F(FaultInjectionTest, CrashFailuresCarryErrno) {
  auto& fi = FaultInjector::Global();
  fi.ArmCrashAtOp(2);
  Status st = WriteThreeChunks(tmp_.File("e.bin"));
  fi.Disarm();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.ToString();
  // Injected EIO surfaces with strerror text and the numeric errno.
  EXPECT_NE(st.message().find("errno 5"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find(".tmp"), std::string::npos) << st.ToString();
}

TEST_F(FaultInjectionTest, TornWriteLandsPrefix) {
  auto& fi = FaultInjector::Global();
  // Op 1 is the open; op 2 is the first 100-byte write. Keep 37 bytes.
  fi.ArmTornWrite(2, 37);
  Status st = WriteThreeChunks(tmp_.File("torn.bin"));
  fi.Disarm();
  ASSERT_FALSE(st.ok());
  // The final file never appears (rename was never reached) but the torn
  // prefix must be visible in the .tmp, like a real mid-write power cut.
  EXPECT_FALSE(PathExists(tmp_.File("torn.bin")));
  auto size = FileSizeBytes(tmp_.File("torn.bin.tmp"));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 37u);
}

TEST_F(FaultInjectionTest, ShortReadSurfacesAsCorruption) {
  std::string path = tmp_.File("s.bin");
  std::vector<uint8_t> data(64, 0x5A);
  ASSERT_TRUE(WriteFileBytes(path, data.data(), data.size()).ok());

  auto& fi = FaultInjector::Global();
  fi.ArmShortRead(2, 10);  // op 1 = open, op 2 = the payload read
  BinaryReader r;
  ASSERT_TRUE(r.Open(path).ok());
  std::vector<uint8_t> buf(64);
  Status st = r.ReadBytes(buf.data(), buf.size());
  fi.Disarm();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
}

TEST_F(FaultInjectionTest, BitFlipCorruptsExactlyOneBit) {
  std::string path = tmp_.File("b.bin");
  std::vector<uint8_t> data(64, 0x00);
  ASSERT_TRUE(WriteFileBytes(path, data.data(), data.size()).ok());

  auto& fi = FaultInjector::Global();
  fi.ArmBitFlip(2, 17, 3);
  BinaryReader r;
  ASSERT_TRUE(r.Open(path).ok());
  std::vector<uint8_t> buf(64, 0xEE);
  ASSERT_TRUE(r.ReadBytes(buf.data(), buf.size()).ok());
  fi.Disarm();
  for (size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], i == 17 ? 0x08 : 0x00) << "byte " << i;
  }
}

TEST_F(FaultInjectionTest, DisarmedIsTransparent) {
  auto& fi = FaultInjector::Global();
  fi.Disarm();
  EXPECT_EQ(fi.ops_seen(), 0u);
  ASSERT_TRUE(WriteThreeChunks(tmp_.File("off.bin")).ok());
  EXPECT_EQ(fi.ops_seen(), 0u);  // hooks must not count when off
}

}  // namespace
}  // namespace geocol
