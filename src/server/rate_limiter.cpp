#include "server/rate_limiter.h"

#include <algorithm>

namespace geocol {
namespace server {

bool TokenBucketLimiter::Allow(const std::string& client, int64_t now_nanos) {
  if (qps_ <= 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(client);
  if (it == buckets_.end()) {
    if (buckets_.size() >= max_clients_) EvictLocked(now_nanos);
    it = buckets_.try_emplace(client).first;
    it->second.tokens = burst_;
    it->second.last_nanos = now_nanos;
  } else if (now_nanos > it->second.last_nanos) {
    Bucket& b = it->second;
    const double elapsed_s = (now_nanos - b.last_nanos) / 1e9;
    b.tokens = std::min(burst_, b.tokens + elapsed_s * qps_);
    b.last_nanos = now_nanos;
  }
  Bucket& b = it->second;
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

void TokenBucketLimiter::EvictLocked(int64_t now_nanos) {
  // A bucket whose refill has reached the burst cap again holds no state
  // a fresh bucket would not — evicting it is lossless.
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    const Bucket& b = it->second;
    const double elapsed_s =
        now_nanos > b.last_nanos ? (now_nanos - b.last_nanos) / 1e9 : 0.0;
    if (b.tokens + elapsed_s * qps_ >= burst_) {
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
  // Every bucket still mid-refill (a sustained flood of distinct ids):
  // drop the stalest so the map stays bounded either way.
  while (buckets_.size() >= max_clients_) {
    auto oldest = buckets_.begin();
    for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
      if (it->second.last_nanos < oldest->second.last_nanos) oldest = it;
    }
    buckets_.erase(oldest);
  }
}

size_t TokenBucketLimiter::num_clients() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_.size();
}

}  // namespace server
}  // namespace geocol
