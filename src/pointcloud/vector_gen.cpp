#include "pointcloud/vector_gen.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace geocol {

const char* UrbanAtlasClassName(UrbanAtlasClass c) {
  switch (c) {
    case UrbanAtlasClass::kContinuousUrbanFabric:
      return "Continuous urban fabric";
    case UrbanAtlasClass::kDiscontinuousUrbanFabric:
      return "Discontinuous urban fabric";
    case UrbanAtlasClass::kIndustrialCommercial:
      return "Industrial, commercial, public units";
    case UrbanAtlasClass::kFastTransitRoads:
      return "Fast transit roads and associated land";
    case UrbanAtlasClass::kOtherRoads:
      return "Other roads and associated land";
    case UrbanAtlasClass::kGreenUrbanAreas:
      return "Green urban areas";
    case UrbanAtlasClass::kAgricultural:
      return "Agricultural areas";
    case UrbanAtlasClass::kForests:
      return "Forests";
    case UrbanAtlasClass::kWater:
      return "Water bodies";
  }
  return "Unknown";
}

const char* RoadClassName(RoadClass c) {
  switch (c) {
    case RoadClass::kMotorway: return "motorway";
    case RoadClass::kPrimary: return "primary";
    case RoadClass::kSecondary: return "secondary";
    case RoadClass::kResidential: return "residential";
  }
  return "unknown";
}

namespace {

/// Random waypoint walk: start on one side of the extent, drift toward the
/// opposite side with heading noise. `smoothness` in (0,1] damps turns.
LineString RandomWalk(Rng* rng, const Box& extent, double step,
                      double smoothness, size_t max_points) {
  LineString line;
  // Start on a random edge, heading inward.
  double heading;
  Point p;
  switch (rng->Uniform(4)) {
    case 0: p = {extent.min_x, rng->UniformDouble(extent.min_y, extent.max_y)};
      heading = 0.0;
      break;
    case 1: p = {extent.max_x, rng->UniformDouble(extent.min_y, extent.max_y)};
      heading = M_PI;
      break;
    case 2: p = {rng->UniformDouble(extent.min_x, extent.max_x), extent.min_y};
      heading = M_PI / 2;
      break;
    default: p = {rng->UniformDouble(extent.min_x, extent.max_x), extent.max_y};
      heading = -M_PI / 2;
      break;
  }
  line.points.push_back(p);
  for (size_t i = 0; i < max_points; ++i) {
    heading += rng->NextGaussian() * (1.0 - smoothness) * 0.8;
    p.x += std::cos(heading) * step;
    p.y += std::sin(heading) * step;
    if (!extent.Contains(p)) break;
    line.points.push_back(p);
  }
  return line;
}

}  // namespace

std::vector<VectorFeature> OsmGenerator::GenerateRoads(uint32_t count) const {
  Rng rng(seed_ ^ 0x0A0DULL);
  std::vector<VectorFeature> out;
  out.reserve(count);
  // Step sizes must fit the extent or short walks would retry forever on
  // small survey patches.
  const double max_step =
      std::max(1.0, std::min(extent_.width(), extent_.height()) / 4.0);
  uint32_t attempts = 0;
  const uint32_t max_attempts = count * 50 + 100;
  for (uint32_t i = 0; i < count && attempts < max_attempts; ++i) {
    ++attempts;
    RoadClass cls;
    double step, smooth;
    size_t max_pts;
    // The first road is always a motorway so every generated network has a
    // fast-transit corridor for the scenario-2 demo queries.
    uint64_t pick = out.empty() ? 0 : rng.Uniform(100);
    if (pick < 10) {
      cls = RoadClass::kMotorway;
      step = 120.0;
      smooth = 0.95;
      max_pts = 400;
    } else if (pick < 30) {
      cls = RoadClass::kPrimary;
      step = 80.0;
      smooth = 0.85;
      max_pts = 250;
    } else if (pick < 60) {
      cls = RoadClass::kSecondary;
      step = 50.0;
      smooth = 0.75;
      max_pts = 150;
    } else {
      cls = RoadClass::kResidential;
      step = 25.0;
      smooth = 0.6;
      max_pts = 60;
    }
    step = std::min(step, max_step);
    LineString line = RandomWalk(&rng, extent_, step, smooth, max_pts);
    if (line.points.size() < 2) {
      --i;  // too short to be a road; retry (bounded by max_attempts)
      continue;
    }
    VectorFeature f;
    f.id = out.size() + 1;
    f.geometry = Geometry(std::move(line));
    f.feature_class = static_cast<uint32_t>(cls);
    f.name = std::string(RoadClassName(cls)) + "_" + std::to_string(f.id);
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<VectorFeature> OsmGenerator::GenerateRivers(uint32_t count) const {
  Rng rng(seed_ ^ 0x51BE5ULL);
  std::vector<VectorFeature> out;
  for (uint32_t i = 0; i < count; ++i) {
    LineString line = RandomWalk(&rng, extent_, 90.0, 0.92, 500);
    if (line.points.size() < 2) continue;
    VectorFeature f;
    f.id = 100000 + out.size() + 1;
    f.geometry = Geometry(std::move(line));
    f.feature_class = static_cast<uint32_t>(UrbanAtlasClass::kWater);
    f.name = "river_" + std::to_string(f.id);
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<VectorFeature> OsmGenerator::GeneratePois(uint32_t count) const {
  Rng rng(seed_ ^ 0x901ULL);
  std::vector<VectorFeature> out;
  out.reserve(count);
  uint32_t placed = 0;
  uint32_t attempts = 0;
  while (placed < count && attempts < count * 50) {
    ++attempts;
    Point p{rng.UniformDouble(extent_.min_x, extent_.max_x),
            rng.UniformDouble(extent_.min_y, extent_.max_y)};
    // POIs cluster where people are: accept with probability ~ urbanness.
    double urban = terrain_->UrbanFactor(p.x, p.y);
    if (!rng.NextBool(0.05 + 0.95 * urban)) continue;
    VectorFeature f;
    f.id = 200000 + placed + 1;
    f.geometry = Geometry(p);
    f.feature_class = static_cast<uint32_t>(1 + rng.Uniform(10));  // POI kind
    f.name = "poi_" + std::to_string(f.id);
    out.push_back(std::move(f));
    ++placed;
  }
  return out;
}

std::vector<VectorFeature> UrbanAtlasGenerator::GenerateLandUse(
    uint32_t blocks_per_axis) const {
  Rng rng(seed_ ^ 0xA71A5ULL);
  std::vector<VectorFeature> out;
  out.reserve(static_cast<size_t>(blocks_per_axis) * blocks_per_axis);
  double bw = extent_.width() / blocks_per_axis;
  double bh = extent_.height() / blocks_per_axis;
  for (uint32_t by = 0; by < blocks_per_axis; ++by) {
    for (uint32_t bx = 0; bx < blocks_per_axis; ++bx) {
      Box block(extent_.min_x + bx * bw, extent_.min_y + by * bh,
                extent_.min_x + (bx + 1) * bw, extent_.min_y + (by + 1) * bh);
      Point c = block.center();
      UrbanAtlasClass cls;
      if (terrain_->IsWater(c.x, c.y)) {
        cls = UrbanAtlasClass::kWater;
      } else {
        double urban = terrain_->UrbanFactor(c.x, c.y);
        if (urban > 0.7) {
          cls = rng.NextBool(0.2) ? UrbanAtlasClass::kIndustrialCommercial
                                  : UrbanAtlasClass::kContinuousUrbanFabric;
        } else if (urban > 0.3) {
          cls = rng.NextBool(0.15) ? UrbanAtlasClass::kGreenUrbanAreas
                                   : UrbanAtlasClass::kDiscontinuousUrbanFabric;
        } else {
          cls = rng.NextBool(0.35) ? UrbanAtlasClass::kForests
                                   : UrbanAtlasClass::kAgricultural;
        }
      }
      VectorFeature f;
      f.id = 300000 + out.size() + 1;
      f.geometry = Geometry(Polygon::FromBox(block));
      f.feature_class = static_cast<uint32_t>(cls);
      f.name = UrbanAtlasClassName(cls);
      out.push_back(std::move(f));
    }
  }
  return out;
}

MultiPolygon BufferLine(const LineString& line, double half_width) {
  MultiPolygon mp;
  for (size_t i = 1; i < line.points.size(); ++i) {
    const Point& a = line.points[i - 1];
    const Point& b = line.points[i];
    double dx = b.x - a.x, dy = b.y - a.y;
    double len = std::sqrt(dx * dx + dy * dy);
    if (len <= 0.0) continue;
    // Unit normal, plus a half-width extension along the segment so
    // consecutive quads overlap at joints.
    double nx = -dy / len * half_width;
    double ny = dx / len * half_width;
    double ex = dx / len * half_width;
    double ey = dy / len * half_width;
    Polygon quad;
    quad.shell.points = {{a.x - ex + nx, a.y - ey + ny},
                         {b.x + ex + nx, b.y + ey + ny},
                         {b.x + ex - nx, b.y + ey - ny},
                         {a.x - ex - nx, a.y - ey - ny}};
    mp.polygons.push_back(std::move(quad));
  }
  return mp;
}

std::vector<VectorFeature> UrbanAtlasGenerator::GenerateTransitCorridors(
    const std::vector<VectorFeature>& roads, double half_width) const {
  std::vector<VectorFeature> out;
  for (const VectorFeature& road : roads) {
    if (road.feature_class != static_cast<uint32_t>(RoadClass::kMotorway)) {
      continue;
    }
    if (!road.geometry.is_line()) continue;
    MultiPolygon corridor = BufferLine(road.geometry.line(), half_width);
    if (corridor.polygons.empty()) continue;
    VectorFeature f;
    f.id = 400000 + out.size() + 1;
    f.geometry = Geometry(std::move(corridor));
    f.feature_class = static_cast<uint32_t>(UrbanAtlasClass::kFastTransitRoads);
    f.name = UrbanAtlasClassName(UrbanAtlasClass::kFastTransitRoads);
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace geocol
