#include "columns/column.h"

#include <algorithm>

#include "simd/kernels.h"
#include "util/crc32c.h"

namespace geocol {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt8: return "int8";
    case DataType::kUInt8: return "uint8";
    case DataType::kInt16: return "int16";
    case DataType::kUInt16: return "uint16";
    case DataType::kInt32: return "int32";
    case DataType::kUInt32: return "uint32";
    case DataType::kInt64: return "int64";
    case DataType::kUInt64: return "uint64";
    case DataType::kFloat32: return "float32";
    case DataType::kFloat64: return "float64";
  }
  return "unknown";
}

Result<ColumnChunkPin> Column::PinChunk(size_t chunk_index) const {
  if (chunk_index >= num_chunks()) {
    return Status::InvalidArgument("chunk index out of range");
  }
  ColumnChunkPin pin;
  pin.data = data_.data();
  pin.first_row = 0;
  pin.row_count = size();
  return pin;  // keepalive empty: the caller holds the column alive
}

double Column::GetDouble(size_t row) const {
  assert(row < size());
  return DispatchDataType(type_, [&]<typename T>() -> double {
    T v;
    std::memcpy(&v, data_.data() + row * sizeof(T), sizeof(T));
    return static_cast<double>(v);
  });
}

Status Column::GetDoubleBatch(const uint64_t* rows, size_t n,
                              double* out) const {
  DispatchDataType(type_, [&]<typename T>() {
    simd::GatherDouble(reinterpret_cast<const T*>(data_.data()), rows, n, out);
  });
  return Status::OK();
}

int64_t Column::GetInt64(size_t row) const {
  assert(row < size());
  return DispatchDataType(type_, [&]<typename T>() -> int64_t {
    T v;
    std::memcpy(&v, data_.data() + row * sizeof(T), sizeof(T));
    return static_cast<int64_t>(v);
  });
}

const ColumnStats& Column::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (!stats_.valid) {
    if (data_.empty()) {
      stats_.min = 0.0;
      stats_.max = 0.0;
    } else {
      DispatchDataType(type_, [&]<typename T>() {
        std::span<const T> vals{reinterpret_cast<const T*>(data_.data()),
                                data_.size() / width_};
        T mn = vals[0], mx = vals[0];
        for (T v : vals) {
          mn = std::min(mn, v);
          mx = std::max(mx, v);
        }
        stats_.min = static_cast<double>(mn);
        stats_.max = static_cast<double>(mx);
      });
    }
    stats_.valid = true;
  }
  return stats_;
}

void Column::SetCachedStats(double min, double max) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.min = min;
  stats_.max = max;
  stats_.valid = true;
}

uint32_t Column::payload_crc32c() const {
  return Crc32c(data_.data(), data_.size());
}

Result<std::shared_ptr<Column>> Column::CloneAppend(
    const std::shared_ptr<Column>& base, const void* data, size_t count) {
  assert(base != nullptr);
  if (base->paged()) {
    return Status::InvalidArgument(
        "CloneAppend: paged columns are read-only (reopen the table "
        "resident to append)");
  }
  auto col = std::make_shared<Column>(base->name(), base->type());
  col->data_.reserve(base->data_.size() + count * base->width_);
  col->data_.insert(col->data_.end(), base->data_.begin(), base->data_.end());
  const auto* p = static_cast<const uint8_t*>(data);
  col->data_.insert(col->data_.end(), p, p + count * base->width_);
  col->base_ = base;
  col->base_rows_ = base->size();
  return col;
}

}  // namespace geocol
