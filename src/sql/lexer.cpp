#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace geocol {
namespace sql {

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      tok.kind = TokKind::kIdent;
      tok.raw = input.substr(start, i - start);
      tok.text = tok.raw;
      for (char& ch : tok.text) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1]))) ||
               ((c == '-' || c == '+') && i + 1 < n &&
                (std::isdigit(static_cast<unsigned char>(input[i + 1])) ||
                 input[i + 1] == '.') &&
                (out.empty() || out.back().kind == TokKind::kSymbol))) {
      // Signed numbers are only lexed as one token after a symbol (so
      // `x < -5` works while `5 - 3` would still split — the dialect has
      // no arithmetic, so this is sufficient).
      const char* begin = input.c_str() + i;
      char* end = nullptr;
      tok.number = std::strtod(begin, &end);
      if (end == begin) {
        return Status::InvalidArgument("SQL: bad number at offset " +
                                       std::to_string(i));
      }
      tok.kind = TokKind::kNumber;
      tok.raw = input.substr(i, static_cast<size_t>(end - begin));
      tok.text = tok.raw;
      i += static_cast<size_t>(end - begin);
    } else if (c == '\'') {
      ++i;
      std::string content;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            content += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        content += input[i++];
      }
      if (!closed) {
        return Status::InvalidArgument("SQL: unterminated string literal");
      }
      tok.kind = TokKind::kString;
      tok.text = content;
      tok.raw = content;
    } else {
      // Multi-char operators first.
      auto two = [&](const char* op) {
        return i + 1 < n && input[i] == op[0] && input[i + 1] == op[1];
      };
      if (two("<=") || two(">=") || two("<>") || two("!=")) {
        tok.kind = TokKind::kSymbol;
        tok.text = input.substr(i, 2);
        if (tok.text == "!=") tok.text = "<>";
        tok.raw = input.substr(i, 2);
        i += 2;
      } else if (std::string("(),*=<>;.").find(c) != std::string::npos) {
        tok.kind = TokKind::kSymbol;
        tok.text = std::string(1, c);
        tok.raw = tok.text;
        ++i;
      } else {
        return Status::InvalidArgument(std::string("SQL: unexpected '") + c +
                                       "' at offset " + std::to_string(i));
      }
    }
    out.push_back(std::move(tok));
  }
  Token end_tok;
  end_tok.kind = TokKind::kEnd;
  end_tok.offset = n;
  out.push_back(end_tok);
  return out;
}

}  // namespace sql
}  // namespace geocol
