// Scoped temporary directories for tests and benchmarks that exercise the
// on-disk formats (LAS tiles, column files).
#ifndef GEOCOL_UTIL_TEMPDIR_H_
#define GEOCOL_UTIL_TEMPDIR_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace geocol {

/// Creates a unique directory under the system temp root on construction
/// and removes it (recursively) on destruction.
class TempDir {
 public:
  /// `prefix` becomes part of the directory name for debuggability.
  explicit TempDir(const std::string& prefix = "geocol");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

  /// Joins `name` onto the temp dir path.
  std::string File(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

/// Creates directory `path` (single level). AlreadyExists is not an error.
Status MakeDir(const std::string& path);

/// Recursively deletes `path`. Missing path is not an error.
Status RemoveDirRecursive(const std::string& path);

/// Lists regular files in `dir` whose names end with `suffix`, sorted.
Status ListFiles(const std::string& dir, const std::string& suffix,
                 std::vector<std::string>* out);

}  // namespace geocol

#endif  // GEOCOL_UTIL_TEMPDIR_H_
