// On-disk persistence of columns and tables: one binary file per column
// plus a schema manifest per table, mirroring MonetDB's per-BAT files and
// the COPY BINARY bulk-append path (paper §3.2).
//
// Durability model:
//   - Column files ("GCL2") carry a CRC32C over the header and one per
//     256 KiB payload chunk, verified during the read.
//   - The manifest ("GCT2") carries a generation number and a whole-file
//     CRC32C footer, and records the file name of every column.
//   - All files are written with the atomic durable protocol (tmp ->
//     fsync -> rename -> fsync dir). WriteTableDir writes generation N's
//     column files under new names and swaps the manifest last, so a crash
//     at ANY point leaves the previous generation fully readable.
//   - Legacy "GCL1"/"GCT1" files (no checksums) are still readable.
#ifndef GEOCOL_COLUMNS_COLUMN_FILE_H_
#define GEOCOL_COLUMNS_COLUMN_FILE_H_

#include <string>
#include <vector>

#include "columns/flat_table.h"
#include "util/status.h"

namespace geocol {

/// Payload bytes covered by each column-file chunk CRC.
constexpr size_t kColumnChunkBytes = 256 * 1024;

/// Writes a column to `path` atomically:
/// magic "GCL2" | type(u8) | count(u64) | chunk_bytes(u32) | header crc |
/// chunk crcs | raw values.
Status WriteColumnFile(const Column& column, const std::string& path);

/// Reads a column file written by WriteColumnFile (or a legacy "GCL1"
/// file). The column name is not stored in the file; callers supply it (it
/// is the file's role in the table manifest). `verify_checksums` exists so
/// benchmarks can measure the verification overhead; corruption checks
/// that need no extra pass (sizes, magic, types) always run.
Result<ColumnPtr> ReadColumnFile(const std::string& path,
                                 const std::string& name,
                                 bool verify_checksums = true);

/// Appends the raw value payload of a column file to `column` — the
/// COPY BINARY fast path. Types must match; checksums are verified.
Status AppendColumnFile(const std::string& path, Column* column);

/// The chunk directory of a "GCL2" file, parsed and header-verified
/// without touching the payload — everything the paged open needs to
/// fault chunks on demand. InvalidArgument for legacy "GCL1" files (no
/// chunk CRCs, so nothing can vouch for a faulted chunk).
struct ColumnFileLayout {
  DataType type = DataType::kFloat64;
  uint64_t count = 0;
  uint32_t chunk_bytes = 0;
  uint64_t payload_offset = 0;  ///< file offset of the first payload byte
  std::vector<uint32_t> chunk_crcs;
};
Result<ColumnFileLayout> ReadColumnFileLayout(const std::string& path);

/// Writes a raw C-array dump (no header): exactly what the paper's binary
/// loader emits per attribute before COPY BINARY. Atomic, so a reader
/// never observes a torn dump.
Status WriteRawDump(const Column& column, const std::string& path);

/// Appends a raw C-array dump of `type` to `column`.
Status AppendRawDump(const std::string& path, Column* column);

/// The parsed `<dir>/schema.gct` manifest: which columns a table has and
/// which file currently holds each of them.
struct TableManifest {
  struct ManifestColumn {
    std::string name;
    DataType type = DataType::kFloat64;
    /// File name within the table dir; empty in legacy manifests (the
    /// column then lives at `<name>.gcl` / `<name>.gcz`).
    std::string filename;
  };

  std::string table_name;
  /// Incremented by every successful WriteTableDir; generation N's column
  /// files are named `<col>.gN.gcl` so writing N+1 never touches them.
  uint64_t generation = 0;
  bool legacy = false;  ///< "GCT1": no generation, no filenames, no crc
  std::vector<ManifestColumn> columns;
};

/// Writes `<dir>/schema.gct` atomically with a CRC32C footer. This is the
/// commit point of a table write: readers follow the manifest, so the swap
/// atomically publishes the generation it references.
Status WriteTableManifest(const std::string& dir, const TableManifest& m);

/// Reads and checksum-verifies `<dir>/schema.gct` ("GCT1" or "GCT2").
Result<TableManifest> ReadTableManifest(const std::string& dir);

/// Removes files in `dir` that a crashed or superseded table write left
/// behind: `*.tmp` files and `*.gcl`/`*.gcz` files not referenced by
/// `keep`. Best effort — failures are ignored.
void CleanStaleTableFiles(const std::string& dir, const TableManifest& keep);

/// Persists a whole table into directory `dir` crash-safely:
/// `<dir>/schema.gct` manifest + `<dir>/<col>.gN.gcl` per column. After a
/// crash at any injected failure point, ReadTableDir returns either the
/// previous table or the new one — never an error, never mixed data.
Status WriteTableDir(const FlatTable& table, const std::string& dir);

/// Loads a table persisted by WriteTableDir.
Result<FlatTable> ReadTableDir(const std::string& dir,
                               bool verify_checksums = true);

}  // namespace geocol

#endif  // GEOCOL_COLUMNS_COLUMN_FILE_H_
