#include "core/binning.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace geocol {

namespace {
uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 2;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

Result<BinBounds> BinBounds::FromBounds(const std::vector<double>& inner) {
  if (inner.size() > 63) {
    return Status::InvalidArgument("too many bin bounds (max 63)");
  }
  for (size_t i = 1; i < inner.size(); ++i) {
    if (!(inner[i] > inner[i - 1])) {
      return Status::InvalidArgument("bin bounds must be strictly increasing");
    }
  }
  BinBounds b;
  uint32_t n = static_cast<uint32_t>(inner.size()) + 1;
  // Imprint vectors are 64-bit; keep num_bins a power of two so the query
  // mask logic can assume it, padding with unreachable +inf bins.
  b.num_bins_ = RoundUpPow2(n);
  for (size_t i = 0; i < inner.size(); ++i) b.upper_[i] = inner[i];
  for (uint32_t i = n - 1; i < b.num_bins_; ++i) {
    b.upper_[i] = std::numeric_limits<double>::infinity();
  }
  return b;
}

Result<BinBounds> BinBounds::FromRawUppers(const std::vector<double>& uppers) {
  size_t n = uppers.size();
  if (n < 2 || n > 64 || (n & (n - 1)) != 0) {
    return Status::Corruption("bin bounds: size must be a power of two in [2,64]");
  }
  if (!std::isinf(uppers.back())) {
    return Status::Corruption("bin bounds: last bound must be +inf");
  }
  bool seen_inf = false;
  for (size_t i = 0; i < n; ++i) {
    if (std::isinf(uppers[i])) {
      seen_inf = true;
      continue;
    }
    if (seen_inf) {
      return Status::Corruption("bin bounds: finite bound after +inf padding");
    }
    if (i > 0 && !(uppers[i] > uppers[i - 1])) {
      return Status::Corruption("bin bounds: not strictly increasing");
    }
  }
  BinBounds b;
  b.num_bins_ = static_cast<uint32_t>(n);
  for (size_t i = 0; i < n; ++i) b.upper_[i] = uppers[i];
  return b;
}

Result<BinBounds> BinBounds::Sample(const Column& column, uint32_t max_bins,
                                    uint32_t sample_size, uint64_t seed) {
  if (column.empty()) {
    return Status::InvalidArgument("cannot bin an empty column");
  }
  if (max_bins < 2 || max_bins > 64) {
    return Status::InvalidArgument("max_bins must be in [2, 64]");
  }
  Rng rng(seed);
  size_t n = column.size();
  size_t samples = std::min<size_t>(sample_size, n);
  // Draw the row ids first and gather them in ASCENDING row order: the
  // sample is sorted by value right below, so the row order cannot change
  // the bounds, and a paged column then faults every touched chunk once
  // instead of once per sampled value.
  std::vector<uint64_t> rows(samples);
  if (samples == n) {
    for (size_t i = 0; i < n; ++i) rows[i] = i;
  } else {
    for (size_t i = 0; i < samples; ++i) rows[i] = rng.Uniform(n);
    std::sort(rows.begin(), rows.end());
  }
  std::vector<double> sample(samples);
  if (Status st = column.GetDoubleBatch(rows.data(), samples, sample.data());
      !st.ok()) {
    return st;
  }
  std::sort(sample.begin(), sample.end());
  sample.erase(std::unique(sample.begin(), sample.end()), sample.end());

  uint32_t distinct = static_cast<uint32_t>(sample.size());
  // As in MonetDB: shrink the imprint when the sample shows few distinct
  // values; bins = next power of two covering the distinct count, capped.
  uint32_t bins = std::min(max_bins, RoundUpPow2(std::max<uint32_t>(distinct, 2)));

  std::vector<double> bounds;
  if (distinct <= bins - 1) {
    // One bin boundary per distinct value: exact binning.
    bounds.assign(sample.begin(), sample.end());
    if (!bounds.empty()) bounds.pop_back();  // last bin is unbounded anyway
  } else {
    // Equi-depth: boundaries at equal ranks of the distinct sample.
    bounds.reserve(bins - 1);
    for (uint32_t i = 1; i < bins; ++i) {
      size_t rank = static_cast<size_t>(
          static_cast<double>(i) * distinct / bins);
      rank = std::min(rank, sample.size() - 1);
      double bnd = sample[rank];
      if (bounds.empty() || bnd > bounds.back()) bounds.push_back(bnd);
    }
  }
  return FromBounds(bounds);
}

}  // namespace geocol
