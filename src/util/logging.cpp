#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace geocol {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::atomic<bool> g_level_explicit{false};
std::once_flag g_env_once;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

bool ParseLevel(const char* s, LogLevel* out) {
  if (s == nullptr) return false;
  if (std::strcmp(s, "debug") == 0) { *out = LogLevel::kDebug; return true; }
  if (std::strcmp(s, "info") == 0) { *out = LogLevel::kInfo; return true; }
  if (std::strcmp(s, "warning") == 0 || std::strcmp(s, "warn") == 0) {
    *out = LogLevel::kWarning;
    return true;
  }
  if (std::strcmp(s, "error") == 0) { *out = LogLevel::kError; return true; }
  return false;
}

/// Reads GEOCOL_LOG_LEVEL exactly once; an earlier SetLogLevel() wins.
void InitLevelFromEnv() {
  std::call_once(g_env_once, [] {
    LogLevel level;
    if (!g_level_explicit.load(std::memory_order_acquire) &&
        ParseLevel(std::getenv("GEOCOL_LOG_LEVEL"), &level)) {
      g_level.store(level, std::memory_order_relaxed);
    }
  });
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level_explicit.store(true, std::memory_order_release);
  g_level.store(level);
}

LogLevel GetLogLevel() {
  InitLevelFromEnv();
  return g_level.load();
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  InitLevelFromEnv();
  if (level < g_level.load(std::memory_order_relaxed)) return;
  const char* base = std::strrchr(file, '/');
  base = base != nullptr ? base + 1 : file;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               message.c_str());
}

}  // namespace geocol
