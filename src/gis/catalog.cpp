#include "gis/catalog.h"

namespace geocol {

Status Catalog::AddPointCloud(const std::string& name,
                              std::shared_ptr<FlatTable> table,
                              EngineOptions options) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (NameTaken(name)) {
    return Status::AlreadyExists("dataset '" + name + "' exists");
  }
  tables_[name] = table;
  engines_[name] =
      std::make_unique<SpatialQueryEngine>(std::move(table), options);
  return Status::OK();
}

Status Catalog::AddShardedPointCloud(const std::string& name,
                                     std::shared_ptr<ShardedTable> table,
                                     EngineOptions options) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (NameTaken(name)) {
    return Status::AlreadyExists("dataset '" + name + "' exists");
  }
  sharded_tables_[name] = table;
  routers_[name] = std::make_unique<ShardRouter>(std::move(table), options);
  return Status::OK();
}

Status Catalog::AddLivePointCloud(const std::string& name,
                                  std::shared_ptr<LiveTable> table) {
  if (table == nullptr) return Status::InvalidArgument("null live table");
  if (NameTaken(name)) {
    return Status::AlreadyExists("dataset '" + name + "' exists");
  }
  live_tables_[name] = std::move(table);
  return Status::OK();
}

Status Catalog::AddLayer(std::shared_ptr<VectorLayer> layer) {
  if (layer == nullptr) return Status::InvalidArgument("null layer");
  const std::string& name = layer->name();
  if (NameTaken(name)) {
    return Status::AlreadyExists("dataset '" + name + "' exists");
  }
  layers_[name] = std::move(layer);
  return Status::OK();
}

Result<SpatialQueryEngine*> Catalog::GetEngine(const std::string& name) {
  auto it = engines_.find(name);
  if (it == engines_.end()) {
    return Status::NotFound("no point cloud '" + name + "'");
  }
  return it->second.get();
}

Result<std::shared_ptr<FlatTable>> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no point cloud '" + name + "'");
  }
  return it->second;
}

Result<std::shared_ptr<VectorLayer>> Catalog::GetLayer(
    const std::string& name) {
  auto it = layers_.find(name);
  if (it == layers_.end()) {
    return Status::NotFound("no layer '" + name + "'");
  }
  return it->second;
}

Result<ShardRouter*> Catalog::GetRouter(const std::string& name) {
  auto it = routers_.find(name);
  if (it == routers_.end()) {
    return Status::NotFound("no sharded point cloud '" + name + "'");
  }
  return it->second.get();
}

Result<std::shared_ptr<ShardedTable>> Catalog::GetShardedTable(
    const std::string& name) {
  auto it = sharded_tables_.find(name);
  if (it == sharded_tables_.end()) {
    return Status::NotFound("no sharded point cloud '" + name + "'");
  }
  return it->second;
}

Result<std::shared_ptr<LiveTable>> Catalog::GetLiveTable(
    const std::string& name) {
  auto it = live_tables_.find(name);
  if (it == live_tables_.end()) {
    return Status::NotFound("no live point cloud '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> Catalog::PointCloudNames() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : engines_) out.push_back(name);
  return out;
}

std::vector<std::string> Catalog::LayerNames() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : layers_) out.push_back(name);
  return out;
}

std::vector<std::string> Catalog::ShardedPointCloudNames() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : routers_) out.push_back(name);
  return out;
}

std::vector<std::string> Catalog::LivePointCloudNames() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : live_tables_) out.push_back(name);
  return out;
}

}  // namespace geocol
