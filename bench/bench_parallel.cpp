// E9: morsel-driven parallel execution — thread scaling of the two-step
// filter/refine pipeline and of the imprint build on one large survey.
//
// The engine is identical at every row; only EngineOptions::num_threads
// changes (1 = the serial executor). Row ids are checked against the
// serial run, so the table doubles as an at-scale equivalence test.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/spatial_engine.h"
#include "util/thread_pool.h"

using namespace geocol;
using namespace geocol::bench;

int main(int argc, char** argv) {
  geocol::bench::InitBench(argc, argv);
  const uint64_t n = BenchPoints(10000000);
  Banner("E9: thread scaling of the filter/refine pipeline",
         "same query at 1/2/4/8 threads, min of reps; speedup vs 1 thread");

  auto table = GenerateSurvey(n);
  const Box extent = SurveyOptions(n).extent;
  std::printf("survey: %llu points\n",
              static_cast<unsigned long long>(table->num_rows()));

  // A polygon covering roughly a quarter of the extent: large enough that
  // both the scan and the refinement dominate fork/join overhead.
  Polygon poly = Polygon::Circle(
      {extent.min_x + extent.width() / 2, extent.min_y + extent.height() / 2},
      extent.width() * 0.28, 48);
  Geometry query(poly);

  // ---- imprint build scaling (x column, fresh pool per row).
  {
    TablePrinter out({"threads", "build ms", "speedup"});
    double base_ms = 0;
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      ColumnPtr x = table->column("x");
      double ms;
      if (threads == 1) {
        ms = TimeMs([&] { (void)ImprintsIndex::Build(*x); });
      } else {
        ThreadPool pool(threads - 1);
        ms = TimeMs([&] { (void)ImprintsIndex::Build(*x, {}, &pool); });
      }
      if (base_ms == 0) base_ms = ms;
      out.Row({TablePrinter::Int(threads), TablePrinter::Num(ms),
               TablePrinter::Num(base_ms / ms) + "x"});
    }
  }

  // ---- end-to-end selection and aggregation scaling.
  std::printf("\nselection + aggregation (%s):\n", "polygon, no buffer");
  TablePrinter out({"threads", "select ms", "speedup", "agg(avg z) ms",
                    "results", "match"});
  double base_ms = 0;
  std::vector<uint64_t> serial_rows;
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    EngineOptions opts;
    opts.num_threads = threads;
    SpatialQueryEngine engine(table, opts);
    (void)engine.SelectInGeometry(query);  // warm: builds imprints
    uint64_t results = 0;
    std::vector<uint64_t> rows;
    double ms = TimeMs([&] {
      auto res = engine.SelectInGeometry(query);
      if (res.ok()) {
        results = res->count();
        rows = std::move(res->row_ids);
      }
    });
    double agg_ms = TimeMs([&] {
      (void)engine.Aggregate(query, 0.0, {}, "z", AggKind::kAvg);
    });
    if (threads == 1) {
      base_ms = ms;
      serial_rows = rows;
    }
    out.Row({TablePrinter::Int(threads), TablePrinter::Num(ms),
             TablePrinter::Num(base_ms / ms) + "x", TablePrinter::Num(agg_ms),
             TablePrinter::Int(results),
             rows == serial_rows ? "yes" : "NO (BUG)"});
  }
  return 0;
}
