#include "baselines/zonemap.h"

#include <algorithm>

namespace geocol {

Result<ZoneMapIndex> ZoneMapIndex::Build(const Column& column,
                                         uint32_t rows_per_zone) {
  if (column.empty()) {
    return Status::InvalidArgument("cannot build zonemap on empty column");
  }
  if (rows_per_zone == 0) {
    return Status::InvalidArgument("rows_per_zone must be positive");
  }
  ZoneMapIndex ix;
  ix.rows_per_zone_ = rows_per_zone;
  ix.num_rows_ = column.size();
  ix.built_epoch_ = column.epoch();
  uint64_t zones = (ix.num_rows_ + rows_per_zone - 1) / rows_per_zone;
  ix.mins_.resize(zones);
  ix.maxs_.resize(zones);
  DispatchDataType(column.type(), [&]<typename T>() {
    std::span<const T> values = column.Values<T>();
    for (uint64_t z = 0; z < zones; ++z) {
      uint64_t first = z * rows_per_zone;
      uint64_t last = std::min<uint64_t>(first + rows_per_zone, values.size());
      T mn = values[first], mx = values[first];
      for (uint64_t i = first + 1; i < last; ++i) {
        mn = std::min(mn, values[i]);
        mx = std::max(mx, values[i]);
      }
      ix.mins_[z] = static_cast<double>(mn);
      ix.maxs_[z] = static_cast<double>(mx);
    }
  });
  return ix;
}

void ZoneMapIndex::FilterRange(double lo, double hi, BitVector* candidates,
                               BitVector* full_zones) const {
  uint64_t zones = mins_.size();
  candidates->Resize(zones);
  if (full_zones != nullptr) full_zones->Resize(zones);
  for (uint64_t z = 0; z < zones; ++z) {
    if (mins_[z] <= hi && maxs_[z] >= lo) {
      candidates->Set(z);
      if (full_zones != nullptr && mins_[z] >= lo && maxs_[z] <= hi) {
        full_zones->Set(z);
      }
    }
  }
}

Status ZoneMapIndex::RangeSelect(const Column& column, double lo, double hi,
                                 BitVector* out_rows,
                                 ZoneMapScanStats* stats) const {
  if (column.epoch() != built_epoch_) {
    return Status::Internal("stale zonemap (column was modified)");
  }
  out_rows->Resize(column.size());
  ZoneMapScanStats local;
  local.zones_total = mins_.size();
  DispatchDataType(column.type(), [&]<typename T>() {
    std::span<const T> values = column.Values<T>();
    for (uint64_t z = 0; z < mins_.size(); ++z) {
      if (!(mins_[z] <= hi && maxs_[z] >= lo)) continue;
      ++local.zones_candidate;
      uint64_t first = z * rows_per_zone_;
      uint64_t last = std::min<uint64_t>(first + rows_per_zone_, values.size());
      if (mins_[z] >= lo && maxs_[z] <= hi) {
        ++local.zones_full;
        out_rows->SetRange(first, last);
        local.rows_selected += last - first;
        continue;
      }
      for (uint64_t i = first; i < last; ++i) {
        double v = static_cast<double>(values[i]);
        ++local.values_checked;
        if (v >= lo && v <= hi) {
          out_rows->Set(i);
          ++local.rows_selected;
        }
      }
    }
  });
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace geocol
