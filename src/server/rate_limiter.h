// Per-client token-bucket rate limiting for the query server
// (DESIGN.md §16). Each client id owns an independent bucket, so one
// flooding client exhausts only its own tokens and can never starve a
// polite neighbour — fairness by construction.
#ifndef GEOCOL_SERVER_RATE_LIMITER_H_
#define GEOCOL_SERVER_RATE_LIMITER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace geocol {
namespace server {

/// Thread-safe token-bucket limiter keyed by client id. A bucket starts
/// full (`burst` tokens), refills at `qps` tokens per second capped at
/// `burst`, and each allowed request consumes one token. `qps <= 0`
/// disables limiting entirely. Time is injected (monotonic nanos) so
/// tests are deterministic.
///
/// Client ids are untrusted input, so the map is bounded at
/// `max_clients`: at the cap, buckets refilled back to burst are swept
/// first (a full bucket is indistinguishable from a fresh one — dropping
/// it never changes an Allow() answer), then the stalest bucket goes.
class TokenBucketLimiter {
 public:
  TokenBucketLimiter(double qps, double burst, size_t max_clients = 4096)
      : qps_(qps),
        burst_(burst < 1.0 ? 1.0 : burst),
        max_clients_(max_clients < 1 ? 1 : max_clients) {}

  /// True when `client` may run one query at `now_nanos`.
  bool Allow(const std::string& client, int64_t now_nanos);

  /// Number of clients with a bucket (observability/tests).
  size_t num_clients() const;

 private:
  struct Bucket {
    double tokens = 0;
    int64_t last_nanos = 0;
  };

  /// Makes room for one more bucket: sweeps refilled-to-full buckets,
  /// then drops the least-recently-used one if the map is still at cap.
  void EvictLocked(int64_t now_nanos);

  const double qps_;
  const double burst_;
  const size_t max_clients_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Bucket> buckets_;
};

}  // namespace server
}  // namespace geocol

#endif  // GEOCOL_SERVER_RATE_LIMITER_H_
