// The no-index baseline: every spatial selection scans the x and y columns
// end to end and applies the exact predicate per row.
#ifndef GEOCOL_BASELINES_FULL_SCAN_H_
#define GEOCOL_BASELINES_FULL_SCAN_H_

#include <vector>

#include "columns/flat_table.h"
#include "geom/geometry.h"
#include "util/status.h"

namespace geocol {

/// Scans the whole table; returns ascending row ids of points inside
/// `geometry` (buffered by `buffer` when > 0). The correctness oracle for
/// every other access path.
Result<std::vector<uint64_t>> FullScanSelect(const FlatTable& table,
                                             const Geometry& geometry,
                                             double buffer = 0.0);

/// Box-only fast variant (pure coordinate comparisons).
Result<std::vector<uint64_t>> FullScanSelectBox(const FlatTable& table,
                                                const Box& box);

}  // namespace geocol

#endif  // GEOCOL_BASELINES_FULL_SCAN_H_
