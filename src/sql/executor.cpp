#include "sql/executor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "geom/wkt.h"
#include "gis/spatial_join.h"
#include "util/binary_io.h"
#include "util/crc32c.h"
#include "util/timer.h"

namespace geocol {
namespace sql {

std::string Value::ToString() const {
  switch (kind) {
    case Kind::kNull: return "NULL";
    case Kind::kText: return text;
    case Kind::kNumber: {
      char buf[64];
      if (number == std::floor(number) && std::abs(number) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number));
      } else {
        std::snprintf(buf, sizeof(buf), "%.6g", number);
      }
      return buf;
    }
  }
  return "";
}

bool Value::operator==(const Value& o) const {
  if (kind != o.kind) return false;
  if (kind == Kind::kNumber) return number == o.number;
  if (kind == Kind::kText) return text == o.text;
  return true;
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::string s;
  for (size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) s += " | ";
    s += columns[c];
  }
  s += '\n';
  s += std::string(std::max<size_t>(s.size(), 2) - 1, '-');
  s += '\n';
  size_t shown = std::min(rows.size(), max_rows);
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      if (c > 0) s += " | ";
      s += rows[r][c].ToString();
    }
    s += '\n';
  }
  if (shown < rows.size()) {
    s += "... (" + std::to_string(rows.size() - shown) + " more rows)\n";
  }
  s += "(" + std::to_string(rows.size()) + " rows)\n";
  return s;
}

namespace {

Result<double> AggKindFromFunc(AggFunc f, const Column& col,
                               const std::vector<uint64_t>& rows) {
  switch (f) {
    case AggFunc::kCount: return static_cast<double>(rows.size());
    case AggFunc::kSum: return AggregateRows(col, rows, AggKind::kSum);
    case AggFunc::kAvg: return AggregateRows(col, rows, AggKind::kAvg);
    case AggFunc::kMin: return AggregateRows(col, rows, AggKind::kMin);
    case AggFunc::kMax: return AggregateRows(col, rows, AggKind::kMax);
    case AggFunc::kNone: break;
  }
  return std::nan("");
}

/// Rows per batched value-access block in the post-filter, ORDER BY and
/// projection paths below. Batching resolves the column's type dispatch
/// once per block and, on the paged tier, faults each covering chunk once
/// instead of once per row — and it surfaces chunk-fault errors as Status
/// where the scalar GetDouble can only return NaN.
constexpr size_t kExecBlockRows = 1024;

/// The rendering half of flat point-cloud execution: aggregation or
/// `*`-expansion / ORDER BY / LIMIT / projection over an already-selected
/// row set. `rs.profile` holds the selection-phase spans on entry. Shared
/// by ExecutePointCloud and the server's batched fan-out
/// (ExecutePointCloudWithRows), so both render bit-identically.
Result<ResultSet> RenderPointCloud(const PlannedQuery& plan,
                                   const FlatTable& table,
                                   std::vector<uint64_t> rows, ResultSet rs) {
  if (plan.stmt.IsAggregate()) {
    std::vector<Value> out_row;
    for (const SelectItem& it : plan.stmt.items) {
      rs.columns.push_back(std::string(AggFuncName(it.agg)) + "(" +
                           (it.star ? "*" : it.column) + ")");
      if (it.agg == AggFunc::kCount) {
        out_row.push_back(Value::Num(static_cast<double>(rows.size())));
      } else {
        GEOCOL_ASSIGN_OR_RETURN(ColumnPtr col, table.GetColumn(it.column));
        GEOCOL_ASSIGN_OR_RETURN(double v, AggKindFromFunc(it.agg, *col, rows));
        out_row.push_back(rows.empty() ? Value::Null() : Value::Num(v));
      }
    }
    rs.rows.push_back(std::move(out_row));
    return rs;
  }

  // Expand `*`.
  std::vector<std::string> proj;
  const Schema table_schema = table.schema();
  for (const SelectItem& it : plan.stmt.items) {
    if (it.star) {
      for (const Field& f : table_schema.fields()) proj.push_back(f.name);
    } else {
      proj.push_back(it.column);
    }
  }
  std::vector<ColumnPtr> cols;
  for (const std::string& name : proj) {
    GEOCOL_ASSIGN_OR_RETURN(ColumnPtr c, table.GetColumn(name));
    cols.push_back(std::move(c));
    rs.columns.push_back(name);
  }
  if (!plan.stmt.order_by.empty()) {
    Timer ts;
    GEOCOL_ASSIGN_OR_RETURN(ColumnPtr key, table.GetColumn(plan.stmt.order_by));
    // Pre-materialise the sort keys with one batched pass, then sort a
    // permutation: the comparator never touches the column, so a paged key
    // column faults each chunk once instead of O(n log n) times, and the
    // (stable) order is exactly the old compare-by-GetDouble order.
    std::vector<double> keys(rows.size());
    for (size_t base = 0; base < rows.size(); base += kExecBlockRows) {
      const size_t bn = std::min(kExecBlockRows, rows.size() - base);
      GEOCOL_RETURN_NOT_OK(
          key->GetDoubleBatch(rows.data() + base, bn, keys.data() + base));
    }
    std::vector<size_t> order(rows.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return plan.stmt.order_desc ? keys[a] > keys[b] : keys[a] < keys[b];
    });
    std::vector<uint64_t> sorted(rows.size());
    for (size_t i = 0; i < order.size(); ++i) sorted[i] = rows[order[i]];
    rows = std::move(sorted);
    rs.profile.Add("sort." + plan.stmt.order_by, ts.ElapsedNanos(),
                   rows.size(), rows.size());
  }
  uint64_t limit = plan.stmt.limit >= 0
                       ? static_cast<uint64_t>(plan.stmt.limit)
                       : rows.size();
  const uint64_t shown = std::min<uint64_t>(limit, rows.size());
  Timer t;
  std::vector<std::vector<double>> block(cols.size(),
                                         std::vector<double>(kExecBlockRows));
  for (uint64_t base = 0; base < shown; base += kExecBlockRows) {
    const size_t bn =
        static_cast<size_t>(std::min<uint64_t>(kExecBlockRows, shown - base));
    for (size_t c = 0; c < cols.size(); ++c) {
      GEOCOL_RETURN_NOT_OK(
          cols[c]->GetDoubleBatch(rows.data() + base, bn, block[c].data()));
    }
    for (size_t i = 0; i < bn; ++i) {
      std::vector<Value> out_row;
      out_row.reserve(cols.size());
      for (size_t c = 0; c < cols.size(); ++c) {
        out_row.push_back(Value::Num(block[c][i]));
      }
      rs.rows.push_back(std::move(out_row));
    }
  }
  rs.profile.Add("project", t.ElapsedNanos(), rows.size(), rs.rows.size());
  return rs;
}

Result<ResultSet> ExecutePointCloud(const PlannedQuery& plan) {
  ResultSet rs;
  const FlatTable& table = plan.engine->table();

  // ---- Selection.
  std::vector<uint64_t> rows;
  if (plan.near) {
    GEOCOL_ASSIGN_OR_RETURN(
        NearLayerResult near,
        PointsNearLayerClass(plan.engine, plan.near_layer.get(),
                             plan.near_class, plan.near_distance));
    rows = std::move(near.row_ids);
    rs.profile = std::move(near.profile);
    // NEAR + thematic: post-filter the joined rows (the per-feature engine
    // calls cannot push the thematic ranges into the union).
    if (!plan.thematic.empty()) {
      Timer t;
      std::vector<ColumnPtr> cols;
      for (const AttributeRange& a : plan.thematic) {
        GEOCOL_ASSIGN_OR_RETURN(ColumnPtr c, table.GetColumn(a.column));
        cols.push_back(std::move(c));
      }
      std::vector<uint8_t> keep(rows.size(), 1);
      std::vector<double> vals(kExecBlockRows);
      for (size_t ci = 0; ci < cols.size(); ++ci) {
        for (size_t base = 0; base < rows.size(); base += kExecBlockRows) {
          const size_t bn = std::min(kExecBlockRows, rows.size() - base);
          GEOCOL_RETURN_NOT_OK(
              cols[ci]->GetDoubleBatch(rows.data() + base, bn, vals.data()));
          for (size_t i = 0; i < bn; ++i) {
            if (vals[i] < plan.thematic[ci].lo ||
                vals[i] > plan.thematic[ci].hi) {
              keep[base + i] = 0;
            }
          }
        }
      }
      std::vector<uint64_t> kept;
      for (size_t i = 0; i < rows.size(); ++i) {
        if (keep[i] != 0) kept.push_back(rows[i]);
      }
      rs.profile.Add("thematic.postfilter", t.ElapsedNanos(), rows.size(),
                     kept.size());
      rows = std::move(kept);
    }
  } else {
    Geometry query_geom = plan.geometry;
    if (!plan.has_geometry) {
      // No spatial predicate: the whole table extent is the query box; the
      // imprint filter degenerates to full-line acceptance.
      GEOCOL_ASSIGN_OR_RETURN(ColumnPtr xc, table.GetColumn("x"));
      GEOCOL_ASSIGN_OR_RETURN(ColumnPtr yc, table.GetColumn("y"));
      Box extent(xc->Stats().min, yc->Stats().min, xc->Stats().max,
                 yc->Stats().max);
      query_geom = Geometry(extent);
    }
    GEOCOL_ASSIGN_OR_RETURN(
        SelectionResult sel,
        plan.engine->Select(query_geom, plan.buffer, plan.thematic));
    rows = std::move(sel.row_ids);
    rs.profile = std::move(sel.profile);
  }

  // ---- Projection / aggregation.
  return RenderPointCloud(plan, table, std::move(rows), std::move(rs));
}

AggKind AggKindOf(AggFunc f) {
  switch (f) {
    case AggFunc::kSum: return AggKind::kSum;
    case AggFunc::kAvg: return AggKind::kAvg;
    case AggFunc::kMin: return AggKind::kMin;
    case AggFunc::kMax: return AggKind::kMax;
    case AggFunc::kCount:
    case AggFunc::kNone: break;
  }
  return AggKind::kCount;
}

/// Mirror of ExecutePointCloud over a shard router. Value access goes
/// through ShardedColumnReader (global row -> owning shard's local
/// column); aggregates run the shared serial aggregation core, so results
/// are bit-identical to the flat-table path over the same row set.
Result<ResultSet> ExecuteShardedPointCloud(const PlannedQuery& plan) {
  ResultSet rs;
  ShardRouter* router = plan.router;

  // One view pins the whole statement: selection, aggregation, ORDER BY
  // and projection all read the same shard epoch, so global row ids never
  // shift (and values never move) under a statement while live appends
  // publish concurrently.
  ShardsView view = router->View();

  // ---- Selection (the planner rejects NEAR on sharded tables).
  Geometry query_geom = plan.geometry;
  if (!plan.has_geometry) {
    // No spatial predicate: the sharded extent is the query box — every
    // shard bbox intersects it, so nothing is pruned and the per-shard
    // imprint filters degenerate to full-line acceptance.
    query_geom = Geometry(router->table().extent());
  }
  GEOCOL_ASSIGN_OR_RETURN(
      SelectionResult sel,
      router->Select(view, query_geom, plan.buffer, plan.thematic));
  std::vector<uint64_t> rows = std::move(sel.row_ids);
  rs.profile = std::move(sel.profile);

  // ---- Projection / aggregation.
  if (plan.stmt.IsAggregate()) {
    std::vector<Value> out_row;
    for (const SelectItem& it : plan.stmt.items) {
      rs.columns.push_back(std::string(AggFuncName(it.agg)) + "(" +
                           (it.star ? "*" : it.column) + ")");
      if (it.agg == AggFunc::kCount) {
        out_row.push_back(Value::Num(static_cast<double>(rows.size())));
      } else {
        GEOCOL_ASSIGN_OR_RETURN(
            double v, router->AggregateGlobalRows(view, rows, it.column,
                                                  AggKindOf(it.agg)));
        out_row.push_back(rows.empty() ? Value::Null() : Value::Num(v));
      }
    }
    rs.rows.push_back(std::move(out_row));
    return rs;
  }

  // Expand `*`.
  std::vector<std::string> proj;
  const Schema table_schema = router->schema();
  for (const SelectItem& it : plan.stmt.items) {
    if (it.star) {
      for (const Field& f : table_schema.fields()) proj.push_back(f.name);
    } else {
      proj.push_back(it.column);
    }
  }
  std::vector<ShardedColumnReader> cols;
  for (const std::string& name : proj) {
    GEOCOL_ASSIGN_OR_RETURN(ShardedColumnReader c,
                            ShardedColumnReader::Make(view, name));
    cols.push_back(std::move(c));
    rs.columns.push_back(name);
  }
  if (!plan.stmt.order_by.empty()) {
    Timer ts;
    GEOCOL_ASSIGN_OR_RETURN(
        ShardedColumnReader key,
        ShardedColumnReader::Make(view, plan.stmt.order_by));
    std::stable_sort(rows.begin(), rows.end(), [&](uint64_t a, uint64_t b) {
      double va = key.GetDouble(a), vb = key.GetDouble(b);
      return plan.stmt.order_desc ? va > vb : va < vb;
    });
    rs.profile.Add("sort." + plan.stmt.order_by, ts.ElapsedNanos(),
                   rows.size(), rows.size());
  }
  uint64_t limit = plan.stmt.limit >= 0
                       ? static_cast<uint64_t>(plan.stmt.limit)
                       : rows.size();
  Timer t;
  for (uint64_t i = 0; i < rows.size() && i < limit; ++i) {
    std::vector<Value> out_row;
    out_row.reserve(cols.size());
    for (const ShardedColumnReader& c : cols) {
      out_row.push_back(Value::Num(c.GetDouble(rows[i])));
    }
    rs.rows.push_back(std::move(out_row));
  }
  rs.profile.Add("project", t.ElapsedNanos(), rows.size(), rs.rows.size());
  return rs;
}

Result<ResultSet> ExecuteLayer(const PlannedQuery& plan) {
  ResultSet rs;
  VectorLayer* layer = plan.layer.get();

  Timer t;
  std::vector<uint64_t> features;
  if (plan.has_geometry) {
    features = plan.buffer > 0
                   ? layer->QueryWithinDistance(plan.geometry, plan.buffer)
                   : layer->QueryIntersecting(plan.geometry);
    rs.profile.Add("layer.spatial_select", t.ElapsedNanos(), layer->size(),
                   features.size());
  } else {
    features.resize(layer->size());
    for (size_t i = 0; i < layer->size(); ++i) features[i] = i;
  }

  if (!plan.thematic.empty()) {
    Timer t2;
    std::vector<uint64_t> kept;
    for (uint64_t fi : features) {
      const VectorFeature& f = layer->feature(fi);
      bool ok = true;
      for (const AttributeRange& a : plan.thematic) {
        double v = a.column == "id" ? static_cast<double>(f.id)
                                    : static_cast<double>(f.feature_class);
        if (v < a.lo || v > a.hi) {
          ok = false;
          break;
        }
      }
      if (ok) kept.push_back(fi);
    }
    rs.profile.Add("layer.thematic", t2.ElapsedNanos(), features.size(),
                   kept.size());
    features = std::move(kept);
  }

  auto cell = [&](const SelectItem& it, const VectorFeature& f) -> Value {
    if (it.column == "id") return Value::Num(static_cast<double>(f.id));
    if (it.column == "class") {
      return Value::Num(static_cast<double>(f.feature_class));
    }
    if (it.column == "name") return Value::Text(f.name);
    if (it.column == "geom") return Value::Text(ToWkt(f.geometry));
    return Value::Null();
  };

  if (plan.stmt.IsAggregate()) {
    std::vector<Value> out_row;
    for (const SelectItem& it : plan.stmt.items) {
      rs.columns.push_back(std::string(AggFuncName(it.agg)) + "(" +
                           (it.star ? "*" : it.column) + ")");
      if (it.agg == AggFunc::kCount) {
        out_row.push_back(Value::Num(static_cast<double>(features.size())));
        continue;
      }
      if (features.empty()) {
        out_row.push_back(Value::Null());
        continue;
      }
      double acc = it.agg == AggFunc::kMin
                       ? std::numeric_limits<double>::infinity()
                       : (it.agg == AggFunc::kMax
                              ? -std::numeric_limits<double>::infinity()
                              : 0.0);
      for (uint64_t fi : features) {
        const VectorFeature& f = layer->feature(fi);
        double v = it.column == "id" ? static_cast<double>(f.id)
                                     : static_cast<double>(f.feature_class);
        switch (it.agg) {
          case AggFunc::kSum:
          case AggFunc::kAvg: acc += v; break;
          case AggFunc::kMin: acc = std::min(acc, v); break;
          case AggFunc::kMax: acc = std::max(acc, v); break;
          default: break;
        }
      }
      if (it.agg == AggFunc::kAvg) acc /= static_cast<double>(features.size());
      out_row.push_back(Value::Num(acc));
    }
    rs.rows.push_back(std::move(out_row));
    return rs;
  }

  if (!plan.stmt.order_by.empty()) {
    auto key_of = [&](uint64_t fi) -> std::string {
      const VectorFeature& f = layer->feature(fi);
      if (plan.stmt.order_by == "name") return f.name;
      char buf[32];
      double v = plan.stmt.order_by == "id"
                     ? static_cast<double>(f.id)
                     : static_cast<double>(f.feature_class);
      std::snprintf(buf, sizeof(buf), "%020.3f", v);
      return buf;
    };
    std::stable_sort(features.begin(), features.end(),
                     [&](uint64_t a, uint64_t b) {
                       return plan.stmt.order_desc ? key_of(a) > key_of(b)
                                                   : key_of(a) < key_of(b);
                     });
  }

  std::vector<SelectItem> proj;
  for (const SelectItem& it : plan.stmt.items) {
    if (it.star) {
      for (const char* c : {"id", "class", "name", "geom"}) {
        SelectItem si;
        si.column = c;
        proj.push_back(si);
      }
    } else {
      proj.push_back(it);
    }
  }
  for (const SelectItem& it : proj) rs.columns.push_back(it.column);
  uint64_t limit = plan.stmt.limit >= 0
                       ? static_cast<uint64_t>(plan.stmt.limit)
                       : features.size();
  for (uint64_t i = 0; i < features.size() && i < limit; ++i) {
    const VectorFeature& f = layer->feature(features[i]);
    std::vector<Value> out_row;
    for (const SelectItem& it : proj) out_row.push_back(cell(it, f));
    rs.rows.push_back(std::move(out_row));
  }
  return rs;
}

}  // namespace

namespace {

/// Appends each line of `text` as a one-column text row.
void PushTextLines(ResultSet* rs, const std::string& text) {
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    rs->rows.push_back({Value::Text(text.substr(start, nl - start))});
    start = nl + 1;
  }
}

}  // namespace

Result<ResultSet> ExecutePointCloudWithRows(const PlannedQuery& plan,
                                            std::vector<uint64_t> rows,
                                            QueryProfile profile) {
  ResultSet rs;
  rs.profile = std::move(profile);
  return RenderPointCloud(plan, plan.engine->table(), std::move(rows),
                          std::move(rs));
}

Result<ResultSet> ExecuteQuery(const PlannedQuery& plan) {
  if (plan.stmt.explain && !plan.stmt.analyze) {
    ResultSet rs;
    rs.columns = {"plan"};
    PushTextLines(&rs, plan.Describe());
    return rs;
  }
  Result<ResultSet> executed =
      plan.target == PlannedQuery::Target::kPointCloud
          ? (plan.router != nullptr ? ExecuteShardedPointCloud(plan)
                                    : ExecutePointCloud(plan))
          : ExecuteLayer(plan);
  if (!plan.stmt.analyze) return executed;
  GEOCOL_RETURN_NOT_OK(executed.status());
  // EXPLAIN ANALYZE: the query ran in full; return the plan followed by
  // the executed span tree (times, cardinalities, worker counts, span
  // attributes) instead of the result rows.
  ResultSet rs;
  rs.columns = {"explain analyze"};
  PushTextLines(&rs, plan.Describe());
  rs.rows.push_back({Value::Text("")});
  char header[64];
  std::snprintf(header, sizeof(header), "spans (%llu rows returned):",
                static_cast<unsigned long long>(executed->rows.size()));
  rs.rows.push_back({Value::Text(header)});
  PushTextLines(&rs, executed->profile.ToString());
  // Sharded execution: summarise the bbox pruning below the span tree.
  for (const OperatorProfile& op : executed->profile.operators()) {
    if (op.name != "shard.route") continue;
    std::string total = "?", scanned = "?", pruned = "?";
    for (const auto& [k, v] : op.attrs) {
      if (k == "shards_total") total = v;
      if (k == "shards_scanned") scanned = v;
      if (k == "shards_pruned") pruned = v;
    }
    rs.rows.push_back({Value::Text("shards: scanned " + scanned + "/" +
                                   total + " (" + pruned + " pruned)")});
    break;
  }
  rs.profile = std::move(executed->profile);
  return rs;
}

namespace {

/// Streams the digest byte image through the CRC in stack-buffer chunks.
/// Produces exactly Crc32c(BufferWriter image) — the digest runs once per
/// recorded statement, so it must not pay a heap resize per value (the
/// flight recorder's E17 overhead budget).
class DigestStream {
 public:
  void Bytes(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    while (n > 0) {
      if (fill_ == sizeof(buf_)) Flush();
      const size_t take = std::min(n, sizeof(buf_) - fill_);
      std::memcpy(buf_ + fill_, p, take);
      fill_ += take;
      p += take;
      n -= take;
    }
  }
  template <typename T>
  void Scalar(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Bytes(&v, sizeof(T));
  }
  void String(const std::string& s) {
    Scalar<uint32_t>(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }
  uint32_t Finish() {
    Flush();
    return crc_;
  }

 private:
  void Flush() {
    crc_ = Crc32cExtend(crc_, buf_, fill_);
    fill_ = 0;
  }

  uint32_t crc_ = 0;
  size_t fill_ = 0;
  uint8_t buf_[512];
};

}  // namespace

uint32_t ResultSetDigest(const ResultSet& rs) {
  DigestStream w;
  w.Scalar<uint32_t>(static_cast<uint32_t>(rs.columns.size()));
  for (const std::string& c : rs.columns) w.String(c);
  w.Scalar<uint64_t>(rs.rows.size());
  for (const auto& row : rs.rows) {
    w.Scalar<uint32_t>(static_cast<uint32_t>(row.size()));
    for (const Value& v : row) {
      w.Scalar<uint8_t>(static_cast<uint8_t>(v.kind));
      switch (v.kind) {
        case Value::Kind::kNull:
          break;
        case Value::Kind::kNumber:
          // Exact bit image, not a decimal rendering: the digest must
          // separate values a printf round-trip would conflate.
          w.Scalar<double>(v.number);
          break;
        case Value::Kind::kText:
          w.String(v.text);
          break;
      }
    }
  }
  return w.Finish();
}

}  // namespace sql
}  // namespace geocol
