#include "baselines/block_store.h"

#include <algorithm>
#include <numeric>

#include "geom/predicates.h"
#include "las/laz.h"
#include "sfc/hilbert.h"
#include "sfc/morton.h"
#include "util/timer.h"

namespace geocol {

Result<BlockStore> BlockStore::Build(std::vector<LasPointRecord> points,
                                     const LasHeader& header,
                                     const Options& options,
                                     BuildStats* stats) {
  if (options.points_per_block == 0) {
    return Status::InvalidArgument("points_per_block must be positive");
  }
  BlockStore store;
  store.header_ = header;
  store.num_points_ = points.size();

  LasTile shim;
  shim.header = header;

  // ---- Sort along the space-filling curve.
  Timer t;
  if (options.order != BlockOrder::kAcquisition && !points.empty()) {
    Box extent;
    for (const auto& p : points) {
      extent.Extend(shim.WorldX(p), shim.WorldY(p));
    }
    std::vector<uint64_t> codes(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      double wx = shim.WorldX(points[i]);
      double wy = shim.WorldY(points[i]);
      codes[i] = options.order == BlockOrder::kMorton
                     ? MortonEncodeScaled(wx, wy, extent)
                     : HilbertEncodeScaled(wx, wy, extent);
    }
    std::vector<uint32_t> perm(points.size());
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(),
              [&](uint32_t a, uint32_t b) { return codes[a] < codes[b]; });
    std::vector<LasPointRecord> sorted(points.size());
    for (size_t i = 0; i < perm.size(); ++i) sorted[i] = points[perm[i]];
    points = std::move(sorted);
  }
  if (stats != nullptr) stats->sort_seconds = t.ElapsedSeconds();

  // ---- Cut into blocks and record bounding boxes.
  t.Restart();
  size_t nblocks =
      (points.size() + options.points_per_block - 1) / options.points_per_block;
  store.blocks_.resize(nblocks);
  for (size_t b = 0; b < nblocks; ++b) {
    size_t first = b * options.points_per_block;
    size_t last =
        std::min(points.size(), first + options.points_per_block);
    Block& block = store.blocks_[b];
    block.count = static_cast<uint32_t>(last - first);
    for (size_t i = first; i < last; ++i) {
      block.box.Extend(shim.WorldX(points[i]), shim.WorldY(points[i]));
    }
  }
  if (stats != nullptr) stats->block_seconds = t.ElapsedSeconds();

  // ---- Compress each block's points.
  t.Restart();
  {
    std::vector<LasPointRecord> scratch;
    for (size_t b = 0; b < nblocks; ++b) {
      size_t first = b * options.points_per_block;
      Block& block = store.blocks_[b];
      scratch.assign(points.begin() + first,
                     points.begin() + first + block.count);
      GEOCOL_RETURN_NOT_OK(LazCompress(scratch, &block.payload));
    }
  }
  if (stats != nullptr) stats->compress_seconds = t.ElapsedSeconds();

  // ---- R-tree over block boxes.
  t.Restart();
  std::vector<RTree::Entry> entries;
  entries.reserve(nblocks);
  for (size_t b = 0; b < nblocks; ++b) {
    entries.push_back({store.blocks_[b].box, b});
  }
  store.block_index_ = RTree::BulkLoad(std::move(entries), options.rtree_fanout);
  if (stats != nullptr) stats->index_seconds = t.ElapsedSeconds();
  return store;
}

Result<std::vector<PointXYZ>> BlockStore::QueryGeometry(
    const Geometry& geometry, double buffer, QueryStats* stats) const {
  QueryStats local;
  local.blocks_total = blocks_.size();
  Box env = geometry.Envelope();
  if (buffer > 0) env = env.Expanded(buffer);

  std::vector<uint64_t> candidate_blocks;
  block_index_.QueryBox(env, &candidate_blocks);
  std::sort(candidate_blocks.begin(), candidate_blocks.end());

  LasTile shim;
  shim.header = header_;
  std::vector<PointXYZ> out;
  std::vector<LasPointRecord> records;
  for (uint64_t b : candidate_blocks) {
    const Block& block = blocks_[b];
    ++local.blocks_candidate;
    GEOCOL_RETURN_NOT_OK(LazDecompress(block.payload, block.count, &records));
    local.points_decompressed += records.size();
    for (const LasPointRecord& rec : records) {
      Point p{shim.WorldX(rec), shim.WorldY(rec)};
      if (!env.Contains(p)) continue;
      bool hit = buffer > 0 ? GeometryDWithin(geometry, p, buffer)
                            : GeometryContainsPoint(geometry, p);
      if (hit) out.push_back({p.x, p.y, shim.WorldZ(rec)});
    }
  }
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

uint64_t BlockStore::PayloadBytes() const {
  uint64_t total = 0;
  for (const Block& b : blocks_) total += b.payload.size();
  return total;
}

uint64_t BlockStore::IndexBytes() const {
  return blocks_.size() * (sizeof(Box) + sizeof(uint32_t)) +
         block_index_.MemoryBytes();
}

}  // namespace geocol
