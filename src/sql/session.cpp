#include "sql/session.h"

#include <cstdlib>

#include "sql/parser.h"
#include "telemetry/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace geocol {
namespace sql {

SessionOptions SessionOptions::FromEnv() {
  SessionOptions options;
  if (const char* env = std::getenv("GEOCOL_SLOW_QUERY_MS")) {
    char* end = nullptr;
    double ms = std::strtod(env, &end);
    if (end != env && ms >= 0) options.slow_query_ms = ms;
  }
  if (const char* env = std::getenv("GEOCOL_CACHE_MB")) {
    char* end = nullptr;
    double mb = std::strtod(env, &end);
    if (end != env && mb >= 0) {
      options.cache_budget_bytes = static_cast<int64_t>(mb * 1024 * 1024);
    }
  }
  return options;
}

Result<ResultSet> Session::Execute(const std::string& sql_text) {
  Timer timer;
  GEOCOL_ASSIGN_OR_RETURN(SelectStmt stmt, Parse(sql_text));
  GEOCOL_ASSIGN_OR_RETURN(PlannedQuery plan, PlanQuery(catalog_, std::move(stmt)));
  last_plan_ = plan.Describe();
  if (options_.cache_budget_bytes >= 0 && plan.engine != nullptr) {
    plan.engine->set_cache_budget(
        static_cast<uint64_t>(options_.cache_budget_bytes));
  }
  if (options_.cache_budget_bytes >= 0 && plan.router != nullptr) {
    plan.router->set_cache_budget(
        static_cast<uint64_t>(options_.cache_budget_bytes));
  }
  GEOCOL_ASSIGN_OR_RETURN(ResultSet rs, ExecuteQuery(plan));
  last_profile_ = rs.profile;
  const int64_t wall_nanos = timer.ElapsedNanos();

  if (options_.record_trace && !last_profile_.empty()) {
    telemetry::TraceRecord record;
    record.query = sql_text;
    record.profile = last_profile_;
    record.wall_nanos = wall_nanos;
    telemetry::TraceRing::Global().Record(std::move(record));
  }

  if (options_.slow_query_ms >= 0 &&
      wall_nanos / 1e6 > options_.slow_query_ms) {
    GEOCOL_LOG(Warning)
            .With("wall_ms", wall_nanos / 1e6)
            .With("threshold_ms", options_.slow_query_ms)
            .With("query", sql_text)
        << "slow query\n"
        << last_plan_ << "\n"
        << last_profile_.ToString();
  }
  return rs;
}

}  // namespace sql
}  // namespace geocol
