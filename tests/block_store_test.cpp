// Block store (PostgreSQL-pointcloud/Oracle-style) tests: build phases,
// query correctness against the oracle, orderings, storage accounting.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/block_store.h"
#include "geom/predicates.h"
#include "util/rng.h"

namespace geocol {
namespace {

struct Dataset {
  std::vector<LasPointRecord> points;
  LasHeader header;
};

Dataset MakeDataset(size_t n, uint64_t seed) {
  Dataset d;
  d.header.scale[0] = d.header.scale[1] = d.header.scale[2] = 0.01;
  Rng rng(seed);
  // Strip-like drift so acquisition order is clustered.
  double x = 0, y = 0;
  for (size_t i = 0; i < n; ++i) {
    LasPointRecord p;
    x += rng.UniformDouble(0, 1.0);
    if (x > 1000) {
      x = 0;
      y += 5;
    }
    p.x = static_cast<int32_t>(x * 100);
    p.y = static_cast<int32_t>((y + rng.UniformDouble(0, 5)) * 100);
    p.z = static_cast<int32_t>(rng.UniformDouble(0, 4000));
    p.intensity = static_cast<uint16_t>(rng.Uniform(256));
    d.points.push_back(p);
  }
  return d;
}

std::vector<PointXYZ> OracleSelect(const Dataset& d, const Geometry& g,
                                   double buffer) {
  LasTile shim;
  shim.header = d.header;
  std::vector<PointXYZ> out;
  for (const auto& rec : d.points) {
    Point p{shim.WorldX(rec), shim.WorldY(rec)};
    bool hit = buffer > 0 ? GeometryDWithin(g, p, buffer)
                          : GeometryContainsPoint(g, p);
    if (hit) out.push_back({p.x, p.y, shim.WorldZ(rec)});
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(BlockStoreTest, BuildValidation) {
  Dataset d = MakeDataset(100, 151);
  BlockStoreOptions opts;
  opts.points_per_block = 0;
  EXPECT_FALSE(BlockStore::Build(d.points, d.header, opts).ok());
}

TEST(BlockStoreTest, BlockCountAndPointCount) {
  Dataset d = MakeDataset(10000, 152);
  BlockStoreOptions opts;
  opts.points_per_block = 400;
  auto store = BlockStore::Build(d.points, d.header, opts);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->num_points(), 10000u);
  EXPECT_EQ(store->num_blocks(), 25u);
}

TEST(BlockStoreTest, EmptyStore) {
  Dataset d = MakeDataset(0, 153);
  auto store = BlockStore::Build(d.points, d.header);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->num_blocks(), 0u);
  auto res = store->QueryGeometry(Geometry(Box(0, 0, 1, 1)));
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->empty());
}

class BlockStoreOrderTest : public ::testing::TestWithParam<BlockOrder> {};

TEST_P(BlockStoreOrderTest, QueryMatchesOracleUnderAllOrderings) {
  Dataset d = MakeDataset(20000, 154);
  BlockStoreOptions opts;
  opts.order = GetParam();
  auto store = BlockStore::Build(d.points, d.header, opts);
  ASSERT_TRUE(store.ok());
  Rng rng(155);
  for (int q = 0; q < 8; ++q) {
    double cx = rng.UniformDouble(0, 1000), cy = rng.UniformDouble(0, 200);
    double r = rng.UniformDouble(10, 150);
    Geometry g(Box(cx - r, cy - r, cx + r, cy + r));
    auto res = store->QueryGeometry(g);
    ASSERT_TRUE(res.ok());
    std::sort(res->begin(), res->end());
    EXPECT_EQ(*res, OracleSelect(d, g, 0.0));
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, BlockStoreOrderTest,
                         ::testing::Values(BlockOrder::kAcquisition,
                                           BlockOrder::kMorton,
                                           BlockOrder::kHilbert),
                         [](const auto& info) {
                           switch (info.param) {
                             case BlockOrder::kAcquisition: return "acq";
                             case BlockOrder::kMorton: return "morton";
                             default: return "hilbert";
                           }
                         });

TEST(BlockStoreTest, PolygonAndBufferedQueries) {
  Dataset d = MakeDataset(15000, 156);
  auto store = BlockStore::Build(d.points, d.header);
  ASSERT_TRUE(store.ok());
  Geometry poly(Polygon::Circle({500, 100}, 80, 24));
  auto res = store->QueryGeometry(poly);
  ASSERT_TRUE(res.ok());
  std::sort(res->begin(), res->end());
  EXPECT_EQ(*res, OracleSelect(d, poly, 0.0));

  LineString road;
  road.points = {{0, 100}, {1000, 120}};
  Geometry g(road);
  auto near = store->QueryGeometry(g, 15.0);
  ASSERT_TRUE(near.ok());
  std::sort(near->begin(), near->end());
  EXPECT_EQ(*near, OracleSelect(d, g, 15.0));
}

TEST(BlockStoreTest, SpatialOrderingPrunesBlocks) {
  Dataset d = MakeDataset(50000, 157);
  BlockStoreOptions acq;
  acq.order = BlockOrder::kAcquisition;
  BlockStoreOptions hil;
  hil.order = BlockOrder::kHilbert;
  auto store_a = BlockStore::Build(d.points, d.header, acq);
  auto store_h = BlockStore::Build(d.points, d.header, hil);
  ASSERT_TRUE(store_a.ok());
  ASSERT_TRUE(store_h.ok());
  Geometry q(Box(200, 50, 260, 110));
  BlockStore::QueryStats sa, sh;
  ASSERT_TRUE(store_a->QueryGeometry(q, 0, &sa).ok());
  ASSERT_TRUE(store_h->QueryGeometry(q, 0, &sh).ok());
  EXPECT_EQ(sa.results, sh.results);
  // Hilbert-ordered blocks are spatially tight: fewer candidate blocks.
  EXPECT_LE(sh.blocks_candidate, sa.blocks_candidate);
  EXPECT_LE(sh.points_decompressed, sa.points_decompressed);
}

TEST(BlockStoreTest, BuildStatsPhases) {
  Dataset d = MakeDataset(20000, 158);
  BlockStore::BuildStats stats;
  auto store = BlockStore::Build(d.points, d.header, BlockStoreOptions(), &stats);
  ASSERT_TRUE(store.ok());
  EXPECT_GT(stats.sort_seconds, 0.0);
  EXPECT_GT(stats.compress_seconds, 0.0);
  EXPECT_GT(stats.TotalSeconds(), 0.0);
}

TEST(BlockStoreTest, CompressionReducesStorage) {
  Dataset d = MakeDataset(50000, 159);
  auto store = BlockStore::Build(d.points, d.header);
  ASSERT_TRUE(store.ok());
  uint64_t raw = d.points.size() * kLasRecordBytes;
  EXPECT_LT(store->PayloadBytes(), raw) << "blocks must be compressed";
  EXPECT_GT(store->IndexBytes(), 0u);
  EXPECT_EQ(store->StorageBytes(),
            store->PayloadBytes() + store->IndexBytes());
}

TEST(BlockStoreTest, QueryStatsConsistent) {
  Dataset d = MakeDataset(20000, 160);
  auto store = BlockStore::Build(d.points, d.header);
  ASSERT_TRUE(store.ok());
  BlockStore::QueryStats stats;
  Geometry q(Box(100, 20, 300, 120));
  auto res = store->QueryGeometry(q, 0, &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(stats.results, res->size());
  EXPECT_EQ(stats.blocks_total, store->num_blocks());
  EXPECT_LE(stats.blocks_candidate, stats.blocks_total);
  EXPECT_LE(stats.results, stats.points_decompressed);
}

}  // namespace
}  // namespace geocol
