// A LAS-like point cloud file format ("GLAS"). It mirrors the structure of
// ASPRS LAS: a fixed header carrying the point count, XYZ scale/offset and
// the bounding box, followed by fixed-width point records holding the X, Y,
// Z coordinates and the 23 additional point properties the paper cites
// ("the current version for LAS has a total of 23 properties excluding the
// X, Y, and Z coordinates").
#ifndef GEOCOL_LAS_LAS_FORMAT_H_
#define GEOCOL_LAS_LAS_FORMAT_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "columns/flat_table.h"
#include "geom/geometry.h"

namespace geocol {

/// Serialized point record width in bytes (packed, little-endian).
constexpr size_t kLasRecordBytes = 67;

/// File header. World coordinates of a record are
/// `world = raw * scale + offset` per axis, exactly as in LAS.
struct LasHeader {
  uint64_t point_count = 0;
  double scale[3] = {0.01, 0.01, 0.01};
  double offset[3] = {0.0, 0.0, 0.0};
  double min_world[3] = {0.0, 0.0, 0.0};  ///< bbox in world coordinates
  double max_world[3] = {0.0, 0.0, 0.0};
  uint16_t record_length = kLasRecordBytes;
  uint8_t compressed = 0;  ///< 1 = LAZ-like compressed point payload

  /// 2-D footprint of the tile (the per-file pre-filter of the file-based
  /// baseline inspects exactly this).
  Box Footprint() const {
    return Box(min_world[0], min_world[1], max_world[0], max_world[1]);
  }
};

/// One point record: scaled integer coordinates + 23 properties, matching
/// the LAS point formats' attribute inventory.
struct LasPointRecord {
  int32_t x = 0;  ///< raw (scaled) coordinates
  int32_t y = 0;
  int32_t z = 0;
  uint16_t intensity = 0;
  uint8_t return_number = 1;
  uint8_t number_of_returns = 1;
  uint8_t scan_direction = 0;
  uint8_t edge_of_flight_line = 0;
  uint8_t classification = 0;
  uint8_t synthetic_flag = 0;
  uint8_t key_point_flag = 0;
  uint8_t withheld_flag = 0;
  int8_t scan_angle = 0;
  uint8_t user_data = 0;
  uint16_t point_source_id = 0;
  double gps_time = 0.0;
  uint16_t red = 0;
  uint16_t green = 0;
  uint16_t blue = 0;
  uint16_t nir = 0;
  uint8_t wave_descriptor = 0;
  uint64_t wave_offset = 0;
  uint32_t wave_packet_size = 0;
  float wave_return_location = 0.0f;
  float wave_x = 0.0f;
  float wave_y = 0.0f;
};

/// An in-memory tile: header + records.
struct LasTile {
  LasHeader header;
  std::vector<LasPointRecord> points;

  double WorldX(const LasPointRecord& p) const {
    return p.x * header.scale[0] + header.offset[0];
  }
  double WorldY(const LasPointRecord& p) const {
    return p.y * header.scale[1] + header.offset[1];
  }
  double WorldZ(const LasPointRecord& p) const {
    return p.z * header.scale[2] + header.offset[2];
  }

  /// Converts a world coordinate to the raw scaled representation
  /// (round-to-nearest, correct for negative coordinates too).
  int32_t RawX(double wx) const {
    return static_cast<int32_t>(
        std::llround((wx - header.offset[0]) / header.scale[0]));
  }
  int32_t RawY(double wy) const {
    return static_cast<int32_t>(
        std::llround((wy - header.offset[1]) / header.scale[1]));
  }
  int32_t RawZ(double wz) const {
    return static_cast<int32_t>(
        std::llround((wz - header.offset[2]) / header.scale[2]));
  }

  /// Recomputes point_count and the world bbox from the records.
  void RecomputeHeader();
};

/// Canonical column order of the flat point-cloud table: x, y, z (float64,
/// world coordinates) followed by the 23 LAS properties.
const std::vector<Field>& LasPointFields();

/// Schema built from LasPointFields().
Schema LasPointSchema();

/// Number of attributes (26: x, y, z + 23 properties).
constexpr size_t kLasAttributeCount = 26;

/// Serializes one record into exactly kLasRecordBytes at `dst`.
void SerializeRecord(const LasPointRecord& p, uint8_t* dst);

/// Deserializes one record from kLasRecordBytes at `src`.
void DeserializeRecord(const uint8_t* src, LasPointRecord* p);

/// Appends the tile's points to the columns of `table` (which must have
/// LasPointSchema). Coordinates are converted to world doubles — this is
/// the per-attribute conversion step of the paper's binary loader.
Status AppendTileToTable(const LasTile& tile, FlatTable* table);

/// Inverse of AppendTileToTable: reconstructs full point records from a
/// LAS-schema table (coordinates re-quantised through `header`'s
/// scale/offset). Used when handing flat-table data to the record-oriented
/// baselines.
Result<std::vector<LasPointRecord>> TableToRecords(const FlatTable& table,
                                                   const LasHeader& header);

}  // namespace geocol

#endif  // GEOCOL_LAS_LAS_FORMAT_H_
