#include "core/spatial_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <span>
#include <thread>

#include "cache/chunk_cache.h"
#include "columns/types.h"
#include "telemetry/metrics.h"
#include "util/timer.h"

namespace geocol {

namespace {

uint32_t EffectiveThreads(uint32_t requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<uint32_t>(hw);
}

// Bridges GridRefine's cell hook to cache tier (b). The key carries the
// geometry bits plus the exact grid frame (extent, cols, rows) and no
// table identity: any query refining the same geometry on an identical
// grid shares the classifications, whatever its candidate rows.
class CacheCellHook final : public GridCellHook {
 public:
  CacheCellHook(cache::QueryResultCache* cache, const Geometry& geometry,
                double buffer)
      : cache_(cache), geometry_(geometry), buffer_(buffer) {}

  std::shared_ptr<const std::vector<uint8_t>> Seed(const Box& extent,
                                                   uint32_t cols,
                                                   uint32_t rows) override {
    auto seed = cache_->LookupGridCells(Key(extent, cols, rows));
    seeded_ = seed != nullptr;
    return seed;
  }

  void Publish(const Box& extent, uint32_t cols, uint32_t rows,
               std::vector<uint8_t> cells) override {
    cache_->MergeGridCells(Key(extent, cols, rows), std::move(cells));
  }

  bool seeded() const { return seeded_; }

 private:
  std::string Key(const Box& extent, uint32_t cols, uint32_t rows) const {
    cache::KeyBuilder kb("grid");
    kb.AppendGeometry(geometry_);
    kb.AppendDouble(buffer_);
    kb.AppendDouble(extent.min_x);
    kb.AppendDouble(extent.min_y);
    kb.AppendDouble(extent.max_x);
    kb.AppendDouble(extent.max_y);
    kb.AppendU32(cols);
    kb.AppendU32(rows);
    return kb.Take();
  }

  cache::QueryResultCache* cache_;
  const Geometry& geometry_;
  double buffer_;
  bool seeded_ = false;
};

}  // namespace

Result<double> AggregateRows(const Column& column,
                             const std::vector<uint64_t>& rows, AggKind kind,
                             ThreadPool* pool) {
  if (kind == AggKind::kCount) return static_cast<double>(rows.size());
  double out = std::nan("");
  if (rows.empty()) return out;
  Status gather_status;
  DispatchDataType(column.type(), [&]<typename T>() {
    if (!column.paged()) {
      std::span<const T> values = column.Values<T>();
      out = AggregateValues<T>(rows, kind, pool,
                               [&](size_t i) { return values[rows[i]]; });
      return;
    }
    // Paged tier: gather the selected values once, re-pinning only when
    // the row walks off the current chunk (selections are ascending, so
    // this is one fault per touched chunk). The accumulator then runs
    // over positions exactly as in the resident branch — same chunking,
    // same merge order, bit-identical result.
    std::vector<T> gathered(rows.size());
    const size_t chunk_rows = column.chunk_rows();
    ColumnChunkPin pin;
    for (size_t i = 0; i < rows.size(); ++i) {
      const uint64_t r = rows[i];
      if (pin.keepalive == nullptr || r < pin.first_row ||
          r >= pin.first_row + pin.row_count) {
        auto pinned = column.PinChunk(r / chunk_rows);
        if (!pinned.ok()) {
          gather_status = pinned.status();
          return;
        }
        pin = std::move(*pinned);
      }
      gathered[i] = pin.values<T>()[r - pin.first_row];
    }
    out = AggregateValues<T>(rows, kind, pool,
                             [&](size_t i) { return gathered[i]; });
  });
  GEOCOL_RETURN_NOT_OK(gather_status);
  return out;
}

SpatialQueryEngine::SpatialQueryEngine(std::shared_ptr<FlatTable> table,
                                       EngineOptions options,
                                       std::string x_column,
                                       std::string y_column)
    : table_(std::move(table)),
      options_(options),
      x_name_(std::move(x_column)),
      y_name_(std::move(y_column)),
      imprints_(std::make_shared<ImprintManager>(options.imprints)) {
  uint32_t threads = EffectiveThreads(options_.num_threads);
  if (threads > 1) {
    // The calling thread participates in every parallel loop, so the pool
    // only needs threads-1 workers.
    owned_pool_ = std::make_unique<ThreadPool>(threads - 1);
    pool_ = owned_pool_.get();
  }
  Init();
}

SpatialQueryEngine::SpatialQueryEngine(std::shared_ptr<FlatTable> table,
                                       EngineOptions options,
                                       std::string x_column,
                                       std::string y_column,
                                       ThreadPool* borrowed_pool)
    : table_(std::move(table)),
      options_(options),
      x_name_(std::move(x_column)),
      y_name_(std::move(y_column)),
      imprints_(std::make_shared<ImprintManager>(options.imprints)),
      pool_(borrowed_pool != nullptr && borrowed_pool->num_threads() > 0
                ? borrowed_pool
                : nullptr) {
  Init();
}

SpatialQueryEngine::SpatialQueryEngine(
    std::shared_ptr<FlatTable> table, EngineOptions options,
    std::string x_column, std::string y_column, ThreadPool* borrowed_pool,
    std::shared_ptr<ImprintManager> shared_imprints)
    : table_(std::move(table)),
      options_(options),
      x_name_(std::move(x_column)),
      y_name_(std::move(y_column)),
      imprints_(std::move(shared_imprints)),
      owns_imprints_(false),
      pool_(borrowed_pool != nullptr && borrowed_pool->num_threads() > 0
                ? borrowed_pool
                : nullptr) {
  assert(imprints_ != nullptr);
  Init();
}

void SpatialQueryEngine::Init() {
  if (owns_imprints_) {
    if (!options_.imprints_dir.empty()) {
      imprints_->set_sidecar_dir(options_.imprints_dir);
    }
    if (pool_ != nullptr) imprints_->set_thread_pool(pool_);
  }
  cache_owner_ = options_.cache.instance;
  set_cache_budget(options_.cache.budget_bytes);
  if (options_.chunk_cache_budget_bytes > 0) {
    cache::ChunkCache::Global().GrowBudget(options_.chunk_cache_budget_bytes);
  }
}

void SpatialQueryEngine::set_cache_budget(uint64_t budget_bytes) {
  // No-op when already bound at this budget, so repeated per-query calls
  // (the SQL session applies its knob on every Execute) never touch
  // engine state.
  if (budget_bytes == options_.cache.budget_bytes &&
      (budget_bytes == 0) == (cache_ == nullptr)) {
    return;
  }
  options_.cache.budget_bytes = budget_bytes;
  if (budget_bytes == 0) {
    cache_ = nullptr;
    return;
  }
  cache_ = cache_owner_ != nullptr ? cache_owner_.get()
                                   : &cache::QueryResultCache::Global();
  cache_->GrowBudget(budget_bytes);
}

Result<std::string> SpatialQueryEngine::SelectionKey(
    const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic) const {
  cache::KeyBuilder kb("sel");
  kb.AppendU64(table_->table_id());
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr xcol, table_->GetColumn(x_name_));
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr ycol, table_->GetColumn(y_name_));
  kb.Append(x_name_);
  kb.AppendU64(xcol->epoch());
  kb.Append(y_name_);
  kb.AppendU64(ycol->epoch());
  kb.AppendGeometry(geometry);
  kb.AppendDouble(buffer);
  kb.AppendU64(thematic.size());
  for (const AttributeRange& attr : thematic) {
    GEOCOL_ASSIGN_OR_RETURN(ColumnPtr col, table_->GetColumn(attr.column));
    kb.Append(attr.column);
    kb.AppendU64(col->epoch());
    kb.AppendDouble(attr.lo);
    kb.AppendDouble(attr.hi);
  }
  // Result-shaping knobs. The SIMD level is deliberately absent — the
  // kernel layer guarantees bit-identical selections across levels — but
  // the thread count is present: parallel runs report `workers` in their
  // stats and merge aggregate partials in chunk order, so serial and
  // parallel engines must not share entries.
  kb.AppendU32(options_.use_imprints ? 1u : 0u);
  kb.AppendU32(num_effective_threads());
  kb.AppendU32(options_.imprints.max_bins);
  kb.AppendU32(options_.imprints.sample_size);
  kb.AppendU64(options_.imprints.seed);
  kb.AppendU32(options_.imprints.cacheline_bytes);
  kb.AppendU64(options_.refine.target_points_per_cell);
  kb.AppendU32(options_.refine.max_cells_per_axis);
  kb.AppendU32(options_.refine.use_grid ? 1u : 0u);
  return kb.Take();
}

Result<SelectionResult> SpatialQueryEngine::SelectInBox(const Box& box) {
  return Execute(Geometry(box), 0.0, {});
}

Result<SelectionResult> SpatialQueryEngine::SelectInGeometry(
    const Geometry& geometry) {
  return Execute(geometry, 0.0, {});
}

Result<SelectionResult> SpatialQueryEngine::SelectWithinDistance(
    const Geometry& geometry, double d) {
  if (d < 0) return Status::InvalidArgument("negative distance");
  return Execute(geometry, d, {});
}

Result<SelectionResult> SpatialQueryEngine::Select(
    const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic) {
  return Execute(geometry, buffer, thematic);
}

Result<double> SpatialQueryEngine::Aggregate(
    const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic, const std::string& column,
    AggKind kind) {
  // Cache tier (c): the aggregate keys on the full selection key plus the
  // aggregated column's (name, epoch) and the aggregate kind. COUNT skips
  // the tier — it falls out of a tier (a) hit for free.
  std::string agg_key;
  if (cache_ != nullptr && kind != AggKind::kCount) {
    GEOCOL_ASSIGN_OR_RETURN(ColumnPtr agg_col, table_->GetColumn(column));
    GEOCOL_ASSIGN_OR_RETURN(std::string sel_key,
                            SelectionKey(geometry, buffer, thematic));
    cache::KeyBuilder kb("agg");
    kb.Append(sel_key);
    kb.Append(column);
    kb.AppendU64(agg_col->epoch());
    kb.AppendU32(static_cast<uint32_t>(kind));
    agg_key = kb.Take();
    double cached;
    if (cache_->LookupAggregate(agg_key, &cached)) return cached;
  }
  GEOCOL_ASSIGN_OR_RETURN(SelectionResult sel,
                          Execute(geometry, buffer, thematic));
  if (kind == AggKind::kCount) {
    return static_cast<double>(sel.row_ids.size());
  }
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr col, table_->GetColumn(column));
  GEOCOL_ASSIGN_OR_RETURN(double value,
                          AggregateRows(*col, sel.row_ids, kind, pool_));
  if (cache_ != nullptr) cache_->InsertAggregate(agg_key, value);
  return value;
}

Status SpatialQueryEngine::FilterColumn(const ColumnPtr& column, double lo,
                                        double hi, BitVector* rows,
                                        ImprintScanStats* stats,
                                        QueryProfile* profile,
                                        const std::string& op_name) {
  Timer t;
  if (options_.use_imprints) {
    GEOCOL_ASSIGN_OR_RETURN(std::shared_ptr<const ImprintsIndex> ix,
                            imprints_->GetOrBuild(column));
    double build_ms = t.ElapsedMillis();
    Timer t2;
    GEOCOL_RETURN_NOT_OK(
        ImprintRangeSelect(*column, *ix, lo, hi, rows, stats, pool_));
    char detail[128];
    std::snprintf(detail, sizeof(detail),
                  "lines %llu/%llu full=%llu (build %.2f ms)",
                  static_cast<unsigned long long>(stats->lines_candidate),
                  static_cast<unsigned long long>(stats->lines_total),
                  static_cast<unsigned long long>(stats->lines_full), build_ms);
    int32_t span =
        profile->AddParallel(op_name, t2.ElapsedNanos(), column->size(),
                             stats->rows_selected, stats->workers, detail);
    // Span attributes mirror the registry counters one-to-one so EXPLAIN
    // ANALYZE output can be cross-checked against `geocol metrics`.
    profile->AddAttr(span, "cachelines_probed", stats->lines_candidate);
    profile->AddAttr(span, "cachelines_total", stats->lines_total);
    profile->AddAttr(span, "cachelines_full", stats->lines_full);
    profile->AddAttr(span, "values_checked", stats->values_checked);
    profile->AddAttr(span, "rows_selected", stats->rows_selected);
    profile->AddAttr(span, "false_positive_rate", stats->FalsePositiveRate());
    return Status::OK();
  }
  GEOCOL_RETURN_NOT_OK(FullScanRangeSelect(*column, lo, hi, rows));
  ImprintScanStats local;
  local.lines_total = 0;
  local.values_checked = column->size();
  local.rows_selected = rows->Count();
  *stats = local;
  profile->Add(op_name + ".scan", t.ElapsedNanos(), column->size(),
               local.rows_selected);
  return Status::OK();
}

Result<SelectionResult> SpatialQueryEngine::Execute(
    const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic) {
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr xcol, table_->GetColumn(x_name_));
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr ycol, table_->GetColumn(y_name_));
  if (xcol->size() != ycol->size()) {
    return Status::Corruption("x/y column length mismatch");
  }
  SelectionResult result;
  if (xcol->empty()) return result;

  Box env = geometry.Envelope();
  if (buffer > 0) env = env.Expanded(buffer);
  if (env.empty()) return result;

  GEOCOL_METRIC_COUNTER(c_queries, "geocol_queries_total");
  GEOCOL_METRIC_HISTOGRAM(h_query, "geocol_query_nanos");
  c_queries.Increment();
  Timer query_timer;

  // ---- Cache tier (a): an exact repeat (same table epochs, geometry
  // bits, ranges and knobs) replays the stored row ids and stats. The
  // profile records the replay as a single cache.hit span.
  std::string cache_key;
  if (cache_ != nullptr) {
    GEOCOL_ASSIGN_OR_RETURN(cache_key,
                            SelectionKey(geometry, buffer, thematic));
    if (auto hit = cache_->LookupSelection(cache_key)) {
      result.row_ids = hit->row_ids;
      result.filter_x = hit->filter_x;
      result.filter_y = hit->filter_y;
      result.refine = hit->refine;
      int32_t span =
          result.profile.Add("cache.hit", query_timer.ElapsedNanos(),
                             xcol->size(), result.row_ids.size());
      result.profile.AddAttr(span, "cache_hit", "selection");
      h_query.Observe(query_timer.ElapsedNanos());
      return result;
    }
  }
  auto store_selection = [&]() {
    if (cache_ == nullptr) return;
    // Pre-check admission so a doorkeeper-deferred (first-sighting) large
    // result skips the row-id copy entirely, not just the insert.
    if (!cache_->ShouldAdmit(cache::Tier::kSelection, cache_key,
                             result.row_ids.size() * sizeof(uint64_t))) {
      return;
    }
    auto value = std::make_shared<cache::CachedSelection>();
    value->row_ids = result.row_ids;
    value->filter_x = result.filter_x;
    value->filter_y = result.filter_y;
    value->refine = result.refine;
    cache_->InsertSelection(cache_key, std::move(value));
  };

  // ---- Step 1: filter. Imprint range selections on x and y, intersected,
  // then conjunctive thematic ranges, each narrowing the selection. With a
  // pool, all filter branches execute concurrently into branch-local state
  // (selection, stats, profile); results merge in the serial order, so the
  // selection, stats and operator order are identical to serial execution.
  BitVector rows;
  result.profile.OpenSpan("filter");
  if (pool_ != nullptr) {
    struct FilterBranch {
      ColumnPtr column;
      double lo, hi;
      std::string op;
      BitVector rows;
      ImprintScanStats stats;
      QueryProfile profile;
      Status status;
    };
    std::vector<FilterBranch> branches;
    branches.reserve(2 + thematic.size());
    branches.push_back(
        {xcol, env.min_x, env.max_x, "filter.imprints.x", {}, {}, {}, {}});
    branches.push_back(
        {ycol, env.min_y, env.max_y, "filter.imprints.y", {}, {}, {}, {}});
    for (const AttributeRange& attr : thematic) {
      GEOCOL_ASSIGN_OR_RETURN(ColumnPtr col, table_->GetColumn(attr.column));
      if (col->size() != xcol->size()) {
        return Status::Corruption("thematic column length mismatch: " +
                                  attr.column);
      }
      branches.push_back({col, attr.lo, attr.hi,
                          "filter.imprints." + attr.column, {}, {}, {}, {}});
    }
    pool_->ParallelFor(branches.size(), [&](size_t i) {
      FilterBranch& b = branches[i];
      b.status = FilterColumn(b.column, b.lo, b.hi, &b.rows, &b.stats,
                              &b.profile, b.op);
    });
    for (const FilterBranch& b : branches) {
      GEOCOL_RETURN_NOT_OK(b.status);
    }
    result.filter_x = branches[0].stats;
    result.filter_y = branches[1].stats;
    result.profile.Append(branches[0].profile);
    result.profile.Append(branches[1].profile);
    rows = std::move(branches[0].rows);
    {
      Timer t;
      rows.And(branches[1].rows);
      result.profile.Add(
          "filter.intersect", t.ElapsedNanos(),
          result.filter_x.rows_selected + result.filter_y.rows_selected,
          rows.Count());
    }
    for (size_t i = 2; i < branches.size(); ++i) {
      const FilterBranch& b = branches[i];
      result.profile.Append(b.profile);
      Timer t;
      rows.And(b.rows);
      result.profile.Add("filter.intersect." + thematic[i - 2].column,
                         t.ElapsedNanos(), b.stats.rows_selected, rows.Count());
    }
  } else {
    GEOCOL_RETURN_NOT_OK(FilterColumn(xcol, env.min_x, env.max_x, &rows,
                                      &result.filter_x, &result.profile,
                                      "filter.imprints.x"));
    BitVector rows_y;
    GEOCOL_RETURN_NOT_OK(FilterColumn(ycol, env.min_y, env.max_y, &rows_y,
                                      &result.filter_y, &result.profile,
                                      "filter.imprints.y"));
    {
      Timer t;
      rows.And(rows_y);
      result.profile.Add(
          "filter.intersect", t.ElapsedNanos(),
          result.filter_x.rows_selected + result.filter_y.rows_selected,
          rows.Count());
    }
    for (const AttributeRange& attr : thematic) {
      GEOCOL_ASSIGN_OR_RETURN(ColumnPtr col, table_->GetColumn(attr.column));
      if (col->size() != xcol->size()) {
        return Status::Corruption("thematic column length mismatch: " +
                                  attr.column);
      }
      BitVector sel;
      ImprintScanStats st;
      GEOCOL_RETURN_NOT_OK(FilterColumn(col, attr.lo, attr.hi, &sel, &st,
                                        &result.profile,
                                        "filter.imprints." + attr.column));
      Timer t;
      rows.And(sel);
      result.profile.Add("filter.intersect." + attr.column, t.ElapsedNanos(),
                         st.rows_selected, rows.Count());
    }
  }

  // ---- Step 2: refinement. A box query with no buffer is already exact
  // after the envelope filter; everything else goes through the grid. The
  // filter span must close before the refine timer starts so the two
  // spans never overlap in trace exports.
  uint64_t candidates = rows.Count();
  result.profile.CloseSpan(xcol->size(), candidates);
  Timer t;
  if (geometry.is_box() && buffer == 0.0) {
    result.row_ids.reserve(candidates);
    rows.CollectSetBits(&result.row_ids);
    result.refine.candidates = candidates;
    result.refine.accepted = candidates;
    result.profile.Add("refine.none(box)", t.ElapsedNanos(), candidates,
                       candidates);
    store_selection();
    h_query.Observe(query_timer.ElapsedNanos());
    return result;
  }
  // Tier (b): seed the refinement grid with classifications from earlier
  // queries over the same geometry, and publish what this query adds.
  CacheCellHook cell_hook(cache_, geometry, buffer);
  GEOCOL_RETURN_NOT_OK(
      GridRefine(*xcol, *ycol, rows, geometry, buffer, options_.refine,
                 &result.row_ids, &result.refine, pool_,
                 cache_ != nullptr ? &cell_hook : nullptr));
  char detail[128];
  std::snprintf(detail, sizeof(detail),
                "grid=%ux%u cells in/bnd/out=%llu/%llu/%llu exact=%llu",
                result.refine.grid_cols, result.refine.grid_rows,
                static_cast<unsigned long long>(result.refine.cells_inside),
                static_cast<unsigned long long>(result.refine.cells_boundary),
                static_cast<unsigned long long>(result.refine.cells_outside),
                static_cast<unsigned long long>(result.refine.exact_tests));
  int32_t refine_span = result.profile.AddParallel(
      options_.refine.use_grid ? "refine.grid" : "refine.exhaustive",
      t.ElapsedNanos(), candidates, result.row_ids.size(),
      result.refine.workers, detail);
  if (cell_hook.seeded()) {
    result.profile.AddAttr(refine_span, "cache_hit", "grid");
  }
  store_selection();
  h_query.Observe(query_timer.ElapsedNanos());
  return result;
}

}  // namespace geocol
