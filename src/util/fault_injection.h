// Failpoint registry for the durability layer. All file I/O in
// util/binary_io routes through the process-global FaultInjector, which can
// make the k-th operation fail the way real storage fails: a crash (every
// operation from k on errors out, leaving whatever bytes already reached
// disk), a torn write (a prefix of the payload lands before the failure), a
// short read, or a silent bit flip in the returned buffer.
//
// Crash-sweep tests use it as:
//   auto& fi = FaultInjector::Global();
//   fi.StartCounting();
//   RunWorkload();                        // clean run
//   uint64_t total = fi.StopCounting();   // fallible ops in the workload
//   for (uint64_t k = 1; k <= total; ++k) {
//     ResetState();
//     fi.ArmCrashAtOp(k);
//     RunWorkload();                      // dies at op k
//     fi.Disarm();
//     CheckOldOrNewStateInvariant();
//   }
//
// When disarmed the hooks cost one relaxed atomic load; production builds
// carry the hooks but never take the slow path.
#ifndef GEOCOL_UTIL_FAULT_INJECTION_H_
#define GEOCOL_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace geocol {

/// Kinds of fallible file operations the injector counts and can fail.
enum class FileOp {
  kOpen,
  kRead,
  kWrite,
  kFlush,
  kSync,    ///< fsync of a file or its parent directory
  kRename,
  kUnlink,
  kClose,
};

const char* FileOpName(FileOp op);

class FaultInjector {
 public:
  /// The process-wide injector consulted by util/binary_io.
  static FaultInjector& Global();

  // ---- arming (tests) ---------------------------------------------------

  /// Counts fallible operations without failing any; StopCounting returns
  /// the number seen since StartCounting.
  void StartCounting();
  uint64_t StopCounting();

  /// Operation `k` (1-based since arming) and every later operation fail
  /// with EIO — the process "crashed" at op k. A failing write persists
  /// nothing.
  void ArmCrashAtOp(uint64_t k);

  /// Like ArmCrashAtOp, but if op `k` is a write, the first `keep_bytes`
  /// of its payload reach the file before the failure (a torn write).
  void ArmTornWrite(uint64_t k, size_t keep_bytes);

  /// The k-th operation, if a read, returns only `keep_bytes` bytes (a
  /// short read). Operations after k behave normally.
  void ArmShortRead(uint64_t k, size_t keep_bytes);

  /// Flips bit `bit` of byte `byte_offset` in the buffer returned by the
  /// k-th operation, if a read — silent media corruption. Operations after
  /// k behave normally.
  void ArmBitFlip(uint64_t k, size_t byte_offset, uint8_t bit);

  /// Operations k .. k+count-1 (1-based since arming) fail with EINTR — a
  /// transient device hiccup that succeeds when retried. The bounded
  /// retry in util/binary_io absorbs up to its attempt budget minus one
  /// consecutive failures per operation; a larger `count` exhausts the
  /// budget and the error propagates like a hard failure.
  void ArmTransientErrors(uint64_t k, uint32_t count);

  /// Turns everything off (also stops counting).
  void Disarm();

  /// Operations seen since the last StartCounting/Arm* call.
  uint64_t ops_seen() const { return ops_seen_.load(std::memory_order_relaxed); }

  // ---- hooks (util/binary_io) -------------------------------------------

  /// Called before a non-payload operation. Returns 0 to proceed or the
  /// errno the operation must fail with.
  int OnOp(FileOp op);

  /// Called before writing `n` payload bytes. May lower `*io_bytes` (torn
  /// write); the caller writes that prefix, then fails with the returned
  /// errno if non-zero.
  int OnWrite(size_t n, size_t* io_bytes);

  /// Called before reading `n` payload bytes. May lower `*io_bytes` (short
  /// read). Returns 0 to proceed or an errno.
  int OnRead(size_t n, size_t* io_bytes);

  /// Called after a read with the bytes actually obtained; applies an armed
  /// bit flip belonging to that read.
  void OnReadData(void* data, size_t n);

 private:
  enum class Mode {
    kOff,
    kCounting,
    kCrash,
    kTornWrite,
    kShortRead,
    kBitFlip,
    kTransient,
  };

  FaultInjector() = default;

  void Arm(Mode mode, uint64_t k, size_t a, size_t b);
  /// Returns the 1-based index of this op, or 0 when the injector is off.
  uint64_t NextOp();

  std::atomic<bool> active_{false};
  std::atomic<uint64_t> ops_seen_{0};
  mutable std::mutex mu_;
  Mode mode_ = Mode::kOff;
  uint64_t k_ = 0;
  size_t param_a_ = 0;  ///< keep_bytes / byte_offset
  size_t param_b_ = 0;  ///< bit index (kBitFlip)
  bool flip_pending_ = false;  ///< armed read happened; flip on OnReadData
};

}  // namespace geocol

#endif  // GEOCOL_UTIL_FAULT_INJECTION_H_
