#include "gis/layer.h"

#include <algorithm>

#include "geom/predicates.h"

namespace geocol {

std::shared_ptr<VectorLayer> VectorLayer::FromFeatures(
    std::string name, std::vector<VectorFeature> features) {
  auto layer = std::make_shared<VectorLayer>(std::move(name));
  layer->features_ = std::move(features);
  return layer;
}

Box VectorLayer::Envelope() const {
  Box b;
  for (const VectorFeature& f : features_) b.Extend(f.geometry.Envelope());
  return b;
}

std::vector<uint64_t> VectorLayer::SelectByClass(uint32_t feature_class) const {
  std::vector<uint64_t> out;
  for (size_t i = 0; i < features_.size(); ++i) {
    if (features_[i].feature_class == feature_class) out.push_back(i);
  }
  return out;
}

void VectorLayer::EnsureIndex() {
  if (index_built_) return;
  std::vector<RTree::Entry> entries;
  entries.reserve(features_.size());
  for (size_t i = 0; i < features_.size(); ++i) {
    entries.push_back({features_[i].geometry.Envelope(), i});
  }
  index_ = RTree::BulkLoad(std::move(entries));
  index_built_ = true;
}

std::vector<uint64_t> VectorLayer::QueryEnvelopes(const Box& query) {
  EnsureIndex();
  std::vector<uint64_t> out;
  index_.QueryBox(query, &out);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> VectorLayer::QueryIntersecting(const Geometry& g) {
  std::vector<uint64_t> candidates = QueryEnvelopes(g.Envelope());
  std::vector<uint64_t> out;
  for (uint64_t i : candidates) {
    if (GeometriesIntersect(features_[i].geometry, g)) out.push_back(i);
  }
  return out;
}

std::vector<uint64_t> VectorLayer::QueryWithinDistance(const Geometry& g,
                                                       double distance) {
  std::vector<uint64_t> candidates =
      QueryEnvelopes(g.Envelope().Expanded(distance));
  std::vector<uint64_t> out;
  for (uint64_t i : candidates) {
    if (GeometryDistance(features_[i].geometry, g) <= distance) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace geocol
