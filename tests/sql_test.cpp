// SQL front-end tests: lexer, parser, planner validation, and execution
// against hand-built engine calls.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>

#include "gis/spatial_join.h"
#include "pointcloud/generator.h"
#include "pointcloud/vector_gen.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/session.h"

namespace geocol {
namespace {

using sql::AggFunc;
using sql::Parse;
using sql::ResultSet;
using sql::SelectStmt;
using sql::Session;
using sql::TokKind;
using sql::Tokenize;
using sql::Value;

// ---------------- lexer ----------------

TEST(SqlLexerTest, BasicTokens) {
  auto toks = Tokenize("SELECT x, y FROM ahn2 WHERE z >= 1.5;");
  ASSERT_TRUE(toks.ok());
  ASSERT_GE(toks->size(), 11u);
  EXPECT_EQ((*toks)[0].kind, TokKind::kIdent);
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[1].text, "X");
  EXPECT_EQ((*toks)[1].raw, "x");
  EXPECT_EQ((*toks)[2].kind, TokKind::kSymbol);
  EXPECT_EQ((*toks)[2].text, ",");
  EXPECT_EQ(toks->back().kind, TokKind::kEnd);
}

TEST(SqlLexerTest, NumbersSignedAfterOperator) {
  auto toks = Tokenize("x < -5.5");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 4u);  // x, <, -5.5, end
  EXPECT_EQ((*toks)[2].kind, TokKind::kNumber);
  EXPECT_EQ((*toks)[2].number, -5.5);
}

TEST(SqlLexerTest, StringsWithEscapedQuotes) {
  auto toks = Tokenize("'it''s a polygon'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokKind::kString);
  EXPECT_EQ((*toks)[0].text, "it's a polygon");
}

TEST(SqlLexerTest, TwoCharOperators) {
  auto toks = Tokenize("a <= 1 b >= 2 c <> 3 d != 4");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[1].text, "<=");
  EXPECT_EQ((*toks)[4].text, ">=");
  EXPECT_EQ((*toks)[7].text, "<>");
  EXPECT_EQ((*toks)[10].text, "<>");  // != normalised
}

TEST(SqlLexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("x @ 5").ok());
}

// ---------------- parser ----------------

TEST(SqlParserTest, SimpleSelect) {
  auto stmt = Parse("SELECT x, y, z FROM ahn2");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->items.size(), 3u);
  EXPECT_EQ(stmt->items[0].column, "x");
  EXPECT_EQ(stmt->table, "ahn2");
  EXPECT_TRUE(stmt->ranges.empty());
  EXPECT_EQ(stmt->limit, -1);
}

TEST(SqlParserTest, StarAndLimit) {
  auto stmt = Parse("SELECT * FROM Ahn2 LIMIT 10;");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->items[0].star);
  EXPECT_EQ(stmt->table, "ahn2");  // lower-cased
  EXPECT_EQ(stmt->limit, 10);
}

TEST(SqlParserTest, Aggregates) {
  auto stmt = Parse("SELECT COUNT(*), AVG(z), MIN(z), MAX(z) FROM ahn2");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->IsAggregate());
  EXPECT_EQ(stmt->items[0].agg, AggFunc::kCount);
  EXPECT_TRUE(stmt->items[0].star);
  EXPECT_EQ(stmt->items[1].agg, AggFunc::kAvg);
  EXPECT_EQ(stmt->items[1].column, "z");
}

TEST(SqlParserTest, ComparisonAndBetween) {
  auto stmt = Parse(
      "SELECT x FROM t WHERE z > 1 AND z <= 5 AND classification BETWEEN 2 "
      "AND 6 AND intensity = 100");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->ranges.size(), 4u);
  EXPECT_EQ(stmt->ranges[0].lo, 1);
  EXPECT_EQ(stmt->ranges[1].hi, 5);
  EXPECT_EQ(stmt->ranges[2].lo, 2);
  EXPECT_EQ(stmt->ranges[2].hi, 6);
  EXPECT_TRUE(stmt->ranges[3].equality);
}

TEST(SqlParserTest, SpatialPredicates) {
  auto stmt = Parse(
      "SELECT x FROM t WHERE ST_Within(pt, "
      "ST_GeomFromText('POLYGON((0 0, 1 0, 1 1, 0 1, 0 0))'))");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->spatial.size(), 1u);
  EXPECT_EQ(stmt->spatial[0].kind, sql::SpatialPred::Kind::kWithin);
  EXPECT_TRUE(stmt->spatial[0].geometry.is_polygon());

  auto dw = Parse("SELECT x FROM t WHERE ST_DWithin(pt, 'POINT(5 5)', 2.5)");
  ASSERT_TRUE(dw.ok());
  EXPECT_EQ(dw->spatial[0].kind, sql::SpatialPred::Kind::kDWithin);
  EXPECT_EQ(dw->spatial[0].distance, 2.5);

  auto ct = Parse("SELECT x FROM t WHERE ST_Contains('BOX(0 0, 2 2)', pt)");
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(ct->spatial[0].kind, sql::SpatialPred::Kind::kWithin);
}

TEST(SqlParserTest, NearPredicate) {
  auto stmt = Parse("SELECT AVG(z) FROM ahn2 WHERE NEAR(urban_atlas, 12210, 50)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->spatial.size(), 1u);
  EXPECT_EQ(stmt->spatial[0].kind, sql::SpatialPred::Kind::kNearLayer);
  EXPECT_EQ(stmt->spatial[0].layer, "urban_atlas");
  EXPECT_EQ(stmt->spatial[0].feature_class, 12210u);
  EXPECT_EQ(stmt->spatial[0].distance, 50);
}

TEST(SqlParserTest, Explain) {
  auto stmt = Parse("EXPLAIN SELECT x FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->explain);
}

TEST(SqlParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT x t").ok());
  EXPECT_FALSE(Parse("SELECT x FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT x FROM t WHERE z >").ok());
  EXPECT_FALSE(Parse("SELECT x FROM t WHERE z BETWEEN 5 AND 2").ok());
  EXPECT_FALSE(Parse("SELECT x FROM t WHERE z <> 5").ok());  // unsupported
  EXPECT_FALSE(Parse("SELECT x FROM t LIMIT -1").ok());
  EXPECT_FALSE(Parse("SELECT x FROM t garbage").ok());
  EXPECT_FALSE(Parse("SELECT AVG(*) FROM t").ok());
  EXPECT_FALSE(
      Parse("SELECT x FROM t WHERE ST_DWithin(pt, 'POINT(1 1)', -5)").ok());
  EXPECT_FALSE(Parse("SELECT x FROM t WHERE ST_Within(pt, 'NOT WKT')").ok());
}

TEST(SqlParserTest, ToStringRoundTripsThroughParser) {
  auto stmt = Parse(
      "SELECT COUNT(*) FROM ahn2 WHERE x BETWEEN 1 AND 2 AND "
      "ST_DWithin(pt, 'POINT(5 5)', 3) LIMIT 7");
  ASSERT_TRUE(stmt.ok());
  auto again = Parse(stmt->ToString());
  ASSERT_TRUE(again.ok()) << stmt->ToString();
  EXPECT_EQ(again->ToString(), stmt->ToString());
}

// ---------------- planner + executor via Session ----------------

class SqlSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AhnGeneratorOptions opts;
    opts.extent = Box(85000, 444000, 85200, 444200);
    AhnGenerator gen(opts);
    auto table = gen.GenerateTable(20000);
    ASSERT_TRUE(table.ok());
    table_ = *table;
    ASSERT_TRUE(catalog_.AddPointCloud("ahn2", table_).ok());

    TerrainModel terrain(opts.seed);
    OsmGenerator og(1, opts.extent, terrain);
    auto roads = og.GenerateRoads(20);
    ASSERT_TRUE(
        catalog_.AddLayer(VectorLayer::FromFeatures("osm_roads", roads)).ok());
    UrbanAtlasGenerator ug(2, opts.extent, terrain);
    auto land = ug.GenerateLandUse(6);
    auto corridors = ug.GenerateTransitCorridors(roads, 20.0);
    for (auto& c : corridors) land.push_back(c);
    ASSERT_TRUE(
        catalog_.AddLayer(VectorLayer::FromFeatures("urban_atlas", land)).ok());
    session_ = std::make_unique<Session>(&catalog_);
  }

  std::shared_ptr<FlatTable> table_;
  Catalog catalog_;
  std::unique_ptr<Session> session_;
};

TEST_F(SqlSessionTest, CountStarWholeTable) {
  auto rs = session_->Execute("SELECT COUNT(*) FROM ahn2");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].number, static_cast<double>(table_->num_rows()));
}

TEST_F(SqlSessionTest, BoxSelectionMatchesEngine) {
  auto rs = session_->Execute(
      "SELECT x, y, z FROM ahn2 WHERE ST_Within(pt, "
      "ST_GeomFromText('BOX(85050 444050, 85100 444100)'))");
  ASSERT_TRUE(rs.ok());
  auto engine = catalog_.GetEngine("ahn2");
  ASSERT_TRUE(engine.ok());
  auto sel = (*engine)->SelectInBox(Box(85050, 444050, 85100, 444100));
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(rs->rows.size(), sel->row_ids.size());
  ColumnPtr x = table_->column("x");
  for (size_t i = 0; i < rs->rows.size(); ++i) {
    EXPECT_EQ(rs->rows[i][0].number, x->GetDouble(sel->row_ids[i]));
  }
}

TEST_F(SqlSessionTest, RangePredicatesViaImprints) {
  auto rs = session_->Execute(
      "SELECT COUNT(*) FROM ahn2 WHERE classification BETWEEN 3 AND 5");
  ASSERT_TRUE(rs.ok());
  ColumnPtr cls = table_->column("classification");
  uint64_t expected = 0;
  for (uint64_t r = 0; r < cls->size(); ++r) {
    int64_t c = cls->GetInt64(r);
    expected += c >= 3 && c <= 5;
  }
  EXPECT_EQ(rs->rows[0][0].number, static_cast<double>(expected));
}

// Contract pin: an aggregate over an empty selection comes back from the
// engine as NaN (AggregateRows contract) and the SQL layer renders it as
// NULL — never as a NaN number value. COUNT(*) stays a plain 0. The result
// cache round-trips the NaN bit pattern, so this mapping must hold on both
// cold and cached executions.
TEST_F(SqlSessionTest, EmptySelectionAggregatesMapToNull) {
  auto rs = session_->Execute(
      "SELECT AVG(z), SUM(z), MIN(z), MAX(z), COUNT(*) FROM ahn2 "
      "WHERE ST_Within(pt, 'BOX(0 0, 1 1)')");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  ASSERT_EQ(rs->rows[0].size(), 5u);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(rs->rows[0][c].kind, Value::Kind::kNull) << "column " << c;
  }
  EXPECT_EQ(rs->rows[0][4].kind, Value::Kind::kNumber);
  EXPECT_EQ(rs->rows[0][4].number, 0.0);
}

TEST_F(SqlSessionTest, AvgElevationNearFastTransitRoad) {
  auto rs = session_->Execute(
      "SELECT AVG(z), COUNT(*) FROM ahn2 WHERE NEAR(urban_atlas, 12210, 25)");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  double count = rs->rows[0][1].number;
  if (count > 0) {
    EXPECT_FALSE(std::isnan(rs->rows[0][0].number));
  }
  // Must agree with the direct join API.
  auto engine = catalog_.GetEngine("ahn2");
  auto layer = catalog_.GetLayer("urban_atlas");
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(layer.ok());
  auto direct = AggregateNearLayerClass(*engine, layer->get(), 12210, 25.0,
                                        "z", AggKind::kCount);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(count, *direct);
}

TEST_F(SqlSessionTest, LimitCapsRows) {
  auto rs = session_->Execute("SELECT x FROM ahn2 LIMIT 5");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 5u);
}

TEST_F(SqlSessionTest, StarProjectionHasAllColumns) {
  auto rs = session_->Execute("SELECT * FROM ahn2 LIMIT 1");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->columns.size(), kLasAttributeCount);
}

TEST_F(SqlSessionTest, LayerQueryIntersectingRegion) {
  auto rs = session_->Execute(
      "SELECT id, class, name FROM osm_roads WHERE "
      "ST_Intersects(geom, 'BOX(85000 444000, 85200 444200)')");
  ASSERT_TRUE(rs.ok());
  auto layer = catalog_.GetLayer("osm_roads");
  ASSERT_TRUE(layer.ok());
  // All roads are inside the extent, so every feature intersects.
  EXPECT_EQ(rs->rows.size(), (*layer)->size());
  EXPECT_EQ(rs->columns, (std::vector<std::string>{"id", "class", "name"}));
  EXPECT_EQ(rs->rows[0][2].kind, sql::Value::Kind::kText);
}

TEST_F(SqlSessionTest, LayerClassFilter) {
  auto rs = session_->Execute(
      "SELECT COUNT(*) FROM urban_atlas WHERE class = 12210");
  ASSERT_TRUE(rs.ok());
  auto layer = catalog_.GetLayer("urban_atlas");
  ASSERT_TRUE(layer.ok());
  EXPECT_EQ(rs->rows[0][0].number,
            static_cast<double>((*layer)->SelectByClass(12210).size()));
}

TEST_F(SqlSessionTest, LayerGeomProjectionIsWkt) {
  auto rs = session_->Execute("SELECT geom FROM urban_atlas LIMIT 1");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].text.rfind("POLYGON", 0), 0u);
}

TEST_F(SqlSessionTest, ExplainReturnsPlan) {
  auto rs = session_->Execute(
      "EXPLAIN SELECT AVG(z) FROM ahn2 WHERE NEAR(urban_atlas, 12210, 25)");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->columns, std::vector<std::string>{"plan"});
  EXPECT_GT(rs->rows.size(), 2u);
  bool mentions_imprints = false;
  for (const auto& row : rs->rows) {
    mentions_imprints |= row[0].text.find("imprint") != std::string::npos ||
                         row[0].text.find("NEAR") != std::string::npos;
  }
  EXPECT_TRUE(mentions_imprints);
  EXPECT_FALSE(session_->last_plan().empty());
}

TEST_F(SqlSessionTest, ProfileExposedAfterExecution) {
  auto rs = session_->Execute(
      "SELECT COUNT(*) FROM ahn2 WHERE ST_Within(pt, 'BOX(85020 444020, "
      "85080 444080)')");
  ASSERT_TRUE(rs.ok());
  EXPECT_FALSE(session_->last_profile().empty());
  EXPECT_FALSE(session_->last_profile().ToString().empty());
}

TEST_F(SqlSessionTest, PlannerErrors) {
  EXPECT_EQ(session_->Execute("SELECT x FROM nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session_->Execute("SELECT bogus FROM ahn2").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      session_->Execute("SELECT x, COUNT(*) FROM ahn2").status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(session_->Execute("SELECT x FROM ahn2 WHERE bogus > 1")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session_->Execute(
                        "SELECT COUNT(*) FROM ahn2 WHERE NEAR(nolayer, 1, 5)")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session_->Execute(
                        "SELECT id FROM osm_roads WHERE NEAR(urban_atlas, 1, 5)")
                .status()
                .code(),
            StatusCode::kUnsupported);
  // Two geometry predicates unsupported.
  EXPECT_EQ(session_
                ->Execute("SELECT x FROM ahn2 WHERE ST_Within(pt, 'BOX(0 0, 1 "
                          "1)') AND ST_Within(pt, 'BOX(2 2, 3 3)')")
                .status()
                .code(),
            StatusCode::kUnsupported);
}

TEST_F(SqlSessionTest, MergedRangesIntersect) {
  auto rs = session_->Execute(
      "SELECT COUNT(*) FROM ahn2 WHERE z >= 0 AND z <= 10 AND z >= 5");
  ASSERT_TRUE(rs.ok());
  ColumnPtr z = table_->column("z");
  uint64_t expected = 0;
  for (uint64_t r = 0; r < z->size(); ++r) {
    double v = z->GetDouble(r);
    expected += v >= 5 && v <= 10;
  }
  EXPECT_EQ(rs->rows[0][0].number, static_cast<double>(expected));
}

TEST_F(SqlSessionTest, OrderByAscendingAndDescending) {
  auto asc = session_->Execute(
      "SELECT z FROM ahn2 WHERE ST_Within(pt, 'BOX(85020 444020, 85080 "
      "444080)') ORDER BY z LIMIT 20");
  ASSERT_TRUE(asc.ok());
  ASSERT_GE(asc->rows.size(), 2u);
  for (size_t i = 1; i < asc->rows.size(); ++i) {
    EXPECT_LE(asc->rows[i - 1][0].number, asc->rows[i][0].number);
  }
  auto desc = session_->Execute(
      "SELECT z FROM ahn2 WHERE ST_Within(pt, 'BOX(85020 444020, 85080 "
      "444080)') ORDER BY z DESC LIMIT 20");
  ASSERT_TRUE(desc.ok());
  for (size_t i = 1; i < desc->rows.size(); ++i) {
    EXPECT_GE(desc->rows[i - 1][0].number, desc->rows[i][0].number);
  }
  // The descending head is the global maximum within the region.
  auto mx = session_->Execute(
      "SELECT MAX(z) FROM ahn2 WHERE ST_Within(pt, 'BOX(85020 444020, 85080 "
      "444080)')");
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ(desc->rows[0][0].number, mx->rows[0][0].number);
}

TEST_F(SqlSessionTest, OrderByOnLayer) {
  auto rs = session_->Execute("SELECT id FROM osm_roads ORDER BY id DESC");
  ASSERT_TRUE(rs.ok());
  for (size_t i = 1; i < rs->rows.size(); ++i) {
    EXPECT_GE(rs->rows[i - 1][0].number, rs->rows[i][0].number);
  }
}

TEST_F(SqlSessionTest, OrderByErrors) {
  EXPECT_FALSE(
      session_->Execute("SELECT COUNT(*) FROM ahn2 ORDER BY z").ok());
  EXPECT_EQ(session_->Execute("SELECT z FROM ahn2 ORDER BY bogus")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(session_->Execute("SELECT id FROM osm_roads ORDER BY geom").ok());
}

TEST(SqlParserOrderByTest, ParseForms) {
  auto a = Parse("SELECT x FROM t ORDER BY z");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->order_by, "z");
  EXPECT_FALSE(a->order_desc);
  auto b = Parse("SELECT x FROM t ORDER BY Z DESC LIMIT 3");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->order_by, "z");
  EXPECT_TRUE(b->order_desc);
  EXPECT_EQ(b->limit, 3);
  auto c = Parse("SELECT x FROM t ORDER BY z ASC");
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(c->order_desc);
  EXPECT_FALSE(Parse("SELECT x FROM t ORDER z").ok());
  // Round trip through ToString.
  auto again = Parse(b->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToString(), b->ToString());
}

TEST_F(SqlSessionTest, ResultSetToString) {
  auto rs = session_->Execute("SELECT x, y FROM ahn2 LIMIT 3");
  ASSERT_TRUE(rs.ok());
  std::string text = rs->ToString();
  EXPECT_NE(text.find("x | y"), std::string::npos);
  EXPECT_NE(text.find("(3 rows)"), std::string::npos);
}

// ---------------- EXPLAIN ANALYZE ----------------

TEST(SqlParserTest, ExplainAnalyze) {
  auto stmt = Parse("EXPLAIN ANALYZE SELECT x FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->explain);
  EXPECT_TRUE(stmt->analyze);
  auto plain = Parse("EXPLAIN SELECT x FROM t");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->analyze);
  // ANALYZE only follows EXPLAIN.
  EXPECT_FALSE(Parse("ANALYZE SELECT x FROM t").ok());
}

TEST_F(SqlSessionTest, ExplainAnalyzeReturnsSpanTree) {
  auto rs = session_->Execute(
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM ahn2 WHERE ST_Within(pt, "
      "'BOX(85020 444020, 85080 444080)')");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->columns, std::vector<std::string>{"explain analyze"});
  std::string text;
  for (const auto& row : rs->rows) {
    text += row[0].text;
    text += '\n';
  }
  EXPECT_NE(text.find("spans ("), std::string::npos);
  EXPECT_NE(text.find("filter.imprints.x"), std::string::npos);
  EXPECT_NE(text.find("cachelines_probed="), std::string::npos);
  EXPECT_NE(text.find("false_positive_rate="), std::string::npos);
  EXPECT_NE(text.find("TOTAL (sum)"), std::string::npos);
  EXPECT_NE(text.find("WALL (critical path)"), std::string::npos);
  // The executed profile rides along for trace export.
  EXPECT_FALSE(rs->profile.empty());
}

// Strips digits so the span tree's *shape* can be compared exactly while
// times and cardinalities vary run to run.
std::string NormalizeShape(const std::string& tree) {
  std::string out;
  bool last_hash = false;
  for (char c : tree) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      if (!last_hash) out += '#';
      last_hash = true;
    } else {
      out += c;
      last_hash = false;
    }
  }
  return out;
}

TEST(SqlExplainAnalyzeGoldenTest, SingleThreadedBoxQueryShape) {
  // num_threads=1 executes the filter branches serially, so the span order
  // is deterministic and the rendered tree shape is stable.
  AhnGeneratorOptions gopts;
  gopts.extent = Box(85000, 444000, 85100, 444100);
  AhnGenerator gen(gopts);
  auto table = gen.GenerateTable(5000);
  ASSERT_TRUE(table.ok());
  Catalog catalog;
  EngineOptions eopts;
  eopts.num_threads = 1;
  ASSERT_TRUE(catalog.AddPointCloud("ahn2", *table, eopts).ok());
  Session session(&catalog);

  auto rs = session.Execute(
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM ahn2 WHERE ST_Within(pt, "
      "'BOX(85010 444010, 85060 444060)')");
  ASSERT_TRUE(rs.ok());

  // Span-tree section only: everything after the "spans (...)" header.
  std::string text;
  bool in_spans = false;
  for (const auto& row : rs->rows) {
    if (row[0].text.rfind("spans (", 0) == 0) {
      in_spans = true;
      continue;
    }
    if (!in_spans) continue;
    // Names and indentation only: cut each line at the first double space
    // after the name starts (the padding before the timing columns).
    const std::string& line = row[0].text;
    size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    size_t name_end = line.find("  ", start);
    text += line.substr(0, name_end == std::string::npos ? line.size()
                                                         : name_end);
    text += '\n';
  }
  EXPECT_EQ(NormalizeShape(text),
            "  filter\n"
            "    filter.imprints.x\n"
            "    filter.imprints.y\n"
            "    filter.intersect\n"
            "  refine.none(box)\n"
            "  TOTAL (sum)\n"
            "  WALL (critical path)\n")
      << text;
}

}  // namespace
}  // namespace geocol
