// Admission control for the query server (DESIGN.md §16): a bounded
// FIFO between connection threads and worker sessions. When the queue is
// full the connection thread sheds the request with a typed BUSY error
// instead of stalling the socket — overload degrades to fast rejections,
// never to unbounded latency. The queue is also where shared-scan batch
// groups form: workers extract every queued task with the same batch key
// (same engine, i.e. same table epoch) in one pull.
#ifndef GEOCOL_SERVER_ADMISSION_H_
#define GEOCOL_SERVER_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "geom/geometry.h"
#include "sql/planner.h"
#include "sql/executor.h"
#include "util/status.h"

namespace geocol {
namespace server {

/// One admitted query: the statement (already parsed and planned at
/// admission time, pinning a live-table epoch per statement), its batch
/// identity, and a one-shot completion slot the connection thread waits
/// on. Result<T> has no default constructor, so status and rows travel
/// separately.
struct QueryTask {
  std::string client_id;
  std::string sql;
  sql::PlannedQuery plan;

  /// Shared-scan batch group key: the flat engine's address (nonzero only
  /// for batchable plans). Plans pinned to the same live epoch hold the
  /// same engine, so equal keys mean "same table snapshot"; both engines
  /// are kept alive by their plans, so the addresses cannot alias.
  uintptr_t batch_key = 0;
  /// Effective selection box when batch_key != 0 (the geometry envelope,
  /// or the table extent for predicate-free statements).
  Box viewport;

  // ---- Completion (set exactly once by a worker).
  void Complete(Status status, sql::ResultSet result);
  /// Blocks until Complete; then `status`/`result` are readable without
  /// the lock.
  void Wait();

  Status status;
  sql::ResultSet result;

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
};

using TaskPtr = std::shared_ptr<QueryTask>;

/// Bounded MPMC queue with typed admission outcomes.
class AdmissionQueue {
 public:
  enum class Admit { kAdmitted, kFull, kClosed };

  explicit AdmissionQueue(size_t capacity) : capacity_(capacity) {}

  /// Non-blocking push: kFull when at capacity (the caller sheds BUSY),
  /// kClosed once Close() ran.
  Admit TryPush(TaskPtr task);

  /// Blocks for the next task. Returns null only when the queue is closed
  /// AND empty — a closed queue still drains every admitted task, which
  /// is what makes shutdown lose no accepted work.
  TaskPtr PopBlocking();

  /// Removes and returns every queued task whose batch_key equals `key`
  /// (up to `max_tasks`), preserving FIFO order. Called by a worker that
  /// just popped a batchable task to form its shared-scan group.
  std::vector<TaskPtr> ExtractBatchGroup(uintptr_t key, size_t max_tasks);

  /// Rejects future pushes and wakes all poppers. Idempotent.
  void Close();

  /// Reopens after Close (server restart).
  void Reset();

  size_t depth() const;
  /// High-water mark of depth() since construction/Reset.
  size_t max_depth() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<TaskPtr> queue_;
  bool closed_ = false;
  size_t max_depth_ = 0;
};

}  // namespace server
}  // namespace geocol

#endif  // GEOCOL_SERVER_ADMISSION_H_
