#include "geom/wkt.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace geocol {

namespace {

/// Tiny recursive-descent scanner over the WKT text.
class WktScanner {
 public:
  explicit WktScanner(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Eat(c)) {
      return Status::InvalidArgument(std::string("WKT: expected '") + c +
                                     "' at offset " + std::to_string(pos_));
    }
    return Status::OK();
  }

  /// Reads an uppercase keyword (letters/underscore).
  std::string ReadWord() {
    SkipSpace();
    std::string w;
    while (pos_ < text_.size() &&
           (std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      w += static_cast<char>(std::toupper(static_cast<unsigned char>(text_[pos_])));
      ++pos_;
    }
    return w;
  }

  Result<double> ReadNumber() {
    SkipSpace();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin) {
      return Status::InvalidArgument("WKT: expected number at offset " +
                                     std::to_string(pos_));
    }
    pos_ += static_cast<size_t>(end - begin);
    return v;
  }

  Result<Point> ReadPointCoords() {
    GEOCOL_ASSIGN_OR_RETURN(double x, ReadNumber());
    GEOCOL_ASSIGN_OR_RETURN(double y, ReadNumber());
    // Swallow an optional Z coordinate (we index Z as a regular column).
    SkipSpace();
    if (pos_ < text_.size() &&
        (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
         text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.')) {
      GEOCOL_ASSIGN_OR_RETURN(double z, ReadNumber());
      (void)z;
    }
    return Point{x, y};
  }

  Result<std::vector<Point>> ReadPointList() {
    GEOCOL_RETURN_NOT_OK(Expect('('));
    std::vector<Point> pts;
    do {
      GEOCOL_ASSIGN_OR_RETURN(Point p, ReadPointCoords());
      pts.push_back(p);
    } while (Eat(','));
    GEOCOL_RETURN_NOT_OK(Expect(')'));
    return pts;
  }

  Result<Polygon> ReadPolygonBody() {
    GEOCOL_RETURN_NOT_OK(Expect('('));
    Polygon poly;
    bool first = true;
    do {
      GEOCOL_ASSIGN_OR_RETURN(std::vector<Point> pts, ReadPointList());
      // WKT rings repeat the first vertex at the end; drop the duplicate.
      if (pts.size() >= 2 && pts.front() == pts.back()) pts.pop_back();
      if (pts.size() < 3) {
        return Status::InvalidArgument("WKT: ring with fewer than 3 points");
      }
      if (first) {
        poly.shell.points = std::move(pts);
        first = false;
      } else {
        Ring h;
        h.points = std::move(pts);
        poly.holes.push_back(std::move(h));
      }
    } while (Eat(','));
    GEOCOL_RETURN_NOT_OK(Expect(')'));
    return poly;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  size_t pos() const { return pos_; }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

void AppendCoord(std::string* out, double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision + 6, v);
  *out += buf;
}

void AppendPoint(std::string* out, const Point& p, int precision) {
  AppendCoord(out, p.x, precision);
  *out += ' ';
  AppendCoord(out, p.y, precision);
}

void AppendRing(std::string* out, const Ring& r, int precision) {
  *out += '(';
  for (size_t i = 0; i < r.points.size(); ++i) {
    if (i > 0) *out += ", ";
    AppendPoint(out, r.points[i], precision);
  }
  if (!r.points.empty()) {
    *out += ", ";
    AppendPoint(out, r.points.front(), precision);  // close the ring
  }
  *out += ')';
}

void AppendPolygonBody(std::string* out, const Polygon& p, int precision) {
  *out += '(';
  AppendRing(out, p.shell, precision);
  for (const Ring& h : p.holes) {
    *out += ", ";
    AppendRing(out, h, precision);
  }
  *out += ')';
}

}  // namespace

Result<Geometry> ParseWkt(const std::string& text) {
  WktScanner s(text);
  std::string kw = s.ReadWord();
  if (kw == "POINT") {
    GEOCOL_RETURN_NOT_OK(s.Expect('('));
    GEOCOL_ASSIGN_OR_RETURN(Point p, s.ReadPointCoords());
    GEOCOL_RETURN_NOT_OK(s.Expect(')'));
    if (!s.AtEnd()) return Status::InvalidArgument("WKT: trailing text");
    return Geometry(p);
  }
  if (kw == "BOX") {
    GEOCOL_RETURN_NOT_OK(s.Expect('('));
    GEOCOL_ASSIGN_OR_RETURN(Point lo, s.ReadPointCoords());
    GEOCOL_RETURN_NOT_OK(s.Expect(','));
    GEOCOL_ASSIGN_OR_RETURN(Point hi, s.ReadPointCoords());
    GEOCOL_RETURN_NOT_OK(s.Expect(')'));
    if (!s.AtEnd()) return Status::InvalidArgument("WKT: trailing text");
    if (hi.x < lo.x || hi.y < lo.y) {
      return Status::InvalidArgument("BOX: max corner below min corner");
    }
    return Geometry(Box(lo.x, lo.y, hi.x, hi.y));
  }
  if (kw == "LINESTRING") {
    GEOCOL_ASSIGN_OR_RETURN(std::vector<Point> pts, s.ReadPointList());
    if (!s.AtEnd()) return Status::InvalidArgument("WKT: trailing text");
    if (pts.size() < 2) {
      return Status::InvalidArgument("LINESTRING: needs >= 2 points");
    }
    LineString ls;
    ls.points = std::move(pts);
    return Geometry(std::move(ls));
  }
  if (kw == "POLYGON") {
    GEOCOL_ASSIGN_OR_RETURN(Polygon poly, s.ReadPolygonBody());
    if (!s.AtEnd()) return Status::InvalidArgument("WKT: trailing text");
    return Geometry(std::move(poly));
  }
  if (kw == "MULTIPOLYGON") {
    MultiPolygon mp;
    WktScanner& sc = s;
    GEOCOL_RETURN_NOT_OK(sc.Expect('('));
    do {
      GEOCOL_ASSIGN_OR_RETURN(Polygon poly, sc.ReadPolygonBody());
      mp.polygons.push_back(std::move(poly));
    } while (sc.Eat(','));
    GEOCOL_RETURN_NOT_OK(sc.Expect(')'));
    if (!s.AtEnd()) return Status::InvalidArgument("WKT: trailing text");
    return Geometry(std::move(mp));
  }
  return Status::InvalidArgument("WKT: unknown geometry type '" + kw + "'");
}

std::string ToWkt(const Geometry& g, int precision) {
  std::string out;
  switch (g.type()) {
    case GeometryType::kPoint:
      out = "POINT (";
      AppendPoint(&out, g.point(), precision);
      out += ')';
      break;
    case GeometryType::kBox: {
      const Box& b = g.box();
      out = "BOX (";
      AppendPoint(&out, {b.min_x, b.min_y}, precision);
      out += ", ";
      AppendPoint(&out, {b.max_x, b.max_y}, precision);
      out += ')';
      break;
    }
    case GeometryType::kLineString: {
      out = "LINESTRING (";
      const auto& pts = g.line().points;
      for (size_t i = 0; i < pts.size(); ++i) {
        if (i > 0) out += ", ";
        AppendPoint(&out, pts[i], precision);
      }
      out += ')';
      break;
    }
    case GeometryType::kPolygon:
      out = "POLYGON ";
      AppendPolygonBody(&out, g.polygon(), precision);
      break;
    case GeometryType::kMultiPolygon: {
      out = "MULTIPOLYGON (";
      const auto& polys = g.multipolygon().polygons;
      for (size_t i = 0; i < polys.size(); ++i) {
        if (i > 0) out += ", ";
        AppendPolygonBody(&out, polys[i], precision);
      }
      out += ')';
      break;
    }
  }
  return out;
}

}  // namespace geocol
