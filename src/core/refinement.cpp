#include "core/refinement.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "geom/predicates.h"
#include "util/thread_pool.h"

namespace geocol {

namespace {

// Candidate vectors below this size refine serially even with a pool.
constexpr size_t kMinParallelRefineRows = 1 << 17;
// Rows per refinement morsel; multiple of 64 so ranges cover whole words.
constexpr size_t kRefineMorselRows = 1 << 16;

inline bool ExactTest(const Geometry& g, double buffer, const Point& p) {
  return buffer > 0.0 ? GeometryDWithin(g, p, buffer)
                      : GeometryContainsPoint(g, p);
}

Status CheckInputs(const Column& x, const Column& y,
                   const BitVector& candidates) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("x/y column length mismatch");
  }
  if (candidates.size() != x.size()) {
    return Status::InvalidArgument("candidate vector length mismatch");
  }
  return Status::OK();
}

constexpr uint8_t kUnclassified = 0xFF;

Status ParallelGridRefine(const Column& x, const Column& y,
                          const BitVector& candidates,
                          const Geometry& geometry, double buffer,
                          const RefineOptions& options, ThreadPool* pool,
                          std::vector<uint64_t>* out_rows,
                          RefinementStats* stats) {
  RefinementStats local;
  const size_t n = candidates.size();
  const size_t num_morsels = (n + kRefineMorselRows - 1) / kRefineMorselRows;
  local.workers = static_cast<uint32_t>(
      std::min(num_morsels, pool->num_threads() + 1));

  // Pass 1 (parallel): per-morsel candidate row lists and extents.
  std::vector<std::vector<uint64_t>> morsel_rows(num_morsels);
  std::vector<Box> morsel_extent(num_morsels);
  pool->ParallelFor(num_morsels, [&](size_t m) {
    size_t begin = m * kRefineMorselRows;
    size_t end = std::min(n, begin + kRefineMorselRows);
    std::vector<uint64_t>& rows = morsel_rows[m];
    candidates.CollectSetBitsInRange(begin, end, &rows);
    Box& ext = morsel_extent[m];
    for (uint64_t r : rows) ext.Extend(x.GetDouble(r), y.GetDouble(r));
  });
  Box extent;
  for (const Box& b : morsel_extent) extent.Extend(b);
  for (const auto& rows : morsel_rows) local.candidates += rows.size();
  if (local.candidates == 0) {
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }

  RegularGrid grid = RegularGrid::ForExpectedPoints(
      extent, local.candidates, options.target_points_per_cell,
      options.max_cells_per_axis);
  local.cells_total = grid.num_cells();
  local.grid_cols = grid.cols();
  local.grid_rows = grid.rows();

  // Pass 2 (parallel): classify-and-test. Cell classifications are shared
  // through an atomic table; ClassifyCell is deterministic, so the only
  // race is which worker publishes first — the CAS winner also counts the
  // cell in its stats, keeping per-cell counters exact.
  std::unique_ptr<std::atomic<uint8_t>[]> cell_class(
      new std::atomic<uint8_t>[grid.num_cells()]);
  for (uint64_t c = 0; c < grid.num_cells(); ++c) {
    cell_class[c].store(kUnclassified, std::memory_order_relaxed);
  }

  std::vector<std::vector<uint64_t>> morsel_out(num_morsels);
  std::vector<RefinementStats> morsel_stats(num_morsels);
  pool->ParallelFor(num_morsels, [&](size_t m) {
    RefinementStats& st = morsel_stats[m];
    std::vector<uint64_t>& out = morsel_out[m];
    for (uint64_t r : morsel_rows[m]) {
      Point p{x.GetDouble(r), y.GetDouble(r)};
      uint64_t cell = grid.CellOf(p.x, p.y);
      uint8_t cls = cell_class[cell].load(std::memory_order_acquire);
      if (cls == kUnclassified) {
        uint8_t computed =
            static_cast<uint8_t>(grid.ClassifyCell(cell, geometry, buffer));
        uint8_t expected = kUnclassified;
        if (cell_class[cell].compare_exchange_strong(
                expected, computed, std::memory_order_acq_rel)) {
          cls = computed;
          ++st.cells_nonempty;
          switch (static_cast<BoxRelation>(cls)) {
            case BoxRelation::kInside: ++st.cells_inside; break;
            case BoxRelation::kOutside: ++st.cells_outside; break;
            case BoxRelation::kBoundary: ++st.cells_boundary; break;
          }
        } else {
          cls = expected;  // another worker published first
        }
      }
      switch (static_cast<BoxRelation>(cls)) {
        case BoxRelation::kInside:
          out.push_back(r);
          ++st.accepted;
          break;
        case BoxRelation::kOutside:
          break;
        case BoxRelation::kBoundary:
          ++st.exact_tests;
          if (ExactTest(geometry, buffer, p)) {
            out.push_back(r);
            ++st.accepted;
          }
          break;
      }
    }
  });

  for (size_t m = 0; m < num_morsels; ++m) {
    const RefinementStats& st = morsel_stats[m];
    local.accepted += st.accepted;
    local.cells_nonempty += st.cells_nonempty;
    local.cells_inside += st.cells_inside;
    local.cells_outside += st.cells_outside;
    local.cells_boundary += st.cells_boundary;
    local.exact_tests += st.exact_tests;
    out_rows->insert(out_rows->end(), morsel_out[m].begin(),
                     morsel_out[m].end());
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace

Status GridRefine(const Column& x, const Column& y, const BitVector& candidates,
                  const Geometry& geometry, double buffer,
                  const RefineOptions& options, std::vector<uint64_t>* out_rows,
                  RefinementStats* stats, ThreadPool* pool) {
  GEOCOL_RETURN_NOT_OK(CheckInputs(x, y, candidates));
  if (!options.use_grid) {
    return ExhaustiveRefine(x, y, candidates, geometry, buffer, out_rows,
                            stats);
  }
  if (pool != nullptr && pool->num_threads() > 0 &&
      candidates.size() >= kMinParallelRefineRows) {
    return ParallelGridRefine(x, y, candidates, geometry, buffer, options,
                              pool, out_rows, stats);
  }
  RefinementStats local;

  // Pass 1: collect candidate rows and their extent. The grid only needs to
  // cover the filtered superset, which is already close to the query
  // envelope thanks to the imprint filter.
  std::vector<uint64_t> cand_rows;
  Box extent;
  for (size_t r = candidates.FindNext(0); r < candidates.size();
       r = candidates.FindNext(r + 1)) {
    cand_rows.push_back(r);
    extent.Extend(x.GetDouble(r), y.GetDouble(r));
  }
  local.candidates = cand_rows.size();
  if (cand_rows.empty()) {
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }

  RegularGrid grid = RegularGrid::ForExpectedPoints(
      extent, cand_rows.size(), options.target_points_per_cell,
      options.max_cells_per_axis);
  local.cells_total = grid.num_cells();
  local.grid_cols = grid.cols();
  local.grid_rows = grid.rows();

  // Pass 2: classify cells lazily — only cells that actually hold
  // candidates are ever evaluated against the geometry (§3.3: "the spatial
  // relation is then evaluated between each non-empty cell and G").
  std::vector<uint8_t> cell_class(grid.num_cells(), kUnclassified);

  for (uint64_t r : cand_rows) {
    Point p{x.GetDouble(r), y.GetDouble(r)};
    uint64_t cell = grid.CellOf(p.x, p.y);
    uint8_t& cls = cell_class[cell];
    if (cls == kUnclassified) {
      cls = static_cast<uint8_t>(grid.ClassifyCell(cell, geometry, buffer));
      ++local.cells_nonempty;
      switch (static_cast<BoxRelation>(cls)) {
        case BoxRelation::kInside: ++local.cells_inside; break;
        case BoxRelation::kOutside: ++local.cells_outside; break;
        case BoxRelation::kBoundary: ++local.cells_boundary; break;
      }
    }
    switch (static_cast<BoxRelation>(cls)) {
      case BoxRelation::kInside:
        out_rows->push_back(r);
        ++local.accepted;
        break;
      case BoxRelation::kOutside:
        break;
      case BoxRelation::kBoundary:
        ++local.exact_tests;
        if (ExactTest(geometry, buffer, p)) {
          out_rows->push_back(r);
          ++local.accepted;
        }
        break;
    }
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status ExhaustiveRefine(const Column& x, const Column& y,
                        const BitVector& candidates, const Geometry& geometry,
                        double buffer, std::vector<uint64_t>* out_rows,
                        RefinementStats* stats) {
  GEOCOL_RETURN_NOT_OK(CheckInputs(x, y, candidates));
  RefinementStats local;
  for (size_t r = candidates.FindNext(0); r < candidates.size();
       r = candidates.FindNext(r + 1)) {
    ++local.candidates;
    ++local.exact_tests;
    Point p{x.GetDouble(r), y.GetDouble(r)};
    if (ExactTest(geometry, buffer, p)) {
      out_rows->push_back(r);
      ++local.accepted;
    }
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace geocol
