// Process-wide budgeted cache of faulted column chunks — the memory tier
// of the paged column backend (DESIGN.md §14). A paged column keeps only
// its chunk directory in memory; every scan pins chunks through this
// cache, so the budget bounds the resident set of ALL paged tables in the
// process no matter how much data the queries touch.
//
// Keys are (file id, chunk index). File ids are process-unique (handed
// out by NextFileId() at every paged open), so a reopened generation or a
// freshly appended table can never alias a stale entry — invalidation by
// construction, the same idea as the query cache's epoch-keyed entries.
//
// Values are immutable shared_ptrs to the decoded chunk bytes: a reader
// holding a pin keeps its chunk alive across a concurrent eviction.
// Inserts that exceed the shard's budget slice are dropped (the caller
// still gets its pinned chunk) — a tiny budget degrades to re-faulting,
// never to failure, which is what the tiny-budget equivalence tests lean
// on.
#ifndef GEOCOL_CACHE_CHUNK_CACHE_H_
#define GEOCOL_CACHE_CHUNK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace geocol {
namespace cache {

class ChunkCache {
 public:
  static constexpr size_t kShards = 16;

  using Payload = std::shared_ptr<const std::vector<uint8_t>>;

  explicit ChunkCache(uint64_t budget_bytes);
  ~ChunkCache();

  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  /// The process-wide cache every paged column faults into. Its initial
  /// budget comes from GEOCOL_CHUNK_CACHE_MB (default 64 MiB).
  static ChunkCache& Global();
  static uint64_t DefaultBudgetBytes();

  /// Hands out the process-unique id a paged open keys its chunks under.
  static uint64_t NextFileId();

  /// Sets the total memory budget; shrinking evicts immediately.
  void SetBudget(uint64_t budget_bytes);
  /// SetBudget(max(budget, current)) — openers declare what they want and
  /// the process-wide cache takes the largest request.
  void GrowBudget(uint64_t budget_bytes);
  uint64_t budget_bytes() const {
    return budget_.load(std::memory_order_relaxed);
  }

  /// The cached chunk, or nullptr (a miss — the caller faults from disk).
  Payload Lookup(uint64_t file_id, uint32_t chunk_index);

  /// Publishes a freshly faulted chunk. Oversized values are dropped
  /// without insertion; concurrent faulters of the same chunk keep the
  /// first value inserted.
  void Insert(uint64_t file_id, uint32_t chunk_index, Payload value);

  /// Drops every chunk of `file_id` — called when a paged column is
  /// destroyed so its bytes do not squat in the budget until aged out.
  void EraseFile(uint64_t file_id);

  /// Drops every entry (budget unchanged).
  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;
    uint64_t budget_bytes = 0;
  };
  Stats GetStats() const;

  /// Multi-line human rendering of GetStats() for `geocol cache`.
  std::string StatsToString() const;

 private:
  struct Entry {
    Payload value;
    size_t bytes = 0;  ///< charge incl. bookkeeping overhead
    std::list<uint64_t>::iterator lru_it;
  };

  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Entry> map;
    /// Front = most recent. Holds the map keys; Entry::lru_it points in.
    std::list<uint64_t> lru;
    uint64_t bytes = 0;
    uint64_t evictions = 0;
  };

  static uint64_t KeyFor(uint64_t file_id, uint32_t chunk_index);
  Shard& ShardFor(uint64_t key);
  uint64_t ShardBudget() const;
  void EvictLocked(Shard& shard);
  void UpdateGauge();

  std::atomic<uint64_t> budget_;
  Shard shards_[kShards];
  /// Monotonic counters live outside the shards: hits on different shards
  /// must not serialise on one cache line.
  std::atomic<uint64_t> hits_;
  std::atomic<uint64_t> misses_;
  std::atomic<uint64_t> inserts_;
};

}  // namespace cache
}  // namespace geocol

#endif  // GEOCOL_CACHE_CHUNK_CACHE_H_
