#include "server/rate_limiter.h"

#include <algorithm>

namespace geocol {
namespace server {

bool TokenBucketLimiter::Allow(const std::string& client, int64_t now_nanos) {
  if (qps_ <= 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = buckets_.try_emplace(client);
  Bucket& b = it->second;
  if (inserted) {
    b.tokens = burst_;
    b.last_nanos = now_nanos;
  } else if (now_nanos > b.last_nanos) {
    const double elapsed_s = (now_nanos - b.last_nanos) / 1e9;
    b.tokens = std::min(burst_, b.tokens + elapsed_s * qps_);
    b.last_nanos = now_nanos;
  }
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

size_t TokenBucketLimiter::num_clients() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_.size();
}

}  // namespace server
}  // namespace geocol
