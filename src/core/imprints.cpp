#include "core/imprints.h"

#include <algorithm>
#include <limits>
#include <span>

#include "util/thread_pool.h"

namespace geocol {

namespace {

constexpr uint32_t kMaxCount = (1u << 30);  // headroom below the 31-bit cap

// Chunks below this many cache lines are not worth forking for.
constexpr uint64_t kMinParallelBuildLines = 1 << 12;

/// A maximal run of identical imprint vectors inside one build chunk.
struct VectorRun {
  uint64_t vec;
  uint64_t count;
};

/// Binarises lines [line_begin, line_end) of the column into per-chunk
/// maximal runs of identical imprint vectors. Chunked across `pool` when
/// the range is large enough; callers concatenate the chunk sequences in
/// order (RunEmitter below merges runs that touch across chunk seams).
/// Values are reached through ForEachValueRun, so paged columns binarise
/// one faulted paging chunk at a time — paging-chunk boundaries are
/// multiples of every values-per-line, so a cache line never straddles two
/// runs. The only Status source is a paged chunk fault.
Status BinarizeLines(const Column& column, const BinBounds& bins,
                     uint32_t values_per_line, uint64_t num_rows,
                     uint64_t line_begin, uint64_t line_end, ThreadPool* pool,
                     std::vector<std::vector<VectorRun>>* out) {
  uint64_t total = line_end - line_begin;
  uint64_t num_chunks = 1;
  if (pool != nullptr && pool->num_threads() > 0 &&
      total >= kMinParallelBuildLines) {
    num_chunks = std::min<uint64_t>(total / (kMinParallelBuildLines / 8),
                                    (pool->num_threads() + 1) * 8);
    if (num_chunks < 2) num_chunks = 2;
  }
  uint64_t chunk_lines = (total + num_chunks - 1) / num_chunks;
  num_chunks = chunk_lines > 0 ? (total + chunk_lines - 1) / chunk_lines : 0;
  std::vector<std::vector<VectorRun>> chunk_runs(num_chunks);
  std::vector<Status> chunk_status(num_chunks);
  auto do_chunk = [&](size_t c) {
    uint64_t begin = line_begin + c * chunk_lines;
    uint64_t end = std::min<uint64_t>(line_end, begin + chunk_lines);
    std::vector<VectorRun>& runs = chunk_runs[c];
    DispatchDataType(column.type(), [&]<typename T>() {
      uint64_t row_begin = begin * values_per_line;
      uint64_t row_end = std::min<uint64_t>(end * values_per_line, num_rows);
      chunk_status[c] = ForEachValueRun<T>(
          column, row_begin, row_end,
          [&](const T* vals, uint64_t first, size_t count) {
            for (uint64_t line = first / values_per_line;
                 line * values_per_line < first + count; ++line) {
              uint64_t lf = line * values_per_line;
              uint64_t ll = std::min<uint64_t>(lf + values_per_line,
                                               first + count);
              uint64_t v = 0;
              for (uint64_t i = lf; i < ll; ++i) {
                v |= uint64_t{1}
                     << bins.BinOf(static_cast<double>(vals[i - first]));
              }
              if (!runs.empty() && runs.back().vec == v) {
                ++runs.back().count;
              } else {
                runs.push_back({v, 1});
              }
            }
          });
    });
  };
  if (num_chunks > 1) {
    pool->ParallelFor(num_chunks, do_chunk);
  } else if (num_chunks == 1) {
    do_chunk(0);
  }
  for (Status& st : chunk_status) GEOCOL_RETURN_NOT_OK(std::move(st));
  *out = std::move(chunk_runs);
  return Status::OK();
}

/// Canonical greedy dictionary encoding over a stream of vector runs.
/// Feeding it the maximal-run decomposition of the per-line vectors
/// reproduces the serial build byte-for-byte (PR 1's stitching invariant:
/// runs of >= 2 lines become repeat entries, singletons coalesce into
/// literal entries). Adjacent Add() calls with equal vectors merge, so
/// chunk/seam boundaries in the input stream never show in the output.
class RunEmitter {
 public:
  RunEmitter(std::vector<uint64_t>* vectors,
             std::vector<ImprintsIndex::DictEntry>* dict)
      : vectors_(vectors), dict_(dict) {}

  void Add(uint64_t vec, uint64_t count) {
    if (count == 0) return;
    if (pending_count_ > 0 && pending_vec_ == vec) {
      pending_count_ += count;
      return;
    }
    Flush();
    pending_vec_ = vec;
    pending_count_ = count;
  }

  void Finish() { Flush(); }

 private:
  void Flush() {
    uint64_t count = pending_count_;
    pending_count_ = 0;
    while (count > 0) {
      uint64_t piece = std::min<uint64_t>(count, kMaxCount);
      count -= piece;
      if (piece >= 2) {
        vectors_->push_back(pending_vec_);
        dict_->push_back({static_cast<uint32_t>(piece), true});
      } else {
        vectors_->push_back(pending_vec_);
        if (!dict_->empty() && !dict_->back().repeat &&
            dict_->back().count < kMaxCount) {
          ++dict_->back().count;
        } else {
          dict_->push_back({1, false});
        }
      }
    }
  }

  std::vector<uint64_t>* vectors_;
  std::vector<ImprintsIndex::DictEntry>* dict_;
  uint64_t pending_vec_ = 0;
  uint64_t pending_count_ = 0;
};

}  // namespace

Result<ImprintsIndex> ImprintsIndex::Build(const Column& column,
                                           const ImprintsOptions& options,
                                           ThreadPool* pool) {
  if (column.empty()) {
    return Status::InvalidArgument("cannot build imprints on empty column");
  }
  if (options.cacheline_bytes < column.width() ||
      options.cacheline_bytes % column.width() != 0) {
    return Status::InvalidArgument("cacheline size incompatible with type width");
  }
  GEOCOL_ASSIGN_OR_RETURN(
      BinBounds bins,
      BinBounds::Sample(column, options.max_bins, options.sample_size,
                        options.seed));
  return BuildWithBins(column, std::move(bins), options, pool);
}

Result<ImprintsIndex> ImprintsIndex::BuildWithBins(const Column& column,
                                                   BinBounds bins,
                                                   const ImprintsOptions& options,
                                                   ThreadPool* pool) {
  if (column.empty()) {
    return Status::InvalidArgument("cannot build imprints on empty column");
  }
  if (options.cacheline_bytes < column.width() ||
      options.cacheline_bytes % column.width() != 0) {
    return Status::InvalidArgument("cacheline size incompatible with type width");
  }

  ImprintsIndex ix;
  ix.bins_ = bins;
  ix.values_per_line_ =
      static_cast<uint32_t>(options.cacheline_bytes / column.width());
  ix.num_rows_ = column.size();
  ix.num_lines_ = (ix.num_rows_ + ix.values_per_line_ - 1) / ix.values_per_line_;
  ix.built_epoch_ = column.epoch();
  ix.vectors_.reserve(ix.num_lines_ / 4 + 16);

  if (pool != nullptr && pool->num_threads() > 0 &&
      ix.num_lines_ >= kMinParallelBuildLines) {
    // Parallel build: workers binarise disjoint line chunks into maximal
    // runs of identical vectors; the dictionary is then stitched serially,
    // merging runs that touch across chunk seams. The emission rules below
    // reproduce the serial greedy encoding exactly (runs of >= 2 lines
    // become repeat entries, singleton runs coalesce into literal entries),
    // so parallel and serial builds are byte-identical.
    std::vector<std::vector<VectorRun>> chunk_runs;
    GEOCOL_RETURN_NOT_OK(BinarizeLines(column, bins, ix.values_per_line_,
                                       ix.num_rows_, 0, ix.num_lines_, pool,
                                       &chunk_runs));
    RunEmitter emitter(&ix.vectors_, &ix.dict_);
    for (const auto& runs : chunk_runs) {
      for (const VectorRun& r : runs) emitter.Add(r.vec, r.count);
    }
    emitter.Finish();
    return ix;
  }

  Status build_status;
  DispatchDataType(column.type(), [&]<typename T>() {
    uint64_t prev_vector = 0;
    bool have_prev = false;
    // Lines arrive through ForEachValueRun: resident columns see the whole
    // span in one run (exactly the old direct-indexing loop), paged
    // columns binarise one faulted chunk at a time. Paging-chunk
    // boundaries are multiples of values_per_line, so a cache line never
    // straddles two runs and the greedy encoding state (prev_vector, the
    // open dictionary entry) simply carries across run seams.
    build_status = ForEachValueRun<T>(
        column, 0, ix.num_rows_, [&](const T* vals, uint64_t first,
                                     size_t count) {
          for (uint64_t line = first / ix.values_per_line_;
               line * ix.values_per_line_ < first + count; ++line) {
            uint64_t lf = line * ix.values_per_line_;
            uint64_t ll =
                std::min<uint64_t>(lf + ix.values_per_line_, first + count);
            uint64_t v = 0;
            for (uint64_t i = lf; i < ll; ++i) {
              v |= uint64_t{1}
                   << bins.BinOf(static_cast<double>(vals[i - first]));
            }
            if (have_prev && v == prev_vector && !ix.dict_.empty() &&
                ix.dict_.back().count < kMaxCount) {
              DictEntry& back = ix.dict_.back();
              if (back.repeat) {
                // Extend the run of identical vectors.
                ++back.count;
              } else if (back.count == 1) {
                // The single vector becomes a repeat group of two lines.
                back.repeat = true;
                back.count = 2;
              } else {
                // Detach the trailing vector from the literal run; it seeds
                // a new repeat group (the vector is already the last one
                // stored).
                --back.count;
                ix.dict_.push_back({2, true});
              }
            } else {
              ix.vectors_.push_back(v);
              if (!ix.dict_.empty() && !ix.dict_.back().repeat &&
                  ix.dict_.back().count < kMaxCount) {
                ++ix.dict_.back().count;
              } else {
                ix.dict_.push_back({1, false});
              }
              prev_vector = v;
              have_prev = true;
            }
          }
        });
  });
  GEOCOL_RETURN_NOT_OK(build_status);
  return ix;
}

Result<ImprintsIndex> ImprintsIndex::ExtendAppend(const ImprintsIndex& base,
                                                  const Column& column,
                                                  ThreadPool* pool) {
  if (column.empty()) {
    return Status::InvalidArgument("cannot extend imprints over empty column");
  }
  if (column.size() < base.num_rows_) {
    return Status::InvalidArgument(
        "imprints extend: column shrank below the indexed prefix");
  }
  if (base.values_per_line_ == 0) {
    return Status::InvalidArgument("imprints extend: bad base geometry");
  }

  ImprintsIndex ix;
  ix.bins_ = base.bins_;
  ix.values_per_line_ = base.values_per_line_;
  ix.num_rows_ = column.size();
  ix.num_lines_ =
      (ix.num_rows_ + ix.values_per_line_ - 1) / ix.values_per_line_;
  ix.built_epoch_ = column.epoch();
  ix.vectors_.reserve(base.vectors_.size() + 16);

  // Only lines whose every value came from the base prefix keep their old
  // vectors; the seam line (partial when base rows don't divide evenly)
  // and everything after is binarised fresh from the column.
  uint64_t seam_line = base.num_rows_ / ix.values_per_line_;

  // Decode the base dictionary back into the maximal-run decomposition of
  // its per-line vectors, truncated at the seam. Adjacent equal runs are
  // re-coalesced here so runs the encoder split at the kMaxCount cap come
  // back as one — the emitter below must see maximal runs to reproduce the
  // from-scratch encoding byte-for-byte.
  std::vector<VectorRun> head;
  head.reserve(base.dict_.size());
  auto add_head = [&head](uint64_t vec, uint64_t count) {
    if (count == 0) return;
    if (!head.empty() && head.back().vec == vec) {
      head.back().count += count;
    } else {
      head.push_back({vec, count});
    }
  };
  uint64_t line = 0;
  size_t vec_idx = 0;
  for (const DictEntry& e : base.dict_) {
    if (line >= seam_line) break;
    if (e.repeat) {
      uint64_t v = base.vectors_[vec_idx++];
      add_head(v, std::min<uint64_t>(e.count, seam_line - line));
      line += e.count;
    } else {
      for (uint32_t j = 0; j < e.count && line < seam_line; ++j, ++line) {
        add_head(base.vectors_[vec_idx + j], 1);
      }
      vec_idx += e.count;
    }
  }

  std::vector<std::vector<VectorRun>> tail_chunks;
  GEOCOL_RETURN_NOT_OK(BinarizeLines(column, ix.bins_, ix.values_per_line_,
                                     ix.num_rows_, seam_line, ix.num_lines_,
                                     pool, &tail_chunks));

  RunEmitter emitter(&ix.vectors_, &ix.dict_);
  for (const VectorRun& r : head) emitter.Add(r.vec, r.count);
  for (const auto& runs : tail_chunks) {
    for (const VectorRun& r : runs) emitter.Add(r.vec, r.count);
  }
  emitter.Finish();
  return ix;
}

Result<ImprintsIndex> ImprintsIndex::Restore(BinBounds bins,
                                             uint32_t values_per_line,
                                             uint64_t num_rows,
                                             uint64_t built_epoch,
                                             std::vector<uint64_t> vectors,
                                             std::vector<DictEntry> dict) {
  if (values_per_line == 0 || num_rows == 0) {
    return Status::Corruption("imprints restore: empty geometry");
  }
  uint64_t lines = (num_rows + values_per_line - 1) / values_per_line;
  uint64_t covered = 0, stored = 0;
  for (const DictEntry& e : dict) {
    if (e.count == 0) return Status::Corruption("imprints restore: zero run");
    covered += e.count;
    stored += e.repeat ? 1 : e.count;
  }
  if (covered != lines) {
    return Status::Corruption("imprints restore: dictionary covers " +
                              std::to_string(covered) + " of " +
                              std::to_string(lines) + " lines");
  }
  if (stored != vectors.size()) {
    return Status::Corruption("imprints restore: vector count mismatch");
  }
  ImprintsIndex ix;
  ix.bins_ = bins;
  ix.values_per_line_ = values_per_line;
  ix.num_rows_ = num_rows;
  ix.num_lines_ = lines;
  ix.built_epoch_ = built_epoch;
  ix.vectors_ = std::move(vectors);
  ix.dict_ = std::move(dict);
  return ix;
}

uint64_t ImprintsIndex::VectorAtLine(uint64_t line) const {
  assert(line < num_lines_);
  uint64_t at = 0;
  size_t vec_idx = 0;
  for (const DictEntry& e : dict_) {
    if (line < at + e.count) {
      return e.repeat ? vectors_[vec_idx] : vectors_[vec_idx + (line - at)];
    }
    at += e.count;
    vec_idx += e.repeat ? 1 : e.count;
  }
  return 0;
}

ImprintMask ImprintsIndex::MaskForRange(double lo, double hi) const {
  ImprintMask m;
  if (lo > hi) return m;  // empty query mask: nothing matches
  uint32_t nbins = bins_.num_bins();
  uint32_t bin_lo = bins_.BinOf(lo);
  uint32_t bin_hi = bins_.BinOf(hi);
  // Query mask: all bins from bin_lo to bin_hi inclusive.
  for (uint32_t b = bin_lo; b <= bin_hi && b < nbins; ++b) {
    m.query |= uint64_t{1} << b;
  }
  // Inner mask: bins strictly inside the query range. A boundary bin is
  // fully covered only when the query endpoint coincides with the bin edge;
  // we include bin_hi when hi equals its upper bound, and bin_lo when lo
  // lies at or below the previous bin's upper bound (i.e. lo is the bin's
  // open lower edge — only possible for bin 0 with lo == -inf, so in
  // practice the strict interior).
  for (uint32_t b = bin_lo + 1; b < bin_hi && b < nbins; ++b) {
    m.inner |= uint64_t{1} << b;
  }
  if (bin_hi < nbins && hi >= bins_.upper(bin_hi)) {
    m.inner |= uint64_t{1} << bin_hi;
  }
  if (bin_lo > 0 && lo <= bins_.upper(bin_lo - 1)) {
    // lo exactly on the open edge: every value of bin_lo is > upper(bin_lo-1)
    // >= lo only when lo < all bin values, which needs strict comparison;
    // since bins are (prev, cur] and lo <= prev bound, all bin values > lo.
    m.inner |= uint64_t{1} << bin_lo;
  } else if (bin_lo == 0 && lo <= -std::numeric_limits<double>::max()) {
    m.inner |= uint64_t{1};
  }
  // The inner mask may never admit bins outside the query mask.
  m.inner &= m.query;
  return m;
}

void ImprintsIndex::FilterRange(double lo, double hi, BitVector* candidates,
                                BitVector* full_lines) const {
  candidates->Resize(num_lines_);
  if (full_lines != nullptr) full_lines->Resize(num_lines_);
  FilterRangeRuns(lo, hi, [&](uint64_t first, uint64_t count, bool full) {
    candidates->SetRange(first, first + count);
    if (full && full_lines != nullptr) {
      full_lines->SetRange(first, first + count);
    }
  });
}

ImprintsStorage ImprintsIndex::Storage(uint64_t column_payload_bytes) const {
  ImprintsStorage s;
  s.num_lines = num_lines_;
  s.num_vectors = vectors_.size();
  s.num_dict_entries = dict_.size();
  s.vector_bytes = vectors_.size() * sizeof(uint64_t);
  s.dict_bytes = dict_.size() * sizeof(uint32_t);  // packed (count,repeat)
  s.bounds_bytes = bins_.num_bins() * sizeof(double);
  s.total_bytes = s.vector_bytes + s.dict_bytes + s.bounds_bytes;
  s.overhead_fraction =
      column_payload_bytes > 0
          ? static_cast<double>(s.total_bytes) / column_payload_bytes
          : 0.0;
  s.vectors_per_line =
      num_lines_ > 0 ? static_cast<double>(vectors_.size()) / num_lines_ : 0.0;
  return s;
}

}  // namespace geocol
