// Little-endian binary file I/O used by the column files, the LAS
// reader/writer and the binary bulk loader.
#ifndef GEOCOL_UTIL_BINARY_IO_H_
#define GEOCOL_UTIL_BINARY_IO_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace geocol {

/// Buffered binary writer over a stdio FILE.
///
/// All multi-byte values are written little-endian (the native order on the
/// platforms this library targets; asserted at build configuration time).
class BinaryWriter {
 public:
  BinaryWriter() = default;
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  /// Opens `path` for writing, truncating any existing file.
  Status Open(const std::string& path);
  Status Close();
  bool is_open() const { return file_ != nullptr; }

  Status WriteBytes(const void* data, size_t n);

  template <typename T>
  Status WriteScalar(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return WriteBytes(&value, sizeof(T));
  }

  template <typename T>
  Status WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return WriteBytes(v.data(), v.size() * sizeof(T));
  }

  /// Length-prefixed (uint32) string.
  Status WriteString(const std::string& s);

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  std::FILE* file_ = nullptr;
  uint64_t bytes_written_ = 0;
};

/// Buffered binary reader over a stdio FILE.
class BinaryReader {
 public:
  BinaryReader() = default;
  ~BinaryReader();

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  Status Open(const std::string& path);
  Status Close();
  bool is_open() const { return file_ != nullptr; }

  /// Reads exactly `n` bytes; Corruption on short read.
  Status ReadBytes(void* data, size_t n);

  template <typename T>
  Status ReadScalar(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadBytes(value, sizeof(T));
  }

  /// Reads `count` elements into `v` (resized).
  template <typename T>
  Status ReadVector(std::vector<T>* v, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    v->resize(count);
    return ReadBytes(v->data(), count * sizeof(T));
  }

  /// Length-prefixed (uint32) string; `max_len` bounds allocations on
  /// corrupt input.
  Status ReadString(std::string* s, uint32_t max_len = 1u << 20);

  Status Seek(uint64_t offset);
  Result<uint64_t> FileSize();

 private:
  std::FILE* file_ = nullptr;
};

/// Returns the size of `path` in bytes, or IOError.
Result<uint64_t> FileSizeBytes(const std::string& path);

/// True if `path` exists (file or directory).
bool PathExists(const std::string& path);

/// Writes `data` to `path` in one call (truncate semantics).
Status WriteFileBytes(const std::string& path, const void* data, size_t n);

/// Reads the whole file into `out`.
Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

}  // namespace geocol

#endif  // GEOCOL_UTIL_BINARY_IO_H_
