// Live ingestion under queries (DESIGN.md §13, ROADMAP item 4): a
// LiveTable is an epoch-versioned chain of immutable FlatTable snapshots.
//
//   - Readers call Pin() and get an EpochSnapshot: shared_ptr column
//     versions, the epoch's bbox, and a query engine bound to that exact
//     version. Everything a query touches is owned by the snapshot, so a
//     concurrent publish can never mutate, free, or re-index under it.
//   - Writers stage batches through a TableAppender and publish them with
//     a single atomic swap of the current-snapshot pointer. Columns are
//     copy-on-write (Column::CloneAppend): the new version is a NEW column
//     holding old bytes + tail, the old version stays untouched until its
//     last snapshot retires.
//   - All snapshots share one ImprintManager, so imprints of untouched
//     columns carry over for free and appended columns extend their
//     lineage base's index incrementally instead of rebuilding.
//   - The cache invalidates by construction: every published FlatTable has
//     a fresh process-unique table_id, which every selection key embeds.
//   - When backed by a directory, a publish is made durable by
//     WriteTableDir *before* the in-memory swap: the manifest rename is
//     the commit point, so a crash at any instant reopens as a complete
//     old-or-new epoch, never mixed data (the PR 2 crash-sweep guarantee).
#ifndef GEOCOL_CORE_LIVE_TABLE_H_
#define GEOCOL_CORE_LIVE_TABLE_H_

#include <memory>
#include <mutex>
#include <string>

#include "columns/flat_table.h"
#include "core/spatial_engine.h"
#include "geom/geometry.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace geocol {

/// An immutable view of one published epoch, pinned for the lifetime of
/// the holder. Copyable; copies share the underlying version.
struct EpochSnapshot {
  uint64_t epoch = 0;
  std::shared_ptr<FlatTable> table;  ///< this epoch's column versions
  std::shared_ptr<SpatialQueryEngine> engine;  ///< bound to `table`
  Box bbox;  ///< x/y bounds of the epoch (empty box for an empty table)
};

struct LiveTableOptions {
  /// Engine knobs for snapshot engines. `num_threads` sizes the one pool
  /// all snapshot engines share; `imprints_dir` is applied to the shared
  /// imprint manager once, at LiveTable construction.
  EngineOptions engine;
  /// Durable home of the table ("" = in-memory only: publishes are atomic
  /// but not crash-persistent).
  std::string dir;
  std::string x_column = "x";
  std::string y_column = "y";
};

/// The mutable handle: one current snapshot, swapped atomically by
/// appender commits. All members are safe to call concurrently.
class LiveTable {
 public:
  /// Wraps `initial` as epoch 0. When `options.dir` is set the initial
  /// version is persisted there first (so a crash right after Create
  /// reopens to the same state). `initial` must contain the configured
  /// x/y columns; it must not be mutated by the caller afterwards.
  static Result<std::shared_ptr<LiveTable>> Create(
      std::shared_ptr<FlatTable> initial, LiveTableOptions options = {});

  /// Reopens a directory previously written by Create/commits. Reads the
  /// manifest-current generation — after a crash mid-commit that is the
  /// last fully published epoch.
  static Result<std::shared_ptr<LiveTable>> Open(const std::string& dir,
                                                 LiveTableOptions options = {});

  /// Pins the current epoch. O(1): a mutex-protected shared_ptr copy.
  EpochSnapshot Pin() const;

  /// Epoch of the current snapshot (starts at 0, +1 per commit).
  uint64_t epoch() const;

  std::string name() const;
  const LiveTableOptions& options() const { return options_; }
  const std::shared_ptr<ImprintManager>& imprint_manager() const {
    return imprints_;
  }
  ThreadPool* pool() const { return pool_.get(); }

 private:
  friend class TableAppender;

  explicit LiveTable(LiveTableOptions options);

  /// Builds the snapshot wrapper (engine, bbox) for `next` and swaps it in
  /// as the next epoch. Caller must hold commit_mu_ (or be construction).
  void Publish(std::shared_ptr<FlatTable> next);

  EpochSnapshot MakeSnapshot(uint64_t epoch,
                             std::shared_ptr<FlatTable> table) const;

  LiveTableOptions options_;
  std::unique_ptr<ThreadPool> pool_;  ///< shared by all snapshot engines
  std::shared_ptr<ImprintManager> imprints_;
  mutable std::mutex mu_;  ///< guards current_
  std::shared_ptr<const EpochSnapshot> current_;
  std::mutex commit_mu_;  ///< serialises appender commits
};

}  // namespace geocol

#endif  // GEOCOL_CORE_LIVE_TABLE_H_
