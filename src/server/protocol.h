// Wire protocol for `geocol serve` (DESIGN.md §16): length-prefixed
// binary frames over a plain TCP stream.
//
//   frame: [u32 frame_len][u8 type][payload]      (frame_len = 1 + payload)
//
// Requests: HELLO (client id), QUERY (SQL text), PING. Responses:
// HELLO_OK, RESULT (canonical result-set image), ERROR (typed code +
// StatusCode + message, so a client can reconstruct the same Status a
// local sql::Session would have returned), PONG. All integers are
// little-endian host scalars, matching the column file formats — the
// server binds to localhost, not a cross-architecture network.
#ifndef GEOCOL_SERVER_PROTOCOL_H_
#define GEOCOL_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sql/executor.h"
#include "util/status.h"

namespace geocol {
namespace server {

enum class FrameType : uint8_t {
  // Requests.
  kHello = 1,
  kQuery = 2,
  kPing = 3,
  // Responses.
  kResult = 16,
  kError = 17,
  kPong = 18,
  kHelloOk = 19,
};

/// Why a request was refused (ErrorReply::code). kQueryFailed carries the
/// execution Status; the rest are server-side refusals that never reached
/// the engine.
enum class ErrorCode : uint8_t {
  kQueryFailed = 1,   ///< parse/plan/execute returned an error Status
  kBusy = 2,          ///< admission queue full — retry later
  kRateLimited = 3,   ///< per-client token bucket empty
  kShuttingDown = 4,  ///< server is draining; no new work accepted
  kTooLarge = 5,      ///< request frame exceeds the configured cap
  kMalformed = 6,     ///< unparseable frame or unknown frame type
};

const char* ErrorCodeName(ErrorCode code);

/// Payload of a kError response.
struct ErrorReply {
  ErrorCode code = ErrorCode::kQueryFailed;
  StatusCode status_code = StatusCode::kInternal;
  std::string message;

  /// The Status a local session would have produced (oracle-comparable
  /// for kQueryFailed; a typed server-side Status otherwise).
  Status ToStatus() const { return Status(status_code, message); }
};

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kPing;
  std::vector<uint8_t> payload;
};

/// Default cap on any frame a peer will accept (responses can carry large
/// result sets; requests are capped much lower by ServerOptions).
constexpr uint32_t kMaxResponseFrameBytes = 256u << 20;

/// Writes one frame to `fd`, looping over partial sends (MSG_NOSIGNAL, so
/// a peer hangup surfaces as an IOError, not SIGPIPE). A payload that
/// would not fit a legal frame (>= kMaxResponseFrameBytes) is refused
/// with OutOfRange before any byte hits the wire — never encoded as a
/// truncated/oversized length prefix.
Status WriteFrame(int fd, FrameType type, const std::vector<uint8_t>& payload);

/// Disables Nagle on a connected socket. The protocol is strict
/// request/response with small frames; without this, the header+payload
/// split interacts with delayed ACKs for a ~40ms stall per direction.
void SetNoDelay(int fd);

/// Reads one frame. A clean EOF at a frame boundary is NotFound
/// ("connection closed"); a length prefix over `max_frame_bytes` is
/// OutOfRange (the stream is unrecoverable past it — answer kTooLarge and
/// close); a zero-length frame or short read mid-frame is Corruption.
Result<Frame> ReadFrame(int fd, uint32_t max_frame_bytes);

// ---- Payload codecs. Hello/Query payloads are the raw string bytes.

std::vector<uint8_t> EncodeError(const ErrorReply& reply);
Result<ErrorReply> DecodeError(const std::vector<uint8_t>& payload);

/// Result-set wire image: exactly the canonical digest byte image
/// (columns, rows, per-cell kind + exact double bits / text), so
/// `ResultSetDigest(DecodeResultSet(EncodeResultSet(rs)))` equals
/// `ResultSetDigest(rs)` bit-for-bit. The profile does not travel.
std::vector<uint8_t> EncodeResultSet(const sql::ResultSet& rs);
Result<sql::ResultSet> DecodeResultSet(const std::vector<uint8_t>& payload);

}  // namespace server
}  // namespace geocol

#endif  // GEOCOL_SERVER_PROTOCOL_H_
