#include "geom/geometry.h"

#include <cmath>

namespace geocol {

Box LineString::Envelope() const {
  Box b;
  for (const Point& p : points) b.Extend(p);
  return b;
}

double LineString::Length() const {
  double len = 0.0;
  for (size_t i = 1; i < points.size(); ++i) {
    double dx = points[i].x - points[i - 1].x;
    double dy = points[i].y - points[i - 1].y;
    len += std::sqrt(dx * dx + dy * dy);
  }
  return len;
}

Box Ring::Envelope() const {
  Box b;
  for (const Point& p : points) b.Extend(p);
  return b;
}

double Ring::SignedArea() const {
  double a = 0.0;
  size_t n = points.size();
  if (n < 3) return 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Point& p = points[i];
    const Point& q = points[(i + 1) % n];
    a += p.x * q.y - q.x * p.y;
  }
  return a / 2.0;
}

Box Polygon::Envelope() const { return shell.Envelope(); }

double Polygon::Area() const {
  double a = shell.Area();
  for (const Ring& h : holes) a -= h.Area();
  return a;
}

Polygon Polygon::FromBox(const Box& box) {
  Polygon p;
  p.shell.points = {{box.min_x, box.min_y},
                    {box.max_x, box.min_y},
                    {box.max_x, box.max_y},
                    {box.min_x, box.max_y}};
  return p;
}

Polygon Polygon::Circle(const Point& center, double radius, int segments) {
  Polygon p;
  p.shell.points.reserve(segments);
  for (int i = 0; i < segments; ++i) {
    double a = 2.0 * M_PI * i / segments;
    p.shell.points.push_back(
        {center.x + radius * std::cos(a), center.y + radius * std::sin(a)});
  }
  return p;
}

Box MultiPolygon::Envelope() const {
  Box b;
  for (const Polygon& p : polygons) b.Extend(p.Envelope());
  return b;
}

double MultiPolygon::Area() const {
  double a = 0.0;
  for (const Polygon& p : polygons) a += p.Area();
  return a;
}

const char* GeometryTypeName(GeometryType t) {
  switch (t) {
    case GeometryType::kPoint: return "POINT";
    case GeometryType::kLineString: return "LINESTRING";
    case GeometryType::kPolygon: return "POLYGON";
    case GeometryType::kMultiPolygon: return "MULTIPOLYGON";
    case GeometryType::kBox: return "BOX";
  }
  return "UNKNOWN";
}

Box Geometry::Envelope() const {
  switch (type_) {
    case GeometryType::kPoint: {
      Box b;
      b.Extend(point_);
      return b;
    }
    case GeometryType::kBox: return box_;
    case GeometryType::kLineString: return line_->Envelope();
    case GeometryType::kPolygon: return polygon_->Envelope();
    case GeometryType::kMultiPolygon: return multi_->Envelope();
  }
  return Box();
}

}  // namespace geocol
