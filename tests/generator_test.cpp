// Synthetic data generator tests: terrain determinism and plausibility,
// AHN tile streaming, acquisition-order clustering, table reorganisation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "pointcloud/generator.h"
#include "pointcloud/terrain.h"
#include "sfc/morton.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

AhnGeneratorOptions SmallOptions() {
  AhnGeneratorOptions opts;
  opts.extent = Box(85000, 444000, 85200, 444200);  // 200x200 m
  opts.point_density = 2.0;
  opts.strip_width = 60.0;
  opts.scan_line_spacing = 0.7;
  opts.target_points_per_tile = 20000;
  return opts;
}

TEST(TerrainTest, Deterministic) {
  TerrainModel a(42), b(42);
  for (double x = 0; x < 1000; x += 97) {
    for (double y = 0; y < 1000; y += 89) {
      EXPECT_EQ(a.GroundElevation(x, y), b.GroundElevation(x, y));
      SurfaceSample sa = a.SampleAt(x, y);
      SurfaceSample sb = b.SampleAt(x, y);
      EXPECT_EQ(sa.elevation, sb.elevation);
      EXPECT_EQ(sa.classification, sb.classification);
    }
  }
}

TEST(TerrainTest, DifferentSeedsDifferentTerrain) {
  TerrainModel a(1), b(2);
  int diff = 0;
  for (double x = 0; x < 2000; x += 111) {
    diff += a.GroundElevation(x, x) != b.GroundElevation(x, x);
  }
  EXPECT_GT(diff, 10);
}

TEST(TerrainTest, ElevationInDutchRange) {
  TerrainModel t(7);
  for (double x = 0; x < 5000; x += 53) {
    for (double y = 0; y < 5000; y += 47) {
      SurfaceSample s = t.SampleAt(x, y);
      EXPECT_GT(s.elevation, -20.0);
      EXPECT_LT(s.elevation, 120.0);  // ground + buildings + canopy
    }
  }
}

TEST(TerrainTest, ProducesAllMajorClasses) {
  TerrainModel t(20150831);
  std::set<uint8_t> classes;
  for (double x = 0; x < 20000; x += 13) {
    classes.insert(t.SampleAt(x, x * 0.7).classification);
  }
  EXPECT_TRUE(classes.count(kClassGround));
  EXPECT_TRUE(classes.count(kClassWater));
  EXPECT_TRUE(classes.count(kClassBuilding));
  bool veg = classes.count(kClassLowVegetation) ||
             classes.count(kClassMediumVegetation) ||
             classes.count(kClassHighVegetation);
  EXPECT_TRUE(veg);
}

TEST(TerrainTest, WaterIsFlatAndLow) {
  TerrainModel t(9);
  for (double x = 0; x < 20000 ; x += 31) {
    if (t.IsWater(x, 100)) {
      SurfaceSample s = t.SampleAt(x, 100);
      EXPECT_EQ(s.classification, kClassWater);
      EXPECT_LE(s.elevation, -0.5);
      EXPECT_LT(s.nir, 50);  // water absorbs NIR
    }
  }
}

TEST(TerrainTest, BuildingsAreElevated) {
  // Urban kernels are sparse, so sample a 2-D sweep rather than a line.
  TerrainModel t(11);
  int found = 0;
  for (double x = 0; x < 20000 && found < 20; x += 41) {
    for (double y = 0; y < 20000 && found < 20; y += 37) {
      SurfaceSample s = t.SampleAt(x, y);
      if (s.classification == kClassBuilding) {
        ++found;
        EXPECT_GT(s.elevation - t.GroundElevation(x, y), 3.0);
      }
    }
  }
  EXPECT_GT(found, 0);
}

// ---------------- AHN generator ----------------

TEST(AhnGeneratorTest, EstimatedPointsMatchesDensity) {
  AhnGenerator gen(SmallOptions());
  // 200*200 m^2 * 2 pts/m^2 = 80000
  EXPECT_EQ(gen.EstimatedPoints(), 80000u);
}

TEST(AhnGeneratorTest, TilesStreamInOrderAndRespectSize) {
  AhnGenerator gen(SmallOptions());
  uint64_t total = 0, tiles = 0, last_index = 0;
  ASSERT_TRUE(gen.GenerateTiles([&](LasTile& tile, uint64_t idx) {
    EXPECT_EQ(idx, tiles);
    last_index = idx;
    EXPECT_LE(tile.points.size(), 20000u);
    EXPECT_FALSE(tile.points.empty());
    total += tile.points.size();
    ++tiles;
    return Status::OK();
  }).ok());
  EXPECT_GT(tiles, 1u);
  EXPECT_EQ(last_index, tiles - 1);
  // Within 30% of the density estimate.
  EXPECT_NEAR(static_cast<double>(total), 80000.0, 80000.0 * 0.3);
}

TEST(AhnGeneratorTest, ConsumerErrorStopsGeneration) {
  AhnGenerator gen(SmallOptions());
  int calls = 0;
  Status st = gen.GenerateTiles([&](LasTile&, uint64_t) {
    ++calls;
    return Status::IOError("disk full");
  });
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(calls, 1);
}

TEST(AhnGeneratorTest, PointsInsideExtentWithFullSchema) {
  AhnGeneratorOptions opts = SmallOptions();
  AhnGenerator gen(opts);
  ASSERT_TRUE(gen.GenerateTiles([&](LasTile& tile, uint64_t) {
    for (const auto& p : tile.points) {
      double wx = tile.WorldX(p), wy = tile.WorldY(p);
      EXPECT_GE(wx, opts.extent.min_x - 0.01);
      EXPECT_LE(wx, opts.extent.max_x + 0.01);
      EXPECT_GE(wy, opts.extent.min_y - 0.01);
      EXPECT_LE(wy, opts.extent.max_y + 0.01);
      EXPECT_GE(p.return_number, 1);
      EXPECT_LE(p.return_number, p.number_of_returns);
      EXPECT_GE(p.scan_angle, -30);
      EXPECT_LE(p.scan_angle, 30);
      EXPECT_GT(p.point_source_id, 0);  // strip id
    }
    return Status::OK();
  }).ok());
}

TEST(AhnGeneratorTest, DeterministicAcrossRuns) {
  AhnGenerator g1(SmallOptions());
  AhnGenerator g2(SmallOptions());
  std::vector<int32_t> xs1, xs2;
  ASSERT_TRUE(g1.GenerateTiles([&](LasTile& t, uint64_t) {
    for (const auto& p : t.points) xs1.push_back(p.x);
    return Status::OK();
  }).ok());
  ASSERT_TRUE(g2.GenerateTiles([&](LasTile& t, uint64_t) {
    for (const auto& p : t.points) xs2.push_back(p.x);
    return Status::OK();
  }).ok());
  EXPECT_EQ(xs1, xs2);
}

TEST(AhnGeneratorTest, GenerateTableApproximatesRequestedCount) {
  AhnGenerator gen(SmallOptions());
  auto table = gen.GenerateTable(50000);
  ASSERT_TRUE(table.ok());
  EXPECT_NEAR(static_cast<double>((*table)->num_rows()), 50000.0,
              50000.0 * 0.3);
  EXPECT_EQ((*table)->num_columns(), kLasAttributeCount);
}

TEST(AhnGeneratorTest, AcquisitionOrderIsLocallyClustered) {
  AhnGenerator gen(SmallOptions());
  auto table = gen.GenerateTable(40000);
  ASSERT_TRUE(table.ok());
  ColumnPtr y = (*table)->column("y");
  // Consecutive points must be near each other in y far more often than
  // random pairs would be (flight-strip ordering).
  double near = 0;
  uint64_t n = y->size();
  for (uint64_t i = 1; i < n; ++i) {
    near += std::abs(y->GetDouble(i) - y->GetDouble(i - 1)) < 5.0;
  }
  EXPECT_GT(near / n, 0.9);
}

TEST(AhnGeneratorTest, WriteTileDirectory) {
  TempDir tmp;
  AhnGenerator gen(SmallOptions());
  auto tiles = gen.WriteTileDirectory(tmp.path(), /*compress=*/true);
  ASSERT_TRUE(tiles.ok());
  EXPECT_GT(*tiles, 0u);
  std::vector<std::string> files;
  ASSERT_TRUE(ListFiles(tmp.path(), ".laz", &files).ok());
  EXPECT_EQ(files.size(), *tiles);
}

// ---------------- table reorganisation ----------------

TEST(ReorganiseTest, ShuffleKeepsRowIntegrity) {
  AhnGenerator gen(SmallOptions());
  auto table_res = gen.GenerateTable(20000);
  ASSERT_TRUE(table_res.ok());
  auto table = *table_res;
  // Capture (x, y, z) multiset fingerprint before.
  ColumnPtr x = table->column("x"), y = table->column("y"),
            z = table->column("z");
  std::multiset<std::tuple<double, double, double>> before;
  for (uint64_t r = 0; r < table->num_rows(); ++r) {
    before.emplace(x->GetDouble(r), y->GetDouble(r), z->GetDouble(r));
  }
  uint64_t epoch_before = x->epoch();
  ShuffleTableRows(table.get(), 999);
  EXPECT_GT(x->epoch(), epoch_before);
  std::multiset<std::tuple<double, double, double>> after;
  for (uint64_t r = 0; r < table->num_rows(); ++r) {
    after.emplace(x->GetDouble(r), y->GetDouble(r), z->GetDouble(r));
  }
  EXPECT_EQ(before, after) << "shuffle must permute rows, not corrupt them";
}

TEST(ReorganiseTest, ShuffleDestroysLocality) {
  AhnGenerator gen(SmallOptions());
  auto table = *gen.GenerateTable(20000);
  ColumnPtr y = table->column("y");
  auto locality = [&]() {
    double near = 0;
    for (uint64_t i = 1; i < y->size(); ++i) {
      near += std::abs(y->GetDouble(i) - y->GetDouble(i - 1)) < 5.0;
    }
    return near / y->size();
  };
  double before = locality();
  ShuffleTableRows(table.get(), 1000);
  double after = locality();
  EXPECT_LT(after, before / 2);
}

TEST(ReorganiseTest, MortonSortRestoresSpatialLocality) {
  AhnGenerator gen(SmallOptions());
  auto table = *gen.GenerateTable(20000);
  ShuffleTableRows(table.get(), 1001);
  ASSERT_TRUE(SortTableMorton(table.get()).ok());
  ColumnPtr x = table->column("x"), y = table->column("y");
  // After the sort, Morton codes must be non-decreasing.
  Box extent;
  for (uint64_t r = 0; r < table->num_rows(); ++r) {
    extent.Extend(x->GetDouble(r), y->GetDouble(r));
  }
  uint64_t prev = 0;
  for (uint64_t r = 0; r < table->num_rows(); ++r) {
    uint64_t code =
        MortonEncodeScaled(x->GetDouble(r), y->GetDouble(r), extent);
    ASSERT_GE(code, prev) << "row " << r;
    prev = code;
  }
}

TEST(ReorganiseTest, MakeUniformColumn) {
  auto col = MakeUniformColumn("u", 10000, -5, 5, 77);
  EXPECT_EQ(col->size(), 10000u);
  EXPECT_GE(col->Stats().min, -5.0);
  EXPECT_LE(col->Stats().max, 5.0);
  auto col2 = MakeUniformColumn("u", 10000, -5, 5, 77);
  EXPECT_EQ(col->GetDouble(123), col2->GetDouble(123));  // deterministic
}

}  // namespace
}  // namespace geocol
