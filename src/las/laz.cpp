#include "las/laz.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/bitpack.h"

namespace geocol {

namespace {

// Each attribute is compressed as a stream of int64s (floats/doubles go
// through their bit representation, which still deltas well for smooth
// signals like gps_time).
constexpr size_t kNumStreams = 26;

void ExtractStream(const std::vector<LasPointRecord>& pts, size_t stream,
                   size_t begin, size_t end, std::vector<int64_t>* vals) {
  vals->clear();
  vals->reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    const LasPointRecord& p = pts[i];
    int64_t v = 0;
    switch (stream) {
      case 0: v = p.x; break;
      case 1: v = p.y; break;
      case 2: v = p.z; break;
      case 3: v = p.intensity; break;
      case 4: v = p.return_number; break;
      case 5: v = p.number_of_returns; break;
      case 6: v = p.scan_direction; break;
      case 7: v = p.edge_of_flight_line; break;
      case 8: v = p.classification; break;
      case 9: v = p.synthetic_flag; break;
      case 10: v = p.key_point_flag; break;
      case 11: v = p.withheld_flag; break;
      case 12: v = p.scan_angle; break;
      case 13: v = p.user_data; break;
      case 14: v = p.point_source_id; break;
      case 15: {
        uint64_t bits;
        std::memcpy(&bits, &p.gps_time, 8);
        v = static_cast<int64_t>(bits);
        break;
      }
      case 16: v = p.red; break;
      case 17: v = p.green; break;
      case 18: v = p.blue; break;
      case 19: v = p.nir; break;
      case 20: v = p.wave_descriptor; break;
      case 21: v = static_cast<int64_t>(p.wave_offset); break;
      case 22: v = p.wave_packet_size; break;
      case 23: {
        uint32_t bits;
        std::memcpy(&bits, &p.wave_return_location, 4);
        v = bits;
        break;
      }
      case 24: {
        uint32_t bits;
        std::memcpy(&bits, &p.wave_x, 4);
        v = bits;
        break;
      }
      case 25: {
        uint32_t bits;
        std::memcpy(&bits, &p.wave_y, 4);
        v = bits;
        break;
      }
    }
    vals->push_back(v);
  }
}

void InjectStream(std::vector<LasPointRecord>* pts, size_t stream,
                  size_t begin, const std::vector<int64_t>& vals) {
  for (size_t i = 0; i < vals.size(); ++i) {
    LasPointRecord& p = (*pts)[begin + i];
    int64_t v = vals[i];
    switch (stream) {
      case 0: p.x = static_cast<int32_t>(v); break;
      case 1: p.y = static_cast<int32_t>(v); break;
      case 2: p.z = static_cast<int32_t>(v); break;
      case 3: p.intensity = static_cast<uint16_t>(v); break;
      case 4: p.return_number = static_cast<uint8_t>(v); break;
      case 5: p.number_of_returns = static_cast<uint8_t>(v); break;
      case 6: p.scan_direction = static_cast<uint8_t>(v); break;
      case 7: p.edge_of_flight_line = static_cast<uint8_t>(v); break;
      case 8: p.classification = static_cast<uint8_t>(v); break;
      case 9: p.synthetic_flag = static_cast<uint8_t>(v); break;
      case 10: p.key_point_flag = static_cast<uint8_t>(v); break;
      case 11: p.withheld_flag = static_cast<uint8_t>(v); break;
      case 12: p.scan_angle = static_cast<int8_t>(v); break;
      case 13: p.user_data = static_cast<uint8_t>(v); break;
      case 14: p.point_source_id = static_cast<uint16_t>(v); break;
      case 15: {
        uint64_t bits = static_cast<uint64_t>(v);
        std::memcpy(&p.gps_time, &bits, 8);
        break;
      }
      case 16: p.red = static_cast<uint16_t>(v); break;
      case 17: p.green = static_cast<uint16_t>(v); break;
      case 18: p.blue = static_cast<uint16_t>(v); break;
      case 19: p.nir = static_cast<uint16_t>(v); break;
      case 20: p.wave_descriptor = static_cast<uint8_t>(v); break;
      case 21: p.wave_offset = static_cast<uint64_t>(v); break;
      case 22: p.wave_packet_size = static_cast<uint32_t>(v); break;
      case 23: {
        uint32_t bits = static_cast<uint32_t>(v);
        std::memcpy(&p.wave_return_location, &bits, 4);
        break;
      }
      case 24: {
        uint32_t bits = static_cast<uint32_t>(v);
        std::memcpy(&p.wave_x, &bits, 4);
        break;
      }
      case 25: {
        uint32_t bits = static_cast<uint32_t>(v);
        std::memcpy(&p.wave_y, &bits, 4);
        break;
      }
    }
  }
}

}  // namespace

Status LazCompress(const std::vector<LasPointRecord>& points,
                   std::vector<uint8_t>* out) {
  out->clear();
  std::vector<int64_t> vals;
  for (size_t begin = 0; begin < points.size() || begin == 0;
       begin += kLazChunkSize) {
    size_t end = std::min(points.size(), begin + kLazChunkSize);
    if (begin >= end && begin > 0) break;
    for (size_t stream = 0; stream < kNumStreams; ++stream) {
      ExtractStream(points, stream, begin, end, &vals);
      // Delta + zigzag; the first value is the chunk base.
      uint64_t max_zz = 0;
      int64_t prev = 0;
      std::vector<uint64_t> zz(vals.size());
      for (size_t i = 0; i < vals.size(); ++i) {
        zz[i] = ZigZagEncode(vals[i] - prev);
        prev = vals[i];
        max_zz = std::max(max_zz, zz[i]);
      }
      uint8_t bits = max_zz == 0
                         ? 0
                         : static_cast<uint8_t>(64 - std::countl_zero(max_zz));
      out->push_back(bits);
      BitWriter bw(out);
      for (uint64_t z : zz) bw.Write(z, bits);
      bw.FlushByte();
    }
    if (end == points.size()) break;
  }
  return Status::OK();
}

Status LazDecompress(const std::vector<uint8_t>& data, uint64_t count,
                     std::vector<LasPointRecord>* out) {
  out->assign(count, LasPointRecord{});
  size_t byte_pos = 0;
  std::vector<int64_t> vals;
  for (size_t begin = 0; begin < count || begin == 0; begin += kLazChunkSize) {
    size_t end = std::min<size_t>(count, begin + kLazChunkSize);
    if (begin >= end && begin > 0) break;
    size_t n = end - begin;
    for (size_t stream = 0; stream < kNumStreams; ++stream) {
      if (byte_pos >= data.size()) {
        return Status::Corruption("LAZ payload truncated (missing bit width)");
      }
      uint8_t bits = data[byte_pos];
      BitReader chunk(data.data() + byte_pos + 1, data.size() - byte_pos - 1);
      vals.assign(n, 0);
      int64_t prev = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t z = 0;
        if (bits > 0 && !chunk.Read(&z, bits)) {
          return Status::Corruption("LAZ payload truncated (stream data)");
        }
        prev += ZigZagDecode(z);
        vals[i] = prev;
      }
      InjectStream(out, stream, begin, vals);
      size_t stream_bytes = (static_cast<size_t>(bits) * n + 7) / 8;
      byte_pos += 1 + stream_bytes;
    }
    if (end == count) break;
  }
  return Status::OK();
}

}  // namespace geocol
