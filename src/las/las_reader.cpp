#include "las/las_reader.h"

#include <cstring>

#include "las/laz.h"
#include "util/binary_io.h"

namespace geocol {

namespace {
constexpr char kLasMagic[4] = {'G', 'L', 'A', 'S'};

Status ReadHeader(BinaryReader* r, LasHeader* h) {
  char magic[4];
  GEOCOL_RETURN_NOT_OK(r->ReadBytes(magic, 4));
  if (std::memcmp(magic, kLasMagic, 4) != 0) {
    return Status::Corruption("not a GLAS tile (bad magic)");
  }
  GEOCOL_RETURN_NOT_OK(r->ReadScalar(&h->point_count));
  for (double& v : h->scale) GEOCOL_RETURN_NOT_OK(r->ReadScalar(&v));
  for (double& v : h->offset) GEOCOL_RETURN_NOT_OK(r->ReadScalar(&v));
  for (double& v : h->min_world) GEOCOL_RETURN_NOT_OK(r->ReadScalar(&v));
  for (double& v : h->max_world) GEOCOL_RETURN_NOT_OK(r->ReadScalar(&v));
  GEOCOL_RETURN_NOT_OK(r->ReadScalar(&h->record_length));
  GEOCOL_RETURN_NOT_OK(r->ReadScalar(&h->compressed));
  if (h->record_length != kLasRecordBytes) {
    return Status::Corruption("unsupported record length " +
                              std::to_string(h->record_length));
  }
  for (int a = 0; a < 3; ++a) {
    if (h->scale[a] <= 0.0) return Status::Corruption("non-positive scale");
  }
  return Status::OK();
}
}  // namespace

Result<LasHeader> ReadLasHeader(const std::string& path) {
  BinaryReader r;
  GEOCOL_RETURN_NOT_OK(r.Open(path));
  LasHeader h;
  GEOCOL_RETURN_NOT_OK(ReadHeader(&r, &h));
  return h;
}

Result<LasTile> ReadLasFile(const std::string& path) {
  BinaryReader r;
  GEOCOL_RETURN_NOT_OK(r.Open(path));
  LasTile tile;
  GEOCOL_RETURN_NOT_OK(ReadHeader(&r, &tile.header));
  uint64_t n = tile.header.point_count;
  if (tile.header.compressed != 0) {
    uint64_t payload_size = 0;
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&payload_size));
    GEOCOL_ASSIGN_OR_RETURN(uint64_t file_size, r.FileSize());
    if (payload_size > file_size) {
      return Status::Corruption("LAZ payload size exceeds file size");
    }
    std::vector<uint8_t> payload(payload_size);
    GEOCOL_RETURN_NOT_OK(r.ReadBytes(payload.data(), payload.size()));
    GEOCOL_RETURN_NOT_OK(LazDecompress(payload, n, &tile.points));
  } else {
    std::vector<uint8_t> buf;
    GEOCOL_RETURN_NOT_OK(r.ReadVector(&buf, n * kLasRecordBytes));
    tile.points.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      DeserializeRecord(buf.data() + i * kLasRecordBytes, &tile.points[i]);
    }
  }
  return tile;
}

}  // namespace geocol
