// The paged (out-of-core) storage tier behind the Column interface
// (DESIGN.md §14). A PagedColumn keeps only its chunk directory in
// memory; the 256 KiB CRC chunks of the column file are the paging unit,
// faulted on demand with positioned reads, CRC-verified at fault time,
// and cached in the process-wide budgeted ChunkCache. Scans walk pins
// (ForEachValueRun), so imprint pruning translates directly into chunks
// that are never read.
//
// Two on-disk layouts page:
//   - "GCL2" column files as written by WriteColumnFile: raw values, one
//     CRC per 256 KiB chunk. Faults are a single pread + CRC check.
//   - "GPC1" chunked-compressed files (written here): every 256 KiB
//     decoded chunk is compressed independently with the compression.h
//     codecs, so a fault is pread + CRC check + decompress-on-demand.
//     The whole-column "GCC2" .gcz format cannot page (one codec stream,
//     no chunk boundaries); WriteChunkedCompressedTableDir is its
//     paged-capable replacement, and resident opens of GPC1 files keep
//     working through ReadCompressedColumnFile.
//
// Paged columns are read-only: every mutation path (appends, shuffles,
// rewrites) returns InvalidArgument upstream. They pin epoch 1 — the
// epoch a resident single-AppendRaw load lands on — so imprint sidecars
// built against either open mode of the same file validate
// interchangeably.
#ifndef GEOCOL_COLUMNS_PAGED_COLUMN_H_
#define GEOCOL_COLUMNS_PAGED_COLUMN_H_

#include <memory>
#include <string>
#include <vector>

#include "columns/column.h"
#include "columns/compression.h"
#include "columns/flat_table.h"
#include "util/status.h"

namespace geocol {

class PagedColumn : public Column {
 public:
  ~PagedColumn() override;

  /// Opens a "GCL2" or "GPC1" file for demand paging: parses and verifies
  /// the header and chunk directory, touches no payload. Legacy and
  /// whole-column-compressed files are InvalidArgument.
  static Result<std::shared_ptr<PagedColumn>> Open(const std::string& path,
                                                   const std::string& name);

  size_t size() const override { return static_cast<size_t>(rows_); }
  bool paged() const override { return true; }
  size_t chunk_rows() const override { return chunk_rows_; }
  size_t num_chunks() const override { return chunks_.size(); }

  /// Faults (or finds cached) one chunk. The pin shares ownership with
  /// the cache, so concurrent evictions never free it under the caller.
  Result<ColumnChunkPin> PinChunk(size_t chunk_index) const override;

  double GetDouble(size_t row) const override;
  Status GetDoubleBatch(const uint64_t* rows, size_t n,
                        double* out) const override;
  int64_t GetInt64(size_t row) const override;

  /// Lazy min/max via one streaming pass over the chunks. A fault failure
  /// during the pass degrades to the conservative (-inf, +inf) range —
  /// pruning built on it never excludes anything, so answers stay
  /// correct and the I/O error surfaces from the scan that needs the
  /// actual values.
  const ColumnStats& Stats() const override;

  /// Answered from the on-disk chunk CRCs (Crc32cCombine) without
  /// faulting a single payload byte, so imprint sidecar fingerprints
  /// agree with the resident open of the same file.
  uint32_t payload_crc32c() const override { return payload_crc_; }

  size_t raw_size_bytes() const override {
    return static_cast<size_t>(rows_) * width();
  }

  /// Directory overhead only — faulted chunks are charged to the
  /// process-wide chunk cache, not to the column.
  size_t MemoryBytes() const override;

  const std::string& path() const { return path_; }
  /// Process-unique chunk-cache keying id of this open.
  uint64_t file_id() const { return file_id_; }
  /// True for GPC1 files (faults decompress), false for GCL2 (raw).
  bool compressed() const { return compressed_; }

 private:
  struct ChunkInfo {
    uint64_t offset = 0;        ///< file offset of the stored bytes
    uint32_t stored_bytes = 0;  ///< on-disk bytes (== decoded for GCL2)
    uint32_t crc = 0;           ///< CRC32C of the stored bytes
    uint8_t codec = 0;          ///< ColumnCodec (kRaw for GCL2)
  };

  PagedColumn(std::string name, DataType type);

  size_t RowsInChunk(size_t chunk_index) const;
  /// Reads, verifies and (for GPC1) decompresses one chunk from disk.
  Result<std::shared_ptr<const std::vector<uint8_t>>> FaultChunk(
      size_t chunk_index) const;

  std::string path_;
  uint64_t file_id_ = 0;
  uint64_t rows_ = 0;
  size_t chunk_rows_ = 0;
  uint32_t payload_crc_ = 0;
  bool compressed_ = false;
  std::vector<ChunkInfo> chunks_;
  mutable std::mutex paged_stats_mu_;
  mutable ColumnStats paged_stats_;
};

/// PagedColumn::Open as a ColumnPtr — the drop-in counterpart of
/// ReadColumnFile for the paged open mode.
Result<ColumnPtr> OpenPagedColumnFile(const std::string& path,
                                      const std::string& name);

/// Writes `column` as a chunked-compressed "GPC1" file (atomically):
/// magic | type u8 | count u64 | chunk_bytes u32 | payload crc | header
/// crc | per-chunk {codec u8, bytes u32, crc u32} directory | compressed
/// chunks. Every chunk is encoded independently (kAuto picks per chunk),
/// which is what makes decompress-on-demand possible.
Status WriteChunkedCompressedColumnFile(const Column& column,
                                        const std::string& path,
                                        ColumnCodec codec = ColumnCodec::kAuto,
                                        CompressionStats* stats = nullptr);

/// True when `data` starts with the GPC1 magic.
bool IsChunkedCompressedBuffer(const uint8_t* data, size_t size);

/// Decodes a whole GPC1 buffer into a resident column — the resident
/// open path of chunked-compressed files (ReadCompressedColumnFile
/// delegates here on the GPC1 magic). Verifies every chunk CRC plus the
/// whole-payload CRC.
Result<ColumnPtr> DecompressChunkedColumn(const std::vector<uint8_t>& data,
                                          const std::string& name);

/// Persists a table with per-chunk compression: `<dir>/schema.gct` +
/// `<dir>/<col>.gN.gcz` GPC1 files, same generation/manifest-swap
/// protocol as WriteTableDir. The result opens resident
/// (ReadCompressedTableDir) and paged (ReadTableDirPaged) with
/// bit-identical contents.
Status WriteChunkedCompressedTableDir(const FlatTable& table,
                                      const std::string& dir,
                                      uint64_t* total_bytes = nullptr);

/// Opens every column of a persisted table for demand paging. Works on
/// WriteTableDir output (GCL2) and WriteChunkedCompressedTableDir output
/// (GPC1); legacy and whole-column-compressed tables must open resident.
Result<FlatTable> ReadTableDirPaged(const std::string& dir);

}  // namespace geocol

#endif  // GEOCOL_COLUMNS_PAGED_COLUMN_H_
