// E8 (ablation): how much each design choice of the paper's architecture
// contributes. The same polygon workload runs with engine features toggled
// (imprints on/off, grid refinement on/off), against the Morton-SFC
// alternative of §2.3, and the storage section ablates the column codecs
// of §3.1.
#include <cstdio>

#include "baselines/sfc_index.h"
#include "bench/bench_common.h"
#include "columns/compression.h"
#include "core/spatial_engine.h"

using namespace geocol;
using namespace geocol::bench;

int main(int argc, char** argv) {
  geocol::bench::InitBench(argc, argv);
  const uint64_t n = BenchPoints(1000000);
  Banner("E8: design-choice ablation",
         "engine feature toggles + SFC alternative + column codecs");

  auto table = GenerateSurvey(n);
  Box extent(table->column("x")->Stats().min, table->column("y")->Stats().min,
             table->column("x")->Stats().max, table->column("y")->Stats().max);
  Point c = extent.center();
  double r = std::min(extent.width(), extent.height()) * 0.18;
  Geometry polygon(Polygon::Circle(c, r, 256));
  Box box(c.x - r, c.y - r, c.x + r, c.y + r);

  std::printf("survey: %llu points; query: 256-gon of radius %.0f m\n",
              static_cast<unsigned long long>(table->num_rows()), r);

  // ---- engine configuration ablation.
  struct Config {
    const char* name;
    bool imprints;
    bool grid;
  } configs[] = {
      {"imprints + grid (paper)", true, true},
      {"imprints, exhaustive refine", true, false},
      {"full scan + grid", false, true},
      {"full scan, exhaustive", false, false},
  };
  TablePrinter out({"configuration", "results", "latency ms", "vs paper"});
  double paper_ms = 0;
  for (const Config& cfg : configs) {
    EngineOptions opts;
    opts.use_imprints = cfg.imprints;
    opts.refine.use_grid = cfg.grid;
    opts.num_threads = 1;  // single-threaded, comparable with the baselines
    SpatialQueryEngine engine(table, opts);
    (void)engine.SelectInGeometry(polygon);  // warm: builds imprints
    uint64_t results = 0;
    double ms = TimeMs([&] {
      auto res = engine.SelectInGeometry(polygon);
      results = res.ok() ? res->count() : 0;
    });
    if (paper_ms == 0) paper_ms = ms;
    out.Row({cfg.name, TablePrinter::Int(results), TablePrinter::Num(ms),
             TablePrinter::Num(ms / paper_ms) + "x"});
  }

  // ---- the §2.3 alternative: Morton-sorted table + interval decomposition.
  {
    auto copy = GenerateSurvey(n);
    auto sfc = MortonSfcIndex::Build(copy.get());
    if (!sfc.ok()) return 1;
    uint64_t results = 0;
    double ms = TimeMs([&] {
      auto res = sfc->QueryBox(box);
      results = res.ok() ? res->size() : 0;
    });
    out.Row({"morton SFC index (box)", TablePrinter::Int(results),
             TablePrinter::Num(ms), TablePrinter::Num(ms / paper_ms) + "x"});
    // And the engine on the box for a like-for-like comparison.
    EngineOptions serial1;
    serial1.num_threads = 1;
    SpatialQueryEngine engine(table, serial1);
    (void)engine.SelectInBox(box);
    double ms2 = TimeMs([&] { (void)engine.SelectInBox(box); });
    out.Row({"imprints (same box)", "-", TablePrinter::Num(ms2),
             TablePrinter::Num(ms2 / paper_ms) + "x"});
  }

  // ---- column codec ablation (§3.1's RLE remark).
  std::printf("\ncolumn codec ablation (auto-chosen codec per column):\n");
  TablePrinter codecs({"column", "codec", "raw", "compressed", "ratio"});
  for (const char* name : {"x", "y", "z", "gps_time", "classification",
                           "intensity", "point_source_id", "wave_offset"}) {
    ColumnPtr col = table->column(name);
    CompressionStats stats;
    auto data = CompressColumn(*col, ColumnCodec::kAuto, &stats);
    if (!data.ok()) return 1;
    codecs.Row({name, ColumnCodecName(stats.codec),
                TablePrinter::Mb(stats.uncompressed_bytes),
                TablePrinter::Mb(stats.compressed_bytes),
                TablePrinter::Num(stats.Ratio()) + "x"});
  }

  std::printf(
      "\nexpected shape: dropping either technique hurts — no imprints means "
      "scanning every cache line,\nno grid means per-point exact tests "
      "against a 256-vertex polygon; the SFC index is competitive\nfor boxes "
      "but needs the physical sort and answers only box queries natively.\n");
  return 0;
}
