// CSV serialisation of flat tables. This exists purely as the *slow* load
// path of the comparison in §3.2: "the dominant part of loading stems from
// the conversion of the LAZ files into CSV format and the subsequent
// parsing of the CSV records by the database engine."
#ifndef GEOCOL_COLUMNS_CSV_H_
#define GEOCOL_COLUMNS_CSV_H_

#include <string>

#include "columns/flat_table.h"
#include "util/status.h"

namespace geocol {

/// Writes `table` to a CSV file with a header row.
Status WriteCsv(const FlatTable& table, const std::string& path);

/// Parses a CSV file produced by WriteCsv back into a table whose columns
/// match `schema` (names are taken from the header and must match).
Result<FlatTable> ReadCsv(const std::string& path, const Schema& schema,
                          const std::string& table_name = "csv");

/// Appends CSV rows to an existing table (schema must match the header).
Status AppendCsv(const std::string& path, FlatTable* table);

}  // namespace geocol

#endif  // GEOCOL_COLUMNS_CSV_H_
