#include "columns/paged_column.h"

#include <chrono>
#include <cstring>
#include <limits>

#include "cache/chunk_cache.h"
#include "columns/column_file.h"
#include "telemetry/heat.h"
#include "telemetry/metrics.h"
#include "util/binary_io.h"
#include "util/crc32c.h"
#include "util/fd_cache.h"
#include "util/tempdir.h"

namespace geocol {

namespace {

constexpr char kGpc1Magic[4] = {'G', 'P', 'C', '1'};
constexpr char kGcl2Magic[4] = {'G', 'C', 'L', '2'};
constexpr char kGcl1Magic[4] = {'G', 'C', 'L', '1'};
constexpr char kGccMagicPrefix[3] = {'G', 'C', 'C'};

/// magic | type u8 | count u64 | chunk_bytes u32 | payload crc u32,
/// followed by the header crc u32.
constexpr size_t kGpc1CrcCoveredBytes = 4 + 1 + 8 + 4 + 4;
constexpr size_t kGpc1FixedBytes = kGpc1CrcCoveredBytes + 4;
/// codec u8 | comp_bytes u32 | comp_crc u32 per chunk.
constexpr size_t kGpc1DirEntryBytes = 1 + 4 + 4;

constexpr uint64_t kMaxPlausibleRows = uint64_t{1} << 40;

uint64_t NumChunks(uint64_t payload_bytes, uint64_t chunk_bytes) {
  return payload_bytes == 0 ? 0
                            : (payload_bytes + chunk_bytes - 1) / chunk_bytes;
}

struct Gpc1Fixed {
  DataType type = DataType::kFloat64;
  uint64_t count = 0;
  uint32_t chunk_bytes = 0;
  uint32_t payload_crc = 0;
};

Result<Gpc1Fixed> ParseGpc1Fixed(const uint8_t* p, size_t n,
                                 const std::string& path) {
  if (n < kGpc1FixedBytes || std::memcmp(p, kGpc1Magic, 4) != 0) {
    return Status::Corruption("bad chunked column header: " + path);
  }
  uint32_t stored = 0;
  std::memcpy(&stored, p + kGpc1CrcCoveredBytes, 4);
  uint32_t computed = Crc32c(p, kGpc1CrcCoveredBytes);
  if (stored != computed) {
    return Status::Corruption("chunked column header crc mismatch: " + path);
  }
  Gpc1Fixed h;
  uint8_t type_byte = p[4];
  std::memcpy(&h.count, p + 5, 8);
  std::memcpy(&h.chunk_bytes, p + 13, 4);
  std::memcpy(&h.payload_crc, p + 17, 4);
  if (type_byte >= kNumDataTypes) {
    return Status::Corruption("bad column type byte " +
                              std::to_string(type_byte) + ": " + path);
  }
  h.type = static_cast<DataType>(type_byte);
  if (h.count > kMaxPlausibleRows) {
    return Status::Corruption("chunked column: implausible row count " +
                              std::to_string(h.count) + ": " + path);
  }
  if (h.chunk_bytes == 0 || h.chunk_bytes > (1u << 30) ||
      h.chunk_bytes % DataTypeSize(h.type) != 0) {
    return Status::Corruption("chunked column: bad chunk size: " + path);
  }
  return h;
}

struct Gpc1DirEntry {
  uint8_t codec = 0;
  uint32_t comp_bytes = 0;
  uint32_t comp_crc = 0;
};

Result<std::vector<Gpc1DirEntry>> ParseGpc1Dir(const uint8_t* p, size_t n,
                                               uint64_t nchunks,
                                               const std::string& path) {
  if (nchunks * kGpc1DirEntryBytes > n) {
    return Status::Corruption("chunked column: truncated chunk directory: " +
                              path);
  }
  std::vector<Gpc1DirEntry> dir(nchunks);
  for (uint64_t c = 0; c < nchunks; ++c) {
    const uint8_t* e = p + c * kGpc1DirEntryBytes;
    dir[c].codec = e[0];
    std::memcpy(&dir[c].comp_bytes, e + 1, 4);
    std::memcpy(&dir[c].comp_crc, e + 5, 4);
    if (dir[c].codec > static_cast<uint8_t>(ColumnCodec::kDelta)) {
      return Status::Corruption("chunked column: bad chunk codec: " + path);
    }
  }
  return dir;
}

}  // namespace

// ---- PagedColumn ----------------------------------------------------------

PagedColumn::PagedColumn(std::string name, DataType type)
    : Column(std::move(name), type) {}

PagedColumn::~PagedColumn() {
  cache::ChunkCache::Global().EraseFile(file_id_);
}

size_t PagedColumn::RowsInChunk(size_t chunk_index) const {
  uint64_t first = static_cast<uint64_t>(chunk_index) * chunk_rows_;
  return static_cast<size_t>(
      std::min<uint64_t>(chunk_rows_, rows_ - first));
}

Result<std::shared_ptr<PagedColumn>> PagedColumn::Open(
    const std::string& path, const std::string& name) {
  GEOCOL_ASSIGN_OR_RETURN(std::shared_ptr<FileHandle> file,
                          FdCache::Global().Get(path));
  char magic[4];
  GEOCOL_RETURN_NOT_OK(file->ReadAt(0, magic, 4));

  if (std::memcmp(magic, kGcl1Magic, 4) == 0) {
    return Status::InvalidArgument(
        "legacy GCL1 file has no chunk checksums and cannot be opened "
        "paged: " + path);
  }
  if (std::memcmp(magic, kGccMagicPrefix, 3) == 0) {
    return Status::InvalidArgument(
        "whole-column compressed file cannot be opened paged (rewrite it "
        "with the chunked compressor): " + path);
  }

  if (std::memcmp(magic, kGcl2Magic, 4) == 0) {
    GEOCOL_ASSIGN_OR_RETURN(ColumnFileLayout layout,
                            ReadColumnFileLayout(path));
    if (layout.chunk_bytes % DataTypeSize(layout.type) != 0) {
      return Status::Corruption(
          "column file chunk size is not value-aligned, cannot page: " +
          path);
    }
    auto col = std::shared_ptr<PagedColumn>(
        new PagedColumn(name, layout.type));
    col->path_ = path;
    col->rows_ = layout.count;
    col->chunk_rows_ = layout.chunk_bytes / col->width();
    col->compressed_ = false;
    uint64_t payload_bytes = layout.count * col->width();
    col->chunks_.resize(layout.chunk_crcs.size());
    // Fold the on-disk chunk CRCs into the whole-payload CRC: one
    // precomputed operator for the fixed chunk length, generic combine
    // for the short tail.
    Crc32cCombineOp op = Crc32cCombineOpFor(layout.chunk_bytes);
    uint32_t payload_crc = 0;
    for (size_t c = 0; c < col->chunks_.size(); ++c) {
      uint64_t off = c * uint64_t{layout.chunk_bytes};
      uint64_t len = std::min<uint64_t>(layout.chunk_bytes,
                                        payload_bytes - off);
      ChunkInfo& ci = col->chunks_[c];
      ci.offset = layout.payload_offset + off;
      ci.stored_bytes = static_cast<uint32_t>(len);
      ci.crc = layout.chunk_crcs[c];
      ci.codec = static_cast<uint8_t>(ColumnCodec::kRaw);
      payload_crc = len == layout.chunk_bytes
                        ? Crc32cCombineWithOp(op, payload_crc, ci.crc)
                        : Crc32cCombine(payload_crc, ci.crc, len);
    }
    col->payload_crc_ = payload_crc;
    col->file_id_ = cache::ChunkCache::NextFileId();
    col->set_epoch(1);
    return col;
  }

  if (std::memcmp(magic, kGpc1Magic, 4) != 0) {
    return Status::Corruption("bad column file magic: " + path);
  }

  uint8_t fixed[kGpc1FixedBytes];
  GEOCOL_RETURN_NOT_OK(file->ReadAt(0, fixed, sizeof(fixed)));
  GEOCOL_ASSIGN_OR_RETURN(Gpc1Fixed h,
                          ParseGpc1Fixed(fixed, sizeof(fixed), path));
  auto col = std::shared_ptr<PagedColumn>(new PagedColumn(name, h.type));
  col->path_ = path;
  col->rows_ = h.count;
  col->chunk_rows_ = h.chunk_bytes / col->width();
  col->compressed_ = true;
  col->payload_crc_ = h.payload_crc;

  uint64_t payload_bytes = h.count * col->width();
  uint64_t nchunks = NumChunks(payload_bytes, h.chunk_bytes);
  std::vector<uint8_t> dir_bytes(nchunks * kGpc1DirEntryBytes);
  if (!dir_bytes.empty()) {
    GEOCOL_RETURN_NOT_OK(
        file->ReadAt(kGpc1FixedBytes, dir_bytes.data(), dir_bytes.size()));
  }
  GEOCOL_ASSIGN_OR_RETURN(
      std::vector<Gpc1DirEntry> dir,
      ParseGpc1Dir(dir_bytes.data(), dir_bytes.size(), nchunks, path));
  col->chunks_.resize(nchunks);
  uint64_t offset = kGpc1FixedBytes + dir_bytes.size();
  for (uint64_t c = 0; c < nchunks; ++c) {
    ChunkInfo& ci = col->chunks_[c];
    ci.offset = offset;
    ci.stored_bytes = dir[c].comp_bytes;
    ci.crc = dir[c].comp_crc;
    ci.codec = dir[c].codec;
    offset += dir[c].comp_bytes;
  }
  if (offset != file->size()) {
    return Status::Corruption("chunked column file size mismatch: " + path);
  }
  col->file_id_ = cache::ChunkCache::NextFileId();
  col->set_epoch(1);
  return col;
}

Result<std::shared_ptr<const std::vector<uint8_t>>> PagedColumn::FaultChunk(
    size_t chunk_index) const {
  GEOCOL_METRIC_HISTOGRAM(h_fault_us, "geocol_chunk_fault_us");
  GEOCOL_METRIC_COUNTER(c_failures, "geocol_crc_failures_total");
  auto t0 = std::chrono::steady_clock::now();

  GEOCOL_ASSIGN_OR_RETURN(std::shared_ptr<FileHandle> file,
                          FdCache::Global().Get(path_));
  const ChunkInfo& ci = chunks_[chunk_index];
  auto stored = std::make_shared<std::vector<uint8_t>>(ci.stored_bytes);
  GEOCOL_RETURN_NOT_OK(
      file->ReadAt(ci.offset, stored->data(), stored->size()));
  // Verification happens at fault time, on exactly the bytes the scans
  // will see — a torn read or flipped bit becomes a clean error here,
  // never a wrong answer downstream.
  uint32_t crc = Crc32c(stored->data(), stored->size());
  if (crc != ci.crc) {
    c_failures.Increment();
    return Status::Corruption("chunk " + std::to_string(chunk_index) +
                              " crc mismatch faulting: " + path_);
  }

  std::shared_ptr<const std::vector<uint8_t>> result;
  if (!compressed_) {
    result = std::move(stored);
  } else {
    const size_t rows = RowsInChunk(chunk_index);
    auto decoded = std::make_shared<std::vector<uint8_t>>(rows * width());
    GEOCOL_RETURN_NOT_OK(DecompressChunkPayload(
        type(), static_cast<ColumnCodec>(ci.codec), stored->data(),
        stored->size(), rows, decoded->data()));
    result = std::move(decoded);
  }

  auto dt = std::chrono::steady_clock::now() - t0;
  h_fault_us.Observe(
      std::chrono::duration_cast<std::chrono::microseconds>(dt).count());
  return result;
}

Result<ColumnChunkPin> PagedColumn::PinChunk(size_t chunk_index) const {
  if (chunk_index >= chunks_.size()) {
    return Status::InvalidArgument("chunk index out of range");
  }
  auto& chunk_cache = cache::ChunkCache::Global();
  cache::ChunkCache::Payload payload =
      chunk_cache.Lookup(file_id_, static_cast<uint32_t>(chunk_index));
  const bool faulted = payload == nullptr;
  if (faulted) {
    GEOCOL_ASSIGN_OR_RETURN(payload, FaultChunk(chunk_index));
    chunk_cache.Insert(file_id_, static_cast<uint32_t>(chunk_index), payload);
  }
  telemetry::TouchChunkHeat(path_, static_cast<uint32_t>(chunk_index),
                            faulted);
  ColumnChunkPin pin;
  pin.data = payload->data();
  pin.first_row = static_cast<uint64_t>(chunk_index) * chunk_rows_;
  pin.row_count = RowsInChunk(chunk_index);
  pin.keepalive = std::move(payload);
  return pin;
}

double PagedColumn::GetDouble(size_t row) const {
  assert(row < size());
  Result<ColumnChunkPin> pin = PinChunk(row / chunk_rows_);
  if (!pin.ok()) {
    GEOCOL_METRIC_COUNTER(c_errors, "geocol_paged_scalar_fault_errors_total");
    c_errors.Increment();
    return std::numeric_limits<double>::quiet_NaN();
  }
  return DispatchDataType(type(), [&]<typename T>() -> double {
    return static_cast<double>(pin->values<T>()[row - pin->first_row]);
  });
}

Status PagedColumn::GetDoubleBatch(const uint64_t* rows, size_t n,
                                   double* out) const {
  if (n == 0) return Status::OK();
  return DispatchDataType(type(), [&]<typename T>() -> Status {
    ColumnChunkPin pin;
    bool have = false;
    for (size_t i = 0; i < n; ++i) {
      uint64_t row = rows[i];
      if (!have || row < pin.first_row ||
          row >= pin.first_row + pin.row_count) {
        GEOCOL_ASSIGN_OR_RETURN(pin, PinChunk(row / chunk_rows_));
        have = true;
      }
      out[i] = static_cast<double>(pin.values<T>()[row - pin.first_row]);
    }
    return Status::OK();
  });
}

int64_t PagedColumn::GetInt64(size_t row) const {
  assert(row < size());
  Result<ColumnChunkPin> pin = PinChunk(row / chunk_rows_);
  if (!pin.ok()) {
    GEOCOL_METRIC_COUNTER(c_errors, "geocol_paged_scalar_fault_errors_total");
    c_errors.Increment();
    return 0;
  }
  return DispatchDataType(type(), [&]<typename T>() -> int64_t {
    return static_cast<int64_t>(pin->values<T>()[row - pin->first_row]);
  });
}

const ColumnStats& PagedColumn::Stats() const {
  std::lock_guard<std::mutex> lock(paged_stats_mu_);
  if (paged_stats_.valid) return paged_stats_;
  if (rows_ == 0) {
    paged_stats_.min = 0.0;
    paged_stats_.max = 0.0;
    paged_stats_.valid = true;
    return paged_stats_;
  }
  Status st = DispatchDataType(type(), [&]<typename T>() -> Status {
    bool first = true;
    T mn{}, mx{};
    GEOCOL_RETURN_NOT_OK(ForEachValueRun<T>(
        *this, 0, rows_, [&](const T* values, uint64_t, size_t count) {
          if (first && count > 0) {
            mn = mx = values[0];
            first = false;
          }
          for (size_t k = 0; k < count; ++k) {
            mn = std::min(mn, values[k]);
            mx = std::max(mx, values[k]);
          }
        }));
    paged_stats_.min = static_cast<double>(mn);
    paged_stats_.max = static_cast<double>(mx);
    return Status::OK();
  });
  if (!st.ok()) {
    // Conservative fallback: the (-inf, +inf) range prunes nothing, so
    // answers stay correct and the scan that actually needs the values
    // reports the I/O error itself.
    GEOCOL_METRIC_COUNTER(c_errors, "geocol_paged_stats_fault_errors_total");
    c_errors.Increment();
    paged_stats_.min = -std::numeric_limits<double>::infinity();
    paged_stats_.max = std::numeric_limits<double>::infinity();
  }
  paged_stats_.valid = true;
  return paged_stats_;
}

size_t PagedColumn::MemoryBytes() const {
  return chunks_.capacity() * sizeof(ChunkInfo) + path_.capacity();
}

Result<ColumnPtr> OpenPagedColumnFile(const std::string& path,
                                      const std::string& name) {
  GEOCOL_ASSIGN_OR_RETURN(std::shared_ptr<PagedColumn> col,
                          PagedColumn::Open(path, name));
  return ColumnPtr(std::move(col));
}

// ---- GPC1 chunked-compressed files ---------------------------------------

Status WriteChunkedCompressedColumnFile(const Column& column,
                                        const std::string& path,
                                        ColumnCodec codec,
                                        CompressionStats* stats) {
  if (column.paged()) {
    return Status::InvalidArgument(
        "WriteChunkedCompressedColumnFile: paged columns are read-only "
        "(reopen the table resident to rewrite)");
  }
  const uint8_t* payload = column.raw_data();
  const uint64_t payload_bytes = column.raw_size_bytes();
  const uint32_t chunk_bytes = kColumnChunkBytes;
  const size_t width = column.width();
  const uint64_t nchunks = NumChunks(payload_bytes, chunk_bytes);

  BufferWriter header;
  header.WriteBytes(kGpc1Magic, 4);
  header.WriteScalar<uint8_t>(static_cast<uint8_t>(column.type()));
  header.WriteScalar<uint64_t>(column.size());
  header.WriteScalar<uint32_t>(chunk_bytes);
  header.WriteScalar<uint32_t>(Crc32c(payload, payload_bytes));
  uint32_t header_crc = Crc32c(header.buffer().data(), header.size());

  BufferWriter dir;
  std::vector<std::vector<uint8_t>> compressed(nchunks);
  uint64_t codec_counts[4] = {0, 0, 0, 0};
  for (uint64_t c = 0; c < nchunks; ++c) {
    uint64_t off = c * uint64_t{chunk_bytes};
    uint64_t len = std::min<uint64_t>(chunk_bytes, payload_bytes - off);
    ColumnCodec chosen = ColumnCodec::kRaw;
    compressed[c] = CompressChunkPayload(column.type(), payload + off,
                                         len / width, codec, &chosen);
    dir.WriteScalar<uint8_t>(static_cast<uint8_t>(chosen));
    dir.WriteScalar<uint32_t>(static_cast<uint32_t>(compressed[c].size()));
    dir.WriteScalar<uint32_t>(
        Crc32c(compressed[c].data(), compressed[c].size()));
    ++codec_counts[static_cast<uint8_t>(chosen)];
  }

  BinaryWriter w;
  GEOCOL_RETURN_NOT_OK(w.OpenAtomic(path));
  Status st = [&]() -> Status {
    GEOCOL_RETURN_NOT_OK(w.WriteBytes(header.buffer().data(), header.size()));
    GEOCOL_RETURN_NOT_OK(w.WriteScalar<uint32_t>(header_crc));
    GEOCOL_RETURN_NOT_OK(w.WriteBytes(dir.buffer().data(), dir.size()));
    for (const std::vector<uint8_t>& chunk : compressed) {
      GEOCOL_RETURN_NOT_OK(w.WriteBytes(chunk.data(), chunk.size()));
    }
    return w.Commit();
  }();
  if (!st.ok()) {
    w.Abandon();
    return st;
  }
  if (stats != nullptr) {
    // Chunks choose codecs independently; report the dominant one.
    size_t best = 0;
    for (size_t k = 1; k < 4; ++k) {
      if (codec_counts[k] > codec_counts[best]) best = k;
    }
    stats->codec = static_cast<ColumnCodec>(best);
    stats->uncompressed_bytes = payload_bytes;
    stats->compressed_bytes = w.bytes_written();
  }
  return Status::OK();
}

bool IsChunkedCompressedBuffer(const uint8_t* data, size_t size) {
  return size >= 4 && std::memcmp(data, kGpc1Magic, 4) == 0;
}

Result<ColumnPtr> DecompressChunkedColumn(const std::vector<uint8_t>& data,
                                          const std::string& name) {
  GEOCOL_ASSIGN_OR_RETURN(Gpc1Fixed h,
                          ParseGpc1Fixed(data.data(), data.size(), name));
  const size_t width = DataTypeSize(h.type);
  const uint64_t payload_bytes = h.count * width;
  const uint64_t nchunks = NumChunks(payload_bytes, h.chunk_bytes);
  GEOCOL_ASSIGN_OR_RETURN(
      std::vector<Gpc1DirEntry> dir,
      ParseGpc1Dir(data.data() + kGpc1FixedBytes,
                   data.size() - kGpc1FixedBytes, nchunks, name));
  uint64_t offset = kGpc1FixedBytes + nchunks * kGpc1DirEntryBytes;

  std::vector<uint8_t> decoded(payload_bytes);
  for (uint64_t c = 0; c < nchunks; ++c) {
    uint64_t out_off = c * uint64_t{h.chunk_bytes};
    uint64_t len = std::min<uint64_t>(h.chunk_bytes, payload_bytes - out_off);
    if (offset + dir[c].comp_bytes > data.size()) {
      return Status::Corruption("chunked column: truncated chunk " +
                                std::to_string(c) + ": " + name);
    }
    const uint8_t* comp = data.data() + offset;
    if (Crc32c(comp, dir[c].comp_bytes) != dir[c].comp_crc) {
      return Status::Corruption("chunked column: chunk " + std::to_string(c) +
                                " crc mismatch: " + name);
    }
    GEOCOL_RETURN_NOT_OK(DecompressChunkPayload(
        h.type, static_cast<ColumnCodec>(dir[c].codec), comp,
        dir[c].comp_bytes, len / width, decoded.data() + out_off));
    offset += dir[c].comp_bytes;
  }
  if (offset != data.size()) {
    return Status::Corruption("chunked column size mismatch: " + name);
  }
  if (Crc32c(decoded.data(), decoded.size()) != h.payload_crc) {
    return Status::Corruption("chunked column payload crc mismatch: " + name);
  }
  auto col = std::make_shared<Column>(name, h.type);
  col->AppendRaw(decoded.data(), h.count);
  return ColumnPtr(std::move(col));
}

Status WriteChunkedCompressedTableDir(const FlatTable& table,
                                      const std::string& dir,
                                      uint64_t* total_bytes) {
  GEOCOL_RETURN_NOT_OK(table.Validate());
  GEOCOL_RETURN_NOT_OK(MakeDir(dir));
  // Same generation protocol as WriteTableDir: new generation under fresh
  // names, manifest swap as the commit point, old generation untouched.
  uint64_t gen = 1;
  if (PathExists(dir + "/schema.gct")) {
    auto old = ReadTableManifest(dir);
    if (old.ok()) gen = old->generation + 1;
  }
  TableManifest m;
  m.table_name = table.name();
  m.generation = gen;
  uint64_t total = 0;
  for (const auto& col : table.columns()) {
    std::string fname = col->name() + ".g" + std::to_string(gen) + ".gcz";
    CompressionStats stats;
    GEOCOL_RETURN_NOT_OK(WriteChunkedCompressedColumnFile(
        *col, dir + "/" + fname, ColumnCodec::kAuto, &stats));
    total += stats.compressed_bytes;
    m.columns.push_back({col->name(), col->type(), fname});
  }
  GEOCOL_RETURN_NOT_OK(WriteTableManifest(dir, m));
  CleanStaleTableFiles(dir, m);
  if (total_bytes != nullptr) *total_bytes = total;
  return Status::OK();
}

Result<FlatTable> ReadTableDirPaged(const std::string& dir) {
  GEOCOL_ASSIGN_OR_RETURN(TableManifest m, ReadTableManifest(dir));
  FlatTable table(m.table_name);
  for (const auto& mc : m.columns) {
    const std::string fname =
        mc.filename.empty() ? mc.name + ".gcl" : mc.filename;
    GEOCOL_ASSIGN_OR_RETURN(
        ColumnPtr col, OpenPagedColumnFile(dir + "/" + fname, mc.name));
    if (col->type() != mc.type) {
      return Status::Corruption("manifest/file type mismatch for " + mc.name);
    }
    GEOCOL_RETURN_NOT_OK(table.AddColumn(std::move(col)));
  }
  GEOCOL_RETURN_NOT_OK(table.Validate());
  return table;
}

}  // namespace geocol
