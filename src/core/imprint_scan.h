// Imprint-accelerated range selection over a column: the "filtering" step
// of the paper's query model (§3.3), turned into a row-level selection.
// Cache lines whose imprint misses the query mask are never touched; lines
// fully inside the range are accepted wholesale; only boundary lines incur
// per-value comparisons.
#ifndef GEOCOL_CORE_IMPRINT_SCAN_H_
#define GEOCOL_CORE_IMPRINT_SCAN_H_

#include <memory>
#include <mutex>
#include <unordered_map>

#include "columns/column.h"
#include "core/imprints.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace geocol {

/// Work accounting of one imprint-filtered scan (drives E3/E5 reporting).
struct ImprintScanStats {
  uint64_t lines_total = 0;
  uint64_t lines_candidate = 0;  ///< imprint hit: line was visited
  uint64_t lines_full = 0;       ///< accepted without per-value checks
  uint64_t values_checked = 0;   ///< per-value comparisons performed
  uint64_t rows_selected = 0;

  /// Fraction of the column actually touched by the scan.
  double TouchedFraction() const {
    return lines_total > 0
               ? static_cast<double>(lines_candidate) / lines_total
               : 0.0;
  }
};

/// Selects rows with value in [lo, hi] using the imprints index.
/// `out_rows` is resized to the column length. The index must have been
/// built on the current column state (epoch match) — Internal error
/// otherwise.
Status ImprintRangeSelect(const Column& column, const ImprintsIndex& index,
                          double lo, double hi, BitVector* out_rows,
                          ImprintScanStats* stats = nullptr);

/// Plain full-scan range selection (no index). Used as the correctness
/// oracle in tests and the baseline in benchmarks.
void FullScanRangeSelect(const Column& column, double lo, double hi,
                         BitVector* out_rows);

/// Lazily builds and caches imprints per column, mirroring MonetDB's
/// "creation is triggered when it encounters a range query for the first
/// time" (§3.2). Rebuilds when the column's epoch moves (appends).
class ImprintManager {
 public:
  explicit ImprintManager(ImprintsOptions options = {})
      : options_(options) {}

  /// Returns the (possibly freshly built) index for `column`.
  Result<const ImprintsIndex*> GetOrBuild(const ColumnPtr& column);

  /// Total storage consumed by all cached indexes.
  uint64_t TotalStorageBytes() const;

  /// Number of indexes currently cached.
  size_t num_indexes() const { return cache_.size(); }

  /// Drops all cached indexes.
  void Clear() { cache_.clear(); }

  const ImprintsOptions& options() const { return options_; }

 private:
  struct Entry {
    std::unique_ptr<ImprintsIndex> index;
  };
  ImprintsOptions options_;
  std::unordered_map<const Column*, Entry> cache_;
};

}  // namespace geocol

#endif  // GEOCOL_CORE_IMPRINT_SCAN_H_
