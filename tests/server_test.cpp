// Server lifecycle and protocol robustness (DESIGN.md §16): start/stop
// idempotence and restart, graceful drain of in-flight queries on
// shutdown, malformed/truncated frames rejected without crashing (a
// seeded frame fuzzer plus targeted corruptions), and oversized requests
// capped with a typed TOO_LARGE error.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gis/catalog.h"
#include "pointcloud/generator.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/rng.h"

namespace geocol {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AhnGeneratorOptions opts;
    opts.extent = Box(85000, 444000, 85060, 444060);
    AhnGenerator gen(opts);
    auto table = gen.GenerateTable(5000);
    ASSERT_TRUE(table.ok());
    num_rows_ = static_cast<double>((*table)->num_rows());
    catalog_ = new Catalog();
    ASSERT_TRUE(catalog_->AddPointCloud("ahn2", *table).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static Catalog* catalog_;
  static double num_rows_;
};

Catalog* ServerTest::catalog_ = nullptr;
double ServerTest::num_rows_ = 0;

server::Client MustConnect(int port, const std::string& id = "") {
  server::Client::Options copts;
  copts.port = port;
  copts.client_id = id;
  auto client = server::Client::Connect(copts);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(*client);
}

/// Raw TCP connect for byte-level protocol abuse.
int RawConnect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);
  return fd;
}

TEST_F(ServerTest, StartStopIdempotentAndRestartable) {
  server::Server srv(catalog_, {});
  ASSERT_TRUE(srv.Start().ok());
  EXPECT_TRUE(srv.running());
  const int first_port = srv.port();
  EXPECT_GT(first_port, 0);
  // Starting a running server is an error, not a second listener.
  EXPECT_FALSE(srv.Start().ok());

  {
    auto client = MustConnect(first_port);
    ASSERT_TRUE(client.Ping().ok());
    auto rs = client.Query("SELECT COUNT(*) FROM ahn2");
    ASSERT_TRUE(rs.ok());
    EXPECT_TRUE(rs->ok);
  }

  srv.Stop();
  EXPECT_FALSE(srv.running());
  EXPECT_EQ(srv.port(), 0);
  srv.Stop();  // idempotent
  EXPECT_FALSE(srv.running());

  // A stopped server starts again and serves queries.
  ASSERT_TRUE(srv.Start().ok());
  EXPECT_TRUE(srv.running());
  {
    auto client = MustConnect(srv.port());
    auto rs = client.Query("SELECT COUNT(*) FROM ahn2");
    ASSERT_TRUE(rs.ok());
    EXPECT_TRUE(rs->ok);
    EXPECT_EQ(rs->result.rows[0][0].number, num_rows_);
  }
  srv.Stop();
}

TEST_F(ServerTest, StopDrainsInFlightQueries) {
  // One worker, blocked in the test hook while holding the first task;
  // a second task sits admitted in the queue. Stop() must complete both
  // (and deliver both responses) before returning — admitted work is
  // drained, never dropped.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> held{0};
  server::ServerOptions opts;
  opts.workers = 1;
  opts.before_execute_hook = [&](const server::QueryTask&) {
    if (held.fetch_add(1) == 0) {  // block only the first pop
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
  };
  server::Server srv(catalog_, opts);
  ASSERT_TRUE(srv.Start().ok());
  const int port = srv.port();

  std::atomic<int> ok_replies{0};
  auto run_query = [&] {
    auto client = MustConnect(port);
    auto rs = client.Query("SELECT COUNT(*) FROM ahn2");
    if (rs.ok() && rs->ok && rs->result.rows[0][0].number == num_rows_) {
      ok_replies.fetch_add(1);
    }
  };
  std::thread q1(run_query);
  // Wait until the worker holds task 1 in the hook.
  while (held.load() == 0) std::this_thread::yield();
  std::thread q2(run_query);
  // Task 2 must be admitted before the queue closes.
  while (srv.stats().queue_depth < 1) std::this_thread::yield();

  std::thread stopper([&] { srv.Stop(); });
  // Stop() is now draining; release the worker so both tasks complete.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  stopper.join();
  q1.join();
  q2.join();
  EXPECT_FALSE(srv.running());
  EXPECT_EQ(ok_replies.load(), 2);
  server::ServerStats s = srv.stats();
  EXPECT_EQ(s.queries_ok, 2u);
  EXPECT_EQ(s.queries_error, 0u);
}

TEST_F(ServerTest, MalformedFramesNeverCrashTheServer) {
  server::Server srv(catalog_, {});
  ASSERT_TRUE(srv.Start().ok());
  const int port = srv.port();

  // Targeted corruptions first. Zero-length frame:
  {
    int fd = RawConnect(port);
    uint32_t len = 0;
    ASSERT_EQ(::send(fd, &len, sizeof(len), MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(len)));
    auto reply = server::ReadFrame(fd, server::kMaxResponseFrameBytes);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, server::FrameType::kError);
    auto err = server::DecodeError(reply->payload);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err->code, server::ErrorCode::kMalformed);
    ::close(fd);
  }
  // Truncated frame: the length prefix promises more bytes than arrive.
  {
    int fd = RawConnect(port);
    uint32_t len = 100;
    ASSERT_EQ(::send(fd, &len, sizeof(len), MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(len)));
    uint8_t partial[10] = {2};  // kQuery, then silence
    ASSERT_EQ(::send(fd, partial, sizeof(partial), MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(partial)));
    ::close(fd);  // server sees a short read mid-frame
  }
  // Unknown frame type gets a typed MALFORMED and the connection closes.
  {
    int fd = RawConnect(port);
    ASSERT_TRUE(server::WriteFrame(fd, static_cast<server::FrameType>(200),
                                   {1, 2, 3})
                    .ok());
    auto reply = server::ReadFrame(fd, server::kMaxResponseFrameBytes);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, server::FrameType::kError);
    auto err = server::DecodeError(reply->payload);
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err->code, server::ErrorCode::kMalformed);
    ::close(fd);
  }

  // Seeded frame fuzzer: random byte blasts, each on a fresh connection.
  Rng rng(901);
  for (int iter = 0; iter < 200; ++iter) {
    int fd = RawConnect(port);
    size_t len = rng.Uniform(64);
    std::vector<uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.Uniform(256));
    if (!bytes.empty()) {
      (void)::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    }
    if (rng.Uniform(2) == 0) ::shutdown(fd, SHUT_WR);
    ::close(fd);
  }

  // The server survived and still answers correctly.
  auto client = MustConnect(port);
  auto rs = client.Query("SELECT COUNT(*) FROM ahn2");
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->ok);
  EXPECT_EQ(rs->result.rows[0][0].number, num_rows_);
  server::ServerStats s = srv.stats();
  EXPECT_GE(s.malformed, 2u);
  srv.Stop();
}

TEST_F(ServerTest, OversizedRequestGetsTypedErrorAndCapsMemory) {
  server::ServerOptions opts;
  opts.max_request_bytes = 1024;
  server::Server srv(catalog_, opts);
  ASSERT_TRUE(srv.Start().ok());

  int fd = RawConnect(srv.port());
  std::vector<uint8_t> big(4096, 'x');
  ASSERT_TRUE(server::WriteFrame(fd, server::FrameType::kQuery, big).ok());
  auto reply = server::ReadFrame(fd, server::kMaxResponseFrameBytes);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->type, server::FrameType::kError);
  auto err = server::DecodeError(reply->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->code, server::ErrorCode::kTooLarge);
  EXPECT_EQ(err->status_code, StatusCode::kOutOfRange);
  // The connection is closed after an oversized prefix (the stream is
  // unrecoverable); the next read sees EOF.
  auto eof = server::ReadFrame(fd, server::kMaxResponseFrameBytes);
  EXPECT_FALSE(eof.ok());
  ::close(fd);

  // A request just under the cap still works on a new connection.
  auto client = MustConnect(srv.port());
  auto rs = client.Query("SELECT COUNT(*) FROM ahn2");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->ok);
  EXPECT_EQ(srv.stats().oversized, 1u);
  srv.Stop();
}

TEST_F(ServerTest, MidReplyDisconnectsDoNotLeakConnectionSlots) {
  server::Server srv(catalog_, {});
  ASSERT_TRUE(srv.Start().ok());
  const int port = srv.port();

  // Clients that hang up without reading their reply (linger-0 close
  // sends an RST) drive the server's reply writes into failure; every
  // such connection must still close its server-side fd and hand back
  // its slot — a long-lived server would otherwise run out of fds.
  const std::string sql = "SELECT COUNT(*) FROM ahn2";
  const std::vector<uint8_t> payload(sql.begin(), sql.end());
  for (int i = 0; i < 100; ++i) {
    int fd = RawConnect(port);
    ASSERT_TRUE(
        server::WriteFrame(fd, server::FrameType::kQuery, payload).ok());
    struct linger lg {1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd);
  }

  // Reaping rides the accept path: poke the server with fresh
  // connections until every abandoned slot is reclaimed.
  bool reclaimed = false;
  for (int attempt = 0; attempt < 300 && !reclaimed; ++attempt) {
    auto client = MustConnect(port);
    ASSERT_TRUE(client.Ping().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    reclaimed = srv.stats().conn_slots <= 4;
  }
  EXPECT_TRUE(reclaimed) << "conn_slots stuck at "
                         << srv.stats().conn_slots;

  // And the survivor still serves correct results.
  auto client = MustConnect(port);
  auto rs = client.Query("SELECT COUNT(*) FROM ahn2");
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rs->ok);
  EXPECT_EQ(rs->result.rows[0][0].number, num_rows_);
  srv.Stop();
}

}  // namespace
}  // namespace geocol
