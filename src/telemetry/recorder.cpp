#include "telemetry/recorder.h"

#include <unistd.h>

#include <cinttypes>
#include <cstring>

#include "telemetry/heat.h"
#include "telemetry/metrics.h"
#include "util/binary_io.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace geocol {
namespace telemetry {

namespace {

constexpr char kMagic[4] = {'G', 'F', 'R', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint64_t kHeaderBytes = sizeof(kMagic) + sizeof(uint32_t);
/// Largest frame payload a reader will accept; anything bigger is treated
/// as a torn/corrupt tail. Events cap their heat lists well below this.
constexpr uint32_t kMaxPayloadBytes = 16u << 20;

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Length of the valid prefix of `bytes`: the header plus every whole
/// frame whose CRC matches. 0 when even the header is bad.
uint64_t ValidPrefixLength(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kHeaderBytes) return 0;
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) return 0;
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  if (version != kFormatVersion) return 0;
  uint64_t pos = kHeaderBytes;
  while (pos + 2 * sizeof(uint32_t) <= bytes.size()) {
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, bytes.data() + pos, sizeof(len));
    std::memcpy(&crc, bytes.data() + pos + sizeof(len), sizeof(crc));
    const uint64_t frame_end = pos + 2 * sizeof(uint32_t) + len;
    if (len > kMaxPayloadBytes || frame_end > bytes.size()) break;
    if (Crc32c(bytes.data() + pos + 2 * sizeof(uint32_t), len) != crc) break;
    pos = frame_end;
  }
  return pos;
}

}  // namespace

std::vector<uint8_t> SerializeEvent(const QueryEvent& ev) {
  BufferWriter w;
  w.WriteScalar<uint32_t>(QueryEvent::kVersion);
  w.WriteScalar<int64_t>(ev.start_unix_nanos);
  w.WriteScalar<int64_t>(ev.wall_nanos);
  w.WriteString(ev.query);
  w.WriteString(ev.table);
  w.WriteScalar<uint64_t>(ev.generation);
  w.WriteScalar<uint8_t>(ev.sharded ? 1 : 0);
  w.WriteScalar<uint32_t>(static_cast<uint32_t>(ev.column_epochs.size()));
  w.WriteVector(ev.column_epochs);
  w.WriteScalar<uint64_t>(ev.shards_total);
  w.WriteScalar<uint64_t>(ev.shards_scanned);
  w.WriteScalar<uint64_t>(ev.shards_pruned);
  w.WriteScalar<uint64_t>(ev.shards_covered);
  for (int t = 0; t < 3; ++t) w.WriteScalar<uint64_t>(ev.cache_hits[t]);
  for (int t = 0; t < 3; ++t) w.WriteScalar<uint64_t>(ev.cache_misses[t]);
  w.WriteScalar<uint64_t>(ev.chunk_faults);
  w.WriteScalar<uint64_t>(ev.chunk_cache_hits);
  w.WriteScalar<uint64_t>(ev.io_read_bytes);
  w.WriteScalar<uint64_t>(ev.imprint_scans);
  w.WriteScalar<uint64_t>(ev.imprint_cachelines_probed);
  w.WriteScalar<uint64_t>(ev.imprint_cachelines_full);
  w.WriteScalar<uint64_t>(ev.imprint_values_checked);
  w.WriteScalar<uint64_t>(ev.rows_out);
  w.WriteScalar<uint8_t>(ev.ok ? 1 : 0);
  w.WriteString(ev.error);
  w.WriteScalar<uint8_t>(ev.digest_valid ? 1 : 0);
  w.WriteScalar<uint32_t>(ev.result_digest);
  w.WriteScalar<uint32_t>(static_cast<uint32_t>(ev.span_nanos.size()));
  for (const auto& kv : ev.span_nanos) {
    w.WriteString(kv.first);
    w.WriteScalar<int64_t>(kv.second);
  }
  w.WriteScalar<int64_t>(ev.critical_path_nanos);
  w.WriteScalar<uint32_t>(static_cast<uint32_t>(ev.shard_heat.size()));
  for (const auto& t : ev.shard_heat) {
    w.WriteScalar<uint32_t>(t.shard);
    w.WriteScalar<uint64_t>(t.scans);
    w.WriteScalar<uint64_t>(t.covered);
    w.WriteScalar<uint64_t>(t.rows);
  }
  w.WriteScalar<uint32_t>(static_cast<uint32_t>(ev.chunk_heat.size()));
  for (const auto& t : ev.chunk_heat) {
    w.WriteString(t.file);
    w.WriteScalar<uint32_t>(t.chunk);
    w.WriteScalar<uint64_t>(t.touches);
    w.WriteScalar<uint64_t>(t.faults);
  }
  w.WriteString(ev.client);  // v2 tail field
  return w.Take();
}

Result<QueryEvent> DeserializeEvent(const std::vector<uint8_t>& payload) {
  BufferReader r(payload);
  QueryEvent ev;
  uint32_t version = 0;
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&version));
  if (version < 1 || version > QueryEvent::kVersion) {
    return Status::Corruption("flight event version " +
                              std::to_string(version) + " unsupported");
  }
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.start_unix_nanos));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.wall_nanos));
  GEOCOL_RETURN_NOT_OK(r.ReadString(&ev.query));
  GEOCOL_RETURN_NOT_OK(r.ReadString(&ev.table));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.generation));
  uint8_t flag = 0;
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&flag));
  ev.sharded = flag != 0;
  uint32_t n = 0;
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&n));
  GEOCOL_RETURN_NOT_OK(r.ReadVector(&ev.column_epochs, n));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.shards_total));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.shards_scanned));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.shards_pruned));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.shards_covered));
  for (int t = 0; t < 3; ++t) {
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.cache_hits[t]));
  }
  for (int t = 0; t < 3; ++t) {
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.cache_misses[t]));
  }
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.chunk_faults));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.chunk_cache_hits));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.io_read_bytes));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.imprint_scans));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.imprint_cachelines_probed));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.imprint_cachelines_full));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.imprint_values_checked));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.rows_out));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&flag));
  ev.ok = flag != 0;
  GEOCOL_RETURN_NOT_OK(r.ReadString(&ev.error));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&flag));
  ev.digest_valid = flag != 0;
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.result_digest));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&n));
  ev.span_nanos.reserve(std::min<uint32_t>(n, 1024));
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    int64_t nanos = 0;
    GEOCOL_RETURN_NOT_OK(r.ReadString(&name));
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&nanos));
    ev.span_nanos.emplace_back(std::move(name), nanos);
  }
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ev.critical_path_nanos));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&n));
  ev.shard_heat.reserve(std::min<uint32_t>(n, 4096));
  for (uint32_t i = 0; i < n; ++i) {
    QueryEvent::ShardTouch t;
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&t.shard));
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&t.scans));
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&t.covered));
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&t.rows));
    ev.shard_heat.push_back(std::move(t));
  }
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&n));
  ev.chunk_heat.reserve(std::min<uint32_t>(n, 4096));
  for (uint32_t i = 0; i < n; ++i) {
    QueryEvent::ChunkTouch t;
    GEOCOL_RETURN_NOT_OK(r.ReadString(&t.file));
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&t.chunk));
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&t.touches));
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&t.faults));
    ev.chunk_heat.push_back(std::move(t));
  }
  if (version >= 2) {
    GEOCOL_RETURN_NOT_OK(r.ReadString(&ev.client));
  }
  if (r.remaining() != 0) {
    return Status::Corruption("flight event has " +
                              std::to_string(r.remaining()) +
                              " trailing bytes");
  }
  return ev;
}

std::string EventToJson(const QueryEvent& ev) {
  std::string out = "{\"type\": \"query_event\"";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ", \"start_unix_nanos\": %" PRId64 ", \"wall_nanos\": %" PRId64,
                ev.start_unix_nanos, ev.wall_nanos);
  out += buf;
  out += ", \"query\": ";
  AppendJsonString(&out, ev.query);
  out += ", \"table\": ";
  AppendJsonString(&out, ev.table);
  if (!ev.client.empty()) {
    out += ", \"client\": ";
    AppendJsonString(&out, ev.client);
  }
  std::snprintf(buf, sizeof(buf),
                ", \"generation\": %" PRIu64 ", \"sharded\": %s",
                ev.generation, ev.sharded ? "true" : "false");
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ", \"shards\": {\"total\": %" PRIu64 ", \"scanned\": %" PRIu64
                ", \"pruned\": %" PRIu64 ", \"covered\": %" PRIu64 "}",
                ev.shards_total, ev.shards_scanned, ev.shards_pruned,
                ev.shards_covered);
  out += buf;
  static const char* kTiers[3] = {"selection", "grid", "aggregate"};
  out += ", \"cache\": {";
  for (int t = 0; t < 3; ++t) {
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\": {\"hits\": %" PRIu64 ", \"misses\": %" PRIu64 "}",
                  t == 0 ? "" : ", ", kTiers[t], ev.cache_hits[t],
                  ev.cache_misses[t]);
    out += buf;
  }
  out += "}";
  std::snprintf(buf, sizeof(buf),
                ", \"chunk_faults\": %" PRIu64 ", \"chunk_cache_hits\": %" PRIu64
                ", \"io_read_bytes\": %" PRIu64,
                ev.chunk_faults, ev.chunk_cache_hits, ev.io_read_bytes);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ", \"imprints\": {\"scans\": %" PRIu64 ", \"cachelines_probed\": "
                "%" PRIu64 ", \"cachelines_full\": %" PRIu64
                ", \"values_checked\": %" PRIu64 "}",
                ev.imprint_scans, ev.imprint_cachelines_probed,
                ev.imprint_cachelines_full, ev.imprint_values_checked);
  out += buf;
  std::snprintf(buf, sizeof(buf), ", \"rows_out\": %" PRIu64 ", \"ok\": %s",
                ev.rows_out, ev.ok ? "true" : "false");
  out += buf;
  if (!ev.error.empty()) {
    out += ", \"error\": ";
    AppendJsonString(&out, ev.error);
  }
  std::snprintf(buf, sizeof(buf),
                ", \"digest_valid\": %s, \"result_digest\": %" PRIu32,
                ev.digest_valid ? "true" : "false", ev.result_digest);
  out += buf;
  std::snprintf(buf, sizeof(buf), ", \"critical_path_nanos\": %" PRId64,
                ev.critical_path_nanos);
  out += buf;
  out += ", \"spans\": {";
  for (size_t i = 0; i < ev.span_nanos.size(); ++i) {
    if (i) out += ", ";
    AppendJsonString(&out, ev.span_nanos[i].first);
    std::snprintf(buf, sizeof(buf), ": %" PRId64, ev.span_nanos[i].second);
    out += buf;
  }
  out += "}, \"shard_heat\": [";
  for (size_t i = 0; i < ev.shard_heat.size(); ++i) {
    const auto& t = ev.shard_heat[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"shard\": %" PRIu32 ", \"scans\": %" PRIu64
                  ", \"covered\": %" PRIu64 ", \"rows\": %" PRIu64 "}",
                  i == 0 ? "" : ", ", t.shard, t.scans, t.covered, t.rows);
    out += buf;
  }
  out += "], \"chunk_heat\": [";
  for (size_t i = 0; i < ev.chunk_heat.size(); ++i) {
    const auto& t = ev.chunk_heat[i];
    out += i == 0 ? "{\"file\": " : ", {\"file\": ";
    AppendJsonString(&out, t.file);
    std::snprintf(buf, sizeof(buf),
                  ", \"chunk\": %" PRIu32 ", \"touches\": %" PRIu64
                  ", \"faults\": %" PRIu64 "}",
                  t.chunk, t.touches, t.faults);
    out += buf;
  }
  out += "]}";
  return out;
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

Result<uint64_t> TruncateToValidPrefix(const std::string& path) {
  std::vector<uint8_t> bytes;
  GEOCOL_RETURN_NOT_OK(ReadFileBytes(path, &bytes));
  const uint64_t valid = ValidPrefixLength(bytes);
  if (valid < bytes.size()) {
    if (::truncate(path.c_str(), static_cast<off_t>(valid)) != 0) {
      return Status::IOError("truncate " + path + " failed");
    }
  }
  return valid;
}

Status FlightRecorder::OpenLocked(const std::string& path) {
  uint64_t size = 0;
  if (PathExists(path)) {
    GEOCOL_ASSIGN_OR_RETURN(size, TruncateToValidPrefix(path));
  }
  // A missing, empty or header-corrupt (truncated-to-zero) file gets a
  // fresh header before append mode.
  if (size < kHeaderBytes) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      return Status::IOError("flight recorder: cannot create " + path);
    }
    bool ok = std::fwrite(kMagic, 1, sizeof(kMagic), f) == sizeof(kMagic);
    ok = ok && std::fwrite(&kFormatVersion, 1, sizeof(kFormatVersion), f) ==
                   sizeof(kFormatVersion);
    ok = std::fclose(f) == 0 && ok;
    if (!ok) return Status::IOError("flight recorder: header write failed");
    size = kHeaderBytes;
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("flight recorder: cannot append to " + path);
  }
  path_ = path;
  size_bytes_ = size;
  return Status::OK();
}

Status FlightRecorder::Open(const std::string& path, Options options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr && path == path_) {
    options_ = options;
    return Status::OK();
  }
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  options_ = options;
  GEOCOL_RETURN_NOT_OK(OpenLocked(path));
  // Heat accumulated before recording started belongs to no event.
  ResetHeat();
  return Status::OK();
}

void FlightRecorder::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  path_.clear();
  size_bytes_ = 0;
}

bool FlightRecorder::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr;
}

std::string FlightRecorder::path() const {
  std::lock_guard<std::mutex> lock(mu_);
  return path_;
}

Status FlightRecorder::RotateLocked() {
  GEOCOL_METRIC_COUNTER(c_rotations, "geocol_flight_rotations_total");
  std::fclose(file_);
  file_ = nullptr;
  // rename(2) replaces a previous rotation atomically; retained history
  // is therefore bounded at ~2x max_bytes.
  GEOCOL_RETURN_NOT_OK(RenameFile(path_, path_ + ".1"));
  c_rotations.Increment();
  return OpenLocked(path_);
}

Status FlightRecorder::Append(const QueryEvent& ev) {
  GEOCOL_METRIC_COUNTER(c_events, "geocol_flight_events_total");
  GEOCOL_METRIC_COUNTER(c_bytes, "geocol_flight_bytes_total");
  GEOCOL_METRIC_COUNTER(c_errors, "geocol_flight_append_errors_total");
  std::vector<uint8_t> payload = SerializeEvent(ev);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32c(payload.data(), payload.size());

  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::InvalidArgument("flight recorder is not open");
  }
  const uint64_t frame_bytes = 2 * sizeof(uint32_t) + payload.size();
  if (size_bytes_ > kHeaderBytes &&
      size_bytes_ + frame_bytes > options_.max_bytes) {
    Status rotated = RotateLocked();
    if (!rotated.ok()) {
      c_errors.Increment();
      return rotated;
    }
  }
  bool ok = std::fwrite(&len, 1, sizeof(len), file_) == sizeof(len);
  ok = ok && std::fwrite(&crc, 1, sizeof(crc), file_) == sizeof(crc);
  ok = ok && std::fwrite(payload.data(), 1, payload.size(), file_) ==
                 payload.size();
  // No per-frame flush (it would cost a write syscall per statement —
  // measured over the E17 bar): the stream flushes at libc buffer
  // granularity, on Close and at process exit, so a crash loses at most
  // the buffered tail and the torn-tail scan on reopen drops any partial
  // frame cleanly. No fsync — the flight log is diagnostics, not a
  // durability contract.
  if (!ok) {
    c_errors.Increment();
    return Status::IOError("flight recorder: append to " + path_ + " failed");
  }
  size_bytes_ += frame_bytes;
  c_events.Increment();
  c_bytes.Increment(frame_bytes);
  return Status::OK();
}

Result<std::vector<QueryEvent>> ReadFlightLog(const std::string& path) {
  std::vector<uint8_t> bytes;
  GEOCOL_RETURN_NOT_OK(ReadFileBytes(path, &bytes));
  const uint64_t valid = ValidPrefixLength(bytes);
  std::vector<QueryEvent> events;
  uint64_t pos = kHeaderBytes;
  while (pos + 2 * sizeof(uint32_t) <= valid) {
    uint32_t len = 0;
    std::memcpy(&len, bytes.data() + pos, sizeof(len));
    std::vector<uint8_t> payload(
        bytes.begin() + static_cast<ptrdiff_t>(pos + 2 * sizeof(uint32_t)),
        bytes.begin() +
            static_cast<ptrdiff_t>(pos + 2 * sizeof(uint32_t) + len));
    // The CRC already passed in ValidPrefixLength; a frame that still
    // fails to parse is a format bug, surfaced rather than skipped.
    GEOCOL_ASSIGN_OR_RETURN(QueryEvent ev, DeserializeEvent(payload));
    events.push_back(std::move(ev));
    pos += 2 * sizeof(uint32_t) + len;
  }
  return events;
}

Result<std::vector<QueryEvent>> ReadFlightLogWithRotation(
    const std::string& path) {
  std::vector<QueryEvent> events;
  if (PathExists(path + ".1")) {
    GEOCOL_ASSIGN_OR_RETURN(events, ReadFlightLog(path + ".1"));
  }
  if (PathExists(path)) {
    GEOCOL_ASSIGN_OR_RETURN(std::vector<QueryEvent> tail,
                            ReadFlightLog(path));
    for (auto& ev : tail) events.push_back(std::move(ev));
  }
  return events;
}

}  // namespace telemetry
}  // namespace geocol
