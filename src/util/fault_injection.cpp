#include "util/fault_injection.h"

#include <cerrno>

#include "telemetry/metrics.h"

namespace geocol {

namespace {
/// Counts every injected failure (non-zero errno handed to the IO layer).
void CountTrip() {
  GEOCOL_METRIC_COUNTER(c_trips, "geocol_fault_injection_trips_total");
  c_trips.Increment();
}
}  // namespace

const char* FileOpName(FileOp op) {
  switch (op) {
    case FileOp::kOpen: return "open";
    case FileOp::kRead: return "read";
    case FileOp::kWrite: return "write";
    case FileOp::kFlush: return "flush";
    case FileOp::kSync: return "sync";
    case FileOp::kRename: return "rename";
    case FileOp::kUnlink: return "unlink";
    case FileOp::kClose: return "close";
  }
  return "?";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Arm(Mode mode, uint64_t k, size_t a, size_t b) {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = mode;
  k_ = k;
  param_a_ = a;
  param_b_ = b;
  flip_pending_ = false;
  ops_seen_.store(0, std::memory_order_relaxed);
  active_.store(mode != Mode::kOff, std::memory_order_release);
}

void FaultInjector::StartCounting() { Arm(Mode::kCounting, 0, 0, 0); }

uint64_t FaultInjector::StopCounting() {
  uint64_t seen = ops_seen();
  Disarm();
  return seen;
}

void FaultInjector::ArmCrashAtOp(uint64_t k) { Arm(Mode::kCrash, k, 0, 0); }

void FaultInjector::ArmTornWrite(uint64_t k, size_t keep_bytes) {
  Arm(Mode::kTornWrite, k, keep_bytes, 0);
}

void FaultInjector::ArmShortRead(uint64_t k, size_t keep_bytes) {
  Arm(Mode::kShortRead, k, keep_bytes, 0);
}

void FaultInjector::ArmBitFlip(uint64_t k, size_t byte_offset, uint8_t bit) {
  Arm(Mode::kBitFlip, k, byte_offset, bit);
}

void FaultInjector::ArmTransientErrors(uint64_t k, uint32_t count) {
  Arm(Mode::kTransient, k, count, 0);
}

void FaultInjector::Disarm() { Arm(Mode::kOff, 0, 0, 0); }

uint64_t FaultInjector::NextOp() {
  if (!active_.load(std::memory_order_acquire)) return 0;
  return ops_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
}

int FaultInjector::OnOp(FileOp op) {
  (void)op;
  uint64_t n = NextOp();
  if (n == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  if ((mode_ == Mode::kCrash || mode_ == Mode::kTornWrite) && n >= k_) {
    CountTrip();
    return EIO;
  }
  if (mode_ == Mode::kTransient && n >= k_ && n < k_ + param_a_) {
    CountTrip();
    return EINTR;
  }
  return 0;
}

int FaultInjector::OnWrite(size_t n, size_t* io_bytes) {
  uint64_t op = NextOp();
  if (op == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (mode_ == Mode::kCrash && op >= k_) {
    CountTrip();
    return EIO;
  }
  if (mode_ == Mode::kTornWrite && op >= k_) {
    // The failing write lands a prefix; anything later lands nothing.
    *io_bytes = op == k_ ? (param_a_ < n ? param_a_ : n) : 0;
    CountTrip();
    return EIO;
  }
  if (mode_ == Mode::kTransient && op >= k_ && op < k_ + param_a_) {
    *io_bytes = 0;  // a transient failure lands nothing
    CountTrip();
    return EINTR;
  }
  return 0;
}

int FaultInjector::OnRead(size_t n, size_t* io_bytes) {
  uint64_t op = NextOp();
  if (op == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  if ((mode_ == Mode::kCrash || mode_ == Mode::kTornWrite) && op >= k_) {
    CountTrip();
    return EIO;
  }
  if (mode_ == Mode::kTransient && op >= k_ && op < k_ + param_a_) {
    CountTrip();
    return EINTR;
  }
  if (mode_ == Mode::kShortRead && op == k_) {
    *io_bytes = param_a_ < n ? param_a_ : n;
  }
  if (mode_ == Mode::kBitFlip && op == k_) flip_pending_ = true;
  return 0;
}

void FaultInjector::OnReadData(void* data, size_t n) {
  if (!active_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!flip_pending_) return;
  flip_pending_ = false;
  if (param_a_ < n) {
    static_cast<uint8_t*>(data)[param_a_] ^=
        static_cast<uint8_t>(1u << (param_b_ & 7));
  }
}

}  // namespace geocol
