// Workload flight recorder (DESIGN.md §15): every executed SQL statement
// appends one compact structured event to a crash-safe binary log, so any
// captured session can later be inspected (`geocol top`, `geocol heat`)
// or re-executed bit-for-bit (`geocol replay`).
//
// On-disk format ("GFR1"):
//
//   [magic "GFR1"][u32 format_version]
//   frame*: [u32 payload_len][u32 crc32c(payload)][payload bytes]
//
// Appends are buffered stdio writes (flushed at libc buffer granularity,
// on Close and at process exit) — crash safety here means *torn-tail
// detection*, not durability: a reader (and reopen) walks frames until
// the first short/corrupt frame and treats the valid prefix as the log.
// Reopening for append truncates the file to that valid prefix first, so
// a crash mid-append never poisons later records. Rotation renames the log to `<path>.1` (replacing the
// previous rotation) once it exceeds `max_bytes`, bounding disk use at
// ~2x max_bytes.
#ifndef GEOCOL_TELEMETRY_RECORDER_H_
#define GEOCOL_TELEMETRY_RECORDER_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace geocol {
namespace telemetry {

/// One recorded query execution. Counter-valued fields are deltas over
/// the statement (global registry counters sampled before/after), so
/// events from one session attribute work per query exactly.
struct QueryEvent {
  /// v2 adds `client` (serialized last, so v1 frames still parse; a v1
  /// event reads back with an empty client tag).
  static constexpr uint32_t kVersion = 2;

  // Identity.
  int64_t start_unix_nanos = 0;  ///< wall clock at statement start
  int64_t wall_nanos = 0;        ///< end-to-end latency (parse+plan+execute)
  std::string query;             ///< SQL text as received
  std::string table;             ///< resolved FROM target ("" on parse error)
  std::string client;            ///< server connection tag ("" = local CLI)
  uint64_t generation = 0;       ///< shard-layout generation / view version
  bool sharded = false;
  std::vector<uint64_t> column_epochs;  ///< flat-table column epochs

  // Routing (sharded tables; zero for flat).
  uint64_t shards_total = 0;
  uint64_t shards_scanned = 0;
  uint64_t shards_pruned = 0;
  uint64_t shards_covered = 0;

  // Result-cache outcomes per tier: selection, grid, aggregate.
  uint64_t cache_hits[3] = {0, 0, 0};
  uint64_t cache_misses[3] = {0, 0, 0};

  // Paged-tier activity.
  uint64_t chunk_faults = 0;
  uint64_t chunk_cache_hits = 0;
  uint64_t io_read_bytes = 0;

  // Imprint activity.
  uint64_t imprint_scans = 0;
  uint64_t imprint_cachelines_probed = 0;
  uint64_t imprint_cachelines_full = 0;
  uint64_t imprint_values_checked = 0;

  // Outcome.
  uint64_t rows_out = 0;
  bool ok = true;
  std::string error;         ///< status message when !ok
  bool digest_valid = false; ///< digest replayable (not EXPLAIN ANALYZE)
  uint32_t result_digest = 0;  ///< CRC32C of the canonical result image

  // Latency breakdown: leaf-span nanos aggregated by span name, plus the
  // profile's honest wall figure.
  std::vector<std::pair<std::string, int64_t>> span_nanos;
  int64_t critical_path_nanos = 0;

  // Heat deltas drained after the statement (telemetry/heat.h).
  struct ShardTouch {
    uint32_t shard = 0;
    uint64_t scans = 0;
    uint64_t covered = 0;
    uint64_t rows = 0;
  };
  struct ChunkTouch {
    std::string file;
    uint32_t chunk = 0;
    uint64_t touches = 0;
    uint64_t faults = 0;
  };
  std::vector<ShardTouch> shard_heat;
  std::vector<ChunkTouch> chunk_heat;
};

/// Serializes `ev` to the frame payload byte image (format v1).
std::vector<uint8_t> SerializeEvent(const QueryEvent& ev);

/// Parses one frame payload. Corruption on malformed input.
Result<QueryEvent> DeserializeEvent(const std::vector<uint8_t>& payload);

/// One-line JSON rendering of an event (the JSONL export consumed by
/// tools/check_trace.py --flight).
std::string EventToJson(const QueryEvent& ev);

/// The process-wide append side of the flight recorder. Thread-safe:
/// Append serialises on an internal mutex (events are per-statement, so
/// contention is negligible next to query cost).
class FlightRecorder {
 public:
  struct Options {
    /// Rotate (rename to <path>.1) once the log exceeds this many bytes.
    uint64_t max_bytes = 64ull << 20;
  };

  static FlightRecorder& Global();

  /// Opens (or resumes) the log at `path`, creating parent state as
  /// needed. An existing log is scanned and truncated to its valid frame
  /// prefix, then opened for append. Resets accumulated heat so the
  /// first recorded event starts from a clean delta baseline.
  Status Open(const std::string& path, Options options);
  Status Open(const std::string& path) { return Open(path, Options()); }

  /// Stops recording and closes the file (flushes buffered frames).
  void Close();

  bool enabled() const;
  std::string path() const;

  /// Appends one event frame; rotates first when over budget. Errors are
  /// returned AND counted (geocol_flight_append_errors_total) — callers
  /// on the query path log once and keep serving.
  Status Append(const QueryEvent& ev);

 private:
  FlightRecorder() = default;

  Status OpenLocked(const std::string& path);
  Status RotateLocked();

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t size_bytes_ = 0;
  Options options_;
};

/// Reads every valid frame of `path`, stopping cleanly at the first
/// torn/corrupt frame (the crash-safety contract). Missing file is an
/// error; an empty or header-only file yields an empty vector.
Result<std::vector<QueryEvent>> ReadFlightLog(const std::string& path);

/// Reads `<path>.1` (if present) then `path`: the full retained history
/// in append order across one rotation.
Result<std::vector<QueryEvent>> ReadFlightLogWithRotation(
    const std::string& path);

/// Truncates `path` to its longest valid prefix (header + whole frames);
/// returns the prefix length. Exposed for tests and used by Open.
Result<uint64_t> TruncateToValidPrefix(const std::string& path);

}  // namespace telemetry
}  // namespace geocol

#endif  // GEOCOL_TELEMETRY_RECORDER_H_
