#include "core/table_appender.h"

#include <algorithm>

#include "columns/column_file.h"
#include "columns/csv.h"
#include "las/las_format.h"
#include "las/las_reader.h"
#include "telemetry/metrics.h"

namespace geocol {

TableAppender::TableAppender(std::shared_ptr<LiveTable> table)
    : table_(std::move(table)),
      staging_("staging", table_->Pin().table->schema()) {}

Status TableAppender::StageBatch(const FlatTable& batch) {
  GEOCOL_RETURN_NOT_OK(batch.Validate());
  if (!(batch.schema() == staging_.schema())) {
    return Status::InvalidArgument("batch schema differs from live table");
  }
  for (size_t i = 0; i < batch.num_columns(); ++i) {
    const ColumnPtr& src = batch.column(i);
    staging_.column(i)->AppendRaw(src->raw_data(), src->size());
  }
  return Status::OK();
}

Status TableAppender::StageLasFile(const std::string& path) {
  if (!(staging_.schema() == LasPointSchema())) {
    return Status::InvalidArgument(
        "live table does not use the LAS point schema");
  }
  GEOCOL_ASSIGN_OR_RETURN(LasTile tile, ReadLasFile(path));
  return AppendTileToTable(tile, &staging_);
}

Status TableAppender::StageCsvFile(const std::string& path) {
  GEOCOL_ASSIGN_OR_RETURN(FlatTable batch,
                          ReadCsv(path, staging_.schema(), "batch"));
  return StageBatch(batch);
}

Status TableAppender::Commit() {
  if (staging_.num_rows() == 0) return Status::OK();
  GEOCOL_METRIC_COUNTER(c_commits, "geocol_append_commits_total");
  GEOCOL_METRIC_COUNTER(c_rows, "geocol_append_rows_total");

  // Serialise against other appenders on this table: each commit chains
  // off the epoch the previous one published.
  std::lock_guard<std::mutex> commit_lock(table_->commit_mu_);
  EpochSnapshot cur = table_->Pin();

  const uint64_t added = staging_.num_rows();
  auto next = std::make_shared<FlatTable>(cur.table->name());
  for (size_t i = 0; i < cur.table->num_columns(); ++i) {
    const ColumnPtr& base = cur.table->column(i);
    ColumnPtr add = staging_.column(base->name());
    if (add == nullptr || add->type() != base->type()) {
      return Status::Internal("staging schema drifted from live table");
    }
    GEOCOL_ASSIGN_OR_RETURN(
        ColumnPtr appended,
        Column::CloneAppend(base, add->raw_data(), add->size()));
    // Seed the stats cache from base stats ∪ batch extremes so the new
    // version never pays an O(total rows) rescan on its first query (the
    // publish-time bbox read depends on this being cheap).
    const ColumnStats& as = add->Stats();
    if (base->empty()) {
      appended->SetCachedStats(as.min, as.max);
    } else {
      const ColumnStats& bs = base->Stats();
      appended->SetCachedStats(std::min(bs.min, as.min),
                               std::max(bs.max, as.max));
    }
    GEOCOL_RETURN_NOT_OK(next->AddColumn(std::move(appended)));
  }
  GEOCOL_RETURN_NOT_OK(next->Validate());

  // Durability first, visibility second: the manifest rename inside
  // WriteTableDir is the crash-commit point. If we die before it, reopen
  // sees the old epoch; after it, the new one; the in-memory swap below
  // only ever publishes states that are already safe on disk.
  if (!table_->options().dir.empty()) {
    GEOCOL_RETURN_NOT_OK(WriteTableDir(*next, table_->options().dir));
  }
  table_->Publish(std::move(next));

  c_commits.Increment();
  c_rows.Increment(added);
  for (size_t i = 0; i < staging_.num_columns(); ++i) {
    staging_.column(i)->Clear();
  }
  return Status::OK();
}

}  // namespace geocol
