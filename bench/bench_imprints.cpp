// E7 (paper §2.1.1): column-imprint microbenchmarks via google-benchmark —
// index build throughput, compression ratio vs clustering, bin-count
// ablation, and filter throughput vs selectivity.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/imprint_scan.h"
#include "pointcloud/generator.h"
#include "util/rng.h"

namespace geocol {
namespace {

ColumnPtr MakeColumn(int64_t n, double cluster, uint64_t seed = 99) {
  // cluster in [0,1]: 1 = smooth random walk (acquisition-like),
  // 0 = white noise over the same value range.
  Rng rng(seed);
  std::vector<double> vals(static_cast<size_t>(n));
  double walk = 0;
  for (auto& v : vals) {
    walk += rng.NextGaussian();
    double noise = rng.UniformDouble(-50, 50);
    v = cluster * walk + (1.0 - cluster) * noise;
  }
  return Column::FromVector("c", vals);
}

void BM_ImprintBuild(benchmark::State& state) {
  ColumnPtr col = MakeColumn(state.range(0), 1.0);
  for (auto _ : state) {
    auto ix = ImprintsIndex::Build(*col);
    benchmark::DoNotOptimize(ix);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetBytesProcessed(state.iterations() * col->raw_size_bytes());
}
BENCHMARK(BM_ImprintBuild)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);

void BM_ImprintBuildBins(benchmark::State& state) {
  ColumnPtr col = MakeColumn(1 << 20, 1.0);
  ImprintsOptions opts;
  opts.max_bins = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto ix = ImprintsIndex::Build(*col, opts);
    benchmark::DoNotOptimize(ix);
  }
  auto ix = ImprintsIndex::Build(*col, opts);
  state.counters["bins"] = ix->num_bins();
  state.counters["overhead%"] =
      ix->Storage(col->raw_size_bytes()).overhead_fraction * 100;
  state.SetItemsProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_ImprintBuildBins)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_ImprintCompression(benchmark::State& state) {
  // Arg is clustering in percent; counters expose the compression result.
  double cluster = state.range(0) / 100.0;
  ColumnPtr col = MakeColumn(1 << 21, cluster);
  for (auto _ : state) {
    auto ix = ImprintsIndex::Build(*col);
    benchmark::DoNotOptimize(ix);
  }
  auto ix = ImprintsIndex::Build(*col);
  ImprintsStorage s = ix->Storage(col->raw_size_bytes());
  state.counters["vectors_per_line"] = s.vectors_per_line;
  state.counters["overhead%"] = s.overhead_fraction * 100;
}
BENCHMARK(BM_ImprintCompression)->Arg(100)->Arg(75)->Arg(50)->Arg(0);

void BM_ImprintFilterSelectivity(benchmark::State& state) {
  ColumnPtr col = MakeColumn(1 << 21, 1.0);
  auto ix_res = ImprintsIndex::Build(*col);
  const ImprintsIndex& ix = *ix_res;
  double lo_dom = col->Stats().min, hi_dom = col->Stats().max;
  double frac = state.range(0) / 1000.0;
  double lo = lo_dom + (hi_dom - lo_dom) * 0.4;
  double hi = lo + (hi_dom - lo_dom) * frac;
  BitVector rows;
  ImprintScanStats stats;
  for (auto _ : state) {
    (void)ImprintRangeSelect(*col, ix, lo, hi, &rows, &stats);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["touched%"] = stats.TouchedFraction() * 100;
  state.counters["selected"] = static_cast<double>(stats.rows_selected);
  state.SetItemsProcessed(state.iterations() * col->size());
}
BENCHMARK(BM_ImprintFilterSelectivity)
    ->Arg(1)     // 0.1% of domain
    ->Arg(10)    // 1%
    ->Arg(100)   // 10%
    ->Arg(500);  // 50%

void BM_FullScanFilter(benchmark::State& state) {
  ColumnPtr col = MakeColumn(1 << 21, 1.0);
  double lo_dom = col->Stats().min, hi_dom = col->Stats().max;
  double lo = lo_dom + (hi_dom - lo_dom) * 0.4;
  double hi = lo + (hi_dom - lo_dom) * 0.01;
  BitVector rows;
  for (auto _ : state) {
    FullScanRangeSelect(*col, lo, hi, &rows);
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * col->size());
}
BENCHMARK(BM_FullScanFilter);

void BM_ImprintFilterOnAhnCoordinates(benchmark::State& state) {
  // The real workload: the x column of the synthetic AHN survey, strip
  // ordered, 1%-of-domain slab query.
  AhnGeneratorOptions opts;
  opts.extent = Box(85000, 444000, 85500, 444500);
  AhnGenerator gen(opts);
  auto table = gen.GenerateTable(1 << 20);
  ColumnPtr col = (*table)->column("x");
  auto ix_res = ImprintsIndex::Build(*col);
  double lo = 85200, hi = 85205;
  BitVector rows;
  ImprintScanStats stats;
  for (auto _ : state) {
    (void)ImprintRangeSelect(*col, *ix_res, lo, hi, &rows, &stats);
    benchmark::DoNotOptimize(rows);
  }
  state.counters["touched%"] = stats.TouchedFraction() * 100;
  state.SetItemsProcessed(state.iterations() * col->size());
}
BENCHMARK(BM_ImprintFilterOnAhnCoordinates);

}  // namespace
}  // namespace geocol

// Like BENCHMARK_MAIN(), but translates the harness-wide `--json <path>`
// flag into google-benchmark's JSON reporter so this binary emits the same
// artifact style as the TablePrinter-based benches.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::vector<std::string> extra;
  for (size_t i = 1; i + 1 < args.size(); ++i) {
    if (std::string(args[i]) == "--json") {
      extra.push_back(std::string("--benchmark_out=") + args[i + 1]);
      extra.push_back("--benchmark_out_format=json");
      args.erase(args.begin() + i, args.begin() + i + 2);
      break;
    }
  }
  for (std::string& s : extra) args.push_back(s.data());
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
