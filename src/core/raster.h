// Raster aggregation over spatial selections: digital surface models
// (per-cell elevation statistics) computed straight from the flat table —
// the product LIDAR surveys exist to produce ("the base of digital surface
// or elevation models", §1).
#ifndef GEOCOL_CORE_RASTER_H_
#define GEOCOL_CORE_RASTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columns/flat_table.h"
#include "geom/geometry.h"
#include "util/status.h"

namespace geocol {

/// A single-band float raster with world georeferencing.
struct Raster {
  Box extent;
  uint32_t cols = 0;
  uint32_t rows = 0;
  std::vector<float> values;      ///< row-major, rows * cols
  std::vector<uint32_t> counts;   ///< points aggregated per cell

  float At(uint32_t col, uint32_t row) const {
    return values[static_cast<size_t>(row) * cols + col];
  }
  uint32_t CountAt(uint32_t col, uint32_t row) const {
    return counts[static_cast<size_t>(row) * cols + col];
  }
  bool Empty(uint32_t col, uint32_t row) const {
    return CountAt(col, row) == 0;
  }
};

/// Per-cell statistic of the rasteriser.
enum class RasterStat { kMean, kMin, kMax, kCount };

/// Rasterises `value_column` of the given rows over `extent` into a
/// cols x rows grid. Rows outside the extent are clamped into edge cells.
/// Pass all table rows by leaving `rows` empty.
Result<Raster> RasterizeRows(const FlatTable& table,
                             const std::vector<uint64_t>& rows,
                             const std::string& value_column,
                             const Box& extent, uint32_t cols, uint32_t raster_rows,
                             RasterStat stat = RasterStat::kMean);

/// Fills empty cells from the nearest non-empty neighbour within
/// `max_steps` ring steps (simple void filling for DSM output).
void FillRasterVoids(Raster* raster, uint32_t max_steps = 4);

}  // namespace geocol

#endif  // GEOCOL_CORE_RASTER_H_
