#include "sql/ast.h"

#include <cstdio>

#include "geom/wkt.h"

namespace geocol {
namespace sql {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone: return "";
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
  }
  return "";
}

bool SelectStmt::IsAggregate() const {
  if (items.empty()) return false;
  for (const SelectItem& it : items) {
    if (it.agg == AggFunc::kNone) return false;
  }
  return true;
}

std::string SelectStmt::ToString() const {
  std::string s = "SELECT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) s += ", ";
    const SelectItem& it = items[i];
    if (it.agg != AggFunc::kNone) {
      s += AggFuncName(it.agg);
      s += '(';
      s += it.star ? "*" : it.column;
      s += ')';
    } else {
      s += it.star ? "*" : it.column;
    }
  }
  s += " FROM " + table;
  bool first = true;
  auto conj = [&]() {
    s += first ? " WHERE " : " AND ";
    first = false;
  };
  for (const RangePred& r : ranges) {
    conj();
    char buf[128];
    if (r.equality && r.lo == r.hi) {
      std::snprintf(buf, sizeof(buf), "%s = %g", r.column.c_str(), r.lo);
    } else if (r.lo == -std::numeric_limits<double>::infinity()) {
      std::snprintf(buf, sizeof(buf), "%s <= %g", r.column.c_str(), r.hi);
    } else if (r.hi == std::numeric_limits<double>::infinity()) {
      std::snprintf(buf, sizeof(buf), "%s >= %g", r.column.c_str(), r.lo);
    } else {
      std::snprintf(buf, sizeof(buf), "%s BETWEEN %g AND %g",
                    r.column.c_str(), r.lo, r.hi);
    }
    s += buf;
  }
  for (const SpatialPred& sp : spatial) {
    conj();
    char buf[64];
    switch (sp.kind) {
      case SpatialPred::Kind::kWithin:
        s += "ST_WITHIN(pt, '" + ToWkt(sp.geometry) + "')";
        break;
      case SpatialPred::Kind::kIntersects:
        s += "ST_INTERSECTS(geom, '" + ToWkt(sp.geometry) + "')";
        break;
      case SpatialPred::Kind::kDWithin:
        std::snprintf(buf, sizeof(buf), "', %g)", sp.distance);
        s += "ST_DWITHIN(pt, '" + ToWkt(sp.geometry) + buf;
        break;
      case SpatialPred::Kind::kNearLayer:
        std::snprintf(buf, sizeof(buf), ", %u, %g)", sp.feature_class,
                      sp.distance);
        s += "NEAR(" + sp.layer + buf;
        break;
    }
  }
  if (!order_by.empty()) {
    s += " ORDER BY " + order_by + (order_desc ? " DESC" : "");
  }
  if (limit >= 0) s += " LIMIT " + std::to_string(limit);
  return s;
}

}  // namespace sql
}  // namespace geocol
