// Vector layer file format tests.
#include <gtest/gtest.h>

#include <cstring>

#include "geom/wkt.h"
#include "gis/layer_io.h"
#include "pointcloud/terrain.h"
#include "pointcloud/vector_gen.h"
#include "util/binary_io.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

TEST(LayerIoTest, RoundTripAllGeometryKinds) {
  TempDir tmp;
  std::vector<VectorFeature> features;
  VectorFeature pt;
  pt.id = 1;
  pt.geometry = Geometry(Point{1.5, 2.5});
  pt.feature_class = 10;
  pt.name = "a point";
  features.push_back(pt);
  VectorFeature line;
  line.id = 2;
  LineString l;
  l.points = {{0, 0}, {10, 5}, {20, 0}};
  line.geometry = Geometry(l);
  line.feature_class = 20;
  line.name = "a line";
  features.push_back(line);
  VectorFeature poly;
  poly.id = 3;
  poly.geometry = Geometry(Polygon::FromBox(Box(0, 0, 5, 5)));
  poly.feature_class = 30;
  poly.name = "a polygon";
  features.push_back(poly);
  VectorFeature mp;
  mp.id = 4;
  MultiPolygon m;
  m.polygons.push_back(Polygon::FromBox(Box(0, 0, 1, 1)));
  m.polygons.push_back(Polygon::FromBox(Box(3, 3, 4, 4)));
  mp.geometry = Geometry(m);
  mp.feature_class = 40;
  mp.name = "a multipolygon";
  features.push_back(mp);

  auto layer = VectorLayer::FromFeatures("mixed", features);
  ASSERT_TRUE(WriteLayerFile(*layer, tmp.File("mixed.layer")).ok());
  auto back = ReadLayerFile(tmp.File("mixed.layer"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->name(), "mixed");
  ASSERT_EQ((*back)->size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    const VectorFeature& a = layer->feature(i);
    const VectorFeature& b = (*back)->feature(i);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.feature_class, b.feature_class);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.geometry.type(), b.geometry.type());
    EXPECT_EQ(ToWkt(a.geometry, 9), ToWkt(b.geometry, 9));
  }
}

TEST(LayerIoTest, ExplicitNameOverridesFileName) {
  TempDir tmp;
  auto layer = VectorLayer::FromFeatures("x", {});
  ASSERT_TRUE(WriteLayerFile(*layer, tmp.File("whatever.layer")).ok());
  auto back = ReadLayerFile(tmp.File("whatever.layer"), "roads");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->name(), "roads");
}

TEST(LayerIoTest, TabsInNamesSanitised) {
  TempDir tmp;
  VectorFeature f;
  f.id = 1;
  f.geometry = Geometry(Point{0, 0});
  f.name = "bad\tname\nwith breaks";
  auto layer = VectorLayer::FromFeatures("t", {f});
  ASSERT_TRUE(WriteLayerFile(*layer, tmp.File("t.layer")).ok());
  auto back = ReadLayerFile(tmp.File("t.layer"));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ((*back)->size(), 1u);
  EXPECT_EQ((*back)->feature(0).name, "bad name with breaks");
}

TEST(LayerIoTest, MalformedLinesRejected) {
  TempDir tmp;
  const char* bad1 = "1\t2\tonly three fields\n";
  ASSERT_TRUE(WriteFileBytes(tmp.File("bad1.layer"), bad1, strlen(bad1)).ok());
  EXPECT_EQ(ReadLayerFile(tmp.File("bad1.layer")).status().code(),
            StatusCode::kCorruption);
  const char* bad2 = "1\t2\tname\tNOT A GEOMETRY\n";
  ASSERT_TRUE(WriteFileBytes(tmp.File("bad2.layer"), bad2, strlen(bad2)).ok());
  EXPECT_EQ(ReadLayerFile(tmp.File("bad2.layer")).status().code(),
            StatusCode::kCorruption);
}

TEST(LayerIoTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadLayerFile("/no/such/file.layer").status().code(),
            StatusCode::kIOError);
}

TEST(LayerIoTest, GeneratedLayersSurviveRoundTrip) {
  TempDir tmp;
  Box extent(85000, 444000, 85500, 444500);
  TerrainModel terrain(7);
  OsmGenerator og(7, extent, terrain);
  auto roads = og.GenerateRoads(30);
  auto layer = VectorLayer::FromFeatures("osm", roads);
  ASSERT_TRUE(WriteLayerFile(*layer, tmp.File("osm.layer")).ok());
  auto back = ReadLayerFile(tmp.File("osm.layer"));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ((*back)->size(), roads.size());
  // Spatial queries agree between original and reloaded layer.
  Box q(85100, 444100, 85300, 444300);
  EXPECT_EQ(layer->QueryIntersecting(Geometry(q)),
            (*back)->QueryIntersecting(Geometry(q)));
}

}  // namespace
}  // namespace geocol
