// Minimal leveled logger. Benchmarks and the SQL shell use it for progress
// reporting; the library itself logs only at kWarning and above.
#ifndef GEOCOL_UTIL_LOGGING_H_
#define GEOCOL_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace geocol {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one log line to stderr; used via the GEOCOL_LOG macro.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

namespace internal {

/// Accumulates a stream-formatted message and emits it on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace geocol

#define GEOCOL_LOG(level)                                              \
  ::geocol::internal::LogStream(::geocol::LogLevel::k##level, __FILE__, \
                                __LINE__)

#endif  // GEOCOL_UTIL_LOGGING_H_
