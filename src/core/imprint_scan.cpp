#include "core/imprint_scan.h"

namespace geocol {

Status ImprintRangeSelect(const Column& column, const ImprintsIndex& index,
                          double lo, double hi, BitVector* out_rows,
                          ImprintScanStats* stats) {
  if (index.built_epoch() != column.epoch()) {
    return Status::Internal("stale imprints index (column was modified)");
  }
  out_rows->Resize(column.size());
  ImprintScanStats local;
  local.lines_total = index.num_lines();

  DispatchDataType(column.type(), [&]<typename T>() {
    std::span<const T> values = column.Values<T>();
    // Compare in the column's native type to avoid double-rounding
    // surprises for 64-bit integers; the bounds are clamped into range.
    index.FilterRangeRuns(lo, hi, [&](uint64_t first_line, uint64_t line_count,
                                      bool full) {
      local.lines_candidate += line_count;
      uint64_t first_row = index.LineRows(first_line).first;
      uint64_t last_row = index.LineRows(first_line + line_count - 1).second;
      if (full) {
        local.lines_full += line_count;
        out_rows->SetRange(first_row, last_row);
        local.rows_selected += last_row - first_row;
        return;
      }
      for (uint64_t r = first_row; r < last_row; ++r) {
        double v = static_cast<double>(values[r]);
        ++local.values_checked;
        if (v >= lo && v <= hi) {
          out_rows->Set(r);
          ++local.rows_selected;
        }
      }
    });
  });
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

void FullScanRangeSelect(const Column& column, double lo, double hi,
                         BitVector* out_rows) {
  out_rows->Resize(column.size());
  DispatchDataType(column.type(), [&]<typename T>() {
    std::span<const T> values = column.Values<T>();
    for (size_t r = 0; r < values.size(); ++r) {
      double v = static_cast<double>(values[r]);
      if (v >= lo && v <= hi) out_rows->Set(r);
    }
  });
}

Result<const ImprintsIndex*> ImprintManager::GetOrBuild(
    const ColumnPtr& column) {
  if (column == nullptr) return Status::InvalidArgument("null column");
  auto it = cache_.find(column.get());
  if (it != cache_.end() &&
      it->second.index->built_epoch() == column->epoch()) {
    return it->second.index.get();
  }
  GEOCOL_ASSIGN_OR_RETURN(ImprintsIndex built,
                          ImprintsIndex::Build(*column, options_));
  auto& entry = cache_[column.get()];
  entry.index = std::make_unique<ImprintsIndex>(std::move(built));
  return entry.index.get();
}

uint64_t ImprintManager::TotalStorageBytes() const {
  uint64_t total = 0;
  for (const auto& [col, entry] : cache_) {
    total += entry.index->Storage(0).total_bytes;
  }
  return total;
}

}  // namespace geocol
