#include "gis/layer_io.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "geom/wkt.h"
#include "util/binary_io.h"
#include "util/crc32c.h"

namespace geocol {

namespace {

/// Final line of a checksummed layer file; the CRC32C covers every byte
/// before this line. Legacy files simply end with the last feature line.
constexpr char kCrcPrefix[] = "#crc32c=";
constexpr size_t kCrcPrefixLen = sizeof(kCrcPrefix) - 1;

}  // namespace

Status WriteLayerFile(const VectorLayer& layer, const std::string& path) {
  std::string out;
  char line[128];
  for (const VectorFeature& feat : layer.features()) {
    // Names may not contain tabs/newlines in this format.
    std::string safe_name = feat.name;
    for (char& c : safe_name) {
      if (c == '\t' || c == '\n' || c == '\r') c = ' ';
    }
    std::snprintf(line, sizeof(line), "%llu\t%u\t",
                  static_cast<unsigned long long>(feat.id),
                  feat.feature_class);
    out += line;
    out += safe_name;
    out += '\t';
    out += ToWkt(feat.geometry, 9);
    out += '\n';
  }
  // Text CRC footer: stays grep-/diff-friendly, detects any flipped bit in
  // the feature lines, and the atomic write rules out torn files.
  uint32_t crc = Crc32c(out.data(), out.size());
  std::snprintf(line, sizeof(line), "%s%08X\n", kCrcPrefix, crc);
  out += line;
  return WriteFileAtomic(path, out.data(), out.size());
}

Result<std::shared_ptr<VectorLayer>> ReadLayerFile(const std::string& path,
                                                   const std::string& name) {
  std::vector<uint8_t> raw;
  GEOCOL_RETURN_NOT_OK(ReadFileBytes(path, &raw));
  std::string text(reinterpret_cast<const char*>(raw.data()), raw.size());

  // A checksummed file ends with "#crc32c=XXXXXXXX\n" covering everything
  // before that line; a legacy file has no footer and is accepted as-is.
  size_t last_line = text.rfind('\n', text.empty() ? 0 : text.size() - 2);
  last_line = last_line == std::string::npos ? 0 : last_line + 1;
  if (text.compare(last_line, kCrcPrefixLen, kCrcPrefix) == 0) {
    char* end = nullptr;
    unsigned long stored =
        std::strtoul(text.c_str() + last_line + kCrcPrefixLen, &end, 16);
    uint32_t computed = Crc32c(text.data(), last_line);
    if (static_cast<uint32_t>(stored) != computed) {
      return Status::Corruption("layer file crc mismatch: " + path);
    }
    text.resize(last_line);
  }

  std::string layer_name = name;
  if (layer_name.empty()) {
    size_t slash = path.find_last_of('/');
    layer_name = slash == std::string::npos ? path : path.substr(slash + 1);
    size_t dot = layer_name.find_last_of('.');
    if (dot != std::string::npos) layer_name = layer_name.substr(0, dot);
  }

  std::vector<VectorFeature> features;
  uint64_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    // Split into exactly 4 tab-separated fields.
    size_t t1 = line.find('\t');
    size_t t2 = t1 == std::string::npos ? t1 : line.find('\t', t1 + 1);
    size_t t3 = t2 == std::string::npos ? t2 : line.find('\t', t2 + 1);
    if (t3 == std::string::npos) {
      return Status::Corruption("layer file: line " + std::to_string(line_no) +
                                " does not have 4 fields");
    }
    VectorFeature feat;
    char* end = nullptr;
    feat.id = std::strtoull(line.c_str(), &end, 10);
    feat.feature_class =
        static_cast<uint32_t>(std::strtoul(line.c_str() + t1 + 1, &end, 10));
    feat.name = line.substr(t2 + 1, t3 - t2 - 1);
    auto geom = ParseWkt(line.substr(t3 + 1));
    if (!geom.ok()) {
      return Status::Corruption("layer file: line " + std::to_string(line_no) +
                                ": " + geom.status().message());
    }
    feat.geometry = *geom;
    features.push_back(std::move(feat));
  }
  return VectorLayer::FromFeatures(layer_name, std::move(features));
}

}  // namespace geocol
