// Loader pipeline tests: the binary (dump + COPY BINARY) path, the CSV
// baseline path, and the key equivalence property — both loaders and the
// direct in-memory append produce identical tables.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "las/las_writer.h"
#include "loader/binary_loader.h"
#include "loader/csv_loader.h"
#include "pointcloud/generator.h"
#include "util/binary_io.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

AhnGeneratorOptions TinyOptions() {
  AhnGeneratorOptions opts;
  opts.extent = Box(85000, 444000, 85100, 444100);
  opts.point_density = 2.0;
  opts.strip_width = 40.0;
  opts.scan_line_spacing = 0.7;
  opts.target_points_per_tile = 8000;
  return opts;
}

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gen_ = std::make_unique<AhnGenerator>(TinyOptions());
    ASSERT_TRUE(MakeDir(tiles_dir()).ok());
    ASSERT_TRUE(MakeDir(scratch_dir()).ok());
    auto tiles = gen_->WriteTileDirectory(tiles_dir(), /*compress=*/false);
    ASSERT_TRUE(tiles.ok());
    num_tiles_ = *tiles;
    // In-memory reference table (no file round trip).
    reference_ = std::make_shared<FlatTable>("ref", LasPointSchema());
    ASSERT_TRUE(gen_->GenerateTiles([&](LasTile& tile, uint64_t) {
      return AppendTileToTable(tile, reference_.get());
    }).ok());
  }

  std::string tiles_dir() const { return tmp_.File("tiles"); }
  std::string scratch_dir() const { return tmp_.File("scratch"); }

  static void ExpectTablesEqual(const FlatTable& a, const FlatTable& b) {
    ASSERT_EQ(a.num_columns(), b.num_columns());
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.column(c)->type(), b.column(c)->type());
      ASSERT_EQ(a.column(c)->raw_size_bytes(), b.column(c)->raw_size_bytes());
      EXPECT_EQ(std::memcmp(a.column(c)->raw_data(), b.column(c)->raw_data(),
                            a.column(c)->raw_size_bytes()),
                0)
          << "column " << a.column(c)->name();
    }
  }

  TempDir tmp_;
  std::unique_ptr<AhnGenerator> gen_;
  std::shared_ptr<FlatTable> reference_;
  uint64_t num_tiles_ = 0;
};

TEST_F(LoaderTest, BinaryLoaderMatchesDirectAppend) {
  BinaryLoader loader(scratch_dir());
  LoadStats stats;
  auto table = loader.LoadDirectory(tiles_dir(), &stats);
  ASSERT_TRUE(table.ok());
  ExpectTablesEqual(*reference_, **table);
  EXPECT_EQ(stats.files, num_tiles_);
  EXPECT_EQ(stats.points, reference_->num_rows());
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_GT(stats.TotalSeconds(), 0.0);
  EXPECT_GT(stats.PointsPerSecond(), 0.0);
}

TEST_F(LoaderTest, ParallelLoaderMatchesSequentialExactly) {
  BinaryLoader loader(scratch_dir());
  auto seq = loader.LoadDirectory(tiles_dir());
  ASSERT_TRUE(seq.ok());
  for (size_t threads : {1, 2, 4}) {
    LoadStats stats;
    auto par = loader.LoadDirectoryParallel(tiles_dir(), threads, &stats);
    ASSERT_TRUE(par.ok()) << threads << " threads";
    ExpectTablesEqual(**seq, **par);
    EXPECT_EQ(stats.points, (*seq)->num_rows());
    EXPECT_EQ(stats.files, num_tiles_);
  }
}

TEST_F(LoaderTest, ParallelLoaderPropagatesErrors) {
  std::string bad_dir = tmp_.File("badpar");
  ASSERT_TRUE(MakeDir(bad_dir).ok());
  ASSERT_TRUE(WriteFileBytes(bad_dir + "/junk.las", "GARBAGE!", 8).ok());
  BinaryLoader loader(scratch_dir());
  EXPECT_FALSE(loader.LoadDirectoryParallel(bad_dir, 3).ok());
}

TEST_F(LoaderTest, CsvLoaderMatchesBinaryLoaderExactly) {
  BinaryLoader bloader(scratch_dir());
  CsvLoader cloader(scratch_dir());
  auto bt = bloader.LoadDirectory(tiles_dir());
  auto ct = cloader.LoadDirectory(tiles_dir());
  ASSERT_TRUE(bt.ok());
  ASSERT_TRUE(ct.ok());
  // CSV doubles are written with %.17g (round-trip exact), so the two load
  // paths must produce bit-identical tables.
  ExpectTablesEqual(**bt, **ct);
}

TEST_F(LoaderTest, CompressedTilesLoadIdentically) {
  std::string laz_dir = tmp_.File("laz_tiles");
  ASSERT_TRUE(MakeDir(laz_dir).ok());
  ASSERT_TRUE(gen_->WriteTileDirectory(laz_dir, /*compress=*/true).ok());
  BinaryLoader loader(scratch_dir());
  auto table = loader.LoadDirectory(laz_dir);
  ASSERT_TRUE(table.ok());
  ExpectTablesEqual(*reference_, **table);
}

TEST_F(LoaderTest, ConvertToDumpsProduces26Files) {
  std::vector<std::string> files;
  ASSERT_TRUE(ListFiles(tiles_dir(), ".las", &files).ok());
  ASSERT_FALSE(files.empty());
  BinaryLoader loader(scratch_dir());
  auto dumps = loader.ConvertToDumps(files[0], "t0");
  ASSERT_TRUE(dumps.ok());
  EXPECT_EQ(dumps->size(), kLasAttributeCount);
  for (const auto& d : *dumps) EXPECT_TRUE(PathExists(d));
}

TEST_F(LoaderTest, CopyBinaryArityMismatchRejected) {
  BinaryLoader loader(scratch_dir());
  FlatTable table("pc", LasPointSchema());
  EXPECT_FALSE(loader.CopyBinary({"only", "three", "dumps"}, &table).ok());
}

TEST_F(LoaderTest, EmptyDirectoryIsNotFound) {
  std::string empty = tmp_.File("empty");
  ASSERT_TRUE(MakeDir(empty).ok());
  BinaryLoader loader(scratch_dir());
  EXPECT_EQ(loader.LoadDirectory(empty).status().code(),
            StatusCode::kNotFound);
  CsvLoader cloader(scratch_dir());
  EXPECT_EQ(cloader.LoadDirectory(empty).status().code(),
            StatusCode::kNotFound);
}

TEST_F(LoaderTest, CorruptTileSurfacesError) {
  std::string bad_dir = tmp_.File("bad");
  ASSERT_TRUE(MakeDir(bad_dir).ok());
  ASSERT_TRUE(WriteFileBytes(bad_dir + "/junk.las", "GARBAGE!", 8).ok());
  BinaryLoader loader(scratch_dir());
  EXPECT_EQ(loader.LoadDirectory(bad_dir).status().code(),
            StatusCode::kCorruption);
}

TEST_F(LoaderTest, StatsPhasesAllPopulated) {
  BinaryLoader loader(scratch_dir());
  LoadStats stats;
  ASSERT_TRUE(loader.LoadDirectory(tiles_dir(), &stats).ok());
  EXPECT_GT(stats.read_seconds, 0.0);
  EXPECT_GT(stats.convert_seconds, 0.0);
  EXPECT_GT(stats.append_seconds, 0.0);
}

}  // namespace
}  // namespace geocol
