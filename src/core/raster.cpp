#include "core/raster.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace geocol {

Result<Raster> RasterizeRows(const FlatTable& table,
                             const std::vector<uint64_t>& rows,
                             const std::string& value_column,
                             const Box& extent, uint32_t cols,
                             uint32_t raster_rows, RasterStat stat) {
  if (cols == 0 || raster_rows == 0) {
    return Status::InvalidArgument("raster dimensions must be positive");
  }
  if (extent.empty()) return Status::InvalidArgument("empty raster extent");
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr xc, table.GetColumn("x"));
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr yc, table.GetColumn("y"));
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr vc, table.GetColumn(value_column));

  Raster raster;
  raster.extent = extent;
  raster.cols = cols;
  raster.rows = raster_rows;
  size_t cells = static_cast<size_t>(cols) * raster_rows;
  raster.counts.assign(cells, 0);
  float init = 0.0f;
  if (stat == RasterStat::kMin) init = std::numeric_limits<float>::max();
  if (stat == RasterStat::kMax) init = std::numeric_limits<float>::lowest();
  raster.values.assign(cells, init);

  auto cell_of = [&](double x, double y) -> size_t {
    int64_t cx = static_cast<int64_t>((x - extent.min_x) / extent.width() * cols);
    int64_t cy =
        static_cast<int64_t>((y - extent.min_y) / extent.height() * raster_rows);
    cx = std::clamp<int64_t>(cx, 0, cols - 1);
    cy = std::clamp<int64_t>(cy, 0, raster_rows - 1);
    return static_cast<size_t>(cy) * cols + static_cast<size_t>(cx);
  };

  auto accumulate = [&](uint64_t r) {
    size_t cell = cell_of(xc->GetDouble(r), yc->GetDouble(r));
    float v = static_cast<float>(vc->GetDouble(r));
    switch (stat) {
      case RasterStat::kMean: raster.values[cell] += v; break;
      case RasterStat::kMin:
        raster.values[cell] = std::min(raster.values[cell], v);
        break;
      case RasterStat::kMax:
        raster.values[cell] = std::max(raster.values[cell], v);
        break;
      case RasterStat::kCount: break;
    }
    ++raster.counts[cell];
  };
  if (rows.empty()) {
    for (uint64_t r = 0; r < table.num_rows(); ++r) accumulate(r);
  } else {
    for (uint64_t r : rows) accumulate(r);
  }

  for (size_t c = 0; c < cells; ++c) {
    if (raster.counts[c] == 0) {
      raster.values[c] = 0.0f;
      continue;
    }
    if (stat == RasterStat::kMean) {
      raster.values[c] /= static_cast<float>(raster.counts[c]);
    } else if (stat == RasterStat::kCount) {
      raster.values[c] = static_cast<float>(raster.counts[c]);
    }
  }
  return raster;
}

void FillRasterVoids(Raster* raster, uint32_t max_steps) {
  // Iterative dilation: each pass fills empty cells adjacent to filled
  // ones with the neighbour average.
  for (uint32_t step = 0; step < max_steps; ++step) {
    std::vector<uint32_t> new_counts = raster->counts;
    std::vector<float> new_values = raster->values;
    bool changed = false;
    for (uint32_t ry = 0; ry < raster->rows; ++ry) {
      for (uint32_t cx = 0; cx < raster->cols; ++cx) {
        if (!raster->Empty(cx, ry)) continue;
        float sum = 0.0f;
        uint32_t n = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            int nx = static_cast<int>(cx) + dx;
            int ny = static_cast<int>(ry) + dy;
            if (nx < 0 || ny < 0 || nx >= static_cast<int>(raster->cols) ||
                ny >= static_cast<int>(raster->rows)) {
              continue;
            }
            if (!raster->Empty(nx, ny)) {
              sum += raster->At(nx, ny);
              ++n;
            }
          }
        }
        if (n > 0) {
          size_t at = static_cast<size_t>(ry) * raster->cols + cx;
          new_values[at] = sum / static_cast<float>(n);
          new_counts[at] = 1;
          changed = true;
        }
      }
    }
    raster->values = std::move(new_values);
    raster->counts = std::move(new_counts);
    if (!changed) break;
  }
}

}  // namespace geocol
