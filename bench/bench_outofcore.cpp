// E16: out-of-core paged execution (DESIGN.md §14).
//
// A clustered viewport workload (a map client panning across one corner
// of the survey) runs over the same persisted table three ways:
//
//   resident  — ReadTableDir: the whole payload in RAM (the tier-0 path)
//   paged-raw — ReadTableDirPaged over GCL2: chunks fault on demand into
//               a chunk cache budgeted at --budget-pct of the payload
//   paged-gpc — the same over GPC1, so every fault also decompresses
//
// Every mode runs in a forked child so peak RSS (wait4 → ru_maxrss) is
// per-mode, not cumulative, and so --rlimit-as-mb can clamp the child's
// address space: under a cap far below the payload the resident open
// must fail while the paged opens still answer — that is the point of
// the tier. The parent verifies all surviving modes return the same
// result count and exits nonzero if a paged mode fails or disagrees.
//
// Acceptance (EXPERIMENTS.md E16): with the budget at <= 25% of payload,
// steady-state clustered viewports within 2x of fully-resident, and the
// paged child's peak RSS bounded (far below the resident child's).
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "cache/chunk_cache.h"
#include "columns/column_file.h"
#include "columns/paged_column.h"
#include "core/spatial_engine.h"
#include "util/tempdir.h"

using namespace geocol;
using namespace geocol::bench;

namespace {

constexpr int kSweepSteps = 24;

struct ModeSpec {
  const char* name;
  const char* sub;  // table dir under the temp root
  bool paged;
};

// One viewport of the clustered pan: ~1% of the extent, drifting slowly
// so consecutive viewports overlap and faulted chunks get reused.
Box Viewport(const Box& extent, int step) {
  double side = std::sqrt(extent.area() * 0.01);
  double cx = extent.min_x +
              extent.width() * (0.2 + 0.5 * step / (kSweepSteps - 1.0));
  double cy = extent.min_y +
              extent.height() * (0.3 + 0.4 * step / (kSweepSteps - 1.0));
  return Box(cx - side / 2, cy - side / 2, cx + side / 2, cy + side / 2);
}

// Child side of one mode run. Opens the table, runs one warmup sweep,
// times BenchReps() steady-state sweeps, and reports one line on `wfd`:
//   OK <sweep_ms> <results> <payload_bytes> <budget_bytes> <faults> <hit%>
// Never returns.
[[noreturn]] void RunChild(const ModeSpec& mode, const std::string& dir,
                           uint64_t budget_pct, uint64_t rlimit_as_mb,
                           int wfd) {
  if (rlimit_as_mb > 0) {
    struct rlimit rl;
    rl.rlim_cur = rl.rlim_max = rlimit_as_mb << 20;
    ::setrlimit(RLIMIT_AS, &rl);
  }
  try {
    auto table = mode.paged ? ReadTableDirPaged(dir) : ReadTableDir(dir);
    if (!table.ok()) {
      dprintf(wfd, "ERR open: %s\n", table.status().ToString().c_str());
      _exit(1);
    }
    uint64_t payload = 0;
    for (const ColumnPtr& col : table->columns()) {
      payload += col->raw_size_bytes();
    }
    const uint64_t budget = payload * budget_pct / 100;
    if (mode.paged) {
      cache::ChunkCache::Global().SetBudget(budget);
      cache::ChunkCache::Global().Clear();
    }
    SpatialQueryEngine engine(
        std::make_shared<FlatTable>(std::move(*table)), EngineOptions{});
    const Box extent =
        SurveyOptions(BenchPoints(2000000)).extent;

    auto sweep = [&]() -> Result<uint64_t> {
      uint64_t total = 0;
      for (int s = 0; s < kSweepSteps; ++s) {
        GEOCOL_ASSIGN_OR_RETURN(auto r, engine.SelectInBox(Viewport(extent, s)));
        total += r.count();
      }
      return total;
    };

    auto warm = sweep();  // faults the working set once
    if (!warm.ok()) {
      dprintf(wfd, "ERR sweep: %s\n", warm.status().ToString().c_str());
      _exit(1);
    }
    uint64_t results = *warm;
    double ms = TimeMs([&] {
      auto r = sweep();
      if (!r.ok() || *r != results) _exit(2);
    });

    cache::ChunkCache::Stats cs = cache::ChunkCache::Global().GetStats();
    double hit_pct = cs.hits + cs.misses > 0
                         ? 100.0 * cs.hits / (cs.hits + cs.misses)
                         : 0.0;
    dprintf(wfd, "OK %.3f %llu %llu %llu %llu %.1f\n", ms,
            static_cast<unsigned long long>(results),
            static_cast<unsigned long long>(payload),
            static_cast<unsigned long long>(budget),
            static_cast<unsigned long long>(cs.misses), hit_pct);
    _exit(0);
  } catch (const std::exception& e) {
    dprintf(wfd, "ERR exception: %s\n", e.what());
    _exit(1);
  }
}

struct ModeResult {
  bool ok = false;
  std::string error;
  double sweep_ms = 0;
  uint64_t results = 0;
  uint64_t payload = 0;
  uint64_t budget = 0;
  uint64_t faults = 0;
  double hit_pct = 0;
  uint64_t peak_rss_kb = 0;
};

ModeResult RunMode(const ModeSpec& mode, const std::string& dir,
                   uint64_t budget_pct, uint64_t rlimit_as_mb) {
  ModeResult out;
  int fds[2];
  if (::pipe(fds) != 0) {
    out.error = "pipe failed";
    return out;
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    out.error = "fork failed";
    ::close(fds[0]);
    ::close(fds[1]);
    return out;
  }
  if (pid == 0) {
    ::close(fds[0]);
    RunChild(mode, dir, budget_pct, rlimit_as_mb, fds[1]);
  }
  ::close(fds[1]);
  std::string line;
  char buf[512];
  ssize_t n;
  while ((n = ::read(fds[0], buf, sizeof(buf))) > 0) line.append(buf, n);
  ::close(fds[0]);

  int status = 0;
  struct rusage ru;
  std::memset(&ru, 0, sizeof(ru));
  ::wait4(pid, &status, 0, &ru);
  out.peak_rss_kb = static_cast<uint64_t>(ru.ru_maxrss);  // KiB on Linux

  unsigned long long results, payload, budget, faults;
  if (std::sscanf(line.c_str(), "OK %lf %llu %llu %llu %llu %lf",
                  &out.sweep_ms, &results, &payload, &budget, &faults,
                  &out.hit_pct) == 6 &&
      WIFEXITED(status) && WEXITSTATUS(status) == 0) {
    out.ok = true;
    out.results = results;
    out.payload = payload;
    out.budget = budget;
    out.faults = faults;
  } else if (!line.empty()) {
    out.error = line.substr(0, line.find('\n'));
  } else if (WIFSIGNALED(status)) {
    out.error = std::string("killed by signal ") +
                std::to_string(WTERMSIG(status));
  } else {
    out.error = "child exited " + std::to_string(WEXITSTATUS(status));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  geocol::bench::InitBench(argc, argv);
  uint64_t budget_pct = 25;
  uint64_t rlimit_as_mb = 0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--budget-pct") == 0) {
      budget_pct = std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--rlimit-as-mb") == 0) {
      rlimit_as_mb = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  const uint64_t n = BenchPoints(2000000);
  Banner("E16: out-of-core paged execution (clustered viewport pan)",
         "paged scan vs fully-resident, chunk cache at a fraction of "
         "the payload, per-mode peak RSS from forked children");
  std::printf("points=%llu budget=%llu%% of payload rlimit_as=%llu MiB\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(budget_pct),
              static_cast<unsigned long long>(rlimit_as_mb));

  TempDir dir("bench-e16");
  // Build the table dirs in a throwaway child so the parent (and with it
  // every forked runner) never carries the generated survey in its RSS.
  {
    pid_t pid = ::fork();
    if (pid == 0) {
      auto table = GenerateSurvey(n);
      if (!WriteTableDir(*table, dir.File("raw")).ok() ||
          !WriteChunkedCompressedTableDir(*table, dir.File("gpc")).ok()) {
        _exit(1);
      }
      _exit(0);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "bench_outofcore: table build failed\n");
      return 1;
    }
  }

  const ModeSpec modes[] = {
      {"resident", "raw", false},
      {"paged-raw", "raw", true},
      {"paged-gpc", "gpc", true},
  };

  TablePrinter out({"mode", "sweep ms", "vs resident", "results", "payload",
                    "budget", "faults", "hit rate", "peak rss"},
                   12);
  double resident_ms = 0;
  uint64_t resident_results = 0;
  bool failed = false;
  for (const ModeSpec& mode : modes) {
    ModeResult r = RunMode(mode, dir.File(mode.sub), budget_pct, rlimit_as_mb);
    if (!r.ok) {
      // Under --rlimit-as-mb the resident open is EXPECTED to die — that
      // is the demonstration. A paged failure is a real failure.
      out.Row({mode.name, "FAIL", "-", "-", "-", "-", "-", "-",
               TablePrinter::Mb(r.peak_rss_kb * 1024)});
      std::fprintf(stderr, "bench_outofcore: %s: %s\n", mode.name,
                   r.error.c_str());
      if (mode.paged) failed = true;
      continue;
    }
    if (!mode.paged) {
      resident_ms = r.sweep_ms;
      resident_results = r.results;
    } else if (resident_results != 0 && r.results != resident_results) {
      std::fprintf(stderr,
                   "bench_outofcore: %s returned %llu results, resident "
                   "returned %llu\n",
                   mode.name, static_cast<unsigned long long>(r.results),
                   static_cast<unsigned long long>(resident_results));
      failed = true;
    }
    out.Row({mode.name, TablePrinter::Num(r.sweep_ms, 2),
             resident_ms > 0 ? TablePrinter::Num(r.sweep_ms / resident_ms, 2) +
                                   "x"
                             : "-",
             TablePrinter::Int(r.results), TablePrinter::Mb(r.payload),
             mode.paged ? TablePrinter::Mb(r.budget) : "-",
             mode.paged ? TablePrinter::Int(r.faults) : "-",
             mode.paged ? TablePrinter::Num(r.hit_pct, 1) + "%" : "-",
             TablePrinter::Mb(r.peak_rss_kb * 1024)});
  }
  return failed ? 1 : 0;
}
