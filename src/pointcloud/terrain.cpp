#include "pointcloud/terrain.h"

#include <algorithm>
#include <cmath>

namespace geocol {

namespace {
// 64-bit mix (SplitMix64 finaliser) — the lattice hash.
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

double SmoothStep(double t) { return t * t * (3.0 - 2.0 * t); }
}  // namespace

double TerrainModel::LatticeNoise(int64_t ix, int64_t iy, uint64_t salt) const {
  uint64_t h = Mix(static_cast<uint64_t>(ix) * 0x9E3779B97F4A7C15ULL ^
                   Mix(static_cast<uint64_t>(iy) ^ (seed_ + salt)));
  return (h >> 11) * 0x1.0p-53;
}

double TerrainModel::SmoothNoise(double x, double y, double freq,
                                 uint64_t salt) const {
  double fx = x * freq, fy = y * freq;
  int64_t ix = static_cast<int64_t>(std::floor(fx));
  int64_t iy = static_cast<int64_t>(std::floor(fy));
  double tx = SmoothStep(fx - ix);
  double ty = SmoothStep(fy - iy);
  double v00 = LatticeNoise(ix, iy, salt);
  double v10 = LatticeNoise(ix + 1, iy, salt);
  double v01 = LatticeNoise(ix, iy + 1, salt);
  double v11 = LatticeNoise(ix + 1, iy + 1, salt);
  double a = v00 + (v10 - v00) * tx;
  double b = v01 + (v11 - v01) * tx;
  return a + (b - a) * ty;
}

double TerrainModel::Fbm(double x, double y, double base_freq, int octaves,
                         uint64_t salt) const {
  double sum = 0.0, amp = 1.0, norm = 0.0, freq = base_freq;
  for (int o = 0; o < octaves; ++o) {
    sum += amp * SmoothNoise(x, y, freq, salt + o * 7919);
    norm += amp;
    amp *= 0.5;
    freq *= 2.0;
  }
  return sum / norm;
}

double TerrainModel::GroundElevation(double x, double y) const {
  // The Netherlands: mostly within [-5, +40] m; gentle large-scale relief
  // with fine detail.
  double coarse = Fbm(x, y, 1.0 / 2500.0, 4, 1);
  double fine = Fbm(x, y, 1.0 / 80.0, 3, 2);
  return -5.0 + coarse * 40.0 + (fine - 0.5) * 2.0;
}

double TerrainModel::UrbanFactor(double x, double y) const {
  // A few city kernels per 10 km with soft falloff.
  double n = Fbm(x, y, 1.0 / 1800.0, 3, 3);
  return std::clamp((n - 0.55) * 4.0, 0.0, 1.0);
}

bool TerrainModel::IsWater(double x, double y) const {
  // Polder channels and lakes: low-lying bands of a dedicated noise field.
  double n = Fbm(x, y, 1.0 / 900.0, 3, 4);
  return n < 0.30;
}

SurfaceSample TerrainModel::SampleAt(double x, double y) const {
  SurfaceSample s;
  double ground = GroundElevation(x, y);

  if (IsWater(x, y)) {
    s.classification = kClassWater;
    s.elevation = std::min(ground, -0.5);  // water level below surroundings
    s.intensity = static_cast<uint16_t>(20 + 30 * SmoothNoise(x, y, 0.5, 11));
    s.red = 30;
    s.green = 60;
    s.blue = 120;
    s.nir = 10;  // water absorbs NIR
    return s;
  }

  double urban = UrbanFactor(x, y);
  // Building lots: a 28 m lattice; a lot holds a building when the lot
  // hash clears the urban threshold. Building footprints fill ~60% of the
  // lot, leaving streets between them.
  constexpr double kLot = 28.0;
  int64_t lot_x = static_cast<int64_t>(std::floor(x / kLot));
  int64_t lot_y = static_cast<int64_t>(std::floor(y / kLot));
  double lot_rnd = LatticeNoise(lot_x, lot_y, 5);
  double in_lot_x = x - lot_x * kLot;
  double in_lot_y = y - lot_y * kLot;
  bool in_footprint = in_lot_x > kLot * 0.2 && in_lot_x < kLot * 0.8 &&
                      in_lot_y > kLot * 0.2 && in_lot_y < kLot * 0.8;
  if (urban > 0.05 && lot_rnd < urban * 0.85 && in_footprint) {
    double height = 4.0 + lot_rnd * 40.0 * (0.3 + urban);
    s.classification = kClassBuilding;
    s.elevation = ground + height;
    s.intensity = static_cast<uint16_t>(120 + 80 * LatticeNoise(lot_x, lot_y, 6));
    uint16_t shade = static_cast<uint16_t>(90 + 100 * LatticeNoise(lot_x, lot_y, 7));
    s.red = shade;
    s.green = shade;
    s.blue = static_cast<uint16_t>(shade * 0.9);
    s.nir = static_cast<uint16_t>(40 + 40 * lot_rnd);
    return s;
  }

  // Vegetation: denser away from cities.
  double veg = Fbm(x, y, 1.0 / 140.0, 3, 8) * (1.0 - 0.7 * urban);
  if (veg > 0.62) {
    double canopy = (veg - 0.62) / 0.38;  // 0..1
    double height = canopy * 25.0;
    s.elevation = ground + height;
    s.num_returns = height > 10 ? 3 : (height > 3 ? 2 : 1);
    s.classification = height > 8    ? kClassHighVegetation
                       : height > 1.5 ? kClassMediumVegetation
                                      : kClassLowVegetation;
    s.intensity = static_cast<uint16_t>(60 + 60 * veg);
    s.red = 40;
    s.green = static_cast<uint16_t>(90 + 80 * canopy);
    s.blue = 35;
    s.nir = static_cast<uint16_t>(180 + 60 * canopy);  // vegetation reflects NIR
    return s;
  }

  s.classification = kClassGround;
  s.elevation = ground;
  s.intensity = static_cast<uint16_t>(80 + 60 * SmoothNoise(x, y, 0.02, 9));
  s.red = static_cast<uint16_t>(110 + 40 * SmoothNoise(x, y, 0.01, 10));
  s.green = static_cast<uint16_t>(90 + 40 * SmoothNoise(x, y, 0.01, 12));
  s.blue = 70;
  s.nir = 120;
  return s;
}

}  // namespace geocol
