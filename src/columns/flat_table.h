// The flat table of the paper (§3.1): one column per point attribute, one
// tuple per point, no block reorganisation.
#ifndef GEOCOL_COLUMNS_FLAT_TABLE_H_
#define GEOCOL_COLUMNS_FLAT_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "columns/column.h"
#include "util/status.h"

namespace geocol {

/// A named column slot in a table schema.
struct Field {
  std::string name;
  DataType type;
};

/// An ordered list of fields with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of field `name`, or -1.
  int FieldIndex(const std::string& name) const;
  bool HasField(const std::string& name) const {
    return FieldIndex(name) >= 0;
  }

  bool operator==(const Schema& o) const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

/// A flat columnar table: equal-length columns, append-only.
class FlatTable {
 public:
  FlatTable() = default;
  explicit FlatTable(std::string name) : name_(std::move(name)) {}

  /// Builds a table with empty columns matching `schema`.
  FlatTable(std::string name, const Schema& schema);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Process-unique id assigned at construction. The query result cache
  /// keys on it (instead of the heap address) so a recycled allocation can
  /// never alias another table's cache entries.
  uint64_t table_id() const { return table_id_; }

  size_t num_columns() const { return columns_.size(); }
  uint64_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0]->size();
  }

  /// Adds a column; its length must match existing columns (or the table
  /// must be empty of columns).
  Status AddColumn(ColumnPtr column);

  /// Column by position.
  const ColumnPtr& column(size_t i) const { return columns_[i]; }
  ColumnPtr& column(size_t i) { return columns_[i]; }

  /// Column by name; nullptr when absent.
  ColumnPtr column(const std::string& name) const;

  /// Column by name or NotFound.
  Result<ColumnPtr> GetColumn(const std::string& name) const;

  const std::vector<ColumnPtr>& columns() const { return columns_; }

  Schema schema() const;

  /// Sum of column payload bytes (the "raw column storage" of E2).
  uint64_t DataBytes() const;

  /// Verifies all columns have equal length.
  Status Validate() const;

  /// Reorders every column with the same permutation (`perm[new] = old`).
  /// Bumps every column's epoch. `perm` must be a permutation of
  /// [0, num_rows).
  Status PermuteRows(const std::vector<uint64_t>& perm);

 private:
  static uint64_t NextTableId();

  std::string name_;
  uint64_t table_id_ = NextTableId();
  std::vector<ColumnPtr> columns_;
  std::unordered_map<std::string, size_t> by_name_;
};

}  // namespace geocol

#endif  // GEOCOL_COLUMNS_FLAT_TABLE_H_
