// Per-operator execution profile — the demo's scenario 2 lets users "see
// the plans of the queries and the execution time spent in each operator"
// (§4.2). Every engine query fills one of these.
#ifndef GEOCOL_CORE_PROFILE_H_
#define GEOCOL_CORE_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace geocol {

/// One executed operator: name, wall time, cardinalities. Parallel
/// operators additionally record how many workers participated; their
/// `nanos` is the operator's wall time, so summing over concurrently
/// executed operators can exceed the query's wall time.
struct OperatorProfile {
  std::string name;
  int64_t nanos = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint32_t workers = 1;  ///< threads that executed morsels of this operator
  std::string detail;  ///< free-form annotation ("mask=0x3f", "grid=64x48")
};

/// Ordered list of operator profiles for one query execution.
class QueryProfile {
 public:
  void Clear() { ops_.clear(); }

  void Add(std::string name, int64_t nanos, uint64_t rows_in,
           uint64_t rows_out, std::string detail = "") {
    ops_.push_back({std::move(name), nanos, rows_in, rows_out, 1,
                    std::move(detail)});
  }

  /// As Add, for operators executed by `workers` threads.
  void AddParallel(std::string name, int64_t nanos, uint64_t rows_in,
                   uint64_t rows_out, uint32_t workers,
                   std::string detail = "") {
    ops_.push_back({std::move(name), nanos, rows_in, rows_out,
                    workers == 0 ? 1 : workers, std::move(detail)});
  }

  /// Appends every operator of `other`, preserving order. Used to merge
  /// the branch-local profiles of concurrently executed filter steps back
  /// into the query profile in a deterministic order.
  void Append(const QueryProfile& other) {
    ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
  }

  const std::vector<OperatorProfile>& operators() const { return ops_; }
  bool empty() const { return ops_.empty(); }

  /// Sum of operator times.
  int64_t TotalNanos() const;

  /// Multi-line plan rendering:
  ///   filter.imprints.x      1.23 ms   12500 -> 830 lines  [mask=...]
  std::string ToString() const;

 private:
  std::vector<OperatorProfile> ops_;
};

}  // namespace geocol

#endif  // GEOCOL_CORE_PROFILE_H_
