#include "util/fd_cache.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "telemetry/metrics.h"
#include "util/binary_io.h"
#include "util/fault_injection.h"

namespace geocol {

namespace {

size_t DefaultCapacity() {
  const char* v = std::getenv("GEOCOL_MAX_OPEN_FILES");
  if (v != nullptr) {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != v && parsed > 0) return static_cast<size_t>(parsed);
  }
  return 256;
}

}  // namespace

FileHandle::~FileHandle() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileHandle::ReadAt(uint64_t offset, void* data, size_t n) const {
  return PreadExact(fd_, offset, data, n, path_);
}

Result<std::shared_ptr<FileHandle>> FileHandle::Open(const std::string& path) {
  // open(2) can fail with EINTR just like a read; a chunk fault must not
  // surface a transient signal as a hard I/O error, so retry the same
  // bounded number of times as PreadExact.
  constexpr int kMaxOpenAttempts = 3;
  int fd = -1;
  int err = 0;
  for (int attempt = 1; attempt <= kMaxOpenAttempts; ++attempt) {
    err = FaultInjector::Global().OnOp(FileOp::kOpen);
    if (err == 0) {
      fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
      if (fd >= 0) break;
      err = errno;
    }
    if (err != EINTR && err != EAGAIN) break;
  }
  if (fd < 0) {
    return Status::IOError("cannot open for read " + path + ": " +
                           std::strerror(err) + " (errno " +
                           std::to_string(err) + ")");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status bad = Status::IOError("cannot stat " + path + ": " +
                                 std::strerror(errno));
    ::close(fd);
    return bad;
  }
  return std::shared_ptr<FileHandle>(
      new FileHandle(fd, path, static_cast<uint64_t>(st.st_size)));
}

FdCache& FdCache::Global() {
  static FdCache* cache = new FdCache(DefaultCapacity());
  return *cache;
}

void FdCache::UpdateGauge() const {
  GEOCOL_METRIC_GAUGE(g_open, "geocol_open_files");
  g_open.Set(static_cast<int64_t>(entries_.size()));
}

void FdCache::EvictLockedIfNeeded() {
  GEOCOL_METRIC_COUNTER(c_evict, "geocol_fd_cache_evictions_total");
  while (entries_.size() > capacity_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);  // pins elsewhere keep the fd alive
    ++evictions_;
    c_evict.Increment();
  }
}

Result<std::shared_ptr<FileHandle>> FdCache::Get(const std::string& path) {
  GEOCOL_METRIC_COUNTER(c_hit, "geocol_fd_cache_hits_total");
  GEOCOL_METRIC_COUNTER(c_miss, "geocol_fd_cache_misses_total");
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(path);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      ++hits_;
      c_hit.Increment();
      return it->second.handle;
    }
  }
  // Open outside the lock: a slow open (or an injected failure) must not
  // stall hits on other files.
  GEOCOL_ASSIGN_OR_RETURN(auto handle, FileHandle::Open(path));
  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  c_miss.Increment();
  auto it = entries_.find(path);
  if (it != entries_.end()) {
    // Another thread won the race; keep its handle (ours closes when
    // `handle` goes out of scope).
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.handle;
  }
  lru_.push_front(path);
  entries_[path] = Entry{handle, lru_.begin()};
  EvictLockedIfNeeded();
  UpdateGauge();
  return handle;
}

void FdCache::Invalidate(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(path);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  UpdateGauge();
}

void FdCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  entries_.clear();
  UpdateGauge();
}

void FdCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  EvictLockedIfNeeded();
  UpdateGauge();
}

size_t FdCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

FdCache::Stats FdCache::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.open_files = entries_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace geocol
