// Wall-clock timing helpers used by the benchmark harnesses and the
// per-operator query profiler.
#ifndef GEOCOL_UTIL_TIMER_H_
#define GEOCOL_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace geocol {

/// Monotonic stopwatch. Started on construction; Restart() resets.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple start/stop intervals.
class AccumulatingTimer {
 public:
  void Start() { timer_.Restart(); running_ = true; }
  void Stop() {
    if (running_) {
      total_nanos_ += timer_.ElapsedNanos();
      running_ = false;
    }
  }
  int64_t TotalNanos() const { return total_nanos_; }
  double TotalMillis() const { return total_nanos_ / 1e6; }
  void Reset() { total_nanos_ = 0; running_ = false; }

 private:
  Timer timer_;
  int64_t total_nanos_ = 0;
  bool running_ = false;
};

}  // namespace geocol

#endif  // GEOCOL_UTIL_TIMER_H_
