#include "las/las_format.h"

#include <algorithm>
#include <cstring>

namespace geocol {

void LasTile::RecomputeHeader() {
  header.point_count = points.size();
  for (int a = 0; a < 3; ++a) {
    header.min_world[a] = points.empty() ? 0.0 : 1e300;
    header.max_world[a] = points.empty() ? 0.0 : -1e300;
  }
  for (const LasPointRecord& p : points) {
    double w[3] = {WorldX(p), WorldY(p), WorldZ(p)};
    for (int a = 0; a < 3; ++a) {
      header.min_world[a] = std::min(header.min_world[a], w[a]);
      header.max_world[a] = std::max(header.max_world[a], w[a]);
    }
  }
}

const std::vector<Field>& LasPointFields() {
  static const std::vector<Field> kFields = {
      {"x", DataType::kFloat64},
      {"y", DataType::kFloat64},
      {"z", DataType::kFloat64},
      {"intensity", DataType::kUInt16},
      {"return_number", DataType::kUInt8},
      {"number_of_returns", DataType::kUInt8},
      {"scan_direction", DataType::kUInt8},
      {"edge_of_flight_line", DataType::kUInt8},
      {"classification", DataType::kUInt8},
      {"synthetic_flag", DataType::kUInt8},
      {"key_point_flag", DataType::kUInt8},
      {"withheld_flag", DataType::kUInt8},
      {"scan_angle", DataType::kInt8},
      {"user_data", DataType::kUInt8},
      {"point_source_id", DataType::kUInt16},
      {"gps_time", DataType::kFloat64},
      {"red", DataType::kUInt16},
      {"green", DataType::kUInt16},
      {"blue", DataType::kUInt16},
      {"nir", DataType::kUInt16},
      {"wave_descriptor", DataType::kUInt8},
      {"wave_offset", DataType::kUInt64},
      {"wave_packet_size", DataType::kUInt32},
      {"wave_return_location", DataType::kFloat32},
      {"wave_x", DataType::kFloat32},
      {"wave_y", DataType::kFloat32},
  };
  return kFields;
}

Schema LasPointSchema() { return Schema(LasPointFields()); }

namespace {
template <typename T>
void Put(uint8_t*& dst, T v) {
  std::memcpy(dst, &v, sizeof(T));
  dst += sizeof(T);
}
template <typename T>
void Take(const uint8_t*& src, T* v) {
  std::memcpy(v, src, sizeof(T));
  src += sizeof(T);
}
}  // namespace

void SerializeRecord(const LasPointRecord& p, uint8_t* dst) {
  uint8_t* d = dst;
  Put(d, p.x);
  Put(d, p.y);
  Put(d, p.z);
  Put(d, p.intensity);
  Put(d, p.return_number);
  Put(d, p.number_of_returns);
  Put(d, p.scan_direction);
  Put(d, p.edge_of_flight_line);
  Put(d, p.classification);
  Put(d, p.synthetic_flag);
  Put(d, p.key_point_flag);
  Put(d, p.withheld_flag);
  Put(d, p.scan_angle);
  Put(d, p.user_data);
  Put(d, p.point_source_id);
  Put(d, p.gps_time);
  Put(d, p.red);
  Put(d, p.green);
  Put(d, p.blue);
  Put(d, p.nir);
  Put(d, p.wave_descriptor);
  Put(d, p.wave_offset);
  Put(d, p.wave_packet_size);
  Put(d, p.wave_return_location);
  Put(d, p.wave_x);
  Put(d, p.wave_y);
  static_assert(kLasRecordBytes == 67, "record layout drifted");
}

void DeserializeRecord(const uint8_t* src, LasPointRecord* p) {
  const uint8_t* s = src;
  Take(s, &p->x);
  Take(s, &p->y);
  Take(s, &p->z);
  Take(s, &p->intensity);
  Take(s, &p->return_number);
  Take(s, &p->number_of_returns);
  Take(s, &p->scan_direction);
  Take(s, &p->edge_of_flight_line);
  Take(s, &p->classification);
  Take(s, &p->synthetic_flag);
  Take(s, &p->key_point_flag);
  Take(s, &p->withheld_flag);
  Take(s, &p->scan_angle);
  Take(s, &p->user_data);
  Take(s, &p->point_source_id);
  Take(s, &p->gps_time);
  Take(s, &p->red);
  Take(s, &p->green);
  Take(s, &p->blue);
  Take(s, &p->nir);
  Take(s, &p->wave_descriptor);
  Take(s, &p->wave_offset);
  Take(s, &p->wave_packet_size);
  Take(s, &p->wave_return_location);
  Take(s, &p->wave_x);
  Take(s, &p->wave_y);
}

Status AppendTileToTable(const LasTile& tile, FlatTable* table) {
  if (table->num_columns() != kLasAttributeCount) {
    return Status::InvalidArgument("table does not have the LAS point schema");
  }
  size_t n = tile.points.size();
  // Columnar append: one pass per attribute keeps each column's memory hot
  // and mirrors the loader's per-attribute binary dumps.
  std::vector<double> dbuf(n);
  for (size_t i = 0; i < n; ++i) dbuf[i] = tile.WorldX(tile.points[i]);
  table->column(0)->AppendSpan<double>(dbuf);
  for (size_t i = 0; i < n; ++i) dbuf[i] = tile.WorldY(tile.points[i]);
  table->column(1)->AppendSpan<double>(dbuf);
  for (size_t i = 0; i < n; ++i) dbuf[i] = tile.WorldZ(tile.points[i]);
  table->column(2)->AppendSpan<double>(dbuf);

  auto append = [&](size_t col, auto getter) {
    using T = decltype(getter(tile.points[0]));
    std::vector<T> buf(n);
    for (size_t i = 0; i < n; ++i) buf[i] = getter(tile.points[i]);
    table->column(col)->AppendSpan<T>(buf);
  };
  size_t c = 3;
  append(c++, [](const LasPointRecord& p) { return p.intensity; });
  append(c++, [](const LasPointRecord& p) { return p.return_number; });
  append(c++, [](const LasPointRecord& p) { return p.number_of_returns; });
  append(c++, [](const LasPointRecord& p) { return p.scan_direction; });
  append(c++, [](const LasPointRecord& p) { return p.edge_of_flight_line; });
  append(c++, [](const LasPointRecord& p) { return p.classification; });
  append(c++, [](const LasPointRecord& p) { return p.synthetic_flag; });
  append(c++, [](const LasPointRecord& p) { return p.key_point_flag; });
  append(c++, [](const LasPointRecord& p) { return p.withheld_flag; });
  append(c++, [](const LasPointRecord& p) { return p.scan_angle; });
  append(c++, [](const LasPointRecord& p) { return p.user_data; });
  append(c++, [](const LasPointRecord& p) { return p.point_source_id; });
  append(c++, [](const LasPointRecord& p) { return p.gps_time; });
  append(c++, [](const LasPointRecord& p) { return p.red; });
  append(c++, [](const LasPointRecord& p) { return p.green; });
  append(c++, [](const LasPointRecord& p) { return p.blue; });
  append(c++, [](const LasPointRecord& p) { return p.nir; });
  append(c++, [](const LasPointRecord& p) { return p.wave_descriptor; });
  append(c++, [](const LasPointRecord& p) { return p.wave_offset; });
  append(c++, [](const LasPointRecord& p) { return p.wave_packet_size; });
  append(c++, [](const LasPointRecord& p) { return p.wave_return_location; });
  append(c++, [](const LasPointRecord& p) { return p.wave_x; });
  append(c++, [](const LasPointRecord& p) { return p.wave_y; });
  return table->Validate();
}

Result<std::vector<LasPointRecord>> TableToRecords(const FlatTable& table,
                                                   const LasHeader& header) {
  if (table.num_columns() != kLasAttributeCount) {
    return Status::InvalidArgument("table does not have the LAS point schema");
  }
  GEOCOL_RETURN_NOT_OK(table.Validate());
  LasTile shim;
  shim.header = header;
  uint64_t n = table.num_rows();
  std::vector<LasPointRecord> out(n);
  auto col = [&](const char* name) { return table.column(name); };
  ColumnPtr x = col("x"), y = col("y"), z = col("z");
  for (uint64_t r = 0; r < n; ++r) {
    LasPointRecord& p = out[r];
    p.x = shim.RawX(x->GetDouble(r));
    p.y = shim.RawY(y->GetDouble(r));
    p.z = shim.RawZ(z->GetDouble(r));
  }
  auto fill = [&](const char* name, auto setter) {
    ColumnPtr c2 = col(name);
    for (uint64_t r = 0; r < n; ++r) setter(&out[r], *c2, r);
  };
  fill("intensity", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->intensity = static_cast<uint16_t>(c.GetInt64(r));
  });
  fill("return_number", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->return_number = static_cast<uint8_t>(c.GetInt64(r));
  });
  fill("number_of_returns", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->number_of_returns = static_cast<uint8_t>(c.GetInt64(r));
  });
  fill("scan_direction", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->scan_direction = static_cast<uint8_t>(c.GetInt64(r));
  });
  fill("edge_of_flight_line", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->edge_of_flight_line = static_cast<uint8_t>(c.GetInt64(r));
  });
  fill("classification", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->classification = static_cast<uint8_t>(c.GetInt64(r));
  });
  fill("synthetic_flag", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->synthetic_flag = static_cast<uint8_t>(c.GetInt64(r));
  });
  fill("key_point_flag", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->key_point_flag = static_cast<uint8_t>(c.GetInt64(r));
  });
  fill("withheld_flag", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->withheld_flag = static_cast<uint8_t>(c.GetInt64(r));
  });
  fill("scan_angle", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->scan_angle = static_cast<int8_t>(c.GetInt64(r));
  });
  fill("user_data", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->user_data = static_cast<uint8_t>(c.GetInt64(r));
  });
  fill("point_source_id", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->point_source_id = static_cast<uint16_t>(c.GetInt64(r));
  });
  fill("gps_time", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->gps_time = c.GetDouble(r);
  });
  fill("red", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->red = static_cast<uint16_t>(c.GetInt64(r));
  });
  fill("green", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->green = static_cast<uint16_t>(c.GetInt64(r));
  });
  fill("blue", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->blue = static_cast<uint16_t>(c.GetInt64(r));
  });
  fill("nir", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->nir = static_cast<uint16_t>(c.GetInt64(r));
  });
  fill("wave_descriptor", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->wave_descriptor = static_cast<uint8_t>(c.GetInt64(r));
  });
  fill("wave_offset", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->wave_offset = static_cast<uint64_t>(c.GetInt64(r));
  });
  fill("wave_packet_size", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->wave_packet_size = static_cast<uint32_t>(c.GetInt64(r));
  });
  fill("wave_return_location", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->wave_return_location = static_cast<float>(c.GetDouble(r));
  });
  fill("wave_x", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->wave_x = static_cast<float>(c.GetDouble(r));
  });
  fill("wave_y", [](LasPointRecord* p, const Column& c, uint64_t r) {
    p->wave_y = static_cast<float>(c.GetDouble(r));
  });
  return out;
}

}  // namespace geocol
