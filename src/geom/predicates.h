// Exact geometric predicates used by the refinement step and the vector
// layer joins: containment, intersection and distance tests over the Simple
// Features subset in geometry.h.
#ifndef GEOCOL_GEOM_PREDICATES_H_
#define GEOCOL_GEOM_PREDICATES_H_

#include "geom/geometry.h"

namespace geocol {

/// Relation of an axis-aligned box to a region: fully inside, fully
/// outside, or crossing the region's boundary. The regular-grid refinement
/// step (paper §3.3) decides kInside cells wholesale, discards kOutside
/// cells, and falls back to per-point tests only for kBoundary cells.
enum class BoxRelation : uint8_t { kOutside = 0, kInside = 1, kBoundary = 2 };

// ---- point / segment primitives --------------------------------------

/// 2x signed area of triangle (a,b,c); >0 when c is left of a->b.
double Orient2D(const Point& a, const Point& b, const Point& c);

/// True if point p lies on segment [a,b] (inclusive of endpoints).
bool PointOnSegment(const Point& p, const Point& a, const Point& b);

/// True if segments [a,b] and [c,d] intersect (touching counts).
bool SegmentsIntersect(const Point& a, const Point& b, const Point& c,
                       const Point& d);

/// Squared Euclidean distance between two points.
double DistanceSquared(const Point& a, const Point& b);

/// Squared distance from p to segment [a,b].
double PointSegmentDistanceSquared(const Point& p, const Point& a,
                                   const Point& b);

// ---- point-in-region tests --------------------------------------------

/// Even-odd crossing test; boundary points count as inside.
bool PointInRing(const Point& p, const Ring& ring);

/// Inside the shell and outside every hole.
bool PointInPolygon(const Point& p, const Polygon& poly);

bool PointInMultiPolygon(const Point& p, const MultiPolygon& mp);

/// Dispatch over Geometry (box/polygon/multipolygon; a line or point region
/// contains only points exactly on it).
bool GeometryContainsPoint(const Geometry& g, const Point& p);

// ---- distance ----------------------------------------------------------

/// Distance from a point to a linestring (0 if on it).
double PointLineDistance(const Point& p, const LineString& line);

/// Distance from a point to a polygon (0 if inside).
double PointPolygonDistance(const Point& p, const Polygon& poly);

/// Distance from p to geometry g (0 when p is within g).
double GeometryPointDistance(const Geometry& g, const Point& p);

/// True when distance(g, p) <= d. Cheaper than computing the distance when
/// an early envelope check rejects.
bool GeometryDWithin(const Geometry& g, const Point& p, double d);

// ---- batched predicates -------------------------------------------------
// Structure-of-arrays versions of the point tests above, routed through the
// SIMD kernel layer (src/simd). Each is bit-identical to calling its scalar
// counterpart per point: out[i] == f({xs[i], ys[i]}) for every i, at every
// dispatch level. The geometry-level composition (type switch, hole logic,
// sqrt) stays scalar; only the per-edge/per-segment inner loops vectorize.

/// out[i] = PointInPolygon({xs[i], ys[i]}, poly), as 0/1 bytes.
void PointInPolygonBatch(const double* xs, const double* ys, size_t n,
                         const Polygon& poly, uint8_t* out);

/// out[i] = GeometryContainsPoint(g, {xs[i], ys[i]}), as 0/1 bytes.
void GeometryContainsPointBatch(const Geometry& g, const double* xs,
                                const double* ys, size_t n, uint8_t* out);

/// out[i] = GeometryPointDistance(g, {xs[i], ys[i]}).
void GeometryPointDistanceBatch(const Geometry& g, const double* xs,
                                const double* ys, size_t n, double* out);

/// out[i] = GeometryDWithin(g, {xs[i], ys[i]}, d), as 0/1 bytes.
void GeometryDWithinBatch(const Geometry& g, double d, const double* xs,
                          const double* ys, size_t n, uint8_t* out);

// ---- box / region relations --------------------------------------------

/// True if segment [a,b] intersects `box`.
bool SegmentIntersectsBox(const Point& a, const Point& b, const Box& box);

/// True if `ring`'s boundary crosses `box` (any edge intersects it).
bool RingBoundaryIntersectsBox(const Ring& ring, const Box& box);

/// Classifies `box` against the polygon region.
BoxRelation ClassifyBoxPolygon(const Box& box, const Polygon& poly);

/// Classifies `box` against an arbitrary query geometry, including
/// distance-buffered geometries when `buffer > 0` ("within d of g").
/// For buffered line/point geometries the kInside classification is
/// conservative (may return kBoundary for boxes that are actually inside);
/// refinement remains correct, just less able to short-cut.
BoxRelation ClassifyBoxGeometry(const Box& box, const Geometry& g,
                                double buffer = 0.0);

/// True if polygon `poly` intersects `box` (shares any point).
bool PolygonIntersectsBox(const Polygon& poly, const Box& box);

/// True if linestring intersects `box`.
bool LineIntersectsBox(const LineString& line, const Box& box);

/// True if geometry g intersects `box`.
bool GeometryIntersectsBox(const Geometry& g, const Box& box);

/// General geometry-geometry intersection over the supported subset
/// (point/box/linestring/polygon/multipolygon): true when the two share at
/// least one point. Decided via mutual vertex containment plus pairwise
/// boundary-segment intersection.
bool GeometriesIntersect(const Geometry& a, const Geometry& b);

/// Minimum distance between two geometries (0 when they intersect).
double GeometryDistance(const Geometry& a, const Geometry& b);

}  // namespace geocol

#endif  // GEOCOL_GEOM_PREDICATES_H_
