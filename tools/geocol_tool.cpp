// geocol — the command-line companion of the library, LAStools-style.
//
//   geocol generate <tiles_dir> [--points N] [--compress] [--layers <dir>]
//   geocol info     <tiles_dir>
//   geocol sort     <tiles_dir>                    (lassort)
//   geocol index    <tiles_dir>                    (lasindex)
//   geocol load     <tiles_dir> <table_dir> [--csv] [--compressed|--chunked]
//                   [--threads N]
//   geocol shard    <table_dir> <out_dir> [--shards K] [--order N]
//   geocol ingest   <table_dir> <batch.las|batch.csv>...
//   geocol query    <table_dir> "<SQL>" [--layers <dir>] [--profile]
//                   [--paged [--chunk-mb N]]
//   geocol raster   <table_dir> <out.ppm> [--cols N]
//   geocol verify   <table_dir>
//   geocol metrics  <table_dir> ["<SQL>"] [--format prom|json] [--layers <dir>]
//   geocol trace    <table_dir> "<SQL>" [--out <path>] [--jsonl] [--layers <dir>]
//   geocol cache    <table_dir> "<SQL>" [--budget-mb N] [--repeat N]
//                   [--paged [--chunk-mb N]] [--layers <dir>]
//   geocol top      <table_dir> [--once] [--interval-ms N] [--export <jsonl>]
//   geocol heat     <table_dir> [--top N]
//   geocol replay   <table_dir> [--json <path>] [--layers <dir>]
//                   [--paged [--chunk-mb N]]
//   geocol serve    <table_dir> [--port N] [--workers N] [--queue N]
//                   [--rate-qps Q] [--rate-burst B] [--cache-mb N]
//                   [--no-batch] [--layers <dir>] [--paged [--chunk-mb N]]
//   geocol client   ["<SQL>"...] [--host H] [--port N] [--id NAME]
//                   [--retry-ms N] [--oracle <table_dir>] [--sweep N]
//                   [--seed S]
//   geocol simd
//
// Tables are persisted GeoColumn table directories; layers are .layer text
// files (id \t class \t name \t WKT). Directories holding a shards.gsm
// manifest are Hilbert-sharded tables (built by `geocol shard`); query/
// metrics/trace/cache/verify detect them automatically. With
// GEOCOL_METRICS=1, query/verify print a one-line telemetry summary on
// exit.
//
// Every query-executing command appends one structured event per statement
// to the workload flight recorder at <table_dir>/flight/flight.gfr
// (DESIGN.md §15). Disable with --no-flight or GEOCOL_FLIGHT=0. The log
// feeds `geocol top` (live workload view), `geocol heat` (shard/chunk
// access heat) and `geocol replay` (deterministic re-execution diffing
// result digests bit-for-bit).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/file_store.h"
#include "cache/chunk_cache.h"
#include "cache/query_cache.h"
#include "columns/column_file.h"
#include "columns/paged_column.h"
#include "columns/compression.h"
#include "columns/csv.h"
#include "columns/sharded_table.h"
#include "core/table_appender.h"
#include "core/imprints_io.h"
#include "core/raster.h"
#include "gis/catalog.h"
#include "gis/layer_io.h"
#include "las/las_format.h"
#include "las/las_reader.h"
#include "loader/binary_loader.h"
#include "loader/csv_loader.h"
#include "pointcloud/generator.h"
#include "pointcloud/vector_gen.h"
#include "server/client.h"
#include "server/server.h"
#include "simd/dispatch.h"
#include "sql/session.h"
#include "sql/executor.h"
#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "telemetry/trace.h"
#include "util/binary_io.h"
#include "util/fd_cache.h"
#include "util/tempdir.h"
#include "util/timer.h"

using namespace geocol;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::vector<std::string> flags;

  bool Has(const char* flag) const {
    for (const auto& f : flags) {
      if (f == flag) return true;
    }
    return false;
  }
  std::string Value(const char* flag, const std::string& def) const {
    for (size_t i = 0; i + 1 < flags.size(); ++i) {
      if (flags[i] == flag) return flags[i + 1];
    }
    return def;
  }
  uint64_t U64(const char* flag, uint64_t def) const {
    std::string v = Value(flag, "");
    return v.empty() ? def : std::strtoull(v.c_str(), nullptr, 10);
  }
  double F64(const char* flag, double def) const {
    std::string v = Value(flag, "");
    return v.empty() ? def : std::strtod(v.c_str(), nullptr);
  }
};

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: geocol <command> ...\n"
               "  generate <tiles_dir> [--points N] [--compress] [--layers <dir>]\n"
               "  info     <tiles_dir>\n"
               "  sort     <tiles_dir>\n"
               "  index    <tiles_dir>\n"
               "  load     <tiles_dir> <table_dir> [--csv] [--compressed|--chunked] [--threads N]\n"
               "  shard    <table_dir> <out_dir> [--shards K] [--order N]\n"
               "  ingest   <table_dir> <batch.las|batch.csv>...\n"
               "  query    <table_dir> \"<SQL>\" [--layers <dir>] [--profile] [--paged [--chunk-mb N]]\n"
               "  raster   <table_dir> <out.ppm> [--cols N]\n"
               "  verify   <table_dir>\n"
               "  metrics  <table_dir> [\"<SQL>\"] [--format prom|json] [--layers <dir>]\n"
               "  trace    <table_dir> \"<SQL>\" [--out <path>] [--jsonl] [--layers <dir>]\n"
               "  cache    <table_dir> \"<SQL>\" [--budget-mb N] [--repeat N] [--paged [--chunk-mb N]] [--layers <dir>]\n"
               "  top      <table_dir> [--once] [--interval-ms N] [--export <jsonl>]\n"
               "  heat     <table_dir> [--top N]\n"
               "  replay   <table_dir> [--json <path>] [--layers <dir>] [--paged [--chunk-mb N]]\n"
               "  serve    <table_dir> [--port N] [--workers N] [--queue N] [--rate-qps Q]\n"
               "           [--rate-burst B] [--cache-mb N] [--no-batch] [--layers <dir>] [--paged [--chunk-mb N]]\n"
               "  client   [\"<SQL>\"...] [--host H] [--port N] [--id NAME] [--retry-ms N]\n"
               "           [--oracle <table_dir>] [--sweep N] [--seed S]\n"
               "  simd     (print CPU features and active kernel dispatch)\n"
               "query-running commands record to <table_dir>/flight/flight.gfr"
               " (disable: --no-flight or GEOCOL_FLIGHT=0)\n");
  return 2;
}

int CmdSimd(const Args&) {
  const simd::CpuFeatures& f = simd::DetectCpuFeatures();
  std::printf("cpu features: sse2=%d sse4.2=%d avx=%d os_ymm=%d avx2=%d "
              "bmi2=%d avx512f=%d\n",
              f.sse2, f.sse42, f.avx, f.os_ymm, f.avx2, f.bmi2, f.avx512f);
  std::printf("max supported level: %s\n",
              simd::SimdLevelName(simd::MaxSupportedSimdLevel()));
  const char* forced = std::getenv("GEOCOL_SIMD");
  std::printf("GEOCOL_SIMD override: %s\n",
              forced != nullptr ? forced : "(unset)");
  std::printf("active dispatch level: %s\n",
              simd::SimdLevelName(simd::ActiveSimdLevel()));
  return 0;
}

int CmdGenerate(const Args& args) {
  if (args.positional.empty()) return Usage();
  const std::string& dir = args.positional[0];
  uint64_t points = args.U64("--points", 500000);
  if (Status st = MakeDir(dir); !st.ok()) return Fail(st);

  AhnGeneratorOptions opts;
  double side = std::sqrt(static_cast<double>(points) / 8.0);
  opts.extent = Box(85000, 444000, 85000 + side, 444000 + side);
  opts.point_density = 8.0;
  opts.scan_line_spacing = 1.0 / std::sqrt(8.0);
  opts.strip_width = std::max(side / 8.0, 10.0);
  AhnGenerator gen(opts);
  auto tiles = gen.WriteTileDirectory(dir, args.Has("--compress"));
  if (!tiles.ok()) return Fail(tiles.status());
  std::printf("wrote %llu tiles (~%llu points) to %s\n",
              static_cast<unsigned long long>(*tiles),
              static_cast<unsigned long long>(gen.EstimatedPoints()),
              dir.c_str());

  std::string layers_dir = args.Value("--layers", "");
  if (!layers_dir.empty()) {
    if (Status st = MakeDir(layers_dir); !st.ok()) return Fail(st);
    TerrainModel terrain(opts.seed);
    OsmGenerator osm(31, opts.extent, terrain);
    auto roads = osm.GenerateRoads(60);
    UrbanAtlasGenerator ua(32, opts.extent, terrain);
    auto land = ua.GenerateLandUse(10);
    for (auto& c : ua.GenerateTransitCorridors(roads, 20.0)) land.push_back(c);
    auto osm_layer = VectorLayer::FromFeatures("osm", std::move(roads));
    auto ua_layer = VectorLayer::FromFeatures("urban_atlas", std::move(land));
    if (Status st = WriteLayerFile(*osm_layer, layers_dir + "/osm.layer");
        !st.ok()) {
      return Fail(st);
    }
    if (Status st =
            WriteLayerFile(*ua_layer, layers_dir + "/urban_atlas.layer");
        !st.ok()) {
      return Fail(st);
    }
    std::printf("wrote layers to %s (osm.layer, urban_atlas.layer)\n",
                layers_dir.c_str());
  }
  return 0;
}

int CmdInfo(const Args& args) {
  if (args.positional.empty()) return Usage();
  std::vector<std::string> files;
  if (Status st = ListFiles(args.positional[0], ".las", &files); !st.ok()) {
    return Fail(st);
  }
  if (Status st = ListFiles(args.positional[0], ".laz", &files); !st.ok()) {
    return Fail(st);
  }
  uint64_t total_points = 0, total_bytes = 0;
  Box footprint;
  for (const auto& f : files) {
    auto header = ReadLasHeader(f);
    if (!header.ok()) return Fail(header.status());
    auto size = FileSizeBytes(f);
    total_points += header->point_count;
    total_bytes += size.ok() ? *size : 0;
    footprint.Extend(header->Footprint());
    std::printf("%-40s %10llu pts  %s  bbox (%.1f %.1f)-(%.1f %.1f)\n",
                f.c_str(),
                static_cast<unsigned long long>(header->point_count),
                header->compressed ? "laz" : "las", header->min_world[0],
                header->min_world[1], header->max_world[0],
                header->max_world[1]);
  }
  std::printf("TOTAL: %zu files, %llu points, %.1f MB, footprint "
              "(%.1f %.1f)-(%.1f %.1f)\n",
              files.size(), static_cast<unsigned long long>(total_points),
              total_bytes / 1048576.0, footprint.min_x, footprint.min_y,
              footprint.max_x, footprint.max_y);
  return 0;
}

int CmdSort(const Args& args) {
  if (args.positional.empty()) return Usage();
  if (Status st = FileStore::SortTiles(args.positional[0]); !st.ok()) {
    return Fail(st);
  }
  std::printf("tiles under %s re-sorted along the Morton curve\n",
              args.positional[0].c_str());
  return 0;
}

int CmdIndex(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto store = FileStore::Open(args.positional[0]);
  if (!store.ok()) return Fail(store.status());
  auto bytes = store->BuildIndexes();
  if (!bytes.ok()) return Fail(bytes.status());
  std::printf("wrote .lax sidecars for %zu tiles (%.1f KB)\n",
              store->num_files(), *bytes / 1024.0);
  return 0;
}

int CmdLoad(const Args& args) {
  if (args.positional.size() < 2) return Usage();
  const std::string& tiles = args.positional[0];
  const std::string& table_dir = args.positional[1];
  TempDir scratch("geocol-load");
  LoadStats stats;
  Result<std::shared_ptr<FlatTable>> table = Status::Internal("unset");
  if (args.Has("--csv")) {
    CsvLoader loader(scratch.path());
    table = loader.LoadDirectory(tiles, &stats);
  } else {
    BinaryLoader loader(scratch.path());
    uint64_t threads = args.U64("--threads", 1);
    table = threads > 1
                ? loader.LoadDirectoryParallel(tiles, threads, &stats)
                : loader.LoadDirectory(tiles, &stats);
  }
  if (!table.ok()) return Fail(table.status());
  std::printf("loaded %llu points from %llu files in %.2f s (%.2f Mpts/s)\n",
              static_cast<unsigned long long>(stats.points),
              static_cast<unsigned long long>(stats.files),
              stats.TotalSeconds(), stats.PointsPerSecond() / 1e6);
  if (args.Has("--chunked")) {
    // Per-chunk compression (GPC1): the only compressed layout the paged
    // open mode (--paged) can fault chunk by chunk.
    uint64_t bytes = 0;
    if (Status st = WriteChunkedCompressedTableDir(**table, table_dir, &bytes);
        !st.ok()) {
      return Fail(st);
    }
    std::printf("persisted chunk-compressed table to %s (%.1f MB, %.2fx)\n",
                table_dir.c_str(), bytes / 1048576.0,
                static_cast<double>((*table)->DataBytes()) / bytes);
  } else if (args.Has("--compressed")) {
    uint64_t bytes = 0;
    if (Status st = WriteCompressedTableDir(**table, table_dir, &bytes);
        !st.ok()) {
      return Fail(st);
    }
    std::printf("persisted compressed table to %s (%.1f MB, %.2fx)\n",
                table_dir.c_str(), bytes / 1048576.0,
                static_cast<double>((*table)->DataBytes()) / bytes);
  } else {
    if (Status st = WriteTableDir(**table, table_dir); !st.ok()) {
      return Fail(st);
    }
    std::printf("persisted table to %s (%.1f MB)\n", table_dir.c_str(),
                (*table)->DataBytes() / 1048576.0);
  }
  return 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Whether the table under `dir` holds compressed (.gcz) columns. Modern
/// manifests record each column's file name; legacy ones fall back to a
/// directory listing.
bool IsCompressedTable(const std::string& dir, const TableManifest& m) {
  if (!m.columns.empty() && !m.columns[0].filename.empty()) {
    return EndsWith(m.columns[0].filename, ".gcz");
  }
  std::vector<std::string> gcz;
  Status st = ListFiles(dir, ".gcz", &gcz);
  return st.ok() && !gcz.empty();
}

Result<FlatTable> OpenTable(const std::string& dir, bool paged = false) {
  if (!PathExists(dir + "/schema.gct")) {
    return Status::NotFound("no table manifest under " + dir);
  }
  if (paged) return ReadTableDirPaged(dir);
  GEOCOL_ASSIGN_OR_RETURN(TableManifest m, ReadTableManifest(dir));
  return IsCompressedTable(dir, m) ? ReadCompressedTableDir(dir)
                                   : ReadTableDir(dir);
}

/// `geocol shard <table_dir> <out_dir>`: re-layouts a persisted table into
/// K Hilbert-ordered spatial shards under <out_dir> (DESIGN.md §12).
int CmdShard(const Args& args) {
  if (args.positional.size() < 2) return Usage();
  auto table = OpenTable(args.positional[0]);
  if (!table.ok()) return Fail(table.status());
  ShardingOptions opts;
  opts.num_shards = static_cast<uint32_t>(args.U64("--shards", 16));
  opts.hilbert_order = static_cast<uint32_t>(args.U64("--order", 16));
  Timer t;
  auto sharded = ShardedTable::Create(*table, opts);
  if (!sharded.ok()) return Fail(sharded.status());
  if (Status st = WriteShardedTableDir(**sharded, args.positional[1]);
      !st.ok()) {
    return Fail(st);
  }
  std::printf(
      "sharded %llu rows into %zu Hilbert shards (order %u) under %s "
      "in %.2f s\n",
      static_cast<unsigned long long>((*sharded)->num_rows()),
      (*sharded)->num_shards(), opts.hilbert_order,
      args.positional[1].c_str(), t.ElapsedSeconds());
  for (size_t i = 0; i < (*sharded)->num_shards(); ++i) {
    const ShardSlice& s = (*sharded)->shard(i);
    std::printf("  shard %4zu: %8llu rows  bbox [%.1f, %.1f] x [%.1f, %.1f]\n",
                i, static_cast<unsigned long long>(s.table->num_rows()),
                s.bbox.min_x, s.bbox.max_x, s.bbox.min_y, s.bbox.max_y);
  }
  return 0;
}

/// Reads one ingest batch file — a LAS/LAZ tile or a CSV with header —
/// into a FlatTable matching `schema`.
Result<FlatTable> ReadBatchFile(const std::string& path,
                                const Schema& schema) {
  if (EndsWith(path, ".csv")) return ReadCsv(path, schema, "batch");
  if (!(schema == LasPointSchema())) {
    return Status::InvalidArgument(
        "table does not use the LAS point schema; ingest CSV batches "
        "instead");
  }
  GEOCOL_ASSIGN_OR_RETURN(LasTile tile, ReadLasFile(path));
  FlatTable batch("batch", schema);
  GEOCOL_RETURN_NOT_OK(AppendTileToTable(tile, &batch));
  return batch;
}

/// `geocol ingest <table_dir> <batch>...`: appends LAS/LAZ tiles or CSV
/// batches to an existing table while it stays queryable.
///
/// A flat table dir is reopened as a LiveTable: every batch is staged and
/// all of them publish as ONE new epoch — the manifest rename is the
/// commit point, so a crash mid-ingest reopens as the previous epoch and
/// `geocol verify` stays green. A sharded dir (shards.gsm) routes each
/// batch's rows to their Hilbert shards and rewrites only the touched
/// shards under the next generation, committed by the shards.gsm swap.
int CmdIngest(const Args& args) {
  if (args.positional.size() < 2) return Usage();
  const std::string& dir = args.positional[0];
  Timer t;

  if (IsShardedTableDir(dir)) {
    auto sharded = ReadShardedTableDir(dir);
    if (!sharded.ok()) return Fail(sharded.status());
    ShardRouter router(*sharded, EngineOptions{});
    const uint64_t before = router.View().total_rows;
    for (size_t i = 1; i < args.positional.size(); ++i) {
      auto batch = ReadBatchFile(args.positional[i], router.schema());
      if (!batch.ok()) return Fail(batch.status());
      if (Status st = router.Append(*batch); !st.ok()) return Fail(st);
      std::printf("  %-40s %8llu rows\n", args.positional[i].c_str(),
                  static_cast<unsigned long long>(batch->num_rows()));
    }
    auto m = ReadShardedTableManifest(dir);
    if (!m.ok()) return Fail(m.status());
    std::printf(
        "appended %llu rows across %zu Hilbert shards (now %llu rows, "
        "generation %llu) in %.2f s\n",
        static_cast<unsigned long long>(router.View().total_rows - before),
        router.num_shards(),
        static_cast<unsigned long long>(router.View().total_rows),
        static_cast<unsigned long long>(m->generation), t.ElapsedSeconds());
    return 0;
  }

  LiveTableOptions opts;
  opts.dir = dir;
  auto live = LiveTable::Open(dir, opts);
  if (!live.ok()) return Fail(live.status());
  const uint64_t epoch_before = (*live)->epoch();
  TableAppender appender(*live);
  for (size_t i = 1; i < args.positional.size(); ++i) {
    const std::string& path = args.positional[i];
    Status st = EndsWith(path, ".csv") ? appender.StageCsvFile(path)
                                       : appender.StageLasFile(path);
    if (!st.ok()) return Fail(st);
  }
  const uint64_t staged = appender.staged_rows();
  if (Status st = appender.Commit(); !st.ok()) return Fail(st);
  EpochSnapshot snap = (*live)->Pin();
  std::printf(
      "appended %llu rows as epoch %llu -> %llu (now %llu rows) in %.2f s\n",
      static_cast<unsigned long long>(staged),
      static_cast<unsigned long long>(epoch_before),
      static_cast<unsigned long long>(snap.epoch),
      static_cast<unsigned long long>(snap.table->num_rows()),
      t.ElapsedSeconds());
  telemetry::MaybePrintSummary(stderr);
  return 0;
}

/// Verifies one flat table directory, printing each file prefixed by
/// `prefix`. Returns the number of corrupt files (sharded tables call
/// this once per shard directory).
int VerifyOneTableDir(const std::string& dir, const std::string& prefix) {
  int corrupt = 0;

  auto manifest = ReadTableManifest(dir);
  if (!manifest.ok()) {
    std::printf("%-32s CORRUPT  %s\n", (prefix + "schema.gct").c_str(),
                manifest.status().ToString().c_str());
    return 1;  // Nothing else is checkable without the manifest.
  }
  if (manifest->legacy) {
    std::printf("%-32s OK       legacy manifest (no checksum), %zu columns\n",
                (prefix + "schema.gct").c_str(), manifest->columns.size());
  } else {
    std::printf("%-32s OK       generation %llu, %zu columns\n",
                (prefix + "schema.gct").c_str(),
                static_cast<unsigned long long>(manifest->generation),
                manifest->columns.size());
  }

  const bool compressed = IsCompressedTable(dir, *manifest);
  // Column name -> loaded column, for sidecar freshness checks below.
  std::vector<ColumnPtr> columns;
  std::vector<std::string> referenced;
  for (const auto& mc : manifest->columns) {
    std::string fname = mc.filename;
    if (fname.empty()) fname = mc.name + (compressed ? ".gcz" : ".gcl");
    referenced.push_back(fname);
    const std::string path = dir + "/" + fname;
    auto col = EndsWith(fname, ".gcz")
                   ? ReadCompressedColumnFile(path, mc.name)
                   : ReadColumnFile(path, mc.name);
    if (!col.ok()) {
      ++corrupt;
      std::printf("%-32s CORRUPT  %s\n", (prefix + fname).c_str(),
                  col.status().ToString().c_str());
      continue;
    }
    if ((*col)->type() != mc.type) {
      ++corrupt;
      std::printf("%-32s CORRUPT  type does not match the manifest\n",
                  (prefix + fname).c_str());
      continue;
    }
    auto size = FileSizeBytes(path);
    std::printf("%-32s OK       %llu rows, %llu bytes\n",
                (prefix + fname).c_str(),
                static_cast<unsigned long long>((*col)->size()),
                static_cast<unsigned long long>(size.ok() ? *size : 0));
    columns.push_back(std::move(*col));
  }

  std::vector<std::string> sidecars;
  (void)ListFiles(dir, ".gim", &sidecars);
  for (const auto& path : sidecars) {
    std::string fname = path.substr(dir.size() + 1);
    referenced.push_back(fname);
    ImprintsFileMeta meta;
    auto index = ReadImprintsFile(path, &meta);
    if (!index.ok()) {
      ++corrupt;
      std::printf("%-32s CORRUPT  %s\n", (prefix + fname).c_str(),
                  index.status().ToString().c_str());
      continue;
    }
    // Freshness: match the sidecar to its column by name, then require
    // the payload fingerprint, epoch and row count to all agree.
    std::string col_name = fname.substr(0, fname.size() - 4);
    const char* freshness = "no matching column";
    for (const auto& col : columns) {
      if (col->name() != col_name) continue;
      freshness = meta.has_fingerprint &&
                          meta.column_fingerprint == ColumnFingerprint(*col) &&
                          index->built_epoch() == col->epoch() &&
                          index->num_rows() == col->size()
                      ? "fresh"
                      : "STALE (will be rebuilt on use)";
      break;
    }
    std::printf("%-32s OK       %llu rows, %s\n", (prefix + fname).c_str(),
                static_cast<unsigned long long>(index->num_rows()), freshness);
  }

  // Leftovers a crash or a superseded generation can leave behind. They
  // are unreferenced, so they are reported but are not corruption.
  for (const char* suffix : {".tmp", ".gcl", ".gcz", ".quarantined"}) {
    std::vector<std::string> files;
    (void)ListFiles(dir, suffix, &files);
    for (const auto& path : files) {
      std::string fname = path.substr(dir.size() + 1);
      if (std::find(referenced.begin(), referenced.end(), fname) !=
          referenced.end()) {
        continue;
      }
      std::printf("%-32s STALE    unreferenced leftover\n",
                  (prefix + fname).c_str());
    }
  }
  return corrupt;
}

/// `geocol verify <table_dir>`: checks every persistence invariant the
/// durability layer maintains — manifest checksum, per-column checksums
/// and type agreement, imprint sidecar integrity and freshness — and
/// reports stale leftovers (.tmp, superseded generations, quarantined
/// sidecars). A sharded table dir (shards.gsm) is verified shard by shard
/// after its own manifest's checksum and shape checks. Exit 1 if anything
/// is corrupt, 0 otherwise.
int CmdVerify(const Args& args) {
  if (args.positional.empty()) return Usage();
  const std::string& dir = args.positional[0];
  int corrupt = 0;

  if (IsShardedTableDir(dir)) {
    auto m = ReadShardedTableManifest(dir);
    if (!m.ok()) {
      std::printf("%-32s CORRUPT  %s\n", "shards.gsm",
                  m.status().ToString().c_str());
      return 1;  // No shard list without the manifest.
    }
    std::printf("%-32s OK       generation %llu, %zu shards (order %u)\n",
                "shards.gsm", static_cast<unsigned long long>(m->generation),
                m->shards.size(), m->hilbert_order);
    for (const auto& shard : m->shards) {
      const std::string shard_dir = dir + "/" + shard.dirname;
      if (!PathExists(shard_dir + "/schema.gct")) {
        ++corrupt;
        std::printf("%-32s CORRUPT  shard directory missing\n",
                    shard.dirname.c_str());
        continue;
      }
      corrupt += VerifyOneTableDir(shard_dir, shard.dirname + "/");
    }
  } else {
    corrupt = VerifyOneTableDir(dir, "");
  }

  telemetry::MaybePrintSummary(stderr);
  if (corrupt > 0) {
    std::printf("%d corrupt file(s) under %s\n", corrupt, dir.c_str());
    return 1;
  }
  std::printf("all checks passed under %s\n", dir.c_str());
  return 0;
}

/// Location of a table's workload flight log (own subdirectory so
/// `geocol verify` never mistakes it for a stale table leftover).
std::string FlightLogPath(const std::string& table_dir) {
  return table_dir + "/flight/flight.gfr";
}

/// Opens the flight recorder for `table_dir` unless opted out via
/// --no-flight or GEOCOL_FLIGHT=0. Failure to open is a warning, never a
/// query failure — recording is diagnostics, not a dependency.
void MaybeOpenFlightRecorder(const Args& args, const std::string& table_dir) {
  if (args.Has("--no-flight")) return;
  const char* env = std::getenv("GEOCOL_FLIGHT");
  if (env != nullptr && std::strcmp(env, "0") == 0) return;
  if (Status st = MakeDir(table_dir + "/flight"); !st.ok()) {
    std::fprintf(stderr, "warning: flight recorder off: %s\n",
                 st.ToString().c_str());
    return;
  }
  Status st = telemetry::FlightRecorder::Global().Open(FlightLogPath(table_dir));
  if (!st.ok()) {
    std::fprintf(stderr, "warning: flight recorder off: %s\n",
                 st.ToString().c_str());
  }
}

/// Opens the table (and any --layers) into `catalog`; shared by the
/// query/metrics/trace subcommands. Unless `open_flight` is false (replay
/// must not observe itself) the workload flight recorder is opened at
/// <table_dir>/flight/flight.gfr, so every Session query gets recorded.
Status SetupCatalog(const Args& args, Catalog* catalog,
                    bool open_flight = true) {
  const std::string& table_dir = args.positional[0];
  const bool paged = args.Has("--paged");
  if (paged) {
    // An explicit --chunk-mb is a request for that exact budget (shrinking
    // the default 64 MiB included); without it the env/default stands.
    uint64_t chunk_mb = args.U64("--chunk-mb", 0);
    if (chunk_mb > 0) {
      cache::ChunkCache::Global().SetBudget(chunk_mb * 1024 * 1024);
    }
  }
  if (IsShardedTableDir(table_dir)) {
    GEOCOL_ASSIGN_OR_RETURN(
        auto sharded,
        ReadShardedTableDir(table_dir, /*verify_checksums=*/true, paged));
    std::string name = sharded->name().empty() ? "ahn2" : sharded->name();
    GEOCOL_RETURN_NOT_OK(
        catalog->AddShardedPointCloud(name, std::move(sharded)));
  } else {
    GEOCOL_ASSIGN_OR_RETURN(FlatTable table, OpenTable(table_dir, paged));
    GEOCOL_RETURN_NOT_OK(catalog->AddPointCloud(
        table.name().empty() ? "ahn2" : table.name(),
        std::make_shared<FlatTable>(std::move(table))));
  }
  std::string layers_dir = args.Value("--layers", "");
  if (!layers_dir.empty()) {
    std::vector<std::string> layer_files;
    GEOCOL_RETURN_NOT_OK(ListFiles(layers_dir, ".layer", &layer_files));
    for (const auto& lf : layer_files) {
      GEOCOL_ASSIGN_OR_RETURN(auto layer, ReadLayerFile(lf));
      GEOCOL_RETURN_NOT_OK(catalog->AddLayer(layer));
    }
  }
  if (open_flight) MaybeOpenFlightRecorder(args, table_dir);
  return Status::OK();
}

int CmdQuery(const Args& args) {
  if (args.positional.size() < 2) return Usage();
  Catalog catalog;
  if (Status st = SetupCatalog(args, &catalog); !st.ok()) return Fail(st);
  std::string first = catalog.PointCloudNames().empty()
                          ? catalog.ShardedPointCloudNames()[0] + " (sharded)"
                          : catalog.PointCloudNames()[0];
  std::printf("datasets: %s", first.c_str());
  for (const auto& l : catalog.LayerNames()) std::printf(", %s", l.c_str());
  std::printf("\n");
  sql::Session session(&catalog);
  auto rs = session.Execute(args.positional[1]);
  if (!rs.ok()) return Fail(rs.status());
  std::printf("%s", rs->ToString(50).c_str());
  if (args.Has("--profile")) {
    std::printf("\n%s\n%s", session.last_plan().c_str(),
                session.last_profile().ToString().c_str());
  }
  telemetry::MaybePrintSummary(stderr);
  return 0;
}

/// `geocol metrics <table_dir> ["<SQL>"]`: optionally runs a query to
/// exercise the engine, then dumps every registered metric. --format prom
/// (default) renders Prometheus text exposition; --format json renders
/// the JSON document bench_report.py ingests.
int CmdMetrics(const Args& args) {
  if (args.positional.empty()) return Usage();
  Catalog catalog;
  if (Status st = SetupCatalog(args, &catalog); !st.ok()) return Fail(st);
  if (args.positional.size() >= 2) {
    sql::Session session(&catalog);
    auto rs = session.Execute(args.positional[1]);
    if (!rs.ok()) return Fail(rs.status());
  }
  std::string format = args.Value("--format", "prom");
  if (format != "prom" && format != "json") {
    return Fail(Status::InvalidArgument("--format must be prom or json"));
  }
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::Global();
  std::string out = format == "json" ? reg.RenderJson()
                                     : reg.RenderPrometheus();
  std::fwrite(out.data(), 1, out.size(), stdout);
  return 0;
}

/// `geocol trace <table_dir> "<SQL>"`: runs the query and exports its span
/// tree as Chrome trace_event JSON (load in chrome://tracing / Perfetto)
/// or JSONL with --jsonl. --out writes to a file instead of stdout.
int CmdTrace(const Args& args) {
  if (args.positional.size() < 2) return Usage();
  Catalog catalog;
  if (Status st = SetupCatalog(args, &catalog); !st.ok()) return Fail(st);
  sql::Session session(&catalog);
  const int64_t start_unix_nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  auto rs = session.Execute(args.positional[1]);
  if (!rs.ok()) return Fail(rs.status());
  if (session.last_profile().empty()) {
    return Fail(Status::InvalidArgument(
        "query produced no profile (nothing to trace)"));
  }
  std::string doc =
      args.Has("--jsonl")
          ? telemetry::ProfileToJsonl(session.last_profile(),
                                      args.positional[1])
          : telemetry::ProfileToChromeTrace(session.last_profile(),
                                            args.positional[1],
                                            start_unix_nanos);
  std::string out_path = args.Value("--out", "");
  if (out_path.empty()) {
    std::fwrite(doc.data(), 1, doc.size(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    return Fail(Status::IOError("cannot open " + out_path));
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "trace (%zu spans) written to %s\n",
               session.last_profile().operators().size(), out_path.c_str());
  return 0;
}

/// `geocol cache <table_dir> "<SQL>" [--budget-mb N] [--repeat N]`: runs
/// the query --repeat times through one session with the result cache
/// bound at --budget-mb, printing per-run wall times and the cache's
/// per-tier statistics — the interactive proof of the repeated-viewport
/// speedup (EXPERIMENTS.md E13).
int CmdCache(const Args& args) {
  if (args.positional.size() < 2) return Usage();
  Catalog catalog;
  if (Status st = SetupCatalog(args, &catalog); !st.ok()) return Fail(st);
  sql::SessionOptions opts = sql::SessionOptions::FromEnv();
  opts.cache_budget_bytes =
      static_cast<int64_t>(args.U64("--budget-mb", 64)) * 1024 * 1024;
  sql::Session session(&catalog, opts);
  uint64_t repeat = std::max<uint64_t>(1, args.U64("--repeat", 3));
  std::printf("budget: %.0f MB, %llu run(s)\n",
              opts.cache_budget_bytes / 1048576.0,
              static_cast<unsigned long long>(repeat));
  for (uint64_t i = 0; i < repeat; ++i) {
    Timer t;
    auto rs = session.Execute(args.positional[1]);
    if (!rs.ok()) return Fail(rs.status());
    // A tier (a) hit shows up as the profile collapsing to one
    // cache.hit span.
    const auto& ops = session.last_profile().operators();
    bool hit = !ops.empty() && ops[0].name == "cache.hit";
    std::printf("run %llu: %8.3f ms  %llu row(s)%s\n",
                static_cast<unsigned long long>(i + 1), t.ElapsedMillis(),
                static_cast<unsigned long long>(rs->rows.size()),
                hit ? "  [cache hit]" : "");
  }
  std::printf("\n%s", cache::QueryResultCache::Global().StatsToString().c_str());
  // The paged tier's caches. Without --paged both sit at zero traffic —
  // printed anyway so the two tiers always read side by side.
  std::printf("\n%s", cache::ChunkCache::Global().StatsToString().c_str());
  FdCache::Stats fd = FdCache::Global().GetStats();
  std::printf("fd cache: %zu/%zu open, %llu hits, %llu misses, %llu "
              "evictions\n",
              fd.open_files, fd.capacity,
              static_cast<unsigned long long>(fd.hits),
              static_cast<unsigned long long>(fd.misses),
              static_cast<unsigned long long>(fd.evictions));
  telemetry::MaybePrintSummary(stderr);
  return 0;
}

/// Minimal JSON string escaping for the replay --json export.
std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// `geocol top <table_dir>`: live view of the recorded workload. Each tick
/// re-reads the flight log and prints totals, rate deltas since the
/// previous tick, and HDR latency quantiles aggregated from the events.
/// --once prints a single snapshot; --export <path> dumps the raw events
/// as JSONL (one query_event object per line) and exits.
int CmdTop(const Args& args) {
  if (args.positional.empty()) return Usage();
  const std::string log_path = FlightLogPath(args.positional[0]);

  const std::string export_path = args.Value("--export", "");
  if (!export_path.empty()) {
    auto events = telemetry::ReadFlightLogWithRotation(log_path);
    if (!events.ok()) return Fail(events.status());
    std::FILE* f = std::fopen(export_path.c_str(), "w");
    if (f == nullptr) return Fail(Status::IOError("cannot open " + export_path));
    for (const auto& ev : *events) {
      std::string line = telemetry::EventToJson(ev);
      std::fwrite(line.data(), 1, line.size(), f);
      std::fputc('\n', f);
    }
    std::fclose(f);
    std::printf("exported %zu event(s) to %s\n", events->size(),
                export_path.c_str());
    return 0;
  }

  const uint64_t interval_ms =
      std::max<uint64_t>(100, args.U64("--interval-ms", 2000));
  const bool once = args.Has("--once");
  uint64_t prev_total = 0;
  bool first = true;
  for (;;) {
    auto events = telemetry::ReadFlightLogWithRotation(log_path);
    if (!events.ok()) return Fail(events.status());

    // Aggregate the retained history. The histogram gives the same HDR
    // quantile extraction the in-process registry uses.
    auto hist = std::make_unique<telemetry::Histogram>();
    uint64_t errors = 0, rows_out = 0;
    uint64_t hits = 0, misses = 0, faults = 0, chunk_hits = 0;
    uint64_t scanned = 0, pruned = 0, covered = 0;
    std::map<std::string, uint64_t> by_table;
    for (const auto& ev : *events) {
      hist->Observe(ev.wall_nanos);
      errors += ev.ok ? 0 : 1;
      rows_out += ev.rows_out;
      for (int t = 0; t < 3; ++t) {
        hits += ev.cache_hits[t];
        misses += ev.cache_misses[t];
      }
      faults += ev.chunk_faults;
      chunk_hits += ev.chunk_cache_hits;
      scanned += ev.shards_scanned;
      pruned += ev.shards_pruned;
      covered += ev.shards_covered;
      if (!ev.table.empty()) by_table[ev.table] += 1;
    }
    const uint64_t total = events->size();
    const uint64_t delta = first ? 0 : total - prev_total;
    const double rate = first ? 0.0 : delta * 1000.0 / interval_ms;

    std::printf("geocol top — %s\n", log_path.c_str());
    std::printf("  queries: %llu total, %llu error(s)",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(errors));
    if (!first) {
      std::printf("  (+%llu, %.1f/s)",
                  static_cast<unsigned long long>(delta), rate);
    }
    std::printf("\n");
    std::printf("  latency: p50 %.3f ms  p90 %.3f  p99 %.3f  p99.9 %.3f\n",
                hist->ValueAtQuantile(0.50) / 1e6,
                hist->ValueAtQuantile(0.90) / 1e6,
                hist->ValueAtQuantile(0.99) / 1e6,
                hist->ValueAtQuantile(0.999) / 1e6);
    std::printf("  rows out: %llu   result cache: %llu hit(s) / %llu "
                "miss(es)\n",
                static_cast<unsigned long long>(rows_out),
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses));
    std::printf("  shards: %llu scanned, %llu pruned, %llu covered   "
                "chunks: %llu fault(s), %llu cache hit(s)\n",
                static_cast<unsigned long long>(scanned),
                static_cast<unsigned long long>(pruned),
                static_cast<unsigned long long>(covered),
                static_cast<unsigned long long>(faults),
                static_cast<unsigned long long>(chunk_hits));
    for (const auto& kv : by_table) {
      std::printf("  table %-20s %llu quer%s\n", kv.first.c_str(),
                  static_cast<unsigned long long>(kv.second),
                  kv.second == 1 ? "y" : "ies");
    }
    if (once) break;
    prev_total = total;
    first = false;
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

/// `geocol heat <table_dir>`: shard- and chunk-level access heat
/// aggregated from the recorded workload — which shards answer queries
/// (and how often the covered shortcut fires) and which column chunks
/// fault versus ride the chunk cache.
int CmdHeat(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto events =
      telemetry::ReadFlightLogWithRotation(FlightLogPath(args.positional[0]));
  if (!events.ok()) return Fail(events.status());
  const size_t top_n = std::max<uint64_t>(1, args.U64("--top", 20));

  struct ShardAgg { uint64_t scans = 0, covered = 0, rows = 0; };
  struct ChunkAgg { uint64_t touches = 0, faults = 0; };
  std::map<std::pair<std::string, uint32_t>, ShardAgg> shards;
  std::map<std::pair<std::string, uint32_t>, ChunkAgg> chunks;
  for (const auto& ev : *events) {
    for (const auto& t : ev.shard_heat) {
      ShardAgg& a = shards[{ev.table, t.shard}];
      a.scans += t.scans;
      a.covered += t.covered;
      a.rows += t.rows;
    }
    for (const auto& t : ev.chunk_heat) {
      ChunkAgg& a = chunks[{t.file, t.chunk}];
      a.touches += t.touches;
      a.faults += t.faults;
    }
  }

  std::printf("flight log: %zu event(s)\n", events->size());
  std::vector<std::pair<std::pair<std::string, uint32_t>, ShardAgg>> sv(
      shards.begin(), shards.end());
  std::sort(sv.begin(), sv.end(), [](const auto& a, const auto& b) {
    return a.second.scans > b.second.scans;
  });
  std::printf("shard heat (top %zu of %zu by scans):\n",
              std::min(top_n, sv.size()), sv.size());
  for (size_t i = 0; i < sv.size() && i < top_n; ++i) {
    std::printf("  %-20s shard %4u  %8llu scan(s)  %8llu covered  %10llu "
                "row(s)\n",
                sv[i].first.first.c_str(), sv[i].first.second,
                static_cast<unsigned long long>(sv[i].second.scans),
                static_cast<unsigned long long>(sv[i].second.covered),
                static_cast<unsigned long long>(sv[i].second.rows));
  }
  std::vector<std::pair<std::pair<std::string, uint32_t>, ChunkAgg>> cv(
      chunks.begin(), chunks.end());
  std::sort(cv.begin(), cv.end(), [](const auto& a, const auto& b) {
    return a.second.touches > b.second.touches;
  });
  std::printf("chunk heat (top %zu of %zu by touches):\n",
              std::min(top_n, cv.size()), cv.size());
  for (size_t i = 0; i < cv.size() && i < top_n; ++i) {
    std::printf("  %-40s chunk %4u  %8llu touch(es)  %6llu fault(s)\n",
                cv[i].first.first.c_str(), cv[i].first.second,
                static_cast<unsigned long long>(cv[i].second.touches),
                static_cast<unsigned long long>(cv[i].second.faults));
  }
  return 0;
}

/// `geocol replay <table_dir>`: deterministically re-executes the
/// recorded workload against the current engine state and diffs each
/// result bit-for-bit against the recorded CRC32C digest. Events that
/// failed when recorded or whose digest is not replayable (EXPLAIN
/// ANALYZE) are skipped. Exit 1 on any digest/row-count mismatch. --json
/// writes bench_report.py-compatible rows with recorded vs replay
/// latency, so `bench_report.py --compare` quantifies the drift.
int CmdReplay(const Args& args) {
  if (args.positional.empty()) return Usage();
  Catalog catalog;
  if (Status st = SetupCatalog(args, &catalog, /*open_flight=*/false);
      !st.ok()) {
    return Fail(st);
  }
  auto events =
      telemetry::ReadFlightLogWithRotation(FlightLogPath(args.positional[0]));
  if (!events.ok()) return Fail(events.status());

  sql::SessionOptions opts = sql::SessionOptions::FromEnv();
  opts.record_flight = false;  // a replay must not observe itself
  sql::Session session(&catalog, opts);

  uint64_t replayed = 0, skipped = 0, diffs = 0;
  std::string json = "[";
  for (const auto& ev : *events) {
    if (!ev.ok || !ev.digest_valid) {
      ++skipped;
      continue;
    }
    Timer t;
    auto rs = session.Execute(ev.query);
    const double replay_ms = t.ElapsedMillis();
    const double recorded_ms = ev.wall_nanos / 1e6;
    const char* verdict;
    if (!rs.ok()) {
      verdict = "FAIL";
      ++diffs;
    } else if (sql::ResultSetDigest(*rs) != ev.result_digest ||
               rs->rows.size() != ev.rows_out) {
      verdict = "DIFF";
      ++diffs;
    } else {
      verdict = "OK";
    }
    ++replayed;
    std::printf("  %-4s %9.3f ms (recorded %9.3f ms)  %s\n", verdict,
                replay_ms, recorded_ms, ev.query.c_str());
    if (json.size() > 1) json += ",";
    json += "\n  {\"bench\": \"REPLAY\", \"config\": {\"source\": \"geocol "
            "replay\"}, \"metrics\": {\"query\": " +
            JsonQuote(ev.query) + ", \"verdict\": \"" + verdict + "\"";
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  ", \"recorded ms\": %.3f, \"replay ms\": %.3f, "
                  "\"rows\": %llu}}",
                  recorded_ms, replay_ms,
                  static_cast<unsigned long long>(ev.rows_out));
    json += buf;
  }
  json += "\n]\n";
  std::printf("replayed %llu quer%s (%llu skipped), %llu diff(s)\n",
              static_cast<unsigned long long>(replayed),
              replayed == 1 ? "y" : "ies",
              static_cast<unsigned long long>(skipped),
              static_cast<unsigned long long>(diffs));

  const std::string json_path = args.Value("--json", "");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) return Fail(Status::IOError("cannot open " + json_path));
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("latency comparison written to %s\n", json_path.c_str());
  }
  return diffs > 0 ? 1 : 0;
}

int CmdRaster(const Args& args) {
  if (args.positional.size() < 2) return Usage();
  auto table = OpenTable(args.positional[0]);
  if (!table.ok()) return Fail(table.status());
  uint32_t cols = static_cast<uint32_t>(args.U64("--cols", 512));
  ColumnPtr xc = table->column("x"), yc = table->column("y");
  if (xc == nullptr || yc == nullptr) {
    return Fail(Status::InvalidArgument("table lacks x/y columns"));
  }
  Box extent(xc->Stats().min, yc->Stats().min, xc->Stats().max,
             yc->Stats().max);
  uint32_t rows = std::max<uint32_t>(
      1, static_cast<uint32_t>(cols * extent.height() /
                               std::max(extent.width(), 1e-9)));
  auto raster = RasterizeRows(*table, {}, "z", extent, cols, rows);
  if (!raster.ok()) return Fail(raster.status());
  FillRasterVoids(&*raster);
  // Grayscale PPM of the DSM.
  float mn = 1e30f, mx = -1e30f;
  for (size_t i = 0; i < raster->values.size(); ++i) {
    if (raster->counts[i] == 0) continue;
    mn = std::min(mn, raster->values[i]);
    mx = std::max(mx, raster->values[i]);
  }
  if (mx <= mn) mx = mn + 1;
  std::FILE* f = std::fopen(args.positional[1].c_str(), "wb");
  if (f == nullptr) return Fail(Status::IOError("cannot open output"));
  std::fprintf(f, "P6\n%u %u\n255\n", raster->cols, raster->rows);
  for (uint32_t ry = raster->rows; ry-- > 0;) {
    for (uint32_t cx = 0; cx < raster->cols; ++cx) {
      float v = (raster->At(cx, ry) - mn) / (mx - mn);
      uint8_t g = static_cast<uint8_t>(v * 255);
      std::fputc(g, f);
      std::fputc(g, f);
      std::fputc(g, f);
    }
  }
  std::fclose(f);
  std::printf("DSM raster (%ux%u, z in [%.2f, %.2f]) written to %s\n",
              raster->cols, raster->rows, mn, mx, args.positional[1].c_str());
  return 0;
}

volatile std::sig_atomic_t g_serve_stop = 0;
void HandleServeSignal(int) { g_serve_stop = 1; }

/// `geocol serve <table_dir>`: the multi-tenant query server (DESIGN.md
/// §16). Binds, prints the resolved port, then blocks until SIGINT or
/// SIGTERM triggers a graceful drain (every admitted query completes and
/// its response is written before exit).
int CmdServe(const Args& args) {
  if (args.positional.empty()) return Usage();
  Catalog catalog;
  if (Status st = SetupCatalog(args, &catalog); !st.ok()) return Fail(st);
  // Bind the shared result cache once, before any query runs — worker
  // sessions never rebind (cache_budget_bytes is forced to -1), so this
  // is the only budget the serving process uses. All tenants share it:
  // a viewport one client computed is a hit for every other client.
  const uint64_t cache_mb = args.U64("--cache-mb", 64);
  if (cache_mb > 0) {
    for (const std::string& name : catalog.PointCloudNames()) {
      if (auto engine = catalog.GetEngine(name); engine.ok()) {
        (*engine)->set_cache_budget(cache_mb * 1024 * 1024);
      }
    }
  }
  server::ServerOptions opts;
  opts.host = args.Value("--host", "127.0.0.1");
  opts.port = static_cast<int>(args.U64("--port", 0));
  opts.workers = static_cast<int>(args.U64("--workers", 2));
  opts.queue_capacity = args.U64("--queue", 128);
  opts.rate_limit_qps = args.F64("--rate-qps", 0);
  opts.rate_limit_burst = args.F64("--rate-burst", 8);
  opts.shared_scan_batching = !args.Has("--no-batch");
  server::Server srv(&catalog, opts);
  if (Status st = srv.Start(); !st.ok()) return Fail(st);
  std::printf("geocol serve: listening on %s:%d (%d workers, queue %llu%s)\n",
              opts.host.c_str(), srv.port(), opts.workers,
              static_cast<unsigned long long>(opts.queue_capacity),
              opts.shared_scan_batching ? ", shared-scan batching" : "");
  std::fflush(stdout);
  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  srv.Stop();
  server::ServerStats s = srv.stats();
  std::printf(
      "geocol serve: stopped (conns %llu, ok %llu, errors %llu, busy %llu, "
      "rate-limited %llu, batches %llu covering %llu queries)\n",
      static_cast<unsigned long long>(s.connections_total),
      static_cast<unsigned long long>(s.queries_ok),
      static_cast<unsigned long long>(s.queries_error),
      static_cast<unsigned long long>(s.shed_busy),
      static_cast<unsigned long long>(s.shed_rate_limited),
      static_cast<unsigned long long>(s.batches),
      static_cast<unsigned long long>(s.batch_members));
  cache::CacheStats cs = cache::QueryResultCache::Global().Stats();
  std::printf("geocol serve: result cache %llu hit(s) / %llu miss(es), "
              "%.1f MB used\n",
              static_cast<unsigned long long>(cs.TotalHits()),
              static_cast<unsigned long long>(cs.TotalMisses()),
              cs.bytes_used / 1048576.0);
  telemetry::MaybePrintSummary(stderr);
  return 0;
}

/// Seeded viewport workload for `geocol client --sweep` and the CI smoke:
/// random sub-boxes of the table extent across aggregate / projection /
/// thematic shapes, plus a periodic planner error to exercise the typed
/// error path.
std::vector<std::string> SweepStatements(const std::string& table,
                                         const Box& extent, double z_mid,
                                         size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> fx(extent.min_x, extent.max_x);
  std::uniform_real_distribution<double> fy(extent.min_y, extent.max_y);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double x0 = fx(rng), x1 = fx(rng), y0 = fy(rng), y1 = fy(rng);
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
    char where[256];
    std::snprintf(where, sizeof(where),
                  "x BETWEEN %.17g AND %.17g AND y BETWEEN %.17g AND %.17g",
                  x0, x1, y0, y1);
    std::string stmt;
    switch (i % 7) {
      case 0:
        stmt = "SELECT COUNT(*) FROM " + table + " WHERE " + where;
        break;
      case 1:
        stmt = "SELECT AVG(z) FROM " + table + " WHERE " + where;
        break;
      case 2:
        stmt = "SELECT MIN(z), MAX(z) FROM " + table + " WHERE " + where;
        break;
      case 3:
        stmt = "SELECT x, y, z FROM " + table + " WHERE " + where +
               " LIMIT 64";
        break;
      case 4: {
        char zbuf[64];
        std::snprintf(zbuf, sizeof(zbuf), " AND z >= %.17g", z_mid);
        stmt = "SELECT COUNT(*) FROM " + table + " WHERE " + where + zbuf;
        break;
      }
      case 5:
        stmt = "SELECT COUNT(*), AVG(z) FROM " + table + " WHERE " + where;
        break;
      default:
        // A planning error: refused identically by server and oracle.
        stmt = "SELECT no_such_column FROM " + table + " WHERE " + where;
        break;
    }
    out.push_back(std::move(stmt));
  }
  return out;
}

/// `geocol client`: scripting client for a running `geocol serve`.
/// Without --oracle it runs the positional statements (or a bare PING)
/// and prints results. With --oracle <table_dir> every statement — the
/// positionals, or --sweep N seeded viewport queries — also runs on a
/// local single-threaded sql::Session over the same table, and result
/// digests / error statuses are diffed bitwise; any difference exits 1.
int CmdClient(const Args& args) {
  server::Client::Options copts;
  copts.host = args.Value("--host", "127.0.0.1");
  copts.port = static_cast<int>(args.U64("--port", 0));
  copts.client_id = args.Value("--id", "");
  copts.connect_retry_ms = static_cast<int>(args.U64("--retry-ms", 0));
  if (copts.port == 0) {
    return Fail(Status::InvalidArgument("client: --port is required"));
  }
  auto client = server::Client::Connect(copts);
  if (!client.ok()) return Fail(client.status());

  const std::string oracle_dir = args.Value("--oracle", "");
  if (oracle_dir.empty()) {
    if (args.positional.empty()) {
      if (Status st = client->Ping(); !st.ok()) return Fail(st);
      std::printf("pong\n");
      return 0;
    }
    int rc = 0;
    for (const auto& stmt : args.positional) {
      auto outcome = client->Query(stmt);
      if (!outcome.ok()) return Fail(outcome.status());
      if (outcome->ok) {
        std::printf("%s", outcome->result.ToString(50).c_str());
      } else {
        std::fprintf(stderr, "error [%s]: %s\n",
                     server::ErrorCodeName(outcome->error.code),
                     outcome->error.ToStatus().ToString().c_str());
        rc = 1;
      }
    }
    return rc;
  }

  // Differential mode: a local session over the same table is the oracle.
  Args oargs;
  oargs.positional.push_back(oracle_dir);
  oargs.flags = args.flags;
  Catalog oracle;
  if (Status st = SetupCatalog(oargs, &oracle, /*open_flight=*/false);
      !st.ok()) {
    return Fail(st);
  }
  sql::Session session(&oracle);
  std::vector<std::string> statements(args.positional.begin(),
                                      args.positional.end());
  const size_t sweep = args.U64("--sweep", 0);
  if (sweep > 0) {
    std::string table = !oracle.PointCloudNames().empty()
                            ? oracle.PointCloudNames()[0]
                            : oracle.ShardedPointCloudNames()[0];
    auto ext = session.Execute(
        "SELECT MIN(x), MAX(x), MIN(y), MAX(y), MIN(z), MAX(z) FROM " +
        table);
    if (!ext.ok()) return Fail(ext.status());
    if (ext->rows.empty() ||
        ext->rows[0][0].kind != sql::Value::Kind::kNumber) {
      return Fail(Status::InvalidArgument("oracle table is empty"));
    }
    Box extent(ext->rows[0][0].number, ext->rows[0][2].number,
               ext->rows[0][1].number, ext->rows[0][3].number);
    double z_mid = (ext->rows[0][4].number + ext->rows[0][5].number) / 2;
    auto generated = SweepStatements(table, extent, z_mid, sweep,
                                     args.U64("--seed", 1));
    statements.insert(statements.end(), generated.begin(), generated.end());
  }
  size_t diffs = 0;
  for (const auto& stmt : statements) {
    auto outcome = client->Query(stmt);
    if (!outcome.ok()) return Fail(outcome.status());
    auto local = session.Execute(stmt);
    std::string mismatch;
    if (outcome->ok && local.ok()) {
      uint32_t remote_digest = sql::ResultSetDigest(outcome->result);
      uint32_t local_digest = sql::ResultSetDigest(*local);
      if (remote_digest != local_digest) {
        mismatch = "digest " + std::to_string(remote_digest) + " != " +
                   std::to_string(local_digest);
      }
    } else if (!outcome->ok && !local.ok()) {
      Status remote = outcome->error.ToStatus();
      if (remote.ToString() != local.status().ToString()) {
        mismatch =
            "error '" + remote.ToString() + "' != '" +
            local.status().ToString() + "'";
      }
    } else {
      mismatch = outcome->ok ? "server ok, oracle failed: " +
                                   local.status().ToString()
                             : "oracle ok, server failed: " +
                                   outcome->error.ToStatus().ToString();
    }
    if (!mismatch.empty()) {
      ++diffs;
      std::fprintf(stderr, "DIFF %s\n  %s\n", stmt.c_str(),
                   mismatch.c_str());
    }
  }
  std::printf("client: %zu statements, %zu diffs vs oracle\n",
              statements.size(), diffs);
  return diffs > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      args.flags.push_back(a);
      // Flags with values consume the next token.
      if ((a == "--points" || a == "--layers" || a == "--threads" ||
           a == "--cols" || a == "--format" || a == "--out" ||
           a == "--budget-mb" || a == "--repeat" || a == "--shards" ||
           a == "--order" || a == "--chunk-mb" || a == "--interval-ms" ||
           a == "--export" || a == "--json" || a == "--top" ||
           a == "--port" || a == "--workers" || a == "--queue" ||
           a == "--rate-qps" || a == "--rate-burst" || a == "--host" ||
           a == "--cache-mb" ||
           a == "--oracle" || a == "--sweep" || a == "--seed" ||
           a == "--id" || a == "--retry-ms") &&
          i + 1 < argc) {
        args.flags.push_back(argv[++i]);
      }
    } else {
      args.positional.push_back(a);
    }
  }
  std::string cmd = argv[1];
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "info") return CmdInfo(args);
  if (cmd == "sort") return CmdSort(args);
  if (cmd == "index") return CmdIndex(args);
  if (cmd == "load") return CmdLoad(args);
  if (cmd == "shard") return CmdShard(args);
  if (cmd == "ingest") return CmdIngest(args);
  if (cmd == "query") return CmdQuery(args);
  if (cmd == "raster") return CmdRaster(args);
  if (cmd == "verify") return CmdVerify(args);
  if (cmd == "metrics") return CmdMetrics(args);
  if (cmd == "trace") return CmdTrace(args);
  if (cmd == "cache") return CmdCache(args);
  if (cmd == "top") return CmdTop(args);
  if (cmd == "heat") return CmdHeat(args);
  if (cmd == "replay") return CmdReplay(args);
  if (cmd == "serve") return CmdServe(args);
  if (cmd == "client") return CmdClient(args);
  if (cmd == "simd") return CmdSimd(args);
  return Usage();
}
