// Fixed-size thread pool used to parallelise per-file LAS conversion in the
// binary loader and per-tile generation in the synthetic data generators.
#ifndef GEOCOL_UTIL_THREAD_POOL_H_
#define GEOCOL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace geocol {

/// A minimal fixed-size worker pool.
///
/// Tasks are arbitrary void() callables. `WaitIdle` blocks until the queue
/// drains and every worker is parked, which is the only synchronisation the
/// loaders need (fork-join usage).
class ThreadPool {
 public:
  /// `num_threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace geocol

#endif  // GEOCOL_UTIL_THREAD_POOL_H_
