// Unit tests for the util substrate: Status/Result, BitVector, Rng,
// binary I/O, temp dirs, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "util/binary_io.h"
#include "util/bitvector.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/tempdir.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace geocol {
namespace {

// ---------------- Status / Result ----------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v * 2;
}

Status UseParse(int v, int* out) {
  GEOCOL_ASSIGN_OR_RETURN(*out, ParsePositive(v));
  return Status::OK();
}

TEST(ResultTest, ValuePath) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  int out = 0;
  EXPECT_TRUE(UseParse(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(UseParse(0, &out).ok());
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(ParsePositive(3).ValueOr(-7), 6);
  EXPECT_EQ(ParsePositive(-3).ValueOr(-7), -7);
}

// ---------------- BitVector ----------------

TEST(BitVectorTest, BasicSetGetClear) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.Count(), 0u);
  bv.Set(0);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(129));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.Count(), 3u);
  bv.Clear(64);
  EXPECT_FALSE(bv.Get(64));
  EXPECT_EQ(bv.Count(), 2u);
}

TEST(BitVectorTest, InitialValueTrueMasksTail) {
  BitVector bv(70, true);
  EXPECT_EQ(bv.Count(), 70u);
}

TEST(BitVectorTest, SetRangeWithinOneWord) {
  BitVector bv(64);
  bv.SetRange(3, 9);
  EXPECT_EQ(bv.Count(), 6u);
  for (size_t i = 0; i < 64; ++i) EXPECT_EQ(bv.Get(i), i >= 3 && i < 9);
}

TEST(BitVectorTest, SetRangeAcrossWords) {
  BitVector bv(256);
  bv.SetRange(60, 200);
  EXPECT_EQ(bv.Count(), 140u);
  EXPECT_FALSE(bv.Get(59));
  EXPECT_TRUE(bv.Get(60));
  EXPECT_TRUE(bv.Get(199));
  EXPECT_FALSE(bv.Get(200));
}

TEST(BitVectorTest, SetRangeEmptyIsNoop) {
  BitVector bv(64);
  bv.SetRange(10, 10);
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVectorTest, FindNext) {
  BitVector bv(200);
  bv.Set(5);
  bv.Set(130);
  EXPECT_EQ(bv.FindNext(0), 5u);
  EXPECT_EQ(bv.FindNext(5), 5u);
  EXPECT_EQ(bv.FindNext(6), 130u);
  EXPECT_EQ(bv.FindNext(131), 200u);  // size() when no more bits
}

TEST(BitVectorTest, FindNextIterationVisitsAllSetBits) {
  BitVector bv(1000);
  std::set<size_t> expected = {0, 1, 63, 64, 65, 511, 999};
  for (size_t i : expected) bv.Set(i);
  std::set<size_t> seen;
  for (size_t i = bv.FindNext(0); i < bv.size(); i = bv.FindNext(i + 1)) {
    seen.insert(i);
  }
  EXPECT_EQ(seen, expected);
}

TEST(BitVectorTest, AndOrNot) {
  BitVector a(100), b(100);
  a.SetRange(0, 50);
  b.SetRange(25, 75);
  BitVector a_and = a;
  a_and.And(b);
  EXPECT_EQ(a_and.Count(), 25u);
  BitVector a_or = a;
  a_or.Or(b);
  EXPECT_EQ(a_or.Count(), 75u);
  BitVector n = a;
  n.Not();
  EXPECT_EQ(n.Count(), 50u);
  EXPECT_FALSE(n.Get(0));
  EXPECT_TRUE(n.Get(99));
}

TEST(BitVectorTest, CollectSetBits) {
  BitVector bv(70);
  bv.Set(2);
  bv.Set(69);
  std::vector<uint64_t> out;
  bv.CollectSetBits(&out);
  EXPECT_EQ(out, (std::vector<uint64_t>{2, 69}));
}

TEST(BitVectorTest, SetAllClearAll) {
  BitVector bv(130);
  bv.SetAll();
  EXPECT_EQ(bv.Count(), 130u);
  bv.ClearAll();
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVectorTest, EqualityAndResize) {
  BitVector a(10), b(10);
  a.Set(3);
  EXPECT_FALSE(a == b);
  b.Set(3);
  EXPECT_TRUE(a == b);
  a.Resize(20);
  EXPECT_EQ(a.size(), 20u);
  EXPECT_EQ(a.Count(), 0u);  // Resize reinitialises
}

// ---------------- Rng ----------------

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformWithinBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

// ---------------- binary I/O ----------------

TEST(BinaryIoTest, ScalarRoundTrip) {
  TempDir tmp;
  std::string path = tmp.File("scalars.bin");
  {
    BinaryWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    ASSERT_TRUE(w.WriteScalar<uint32_t>(0xDEADBEEF).ok());
    ASSERT_TRUE(w.WriteScalar<double>(3.5).ok());
    ASSERT_TRUE(w.WriteString("hello").ok());
    EXPECT_EQ(w.bytes_written(), 4u + 8u + 4u + 5u);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r;
  ASSERT_TRUE(r.Open(path).ok());
  uint32_t u = 0;
  double d = 0;
  std::string s;
  ASSERT_TRUE(r.ReadScalar(&u).ok());
  ASSERT_TRUE(r.ReadScalar(&d).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(u, 0xDEADBEEF);
  EXPECT_EQ(d, 3.5);
  EXPECT_EQ(s, "hello");
}

TEST(BinaryIoTest, ShortReadIsCorruption) {
  TempDir tmp;
  std::string path = tmp.File("short.bin");
  ASSERT_TRUE(WriteFileBytes(path, "ab", 2).ok());
  BinaryReader r;
  ASSERT_TRUE(r.Open(path).ok());
  uint64_t v = 0;
  Status st = r.ReadScalar(&v);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(BinaryIoTest, MissingFileIsIOError) {
  BinaryReader r;
  Status st = r.Open("/nonexistent/definitely/not/here.bin");
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

TEST(BinaryIoTest, StringLengthLimitGuardsCorruptInput) {
  TempDir tmp;
  std::string path = tmp.File("bigstr.bin");
  {
    BinaryWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    ASSERT_TRUE(w.WriteScalar<uint32_t>(0x7FFFFFFF).ok());  // absurd length
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r;
  ASSERT_TRUE(r.Open(path).ok());
  std::string s;
  EXPECT_EQ(r.ReadString(&s).code(), StatusCode::kCorruption);
}

TEST(BinaryIoTest, VectorRoundTripAndFileSize) {
  TempDir tmp;
  std::string path = tmp.File("vec.bin");
  std::vector<int32_t> vals = {1, -2, 3, -4};
  {
    BinaryWriter w;
    ASSERT_TRUE(w.Open(path).ok());
    ASSERT_TRUE(w.WriteVector(vals).ok());
    ASSERT_TRUE(w.Close().ok());
  }
  auto size = FileSizeBytes(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 16u);
  BinaryReader r;
  ASSERT_TRUE(r.Open(path).ok());
  std::vector<int32_t> back;
  ASSERT_TRUE(r.ReadVector(&back, 4).ok());
  EXPECT_EQ(back, vals);
}

TEST(BinaryIoTest, SeekSupportsRandomAccess) {
  TempDir tmp;
  std::string path = tmp.File("seek.bin");
  std::vector<uint8_t> data(100);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(WriteFileBytes(path, data.data(), data.size()).ok());
  BinaryReader r;
  ASSERT_TRUE(r.Open(path).ok());
  ASSERT_TRUE(r.Seek(42).ok());
  uint8_t b = 0;
  ASSERT_TRUE(r.ReadScalar(&b).ok());
  EXPECT_EQ(b, 42);
}

// ---------------- TempDir / ListFiles ----------------

TEST(TempDirTest, CreatesAndRemoves) {
  std::string path;
  {
    TempDir tmp("uttest");
    path = tmp.path();
    EXPECT_TRUE(PathExists(path));
    ASSERT_TRUE(WriteFileBytes(tmp.File("a.txt"), "x", 1).ok());
  }
  EXPECT_FALSE(PathExists(path));
}

TEST(TempDirTest, ListFilesFiltersBySuffix) {
  TempDir tmp;
  ASSERT_TRUE(WriteFileBytes(tmp.File("b.las"), "x", 1).ok());
  ASSERT_TRUE(WriteFileBytes(tmp.File("a.las"), "x", 1).ok());
  ASSERT_TRUE(WriteFileBytes(tmp.File("c.laz"), "x", 1).ok());
  std::vector<std::string> files;
  ASSERT_TRUE(ListFiles(tmp.path(), ".las", &files).ok());
  ASSERT_EQ(files.size(), 2u);
  EXPECT_LT(files[0], files[1]);  // sorted
}

// ---------------- ThreadPool ----------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndexes) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroTasksIsFine) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
  pool.WaitIdle();
}

TEST(ThreadPoolTest, SingleIndexRunsOnCaller) {
  ThreadPool pool(2);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran;
  pool.ParallelFor(1, [&](size_t) { ran = std::this_thread::get_id(); });
  EXPECT_EQ(ran, caller);
}

TEST(ThreadPoolTest, SubmitIsReentrantFromWorkers) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &count] {
      count.fetch_add(1);
      pool.Submit([&count] { count.fetch_add(1); });
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerTask) {
  // A ParallelFor issued from inside a worker task must complete even when
  // every worker is busy: the issuing thread claims indices itself.
  ThreadPool pool(2);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(kOuter, [&](size_t o) {
    pool.ParallelFor(kInner, [&](size_t i) {
      hits[o * kInner + i].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallers) {
  // Several external threads drive independent loops through one pool;
  // each call tracks its own completion, so no loop observes another's.
  ThreadPool pool(3);
  constexpr int kCallers = 4;
  constexpr size_t kIters = 500;
  std::vector<std::atomic<int>> hits(kCallers * kIters);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &hits, c] {
      pool.ParallelFor(kIters, [&hits, c](size_t i) {
        hits[c * kIters + i].fetch_add(1);
      });
    });
  }
  for (auto& t : callers) t.join();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForBalancesUnevenWork) {
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  pool.ParallelFor(100, [&](size_t i) {
    // Quadratic skew: a static partition would leave one thread with most
    // of the work; dynamic claiming must still visit every index once.
    volatile uint64_t sink = 0;
    for (size_t k = 0; k < i * i; ++k) sink += k;
    total.fetch_add(i + 1);
  });
  EXPECT_EQ(total.load(), 5050u);
}

// ---------------- Timer ----------------

TEST(TimerTest, MonotonicNonNegative) {
  Timer t;
  EXPECT_GE(t.ElapsedNanos(), 0);
  AccumulatingTimer acc;
  acc.Start();
  acc.Stop();
  acc.Start();
  acc.Stop();
  EXPECT_GE(acc.TotalNanos(), 0);
  acc.Reset();
  EXPECT_EQ(acc.TotalNanos(), 0);
}

}  // namespace
}  // namespace geocol
