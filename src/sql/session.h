// The user-facing SQL entry point: parse -> plan -> execute, keeping the
// last query's plan and per-operator profile available — the demo's
// interactive front end in library form.
#ifndef GEOCOL_SQL_SESSION_H_
#define GEOCOL_SQL_SESSION_H_

#include <string>

#include "sql/executor.h"

namespace geocol {
namespace sql {

/// A lightweight SQL session over a catalog (not thread safe; create one
/// per thread).
class Session {
 public:
  explicit Session(Catalog* catalog) : catalog_(catalog) {}

  /// Parses, plans and executes `sql_text`.
  Result<ResultSet> Execute(const std::string& sql_text);

  /// Plan description of the last executed (or explained) statement.
  const std::string& last_plan() const { return last_plan_; }

  /// Per-operator profile of the last executed statement.
  const QueryProfile& last_profile() const { return last_profile_; }

 private:
  Catalog* catalog_;
  std::string last_plan_;
  QueryProfile last_profile_;
};

}  // namespace sql
}  // namespace geocol

#endif  // GEOCOL_SQL_SESSION_H_
