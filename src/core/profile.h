// Per-operator execution profile — the demo's scenario 2 lets users "see
// the plans of the queries and the execution time spent in each operator"
// (§4.2). Every engine query fills one of these.
#ifndef GEOCOL_CORE_PROFILE_H_
#define GEOCOL_CORE_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace geocol {

/// One executed operator: name, wall time, cardinalities.
struct OperatorProfile {
  std::string name;
  int64_t nanos = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  std::string detail;  ///< free-form annotation ("mask=0x3f", "grid=64x48")
};

/// Ordered list of operator profiles for one query execution.
class QueryProfile {
 public:
  void Clear() { ops_.clear(); }

  void Add(std::string name, int64_t nanos, uint64_t rows_in,
           uint64_t rows_out, std::string detail = "") {
    ops_.push_back({std::move(name), nanos, rows_in, rows_out,
                    std::move(detail)});
  }

  const std::vector<OperatorProfile>& operators() const { return ops_; }
  bool empty() const { return ops_.empty(); }

  /// Sum of operator times.
  int64_t TotalNanos() const;

  /// Multi-line plan rendering:
  ///   filter.imprints.x      1.23 ms   12500 -> 830 lines  [mask=...]
  std::string ToString() const;

 private:
  std::vector<OperatorProfile> ops_;
};

}  // namespace geocol

#endif  // GEOCOL_CORE_PROFILE_H_
