// The ingestion chaos harness (DESIGN.md §13): concurrent writers and
// readers over a LiveTable with every read proven bit-identical to a
// serial replay of the pinned epochs, plus crash/torn-write/transient
// fault sweeps over the append commit paths (flat LiveTable and sharded
// shards.gsm swap). The harness exercises well over 200 distinct
// crash/fault points; after every one of them the store reopens as a
// complete old-or-new epoch — never garbage, never an error.
//
// GEOCOL_CHAOS_SEED pins the concurrency seed for CI reproduction
// (default 42).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "columns/column_file.h"
#include "columns/sharded_table.h"
#include "core/live_table.h"
#include "core/shard_router.h"
#include "core/table_appender.h"
#include "telemetry/metrics.h"
#include "util/binary_io.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

uint64_t ChaosSeed() {
  const char* env = std::getenv("GEOCOL_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 42;
}

std::shared_ptr<FlatTable> MakePoints(size_t n, uint64_t seed,
                                      const Box& extent) {
  Rng rng(seed);
  std::vector<double> xs(n), ys(n), zs(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = rng.UniformDouble(extent.min_x, extent.max_x);
    ys[i] = rng.UniformDouble(extent.min_y, extent.max_y);
    zs[i] = rng.UniformDouble(-5, 40);
  }
  auto t = std::make_shared<FlatTable>("pc");
  EXPECT_TRUE(t->AddColumn(Column::FromVector("x", xs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("y", ys)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("z", zs)).ok());
  return t;
}

void ExpectTablesEqual(const FlatTable& t, const FlatTable& expect) {
  ASSERT_EQ(t.num_columns(), expect.num_columns());
  ASSERT_EQ(t.num_rows(), expect.num_rows());
  for (const auto& ec : expect.columns()) {
    ColumnPtr c = t.column(ec->name());
    ASSERT_NE(c, nullptr) << ec->name();
    ASSERT_EQ(c->size(), ec->size()) << ec->name();
    ASSERT_EQ(std::memcmp(c->raw_data(), ec->raw_data(),
                          c->size() * DataTypeSize(c->type())),
              0)
        << ec->name();
  }
}

class IngestChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }
  TempDir tmp_;
};

// ---------------------------------------------------------------------------
// N writers × M readers: every pinned read bit-identical to serial replay.
// ---------------------------------------------------------------------------

TEST_F(IngestChaosTest, ConcurrentReadsBitIdenticalToSerialReplay) {
  const uint64_t seed = ChaosSeed();
  constexpr int kWriters = 3;
  constexpr int kReaders = 3;
  constexpr int kBatchesPerWriter = 8;
  constexpr size_t kRowsPerBatch = 96;
  const Box extent(0, 0, 100, 100);

  auto initial = MakePoints(1024, seed, extent);
  const uint64_t initial_rows = initial->num_rows();
  auto live = LiveTable::Create(initial);
  ASSERT_TRUE(live.ok());

  // Every batch stamps its rows with a unique id in z, so the commit order
  // can be reconstructed from the final concatenation afterwards.
  auto make_batch = [&](int writer, int b) {
    Rng rng(seed * 7919 + writer * 131 + b);
    std::vector<double> xs(kRowsPerBatch), ys(kRowsPerBatch),
        zs(kRowsPerBatch, static_cast<double>(writer * 1000 + b));
    for (size_t i = 0; i < kRowsPerBatch; ++i) {
      xs[i] = rng.UniformDouble(0, 100);
      ys[i] = rng.UniformDouble(0, 100);
    }
    FlatTable batch("pc");
    EXPECT_TRUE(batch.AddColumn(Column::FromVector("x", xs)).ok());
    EXPECT_TRUE(batch.AddColumn(Column::FromVector("y", ys)).ok());
    EXPECT_TRUE(batch.AddColumn(Column::FromVector("z", zs)).ok());
    return batch;
  };

  std::atomic<bool> writers_done{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      TableAppender app(*live);
      for (int b = 0; b < kBatchesPerWriter; ++b) {
        ASSERT_TRUE(app.StageBatch(make_batch(w, b)).ok());
        ASSERT_TRUE(app.Commit().ok());
      }
    });
  }

  // Readers pin snapshots while commits land and keep each distinct epoch
  // they observed (table pointer + row prefix) for the replay check. They
  // also assert basic sanity inline: full-extent selection count equals
  // the pinned row count.
  std::mutex observed_mu;
  std::map<uint64_t, std::shared_ptr<FlatTable>> observed;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      while (!writers_done.load()) {
        EpochSnapshot snap = (*live)->Pin();
        auto sel = snap.engine->SelectInBox(Box(-1, -1, 101, 101));
        ASSERT_TRUE(sel.ok()) << sel.status().ToString();
        ASSERT_EQ(sel->count(), snap.table->num_rows());
        {
          std::lock_guard<std::mutex> lock(observed_mu);
          observed.emplace(snap.epoch, snap.table);
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  // Reconstruct the global commit order from the final table's batch
  // stamps, then replay serially and compare every observed epoch's table
  // byte-for-byte against the replay prefix at that epoch.
  EpochSnapshot fin = (*live)->Pin();
  ASSERT_EQ(fin.epoch, uint64_t{kWriters} * kBatchesPerWriter);
  ASSERT_EQ(fin.table->num_rows(),
            initial_rows + fin.epoch * kRowsPerBatch);
  ColumnPtr fz = fin.table->column("z");
  std::vector<std::pair<int, int>> commit_order;  // (writer, batch)
  for (uint64_t e = 0; e < fin.epoch; ++e) {
    double stamp = fz->GetDouble(initial_rows + e * kRowsPerBatch);
    int writer = static_cast<int>(stamp) / 1000;
    int b = static_cast<int>(stamp) % 1000;
    // All rows of the batch carry the same stamp — batches never split.
    for (size_t i = 0; i < kRowsPerBatch; ++i) {
      ASSERT_EQ(fz->GetDouble(initial_rows + e * kRowsPerBatch + i), stamp);
    }
    commit_order.emplace_back(writer, b);
  }

  // Serial replay from an independent, deterministic copy of the initial
  // data (same seed), so appending never touches the live chain's columns.
  FlatTable replay = *MakePoints(1024, seed, extent);
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(observed_mu);
    auto it = observed.find(0);
    if (it != observed.end()) ExpectTablesEqual(*it->second, replay);
    for (const auto& [writer, b] : commit_order) {
      FlatTable batch = make_batch(writer, b);
      for (size_t i = 0; i < replay.num_columns(); ++i) {
        const ColumnPtr& src = batch.column(replay.column(i)->name());
        replay.column(i)->AppendRaw(src->raw_data(), src->size());
      }
      ++epoch;
      it = observed.find(epoch);
      if (it != observed.end()) ExpectTablesEqual(*it->second, replay);
    }
  }
  ExpectTablesEqual(*fin.table, replay);
}

// ---------------------------------------------------------------------------
// Crash + torn-write sweeps over the append commit paths.
// ---------------------------------------------------------------------------

TEST_F(IngestChaosTest, FlatCommitCrashSweepReopensOldOrNew) {
  auto& fi = FaultInjector::Global();
  std::string dir = tmp_.File("live");
  auto old_data = MakePoints(400, 21, Box(0, 0, 100, 100));
  FlatTable batch = *MakePoints(150, 22, Box(0, 0, 100, 100));

  auto reset = [&] {
    ASSERT_TRUE(RemoveDirRecursive(dir).ok());
    LiveTableOptions opts;
    opts.dir = dir;
    auto live = LiveTable::Create(old_data, opts);
    ASSERT_TRUE(live.ok()) << live.status().ToString();
  };
  auto workload = [&]() -> Status {
    LiveTableOptions opts;
    GEOCOL_ASSIGN_OR_RETURN(std::shared_ptr<LiveTable> live,
                            LiveTable::Open(dir, opts));
    TableAppender app(live);
    GEOCOL_RETURN_NOT_OK(app.StageBatch(batch));
    return app.Commit();
  };

  reset();
  fi.StartCounting();
  ASSERT_TRUE(workload().ok());
  const uint64_t total = fi.StopCounting();
  ASSERT_GT(total, 0u);

  uint64_t fault_points = 0;
  for (uint64_t k = 1; k <= total; ++k) {
    for (int torn = 0; torn < 2; ++torn) {
      SCOPED_TRACE("op " + std::to_string(k) + (torn ? " torn" : " crash"));
      reset();
      if (torn) {
        fi.ArmTornWrite(k, 3);
      } else {
        fi.ArmCrashAtOp(k);
      }
      (void)workload();
      fi.Disarm();
      ++fault_points;

      // The reopened table is exactly old or exactly new — the verify
      // invariant — and every column file passes its checksum.
      auto reopened = LiveTable::Open(dir);
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      uint64_t rows = (*reopened)->Pin().table->num_rows();
      ASSERT_TRUE(rows == 400 || rows == 550) << rows;
      auto raw = ReadTableDir(dir);
      ASSERT_TRUE(raw.ok()) << raw.status().ToString();
      ASSERT_TRUE(raw->Validate().ok());
    }
  }
  EXPECT_GE(fault_points, 2 * total);
}

TEST_F(IngestChaosTest, ShardedAppendCrashSweepReopensOldOrNew) {
  auto& fi = FaultInjector::Global();
  std::string dir = tmp_.File("shards");
  auto source = MakePoints(2000, 23, Box(0, 0, 100, 100));
  ShardingOptions so;
  so.num_shards = 4;
  // The batch spans two corners so the commit rewrites several shards —
  // more files in flight than a single-shard append, a harder sweep.
  FlatTable batch = *MakePoints(60, 24, Box(0, 0, 100, 100));

  auto reset = [&] {
    ASSERT_TRUE(RemoveDirRecursive(dir).ok());
    auto sharded = ShardedTable::Create(*source, so);
    ASSERT_TRUE(sharded.ok());
    ASSERT_TRUE(WriteShardedTableDir(**sharded, dir).ok());
  };
  auto workload = [&]() -> Status {
    GEOCOL_ASSIGN_OR_RETURN(std::shared_ptr<ShardedTable> sharded,
                            ReadShardedTableDir(dir));
    EngineOptions eo;
    eo.num_threads = 1;
    ShardRouter router(std::move(sharded), eo);
    return router.Append(batch);
  };

  reset();
  fi.StartCounting();
  ASSERT_TRUE(workload().ok());
  const uint64_t total = fi.StopCounting();
  ASSERT_GT(total, 0u);

  uint64_t fault_points = 0;
  for (uint64_t k = 1; k <= total; ++k) {
    SCOPED_TRACE("crash at op " + std::to_string(k) + " of " +
                 std::to_string(total));
    reset();
    fi.ArmCrashAtOp(k);
    (void)workload();
    fi.Disarm();
    ++fault_points;

    // Reopen must see the complete old or complete new layout: the
    // shards.gsm swap is the only commit point.
    auto reopened = ReadShardedTableDir(dir);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    uint64_t rows = (*reopened)->num_rows();
    ASSERT_TRUE(rows == 2000 || rows == 2060) << rows;
    // And the reopened layout answers queries over all its rows.
    EngineOptions eo;
    eo.num_threads = 1;
    ShardRouter router(*reopened, eo);
    auto sel = router.SelectInBox(Box(-1, -1, 101, 101));
    ASSERT_TRUE(sel.ok());
    ASSERT_EQ(sel->count(), rows);
  }
  EXPECT_GE(fault_points, 20u);

  // The two sweeps together must exercise the harness's contract of at
  // least 200 distinct crash/fault points; this one alone is typically
  // in the hundreds (4 shard dirs × 3 columns + manifests).
  EXPECT_GE(fault_points, total);
}

// ---------------------------------------------------------------------------
// Transient-IO faults: bounded retry absorbs hiccups, exhaustion stays
// old-or-new (satellite: retry-with-backoff in util/ IO).
// ---------------------------------------------------------------------------

TEST_F(IngestChaosTest, TransientReadFaultsAbsorbedByRetry) {
  auto& fi = FaultInjector::Global();
  telemetry::SetMetricsEnabled(true);
  auto& retries =
      telemetry::MetricsRegistry::Global().GetCounter("geocol_io_retries_total");

  std::string dir = tmp_.File("tbl");
  auto table = MakePoints(500, 25, Box(0, 0, 100, 100));
  ASSERT_TRUE(WriteTableDir(*table, dir).ok());

  fi.StartCounting();
  ASSERT_TRUE(ReadTableDir(dir).ok());
  const uint64_t total = fi.StopCounting();
  ASSERT_GT(total, 0u);

  const uint64_t retries_before = retries.Value();
  uint64_t absorbed = 0;
  for (uint64_t k = 1; k <= total; ++k) {
    SCOPED_TRACE("transient at op " + std::to_string(k));
    // Two consecutive EINTRs fit inside the 3-attempt budget; payload
    // reads and fsyncs must absorb them. Ops without a retry wrapper
    // (open, rename, ...) may fail — but never corrupt anything.
    fi.ArmTransientErrors(k, 2);
    auto got = ReadTableDir(dir);
    fi.Disarm();
    if (got.ok()) {
      ++absorbed;
      ExpectTablesEqual(*got, *table);
    }
  }
  EXPECT_GT(absorbed, 0u);
  EXPECT_GT(retries.Value(), retries_before);
  telemetry::SetMetricsEnabled(false);
}

TEST_F(IngestChaosTest, TransientFaultExhaustionKeepsCommitOldOrNew) {
  auto& fi = FaultInjector::Global();
  std::string dir = tmp_.File("live");
  auto old_data = MakePoints(300, 26, Box(0, 0, 100, 100));
  FlatTable batch = *MakePoints(100, 27, Box(0, 0, 100, 100));

  auto reset = [&] {
    ASSERT_TRUE(RemoveDirRecursive(dir).ok());
    LiveTableOptions opts;
    opts.dir = dir;
    ASSERT_TRUE(LiveTable::Create(old_data, opts).ok());
  };
  auto workload = [&]() -> Status {
    GEOCOL_ASSIGN_OR_RETURN(std::shared_ptr<LiveTable> live,
                            LiveTable::Open(dir));
    TableAppender app(live);
    GEOCOL_RETURN_NOT_OK(app.StageBatch(batch));
    return app.Commit();
  };

  reset();
  fi.StartCounting();
  ASSERT_TRUE(workload().ok());
  const uint64_t total = fi.StopCounting();

  uint64_t absorbed = 0, failed = 0;
  for (uint64_t k = 1; k <= total; ++k) {
    for (uint32_t burst : {2u, 8u}) {
      SCOPED_TRACE("transient burst " + std::to_string(burst) + " at op " +
                   std::to_string(k));
      reset();
      fi.ArmTransientErrors(k, burst);
      Status st = workload();
      fi.Disarm();
      (st.ok() ? absorbed : failed) += 1;

      // Whether the retry absorbed the burst or the budget ran out, the
      // on-disk table is exactly old or exactly new.
      auto reopened = LiveTable::Open(dir);
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      uint64_t rows = (*reopened)->Pin().table->num_rows();
      ASSERT_TRUE(rows == 300 || rows == 400) << rows;
      if (st.ok()) ASSERT_EQ(rows, 400u);
    }
  }
  // A 2-op burst must be absorbed somewhere (fsync/read wrappers), and an
  // 8-op burst must exhaust the 3-attempt budget somewhere.
  EXPECT_GT(absorbed, 0u);
  EXPECT_GT(failed, 0u);
}

// ---------------------------------------------------------------------------
// Bit flips under ingestion: a flipped manifest byte after a commit is
// detected, never served as wrong data.
// ---------------------------------------------------------------------------

TEST_F(IngestChaosTest, BitFlipAfterCommitDetectedOnReopen) {
  auto& fi = FaultInjector::Global();
  std::string dir = tmp_.File("live");
  LiveTableOptions opts;
  opts.dir = dir;
  auto live = LiveTable::Create(MakePoints(200, 28, Box(0, 0, 100, 100)), opts);
  ASSERT_TRUE(live.ok());
  TableAppender app(*live);
  ASSERT_TRUE(app.StageBatch(*MakePoints(50, 29, Box(0, 0, 100, 100))).ok());
  ASSERT_TRUE(app.Commit().ok());

  // Reading the committed epoch through an injected bit flip on each of
  // the first payload reads must surface Corruption or a clean retry-less
  // failure — never silently wrong data.
  fi.StartCounting();
  ASSERT_TRUE(ReadTableDir(dir).ok());
  const uint64_t total = fi.StopCounting();
  uint64_t detected = 0;
  for (uint64_t k = 1; k <= total; ++k) {
    fi.ArmBitFlip(k, 2, 5);
    auto got = ReadTableDir(dir);
    fi.Disarm();
    if (!got.ok()) {
      ++detected;
      continue;
    }
    // A flip the checksum could not see must mean the op was not a
    // payload read (metadata ops ignore ArmBitFlip): data is intact.
    ASSERT_TRUE(got->Validate().ok());
    ASSERT_EQ(got->num_rows(), 250u);
  }
  EXPECT_GT(detected, 0u);
}

}  // namespace
}  // namespace geocol
