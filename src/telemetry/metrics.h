// Engine-wide metrics registry: the "where do time and bytes actually go"
// substrate underneath the per-query profiles (PAPER §4.2 lets users see
// per-operator times; systems serving interactive analytics additionally
// attribute every query to cache hits vs. disk — PowerDrill-style).
//
// Design constraints, in order:
//  1. An increment on the hot path must be a handful of nanoseconds: one
//     relaxed atomic add on a per-thread shard, no locks, no allocation.
//  2. Reads are rare (exposition) and may be O(shards).
//  3. Metric objects live forever once registered, so instrumentation
//     sites cache a `Counter&` in a function-local static and never touch
//     the registry map again.
//
// Instrumentation sites sit OUTSIDE per-row loops — once per scan, per
// task, per file operation — so the counters-only path costs <2% on the
// selection workloads (measured by bench_telemetry, E12).
#ifndef GEOCOL_TELEMETRY_METRICS_H_
#define GEOCOL_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace geocol {
namespace telemetry {

/// Kill switch for every metric write (relaxed load per update). Exists so
/// bench_telemetry can measure the instrumentation overhead; production
/// leaves it on.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

/// Monotonic counter, sharded by thread to keep concurrent increments off
/// a shared cache line. Value() sums the shards (monotone but not a
/// consistent snapshot across *different* counters).
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Increment(uint64_t delta = 1) {
    if (!MetricsEnabled()) return;
    shards_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.value.load(std::memory_order_relaxed);
    return sum;
  }

  void Reset() {
    for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  /// Stable per-thread slot (assigned on first use, round-robin).
  static size_t ShardIndex();

  Shard shards_[kShards];
};

/// Last-write-wins instantaneous value (queue depth, dispatch level).
class Gauge {
 public:
  void Set(int64_t v) {
    if (MetricsEnabled()) value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (MetricsEnabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// HDR-style log-linear histogram. Values 0..31 land in exact unit-width
/// buckets; from 32 up, each power-of-two octave [2^m, 2^(m+1)) splits
/// into 32 linear sub-buckets of width 2^(m-5). A recorded value v lands
/// in a bucket whose inclusive upper bound R satisfies
///
///     v <= R   and   R - v < 2^(m-5) <= v / 32,
///
/// so quantiles read back from bucket upper bounds never under-report and
/// overshoot by at most 3.125% (1/32) relative — exactly 0 for v < 32.
/// Covering all of int64 takes (62 - 5 + 2) * 32 = 1888 buckets (~15 KiB
/// of relaxed atomics per histogram, paid once per registered name);
/// Observe() stays a bit-scan plus three relaxed atomic adds.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 5;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;  // 32
  /// Octaves m = 5..62 plus the exact 0..31 region (one octave's worth).
  static constexpr size_t kNumBuckets = (62 - kSubBucketBits + 2) * kSubBuckets;

  Histogram() = default;
  /// `first_bound` is accepted for source compatibility with the old
  /// power-of-4 layout and ignored: the log-linear layout is fixed.
  explicit Histogram(int64_t /*first_bound*/) {}

  /// Bucket index for `value` (negative values clamp to 0).
  static size_t BucketIndexFor(int64_t value);

  /// Inclusive upper bound of bucket `i`; INT64_MAX past the end.
  static int64_t BucketUpperBoundFor(size_t i);

  void Observe(int64_t value) {
    if (!MetricsEnabled()) return;
    buckets_[BucketIndexFor(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Upper bound of the bucket holding the rank-ceil(q*N) observation —
  /// the exact quantile of the recorded distribution rounded up to its
  /// bucket bound (error contract in the class comment). Returns 0 when
  /// empty; q is clamped to [0, 1].
  int64_t ValueAtQuantile(double q) const;

  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Process-global, name-keyed registry. Get* registers on first use and
/// returns a reference that stays valid for the life of the process, so
/// instrumentation sites do the map lookup exactly once:
///
///   static telemetry::Counter& c =
///       telemetry::MetricsRegistry::Global().GetCounter(
///           "geocol_imprint_scans_total");
///   c.Increment();
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `first_bound` only applies on first registration.
  Histogram& GetHistogram(const std::string& name, int64_t first_bound = 1000);

  /// Prometheus text exposition format: `# HELP` + `# TYPE` per metric,
  /// histograms as sparse cumulative _bucket series (only non-empty
  /// boundaries plus +Inf) with _sum/_count.
  std::string RenderPrometheus() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} where each
  /// histogram carries count/sum, p50/p90/p99/p999, and its non-empty
  /// buckets.
  std::string RenderJson() const;

  /// Zeroes every registered metric (tests and benchmarks only).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;  ///< guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Escapes a Prometheus label value: backslash, double quote and newline
/// become \\, \" and \n per the text exposition format.
std::string EscapeLabelValue(const std::string& value);

/// One-line operator summary built from the registry: bytes read, CRC
/// verifies, imprint hit rate. Printed by `geocol verify` and the bench
/// binaries on exit when GEOCOL_METRICS=1.
std::string SummaryLine();

/// Prints SummaryLine() to `out` iff the GEOCOL_METRICS env var is "1".
void MaybePrintSummary(std::FILE* out);

/// Registers an atexit hook that dumps RenderJson() to `path` (the bench
/// binaries' `--metrics <path>` flag).
void WriteMetricsJsonAtExit(std::string path);

}  // namespace telemetry
}  // namespace geocol

/// Declares a function-local static reference bound to the named counter;
/// usable as a statement inside any function.
#define GEOCOL_METRIC_COUNTER(var, name)             \
  static ::geocol::telemetry::Counter& var =         \
      ::geocol::telemetry::MetricsRegistry::Global().GetCounter(name)

#define GEOCOL_METRIC_GAUGE(var, name)               \
  static ::geocol::telemetry::Gauge& var =           \
      ::geocol::telemetry::MetricsRegistry::Global().GetGauge(name)

#define GEOCOL_METRIC_HISTOGRAM(var, name)           \
  static ::geocol::telemetry::Histogram& var =       \
      ::geocol::telemetry::MetricsRegistry::Global().GetHistogram(name)

#endif  // GEOCOL_TELEMETRY_METRICS_H_
