// Shared helpers of the benchmark harnesses: survey generation sized from
// the environment, simple aligned table printing, and repeat-timing.
//
// Every bench binary prints the experiment id from DESIGN.md/EXPERIMENTS.md
// and regenerates one table/figure of the evaluation. Scale knobs:
//   GEOCOL_BENCH_POINTS   approximate survey size   (default per binary)
//   GEOCOL_BENCH_REPS     timing repetitions        (default 3)
#ifndef GEOCOL_BENCH_BENCH_COMMON_H_
#define GEOCOL_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "columns/flat_table.h"
#include "pointcloud/generator.h"
#include "util/timer.h"

namespace geocol {
namespace bench {

inline uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  return end != v && parsed > 0 ? parsed : def;
}

inline uint64_t BenchPoints(uint64_t def) {
  return EnvU64("GEOCOL_BENCH_POINTS", def);
}

inline int BenchReps() {
  return static_cast<int>(EnvU64("GEOCOL_BENCH_REPS", 3));
}

/// Survey options sized so `approx_points` points cover a square extent at
/// AHN2-like density (8 pts/m²).
inline AhnGeneratorOptions SurveyOptions(uint64_t approx_points,
                                         uint64_t seed = 20150831) {
  AhnGeneratorOptions opts;
  opts.seed = seed;
  double area = static_cast<double>(approx_points) / 8.0;
  double side = std::sqrt(area);
  opts.extent = Box(85000.0, 444000.0, 85000.0 + side, 444000.0 + side);
  opts.point_density = 8.0;
  opts.scan_line_spacing = 1.0 / std::sqrt(8.0);
  opts.strip_width = std::max(side / 8.0, 10.0);
  return opts;
}

/// Generates an in-memory flat table of ~`approx_points` AHN-like points.
inline std::shared_ptr<FlatTable> GenerateSurvey(uint64_t approx_points,
                                                 uint64_t seed = 20150831) {
  AhnGenerator gen(SurveyOptions(approx_points, seed));
  auto table = gen.GenerateTable(approx_points);
  if (!table.ok()) {
    std::fprintf(stderr, "survey generation failed: %s\n",
                 table.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(table).value();
}

/// Runs `fn` BenchReps() times and returns the minimum wall time (ms).
inline double TimeMs(const std::function<void()>& fn, int reps = 0) {
  if (reps <= 0) reps = BenchReps();
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedMillis());
  }
  return best;
}

/// Minimal aligned-column table printer for the harness reports.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int col_width = 14)
      : headers_(std::move(headers)), width_(col_width) {
    PrintRowImpl(headers_);
    for (size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%s", std::string(static_cast<size_t>(width_), '-').c_str());
      std::printf(i + 1 == headers_.size() ? "\n" : "-+-");
    }
  }

  void Row(const std::vector<std::string>& cells) { PrintRowImpl(cells); }

  static std::string Num(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
  }
  static std::string Int(uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
  }
  static std::string Pct(double fraction, int precision = 1) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
  }
  static std::string Mb(uint64_t bytes) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / (1024.0 * 1024.0));
    return buf;
  }

 private:
  void PrintRowImpl(const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s", width_, cells[i].c_str());
      std::printf(i + 1 == cells.size() ? "\n" : " | ");
    }
  }

  std::vector<std::string> headers_;
  int width_;
};

inline void Banner(const char* experiment, const char* description) {
  std::printf("\n=================================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("=================================================================\n");
}

}  // namespace bench
}  // namespace geocol

#endif  // GEOCOL_BENCH_BENCH_COMMON_H_
