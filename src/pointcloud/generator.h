// The AHN2-like point cloud generator. Points are emitted in *acquisition
// order*: the virtual aircraft flies south-to-north strips, the scanner
// sweeping across-track — exactly the process that gives real LIDAR columns
// the "local clustering or partial ordering as a side effect of the
// construction process" that imprints compression exploits (§2.1.1).
#ifndef GEOCOL_POINTCLOUD_GENERATOR_H_
#define GEOCOL_POINTCLOUD_GENERATOR_H_

#include <functional>
#include <memory>

#include "columns/flat_table.h"
#include "las/las_format.h"
#include "pointcloud/terrain.h"
#include "util/status.h"

namespace geocol {

/// Generator configuration. Defaults produce a ~2 km² survey patch with
/// AHN2-like density (6-10 points/m²).
struct AhnGeneratorOptions {
  uint64_t seed = 20150831;          ///< VLDB'15 started Aug 31 — any seed works
  Box extent = Box(85000.0, 444000.0, 86000.0, 446000.0);  ///< RD-like coords
  double point_density = 8.0;        ///< points per m² (AHN2: 6-10)
  double strip_width = 120.0;        ///< flight strip width, meters
  double scan_line_spacing = 0.35;   ///< along-track distance between sweeps
  uint64_t target_points_per_tile = 200000;  ///< tile split threshold
  double coordinate_scale = 0.01;    ///< LAS scale (cm precision)
};

/// Streams tiles of synthetic AHN2-like data.
class AhnGenerator {
 public:
  explicit AhnGenerator(AhnGeneratorOptions options = {});

  const AhnGeneratorOptions& options() const { return options_; }
  const TerrainModel& terrain() const { return terrain_; }

  /// Expected total point count for the configured extent/density.
  uint64_t EstimatedPoints() const;

  /// Generates the full survey, invoking `consumer` once per tile (in
  /// acquisition order). The consumer may write the tile to disk, load it
  /// into a table, or both. Generation stops on the first non-OK status.
  Status GenerateTiles(
      const std::function<Status(LasTile&, uint64_t tile_index)>& consumer);

  /// Convenience: generates approximately `num_points` points (overriding
  /// density-based sizing) directly into a flat table with the LAS schema,
  /// in acquisition order.
  Result<std::shared_ptr<FlatTable>> GenerateTable(uint64_t num_points);

  /// Writes all tiles as files under `dir` named tile_00042.las/.laz.
  /// Returns the number of tiles written.
  Result<uint64_t> WriteTileDirectory(const std::string& dir, bool compress);

 private:
  /// Emits the points of one flight strip into `sink`.
  void GenerateStrip(uint32_t strip_index,
                     const std::function<void(const LasPointRecord&)>& sink,
                     LasTile* proto) const;

  AhnGeneratorOptions options_;
  TerrainModel terrain_;
};

/// Generates a plain random (unclustered) column of doubles — the worst
/// case for zonemaps in E5.
std::shared_ptr<Column> MakeUniformColumn(const std::string& name, size_t n,
                                          double lo, double hi, uint64_t seed);

/// Shuffles all columns of `table` with the same permutation — destroys
/// acquisition order while preserving row integrity (E5's "unclustered"
/// configuration).
void ShuffleTableRows(FlatTable* table, uint64_t seed);

/// Sorts all columns of `table` by Morton code of (x, y) — the `lassort`
/// configuration of E5/E3.
Status SortTableMorton(FlatTable* table);

}  // namespace geocol

#endif  // GEOCOL_POINTCLOUD_GENERATOR_H_
