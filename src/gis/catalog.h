// The catalog: named point-cloud tables (each wrapped by a spatial query
// engine) and named vector layers. This is what the SQL front end resolves
// FROM clauses against, and what the demo scenarios assemble.
#ifndef GEOCOL_GIS_CATALOG_H_
#define GEOCOL_GIS_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/spatial_engine.h"
#include "gis/layer.h"
#include "util/status.h"

namespace geocol {

/// Named dataset registry.
class Catalog {
 public:
  /// Registers a point cloud table; a SpatialQueryEngine is created over
  /// it with `options`.
  Status AddPointCloud(const std::string& name,
                       std::shared_ptr<FlatTable> table,
                       EngineOptions options = {});

  Status AddLayer(std::shared_ptr<VectorLayer> layer);

  bool HasPointCloud(const std::string& name) const {
    return engines_.count(name) != 0;
  }
  bool HasLayer(const std::string& name) const {
    return layers_.count(name) != 0;
  }

  Result<SpatialQueryEngine*> GetEngine(const std::string& name);
  Result<std::shared_ptr<FlatTable>> GetTable(const std::string& name);
  Result<std::shared_ptr<VectorLayer>> GetLayer(const std::string& name);

  std::vector<std::string> PointCloudNames() const;
  std::vector<std::string> LayerNames() const;

 private:
  std::map<std::string, std::unique_ptr<SpatialQueryEngine>> engines_;
  std::map<std::string, std::shared_ptr<FlatTable>> tables_;
  std::map<std::string, std::shared_ptr<VectorLayer>> layers_;
};

}  // namespace geocol

#endif  // GEOCOL_GIS_CATALOG_H_
