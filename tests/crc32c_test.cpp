// CRC32C tests: known-answer vectors, incremental extension, and
// hardware/software agreement on the platforms that have SSE4.2.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "util/crc32c.h"
#include "util/rng.h"

namespace geocol {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / standard CRC32C test vectors.
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  const char* abc = "abc";
  EXPECT_EQ(Crc32c(abc, 3), 0x364B3FB7u);
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<uint8_t> ffs(32, 0xFF);
  EXPECT_EQ(Crc32c(ffs.data(), ffs.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendComposes) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32c(msg.data(), msg.size());
  // Any split point must produce the same CRC via Extend.
  for (size_t split = 0; split <= msg.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, msg.data(), split);
    crc = Crc32cExtend(crc, msg.data() + split, msg.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string msg = "payload under test 0123456789";
  uint32_t good = Crc32c(msg.data(), msg.size());
  for (size_t byte = 0; byte < msg.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = msg;
      bad[byte] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32c(bad.data(), bad.size()), good)
          << "flip at byte " << byte << " bit " << bit;
    }
  }
}

TEST(Crc32cTest, CombineMatchesExtendAtEverySplit) {
  std::string msg = "combine must equal one straight pass over a||b";
  uint32_t whole = Crc32c(msg.data(), msg.size());
  for (size_t split = 0; split <= msg.size(); ++split) {
    uint32_t a = Crc32c(msg.data(), split);
    uint32_t b = Crc32c(msg.data() + split, msg.size() - split);
    EXPECT_EQ(Crc32cCombine(a, b, msg.size() - split), whole)
        << "split at " << split;
  }
}

TEST(Crc32cTest, CombineOpEqualsCombine) {
  // The precomputed operator is what lets a paged column fold thousands of
  // equal-length chunk CRCs in O(1) each; it must agree with the generic
  // combine bit for bit, including the len 0 identity.
  Rng rng(7);
  for (uint64_t len : {0ull, 1ull, 63ull, 4096ull, 262144ull}) {
    Crc32cCombineOp op = Crc32cCombineOpFor(len);
    for (int i = 0; i < 16; ++i) {
      uint32_t a = static_cast<uint32_t>(rng.Next());
      // crc_b must be the CRC of an actual len-byte message — for len 0
      // that means 0 (random values are not valid inputs there).
      uint32_t b = len == 0 ? 0u : static_cast<uint32_t>(rng.Next());
      EXPECT_EQ(Crc32cCombineWithOp(op, a, b), Crc32cCombine(a, b, len))
          << "len " << len;
    }
  }
  // len 0 appends nothing: combine must return crc_a ^ crc_b-of-empty,
  // i.e. exactly crc_a when b is the CRC of the empty string.
  EXPECT_EQ(Crc32cCombine(0xDEADBEEFu, Crc32c("", 0), 0), 0xDEADBEEFu);
}

TEST(Crc32cTest, CombineFoldsChunkedPayload) {
  // The exact access pattern of PagedColumn::Open: per-chunk CRCs folded
  // left to right reproduce the whole-payload CRC.
  Rng rng(21);
  std::vector<uint8_t> payload(300000);
  for (auto& b : payload) b = static_cast<uint8_t>(rng.Next());
  const size_t chunk = 65536;
  uint32_t folded = 0;
  Crc32cCombineOp op = Crc32cCombineOpFor(chunk);
  for (size_t off = 0; off < payload.size(); off += chunk) {
    size_t n = std::min(chunk, payload.size() - off);
    uint32_t c = Crc32c(payload.data() + off, n);
    folded = n == chunk ? Crc32cCombineWithOp(op, folded, c)
                        : Crc32cCombine(folded, c, n);
  }
  EXPECT_EQ(folded, Crc32c(payload.data(), payload.size()));
}

TEST(Crc32cTest, HardwareMatchesSoftware) {
  if (!internal::Crc32cHardwareEnabled()) {
    GTEST_SKIP() << "no SSE4.2 CRC32 on this machine";
  }
  Rng rng(42);
  // Odd lengths and offsets exercise the head/tail alignment handling.
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u, 4096u}) {
    std::vector<uint8_t> buf(len + 3);
    for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
    for (size_t off = 0; off < 3; ++off) {
      EXPECT_EQ(Crc32cExtend(0x12345678u, buf.data() + off, len),
                internal::Crc32cSoftware(0x12345678u, buf.data() + off, len))
          << "len " << len << " offset " << off;
    }
  }
}

}  // namespace
}  // namespace geocol
