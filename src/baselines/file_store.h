// The file-based solution (§2.2): a directory of LAS/LAZ tiles queried
// directly, Rapidlasso-LAStools style. Every query inspects file headers
// (the cost the paper highlights for 60,185-file AHN2), optionally uses a
// lasindex-like spatial sidecar per tile, and optionally benefits from a
// lassort-like spatial re-sort of each tile's points.
#ifndef GEOCOL_BASELINES_FILE_STORE_H_
#define GEOCOL_BASELINES_FILE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/common.h"
#include "geom/geometry.h"
#include "util/status.h"

namespace geocol {

/// File store configuration.
struct FileStoreOptions {
  /// Consult .lax sidecars (BuildIndexes must have run).
  bool use_index = false;
  /// lasindex grid resolution (cells per axis, per tile).
  uint32_t index_cells_per_axis = 32;
};

/// Query-time access to a tile directory.
class FileStore {
 public:
  using Options = FileStoreOptions;

  struct QueryStats {
    uint64_t files_total = 0;
    uint64_t headers_inspected = 0;  ///< header reads (every file, always)
    uint64_t files_opened = 0;       ///< tiles whose points were touched
    uint64_t points_read = 0;        ///< records physically read
    uint64_t exact_tests = 0;
    uint64_t results = 0;
  };

  /// Opens the store over all .las/.laz files under `dir`.
  static Result<FileStore> Open(const std::string& dir,
                                Options options = FileStoreOptions());

  size_t num_files() const { return files_.size(); }
  const std::vector<std::string>& files() const { return files_; }

  /// lasindex: writes a .lax sidecar (cell -> point-interval lists) next to
  /// every tile. Returns total index bytes written.
  Result<uint64_t> BuildIndexes() const;

  /// Points inside `geometry` (buffered when buffer > 0).
  Result<std::vector<PointXYZ>> QueryGeometry(const Geometry& geometry,
                                              double buffer = 0.0,
                                              QueryStats* stats = nullptr) const;

  /// lassort: rewrites every tile under `dir` with its points re-ordered
  /// along the Morton curve (and drops stale .lax sidecars).
  static Status SortTiles(const std::string& dir);

 private:
  Status QueryFile(const std::string& path, const Geometry& geometry,
                   double buffer, const Box& env, std::vector<PointXYZ>* out,
                   QueryStats* stats) const;

  std::string dir_;
  Options options_;
  std::vector<std::string> files_;
};

}  // namespace geocol

#endif  // GEOCOL_BASELINES_FILE_STORE_H_
