#include "gis/spatial_join.h"

#include <algorithm>

#include "geom/predicates.h"
#include "util/timer.h"

namespace geocol {

Result<NearLayerResult> PointsNearLayerClass(SpatialQueryEngine* engine,
                                             VectorLayer* layer,
                                             uint32_t feature_class,
                                             double distance) {
  NearLayerResult result;
  Timer t;
  std::vector<uint64_t> feature_idx;
  if (feature_class == 0) {
    feature_idx.resize(layer->size());
    for (size_t i = 0; i < layer->size(); ++i) feature_idx[i] = i;
  } else {
    feature_idx = layer->SelectByClass(feature_class);
  }
  result.profile.Add("layer.class_select", t.ElapsedNanos(), layer->size(),
                     feature_idx.size());

  for (uint64_t fi : feature_idx) {
    const VectorFeature& f = layer->feature(fi);
    GEOCOL_ASSIGN_OR_RETURN(
        SelectionResult sel,
        distance > 0 ? engine->SelectWithinDistance(f.geometry, distance)
                     : engine->SelectInGeometry(f.geometry));
    if (!sel.row_ids.empty()) ++result.features_matched;
    result.row_ids.insert(result.row_ids.end(), sel.row_ids.begin(),
                          sel.row_ids.end());
    for (const OperatorProfile& op : sel.profile.operators()) {
      result.profile.Add("  " + f.name + "." + op.name, op.nanos, op.rows_in,
                         op.rows_out, op.detail);
    }
  }

  Timer t2;
  std::sort(result.row_ids.begin(), result.row_ids.end());
  result.row_ids.erase(
      std::unique(result.row_ids.begin(), result.row_ids.end()),
      result.row_ids.end());
  result.profile.Add("union.dedup", t2.ElapsedNanos(), result.row_ids.size(),
                     result.row_ids.size());
  return result;
}

Result<double> AggregateNearLayerClass(SpatialQueryEngine* engine,
                                       VectorLayer* layer,
                                       uint32_t feature_class, double distance,
                                       const std::string& column,
                                       AggKind kind) {
  GEOCOL_ASSIGN_OR_RETURN(
      NearLayerResult near,
      PointsNearLayerClass(engine, layer, feature_class, distance));
  if (kind == AggKind::kCount) {
    return static_cast<double>(near.row_ids.size());
  }
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr col, engine->table().GetColumn(column));
  return AggregateRows(*col, near.row_ids, kind);
}

std::vector<uint64_t> LayerIntersectingLayer(VectorLayer* a, VectorLayer* b,
                                             uint32_t b_class) {
  std::vector<uint64_t> out;
  std::vector<uint64_t> b_features;
  if (b_class == 0) {
    b_features.resize(b->size());
    for (size_t i = 0; i < b->size(); ++i) b_features[i] = i;
  } else {
    b_features = b->SelectByClass(b_class);
  }
  std::vector<bool> hit(a->size(), false);
  for (uint64_t bi : b_features) {
    const Geometry& bg = b->feature(bi).geometry;
    for (uint64_t ai : a->QueryIntersecting(bg)) hit[ai] = true;
  }
  for (size_t i = 0; i < hit.size(); ++i) {
    if (hit[i]) out.push_back(i);
  }
  return out;
}

}  // namespace geocol
