// The conventional CSV load path the paper's binary loader replaces: tile
// -> CSV text -> per-record parsing into the table. Exists only as the E1
// baseline ("the dominant part of loading stems from the conversion of the
// LAZ files into CSV format and the subsequent parsing of the CSV records
// by the database engine", §3.2).
#ifndef GEOCOL_LOADER_CSV_LOADER_H_
#define GEOCOL_LOADER_CSV_LOADER_H_

#include <memory>
#include <string>

#include "columns/flat_table.h"
#include "loader/binary_loader.h"
#include "util/status.h"

namespace geocol {

/// CSV-based loader for LAS/LAZ tile directories.
class CsvLoader {
 public:
  explicit CsvLoader(std::string scratch_dir)
      : scratch_dir_(std::move(scratch_dir)) {}

  /// Loads every .las/.laz file under `dir` via the CSV round trip.
  Result<std::shared_ptr<FlatTable>> LoadDirectory(const std::string& dir,
                                                   LoadStats* stats = nullptr);

  /// Loads one tile file into `table` through a CSV intermediate.
  Status LoadFile(const std::string& path, FlatTable* table,
                  LoadStats* stats = nullptr);

 private:
  std::string scratch_dir_;
};

}  // namespace geocol

#endif  // GEOCOL_LOADER_CSV_LOADER_H_
