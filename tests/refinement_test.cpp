// Grid refinement tests: equivalence with exhaustive refinement (the core
// correctness property of §3.3), statistics, and edge cases.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/refinement.h"
#include "geom/wkt.h"
#include "util/rng.h"

namespace geocol {
namespace {

struct XY {
  ColumnPtr x, y;
};

XY MakePoints(size_t n, uint64_t seed, const Box& extent) {
  Rng rng(seed);
  std::vector<double> xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = rng.UniformDouble(extent.min_x, extent.max_x);
    ys[i] = rng.UniformDouble(extent.min_y, extent.max_y);
  }
  return {Column::FromVector<double>("x", xs),
          Column::FromVector<double>("y", ys)};
}

BitVector AllRows(size_t n) {
  BitVector bv(n);
  bv.SetAll();
  return bv;
}

TEST(RefinementTest, GridEqualsExhaustiveOnPolygon) {
  XY pts = MakePoints(20000, 81, Box(0, 0, 100, 100));
  Polygon poly;
  poly.shell.points = {{10, 10}, {90, 20}, {70, 80}, {20, 60}};
  Geometry g(poly);
  BitVector cand = AllRows(20000);

  std::vector<uint64_t> grid_rows, exact_rows;
  RefinementStats gs, es;
  ASSERT_TRUE(GridRefine(*pts.x, *pts.y, cand, g, 0.0, RefineOptions{},
                         &grid_rows, &gs).ok());
  ASSERT_TRUE(
      ExhaustiveRefine(*pts.x, *pts.y, cand, g, 0.0, &exact_rows, &es).ok());
  EXPECT_EQ(grid_rows, exact_rows);
  EXPECT_EQ(gs.accepted, grid_rows.size());
  EXPECT_EQ(es.exact_tests, 20000u);
  // The grid must save a substantial share of exact tests.
  EXPECT_LT(gs.exact_tests, es.exact_tests / 2);
}

TEST(RefinementTest, GridEqualsExhaustiveWithBuffer) {
  XY pts = MakePoints(10000, 82, Box(0, 0, 100, 100));
  LineString road;
  road.points = {{0, 50}, {40, 55}, {100, 45}};
  Geometry g(road);
  BitVector cand = AllRows(10000);
  std::vector<uint64_t> grid_rows, exact_rows;
  ASSERT_TRUE(GridRefine(*pts.x, *pts.y, cand, g, 8.0, RefineOptions{},
                         &grid_rows, nullptr).ok());
  ASSERT_TRUE(
      ExhaustiveRefine(*pts.x, *pts.y, cand, g, 8.0, &exact_rows, nullptr).ok());
  EXPECT_EQ(grid_rows, exact_rows);
  EXPECT_FALSE(grid_rows.empty());
}

TEST(RefinementTest, GridEqualsExhaustiveOnMultiPolygonWithHoles) {
  XY pts = MakePoints(15000, 83, Box(0, 0, 100, 100));
  auto g = ParseWkt(
      "MULTIPOLYGON (((5 5, 45 5, 45 45, 5 45, 5 5), "
      "(20 20, 30 20, 30 30, 20 30, 20 20)), "
      "((60 60, 95 60, 95 95, 60 95, 60 60)))");
  ASSERT_TRUE(g.ok());
  BitVector cand = AllRows(15000);
  std::vector<uint64_t> grid_rows, exact_rows;
  ASSERT_TRUE(GridRefine(*pts.x, *pts.y, cand, *g, 0.0, RefineOptions{},
                         &grid_rows, nullptr).ok());
  ASSERT_TRUE(
      ExhaustiveRefine(*pts.x, *pts.y, cand, *g, 0.0, &exact_rows, nullptr).ok());
  EXPECT_EQ(grid_rows, exact_rows);
}

TEST(RefinementTest, RespectsCandidateSubset) {
  XY pts = MakePoints(1000, 84, Box(0, 0, 10, 10));
  Geometry g(Polygon::FromBox(Box(0, 0, 10, 10)));  // everything inside
  BitVector cand(1000);
  cand.Set(5);
  cand.Set(500);
  std::vector<uint64_t> rows;
  ASSERT_TRUE(GridRefine(*pts.x, *pts.y, cand, g, 0.0, RefineOptions{},
                         &rows, nullptr).ok());
  EXPECT_EQ(rows, (std::vector<uint64_t>{5, 500}));
}

TEST(RefinementTest, EmptyCandidatesShortCircuit) {
  XY pts = MakePoints(100, 85, Box(0, 0, 1, 1));
  BitVector cand(100);
  std::vector<uint64_t> rows;
  RefinementStats stats;
  ASSERT_TRUE(GridRefine(*pts.x, *pts.y, cand,
                         Geometry(Polygon::FromBox(Box(0, 0, 1, 1))), 0.0,
                         RefineOptions{}, &rows, &stats).ok());
  EXPECT_TRUE(rows.empty());
  EXPECT_EQ(stats.candidates, 0u);
  EXPECT_EQ(stats.cells_nonempty, 0u);
}

TEST(RefinementTest, UseGridFalseDelegatesToExhaustive) {
  XY pts = MakePoints(5000, 86, Box(0, 0, 50, 50));
  Geometry g(Polygon::Circle({25, 25}, 10));
  BitVector cand = AllRows(5000);
  RefineOptions no_grid;
  no_grid.use_grid = false;
  std::vector<uint64_t> rows;
  RefinementStats stats;
  ASSERT_TRUE(
      GridRefine(*pts.x, *pts.y, cand, g, 0.0, no_grid, &rows, &stats).ok());
  EXPECT_EQ(stats.exact_tests, 5000u);  // every candidate tested
  EXPECT_EQ(stats.cells_nonempty, 0u);
}

TEST(RefinementTest, StatsBreakdownConsistent) {
  XY pts = MakePoints(30000, 87, Box(0, 0, 100, 100));
  Geometry g(Polygon::FromBox(Box(20, 20, 80, 80)));
  BitVector cand = AllRows(30000);
  std::vector<uint64_t> rows;
  RefinementStats s;
  ASSERT_TRUE(GridRefine(*pts.x, *pts.y, cand, g, 0.0, RefineOptions{},
                         &rows, &s).ok());
  EXPECT_EQ(s.candidates, 30000u);
  EXPECT_EQ(s.accepted, rows.size());
  EXPECT_EQ(s.cells_nonempty, s.cells_inside + s.cells_outside + s.cells_boundary);
  EXPECT_LE(s.cells_nonempty, s.cells_total);
  EXPECT_GT(s.cells_inside, 0u);    // a big rectangle has interior cells
  EXPECT_GT(s.cells_boundary, 0u);  // and boundary cells
  EXPECT_EQ(s.grid_cols * s.grid_rows, s.cells_total);
}

TEST(RefinementTest, MismatchedInputsRejected) {
  auto x = Column::FromVector<double>("x", {1, 2, 3});
  auto y = Column::FromVector<double>("y", {1, 2});
  BitVector cand(3);
  std::vector<uint64_t> rows;
  EXPECT_FALSE(GridRefine(*x, *y, cand, Geometry(Box(0, 0, 1, 1)), 0.0,
                          RefineOptions{}, &rows, nullptr).ok());
  auto y3 = Column::FromVector<double>("y", {1, 2, 3});
  BitVector cand2(2);
  EXPECT_FALSE(GridRefine(*x, *y3, cand2, Geometry(Box(0, 0, 1, 1)), 0.0,
                          RefineOptions{}, &rows, nullptr).ok());
}

TEST(RefinementTest, OutputIsAscending) {
  XY pts = MakePoints(8000, 88, Box(0, 0, 100, 100));
  Geometry g(Polygon::Circle({50, 50}, 30, 48));
  BitVector cand = AllRows(8000);
  std::vector<uint64_t> rows;
  ASSERT_TRUE(GridRefine(*pts.x, *pts.y, cand, g, 0.0, RefineOptions{},
                         &rows, nullptr).ok());
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
}

// Parameterised sweep over grid resolutions: the refinement result must be
// independent of the grid tuning.
class RefinementGridSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RefinementGridSweep, ResultIndependentOfCellTarget) {
  XY pts = MakePoints(12000, 89, Box(0, 0, 100, 100));
  Polygon poly;
  poly.shell.points = {{15, 5}, {85, 15}, {95, 85}, {40, 95}, {5, 50}};
  Geometry g(poly);
  BitVector cand = AllRows(12000);
  std::vector<uint64_t> exact_rows;
  ASSERT_TRUE(
      ExhaustiveRefine(*pts.x, *pts.y, cand, g, 0.0, &exact_rows, nullptr).ok());
  RefineOptions opts;
  opts.target_points_per_cell = GetParam();
  std::vector<uint64_t> rows;
  ASSERT_TRUE(
      GridRefine(*pts.x, *pts.y, cand, g, 0.0, opts, &rows, nullptr).ok());
  EXPECT_EQ(rows, exact_rows) << "cell target " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(CellTargets, RefinementGridSweep,
                         ::testing::Values(1, 16, 64, 256, 4096, 1000000));

}  // namespace
}  // namespace geocol
