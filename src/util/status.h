// Status and Result<T>: lightweight error propagation without exceptions on
// hot paths. Modeled after the Arrow/Abseil style with the subset of codes
// this project needs.
#ifndef GEOCOL_UTIL_STATUS_H_
#define GEOCOL_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace geocol {

/// Error category attached to a failed Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kUnsupported,
  kOutOfRange,
  kInternal,
};

/// Returns a short human-readable name for a status code ("IOError", ...).
const char* StatusCodeName(StatusCode code);

/// Success-or-error value used by every fallible API in the library.
///
/// Ok statuses carry no allocation; failures carry a code and message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A Status or a value of type T.
///
/// `Result<Foo> r = ...; if (!r.ok()) return r.status(); use(*r);`
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out, or returns `fallback` when this holds an error.
  T ValueOr(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates a non-OK Status from an expression.
#define GEOCOL_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::geocol::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

// Evaluates a Result<T> expression, propagating errors, else binds `lhs`.
#define GEOCOL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define GEOCOL_ASSIGN_OR_RETURN(lhs, expr) \
  GEOCOL_ASSIGN_OR_RETURN_IMPL(            \
      GEOCOL_CONCAT_(_geocol_result_, __LINE__), lhs, expr)

#define GEOCOL_CONCAT_INNER_(a, b) a##b
#define GEOCOL_CONCAT_(a, b) GEOCOL_CONCAT_INNER_(a, b)

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

}  // namespace geocol

#endif  // GEOCOL_UTIL_STATUS_H_
