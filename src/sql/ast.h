// Abstract syntax of the GeoColumn SQL dialect — the subset needed for the
// demo's predefined and ad-hoc queries (§4):
//
//   SELECT x, y, z FROM ahn2
//   WHERE ST_Within(pt, ST_GeomFromText('POLYGON((...))'))
//     AND classification BETWEEN 3 AND 5 LIMIT 100;
//
//   SELECT AVG(z) FROM ahn2
//   WHERE NEAR(urban_atlas, 12210, 50.0);
//
//   SELECT id, class FROM osm_roads
//   WHERE ST_Intersects(geom, ST_GeomFromText('BOX(85000 444000, 85500 444500)'));
#ifndef GEOCOL_SQL_AST_H_
#define GEOCOL_SQL_AST_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "geom/geometry.h"

namespace geocol {
namespace sql {

enum class AggFunc { kNone, kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc f);

/// One item of the SELECT list: a column, `*`, or agg(column | *).
struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  std::string column;  ///< lower-cased; empty for star
  bool star = false;
};

/// A one-sided or two-sided numeric range on an attribute (from =, <, <=,
/// >, >=, BETWEEN). Multiple predicates on one column are merged by the
/// planner.
struct RangePred {
  std::string column;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  /// True when the predicate came from an equality (affects EXPLAIN only).
  bool equality = false;
};

/// A spatial predicate on the row geometry.
struct SpatialPred {
  enum class Kind {
    kWithin,      ///< ST_Within(pt, G) / ST_Contains(G, pt)
    kIntersects,  ///< ST_Intersects(geom, G)
    kDWithin,     ///< ST_DWithin(pt, G, d)
    kNearLayer,   ///< NEAR(layer, class, d) — scenario-2 sugar
  };
  Kind kind = Kind::kWithin;
  Geometry geometry;
  double distance = 0.0;
  std::string layer;           ///< kNearLayer only
  uint32_t feature_class = 0;  ///< kNearLayer only (0 = any class)
};

/// A parsed SELECT statement.
struct SelectStmt {
  bool explain = false;  ///< EXPLAIN prefix: also return the plan text
  bool analyze = false;  ///< EXPLAIN ANALYZE: execute, return plan + span tree
  std::vector<SelectItem> items;
  std::string table;  ///< lower-cased FROM target
  std::vector<RangePred> ranges;
  std::vector<SpatialPred> spatial;
  std::string order_by;     ///< empty = no ORDER BY
  bool order_desc = false;  ///< ORDER BY ... DESC
  int64_t limit = -1;  ///< -1 = unlimited

  /// True when every select item is an aggregate.
  bool IsAggregate() const;

  /// Canonical rendering (used by EXPLAIN and tests).
  std::string ToString() const;
};

}  // namespace sql
}  // namespace geocol

#endif  // GEOCOL_SQL_AST_H_
